#!/usr/bin/env bash
# Guard: every flow, bench and campaign must go through the canonical
# tools::compile entry (src/tools/compile.hpp). Direct calls to
# synth::synthesize()/synthesize_normalized() or netlist::optimize() outside
# the layers that implement them bypass the pass pipeline (and its verify
# mode), so CI fails on any new call site.
#
# Allowed layers:
#   src/synth     - implements synthesis
#   src/tools     - the canonical entry itself
#   src/netlist   - implements the passes (optimize lives here)
#   src/core/evaluate.cpp - the Section III.C measurement procedure invokes
#                   synthesis directly by design (documented exemption); it
#                   is only reachable through tools::evaluate_design.
# Tests may call anything: they pin the low-level APIs on purpose.
set -u
cd "$(dirname "$0")/.."

fail=0

check() {
  local pattern="$1" label="$2"
  shift 2
  local hits
  hits=$(grep -rnE "$pattern" src bench examples \
      --include='*.cpp' --include='*.hpp' \
    | grep -vE '^src/(synth|tools|netlist)/' \
    | grep -v '^src/core/evaluate\.cpp:' \
    || true)
  if [ -n "$hits" ]; then
    echo "ERROR: direct $label call outside the compile pipeline:" >&2
    echo "$hits" >&2
    echo "Route through tools::compile / tools::compile_synth instead" \
         "(src/tools/compile.hpp)." >&2
    fail=1
  fi
}

# synth::synthesize / synthesize_normalized — but not the tools::compile_synth*
# wrappers, whose names do not contain "synthesize".
check '\bsynthesize(_normalized)?\(' 'synth::synthesize'

# netlist::optimize (bare optimize( would also match member fields named
# optimize, so require the qualified or free-function form).
check '(netlist::|[^_[:alnum:].>])optimize\(' 'netlist::optimize'

if [ "$fail" -eq 0 ]; then
  echo "pipeline guard: OK (all flows route through tools::compile)"
fi
exit "$fail"
