#!/usr/bin/env bash
# Guard: every flow, bench and campaign must go through the canonical
# tools::compile entry (src/tools/compile.hpp). Direct calls to
# synth::synthesize()/synthesize_normalized() or netlist::optimize() outside
# the layers that implement them bypass the pass pipeline (and its verify
# mode), so CI fails on any new call site.
#
# Allowed layers:
#   src/synth     - implements synthesis
#   src/tools     - the canonical entry itself
#   src/netlist   - implements the passes (optimize lives here)
#   src/core/evaluate.cpp - the Section III.C measurement procedure invokes
#                   synthesis directly by design (documented exemption); it
#                   is only reachable through tools::evaluate_design.
# Tests may call anything: they pin the low-level APIs on purpose.
set -u
cd "$(dirname "$0")/.."

fail=0

check() {
  local pattern="$1" label="$2"
  shift 2
  local hits
  hits=$(grep -rnE "$pattern" src bench examples \
      --include='*.cpp' --include='*.hpp' \
    | grep -vE '^src/(synth|tools|netlist)/' \
    | grep -v '^src/core/evaluate\.cpp:' \
    || true)
  if [ -n "$hits" ]; then
    echo "ERROR: direct $label call outside the compile pipeline:" >&2
    echo "$hits" >&2
    echo "Route through tools::compile / tools::compile_synth instead" \
         "(src/tools/compile.hpp)." >&2
    fail=1
  fi
}

# synth::synthesize / synthesize_normalized — but not the tools::compile_synth*
# wrappers, whose names do not contain "synthesize".
check '\bsynthesize(_normalized)?\(' 'synth::synthesize'

# netlist::optimize (bare optimize( would also match member fields named
# optimize, so require the qualified or free-function form).
check '(netlist::|[^_[:alnum:].>])optimize\(' 'netlist::optimize'

# The service layer (src/svc) must route every compile through the
# tools::compile entry via its DesignCache — running PassManager or
# individual passes directly from the service would bypass the pipeline's
# verify wiring while looking like a normal compile to clients.
svc_hits=$(grep -rnE 'PassManager|make_default_pipeline|run_pass\(' \
    src/svc --include='*.cpp' --include='*.hpp' || true)
if [ -n "$svc_hits" ]; then
  echo "ERROR: src/svc drives the pass pipeline directly:" >&2
  echo "$svc_hits" >&2
  echo "The service must compile through tools::compile (svc/cache.hpp)." >&2
  fail=1
fi
if ! grep -q 'tools::compile(' src/svc/cache.cpp; then
  echo "ERROR: src/svc/cache.cpp no longer routes through tools::compile —" \
       "the service compile path lost its canonical entry." >&2
  fail=1
fi

# Interval analysis (netlist::RangeAnalysis, netlist/range.hpp) has exactly
# two production clients: the narrow pass (src/netlist) and the synthesis
# cost model's width reasoning (src/synth). Any other layer consuming raw
# ranges would fork the width story the narrow pass already owns — flows
# and benches see narrowing only through tools::compile's `narrow` knob.
# Tests may call anything: they pin the analysis on purpose.
range_hits=$(grep -rnE '\bRangeAnalysis\b|"netlist/range\.hpp"' \
    src bench examples --include='*.cpp' --include='*.hpp' \
  | grep -vE '^src/(netlist|synth)/' \
  || true)
if [ -n "$range_hits" ]; then
  echo "ERROR: RangeAnalysis used outside src/netlist and src/synth:" >&2
  echo "$range_hits" >&2
  echo "Width narrowing is the narrow pass's job — enable it through" \
       "tools::CompileOptions.narrow (src/tools/compile.hpp)." >&2
  fail=1
fi

# The workload registry (src/workload) is the only production gateway to the
# IDCT golden model and stimulus: code elsewhere must consume a WorkloadSpec
# (reference/encode/eval_stimulus/campaign_inputs) so every workload flows
# through the same compare path. Exemptions:
#   src/idct             - implements the model
#   src/workload         - wraps it into the registry
#   bench/bench_idct_kernel.cpp, bench/bench_ieee1180.cpp - microbench the C
#                          kernel itself, not a hardware design
# Tests may call anything: they pin the model on purpose.
# (The chenwang constants kW1..kW7 stay fair game: the rtl/chisel/maxj
# frontends use them to *build* the IDCT's hardware, which is exactly their
# job; only the software model and reference transforms are gated.)
idct_hits=$(grep -rnE '\bidct::(idct_2d|idct_2d_straight|idct_1d|idct_reference|forward_dct_reference)\b|"idct/reference\.hpp"' \
    src bench examples --include='*.cpp' --include='*.hpp' \
  | grep -vE '^src/(idct|workload)/' \
  | grep -vE '^bench/bench_(idct_kernel|ieee1180)\.cpp:' \
  || true)
if [ -n "$idct_hits" ]; then
  echo "ERROR: direct IDCT model reference outside the workload registry:" >&2
  echo "$idct_hits" >&2
  echo "Consume a workload::WorkloadSpec (reference/encode/stimulus hooks)" \
       "instead (src/workload/workload.hpp)." >&2
  fail=1
fi

if [ "$fail" -eq 0 ]; then
  echo "pipeline guard: OK (all flows route through tools::compile," \
       "IDCT model access through the workload registry)"
fi
exit "$fail"
