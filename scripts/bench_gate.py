#!/usr/bin/env python3
"""Perf-regression gate over the hlshc bench reports.

Compares freshly produced BENCH_sim.json / BENCH_fault.json /
BENCH_service.json / BENCH_dse.json (obs::RunReport schema) against the
committed reference reports in bench/baselines/, with a per-metric check
mode:

  * exact  -- values the toolchain computes deterministically (node counts,
              exec-plan depth, campaign outcome mixes, areas). Any drift is
              a functional change, not noise, and fails the gate.
  * ratio  -- wall-clock rates (cycles/sec, faults/sec, req/sec). CI
              machines are noisy and heterogeneous, so these only fail when
              the fresh value drops below `tolerance` * baseline — a wide
              net that still catches order-of-magnitude regressions.
  * invariant -- cross-field consistency inside the fresh report alone
              (ok + shed == submitted, a deep queue sheds nothing).

The gate also insists the fresh run used the same parameters as the
baseline (same site counts, cycle counts, request counts): comparing runs
of different sizes would make every number meaningless.

Usage:
  bench_gate.py [--baselines DIR] [--fresh DIR] [--tolerance F]
                [--min-ratio R]
  bench_gate.py --validate-trace FILE [FILE...]
  bench_gate.py --validate-events FILE [FILE...]

--validate-trace checks a Chrome trace_event file is well-formed (parses,
has a traceEvents list, every event carries name/ph/ts/pid/tid).
--validate-events checks an event-log JSON-lines file (every line is an
object with ts_ns/level/name). Exit status 0 iff every check passed.
"""

import argparse
import json
import os
import sys

failures = []


def fail(msg):
    failures.append(msg)
    print(f"FAIL: {msg}")


def ok(msg):
    print(f"  ok: {msg}")


def load_report(path):
    with open(path) as f:
        report = json.load(f)
    if report.get("schema") != "hlshc.run_report":
        fail(f"{path}: not an hlshc.run_report (schema={report.get('schema')})")
    return report


def check_params(name, fresh, base, keys):
    for key in keys:
        if fresh["params"].get(key) != base["params"].get(key):
            fail(
                f"{name}: param '{key}' differs from baseline "
                f"({fresh['params'].get(key)} vs {base['params'].get(key)}) "
                "-- regenerate bench/baselines or fix the CI invocation"
            )


def index_rows(report, list_key, id_key):
    return {row[id_key]: row for row in report["results"][list_key]}


def compare_rows(name, fresh, base, list_key, id_key, exact, ratio, tolerance):
    fresh_rows = index_rows(fresh, list_key, id_key)
    base_rows = index_rows(base, list_key, id_key)
    if set(fresh_rows) != set(base_rows):
        fail(
            f"{name}: {list_key} sets differ "
            f"(fresh-only: {sorted(set(fresh_rows) - set(base_rows))}, "
            f"baseline-only: {sorted(set(base_rows) - set(fresh_rows))})"
        )
        return
    for row_id in sorted(base_rows, key=str):
        f_row, b_row = fresh_rows[row_id], base_rows[row_id]
        for key in exact:
            if f_row.get(key) != b_row.get(key):
                fail(
                    f"{name} [{row_id}].{key}: {f_row.get(key)} != baseline "
                    f"{b_row.get(key)} (deterministic metric -- this is a "
                    "functional change, not noise)"
                )
        for key in ratio:
            b_val = b_row.get(key, 0)
            f_val = f_row.get(key, 0)
            if b_val <= 0:
                continue
            if f_val < tolerance * b_val:
                fail(
                    f"{name} [{row_id}].{key}: {f_val:.1f} < "
                    f"{tolerance:.2f} x baseline {b_val:.1f}"
                )
    ok(
        f"{name}: {len(base_rows)} {list_key} rows, "
        f"{len(exact)} exact + {len(ratio)} ratio metrics each"
    )


def check_batch_ratio(name, report, which, min_ratio, numer, denom):
    """Lane-batching floor: the batched series must beat the scalar series
    by `min_ratio` on at least one design row. Per-row enforcement would be
    wrong — a straggler-dominated campaign (one hang site serializing
    20000 cycles) is Amdahl-capped regardless of lane count — but if *no*
    row clears the floor, batching regressed to scalar speed."""
    best = None
    best_design = None
    for row in report["results"]["designs"]:
        scalar, batched = row.get(denom, 0), row.get(numer, 0)
        if scalar <= 0 or batched <= 0:
            continue
        speedup = batched / scalar
        if best is None or speedup > best:
            best, best_design = speedup, row["design"]
    if best is None:
        fail(f"{name} ({which}): no row carries both {numer} and {denom} "
             "-- the batched series is missing from the report")
        return
    if best < min_ratio:
        fail(f"{name} ({which}): best batched/scalar speedup {best:.2f}x "
             f"({best_design}) < required {min_ratio:.2f}x -- "
             "lane batching regressed")
        return
    ok(f"{name} ({which}): best batched/scalar speedup {best:.2f}x "
       f"({best_design}) >= {min_ratio:.2f}x")


def gate_sim(fresh_path, base_path, tolerance, min_ratio):
    fresh, base = load_report(fresh_path), load_report(base_path)
    check_params("BENCH_sim", fresh, base,
                 ["raw_cycles", "stream_matrices", "workload", "lanes"])
    compare_rows(
        "BENCH_sim", fresh, base, "designs", "design",
        exact=["nodes", "depth"],
        ratio=["compiled_cycles_per_sec", "interp_cycles_per_sec",
               "stream_compiled_cycles_per_sec",
               "batch_lane_cycles_per_sec"],
        tolerance=tolerance,
    )
    if min_ratio > 0:
        for which, report in (("baseline", base), ("fresh", fresh)):
            check_batch_ratio("BENCH_sim", report, which, min_ratio,
                              numer="batch_lane_cycles_per_sec",
                              denom="stream_compiled_cycles_per_sec")


def gate_fault(fresh_path, base_path, tolerance, min_ratio):
    fresh, base = load_report(fresh_path), load_report(base_path)
    check_params("BENCH_fault", fresh, base,
                 ["sites_per_design", "sample_seed", "max_inject_cycle",
                  "workload", "lanes"])
    compare_rows(
        "BENCH_fault", fresh, base, "designs", "design",
        # The campaign is seeded and single-jobs-deterministic: the outcome
        # mix, the A/P/Q axes, and the TMR contract are exact.
        exact=["runs", "masked", "sdc", "detected", "hang",
               "vulnerability_factor", "area", "periodicity_cycles"],
        ratio=["faults_per_sec", "faults_per_sec_scalar",
               "faults_per_sec_batched"],
        tolerance=tolerance,
    )
    if min_ratio > 0:
        for which, report in (("baseline", base), ("fresh", fresh)):
            check_batch_ratio("BENCH_fault", report, which, min_ratio,
                              numer="faults_per_sec_batched",
                              denom="faults_per_sec_scalar")


def gate_service(fresh_path, base_path, tolerance):
    fresh, base = load_report(fresh_path), load_report(base_path)
    check_params("BENCH_service", fresh, base, ["requests", "clients"])
    rounds = index_rows(fresh, "rounds", "queue_capacity")
    base_rounds = index_rows(base, "rounds", "queue_capacity")
    if set(rounds) != set(base_rounds):
        fail(f"BENCH_service: round sets differ "
             f"({sorted(rounds)} vs {sorted(base_rounds)})")
        return
    for capacity, row in sorted(rounds.items()):
        # ok/shed splits race on queue occupancy, so the per-round splits
        # are invariants over the fresh run, not baseline comparisons.
        if row["ok"] + row["shed"] != row["submitted"]:
            fail(f"BENCH_service [queue={capacity}]: ok {row['ok']} + shed "
                 f"{row['shed']} != submitted {row['submitted']}")
        if row["ok"] < 1:
            fail(f"BENCH_service [queue={capacity}]: no request succeeded")
    deepest = rounds[max(rounds)]
    if deepest["shed"] != 0:
        fail(f"BENCH_service [queue={max(rounds)}]: deep queue shed "
             f"{deepest['shed']} requests -- admission control regressed")
    if deepest["cache_hit_rate"] < 0.5:
        fail(f"BENCH_service [queue={max(rounds)}]: cache hit rate "
             f"{deepest['cache_hit_rate']:.2f} < 0.5 on a round-robin "
             "storm -- the compile cache regressed")
    for capacity, row in sorted(rounds.items()):
        b_val = base_rounds[capacity]["req_per_sec"]
        if b_val > 0 and row["req_per_sec"] < tolerance * b_val:
            fail(f"BENCH_service [queue={capacity}].req_per_sec: "
                 f"{row['req_per_sec']:.1f} < {tolerance:.2f} x baseline "
                 f"{b_val:.1f}")
    ok(f"BENCH_service: {len(rounds)} rounds, invariants + throughput floor")


def gate_dse(fresh_path, base_path):
    """Design-space floor: the sweep must stay 200+ configurations wide and
    the per-workload quality frontier must never retreat. All DSE metrics
    are deterministic (modeled fmax/area over seeded evaluation), so a
    best-Q drop is a real regression in a flow or the scheduler, not
    noise; growth (new sweep points that beat the old frontier) is fine."""
    fresh, base = load_report(fresh_path), load_report(base_path)
    configs = fresh["results"].get("configs", 0)
    if configs < 200:
        fail(f"BENCH_dse: {configs} configurations < 200 -- the sweep "
             "grid collapsed (a flow stopped contributing points)")
    fresh_rows = index_rows(fresh, "workloads", "workload")
    base_rows = index_rows(base, "workloads", "workload")
    if set(fresh_rows) != set(base_rows):
        fail(
            f"BENCH_dse: workload sets differ "
            f"(fresh-only: {sorted(set(fresh_rows) - set(base_rows))}, "
            f"baseline-only: {sorted(set(base_rows) - set(fresh_rows))})"
        )
        return
    for workload in sorted(base_rows):
        f_row, b_row = fresh_rows[workload], base_rows[workload]
        if f_row["configs"] < b_row["configs"]:
            fail(f"BENCH_dse [{workload}]: {f_row['configs']} configs < "
                 f"baseline {b_row['configs']} -- sweep points disappeared")
        if f_row["best_quality"] < b_row["best_quality"] - 1e-6:
            fail(f"BENCH_dse [{workload}]: best quality "
                 f"{f_row['best_quality']:.1f} "
                 f"({f_row.get('best_quality_config')}) < baseline "
                 f"{b_row['best_quality']:.1f} "
                 f"({b_row.get('best_quality_config')}) -- "
                 "the quality frontier retreated")
    ok(f"BENCH_dse: {configs} configurations, "
       f"{len(base_rows)} per-workload quality floors")


def validate_trace(path):
    with open(path) as f:
        trace = json.load(f)
    events = trace.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(f"{path}: no traceEvents")
        return
    for i, event in enumerate(events):
        for key in ("name", "ph", "ts", "pid", "tid"):
            if key not in event:
                fail(f"{path}: traceEvents[{i}] missing '{key}': {event}")
                return
    # Correlated spans carry trace_id in args; a traced service/bench run
    # must produce at least one.
    correlated = sum(1 for e in events
                    if isinstance(e.get("args"), dict) and "trace_id" in e["args"])
    if correlated == 0:
        fail(f"{path}: no span carries args.trace_id -- "
             "trace-context propagation is broken")
        return
    ok(f"{path}: {len(events)} trace events, {correlated} with trace_id")


def validate_events(path):
    count = 0
    traced = 0
    with open(path) as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError as e:
                fail(f"{path}:{lineno}: not JSON ({e})")
                return
            for key in ("ts_ns", "level", "name"):
                if key not in event:
                    fail(f"{path}:{lineno}: missing '{key}': {event}")
                    return
            count += 1
            if "trace_id" in event:
                traced += 1
    if count == 0:
        fail(f"{path}: empty event log")
        return
    if traced == 0:
        fail(f"{path}: no event carries a trace_id")
        return
    ok(f"{path}: {count} events, {traced} with trace_id")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baselines", default="bench/baselines")
    parser.add_argument("--fresh", default=".",
                        help="directory holding the fresh BENCH_*.json")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="rate metrics fail below tolerance*baseline")
    parser.add_argument("--min-ratio", type=float, default=0.0,
                        help="require the best batched/scalar speedup row to "
                             "reach this factor (0 disables the check)")
    parser.add_argument("--validate-trace", nargs="+", default=[],
                        metavar="FILE")
    parser.add_argument("--validate-events", nargs="+", default=[],
                        metavar="FILE")
    args = parser.parse_args()

    for path in args.validate_trace:
        validate_trace(path)
    for path in args.validate_events:
        validate_events(path)
    if args.validate_trace or args.validate_events:
        if failures:
            print(f"\nbench gate: {len(failures)} validation failure(s)")
            return 1
        print("\nbench gate: validation passed")
        return 0

    gates = [
        ("BENCH_sim.json",
         lambda f, b: gate_sim(f, b, args.tolerance, args.min_ratio)),
        ("BENCH_fault.json",
         lambda f, b: gate_fault(f, b, args.tolerance, args.min_ratio)),
        ("BENCH_service.json",
         lambda f, b: gate_service(f, b, args.tolerance)),
        ("BENCH_dse.json",
         lambda f, b: gate_dse(f, b)),
    ]
    for filename, gate in gates:
        fresh_path = os.path.join(args.fresh, filename)
        base_path = os.path.join(args.baselines, filename)
        if not os.path.exists(base_path):
            fail(f"missing baseline {base_path}")
            continue
        if not os.path.exists(fresh_path):
            fail(f"missing fresh report {fresh_path} -- did the bench run?")
            continue
        gate(fresh_path, base_path)

    if failures:
        print(f"\nbench gate: {len(failures)} failure(s)")
        return 1
    print("\nbench gate: all reports within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
