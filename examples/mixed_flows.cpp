// The paper's future-work vision, running: "individual units can be
// designed using various lower-level tools" with generated interfaces.
// Here the ROW pass is compiled from C by the mini HLS compiler, the
// COLUMN pass is written in the Chisel-style eDSL, an XLS-style pipeliner
// adds a register stage to the HLS kernel, and framework::compose_row_col
// generates the streaming engine and AXI-Stream interface around both.
//
//   $ ./mixed_flows
#include <cstdio>

#include "axis/testbench.hpp"
#include "base/rng.hpp"
#include "base/strings.hpp"
#include "chisel/designs.hpp"
#include "core/evaluate.hpp"
#include "framework/compose.hpp"
#include "hls/ast.hpp"
#include "hls/tool.hpp"
#include "sim/simulator.hpp"
#include "tools/compile.hpp"
#include "xls/pipeline.hpp"

using namespace hlshc;

int main() {
  std::puts("=== Mixed-flow composition (the paper's future-work sketch) ===\n");

  // Unit 1: the row pass, compiled from data/c/idct.c by the HLS frontend
  // and pipelined one stage by the XLS-style scheduler.
  hls::Program prog = hls::parse(hls::idct_source());
  hls::LeafDfg row_dfg = hls::lower_leaf(prog, "idctrow", 0);
  netlist::Design row_comb =
      hls::leaf_to_netlist(row_dfg, "hls_row_pass", axis::kInElemWidth);
  xls::PipelineResult row = xls::pipeline_function(row_comb, 1);
  std::printf("row pass:    compiled from C (%zu DFG ops), pipelined to "
              "%d stage(s)\n",
              row_dfg.dfg.nodes.size(), row.latency);

  // Unit 2: the column pass, written in the Chisel eDSL (combinational,
  // widths inferred).
  netlist::Design col = chisel::build_col_pass_kernel(16);
  std::printf("column pass: built in the Chisel eDSL (%zu netlist nodes)\n",
              col.node_count());

  // The framework generates the internal buffering and the external
  // AXI-Stream interface around both units.
  netlist::Design mixed = framework::compose_row_col(
      framework::PassKernel{row.design, row.latency},
      framework::PassKernel{col, 0}, 16, "mixed_hls_chisel");
  std::printf("composed:    '%s' (%zu nodes)\n\n", mixed.name().c_str(),
              mixed.node_count());

  // Verify bit-exactness and measure, exactly like any single-flow design.
  core::DesignEvaluation ev = tools::evaluate_design(mixed);
  std::printf("functional (vs ISO 13818-4 software model): %s\n",
              ev.functional ? "yes" : "NO");
  std::printf("latency %d cycles, periodicity %s, fmax %s MHz, "
              "P %s MOPS, A %s, Q %s\n",
              ev.latency_cycles,
              format_fixed(ev.periodicity_cycles, 1).c_str(),
              format_fixed(ev.fmax_mhz, 2).c_str(),
              format_fixed(ev.throughput_mops, 2).c_str(),
              format_grouped(ev.area).c_str(),
              format_fixed(ev.quality(), 0).c_str());
  return ev.functional ? 0 : 1;
}
