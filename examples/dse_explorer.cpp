// Design-space explorer: the IP-library use case from the paper's
// motivation — pick a flow and a configuration from the command line, and
// the tool reports whether the generated IDCT core meets your
// performance/area constraints.
//
//   $ ./dse_explorer                      # list flows and configurations
//   $ ./dse_explorer xls 8                # XLS, 8 pipeline stages
//   $ ./dse_explorer bambu PERFORMANCE-MP # a Bambu preset
//   $ ./dse_explorer bsv reversed         # a BSC urgency order
#include <cstdio>
#include <cstring>
#include <string>

#include "base/strings.hpp"
#include "bsv/designs.hpp"
#include "chisel/designs.hpp"
#include "core/evaluate.hpp"
#include "hls/tool.hpp"
#include "rtl/designs.hpp"
#include "tools/compile.hpp"
#include "xls/designs.hpp"

using namespace hlshc;

namespace {

void report(const core::DesignEvaluation& ev) {
  std::printf("\n%-14s %s\n", "design:", ev.name.c_str());
  std::printf("%-14s %s\n", "functional:", ev.functional ? "yes" : "NO");
  std::printf("%-14s %s MHz\n", "fmax:",
              format_fixed(ev.fmax_mhz, 2).c_str());
  std::printf("%-14s %s MOPS  (T_L=%d, T_P=%s)\n", "throughput:",
              format_fixed(ev.throughput_mops, 2).c_str(), ev.latency_cycles,
              format_fixed(ev.periodicity_cycles, 1).c_str());
  std::printf("%-14s %s  (N*LUT=%s N*FF=%s; with DSPs: %s LUT, %ld DSP)\n",
              "area:", format_grouped(ev.area).c_str(),
              format_grouped(ev.n_lut_star).c_str(),
              format_grouped(ev.n_ff_star).c_str(),
              format_grouped(ev.n_lut).c_str(), ev.n_dsp);
  std::printf("%-14s %s ops/s per LUT+FF\n", "quality:",
              format_fixed(ev.quality(), 1).c_str());
}

int usage() {
  std::puts("usage: dse_explorer <flow> [config]\n"
            "  verilog  initial | opt1 | opt2\n"
            "  chisel   initial | opt\n"
            "  bsv      default | reversed | onehot\n"
            "  xls      <pipeline stages, 0 = combinational>\n"
            "  bambu    DEFAULT | AREA | BALANCED | PERFORMANCE-MP\n"
            "  vhls     pushbutton | pragmas");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string flow = argv[1];
  const std::string cfg = argc > 2 ? argv[2] : "";

  core::EvaluateOptions eo;
  netlist::Design design("empty");
  if (flow == "verilog") {
    design = cfg == "initial" ? rtl::build_verilog_initial()
             : cfg == "opt1"  ? rtl::build_verilog_opt1()
                              : rtl::build_verilog_opt2();
  } else if (flow == "chisel") {
    design = cfg == "initial" ? chisel::build_chisel_initial()
                              : chisel::build_chisel_opt();
  } else if (flow == "bsv") {
    bsv::SchedulerOptions o;
    if (cfg == "reversed") o.urgency = bsv::UrgencyOrder::kReversed;
    if (cfg == "onehot") o.mux_style = bsv::MuxStyle::kOneHotAndOr;
    design = bsv::build_bsv_opt(o);
  } else if (flow == "xls") {
    int stages = cfg.empty() ? 8 : std::atoi(cfg.c_str());
    design = xls::build_xls_design({stages}).design;
  } else if (flow == "bambu") {
    hls::BambuOptions o;
    if (cfg == "AREA") o.preset = hls::BambuPreset::kArea;
    else if (cfg == "BALANCED") o.preset = hls::BambuPreset::kBalanced;
    else if (cfg == "PERFORMANCE-MP") {
      o.preset = hls::BambuPreset::kPerformanceMp;
      o.speculative_sdc = true;
    }
    design = hls::compile_bambu(hls::idct_source(), o).design;
    eo.matrices = 3;
  } else if (flow == "vhls") {
    hls::VhlsOptions o;
    o.pragmas = cfg != "pushbutton";
    design = hls::compile_vhls(hls::idct_source(), o).design;
    if (!o.pragmas) eo.matrices = 3;
  } else {
    return usage();
  }

  report(tools::evaluate_design(design, {}, eo));
  return 0;
}
