// Hardware conformance: runs the IEEE 1180-1990 procedure with the IDCT
// computed *by a simulated hardware design*, not the software model —
// block by block through the AXI-Stream interface. Slower than the
// software check (every block costs tens of simulated cycles), so the
// default block count is reduced; pass a count to go further.
//
//   $ ./conformance [blocks-per-case]     (default 600, standard 10000)
//
// Note: the per-position mean-square thresholds are statistical; far
// below ~500 blocks they can trip on noise alone.
#include <cstdio>
#include <cstdlib>

#include "axis/testbench.hpp"
#include "base/strings.hpp"
#include "idct/ieee1180.hpp"
#include "rtl/designs.hpp"
#include "sim/simulator.hpp"

using namespace hlshc;

int main(int argc, char** argv) {
  const int blocks = argc > 1 ? std::atoi(argv[1]) : 600;
  netlist::Design design = rtl::build_verilog_opt2();
  sim::Simulator sim(design);

  std::printf("IEEE 1180-1990 against simulated hardware '%s' "
              "(%d blocks per case)\n\n",
              design.name().c_str(), blocks);

  // The candidate IDCT drives the hardware through the stream testbench.
  auto hardware_idct = [&](const idct::Block& in) {
    axis::StreamTestbench tb(sim);
    return tb.run({in})[0];
  };

  bool all = true;
  for (const auto& r : idct::run_compliance_suite(hardware_idct, blocks)) {
    std::printf("range (-%ld,%ld) sign %+d: peak|e|=%s omse=%s -> %s%s%s\n",
                r.config.range_high, r.config.range_low, r.config.sign,
                format_fixed(r.peak_error, 1).c_str(),
                format_fixed(r.omse, 4).c_str(),
                r.pass ? "PASS" : "FAIL", r.pass ? "" : ": ",
                r.failure.c_str());
    all = all && r.pass;
  }
  std::printf("\nhardware is %sIEEE 1180-1990 compliant\n",
              all ? "" : "NOT ");
  return all ? 0 : 1;
}
