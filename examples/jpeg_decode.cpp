// Domain scenario: the IDCT as the back end of a JPEG/MPEG-style decoder —
// the use case the paper's introduction motivates. A synthetic 64x64-pixel
// "image" is forward-transformed block by block (standing in for the
// encoder), then decoded through a *hardware* IDCT design streaming block
// after block, and compared pixel-exactly against the software decode.
//
//   $ ./jpeg_decode [flow]       flow: verilog | chisel | vhls (default verilog)
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "axis/testbench.hpp"
#include "base/rng.hpp"
#include "base/strings.hpp"
#include "sim/simulator.hpp"
#include "workload/workload.hpp"

using namespace hlshc;

int main(int argc, char** argv) {
  const std::string flow = argc > 1 ? argv[1] : "verilog";
  const workload::WorkloadSpec& spec =
      workload::Registry::instance().get("idct");
  netlist::Design design = [&] {
    if (flow == "chisel") return spec.builder("chisel_opt").build();
    if (flow == "vhls") return spec.builder("vhls_pragmas").build();
    return spec.builder("verilog_opt2").build();
  }();
  std::printf("decoding through '%s'\n", design.name().c_str());

  // Synthesize a 64x64 image of smooth gradients + noise, then "encode" it
  // block by block with the reference forward DCT.
  constexpr int kDim = 64, kBlocks = (kDim / 8) * (kDim / 8);
  SplitMix64 rng(2026);
  std::vector<int32_t> image(kDim * kDim);
  for (int y = 0; y < kDim; ++y)
    for (int x = 0; x < kDim; ++x)
      image[static_cast<size_t>(y * kDim + x)] = static_cast<int32_t>(
          ((x * 3 + y * 2) % 350) - 175 + rng.next_in(-20, 20));

  std::vector<idct::Block> coeff_blocks;
  for (int by = 0; by < kDim / 8; ++by)
    for (int bx = 0; bx < kDim / 8; ++bx) {
      idct::Block spatial{};
      for (int r = 0; r < 8; ++r)
        for (int c = 0; c < 8; ++c)
          idct::at(spatial, r, c) =
              image[static_cast<size_t>((8 * by + r) * kDim + 8 * bx + c)];
      coeff_blocks.push_back(spec.encode ? spec.encode(spatial) : spatial);
    }

  // Decode all blocks through the hardware design in one streaming run.
  sim::Simulator sim(design);
  axis::StreamTestbench tb(sim);
  auto decoded = tb.run(coeff_blocks);

  // Compare with the software decoder; count the worst pixel deviation
  // from the original image (the transform itself is lossy by rounding).
  int mismatches = 0, worst = 0;
  for (int b = 0; b < kBlocks; ++b) {
    idct::Block sw = spec.reference(coeff_blocks[static_cast<size_t>(b)]);
    if (sw != decoded[static_cast<size_t>(b)]) ++mismatches;
    int by = b / (kDim / 8), bx = b % (kDim / 8);
    for (int r = 0; r < 8; ++r)
      for (int c = 0; c < 8; ++c) {
        int orig =
            image[static_cast<size_t>((8 * by + r) * kDim + 8 * bx + c)];
        int got = idct::at(decoded[static_cast<size_t>(b)], r, c);
        worst = std::max(worst, std::abs(orig - got));
      }
  }

  std::printf("blocks: %d, hardware/software mismatches: %d\n", kBlocks,
              mismatches);
  std::printf("worst pixel deviation from the original image: %d "
              "(transform rounding only)\n",
              worst);
  std::printf("stream: %llu cycles for %d blocks -> %s cycles/block "
              "(T_P x blocks + fill)\n",
              static_cast<unsigned long long>(tb.timing().total_cycles),
              kBlocks,
              format_fixed(static_cast<double>(tb.timing().total_cycles) /
                               kBlocks,
                           1)
                  .c_str());
  std::printf("protocol violations: %zu\n", tb.monitor().violations().size());
  return mismatches == 0 ? 0 : 1;
}
