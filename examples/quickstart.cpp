// Quickstart: build an IDCT design, push a matrix through its AXI-Stream
// interface cycle by cycle, and run the paper's full measurement procedure
// on it.
//
//   $ ./quickstart
#include <cstdio>

#include "axis/testbench.hpp"
#include "base/strings.hpp"
#include "core/evaluate.hpp"
#include "sim/simulator.hpp"
#include "tools/compile.hpp"
#include "workload/workload.hpp"

using namespace hlshc;

int main() {
  // 1. Elaborate a design. Every flow in this library produces the same
  //    netlist IR; here we take the paper's optimized Verilog baseline from
  //    the workload registry.
  const workload::WorkloadSpec& spec =
      workload::Registry::instance().get("idct");
  netlist::Design design = spec.builder("verilog_opt2").build();
  std::printf("design '%s': %zu netlist nodes\n", design.name().c_str(),
              design.node_count());

  // 2. Prepare an 8x8 block of DCT coefficients (a checkerboard pattern).
  idct::Block coeffs{};
  idct::at(coeffs, 0, 0) = 512;   // DC
  idct::at(coeffs, 0, 1) = -300;  // some AC energy
  idct::at(coeffs, 1, 0) = 150;
  idct::at(coeffs, 3, 3) = 77;

  // 3. Simulate: the stream testbench feeds the matrix row by row and
  //    collects the result, checking AXI-Stream protocol rules as it goes.
  sim::Simulator sim(design);
  axis::StreamTestbench tb(sim);
  auto out = tb.run({coeffs});
  std::printf("\nIDCT result (hardware, %d-cycle latency):\n%s",
              tb.timing().latency_cycles, idct::to_string(out[0]).c_str());

  // 4. Cross-check against the workload's golden reference model.
  idct::Block sw = spec.reference(coeffs);
  std::printf("matches software model: %s\n",
              out[0] == sw ? "yes" : "NO");

  // 5. The paper's measurement procedure: verify, measure T_L/T_P,
  //    synthesize with and without DSPs, compute P and Q.
  core::DesignEvaluation ev = tools::evaluate_design(design, spec);
  std::printf("\nevaluation: fmax=%s MHz, P=%s MOPS, A=%s, Q=%s\n",
              format_fixed(ev.fmax_mhz, 2).c_str(),
              format_fixed(ev.throughput_mops, 2).c_str(),
              format_grouped(ev.area).c_str(),
              format_fixed(ev.quality(), 0).c_str());
  return 0;
}
