// Export: hand a generated design to a real toolchain. Emits the chosen
// IDCT design as synthesizable Verilog-2001 and a VCD waveform of one
// matrix flowing through its stream interface — the artifacts you would
// feed to an actual synthesizer and waveform viewer to validate the cost
// model's predictions.
//
//   $ ./export_rtl [outdir]      (default .)
//                                -> idct.v, idct.vcd, vectors.hex,
//                                   expected.hex (for data/verilog/tb_idct.v)
#include <cstdio>
#include <fstream>
#include <string>

#include "axis/testbench.hpp"
#include "base/rng.hpp"
#include "netlist/verilog.hpp"
#include "sim/simulator.hpp"
#include "sim/vcd.hpp"
#include "workload/workload.hpp"

using namespace hlshc;

int main(int argc, char** argv) {
  const std::string outdir = argc > 1 ? argv[1] : ".";
  const workload::WorkloadSpec& spec =
      workload::Registry::instance().get("idct");
  netlist::Design design = spec.builder("verilog_opt2").build();

  // 1. RTL.
  const std::string vpath = outdir + "/idct.v";
  std::ofstream(vpath) << netlist::emit_verilog(design);
  std::printf("wrote %s\n", vpath.c_str());

  // 2. Waveform: one matrix through the stream interface, all ports traced.
  sim::Simulator sim(design);
  sim::VcdTrace trace = sim::VcdTrace::ports(sim);

  SplitMix64 rng(7);
  idct::Block spatial{};
  for (auto& v : spatial) v = static_cast<int32_t>(rng.next_in(-256, 255));
  idct::Block coeffs = spec.encode(spatial);

  axis::SourceDriver source(sim);
  axis::SinkDriver sink(sim);
  source.queue(coeffs);
  while (sink.matrices().empty()) {
    source.pre_cycle();
    sink.pre_cycle();
    sim.eval();
    source.post_eval();
    sink.post_eval();
    trace.sample();
    sim.step();
  }

  const std::string wpath = outdir + "/idct.vcd";
  std::ofstream(wpath) << trace.finish();
  std::printf("wrote %s (%d cycles traced)\n", wpath.c_str(),
              trace.samples());

  // Stimulus + golden files for the shipped Verilog testbench
  // (data/verilog/tb_idct.v expects 8 matrices as packed hex beats).
  std::ofstream vec(outdir + "/vectors.hex");
  std::ofstream exp(outdir + "/expected.hex");
  SplitMix64 vrng(99);
  for (int m = 0; m < 8; ++m) {
    idct::Block spat{};
    for (auto& v : spat) v = static_cast<int32_t>(vrng.next_in(-256, 255));
    idct::Block in = spec.encode(spat);
    idct::Block out = spec.reference(in);
    for (int r = 0; r < 8; ++r) {
      unsigned long long inw_hi = 0, inw_lo = 0;
      unsigned long long outw_hi = 0, outw_lo = 0;
      auto pack = [](unsigned long long& hi, unsigned long long& lo,
                     uint64_t elem, int bit, int width) {
        if (bit >= 64) {
          hi |= elem << (bit - 64);
        } else {
          lo |= elem << bit;
          if (bit + width > 64) hi |= elem >> (64 - bit);
        }
      };
      for (int c = 0; c < 8; ++c) {
        pack(inw_hi, inw_lo,
             BitVec(12, idct::at(in, r, c)).to_uint64(), 12 * c, 12);
        pack(outw_hi, outw_lo,
             BitVec(9, idct::at(out, r, c)).to_uint64(), 9 * c, 9);
      }
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%08llx%016llx",
                    inw_hi & 0xffffffffULL, inw_lo);
      vec << buf << '\n';
      std::snprintf(buf, sizeof(buf), "%02llx%016llx", outw_hi & 0xffULL,
                    outw_lo);
      exp << buf << '\n';
    }
  }
  std::printf("wrote %s/vectors.hex and %s/expected.hex "
              "(for data/verilog/tb_idct.v)\n",
              outdir.c_str(), outdir.c_str());
  std::printf("open the waveform with: gtkwave %s\n", wpath.c_str());
  return 0;
}
