// Regenerates the scheduler-aware design-space exploration: tools::full_dse
// sweeps every flow's configuration grid with width narrowing on AND off
// (the "+wide" variants), the pipelined kernels for the RTL/Chisel flows,
// the XLS stage/objective/retiming grid, and every non-IDCT
// workload-registry cell — 200+ configurations over one par::SweepRunner
// pool.
//
// Emits dse.csv (the full scatter, workload column included) and
// BENCH_dse.json (obs::RunReport) with the per-workload A/P/Q fronts:
// minimum area, maximum throughput, and best quality with the winning
// config for each. scripts/bench_gate.py checks the fresh report against
// bench/baselines/BENCH_dse.json — config count must stay >= 200 and the
// best quality per workload must not regress.
//
// Usage: bench_dse [--jobs N]   (default: all cores)
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "base/check.hpp"
#include "base/strings.hpp"
#include "core/report.hpp"
#include "obs/report.hpp"
#include "par/pool.hpp"
#include "tools/flows.hpp"

using hlshc::format_fixed;

int main(int argc, char** argv) {
  int jobs = 0;  // 0 = all cores
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      try {
        jobs = hlshc::par::parse_jobs(argv[++i], "--jobs");
      } catch (const hlshc::Error& e) {
        std::fprintf(stderr, "%s\nusage: %s [--jobs N]\n", e.what(), argv[0]);
        return 1;
      }
    }
  }
  if (jobs == 0) jobs = hlshc::par::default_jobs();

  std::puts("=== scheduler-aware DSE: narrowing x scheduling x workload ===");
  std::printf("(sweeping every flow with narrowing on/off, the pipeline "
              "scheduler grid, and the workload cells over %d jobs)\n\n",
              jobs);

  const std::vector<hlshc::core::ScatterPoint> points =
      hlshc::tools::full_dse(jobs);
  HLSHC_CHECK(points.size() >= 200,
              "full_dse produced only " << points.size()
                                        << " configurations; the DSE "
                                           "contract is 200+");
  std::printf("configurations evaluated: %zu\n\n", points.size());

  std::map<std::string, std::vector<hlshc::core::ScatterPoint>> by_workload;
  for (const auto& p : points) by_workload[p.workload].push_back(p);

  hlshc::obs::RunReport report("bench_dse");
  report.params().set("jobs", hlshc::obs::Json::number(jobs));
  report.results().set(
      "configs", hlshc::obs::Json::number(static_cast<int64_t>(points.size())));
  hlshc::obs::Json workloads = hlshc::obs::Json::array();

  std::puts("--- per-workload A/P/Q fronts ---");
  for (const auto& [workload, pts] : by_workload) {
    const hlshc::core::ScatterPoint* min_a = &pts.front();
    const hlshc::core::ScatterPoint* max_p = &pts.front();
    const hlshc::core::ScatterPoint* best_q = &pts.front();
    for (const auto& p : pts) {
      if (p.area < min_a->area) min_a = &p;
      if (p.throughput_mops > max_p->throughput_mops) max_p = &p;
      if (p.quality() > best_q->quality()) best_q = &p;
    }
    const size_t front = hlshc::core::pareto_front(pts).size();
    std::printf("%-8s %3zu configs, pareto %2zu\n", workload.c_str(),
                pts.size(), front);
    std::printf("  A: %7ld        (%s %s)\n", min_a->area,
                min_a->family.c_str(), min_a->config.c_str());
    std::printf("  P: %10.3f MOPS (%s %s)\n", max_p->throughput_mops,
                max_p->family.c_str(), max_p->config.c_str());
    std::printf("  Q: %10.1f      (%s %s)\n", best_q->quality(),
                best_q->family.c_str(), best_q->config.c_str());

    hlshc::obs::Json row = hlshc::obs::Json::object();
    row.set("workload", hlshc::obs::Json::string(workload))
        .set("configs",
             hlshc::obs::Json::number(static_cast<int64_t>(pts.size())))
        .set("pareto_size",
             hlshc::obs::Json::number(static_cast<int64_t>(front)))
        .set("min_area",
             hlshc::obs::Json::number(static_cast<int64_t>(min_a->area)))
        .set("min_area_config",
             hlshc::obs::Json::string(min_a->family + " " + min_a->config))
        .set("max_mops", hlshc::obs::Json::number(max_p->throughput_mops))
        .set("max_mops_config",
             hlshc::obs::Json::string(max_p->family + " " + max_p->config))
        .set("best_quality", hlshc::obs::Json::number(best_q->quality()))
        .set("best_quality_config",
             hlshc::obs::Json::string(best_q->family + " " + best_q->config));
    workloads.push(std::move(row));
  }
  report.results().set("workloads", std::move(workloads));
  report.write_file("BENCH_dse.json");

  std::string csv = hlshc::core::scatter_csv(points);
  std::ofstream("dse.csv") << csv;
  std::puts("\n(scatter written to ./dse.csv, run report to "
            "./BENCH_dse.json)");
  return 0;
}
