// Section IV, Chisel narrative: width inference vs 32-bit Verilog. The
// paper: the initial Chisel design reaches 105.7% of Verilog's performance
// at 94.6% of its area (inferred widths trim the fat the Verilog code
// declares); the optimized design is 98.7% / 109.5%.
#include <cstdio>

#include "base/strings.hpp"
#include "chisel/designs.hpp"
#include "core/evaluate.hpp"
#include "tools/compile.hpp"
#include "rtl/designs.hpp"

using hlshc::format_fixed;

int main() {
  std::puts("=== Chisel width inference vs 32-bit Verilog ===\n");
  auto vi = hlshc::tools::evaluate_design(
      hlshc::rtl::build_verilog_initial());
  auto vo =
      hlshc::tools::evaluate_design(hlshc::rtl::build_verilog_opt2());
  auto ci = hlshc::tools::evaluate_design(
      hlshc::chisel::build_chisel_initial());
  auto co =
      hlshc::tools::evaluate_design(hlshc::chisel::build_chisel_opt());

  std::printf("initial:  perf %s%% of Verilog (paper 105.7%%),  "
              "area %s%% (paper 94.6%%)\n",
              format_fixed(100.0 * ci.throughput_mops / vi.throughput_mops,
                           1)
                  .c_str(),
              format_fixed(100.0 * ci.area / vi.area, 1).c_str());
  std::printf("optimized: perf %s%% of Verilog (paper 98.7%%),  "
              "area %s%% (paper 109.5%%)\n",
              format_fixed(100.0 * co.throughput_mops / vo.throughput_mops,
                           1)
                  .c_str(),
              format_fixed(100.0 * co.area / vo.area, 1).c_str());
  std::puts("\n(the mechanism: Chisel infers minimal net widths; the tool's"
            "\n width-trimming sweep recovers most — not all — of the same"
            "\n fat from the 32-bit Verilog, so the two land within a few"
            "\n percent, as the paper observes)");
  return 0;
}
