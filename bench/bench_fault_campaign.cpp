// Fault-injection campaign bench: SEU soft-error campaigns over the Verilog
// IDCT progression (initial 8row+8col vs. the optimized 1row+1col), plus the
// TMR-hardened optimized variant. Reports the outcome mix, the vulnerability
// factor VF = (SDC + hang) / runs, the campaign rate in faults/sec, and the
// paper's A / P / Q axes for each variant — what the hardening costs in
// Table II terms.
//
// Each campaign runs three ways — scalar (lanes=1, jobs=1), lane-batched
// (lanes=L, jobs=1) and batched-parallel (lanes=L, jobs=N; skipped when
// jobs == 1) — to report the batch and pool speedups alongside the
// classification results; the outcome counts are asserted identical across
// all runs (the {lanes, jobs} determinism contract).
//
// Writes BENCH_fault.json (cwd) through the obs::RunReport schema.
//
// Usage: bench_fault_campaign [sites_per_design] [--jobs N] [--lanes L]
//                              [--workload NAME|all]
//   sites_per_design defaults to 1000; --jobs defaults to all cores
//   (HLSHC_JOBS / hardware_concurrency); --lanes defaults to
//   par::default_lanes() (HLSHC_LANES, else 32); --workload campaigns a
//   workload registry entry's rtl_comb builder (and its TMR variant)
//   instead of the default IDCT progression; "all" covers every entry.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "base/strings.hpp"
#include "fault/campaign.hpp"
#include "fault/harden.hpp"
#include "fault/model.hpp"
#include "netlist/ir.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "base/check.hpp"
#include "par/pool.hpp"
#include "tools/compile.hpp"
#include "workload/workload.hpp"

using hlshc::format_fixed;
using hlshc::format_grouped;

namespace {

constexpr uint64_t kSampleSeed = 2026;
constexpr uint64_t kMaxInjectCycle = 60;  // within the 2-matrix stream window

struct CampaignTiming {
  double serial_sec = 0.0;    ///< scalar: lanes=1, jobs=1
  double batched_sec = 0.0;   ///< lane-batched: lanes=L, jobs=1
  double parallel_sec = 0.0;  ///< lanes=L, jobs=N (== batched when jobs=1)
  double speedup() const {
    return parallel_sec > 0 ? serial_sec / parallel_sec : 1.0;
  }
  double batch_speedup() const {
    return batched_sec > 0 ? serial_sec / batched_sec : 1.0;
  }
};

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

void check_counts_equal(const hlshc::fault::CampaignCounts& a,
                        const hlshc::fault::CampaignCounts& b,
                        const char* what) {
  if (a.masked != b.masked || a.sdc != b.sdc || a.detected != b.detected ||
      a.hang != b.hang) {
    std::fprintf(stderr, "FATAL: %s campaign diverged from the scalar run\n",
                 what);
    std::exit(1);
  }
}

/// Runs the campaign scalar (lanes=1, jobs=1), lane-batched (lanes=L,
/// jobs=1), then batched-parallel over `jobs` workers (skipped when
/// jobs == 1), verifies the outcome counts match bit-for-bit across all
/// three runs, and joins the final campaign with the A/P/Q axes.
hlshc::fault::DesignResilience measure(const hlshc::netlist::Design& d,
                                       const hlshc::workload::WorkloadSpec& spec,
                                       const hlshc::synth::NormalizedSynth& ns,
                                       int sites, int jobs, int lanes,
                                       CampaignTiming* timing) {
  auto sampled =
      hlshc::fault::sample_seu_sites(d, sites, kMaxInjectCycle, kSampleSeed);
  hlshc::fault::CampaignOptions opts;
  opts.matrices = 2;
  opts.max_cycles = 20000;
  opts.keep_runs = false;  // counts only; the run log is O(sites)

  opts.jobs = 1;
  opts.lanes = 1;
  auto t0 = std::chrono::steady_clock::now();
  hlshc::fault::CampaignReport scalar =
      hlshc::fault::run_campaign(d, spec, sampled, opts);
  timing->serial_sec = seconds_since(t0);

  opts.lanes = lanes;
  t0 = std::chrono::steady_clock::now();
  hlshc::fault::CampaignReport campaign =
      hlshc::fault::run_campaign(d, spec, sampled, opts);
  timing->batched_sec = seconds_since(t0);
  check_counts_equal(scalar.counts, campaign.counts, "lane-batched");

  timing->parallel_sec = timing->batched_sec;
  if (jobs != 1) {
    opts.jobs = jobs;
    t0 = std::chrono::steady_clock::now();
    campaign = hlshc::fault::run_campaign(d, spec, sampled, opts);
    timing->parallel_sec = seconds_since(t0);
    check_counts_equal(scalar.counts, campaign.counts, "batched-parallel");
  }
  return hlshc::fault::resilience_from_campaign(d, spec, std::move(campaign),
                                                ns, opts);
}

}  // namespace

int main(int argc, char** argv) {
  int sites = 1000;
  int jobs = 0;   // 0 = all cores
  int lanes = 0;  // 0 = par::default_lanes()
  std::string workload = "idct";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      try {
        jobs = hlshc::par::parse_jobs(argv[++i], "--jobs");
      } catch (const hlshc::Error& e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 1;
      }
    } else if (std::strcmp(argv[i], "--lanes") == 0 && i + 1 < argc) {
      try {
        lanes = hlshc::par::parse_lanes(argv[++i], "--lanes");
      } catch (const hlshc::Error& e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 1;
      }
    } else if (std::strcmp(argv[i], "--workload") == 0 && i + 1 < argc) {
      workload = argv[++i];
    } else {
      sites = std::atoi(argv[i]);
    }
  }
  if (sites <= 0 || jobs < 0) {
    std::fprintf(stderr,
                 "usage: %s [sites_per_design > 0] [--jobs N] [--lanes L] "
                 "[--workload NAME|all]\n",
                 argv[0]);
    return 1;
  }
  if (jobs == 0) jobs = hlshc::par::default_jobs();
  if (lanes == 0) lanes = hlshc::par::default_lanes();

  // One trace id for the whole invocation — campaign spans, pool chunks and
  // events all correlate under it, exactly like a traced service request.
  const hlshc::obs::TraceScope bench_trace(hlshc::obs::new_trace());

  std::printf(
      "=== SEU campaign: %d sampled sites/design, seed %llu, %d jobs, "
      "%d lanes ===\n\n",
      sites, static_cast<unsigned long long>(kSampleSeed), jobs, lanes);

  struct Row {
    std::string tag;
    const hlshc::workload::WorkloadSpec* spec;
    hlshc::netlist::Design design;
  };
  const hlshc::workload::Registry& registry =
      hlshc::workload::Registry::instance();
  std::vector<std::string> workload_names;
  try {
    if (workload == "all")
      workload_names = registry.names();
    else
      workload_names = {registry.get(workload).name};
  } catch (const hlshc::Error& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
  // The compile pipeline runs exactly once, *before* hardening: CSE would
  // otherwise merge the TMR triplicates right back into one copy. Synthesis
  // below therefore goes through the canonical entry with the pipeline off.
  std::vector<Row> rows;
  for (const std::string& name : workload_names) {
    const hlshc::workload::WorkloadSpec& spec = registry.get(name);
    if (name == "idct") {
      hlshc::netlist::Design base_initial =
          hlshc::tools::compile(spec.builder("verilog_initial").build()).design;
      hlshc::netlist::Design base_opt2 =
          hlshc::tools::compile(spec.builder("verilog_opt2").build()).design;
      rows.push_back({"verilog initial", &spec, base_initial});
      rows.push_back({"verilog opt2", &spec, base_opt2});
      rows.push_back({"verilog opt2 + TMR", &spec, hlshc::fault::tmr(base_opt2)});
    } else {
      hlshc::netlist::Design base =
          hlshc::tools::compile(spec.builder("rtl_comb").build()).design;
      rows.push_back({name + " rtl_comb", &spec, base});
      rows.push_back({name + " rtl_comb + TMR", &spec,
                      hlshc::fault::tmr(base)});
    }
  }

  hlshc::obs::RunReport report("bench_fault_campaign");
  report.params()
      .set("sites_per_design", hlshc::obs::Json::number(sites))
      .set("sample_seed",
           hlshc::obs::Json::number(static_cast<int64_t>(kSampleSeed)))
      .set("max_inject_cycle",
           hlshc::obs::Json::number(static_cast<int64_t>(kMaxInjectCycle)))
      .set("jobs", hlshc::obs::Json::number(jobs))
      .set("lanes", hlshc::obs::Json::number(lanes))
      .set("workload", hlshc::obs::Json::string(workload));
  hlshc::obs::Json designs = hlshc::obs::Json::array();

  std::vector<hlshc::fault::DesignResilience> results;
  for (const Row& row : rows) {
    CampaignTiming timing;
    hlshc::tools::CompileOptions no_pipeline;
    no_pipeline.optimize = false;  // already compiled above, pre-hardening
    hlshc::synth::NormalizedSynth ns =
        hlshc::tools::compile_synth_normalized(row.design, no_pipeline);
    results.push_back(
        measure(row.design, *row.spec, ns, sites, jobs, lanes, &timing));
    const hlshc::fault::DesignResilience& r = results.back();
    const hlshc::fault::CampaignCounts& c = r.campaign.counts;
    double rate =
        timing.parallel_sec > 0 ? sites / timing.parallel_sec : 0.0;
    double rate_scalar =
        timing.serial_sec > 0 ? sites / timing.serial_sec : 0.0;
    double rate_batched =
        timing.batched_sec > 0 ? sites / timing.batched_sec : 0.0;
    std::printf(
        "%-20s %8s faults/sec  masked=%d sdc=%d detected=%d hang=%d  VF=%s\n",
        row.tag.c_str(), format_fixed(rate, 1).c_str(), c.masked, c.sdc,
        c.detected,
        c.hang, format_fixed(c.vulnerability(), 4).c_str());
    std::printf(
        "%-20s scalar %ss  batched(lanes=%d) %ss (%sx)  "
        "parallel(jobs=%d) %ss (%sx)\n",
        "", format_fixed(timing.serial_sec, 2).c_str(), lanes,
        format_fixed(timing.batched_sec, 2).c_str(),
        format_fixed(timing.batch_speedup(), 2).c_str(), jobs,
        format_fixed(timing.parallel_sec, 2).c_str(),
        format_fixed(timing.speedup(), 2).c_str());

    hlshc::obs::Json entry = hlshc::obs::Json::object();
    entry.set("design", hlshc::obs::Json::string(row.tag))
        .set("workload", hlshc::obs::Json::string(row.spec->name))
        .set("runs", hlshc::obs::Json::number(c.total()))
        .set("masked", hlshc::obs::Json::number(c.masked))
        .set("sdc", hlshc::obs::Json::number(c.sdc))
        .set("detected", hlshc::obs::Json::number(c.detected))
        .set("hang", hlshc::obs::Json::number(c.hang))
        .set("vulnerability_factor",
             hlshc::obs::Json::number(c.vulnerability()))
        .set("faults_per_sec", hlshc::obs::Json::number(rate))
        .set("faults_per_sec_scalar", hlshc::obs::Json::number(rate_scalar))
        .set("faults_per_sec_batched", hlshc::obs::Json::number(rate_batched))
        .set("serial_sec", hlshc::obs::Json::number(timing.serial_sec))
        .set("batched_sec", hlshc::obs::Json::number(timing.batched_sec))
        .set("parallel_sec", hlshc::obs::Json::number(timing.parallel_sec))
        .set("speedup", hlshc::obs::Json::number(timing.speedup()))
        .set("batch_speedup",
             hlshc::obs::Json::number(timing.batch_speedup()))
        .set("fmax_mhz", hlshc::obs::Json::number(r.fmax_mhz))
        .set("periodicity_cycles",
             hlshc::obs::Json::number(r.periodicity_cycles))
        .set("throughput_mops", hlshc::obs::Json::number(r.throughput_mops))
        .set("area", hlshc::obs::Json::number(static_cast<int64_t>(r.area)))
        .set("quality", hlshc::obs::Json::number(r.quality));
    designs.push(std::move(entry));
  }
  report.results().set("designs", std::move(designs));
  report.write_file("BENCH_fault.json");
  std::printf("\nwrote BENCH_fault.json\n");

  std::printf("\n%s\n", hlshc::fault::resilience_table(results).c_str());

  // The hardened row is always last, its unhardened baseline right before.
  const size_t tmr_idx = results.size() - 1;
  const size_t base_idx = results.size() - 2;
  const hlshc::fault::CampaignCounts& tmr_counts =
      results[tmr_idx].campaign.counts;
  std::printf("TMR check: %d runs, %d SDC, %d hangs (expect 0 / 0)\n",
              tmr_counts.total(), tmr_counts.sdc, tmr_counts.hang);
  std::printf("TMR area cost: A %s -> %s (%sx), Q %s -> %s\n",
              format_grouped(results[base_idx].area).c_str(),
              format_grouped(results[tmr_idx].area).c_str(),
              format_fixed(static_cast<double>(results[tmr_idx].area) /
                               static_cast<double>(results[base_idx].area),
                           2)
                  .c_str(),
              format_fixed(results[base_idx].quality, 2).c_str(),
              format_fixed(results[tmr_idx].quality, 2).c_str());
  return tmr_counts.sdc == 0 && tmr_counts.hang == 0 ? 0 : 1;
}
