// Fault-injection campaign bench: SEU soft-error campaigns over the Verilog
// IDCT progression (initial 8row+8col vs. the optimized 1row+1col), plus the
// TMR-hardened optimized variant. Reports the outcome mix, the vulnerability
// factor VF = (SDC + hang) / runs, the campaign rate in faults/sec, and the
// paper's A / P / Q axes for each variant — what the hardening costs in
// Table II terms.
//
// Writes BENCH_fault.json (cwd) through the obs::RunReport schema.
//
// Usage: bench_fault_campaign [sites_per_design]   (default 1000)
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "base/strings.hpp"
#include "fault/campaign.hpp"
#include "fault/harden.hpp"
#include "fault/model.hpp"
#include "netlist/ir.hpp"
#include "obs/report.hpp"
#include "rtl/designs.hpp"

using hlshc::format_fixed;
using hlshc::format_grouped;

namespace {

constexpr uint64_t kSampleSeed = 2026;
constexpr uint64_t kMaxInjectCycle = 60;  // within the 2-matrix stream window

hlshc::fault::DesignResilience measure(const hlshc::netlist::Design& d,
                                       int sites, double* faults_per_sec) {
  auto sampled =
      hlshc::fault::sample_seu_sites(d, sites, kMaxInjectCycle, kSampleSeed);
  hlshc::fault::CampaignOptions opts;
  opts.matrices = 2;
  opts.max_cycles = 20000;
  opts.keep_runs = false;  // counts only; the run log is O(sites)
  auto t0 = std::chrono::steady_clock::now();
  auto r = hlshc::fault::evaluate_resilience(d, sampled, opts);
  auto t1 = std::chrono::steady_clock::now();
  double secs = std::chrono::duration<double>(t1 - t0).count();
  *faults_per_sec = secs > 0 ? sites / secs : 0.0;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  int sites = 1000;
  if (argc > 1) sites = std::atoi(argv[1]);
  if (sites <= 0) {
    std::fprintf(stderr, "usage: %s [sites_per_design > 0]\n", argv[0]);
    return 1;
  }

  std::printf("=== SEU campaign: %d sampled sites/design, seed %llu ===\n\n",
              sites, static_cast<unsigned long long>(kSampleSeed));

  struct Row {
    const char* tag;
    hlshc::netlist::Design design;
  };
  std::vector<Row> rows;
  rows.push_back({"verilog initial", hlshc::rtl::build_verilog_initial()});
  rows.push_back({"verilog opt2", hlshc::rtl::build_verilog_opt2()});
  rows.push_back(
      {"verilog opt2 + TMR", hlshc::fault::tmr(hlshc::rtl::build_verilog_opt2())});

  hlshc::obs::RunReport report("bench_fault_campaign");
  report.params()
      .set("sites_per_design", hlshc::obs::Json::number(sites))
      .set("sample_seed",
           hlshc::obs::Json::number(static_cast<int64_t>(kSampleSeed)))
      .set("max_inject_cycle",
           hlshc::obs::Json::number(static_cast<int64_t>(kMaxInjectCycle)));
  hlshc::obs::Json designs = hlshc::obs::Json::array();

  std::vector<hlshc::fault::DesignResilience> results;
  for (const Row& row : rows) {
    double rate = 0.0;
    results.push_back(measure(row.design, sites, &rate));
    const hlshc::fault::DesignResilience& r = results.back();
    const hlshc::fault::CampaignCounts& c = r.campaign.counts;
    std::printf(
        "%-20s %8s faults/sec  masked=%d sdc=%d detected=%d hang=%d  VF=%s\n",
        row.tag, format_fixed(rate, 1).c_str(), c.masked, c.sdc, c.detected,
        c.hang, format_fixed(c.vulnerability(), 4).c_str());

    hlshc::obs::Json entry = hlshc::obs::Json::object();
    entry.set("design", hlshc::obs::Json::string(row.tag))
        .set("runs", hlshc::obs::Json::number(c.total()))
        .set("masked", hlshc::obs::Json::number(c.masked))
        .set("sdc", hlshc::obs::Json::number(c.sdc))
        .set("detected", hlshc::obs::Json::number(c.detected))
        .set("hang", hlshc::obs::Json::number(c.hang))
        .set("vulnerability_factor",
             hlshc::obs::Json::number(c.vulnerability()))
        .set("faults_per_sec", hlshc::obs::Json::number(rate))
        .set("fmax_mhz", hlshc::obs::Json::number(r.fmax_mhz))
        .set("periodicity_cycles",
             hlshc::obs::Json::number(r.periodicity_cycles))
        .set("throughput_mops", hlshc::obs::Json::number(r.throughput_mops))
        .set("area", hlshc::obs::Json::number(static_cast<int64_t>(r.area)))
        .set("quality", hlshc::obs::Json::number(r.quality));
    designs.push(std::move(entry));
  }
  report.results().set("designs", std::move(designs));
  report.write_file("BENCH_fault.json");
  std::printf("\nwrote BENCH_fault.json\n");

  std::printf("\n%s\n", hlshc::fault::resilience_table(results).c_str());

  const hlshc::fault::CampaignCounts& tmr_counts = results[2].campaign.counts;
  std::printf("TMR check: %d runs, %d SDC, %d hangs (expect 0 / 0)\n",
              tmr_counts.total(), tmr_counts.sdc, tmr_counts.hang);
  std::printf("TMR area cost: A %s -> %s (%sx), Q %s -> %s\n",
              format_grouped(results[1].area).c_str(),
              format_grouped(results[2].area).c_str(),
              format_fixed(static_cast<double>(results[2].area) /
                               static_cast<double>(results[1].area),
                           2)
                  .c_str(),
              format_fixed(results[1].quality, 2).c_str(),
              format_fixed(results[2].quality, 2).c_str());
  return tmr_counts.sdc == 0 && tmr_counts.hang == 0 ? 0 : 1;
}
