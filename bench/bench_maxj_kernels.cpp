// Section IV, MaxJ narrative: the matrix-per-tick kernel is PCIe-bound
// (paper: ~123 MOPS = 16 GB/s / 1024 bit, 47-stage pipeline at the study's
// highest clock); the row-per-tick kernel trades 2.7x throughput for 2.8x
// area and slightly better quality.
#include <cstdio>

#include "base/strings.hpp"
#include "maxj/kernels.hpp"
#include "maxj/system.hpp"
#include "tools/compile.hpp"

using hlshc::format_fixed;
using hlshc::format_grouped;
using namespace hlshc::maxj;

int main() {
  std::puts("=== MaxJ kernels and the PCIe system model ===\n");
  Kernel matrix = build_matrix_kernel();
  Kernel row = build_row_kernel();
  SystemEvaluation em = evaluate_system(
      matrix, hlshc::tools::compile_synth_normalized(matrix.design));
  SystemEvaluation er = evaluate_system(
      row, hlshc::tools::compile_synth_normalized(row.design));

  auto show = [](const char* tag, const Kernel& k,
                 const SystemEvaluation& e) {
    std::printf("%-16s depth=%2d ticks/op=%d fmax=%7s MHz  "
                "P=%8s MOPS (%s-bound)  A=%8s  DSP=%ld\n",
                tag, k.depth, k.ticks_per_op,
                format_fixed(e.synth.normal.fmax_mhz, 2).c_str(),
                format_fixed(e.throughput_ops / 1e6, 2).c_str(),
                e.pcie_limited ? "PCIe" : "clock",
                format_grouped(e.synth.area()).c_str(),
                e.synth.normal.n_dsp);
  };
  show("matrix kernel", matrix, em);
  show("row kernel", row, er);

  std::puts("\n--- paper vs measured ---");
  std::printf("matrix kernel throughput: paper 123.08 MOPS (PCIe 3.0 x16 / "
              "1024 bit), measured %s MOPS\n",
              format_fixed(em.throughput_ops / 1e6, 2).c_str());
  std::printf("row kernel area reduction: paper 2.8x, measured %sx\n",
              format_fixed(static_cast<double>(em.synth.area()) /
                               er.synth.area(),
                           2)
                  .c_str());
  std::printf("row kernel throughput reduction: paper 2.7x, measured %sx\n",
              format_fixed(em.throughput_ops / er.throughput_ops, 2)
                  .c_str());
  std::printf("row kernel quality gain: paper +4%%, measured %+.0f%%\n",
              100.0 * (er.throughput_ops / er.synth.area()) /
                      (em.throughput_ops / em.synth.area()) -
                  100.0);
  std::printf("pipeline FF bill (matrix kernel): paper N*_FF 35,876, "
              "measured %s\n",
              format_grouped(em.synth.nodsp.n_ff).c_str());
  return 0;
}
