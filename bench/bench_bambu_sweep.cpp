// Section IV, Bambu narrative: the 42-configuration sweep (7 experimental-
// setup presets x speculative SDC x memory-allocation policy). The paper:
// most options have no tangible impact; the best quality comes from
// BAMBU-PERFORMANCE-MP with speculative-sdc-scheduling, and even that stays
// far below every other flow (C_Q = 6.1%).
#include <algorithm>
#include <cstdio>

#include "base/strings.hpp"
#include "core/evaluate.hpp"
#include "tools/compile.hpp"
#include "hls/tool.hpp"
#include "rtl/designs.hpp"

using hlshc::format_fixed;
using namespace hlshc::hls;

int main() {
  std::puts("=== Bambu configuration sweep (42 circuits) ===\n");
  const std::string src = idct_source();
  hlshc::core::EvaluateOptions eo;
  eo.matrices = 3;

  double best_q = 0;
  std::string best_label;
  double best_tp = 0;
  int n = 0;
  for (const BambuOptions& o : bambu_sweep()) {
    HlsCompileResult r = compile_bambu(src, o);
    auto ev = hlshc::tools::evaluate_design(r.design, {}, eo);
    ++n;
    if (n <= 3 || n % 10 == 0)
      std::printf("  [%2d] %-38s states=%3d  fmax=%7s  T_P=%5s  Q=%s\n", n,
                  o.label().c_str(), r.kernel_states,
                  format_fixed(ev.fmax_mhz, 2).c_str(),
                  format_fixed(ev.periodicity_cycles, 0).c_str(),
                  format_fixed(ev.quality(), 2).c_str());
    if (ev.quality() > best_q) {
      best_q = ev.quality();
      best_label = o.label();
      best_tp = ev.periodicity_cycles;
    }
  }

  auto vbest =
      hlshc::tools::evaluate_design(hlshc::rtl::build_verilog_opt2());
  std::printf("\nbest of %d configs: %s (T_P=%s)\n", n, best_label.c_str(),
              format_fixed(best_tp, 0).c_str());
  std::printf("paper best: BAMBU-PERFORMANCE-MP + speculative-sdc + LSS "
              "(T_P=185)\n");
  std::printf("controllability C_Q: paper 6.1%%, measured %s%% — the worst "
              "flow in both\n",
              format_fixed(100.0 * best_q / vbest.quality(), 1).c_str());
  return 0;
}
