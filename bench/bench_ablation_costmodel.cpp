// Ablation: the synthesis cost model's knobs, exercised on the Verilog
// designs. Shows what each modelling decision (DSP budget, CSD recoding,
// range narrowing, trim slack) contributes to the reported numbers — the
// calibration story behind EXPERIMENTS.md.
#include <cstdio>

#include "base/strings.hpp"
#include "rtl/designs.hpp"
#include "synth/synthesize.hpp"
#include "tools/compile.hpp"

using hlshc::format_fixed;
using hlshc::format_grouped;
using namespace hlshc;

namespace {

void run(const char* tag, const synth::SynthOptions& opts) {
  auto init = tools::compile_synth(rtl::build_verilog_initial(), {}, opts);
  auto opt = tools::compile_synth(rtl::build_verilog_opt2(), {}, opts);
  std::printf("%-34s init: fmax=%7s LUT=%7s DSP=%4ld | opt: fmax=%7s "
              "LUT=%6s DSP=%3ld\n",
              tag, format_fixed(init.fmax_mhz, 2).c_str(),
              format_grouped(init.n_lut).c_str(), init.n_dsp,
              format_fixed(opt.fmax_mhz, 2).c_str(),
              format_grouped(opt.n_lut).c_str(), opt.n_dsp);
}

}  // namespace

int main() {
  std::puts("=== Cost-model ablation (Verilog initial / optimized) ===\n");

  synth::SynthOptions base;
  run("baseline (DSP, CSD, narrowing)", base);

  synth::SynthOptions nodsp = base;
  nodsp.maxdsp = 0;
  run("maxdsp=0 (the paper's A metric)", nodsp);

  synth::SynthOptions few_dsp = base;
  few_dsp.maxdsp = 40;
  run("maxdsp=40 (budgeted mapping)", few_dsp);

  synth::SynthOptions naive = base;
  naive.maxdsp = 0;
  naive.csd_recoding = false;
  run("maxdsp=0 + naive binary shift-add", naive);

  synth::SynthOptions wide = base;
  wide.range_narrowing = false;
  run("no range narrowing (declared widths)", wide);

  synth::SynthOptions exact = base;
  exact.trim_slack = 0.0;
  run("perfect trim (slack=0)", exact);

  synth::SynthOptions sloppy = base;
  sloppy.trim_slack = 0.5;
  run("poor trim (slack=0.5)", sloppy);

  std::puts("\nTakeaways: DSP mapping halves the LUT bill of the butterfly "
            "constants; CSD recoding\nsaves ~20-30% of shift-add fabric; "
            "range narrowing is what keeps 32-bit source\narithmetic from "
            "tripling the area (the Verilog-vs-Chisel story).");
  return 0;
}
