// EXTENSION EXPERIMENT (beyond the paper): the composition design space.
//
// The paper's conclusion sketches a framework where units from different
// lower-level tools compose behind generated interfaces. With that
// framework built (src/framework), a *new* design space opens that the
// paper could not explore: every (row-pass source) x (column-pass source)
// x (pipeline depth) combination. This bench sweeps it and reports the
// same Performance x Area scatter as Fig. 1 — including points that beat
// every single-flow design of Table II.
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "base/strings.hpp"
#include "chisel/designs.hpp"
#include "core/evaluate.hpp"
#include "core/report.hpp"
#include "framework/compose.hpp"
#include "tools/compile.hpp"
#include "hls/ast.hpp"
#include "hls/tool.hpp"
#include "rtl/units.hpp"
#include "xls/pipeline.hpp"

using namespace hlshc;

namespace {

struct PassSource {
  std::string name;
  std::function<netlist::Design(bool is_row)> build;  // comb pass kernel
};

netlist::Design rtl_pass(bool is_row) {
  netlist::Design d(is_row ? "rtl_row" : "rtl_col");
  std::array<netlist::NodeId, 8> in;
  for (int i = 0; i < 8; ++i)
    in[static_cast<size_t>(i)] =
        d.input("i" + std::to_string(i), is_row ? 12 : 16);
  auto out = is_row ? rtl::build_row_unit(d, in) : rtl::build_col_unit(d, in);
  for (int i = 0; i < 8; ++i)
    d.output("o" + std::to_string(i), out[static_cast<size_t>(i)]);
  return d;
}

netlist::Design hls_pass(bool is_row) {
  static hls::Program prog = hls::parse(hls::idct_source());
  hls::LeafDfg leaf =
      hls::lower_leaf(prog, is_row ? "idctrow" : "idctcol", 0);
  return hls::leaf_to_netlist(leaf, is_row ? "hls_row" : "hls_col",
                              is_row ? 12 : 16);
}

netlist::Design chisel_pass(bool is_row) {
  return is_row ? chisel::build_row_pass_kernel()
                : chisel::build_col_pass_kernel(16);
}

}  // namespace

int main() {
  std::puts("=== Extension: the mixed-flow composition design space ===");
  std::puts("(not in the paper — enabled by its future-work framework)\n");

  std::vector<PassSource> sources = {
      {"verilog", rtl_pass}, {"hls-c", hls_pass}, {"chisel", chisel_pass}};

  std::vector<core::ScatterPoint> points;
  std::puts("row-src   col-src   stages  fmax(MHz)   T_L  T_P     A        Q");
  for (const PassSource& rs : sources) {
    for (const PassSource& cs : sources) {
      for (int stages : {1, 2}) {
        auto row = xls::pipeline_function(rs.build(true), stages);
        auto col = xls::pipeline_function(cs.build(false), stages);
        netlist::Design d = framework::compose_row_col(
            framework::PassKernel{row.design, row.latency},
            framework::PassKernel{col.design, col.latency}, 16,
            rs.name + "+" + cs.name + "_s" + std::to_string(stages));
        core::DesignEvaluation ev = tools::evaluate_design(d);
        if (!ev.functional) {
          std::printf("%-9s %-9s %5d   NOT FUNCTIONAL\n", rs.name.c_str(),
                      cs.name.c_str(), stages);
          continue;
        }
        std::printf("%-9s %-9s %5d %10s %5d %4s %8ld %8s\n", rs.name.c_str(),
                    cs.name.c_str(), stages,
                    format_fixed(ev.fmax_mhz, 2).c_str(), ev.latency_cycles,
                    format_fixed(ev.periodicity_cycles, 0).c_str(), ev.area,
                    format_fixed(ev.quality(), 0).c_str());
        points.push_back(core::ScatterPoint{
            rs.name + "+" + cs.name, "s" + std::to_string(stages),
            ev.throughput_mops, ev.area});
      }
    }
  }

  std::puts("\n--- Pareto frontier of the composition space ---");
  for (const auto& p : core::pareto_front(points))
    std::printf("  %-18s %-4s P=%6.2f MOPS  A=%6ld  Q=%.0f\n",
                p.family.c_str(), p.config.c_str(), p.throughput_mops,
                p.area, p.quality());
  std::puts("\nTakeaway: the composed designs all sustain periodicity 8 at "
            "latency 24+Lr+Lc,\nand cross-tool mixes are as good as "
            "single-tool ones — the interoperability\nthe paper's future "
            "framework is after.");
  return 0;
}
