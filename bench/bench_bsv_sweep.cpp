// Section IV, BSV narrative: 26 circuits from scheduler options and code
// attributes; the paper finds "the settings have a negligible impact on
// the performance and area", and the optimized design carries a one-cycle
// scheduling bubble (periodicity 9 instead of 8).
#include <algorithm>
#include <cstdio>
#include <vector>

#include "base/strings.hpp"
#include "bsv/designs.hpp"
#include "core/evaluate.hpp"
#include "tools/compile.hpp"

using hlshc::format_fixed;
using namespace hlshc::bsv;

int main() {
  std::puts("=== BSV scheduler-option sweep (26 circuits) ===\n");

  std::vector<SchedulerOptions> configs;
  configs.push_back({});
  for (UrgencyOrder u : {UrgencyOrder::kDeclaration, UrgencyOrder::kReversed,
                         UrgencyOrder::kConflictSorted})
    for (MuxStyle s : {MuxStyle::kPriorityChain, MuxStyle::kOneHotAndOr})
      for (bool ac : {false, true})
        configs.push_back({u, s, ac});

  int n = 0;
  for (bool opt_design : {false, true}) {
    double min_q = 1e18, max_q = 0;
    for (const auto& cfg : configs) {
      auto design = opt_design ? build_bsv_opt(cfg) : build_bsv_initial(cfg);
      auto ev = hlshc::tools::evaluate_design(design);
      double q = ev.quality();
      min_q = std::min(min_q, q);
      max_q = std::max(max_q, q);
      ++n;
      if (n <= 4 || n == 14 || n == 26)
        std::printf("  [%2d] %-12s fmax=%7s  A=%6ld  T_P=%s  Q=%s\n", n,
                    opt_design ? "opt" : "initial",
                    format_fixed(ev.fmax_mhz, 2).c_str(), ev.area,
                    format_fixed(ev.periodicity_cycles, 0).c_str(),
                    format_fixed(q, 1).c_str());
    }
    std::printf("  %s design: 13 configs, quality spread max/min = %s "
                "(paper: negligible)\n",
                opt_design ? "optimized" : "initial",
                format_fixed(max_q / min_q, 3).c_str());
  }
  std::printf("\ncircuits: %d\n", n);

  auto opt = hlshc::tools::evaluate_design(build_bsv_opt());
  std::printf("optimized-design periodicity: paper 9 (the bubble), "
              "measured %s\n",
              format_fixed(opt.periodicity_cycles, 0).c_str());
  return 0;
}
