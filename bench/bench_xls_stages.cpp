// Section IV, XLS narrative: the single-knob sweep over pipeline_stages
// (19 configurations: combinational + 1..18). The paper finds maximum
// quality at 8 requested stages; pipelining raises fmax while flip-flops
// balloon (optimized XLS: 221% of optimized-Verilog performance at 578%
// of its area).
#include <cstdio>

#include "base/strings.hpp"
#include "core/evaluate.hpp"
#include "tools/compile.hpp"
#include "par/sweep.hpp"
#include "rtl/designs.hpp"
#include "xls/designs.hpp"

using hlshc::format_fixed;

int main() {
  std::puts("=== XLS pipeline_stages sweep (19 circuits) ===\n");
  std::puts("stages  eff.lat  fmax(MHz)   P(MOPS)   T_P     A        Q");

  // The 19 configurations are independent design points: evaluate them over
  // a worker pool, then print in stage order from the in-order result list.
  struct Point {
    int kernel_latency = 0;
    hlshc::core::DesignEvaluation ev;
  };
  hlshc::par::SweepRunner runner(0);  // all cores / HLSHC_JOBS
  std::vector<Point> sweep =
      runner.map<Point>("xls_stages", 19, [](int64_t stages) {
        auto xd = hlshc::xls::build_xls_design({static_cast<int>(stages)});
        return Point{xd.kernel_latency,
                     hlshc::tools::evaluate_design(xd.design)};
      });

  double best_q = 0;
  int best_stages = -1;
  hlshc::core::DesignEvaluation best_ev;
  for (int stages = 0; stages <= 18; ++stages) {
    const Point& p = sweep[static_cast<size_t>(stages)];
    const hlshc::core::DesignEvaluation& ev = p.ev;
    std::printf("%5d %8d %10s %9s %6s %8ld %8s\n", stages,
                p.kernel_latency, format_fixed(ev.fmax_mhz, 2).c_str(),
                format_fixed(ev.throughput_mops, 2).c_str(),
                format_fixed(ev.periodicity_cycles, 1).c_str(), ev.area,
                format_fixed(ev.quality(), 1).c_str());
    if (ev.quality() > best_q) {
      best_q = ev.quality();
      best_stages = stages;
      best_ev = ev;
    }
  }

  auto vopt =
      hlshc::tools::evaluate_design(hlshc::rtl::build_verilog_opt2());
  std::printf("\nbest quality at %d requested stages (paper: 8)\n",
              best_stages);
  std::printf("best-XLS vs optimized Verilog: perf %s%% (paper 221.2%%), "
              "area %s%% (paper 578.1%%)\n",
              format_fixed(100.0 * best_ev.throughput_mops /
                               vopt.throughput_mops,
                           1)
                  .c_str(),
              format_fixed(100.0 * best_ev.area / vopt.area, 1).c_str());
  std::puts("(the sequential adapter caps throughput at one row per cycle "
            "— the paper's point that the interface, not the kernel, "
            "limits the design)");
  return 0;
}
