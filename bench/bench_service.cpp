// Service-layer bench: throughput, latency percentiles, cache hit rate and
// shed rate of svc::Server under an open-loop request storm, at admission
// queue depths 1, 8 and 64.
//
// Each round submits `requests` compile/evaluate requests (drawn round-robin
// over the built-in design registry, so the cache sees a realistic mix of
// hits after the first lap) from `clients` submitter threads against a
// server with the given queue capacity. Each submitter keeps a bounded
// window of in-flight requests (8) and never backs off on shed — so a
// shallow queue is overcommitted and must shed, while a deep queue absorbs
// the same offered load; the bench reports what admission depth buys in
// shed rate and costs in p99 latency.
//
// Writes BENCH_service.json (cwd) through the obs::RunReport schema.
//
// Usage: bench_service [--jobs N] [--requests N] [--clients N]
//                      [--trace FILE] [--event-log FILE]
//   --jobs      worker threads per server round (default: all cores)
//   --requests  requests per round (default 400)
//   --clients   submitter threads (default 4)
//   --trace     record Chrome trace_event spans for the whole storm
//   --event-log append the structured event log to FILE as JSON lines
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "base/check.hpp"
#include "base/strings.hpp"
#include "obs/event_log.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "par/pool.hpp"
#include "svc/server.hpp"

using hlshc::format_fixed;

namespace {

struct RoundResult {
  int queue_capacity = 0;
  int64_t submitted = 0;
  int64_t ok = 0;
  int64_t shed = 0;
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;
  double wall_sec = 0.0;
  int64_t p50_ns = 0;
  int64_t p99_ns = 0;
  double req_per_sec() const {
    return wall_sec > 0 ? static_cast<double>(ok) / wall_sec : 0.0;
  }
  double shed_rate() const {
    return submitted > 0 ? static_cast<double>(shed) / submitted : 0.0;
  }
  double hit_rate() const {
    const int64_t lookups = cache_hits + cache_misses;
    return lookups > 0 ? static_cast<double>(cache_hits) / lookups : 0.0;
  }
};

RoundResult run_round(int queue_capacity, int jobs, int requests,
                      int clients) {
  using namespace hlshc;
  obs::registry().reset();

  svc::ServerOptions options;
  options.workers = jobs;
  options.queue_capacity = queue_capacity;
  svc::Server server(options);

  // A mixed, cache-friendly request schedule: five designs round-robin,
  // mostly compiles with an evaluate every 5th request.
  const std::vector<std::string> designs = server.design_names();
  std::vector<std::string> lines;
  lines.reserve(static_cast<size_t>(requests));
  for (int i = 0; i < requests; ++i) {
    const std::string& design =
        designs[static_cast<size_t>(i) % designs.size()];
    const bool evaluate = i % 5 == 4;
    lines.push_back(
        std::string("{\"id\":") + std::to_string(i) + ",\"method\":\"" +
        (evaluate ? "evaluate" : "compile") + "\",\"params\":{\"design\":\"" +
        design + "\"" + (evaluate ? ",\"matrices\":1" : "") + "}}");
  }

  // Windowed storm: each submitter keeps up to kWindow requests in flight,
  // draining the oldest future once the window fills. Response latency is
  // measured by the server itself (the svc.request_ns histogram runs
  // admission -> response).
  constexpr size_t kWindow = 8;
  std::atomic<int64_t> ok{0}, shed{0};
  const auto settle = [&](std::string response) {
    if (response.find("\"ok\":true") != std::string::npos)
      ++ok;
    else if (response.find("\"code\":\"overloaded\"") != std::string::npos)
      ++shed;
    else
      HLSHC_CHECK(false, "unexpected bench response: " << response);
  };
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> submitters;
  for (int c = 0; c < clients; ++c)
    submitters.emplace_back([&, c] {
      std::vector<std::future<std::string>> window;
      for (int i = c; i < requests; i += clients) {
        window.push_back(server.submit(lines[static_cast<size_t>(i)]));
        if (window.size() >= kWindow) {
          settle(window.front().get());
          window.erase(window.begin());
        }
      }
      for (auto& f : window) settle(f.get());
    });
  for (auto& t : submitters) t.join();

  RoundResult r;
  r.queue_capacity = queue_capacity;
  r.submitted = requests;
  r.ok = ok.load();
  r.shed = shed.load();
  r.wall_sec = std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - t0)
                   .count();

  const svc::DesignCache::Stats cache = server.cache_stats();
  r.cache_hits = cache.hits;
  r.cache_misses = cache.misses;
  obs::Histogram* lat = obs::registry().histogram("svc.request_ns");
  r.p50_ns = lat->percentile(0.5);
  r.p99_ns = lat->percentile(0.99);
  HLSHC_CHECK(r.shed == server.shed_count(),
              "shed responses (" << r.shed << ") disagree with the queue ("
                                 << server.shed_count() << ')');
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hlshc;
  int jobs = 0;  // 0 = all cores
  int requests = 400;
  int clients = 4;
  std::string trace_path;
  std::string event_log_path;
  for (int i = 1; i < argc; ++i) {
    const bool has_value = i + 1 < argc;
    try {
      if (std::strcmp(argv[i], "--jobs") == 0 && has_value)
        jobs = par::parse_jobs(argv[++i], "--jobs");
      else if (std::strcmp(argv[i], "--requests") == 0 && has_value)
        requests = std::atoi(argv[++i]);
      else if (std::strcmp(argv[i], "--clients") == 0 && has_value)
        clients = par::parse_jobs(argv[++i], "--clients");
      else if (std::strcmp(argv[i], "--trace") == 0 && has_value)
        trace_path = argv[++i];
      else if (std::strcmp(argv[i], "--event-log") == 0 && has_value)
        event_log_path = argv[++i];
      else {
        std::fprintf(stderr,
                     "usage: %s [--jobs N] [--requests N] [--clients N]"
                     " [--trace FILE] [--event-log FILE]\n",
                     argv[0]);
        return 1;
      }
    } catch (const Error& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 1;
    }
  }
  if (requests <= 0) {
    std::fprintf(stderr, "--requests must be positive\n");
    return 1;
  }
  if (jobs == 0) jobs = par::default_jobs();

  // The request-latency histogram only records when metrics are on.
  obs::set_enabled(true);
  if (!event_log_path.empty()) obs::event_log().open_sink(event_log_path);
  if (!trace_path.empty()) obs::tracer().start();

  std::printf(
      "=== Service under load: %d requests, %d submitters, %d workers ===\n\n",
      requests, clients, jobs);
  std::puts(
      "queue   req/s      ok    shed  shed%   hit%   p50(ms)   p99(ms)");

  obs::RunReport report("bench_service");
  report.params()
      .set("jobs", obs::Json::number(jobs))
      .set("requests", obs::Json::number(requests))
      .set("clients", obs::Json::number(clients));
  obs::Json rounds = obs::Json::array();

  for (const int queue_capacity : {1, 8, 64}) {
    const RoundResult r = run_round(queue_capacity, jobs, requests, clients);
    std::printf("%5d  %6s  %6lld  %6lld  %5s  %5s  %8s  %8s\n",
                r.queue_capacity, format_fixed(r.req_per_sec(), 0).c_str(),
                static_cast<long long>(r.ok),
                static_cast<long long>(r.shed),
                format_fixed(100.0 * r.shed_rate(), 1).c_str(),
                format_fixed(100.0 * r.hit_rate(), 1).c_str(),
                format_fixed(static_cast<double>(r.p50_ns) / 1e6, 2).c_str(),
                format_fixed(static_cast<double>(r.p99_ns) / 1e6, 2).c_str());

    obs::Json round = obs::Json::object();
    round.set("queue_capacity", obs::Json::number(r.queue_capacity))
        .set("submitted", obs::Json::number(r.submitted))
        .set("ok", obs::Json::number(r.ok))
        .set("shed", obs::Json::number(r.shed))
        .set("shed_rate", obs::Json::number(r.shed_rate()))
        .set("cache_hits", obs::Json::number(r.cache_hits))
        .set("cache_misses", obs::Json::number(r.cache_misses))
        .set("cache_hit_rate", obs::Json::number(r.hit_rate()))
        .set("wall_sec", obs::Json::number(r.wall_sec))
        .set("req_per_sec", obs::Json::number(r.req_per_sec()))
        .set("p50_ms",
             obs::Json::number(static_cast<double>(r.p50_ns) / 1e6))
        .set("p99_ms",
             obs::Json::number(static_cast<double>(r.p99_ns) / 1e6));
    rounds.push(std::move(round));
  }

  report.results().set("rounds", std::move(rounds));
  report.write_file("BENCH_service.json");
  std::puts("\n(run report in ./BENCH_service.json)");

  if (!trace_path.empty()) {
    obs::tracer().stop();
    obs::tracer().write_file(trace_path);
    std::printf("wrote %s (%zu trace events)\n", trace_path.c_str(),
                obs::tracer().event_count());
  }
  if (!event_log_path.empty()) obs::event_log().close_sink();
  return 0;
}
