// Regenerates Fig. 1: the design-space exploration scatter in the
// Performance x Area plane — every circuit synthesized across all seven
// flows (3 Verilog, 2 Chisel, 26 BSV, 19 XLS, 2 MaxJ, 42 Bambu,
// 3 Vivado HLS). Emits the CSV series (for plotting) and a per-family
// summary. Also writes fig1.csv next to the working directory.
//
// The DSE runs twice — serial and over a par::SweepRunner worker pool — to
// report the parallel speedup; the two point lists are asserted identical
// before anything is written.
//
// Writes BENCH_fig1.json (cwd) through the obs::RunReport schema.
//
// Usage: bench_fig1 [--jobs N] [--workload NAME|all]
// (default: all cores, the IDCT DSE). With --workload the scatter instead
// covers the named workload-registry entry (or every entry) with one point
// per builder, through the same compile/evaluate path.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "base/strings.hpp"
#include "core/report.hpp"
#include "obs/report.hpp"
#include "base/check.hpp"
#include "par/pool.hpp"
#include "tools/flows.hpp"
#include "tools/workloads.hpp"

using hlshc::format_fixed;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

bool same_points(const std::vector<hlshc::core::ScatterPoint>& a,
                 const std::vector<hlshc::core::ScatterPoint>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i)
    if (a[i].family != b[i].family || a[i].config != b[i].config ||
        a[i].throughput_mops != b[i].throughput_mops ||
        a[i].area != b[i].area)
      return false;
  return true;
}

int run_workload_mode(const std::string& workload, int jobs) {
  hlshc::tools::WorkloadBenchOptions options;
  options.jobs = jobs;
  if (workload != "all") options.workloads = {workload};
  std::printf("=== Fig. 1 (workload mode): scatter for %s ===\n",
              workload.c_str());
  std::vector<hlshc::core::ScatterPoint> points;
  for (const auto& r : hlshc::tools::run_workload_matrix(options))
    points.push_back({r.flow, r.workload + "." + r.builder,
                      r.eval.throughput_mops, r.eval.area,
                      static_cast<long>(r.eval.pipeline.nodes_before()) -
                          static_cast<long>(r.eval.pipeline.nodes_after()),
                      r.workload});
  std::puts(hlshc::core::scatter_summary(points).c_str());
  std::puts("--- Pareto frontier (throughput up, area down) ---");
  for (const auto& p : hlshc::core::pareto_front(points))
    std::printf("  %-8s %-28s P=%8.2f MOPS  A=%7ld\n", p.family.c_str(),
                p.config.c_str(), p.throughput_mops, p.area);
  std::puts("\n--- scatter series ---");
  std::fputs(hlshc::core::scatter_csv(points).c_str(), stdout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  int jobs = 0;  // 0 = all cores
  std::string workload;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      try {
        jobs = hlshc::par::parse_jobs(argv[++i], "--jobs");
      } catch (const hlshc::Error& e) {
        std::fprintf(stderr, "%s\nusage: %s [--jobs N] [--workload NAME|all]\n",
                     e.what(), argv[0]);
        return 1;
      }
    } else if (std::strcmp(argv[i], "--workload") == 0 && i + 1 < argc) {
      workload = argv[++i];
    }
  }
  if (jobs == 0) jobs = hlshc::par::default_jobs();
  if (!workload.empty()) {
    try {
      return run_workload_mode(workload, jobs);
    } catch (const hlshc::Error& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 1;
    }
  }

  std::puts("=== Fig. 1: design space exploration for IDCT ===");
  std::printf("(synthesizing every configuration; this sweeps 200+ circuits "
              "— every flow with narrowing on and off, the scheduler grid, "
              "and the workload cells — twice: serial, then %d jobs)\n\n",
              jobs);

  auto t0 = std::chrono::steady_clock::now();
  auto serial_points = hlshc::tools::full_dse(1);
  double serial_sec = seconds_since(t0);

  t0 = std::chrono::steady_clock::now();
  auto points = hlshc::tools::full_dse(jobs);
  double parallel_sec = seconds_since(t0);

  if (!same_points(serial_points, points)) {
    std::fprintf(stderr,
                 "FATAL: parallel DSE (jobs=%d) diverged from serial\n", jobs);
    return 1;
  }
  double speedup = parallel_sec > 0 ? serial_sec / parallel_sec : 1.0;
  std::printf("circuits evaluated: %zu\n", points.size());
  std::printf("serial %ss  parallel(jobs=%d) %ss  speedup %sx\n\n",
              format_fixed(serial_sec, 2).c_str(), jobs,
              format_fixed(parallel_sec, 2).c_str(),
              format_fixed(speedup, 2).c_str());
  std::puts(hlshc::core::scatter_summary(points).c_str());

  std::puts("--- Pareto frontier (throughput up, area down) ---");
  for (const auto& p : hlshc::core::pareto_front(points))
    std::printf("  %-8s %-28s P=%8.2f MOPS  A=%7ld\n", p.family.c_str(),
                p.config.c_str(), p.throughput_mops, p.area);
  std::puts("");

  hlshc::obs::RunReport report("bench_fig1");
  report.params().set("jobs", hlshc::obs::Json::number(jobs));
  hlshc::obs::Json families = hlshc::obs::Json::object();
  for (const auto& p : points) {
    const hlshc::obs::Json* n = families.find(p.family);
    families.set(p.family,
                 hlshc::obs::Json::number((n ? n->as_int() : 0) + 1));
  }
  report.results()
      .set("circuits",
           hlshc::obs::Json::number(static_cast<int64_t>(points.size())))
      .set("families", std::move(families))
      .set("serial_sec", hlshc::obs::Json::number(serial_sec))
      .set("parallel_sec", hlshc::obs::Json::number(parallel_sec))
      .set("speedup", hlshc::obs::Json::number(speedup));
  report.write_file("BENCH_fig1.json");

  std::string csv = hlshc::core::scatter_csv(points);
  std::ofstream("fig1.csv") << csv;
  std::puts("--- scatter series (also written to ./fig1.csv; run report in "
            "./BENCH_fig1.json) ---");
  std::fputs(csv.c_str(), stdout);
  return 0;
}
