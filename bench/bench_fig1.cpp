// Regenerates Fig. 1: the design-space exploration scatter in the
// Performance x Area plane — every circuit synthesized across all seven
// flows (3 Verilog, 2 Chisel, 26 BSV, 19 XLS, 2 MaxJ, 42 Bambu,
// 3 Vivado HLS). Emits the CSV series (for plotting) and a per-family
// summary. Also writes fig1.csv next to the working directory.
#include <cstdio>
#include <fstream>

#include "core/report.hpp"
#include "tools/flows.hpp"

int main() {
  std::puts("=== Fig. 1: design space exploration for IDCT ===");
  std::puts("(synthesizing every configuration; this sweeps ~97 circuits)\n");
  auto points = hlshc::tools::full_dse();
  std::printf("circuits evaluated: %zu\n\n", points.size());
  std::puts(hlshc::core::scatter_summary(points).c_str());

  std::puts("--- Pareto frontier (throughput up, area down) ---");
  for (const auto& p : hlshc::core::pareto_front(points))
    std::printf("  %-8s %-28s P=%8.2f MOPS  A=%7ld\n", p.family.c_str(),
                p.config.c_str(), p.throughput_mops, p.area);
  std::puts("");

  std::string csv = hlshc::core::scatter_csv(points);
  std::ofstream("fig1.csv") << csv;
  std::puts("--- scatter series (also written to ./fig1.csv) ---");
  std::fputs(csv.c_str(), stdout);
  return 0;
}
