// Section IV, Verilog narrative: the 8row+8col -> 1row+8col -> 1row+1col
// progression. The paper reports: opt1 raises throughput 1.8x and cuts
// area 1.7x (quality more than tripled); opt2 doubles throughput over the
// initial design, cuts area 4.6x, and raises quality 9.4x while latency
// grows from 17 to 24 cycles.
#include <cstdio>

#include "base/strings.hpp"
#include "core/evaluate.hpp"
#include "tools/compile.hpp"
#include "rtl/designs.hpp"

using hlshc::format_fixed;
using hlshc::format_grouped;

int main() {
  std::puts("=== Verilog design progression (paper Section IV) ===\n");
  auto init = hlshc::tools::evaluate_design(
      hlshc::rtl::build_verilog_initial());
  auto opt1 =
      hlshc::tools::evaluate_design(hlshc::rtl::build_verilog_opt1());
  auto opt2 =
      hlshc::tools::evaluate_design(hlshc::rtl::build_verilog_opt2());

  auto show = [](const char* tag, const hlshc::core::DesignEvaluation& e) {
    std::printf("%-22s fmax=%8s MHz  P=%7s MOPS  T_L=%2d  T_P=%s  A=%8s  "
                "Q=%s\n",
                tag, format_fixed(e.fmax_mhz, 2).c_str(),
                format_fixed(e.throughput_mops, 2).c_str(), e.latency_cycles,
                format_fixed(e.periodicity_cycles, 0).c_str(),
                format_grouped(e.area).c_str(),
                format_fixed(e.quality(), 0).c_str());
  };
  show("initial (8row+8col)", init);
  show("opt1    (1row+8col)", opt1);
  show("opt2    (1row+1col)", opt2);

  std::puts("\n--- paper vs measured ---");
  std::printf("opt1 throughput gain: paper 1.8x, measured %sx\n",
              format_fixed(opt1.throughput_mops / init.throughput_mops, 2)
                  .c_str());
  std::printf("opt1 area reduction:  paper 1.7x, measured %sx\n",
              format_fixed(static_cast<double>(init.area) / opt1.area, 2)
                  .c_str());
  std::printf("opt2 throughput gain: paper 2.0x, measured %sx\n",
              format_fixed(opt2.throughput_mops / init.throughput_mops, 2)
                  .c_str());
  std::printf("opt2 area reduction:  paper 4.6x, measured %sx\n",
              format_fixed(static_cast<double>(init.area) / opt2.area, 2)
                  .c_str());
  std::printf("opt2 quality gain:    paper 9.4x, measured %sx\n",
              format_fixed(opt2.quality() / init.quality(), 2).c_str());
  std::printf("latency growth:       paper 17 -> 24, measured %d -> %d\n",
              init.latency_cycles, opt2.latency_cycles);
  return 0;
}
