// Regenerates Table I: the languages and tools under evaluation.
#include <cstdio>

#include "tools/flows.hpp"

int main() {
  std::puts("=== Table I: languages and tools under evaluation ===\n");
  std::puts(hlshc::tools::render_table1().c_str());
  std::puts("(paper: Verilog/Vivado LS/PR commercial; Chisel and BSC open-"
            "source HC; XLS open-source HLS;\n MaxCompiler and Vivado HLS "
            "commercial HLS; Bambu open-source HLS)");
  return 0;
}
