// Regenerates Table II: the full HLS/HC evaluation — both configurations of
// all seven flows, with L, dL, alpha, Q, C_Q, F_Q, frequency, throughput,
// latency, periodicity and the area/DSP/IO block, plus a paper-vs-measured
// digest of the headline ratios.
//
// Usage: bench_table2 [--jobs N] [--verbose] [--wide] [--workload NAME|all]
// (default: all cores; the seven flows evaluate concurrently, results in
// column order at any worker count; --verbose prints the per-pass
// compile-pipeline breakdown per design). With --workload the bench sweeps
// the named workload-registry entry (or every entry) across all of its
// builders instead of the IDCT-only Table II; "all" additionally writes
// BENCH_workloads.json. --wide disables the width-narrowing pass — the
// pre-narrowing pipeline — so the emitted table2.csv can be diffed bitwise
// against bench/baselines/table2_prenarrow.csv (the refactor oracle).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "base/strings.hpp"
#include "base/check.hpp"
#include "par/pool.hpp"
#include "tools/compile.hpp"
#include "tools/flows.hpp"
#include "tools/workloads.hpp"

using hlshc::format_fixed;

namespace {

int run_workload_mode(const std::string& workload, int jobs) {
  hlshc::tools::WorkloadBenchOptions options;
  options.jobs = jobs;
  if (workload != "all") options.workloads = {workload};
  std::printf("=== workload x flow matrix (%s) ===\n", workload.c_str());
  const std::vector<hlshc::tools::WorkloadFlowResult> rows =
      hlshc::tools::run_workload_matrix(options);
  std::puts(hlshc::tools::render_workload_matrix(rows).c_str());
  if (workload == "all") {
    hlshc::tools::make_workload_report(rows, options)
        .write_file("BENCH_workloads.json");
    std::puts("(machine-readable copy written to ./BENCH_workloads.json)");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  int jobs = 0;  // 0 = all cores
  bool verbose = false;
  bool wide = false;
  std::string workload;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      try {
        jobs = hlshc::par::parse_jobs(argv[++i], "--jobs");
      } catch (const hlshc::Error& e) {
        std::fprintf(stderr,
                     "%s\nusage: %s [--jobs N] [--verbose] [--wide] "
                     "[--workload NAME|all]\n",
                     e.what(), argv[0]);
        return 1;
      }
    } else if (std::strcmp(argv[i], "--verbose") == 0) {
      verbose = true;
    } else if (std::strcmp(argv[i], "--wide") == 0) {
      wide = true;
    } else if (std::strcmp(argv[i], "--workload") == 0 && i + 1 < argc) {
      workload = argv[++i];
    }
  }
  if (!workload.empty()) {
    try {
      return run_workload_mode(workload, jobs);
    } catch (const hlshc::Error& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 1;
    }
  }
  std::puts("=== Table II: HLS/HC tools evaluation results ===");
  std::puts("(all designs verified bit-exact against the ISO 13818-4 "
            "software model before measurement)\n");
  hlshc::tools::CompileOptions copts;
  copts.narrow = !wide;
  if (wide)
    std::puts("(--wide: width narrowing disabled; this regenerates the "
              "pre-narrowing pipeline bitwise)\n");
  hlshc::tools::Table2 table = hlshc::tools::build_table2(jobs, copts);
  std::puts(hlshc::tools::render_table2(table).c_str());
  std::ofstream("table2.csv") << hlshc::tools::table2_csv(table);
  std::puts("(machine-readable copy written to ./table2.csv)\n");

  if (verbose) {
    std::puts("--- compile pipeline, per-pass breakdown (--verbose) ---");
    for (const auto& col : table.columns) {
      for (const auto* ev : {&col.flow.initial, &col.flow.optimized}) {
        if (ev->pipeline.runs.empty()) continue;
        std::puts(
            hlshc::tools::render_pass_breakdown(ev->name, ev->pipeline)
                .c_str());
      }
    }
  }

  // Headline shape checks against the paper's Table II.
  const auto& v = table.columns[0];
  const auto& chis = table.columns[1];
  const auto& bsv = table.columns[2];
  const auto& xls = table.columns[3];
  const auto& bambu = table.columns[5];
  const auto& vhls = table.columns[6];

  std::puts("--- paper vs measured (shape) ---");
  std::printf("Verilog opt/init quality gain: paper 9.4x, measured %sx\n",
              format_fixed(v.quality_opt / v.quality_initial, 1).c_str());
  std::printf("Chisel controllability: paper 90.1%%, measured %s%%\n",
              format_fixed(chis.controllability, 1).c_str());
  std::printf("BSV controllability: paper 74.8%%, measured %s%%  "
              "(opt periodicity: paper 9, measured %s)\n",
              format_fixed(bsv.controllability, 1).c_str(),
              format_fixed(bsv.flow.optimized.periodicity_cycles, 0).c_str());
  std::printf("XLS controllability: paper 38.3%%, measured %s%%\n",
              format_fixed(xls.controllability, 1).c_str());
  std::printf("Bambu controllability: paper 6.1%%, measured %s%% (worst "
              "of the study in both)\n",
              format_fixed(bambu.controllability, 1).c_str());
  std::printf("Vivado HLS controllability: paper 89.7%%, measured %s%%\n",
              format_fixed(vhls.controllability, 1).c_str());
  std::printf("Vivado HLS pragma speedup: paper ~42x periodicity (340->8), "
              "measured %sx (%s->%s)\n",
              format_fixed(vhls.flow.initial.periodicity_cycles /
                               vhls.flow.optimized.periodicity_cycles,
                           0)
                  .c_str(),
              format_fixed(vhls.flow.initial.periodicity_cycles, 0).c_str(),
              format_fixed(vhls.flow.optimized.periodicity_cycles, 0).c_str());
  return 0;
}
