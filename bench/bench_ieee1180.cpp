// IEEE Std 1180-1990 compliance: the full 10,000-block procedure for every
// input range and sign, run against the ISO 13818-4 fixed-point IDCT (the
// algorithm every hardware design in this repository implements). All
// implementations are IEEE 1180-compliant, as the paper states.
#include <cstdio>

#include "base/strings.hpp"
#include "idct/chenwang.hpp"
#include "idct/ieee1180.hpp"

using hlshc::format_fixed;
using namespace hlshc::idct;

int main() {
  std::puts("=== IEEE 1180-1990 compliance (10,000 blocks per case) ===\n");
  auto suite = run_compliance_suite(
      [](const Block& in) {
        Block b = in;
        idct_2d(b);
        return b;
      },
      10000);

  std::puts("range        sign  peak|e|  worst pmse  omse      worst pme  "
            "ome        zero  verdict");
  bool all = true;
  for (const auto& r : suite) {
    std::printf("(-%3ld,%3ld)   %+d    %s     %s      %s    %s   %s   %s   %s\n",
                r.config.range_high, r.config.range_low, r.config.sign,
                format_fixed(r.peak_error, 1).c_str(),
                format_fixed(r.worst_pmse, 4).c_str(),
                format_fixed(r.omse, 4).c_str(),
                format_fixed(r.worst_pme, 4).c_str(),
                format_fixed(r.ome, 5).c_str(),
                r.zero_in_zero_out ? "ok" : "FAIL",
                r.pass ? "PASS" : "FAIL");
    all = all && r.pass;
  }
  std::printf("\noverall: %s (thresholds: |e|<=1, pmse<=0.06, omse<=0.02, "
              "pme<=0.015, ome<=0.0015)\n",
              all ? "IEEE 1180-1990 COMPLIANT" : "NON-COMPLIANT");
  return all ? 0 : 1;
}
