// Ablation: the HLS scheduler's resource and chaining options, on the
// shipped idct.c. Shows how memory ports dominate the schedule (the
// paper's Bambu story), and what chaining, speculation and functional-unit
// counts buy.
#include <cstdio>

#include "base/strings.hpp"
#include "hls/ast.hpp"
#include "hls/schedule.hpp"
#include "hls/tool.hpp"

using namespace hlshc::hls;

namespace {

void run(const char* tag, const Dfg& dfg, ScheduleOptions so) {
  Schedule s = schedule(dfg, so);
  std::printf("%-44s states=%4d  muls-used=%d  adds-used=%d\n", tag,
              s.length, s.mul_units_used, s.add_units_used);
}

}  // namespace

int main() {
  std::puts("=== HLS scheduler ablation on idct.c ===\n");
  Program prog = parse(idct_source());
  Dfg dfg = lower(prog, "idct");
  std::printf("DFG: %zu operations (128 loads + 128 stores + arithmetic)\n\n",
              dfg.nodes.size());

  ScheduleOptions base;  // 1R+1W, 2 muls, unlimited adds, chaining
  run("base: 1R+1W, 2 muls, chaining", dfg, base);

  ScheduleOptions two = base;
  two.mem_read_ports = 2;
  two.mem_write_ports = 2;
  run("MEM_ACC_NN: 2R+2W", dfg, two);

  ScheduleOptions nochain = base;
  nochain.chaining = false;
  run("no operator chaining", dfg, nochain);

  ScheduleOptions spec = two;
  spec.speculative = true;
  spec.mul_units = 4;
  run("2R+2W + 4 muls + speculative SDC", dfg, spec);

  ScheduleOptions one_mul = base;
  one_mul.mul_units = 1;
  run("1 multiplier unit", dfg, one_mul);

  ScheduleOptions shared_adds = base;
  shared_adds.add_units = 2;
  run("2 shared adder units", dfg, shared_adds);

  ScheduleOptions tight = base;
  tight.cycle_budget_ns = 3.0;
  run("3 ns cycle budget (short chains)", dfg, tight);

  ScheduleOptions loose = base;
  loose.cycle_budget_ns = 12.0;
  run("12 ns cycle budget (deep chains)", dfg, loose);

  std::puts("\nTakeaway: the 1R+1W memory interface caps the schedule at "
            ">= 256 port cycles —\nexactly why the paper's Bambu designs "
            "sit at periodicity 323/185 regardless of\nmost other options.");
  return 0;
}
