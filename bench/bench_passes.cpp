// Compile-pipeline ablation: what the netlist pass pipeline buys, per flow.
//
// Twelve representative design points (both configurations of Verilog,
// Chisel, BSV, XLS, Bambu and Vivado HLS) are each evaluated twice through
// the canonical tools::compile entry — once with the pass pipeline disabled
// and once with the default pipeline (fold, strength-reduce, mux-simplify,
// copy-prop, CSE, DCE to fixed point) — and the node/LUT/FF/area/quality
// deltas are reported per point. The pipeline is behavior-preserving by
// construction (see sim::make_pass_verifier), so only A and Q may move.
//
// The 24 evaluations run over a par::SweepRunner twice — jobs=1 and then
// the full worker pool — to record the pipeline's parallel wall time; both
// sweeps must produce identical results.
//
// Writes BENCH_passes.json (cwd) through the obs::RunReport schema.
//
// Usage: bench_passes [--jobs N]   (default: all cores)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "base/strings.hpp"
#include "bsv/designs.hpp"
#include "chisel/designs.hpp"
#include "core/evaluate.hpp"
#include "hls/tool.hpp"
#include "obs/report.hpp"
#include "base/check.hpp"
#include "par/pool.hpp"
#include "par/sweep.hpp"
#include "rtl/designs.hpp"
#include "tools/compile.hpp"
#include "xls/designs.hpp"

using hlshc::format_fixed;

namespace {

struct DesignPoint {
  std::string name;
  hlshc::netlist::Design design;
};

std::vector<DesignPoint> design_points() {
  using namespace hlshc;
  std::vector<DesignPoint> pts;
  pts.push_back({"verilog/initial", rtl::build_verilog_initial()});
  pts.push_back({"verilog/opt2", rtl::build_verilog_opt2()});
  pts.push_back({"chisel/initial", chisel::build_chisel_initial()});
  pts.push_back({"chisel/opt", chisel::build_chisel_opt()});
  pts.push_back({"bsv/initial", bsv::build_bsv_initial()});
  pts.push_back({"bsv/opt", bsv::build_bsv_opt()});
  pts.push_back({"xls/comb", xls::build_xls_design({0}).design});
  pts.push_back({"xls/s8", xls::build_xls_design({8}).design});
  const std::string src = hls::idct_source();
  pts.push_back({"bambu/default", hls::compile_bambu(src, {}).design});
  hls::BambuOptions perf;
  perf.preset = hls::BambuPreset::kPerformanceMp;
  perf.speculative_sdc = true;
  pts.push_back({"bambu/perf-mp+sdc", hls::compile_bambu(src, perf).design});
  pts.push_back({"vhls/pushbutton", hls::compile_vhls(src, {}).design});
  hls::VhlsOptions pragmas;
  pragmas.pragmas = true;
  pts.push_back({"vhls/pragmas", hls::compile_vhls(src, pragmas).design});
  return pts;
}

struct PointResult {
  std::string name;
  size_t nodes_off = 0, nodes_on = 0;
  hlshc::core::DesignEvaluation off, on;
  hlshc::netlist::PassStats stats;  // the pipeline-on breakdown
};

bool same_results(const std::vector<PointResult>& a,
                  const std::vector<PointResult>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i)
    if (a[i].nodes_on != b[i].nodes_on || a[i].off.area != b[i].off.area ||
        a[i].on.area != b[i].on.area ||
        a[i].off.quality() != b[i].off.quality() ||
        a[i].on.quality() != b[i].on.quality())
      return false;
  return true;
}

std::vector<PointResult> run_sweep(const std::vector<DesignPoint>& pts,
                                   int jobs, hlshc::par::SweepRunner& runner) {
  using namespace hlshc;
  (void)jobs;
  core::EvaluateOptions eo;
  eo.matrices = 3;  // ablation compares synth-level numbers, not timing noise
  // 2*i   = point i with the pipeline off,
  // 2*i+1 = point i with the default pipeline.
  std::vector<core::DesignEvaluation> evs =
      runner.map<core::DesignEvaluation>(
          "passes_ablation", static_cast<int64_t>(2 * pts.size()),
          [&pts, &eo](int64_t k) {
            const DesignPoint& p = pts[static_cast<size_t>(k / 2)];
            tools::CompileOptions co;
            co.optimize = (k % 2) == 1;
            return tools::evaluate_design(p.design, co, eo);
          });
  std::vector<PointResult> out;
  for (size_t i = 0; i < pts.size(); ++i) {
    PointResult r;
    r.name = pts[i].name;
    r.nodes_off = pts[i].design.node_count();
    r.off = evs[2 * i];
    r.on = evs[2 * i + 1];
    r.stats = r.on.pipeline;
    r.nodes_on = r.stats.runs.empty() ? r.nodes_off
                                      : static_cast<size_t>(r.stats.nodes_after());
    out.push_back(std::move(r));
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  int jobs = 0;  // 0 = all cores
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      try {
        jobs = hlshc::par::parse_jobs(argv[++i], "--jobs");
      } catch (const hlshc::Error& e) {
        std::fprintf(stderr, "%s\nusage: %s [--jobs N]\n", e.what(), argv[0]);
        return 1;
      }
    }
  if (jobs == 0) jobs = hlshc::par::default_jobs();

  std::puts("=== Compile-pipeline ablation: pipeline off vs on ===\n");
  std::vector<DesignPoint> pts = design_points();

  hlshc::par::SweepRunner serial(1);
  std::vector<PointResult> base = run_sweep(pts, 1, serial);
  hlshc::par::SweepRunner parallel(jobs);
  std::vector<PointResult> results = run_sweep(pts, jobs, parallel);
  if (!same_results(base, results)) {
    std::fprintf(stderr, "FATAL: parallel ablation (jobs=%d) diverged from "
                         "serial\n", jobs);
    return 1;
  }

  std::puts("design                  nodes           LUT*            FF*   "
            "        area           Q (P/A)");
  std::puts("                     off     on     off     on     off     on "
            "    off     on     off     on");
  for (const PointResult& r : results) {
    std::printf("%-17s %6zu %6zu  %6ld %6ld  %6ld %6ld  %6ld %6ld  %6s %6s\n",
                r.name.c_str(), r.nodes_off, r.nodes_on, r.off.n_lut_star,
                r.on.n_lut_star, r.off.n_ff_star, r.on.n_ff_star, r.off.area,
                r.on.area, format_fixed(r.off.quality(), 0).c_str(),
                format_fixed(r.on.quality(), 0).c_str());
    if (r.off.functional != r.on.functional) {
      std::fprintf(stderr, "FATAL: pipeline changed functional verdict for "
                           "%s\n", r.name.c_str());
      return 1;
    }
  }

  // Per-pass aggregate across every pipeline-on compile.
  std::map<std::string, std::pair<int64_t, int64_t>> by_pass;  // changes, ns
  for (const PointResult& r : results)
    for (const auto& run : r.stats.runs) {
      by_pass[run.pass].first += run.changes;
      by_pass[run.pass].second += run.wall_ns;
    }
  std::puts("\n--- per-pass aggregate (all 12 pipeline-on compiles) ---");
  for (const auto& [pass, agg] : by_pass)
    std::printf("  %-18s changes=%6lld  wall=%8s us\n", pass.c_str(),
                static_cast<long long>(agg.first),
                format_fixed(static_cast<double>(agg.second) / 1e3, 1).c_str());

  double serial_ms = static_cast<double>(serial.wall_ns()) / 1e6;
  double parallel_ms = static_cast<double>(parallel.wall_ns()) / 1e6;
  std::printf("\npipeline sweep wall: jobs=1 %s ms, jobs=%d %s ms "
              "(speedup %sx)\n",
              format_fixed(serial_ms, 1).c_str(), parallel.jobs(),
              format_fixed(parallel_ms, 1).c_str(),
              format_fixed(parallel_ms > 0 ? serial_ms / parallel_ms : 1.0, 2)
                  .c_str());

  hlshc::obs::RunReport report("bench_passes");
  report.params()
      .set("jobs", hlshc::obs::Json::number(jobs))
      .set("matrices", hlshc::obs::Json::number(3))
      .set("points",
           hlshc::obs::Json::number(static_cast<int64_t>(results.size())));
  hlshc::obs::Json points = hlshc::obs::Json::array();
  for (const PointResult& r : results) {
    hlshc::obs::Json p = hlshc::obs::Json::object();
    p.set("design", hlshc::obs::Json::string(r.name))
        .set("nodes_off",
             hlshc::obs::Json::number(static_cast<int64_t>(r.nodes_off)))
        .set("nodes_on",
             hlshc::obs::Json::number(static_cast<int64_t>(r.nodes_on)))
        .set("lut_off", hlshc::obs::Json::number(r.off.n_lut_star))
        .set("lut_on", hlshc::obs::Json::number(r.on.n_lut_star))
        .set("ff_off", hlshc::obs::Json::number(r.off.n_ff_star))
        .set("ff_on", hlshc::obs::Json::number(r.on.n_ff_star))
        .set("area_off", hlshc::obs::Json::number(r.off.area))
        .set("area_on", hlshc::obs::Json::number(r.on.area))
        .set("quality_off", hlshc::obs::Json::number(r.off.quality()))
        .set("quality_on", hlshc::obs::Json::number(r.on.quality()))
        .set("pipeline_iterations",
             hlshc::obs::Json::number(r.stats.iterations));
    points.push(std::move(p));
  }
  hlshc::obs::Json passes = hlshc::obs::Json::object();
  for (const auto& [pass, agg] : by_pass) {
    hlshc::obs::Json p = hlshc::obs::Json::object();
    p.set("changes", hlshc::obs::Json::number(agg.first))
        .set("wall_ns", hlshc::obs::Json::number(agg.second));
    passes.set(pass, std::move(p));
  }
  report.results()
      .set("points", std::move(points))
      .set("per_pass", std::move(passes))
      .set("serial_wall_ms", hlshc::obs::Json::number(serial_ms))
      .set("parallel_wall_ms", hlshc::obs::Json::number(parallel_ms));
  parallel.annotate(report);
  report.capture_metrics();
  report.write_file("BENCH_passes.json");
  std::puts("\nwrote BENCH_passes.json");
  return 0;
}
