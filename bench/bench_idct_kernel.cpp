// Software micro-benchmarks (google-benchmark): the fixed-point kernels,
// the floating-point reference, and the netlist simulator's cycle rate.
// Supporting data for the evaluation harness, not a paper artifact.
#include <benchmark/benchmark.h>

#include "base/rng.hpp"
#include "idct/chenwang.hpp"
#include "idct/reference.hpp"
#include "rtl/designs.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace hlshc;

idct::Block random_block(SplitMix64& rng) {
  idct::Block b{};
  for (auto& v : b)
    v = static_cast<int32_t>(rng.next_in(idct::kCoeffMin, idct::kCoeffMax));
  return b;
}

void BM_ChenWangIdct(benchmark::State& state) {
  SplitMix64 rng(1);
  idct::Block b = random_block(rng);
  for (auto _ : state) {
    idct::Block work = b;
    idct::idct_2d(work);
    benchmark::DoNotOptimize(work);
  }
}
BENCHMARK(BM_ChenWangIdct);

void BM_ChenWangStraightLine(benchmark::State& state) {
  SplitMix64 rng(2);
  idct::Block b = random_block(rng);
  for (auto _ : state) {
    idct::Block work = b;
    idct::idct_2d_straight(work);
    benchmark::DoNotOptimize(work);
  }
}
BENCHMARK(BM_ChenWangStraightLine);

void BM_ReferenceIdct(benchmark::State& state) {
  SplitMix64 rng(3);
  idct::Block b = random_block(rng);
  for (auto _ : state) {
    idct::Block out = idct::idct_reference(b);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_ReferenceIdct);

void BM_ForwardDct(benchmark::State& state) {
  SplitMix64 rng(4);
  idct::Block b{};
  for (auto& v : b) v = static_cast<int32_t>(rng.next_in(-256, 255));
  for (auto _ : state) {
    idct::Block out = idct::forward_dct_reference(b);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_ForwardDct);

void BM_SimulatorCycle(benchmark::State& state) {
  netlist::Design d = rtl::build_verilog_opt2();
  sim::Simulator sim(d);
  sim.set_input("s_tvalid", 1);
  sim.set_input("m_tready", 1);
  for (auto _ : state) sim.step();
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_SimulatorCycle);

}  // namespace

BENCHMARK_MAIN();
