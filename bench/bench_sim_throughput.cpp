// Simulation-engine throughput bench: interpreter vs. compiled engine.
//
// For every AXI-Stream design family, runs the same workload on both
// engines and reports cycles/sec and node-ops/sec (simulated cycles x
// combinational nodes evaluated per cycle), plus the compiled/interpreter
// speedup. Two workloads per design:
//
//   raw     — a tight step() loop with held inputs: pure engine throughput,
//             no testbench overhead;
//   stream  — the full AXI-Stream testbench pushing matrices: what the
//             evaluation procedure and fault campaigns actually pay.
//
// A third, lane-batched series replays the stream workload through
// sim::BatchSimulator with the same stimulus on every lane and reports
// aggregate lane-cycles/sec — the rate the batched fault campaigns see —
// plus its speedup over the scalar compiled stream run.
//
// After the timing sweep, an activity-profiled stream run over the
// optimized Verilog IDCT prints the top-10 toggle hotspot table (identical
// on both engines — asserted here, not assumed).
//
// Writes the machine-readable results to BENCH_sim.json (cwd) through the
// obs::RunReport schema and prints a table.
//
// Usage: bench_sim_throughput [raw_cycles] [stream_matrices] [--trace FILE]
//                              [--lanes L] [--workload NAME|all]
// (defaults 200000 and 64). --trace additionally records Chrome trace_event
// JSON for the whole bench, viewable in chrome://tracing / Perfetto.
// --lanes sets the batched-series lane count (default par::default_lanes():
// HLSHC_LANES, else 32). --workload times a workload-registry entry's
// builders (or every entry) instead of the default IDCT family set;
// stimulus always comes from the workload's own registered generator.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "axis/batch.hpp"
#include "axis/testbench.hpp"
#include "base/strings.hpp"
#include "core/report.hpp"
#include "netlist/exec_plan.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "par/pool.hpp"
#include "sim/batch.hpp"
#include "sim/engine.hpp"
#include "workload/workload.hpp"

using hlshc::format_fixed;
using hlshc::format_grouped;
namespace sim = hlshc::sim;
namespace netlist = hlshc::netlist;
namespace obs = hlshc::obs;

namespace {

struct Case {
  std::string name;
  std::function<netlist::Design()> build;
};

std::vector<Case> cases_for(const hlshc::workload::WorkloadSpec& spec) {
  // The IDCT keeps its historical seven-family set (bare names, fixed
  // order); every other workload times all of its fast builders.
  std::vector<Case> out;
  if (spec.name == "idct") {
    for (const char* name :
         {"verilog_initial", "verilog_opt1", "verilog_opt2", "chisel_initial",
          "chisel_opt", "bsv_opt", "xls_p8"})
      out.push_back({name, spec.builder(name).build});
  } else {
    for (const hlshc::workload::BuilderInfo& b : spec.builders)
      if (!b.slow) out.push_back({spec.name + "." + b.name, b.build});
  }
  return out;
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Raw engine throughput: step() with held inputs. Returns cycles/sec.
double raw_cps(sim::Engine& e, int64_t cycles) {
  e.reset();
  e.set_input("s_tvalid", 1);
  e.set_input("m_tready", 1);
  for (int l = 0; l < hlshc::axis::kLanes; ++l)
    e.set_input(hlshc::axis::lane_port("s", l), 17 * (l + 1));
  auto t0 = std::chrono::steady_clock::now();
  e.run(cycles);
  double secs = seconds_since(t0);
  return secs > 0 ? static_cast<double>(cycles) / secs : 0.0;
}

/// Stream-testbench throughput. Returns cycles/sec over the whole run.
double stream_cps(sim::Engine& e, const std::vector<hlshc::idct::Block>& ins) {
  hlshc::axis::StreamTestbench tb(e);
  auto t0 = std::chrono::steady_clock::now();
  tb.run(ins, 10'000'000);
  double secs = seconds_since(t0);
  return secs > 0 ? static_cast<double>(tb.timing().total_cycles) / secs
                  : 0.0;
}

/// Lane-batched stream throughput: one BatchSimulator sweep streaming the
/// same stimulus on every lane. Returns aggregate lane-cycles/sec
/// (simulated cycles x lanes / wall time) — directly comparable with the
/// scalar stream cycles/sec columns.
double batch_stream_cps(const netlist::Design& d, int lanes,
                        const std::vector<hlshc::idct::Block>& ins) {
  sim::BatchSimulator bsim(d, lanes);
  hlshc::axis::BatchStreamTestbench tb(bsim);
  const std::vector<std::vector<hlshc::idct::Block>> lane_ins(
      static_cast<size_t>(lanes), ins);
  auto t0 = std::chrono::steady_clock::now();
  tb.run(lane_ins, 10'000'000);
  double secs = seconds_since(t0);
  return secs > 0 ? static_cast<double>(bsim.cycle()) * lanes / secs : 0.0;
}

obs::Json rate(double v) {
  // One decimal, matching the previous hand-rolled serialization.
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f", v);
  double parsed = 0;
  std::sscanf(buf, "%lf", &parsed);
  return obs::Json::number(parsed);
}

/// Activity-profiled stream run over the optimized Verilog IDCT on both
/// engines; asserts toggle parity and prints the interpreter-vs-compiled-
/// verified top-10 hotspot table.
bool hotspot_section(const std::vector<hlshc::idct::Block>& ins,
                     obs::Json* out) {
  netlist::Design d = hlshc::workload::Registry::instance()
                          .get("idct")
                          .builder("verilog_opt2")
                          .build();
  auto interp = sim::make_engine(d, sim::EngineKind::kInterpreter);
  auto compiled = sim::make_engine(d, sim::EngineKind::kCompiled);
  for (sim::Engine* e : {interp.get(), compiled.get()}) {
    e->set_activity_enabled(true);
    hlshc::axis::StreamTestbench tb(*e);
    tb.run(ins, 10'000'000);
  }
  const sim::ActivityProfile& pi = interp->activity();
  const sim::ActivityProfile& pc = compiled->activity();
  uint64_t total = 0;
  for (size_t i = 0; i < pi.toggles.size(); ++i) {
    if (pi.toggles[i] != pc.toggles[i]) {
      std::fprintf(stderr,
                   "toggle mismatch at node %zu: interp %llu compiled %llu\n",
                   i, static_cast<unsigned long long>(pi.toggles[i]),
                   static_cast<unsigned long long>(pc.toggles[i]));
      return false;
    }
    total += pc.toggles[i];
  }
  std::printf("\n%s", hlshc::core::hotspot_table(d, pc, 10).c_str());

  obs::Json section = obs::Json::object();
  section.set("design", obs::Json::string(d.name()));
  section.set("cycles", obs::Json::number(pc.cycles));
  section.set("total_toggles", obs::Json::number(total));
  section.set("engines_agree", obs::Json::boolean(true));
  obs::Json top = obs::Json::array();
  std::vector<size_t> ranked(pc.toggles.size());
  for (size_t i = 0; i < ranked.size(); ++i) ranked[i] = i;
  std::stable_sort(ranked.begin(), ranked.end(), [&](size_t a, size_t b) {
    return pc.toggles[a] > pc.toggles[b];
  });
  for (size_t r = 0; r < ranked.size() && r < 10; ++r) {
    const netlist::Node& n = d.node(static_cast<netlist::NodeId>(ranked[r]));
    obs::Json row = obs::Json::object();
    row.set("node", obs::Json::number(static_cast<int64_t>(ranked[r])));
    row.set("op", obs::Json::string(netlist::op_name(n.op)));
    row.set("toggles", obs::Json::number(pc.toggles[ranked[r]]));
    top.push(std::move(row));
  }
  section.set("top_nodes", std::move(top));
  *out = std::move(section);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  int64_t raw_cycles = 200000;
  int matrices = 64;
  int lanes = 0;  // 0 = par::default_lanes()
  std::string trace_path;
  std::string workload = "idct";
  std::vector<char*> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (std::strcmp(argv[i], "--lanes") == 0 && i + 1 < argc) {
      try {
        lanes = hlshc::par::parse_lanes(argv[++i], "--lanes");
      } catch (const hlshc::Error& e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 1;
      }
    } else if (std::strcmp(argv[i], "--workload") == 0 && i + 1 < argc) {
      workload = argv[++i];
    } else {
      positional.push_back(argv[i]);
    }
  }
  if (positional.size() > 0) raw_cycles = std::atoll(positional[0]);
  if (positional.size() > 1) matrices = std::atoi(positional[1]);
  if (raw_cycles <= 0 || matrices <= 0) {
    std::fprintf(stderr,
                 "usage: %s [raw_cycles > 0] [stream_matrices > 0] "
                 "[--trace FILE] [--lanes L] [--workload NAME|all]\n",
                 argv[0]);
    return 1;
  }
  if (lanes == 0) lanes = hlshc::par::default_lanes();
  const hlshc::workload::Registry& registry =
      hlshc::workload::Registry::instance();
  std::vector<std::string> workload_names;
  try {
    if (workload == "all")
      workload_names = registry.names();
    else
      workload_names = {registry.get(workload).name};
  } catch (const hlshc::Error& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
  const bool covers_idct =
      std::find(workload_names.begin(), workload_names.end(), "idct") !=
      workload_names.end();

  if (!trace_path.empty()) obs::tracer().start();
  // One trace id for the whole invocation: every span and event this bench
  // produces correlates under it, same as a service request would.
  const obs::TraceScope bench_trace(obs::new_trace());

  std::printf(
      "=== simulation engine throughput: %lld raw cycles, %d matrices, "
      "%d lanes ===\n\n",
      static_cast<long long>(raw_cycles), matrices, lanes);
  std::printf(
      "%-16s %6s %6s | %12s %12s %6s | %12s %12s %6s | %12s %6s\n", "design",
      "nodes", "depth", "interp c/s", "compiled c/s", "raw x", "interp c/s",
      "compiled c/s", "strm x", "batch lc/s", "bat x");

  obs::RunReport report("bench_sim_throughput");
  report.params()
      .set("raw_cycles", obs::Json::number(raw_cycles))
      .set("stream_matrices", obs::Json::number(matrices))
      .set("lanes", obs::Json::number(lanes))
      .set("workload", obs::Json::string(workload));
  obs::Json designs = obs::Json::array();

  std::vector<hlshc::idct::Block> idct_ins;  // reused by the hotspot section
  for (const std::string& wname : workload_names) {
    const hlshc::workload::WorkloadSpec& spec = registry.get(wname);
    const std::vector<hlshc::workload::Frame> ins =
        hlshc::workload::eval_input_set(spec, matrices, 2026,
                                        /*realistic=*/true);
    if (wname == "idct") idct_ins = ins;
    if (workload_names.size() > 1)
      std::printf("\n--- workload: %s ---\n", wname.c_str());

  for (const Case& c : cases_for(spec)) {
    netlist::Design d = c.build();
    auto plan = netlist::ExecPlan::for_design(d);
    const size_t nodes = plan->instrs().size();

    auto interp = sim::make_engine(d, sim::EngineKind::kInterpreter);
    auto compiled = sim::make_engine(d, sim::EngineKind::kCompiled);

    double raw_i = raw_cps(*interp, raw_cycles);
    double raw_c = raw_cps(*compiled, raw_cycles);
    double strm_i = stream_cps(*interp, ins);
    double strm_c = stream_cps(*compiled, ins);
    double batch_c = batch_stream_cps(d, lanes, ins);
    double raw_x = raw_i > 0 ? raw_c / raw_i : 0.0;
    double strm_x = strm_i > 0 ? strm_c / strm_i : 0.0;
    double batch_x = strm_c > 0 ? batch_c / strm_c : 0.0;

    std::printf("%-16s %6zu %6d | %12s %12s %5sx | %12s %12s %5sx | "
                "%12s %5sx\n",
                c.name.c_str(), nodes, plan->depth(),
                format_grouped((long)raw_i).c_str(),
                format_grouped((long)raw_c).c_str(),
                format_fixed(raw_x, 1).c_str(),
                format_grouped((long)strm_i).c_str(),
                format_grouped((long)strm_c).c_str(),
                format_fixed(strm_x, 1).c_str(),
                format_grouped((long)batch_c).c_str(),
                format_fixed(batch_x, 1).c_str());

    obs::Json row = obs::Json::object();
    row.set("design", obs::Json::string(c.name))
        .set("nodes", obs::Json::number(static_cast<int64_t>(nodes)))
        .set("depth", obs::Json::number(static_cast<int64_t>(plan->depth())))
        .set("interp_cycles_per_sec", rate(raw_i))
        .set("compiled_cycles_per_sec", rate(raw_c))
        .set("raw_speedup", rate(raw_x))
        .set("interp_ops_per_sec", rate(raw_i * static_cast<double>(nodes)))
        .set("compiled_ops_per_sec", rate(raw_c * static_cast<double>(nodes)))
        .set("stream_interp_cycles_per_sec", rate(strm_i))
        .set("stream_compiled_cycles_per_sec", rate(strm_c))
        .set("stream_speedup", rate(strm_x))
        .set("batch_lane_cycles_per_sec", rate(batch_c))
        .set("batch_speedup", rate(batch_x));
    designs.push(std::move(row));
  }
  }
  report.results().set("designs", std::move(designs));

  // The hotspot parity section is pinned to the optimized Verilog IDCT; it
  // only runs when the IDCT is part of this invocation's sweep.
  if (covers_idct) {
    obs::Json hotspots;
    if (!hotspot_section(idct_ins, &hotspots)) {
      std::fprintf(stderr, "activity-counter parity FAILED between engines\n");
      return 1;
    }
    report.results().set("hotspots", std::move(hotspots));
  }

  report.write_file("BENCH_sim.json");
  std::printf("\nwrote BENCH_sim.json\n");

  if (!trace_path.empty()) {
    obs::tracer().stop();
    obs::tracer().write_file(trace_path);
    std::printf("wrote %s (%zu trace events)\n", trace_path.c_str(),
                obs::tracer().event_count());
  }
  return 0;
}
