// Simulation-engine throughput bench: interpreter vs. compiled engine.
//
// For every AXI-Stream design family, runs the same workload on both
// engines and reports cycles/sec and node-ops/sec (simulated cycles x
// combinational nodes evaluated per cycle), plus the compiled/interpreter
// speedup. Two workloads per design:
//
//   raw     — a tight step() loop with held inputs: pure engine throughput,
//             no testbench overhead;
//   stream  — the full AXI-Stream testbench pushing matrices: what the
//             evaluation procedure and fault campaigns actually pay.
//
// Writes the machine-readable results to BENCH_sim.json (cwd) and prints a
// table. Usage: bench_sim_throughput [raw_cycles] [stream_matrices]
// (defaults 200000 and 64).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "axis/testbench.hpp"
#include "base/rng.hpp"
#include "base/strings.hpp"
#include "bsv/designs.hpp"
#include "chisel/designs.hpp"
#include "idct/reference.hpp"
#include "netlist/exec_plan.hpp"
#include "rtl/designs.hpp"
#include "sim/engine.hpp"
#include "xls/designs.hpp"

using hlshc::format_fixed;
using hlshc::format_grouped;
namespace sim = hlshc::sim;
namespace netlist = hlshc::netlist;

namespace {

struct Case {
  const char* name;
  std::function<netlist::Design()> build;
};

std::vector<Case> cases() {
  return {
      {"verilog_initial", [] { return hlshc::rtl::build_verilog_initial(); }},
      {"verilog_opt1", [] { return hlshc::rtl::build_verilog_opt1(); }},
      {"verilog_opt2", [] { return hlshc::rtl::build_verilog_opt2(); }},
      {"chisel_initial",
       [] { return hlshc::chisel::build_chisel_initial(); }},
      {"chisel_opt", [] { return hlshc::chisel::build_chisel_opt(); }},
      {"bsv_opt", [] { return hlshc::bsv::build_bsv_opt(); }},
      {"xls_p8", [] { return hlshc::xls::build_xls_design({8}).design; }},
  };
}

hlshc::idct::Block random_block(hlshc::SplitMix64& rng) {
  hlshc::idct::Block spatial{};
  for (auto& v : spatial) v = static_cast<int32_t>(rng.next_in(-256, 255));
  return hlshc::idct::forward_dct_reference(spatial);
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Raw engine throughput: step() with held inputs. Returns cycles/sec.
double raw_cps(sim::Engine& e, int64_t cycles) {
  e.reset();
  e.set_input("s_tvalid", 1);
  e.set_input("m_tready", 1);
  for (int l = 0; l < hlshc::axis::kLanes; ++l)
    e.set_input(hlshc::axis::lane_port("s", l), 17 * (l + 1));
  auto t0 = std::chrono::steady_clock::now();
  e.run(cycles);
  double secs = seconds_since(t0);
  return secs > 0 ? static_cast<double>(cycles) / secs : 0.0;
}

/// Stream-testbench throughput. Returns cycles/sec over the whole run.
double stream_cps(sim::Engine& e, const std::vector<hlshc::idct::Block>& ins) {
  hlshc::axis::StreamTestbench tb(e);
  auto t0 = std::chrono::steady_clock::now();
  tb.run(ins, 10'000'000);
  double secs = seconds_since(t0);
  return secs > 0 ? static_cast<double>(tb.timing().total_cycles) / secs
                  : 0.0;
}

std::string json_num(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f", v);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  int64_t raw_cycles = 200000;
  int matrices = 64;
  if (argc > 1) raw_cycles = std::atoll(argv[1]);
  if (argc > 2) matrices = std::atoi(argv[2]);
  if (raw_cycles <= 0 || matrices <= 0) {
    std::fprintf(stderr, "usage: %s [raw_cycles > 0] [stream_matrices > 0]\n",
                 argv[0]);
    return 1;
  }

  hlshc::SplitMix64 rng(2026);
  std::vector<hlshc::idct::Block> ins;
  ins.reserve(static_cast<size_t>(matrices));
  for (int i = 0; i < matrices; ++i) ins.push_back(random_block(rng));

  std::printf(
      "=== simulation engine throughput: %lld raw cycles, %d matrices ===\n\n",
      static_cast<long long>(raw_cycles), matrices);
  std::printf(
      "%-16s %6s %6s | %12s %12s %6s | %12s %12s %6s\n", "design", "nodes",
      "depth", "interp c/s", "compiled c/s", "raw x", "interp c/s",
      "compiled c/s", "strm x");

  std::string json = "{\n  \"raw_cycles\": " + std::to_string(raw_cycles) +
                     ",\n  \"stream_matrices\": " + std::to_string(matrices) +
                     ",\n  \"designs\": [\n";
  bool first = true;

  for (const Case& c : cases()) {
    netlist::Design d = c.build();
    auto plan = netlist::ExecPlan::for_design(d);
    const size_t nodes = plan->instrs().size();

    auto interp = sim::make_engine(d, sim::EngineKind::kInterpreter);
    auto compiled = sim::make_engine(d, sim::EngineKind::kCompiled);

    double raw_i = raw_cps(*interp, raw_cycles);
    double raw_c = raw_cps(*compiled, raw_cycles);
    double strm_i = stream_cps(*interp, ins);
    double strm_c = stream_cps(*compiled, ins);
    double raw_x = raw_i > 0 ? raw_c / raw_i : 0.0;
    double strm_x = strm_i > 0 ? strm_c / strm_i : 0.0;

    std::printf("%-16s %6zu %6d | %12s %12s %5sx | %12s %12s %5sx\n", c.name,
                nodes, plan->depth(), format_grouped((long)raw_i).c_str(),
                format_grouped((long)raw_c).c_str(),
                format_fixed(raw_x, 1).c_str(),
                format_grouped((long)strm_i).c_str(),
                format_grouped((long)strm_c).c_str(),
                format_fixed(strm_x, 1).c_str());

    if (!first) json += ",\n";
    first = false;
    json += "    {\"design\": \"" + std::string(c.name) + "\"";
    json += ", \"nodes\": " + std::to_string(nodes);
    json += ", \"depth\": " + std::to_string(plan->depth());
    json += ", \"interp_cycles_per_sec\": " + json_num(raw_i);
    json += ", \"compiled_cycles_per_sec\": " + json_num(raw_c);
    json += ", \"raw_speedup\": " + json_num(raw_x);
    json += ", \"interp_ops_per_sec\": " +
            json_num(raw_i * static_cast<double>(nodes));
    json += ", \"compiled_ops_per_sec\": " +
            json_num(raw_c * static_cast<double>(nodes));
    json += ", \"stream_interp_cycles_per_sec\": " + json_num(strm_i);
    json += ", \"stream_compiled_cycles_per_sec\": " + json_num(strm_c);
    json += ", \"stream_speedup\": " + json_num(strm_x);
    json += "}";
  }
  json += "\n  ]\n}\n";

  std::FILE* f = std::fopen("BENCH_sim.json", "w");
  if (!f) {
    std::fprintf(stderr, "cannot write BENCH_sim.json\n");
    return 1;
  }
  std::fputs(json.c_str(), f);
  std::fclose(f);
  std::printf("\nwrote BENCH_sim.json\n");
  return 0;
}
