// Section IV, Vivado HLS narrative: push-button vs the pragma set. The
// paper: the push-button design is ~18x slower than initial Verilog
// (non-inlined functions with superfluous stream interfaces, T_P 340);
// after the source modification + INTERFACE axis + PIPELINE the quality
// lands at 89.7% of optimized Verilog (T_P 8, latency 26).
#include <cstdio>

#include "base/strings.hpp"
#include "core/evaluate.hpp"
#include "tools/compile.hpp"
#include "hls/tool.hpp"
#include "par/sweep.hpp"
#include "rtl/designs.hpp"

using hlshc::format_fixed;
using namespace hlshc::hls;

int main() {
  std::puts("=== Vivado HLS: push-button vs pragmas ===\n");
  const std::string src = idct_source();

  // Four independent evaluations (two VHLS configurations plus the two
  // Verilog baselines) — run them concurrently, collected in input order.
  hlshc::par::SweepRunner runner(0);  // all cores / HLSHC_JOBS
  std::vector<hlshc::core::DesignEvaluation> evs =
      runner.map<hlshc::core::DesignEvaluation>(
          "vhls_pragmas", 4, [&src](int64_t i) {
            switch (i) {
              case 0: {
                hlshc::core::EvaluateOptions slow;
                slow.matrices = 3;
                return hlshc::tools::evaluate_design(
                    compile_vhls(src, {}).design, {}, slow);
              }
              case 1: {
                VhlsOptions o;
                o.pragmas = true;
                return hlshc::tools::evaluate_design(
                    compile_vhls(src, o).design);
              }
              case 2:
                return hlshc::tools::evaluate_design(
                    hlshc::rtl::build_verilog_initial());
              default:
                return hlshc::tools::evaluate_design(
                    hlshc::rtl::build_verilog_opt2());
            }
          });
  const auto& push = evs[0];
  const auto& opt = evs[1];
  const auto& vi = evs[2];
  const auto& vo = evs[3];

  std::printf("push-button: T_P=%s T_L=%d  P=%s MOPS  A=%ld  Q=%s\n",
              format_fixed(push.periodicity_cycles, 0).c_str(),
              push.latency_cycles,
              format_fixed(push.throughput_mops, 2).c_str(), push.area,
              format_fixed(push.quality(), 2).c_str());
  std::printf("pragmas:     T_P=%s T_L=%d  P=%s MOPS  A=%ld  Q=%s\n\n",
              format_fixed(opt.periodicity_cycles, 0).c_str(),
              opt.latency_cycles,
              format_fixed(opt.throughput_mops, 2).c_str(), opt.area,
              format_fixed(opt.quality(), 2).c_str());

  std::puts("--- paper vs measured ---");
  std::printf("push-button vs initial Verilog throughput: paper ~18x lower, "
              "measured %sx lower\n",
              format_fixed(vi.throughput_mops / push.throughput_mops, 0)
                  .c_str());
  std::printf("optimized quality vs optimized Verilog: paper 89.7%%, "
              "measured %s%%\n",
              format_fixed(100.0 * opt.quality() / vo.quality(), 1).c_str());
  std::printf("optimized latency: paper 26, measured %d; periodicity: "
              "paper 8, measured %s\n",
              opt.latency_cycles,
              format_fixed(opt.periodicity_cycles, 1).c_str());
  return 0;
}
