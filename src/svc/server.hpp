// svc::Server — the in-process synthesis service.
//
// A long-running front end over the canonical compile pipeline: requests
// arrive as line-delimited JSON (protocol.hpp), are admitted through a
// bounded par::TaskQueue, and are executed by worker threads that route all
// design work through tools::compile — via the content-hash DesignCache —
// and the existing evaluation/campaign/DSE machinery. Resilience is the
// design center, not a bolt-on:
//
//   * Admission control: the queue holds at most queue_capacity requests.
//     A submit against a full queue is *shed immediately* with a structured
//     `overloaded` response carrying a retry_after_ms hint — backlog can
//     never grow without bound, and shedding costs O(1).
//   * Deadlines: each request's wall budget (its "deadline_ms", else the
//     server default) starts at admission, so time spent queued counts.
//     The token is re-checked at dequeue and threaded into the pass
//     pipeline, every simulation engine, and between DSE points; expiry
//     anywhere surfaces as `deadline_exceeded`, never as a wedged worker.
//   * Crash isolation: any exception a handler throws — malformed params,
//     an unknown design, a throwing design builder, an internal bug —
//     becomes an `internal_error` (or more specific) response carrying the
//     request id. The daemon keeps serving; the poison-request test feeds
//     it a hundred hostile requests and then checks a clean compile still
//     answers bitwise-identically to a direct tools::compile call.
//   * Caching: compiles are memoized content-addressed (cache.hpp) with
//     byte/entry budgets and LRU eviction, so a hot design costs one
//     compile no matter how many clients ask.
//
// Metrics (when obs::enabled()): svc.requests / svc.ok / svc.error.<code> /
// svc.shed counters, the svc.request_ns latency histogram — plus labeled
// series keyed per method and per workload (svc.requests{method=…},
// svc.request_ns{method=…}, svc.requests{workload=…},
// svc.outcome{code=…}) — par.queue.depth and svc.cache.* via their owning
// layers.
//
// Tracing (always): every request — including malformed and shed ones —
// mints an obs::TraceContext at admission; the handling worker installs it,
// so the compile pipeline's spans, the pool's chunk spans, and every
// obs::EventLog event of that request share one trace_id. Responses carry
// the id as a top-level "trace_id" field, and the `trace` protocol method
// returns recent request summaries and per-trace events in-band.
//
// The server is in-process by design — tests and benches drive it through
// svc::Client; the hlshc_serve binary wires serve() to stdin/stdout for the
// actual daemon. Network transport stays out of scope (and out of the
// dependency set); the protocol is transport-agnostic lines either way.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "base/deadline.hpp"
#include "obs/trace.hpp"
#include "netlist/ir.hpp"
#include "par/queue.hpp"
#include "svc/cache.hpp"
#include "svc/protocol.hpp"
#include "tools/compile.hpp"
#include "workload/workload.hpp"

namespace hlshc::svc {

struct ServerOptions {
  int workers = 1;                  ///< request-executing threads
  int queue_capacity = 16;          ///< admission bound; beyond it: shed
  size_t max_request_bytes = 1u << 16;  ///< request-line byte limit
  int64_t default_deadline_ms = 0;  ///< applied when a request names none
  int retry_after_ms = 5;           ///< hint attached to overloaded responses
  /// Requests slower than this (admission → response) emit a kWarn
  /// "svc.slow_request" event when obs::enabled(); 0 disables the slow log.
  int64_t slow_request_ms = 1000;
  /// Per-request summaries held for the `trace` protocol method (always on:
  /// one small struct per request, bounded ring).
  size_t recent_requests = 64;
  CacheConfig cache;
  /// Base compile options for compile/evaluate/campaign requests; per-request
  /// params may override optimize/strength_reduce, and the per-request
  /// deadline token is always attached on top.
  tools::CompileOptions compile;
};

class Server {
 public:
  explicit Server(const ServerOptions& options = {});
  /// Cancels queued requests and joins the workers. Futures of cancelled
  /// requests report broken_promise; drain via serve()/handle() first for a
  /// graceful stop.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Adds (or replaces) a buildable design. The built-in set mirrors the
  /// workload registry — every fast builder as "<workload>.<builder>" plus
  /// the historical bare names for the paper's Verilog and Chisel families;
  /// tests register hostile builders (throwing, slow) through the same hook.
  void register_design(const std::string& name,
                       std::function<netlist::Design()> builder);
  std::vector<std::string> design_names() const;

  /// Admits one request line. Never blocks: the returned future resolves to
  /// the response line — immediately for admission failures (malformed,
  /// oversized, overloaded), after execution otherwise.
  std::future<std::string> submit(const std::string& line);

  /// Synchronous convenience: submit(line).get().
  std::string handle(const std::string& line);

  /// The daemon loop: one request per input line, one response per output
  /// line, in request order (execution itself overlaps across workers). A
  /// "shutdown" request drains in-flight work and returns.
  void serve(std::istream& in, std::ostream& out);

  DesignCache::Stats cache_stats() const { return cache_.stats(); }
  int queue_depth() const { return queue_.depth(); }
  int64_t shed_count() const { return queue_.shed(); }
  const ServerOptions& options() const { return options_; }

  /// One completed (or shed) request, as served by the `trace` method.
  struct RequestRecord {
    uint64_t trace_id = 0;
    std::string method;
    std::string design;    ///< params.design when present
    std::string outcome;   ///< "ok" or the wire error code
    int64_t queue_ns = 0;  ///< admission → dequeue
    int64_t total_ns = 0;  ///< admission → response
  };
  std::vector<RequestRecord> recent_requests() const;  ///< newest first

 private:
  std::string process(const Request& req,
                      const std::shared_ptr<const Deadline>& deadline,
                      int64_t admitted_ns, const obs::TraceContext& trace);
  obs::Json dispatch(const Request& req,
                     const std::shared_ptr<const Deadline>& deadline);
  obs::Json handle_compile(const Request& req,
                           const std::shared_ptr<const Deadline>& deadline);
  obs::Json handle_evaluate(const Request& req,
                            const std::shared_ptr<const Deadline>& deadline);
  obs::Json handle_campaign(const Request& req,
                            const std::shared_ptr<const Deadline>& deadline);
  obs::Json handle_dse(const Request& req,
                       const std::shared_ptr<const Deadline>& deadline);
  obs::Json handle_stats() const;
  /// The `trace` method: recent request summaries, plus the correlated
  /// event-log entries when params.trace_id names a specific trace.
  obs::Json handle_trace(const Request& req) const;

  /// Builds the design named in params.design (kInvalidRequest when absent
  /// or unregistered). The builder runs on the worker, under the deadline.
  netlist::Design build_design(const obs::Json& params) const;
  /// The workload spec a request measures against: an explicit
  /// params.workload wins (kInvalidRequest when unregistered); otherwise a
  /// "<workload>." design-name prefix is honoured when it names a registry
  /// entry; otherwise the paper's default, "idct".
  const workload::WorkloadSpec& resolve_workload(const obs::Json& params) const;
  tools::CompileOptions compile_options(
      const obs::Json& params,
      const std::shared_ptr<const Deadline>& deadline) const;
  /// Outcome accounting: labeled counters/histograms, the slow-request log,
  /// and the recent-requests ring. Runs for every request, shed included.
  void finish(const Request& req, const std::string& outcome,
              int64_t admitted_ns, int64_t queue_ns,
              const obs::TraceContext& trace);

  ServerOptions options_;
  DesignCache cache_;
  mutable std::mutex designs_mutex_;
  std::map<std::string, std::function<netlist::Design()>> designs_;
  mutable std::mutex recent_mutex_;
  std::deque<RequestRecord> recent_;  ///< newest at the back, bounded
  par::TaskQueue queue_;  ///< declared last: workers die before the rest
};

}  // namespace hlshc::svc
