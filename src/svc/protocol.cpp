#include "svc/protocol.hpp"

#include <utility>

namespace hlshc::svc {

using obs::Json;

const char* error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kInvalidRequest: return "invalid_request";
    case ErrorCode::kUnknownMethod: return "unknown_method";
    case ErrorCode::kOversizedRequest: return "oversized_request";
    case ErrorCode::kOverloaded: return "overloaded";
    case ErrorCode::kDeadlineExceeded: return "deadline_exceeded";
    case ErrorCode::kInternalError: return "internal_error";
  }
  HLSHC_UNREACHABLE("bad ErrorCode");
}

bool is_transient(ErrorCode code) { return code == ErrorCode::kOverloaded; }

Request parse_request(const std::string& line, size_t max_bytes) {
  if (max_bytes > 0 && line.size() > max_bytes)
    throw ProtocolError(ErrorCode::kOversizedRequest,
                        "request line of " + std::to_string(line.size()) +
                            " bytes exceeds the " +
                            std::to_string(max_bytes) + "-byte limit");
  Json doc;
  try {
    doc = Json::parse(line);
  } catch (const Error& e) {
    throw ProtocolError(ErrorCode::kInvalidRequest,
                        std::string("malformed JSON request: ") + e.what());
  }
  if (!doc.is_object())
    throw ProtocolError(ErrorCode::kInvalidRequest,
                        "request must be a JSON object");

  Request req;
  if (const Json* id = doc.find("id")) req.id = *id;

  const Json* method = doc.find("method");
  if (!method || method->kind() != Json::Kind::kString)
    throw ProtocolError(ErrorCode::kInvalidRequest,
                        "request needs a string \"method\" field");
  req.method = method->as_string();

  req.params = Json::object();
  if (const Json* params = doc.find("params")) {
    if (!params->is_object())
      throw ProtocolError(ErrorCode::kInvalidRequest,
                          "\"params\" must be an object");
    req.params = *params;
  }

  if (const Json* deadline = doc.find("deadline_ms")) {
    if (deadline->kind() != Json::Kind::kNumber || deadline->as_int() <= 0)
      throw ProtocolError(ErrorCode::kInvalidRequest,
                          "\"deadline_ms\" must be a positive integer");
    req.deadline_ms = deadline->as_int();
  }
  return req;
}

Json ok_response(const Json& id, Json result) {
  Json out = Json::object();
  out.set("id", id);
  out.set("ok", Json::boolean(true));
  out.set("result", std::move(result));
  return out;
}

Json error_response(const Json& id, ErrorCode code, const std::string& message,
                    int retry_after_ms) {
  Json error = Json::object();
  error.set("code", Json::string(error_code_name(code)));
  error.set("message", Json::string(message));
  if (retry_after_ms > 0)
    error.set("retry_after_ms", Json::number(retry_after_ms));
  Json out = Json::object();
  out.set("id", id);
  out.set("ok", Json::boolean(false));
  out.set("error", std::move(error));
  return out;
}

}  // namespace hlshc::svc
