// hlshc_serve — the synthesis service daemon.
//
// Reads one JSON request per line on stdin, writes one JSON response per
// line on stdout (in request order), and keeps serving through malformed,
// oversized, expired, and crashing requests. See src/svc/protocol.hpp for
// the wire contract and README.md for a quickstart.
//
//   echo '{"id":1,"method":"compile","params":{"design":"verilog_opt2"}}' |
//     ./hlshc_serve --jobs 4
//
// Flags:
//   --jobs N          worker threads (default HLSHC_JOBS, else 1)
//   --queue N         admission-queue capacity (default 16)
//   --deadline-ms N   default per-request wall budget (default 0 = none)
//   --cache-mb N      compiled-design cache byte budget (default 8)
//   --cache-entries N compiled-design cache entry budget (default 64)
//   --slow-ms N       log requests slower than N ms as svc.slow_request
//                     events (default 1000; 0 disables)
//   --event-log FILE  enable observability and append every structured
//                     event to FILE as JSON lines (one object per line)
//   --trace FILE      record Chrome trace_event spans for the whole run
//                     and write them to FILE at shutdown
#include <cstdlib>
#include <iostream>
#include <string>

#include "obs/event_log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "par/pool.hpp"
#include "svc/server.hpp"

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--jobs N] [--queue N] [--deadline-ms N] [--cache-mb N]"
               " [--cache-entries N] [--slow-ms N] [--event-log FILE]"
               " [--trace FILE]\n";
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hlshc;

  svc::ServerOptions options;
  options.workers = par::default_jobs();
  std::string event_log_path;
  std::string trace_path;
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      const auto value = [&]() -> std::string {
        if (i + 1 >= argc) usage(argv[0]);
        return argv[++i];
      };
      if (arg == "--jobs") {
        options.workers = par::parse_jobs(value(), "--jobs");
      } else if (arg == "--queue") {
        options.queue_capacity = par::parse_jobs(value(), "--queue");
      } else if (arg == "--deadline-ms") {
        options.default_deadline_ms = std::stoll(value());
      } else if (arg == "--cache-mb") {
        options.cache.max_bytes = std::stoull(value()) << 20;
      } else if (arg == "--cache-entries") {
        options.cache.max_entries = std::stoull(value());
      } else if (arg == "--slow-ms") {
        options.slow_request_ms = std::stoll(value());
      } else if (arg == "--event-log") {
        event_log_path = value();
      } else if (arg == "--trace") {
        trace_path = value();
      } else if (arg == "--help" || arg == "-h") {
        usage(argv[0]);
      } else {
        std::cerr << "unknown flag '" << arg << "'\n";
        usage(argv[0]);
      }
    }
  } catch (const std::exception& e) {
    std::cerr << "bad flag value: " << e.what() << '\n';
    return 2;
  }

  // Observability switches: the event-log sink implies obs::enabled() (an
  // event log with emission disabled would be a confusing no-op file), and
  // --trace turns the span recorder on for the daemon's whole lifetime.
  if (!event_log_path.empty()) {
    try {
      obs::event_log().open_sink(event_log_path);
    } catch (const std::exception& e) {
      std::cerr << "fatal: " << e.what() << '\n';
      return 1;
    }
    obs::set_enabled(true);
  }
  if (!trace_path.empty()) obs::tracer().start();

  try {
    svc::Server server(options);
    server.serve(std::cin, std::cout);
  } catch (const std::exception& e) {
    // Only construction can land here — per-request failures are answered
    // on the wire, never thrown out of serve().
    std::cerr << "fatal: " << e.what() << '\n';
    return 1;
  }

  if (!trace_path.empty()) {
    obs::tracer().stop();
    try {
      obs::tracer().write_file(trace_path);
    } catch (const std::exception& e) {
      std::cerr << "trace write failed: " << e.what() << '\n';
      return 1;
    }
  }
  if (!event_log_path.empty()) obs::event_log().close_sink();
  return 0;
}
