#include "svc/cache.hpp"

#include <utility>

#include "netlist/dump.hpp"
#include "obs/event_log.hpp"
#include "obs/metrics.hpp"
#include "sim/engine.hpp"

namespace hlshc::svc {

std::string content_hash(std::string_view text) {
  uint64_t h = 14695981039346656037ull;  // FNV-1a offset basis
  for (const char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;  // FNV prime
  }
  static const char* kHex = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<size_t>(i)] = kHex[h & 0xF];
    h >>= 4;
  }
  return out;
}

DesignCache::DesignCache(CacheConfig config) : config_(config) {}

std::string DesignCache::fingerprint(const netlist::Design& design,
                                     const tools::CompileOptions& options) {
  // The dump is one stable line per node, so structurally identical designs
  // fingerprint identically regardless of how they were built. Verify mode
  // does not change the output design, so it is deliberately not part of
  // the key; every option that does changes the fingerprint.
  std::string key = content_hash(netlist::dump_text(design));
  key += options.optimize ? ":opt" : ":raw";
  if (options.strength_reduce) key += ":sr";
  key += ":i" + std::to_string(options.max_iterations);
  return key;
}

CachedCompile DesignCache::get_or_compile(
    const netlist::Design& design, const tools::CompileOptions& options) {
  const std::string key = fingerprint(design, options);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      lru_.splice(lru_.end(), lru_, it->second.lru);  // mark MRU
      ++hits_;
      publish_metrics_locked();
      if (obs::enabled()) {
        obs::count(obs::labeled("svc.cache.lookups", "result", "hit"));
        obs::log_event(obs::EventLevel::kDebug, "svc.cache.lookup",
                       {{"result", "hit"}, {"key", key}});
      }
      return {it->second.design, it->second.stats, key,
              it->second.result_hash, true};
    }
    ++misses_;
    publish_metrics_locked();
  }
  if (obs::enabled()) {
    obs::count(obs::labeled("svc.cache.lookups", "result", "miss"));
    obs::log_event(obs::EventLevel::kDebug, "svc.cache.lookup",
                   {{"result", "miss"}, {"key", key}});
  }

  // Miss: compile outside the lock (a slow compile must not block hits),
  // then warm every derived cache the entry will be read through — after
  // this the Design is never mutated again, so concurrent engine
  // construction over it is a pure read (the campaign's pre-warm contract).
  tools::CompiledDesign compiled = tools::compile(design, options);
  auto shared =
      std::make_shared<const netlist::Design>(std::move(compiled.design));
  const std::string dump = netlist::dump_text(*shared);
  sim::make_engine(*shared, sim::EngineKind::kCompiled);  // builds the plan

  Entry entry;
  entry.design = shared;
  entry.stats = compiled.stats;
  entry.result_hash = content_hash(dump);
  // Size estimate: the canonical dump tracks node count and operand fanin,
  // which is what actually occupies memory (nodes + ExecPlan stream).
  entry.bytes = dump.size();

  CachedCompile out{shared, compiled.stats, key, entry.result_hash, false};
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (entries_.find(key) == entries_.end()) {  // lost races insert first
      lru_.push_back(key);
      entry.lru = std::prev(lru_.end());
      bytes_ += entry.bytes;
      entries_.emplace(key, std::move(entry));
      evict_over_budget_locked();
    }
    publish_metrics_locked();
  }
  return out;
}

DesignCache::Stats DesignCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return {hits_, misses_, evictions_, bytes_, entries_.size()};
}

void DesignCache::evict_over_budget_locked() {
  // Never evict the single remaining (just-inserted) entry: an oversized
  // design occupies the cache rather than thrashing it.
  while (entries_.size() > 1 &&
         (bytes_ > config_.max_bytes || entries_.size() > config_.max_entries)) {
    const std::string& victim = lru_.front();
    auto it = entries_.find(victim);
    bytes_ -= it->second.bytes;
    entries_.erase(it);
    lru_.pop_front();
    ++evictions_;
    if (obs::enabled())
      obs::count(obs::labeled("svc.cache.lookups", "result", "evict"));
  }
}

void DesignCache::publish_metrics_locked() {
  if (!obs::enabled()) return;
  obs::Registry& reg = obs::registry();
  // Counters are monotone: publish deltas by setting gauges and re-adding
  // would double-count, so export absolute values through gauges and keep
  // the event counters incremental at the call sites that know the event.
  reg.gauge("svc.cache.bytes")->set(static_cast<double>(bytes_));
  reg.gauge("svc.cache.entries")->set(static_cast<double>(entries_.size()));
  reg.gauge("svc.cache.hits")->set(static_cast<double>(hits_));
  reg.gauge("svc.cache.misses")->set(static_cast<double>(misses_));
  reg.gauge("svc.cache.evictions")->set(static_cast<double>(evictions_));
}

}  // namespace hlshc::svc
