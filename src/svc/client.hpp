// svc::Client — the in-process client with the retry policy the service's
// error contract is designed for.
//
// The split of error codes into transient (overloaded) and permanent
// (everything else) only pays off if callers honour it, so the reference
// client encodes the policy once: retry *only* transient failures, back off
// exponentially with deterministic jitter, respect the server's
// retry_after_ms hint as a floor, and stop when either the attempt budget or
// the wall budget runs out. Tests and benches drive the server through this
// client; anything speaking the line protocol from outside gets the same
// behaviour by copying this loop.
//
// Jitter is deterministic (a splitmix64 stream seeded per client) so the
// overload soak test is reproducible; two clients with different seeds still
// decorrelate their retry storms, which is the point of jitter.
#pragma once

#include <cstdint>
#include <string>

#include "obs/json.hpp"
#include "svc/protocol.hpp"
#include "svc/server.hpp"

namespace hlshc::svc {

/// A structured failure surfaced to client callers: the response's error
/// code plus its message (after retries were exhausted, for transient codes).
class RpcError : public Error {
 public:
  RpcError(ErrorCode code, const std::string& message, int attempts)
      : Error(std::string(error_code_name(code)) + ": " + message + " (" +
              std::to_string(attempts) + " attempt" +
              (attempts == 1 ? "" : "s") + ')'),
        code_(code),
        attempts_(attempts) {}

  ErrorCode code() const { return code_; }
  int attempts() const { return attempts_; }

 private:
  ErrorCode code_;
  int attempts_;
};

struct RetryPolicy {
  int max_attempts = 4;          ///< total tries, including the first
  int initial_backoff_ms = 1;    ///< base delay before attempt 2
  double multiplier = 2.0;       ///< exponential growth per retry
  double jitter = 0.5;           ///< backoff scaled by [1-jitter, 1+jitter]
  int64_t budget_ms = 0;         ///< total wall budget; 0 = attempts only
  uint64_t seed = 2026;          ///< jitter stream seed
};

class Client {
 public:
  /// Binds to an in-process server. The server must outlive the client.
  explicit Client(Server& server, RetryPolicy policy = {});

  /// Issues one request and returns the response's "result" object.
  /// Transient failures (overloaded) are retried per the policy; any other
  /// failure — and a transient one that survives the policy — throws
  /// RpcError carrying the final code and the attempt count.
  obs::Json call(const std::string& method,
                 obs::Json params = obs::Json::object(),
                 int64_t deadline_ms = 0);

  /// Raw request/response round trip, no retries: returns the parsed
  /// response line for a caller that wants the envelope itself.
  obs::Json call_raw(const std::string& method, const obs::Json& params,
                     int64_t deadline_ms);

  int64_t retries() const { return retries_; }
  const RetryPolicy& policy() const { return policy_; }

 private:
  /// Backoff before retry number `retry` (1-based), honouring the server's
  /// retry_after_ms hint as a floor and jittering deterministically.
  int64_t backoff_ms(int retry, int hint_ms);
  uint64_t next_random();  ///< splitmix64

  Server& server_;
  RetryPolicy policy_;
  uint64_t rng_state_;
  int64_t next_id_ = 1;
  int64_t retries_ = 0;
};

}  // namespace hlshc::svc
