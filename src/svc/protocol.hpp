// The synthesis service wire protocol: line-delimited JSON requests and
// responses with a closed set of structured error codes.
//
// One request per line, one response per line (the shape of XLS's yosys
// synthesis server, minus the RPC framework):
//
//   -> {"id": 7, "method": "compile",
//       "params": {"design": "verilog_opt2"}, "deadline_ms": 500}
//   <- {"id": 7, "ok": true, "result": {...}}
//   <- {"id": 7, "ok": false,
//       "error": {"code": "overloaded", "message": "...",
//                 "retry_after_ms": 5}}
//
// Every failure is one of six codes, and the code — not the message — is
// the contract clients program against:
//
//   invalid_request    caller bug: malformed JSON, missing/ill-typed fields,
//                      unknown design name. Never retried.
//   unknown_method     caller bug. Never retried.
//   oversized_request  request line exceeds the server's byte limit
//                      (admission-control: unbounded lines are a memory DoS).
//   overloaded         the admission queue is full; the response carries a
//                      retry_after_ms hint. The only *transient* code: this
//                      request was shed unexecuted and an identical retry can
//                      succeed once load drains.
//   deadline_exceeded  the request's wall budget expired (queued or mid-run).
//                      Retrying without a larger budget is pointless.
//   internal_error     a handler threw: the exception is reported (with the
//                      request id) instead of taking the daemon down.
//
// Request ids are echoed verbatim (any JSON value). Responses to requests
// whose id could not be parsed carry id null.
//
// Tracing: every response — success, error, even a shed or unparseable
// request — additionally carries a top-level "trace_id" (16 lowercase hex
// chars), the correlation id minted at admission. The `trace` method turns
// an id back into diagnostics:
//
//   -> {"id": 8, "method": "trace",
//       "params": {"trace_id": "00b492e4f1f59cd3", "limit": 32}}
//   <- {"id": 8, "ok": true, "result": {"requests": [...], "events": [...],
//                                       "events_recorded": true, ...}}
//
// Without params.trace_id it returns summaries of the most recent requests
// (always recorded, bounded ring); with it, also the structured event-log
// entries of that trace (recorded only while observability is enabled —
// result.events_recorded says which regime the server is in). `stats`
// reports event-log occupancy/drops alongside cache and queue counters.
#pragma once

#include <cstdint>
#include <string>

#include "base/check.hpp"
#include "obs/json.hpp"

namespace hlshc::svc {

enum class ErrorCode : uint8_t {
  kInvalidRequest,
  kUnknownMethod,
  kOversizedRequest,
  kOverloaded,
  kDeadlineExceeded,
  kInternalError,
};

/// The wire name: "invalid_request", "overloaded", ...
const char* error_code_name(ErrorCode code);

/// True for codes a client retry can fix (currently exactly kOverloaded:
/// the request was shed before any work happened). Deadline and internal
/// failures consumed work; caller-bug codes will fail identically again.
bool is_transient(ErrorCode code);

/// A structured service failure: carries the wire code so handlers and the
/// client retry loop can dispatch on it without parsing messages.
class ProtocolError : public Error {
 public:
  ProtocolError(ErrorCode code, const std::string& message,
                int retry_after_ms = 0)
      : Error(message), code_(code), retry_after_ms_(retry_after_ms) {}

  ErrorCode code() const { return code_; }
  /// Backoff hint for kOverloaded; 0 elsewhere.
  int retry_after_ms() const { return retry_after_ms_; }

 private:
  ErrorCode code_;
  int retry_after_ms_;
};

struct Request {
  obs::Json id;          ///< echoed verbatim; null when absent
  std::string method;
  obs::Json params;      ///< object; empty object when absent
  int64_t deadline_ms = 0;  ///< 0 = no explicit deadline
};

/// Parses one request line. Throws ProtocolError with kOversizedRequest when
/// the line exceeds `max_bytes`, kInvalidRequest on malformed JSON / missing
/// or ill-typed fields (non-object root, absent or non-string method,
/// non-object params, non-positive or non-integer deadline_ms).
Request parse_request(const std::string& line, size_t max_bytes);

/// {"id": ..., "ok": true, "result": ...}
obs::Json ok_response(const obs::Json& id, obs::Json result);

/// {"id": ..., "ok": false, "error": {"code", "message"[, "retry_after_ms"]}}
obs::Json error_response(const obs::Json& id, ErrorCode code,
                         const std::string& message, int retry_after_ms = 0);

}  // namespace hlshc::svc
