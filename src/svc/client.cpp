#include "svc/client.hpp"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "obs/metrics.hpp"

namespace hlshc::svc {

using obs::Json;

Client::Client(Server& server, RetryPolicy policy)
    : server_(server), policy_(policy), rng_state_(policy.seed) {
  HLSHC_CHECK(policy_.max_attempts >= 1,
              "retry policy needs at least one attempt, got "
                  << policy_.max_attempts);
}

uint64_t Client::next_random() {
  // splitmix64: tiny, deterministic, and good enough to decorrelate two
  // clients' backoff schedules.
  uint64_t z = (rng_state_ += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

int64_t Client::backoff_ms(int retry, int hint_ms) {
  double base = policy_.initial_backoff_ms;
  for (int i = 1; i < retry; ++i) base *= policy_.multiplier;
  // Jitter scales by a uniform factor in [1-j, 1+j]; the server's
  // retry_after_ms hint is a floor, not a target — it states the earliest
  // moment a retry can possibly help.
  const double unit =
      static_cast<double>(next_random() >> 11) / 9007199254740992.0;  // [0,1)
  const double factor = 1.0 + policy_.jitter * (2.0 * unit - 1.0);
  const int64_t jittered = static_cast<int64_t>(base * factor);
  return std::max<int64_t>({jittered, hint_ms, 0});
}

Json Client::call_raw(const std::string& method, const Json& params,
                      int64_t deadline_ms) {
  Json req = Json::object();
  req.set("id", Json::number(next_id_++));
  req.set("method", Json::string(method));
  if (params.is_object()) req.set("params", params);
  if (deadline_ms > 0) req.set("deadline_ms", Json::number(deadline_ms));
  return Json::parse(server_.handle(req.dump()));
}

Json Client::call(const std::string& method, Json params,
                  int64_t deadline_ms) {
  const auto start = std::chrono::steady_clock::now();
  const auto spent_ms = [&] {
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::steady_clock::now() - start)
        .count();
  };

  ErrorCode last_code = ErrorCode::kInternalError;
  std::string last_message = "no attempt made";
  int attempts_made = 0;
  for (int attempt = 1; attempt <= policy_.max_attempts; ++attempt) {
    ++attempts_made;
    const Json response = call_raw(method, params, deadline_ms);
    const Json* ok = response.find("ok");
    if (ok && ok->kind() == Json::Kind::kBool && ok->as_bool()) {
      const Json* result = response.find("result");
      return result ? *result : Json::object();
    }

    // Decode the error envelope; a response that fails to carry one is
    // itself an internal error (the server promises the shape).
    last_code = ErrorCode::kInternalError;
    last_message = "response carried no error envelope";
    int hint_ms = 0;
    if (const Json* error = response.find("error")) {
      if (const Json* message = error->find("message"))
        if (message->kind() == Json::Kind::kString)
          last_message = message->as_string();
      if (const Json* hint = error->find("retry_after_ms"))
        if (hint->kind() == Json::Kind::kNumber)
          hint_ms = static_cast<int>(hint->as_int());
      if (const Json* code = error->find("code"))
        if (code->kind() == Json::Kind::kString) {
          const std::string& name = code->as_string();
          for (const ErrorCode c :
               {ErrorCode::kInvalidRequest, ErrorCode::kUnknownMethod,
                ErrorCode::kOversizedRequest, ErrorCode::kOverloaded,
                ErrorCode::kDeadlineExceeded, ErrorCode::kInternalError}) {
            if (name == error_code_name(c)) {
              last_code = c;
              break;
            }
          }
        }
    }

    if (!is_transient(last_code) || attempt == policy_.max_attempts) break;
    const int64_t delay = backoff_ms(attempt, hint_ms);
    if (policy_.budget_ms > 0 && spent_ms() + delay > policy_.budget_ms)
      break;  // the budget admits no further attempt
    ++retries_;
    obs::count("svc.client.retries");
    if (delay > 0)
      std::this_thread::sleep_for(std::chrono::milliseconds(delay));
  }
  throw RpcError(last_code, last_message, attempts_made);
}

}  // namespace hlshc::svc
