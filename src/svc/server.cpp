#include "svc/server.hpp"

#include <deque>
#include <istream>
#include <optional>
#include <ostream>
#include <utility>

#include "chisel/designs.hpp"
#include "core/evaluate.hpp"
#include "fault/campaign.hpp"
#include "fault/model.hpp"
#include "netlist/dump.hpp"
#include "obs/event_log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "rtl/designs.hpp"
#include "synth/schedule.hpp"
#include "tools/flows.hpp"
#include "workload/workload.hpp"

namespace hlshc::svc {

using obs::Json;

namespace {

// ---- typed params access (every mismatch is an invalid_request) ----------

const Json* find_param(const Json& params, const char* key) {
  return params.find(key);
}

std::string require_string(const Json& params, const char* key) {
  const Json* v = find_param(params, key);
  if (!v || v->kind() != Json::Kind::kString)
    throw ProtocolError(ErrorCode::kInvalidRequest,
                        std::string("params.") + key +
                            " must be a string and is required");
  return v->as_string();
}

int64_t get_int(const Json& params, const char* key, int64_t fallback,
                int64_t min, int64_t max) {
  const Json* v = find_param(params, key);
  if (!v) return fallback;
  if (v->kind() != Json::Kind::kNumber)
    throw ProtocolError(ErrorCode::kInvalidRequest,
                        std::string("params.") + key + " must be a number");
  const int64_t n = v->as_int();
  if (n < min || n > max)
    throw ProtocolError(ErrorCode::kInvalidRequest,
                        std::string("params.") + key + " = " +
                            std::to_string(n) + " outside [" +
                            std::to_string(min) + ", " + std::to_string(max) +
                            ']');
  return n;
}

bool get_bool(const Json& params, const char* key, bool fallback) {
  const Json* v = find_param(params, key);
  if (!v) return fallback;
  if (v->kind() != Json::Kind::kBool)
    throw ProtocolError(ErrorCode::kInvalidRequest,
                        std::string("params.") + key + " must be a bool");
  return v->as_bool();
}

/// Attaches the request's correlation id to a response line: clients quote
/// it back through the `trace` method to self-diagnose.
std::string stamp_trace(Json response, const obs::TraceContext& trace) {
  if (trace.valid())
    response.set("trace_id", Json::string(obs::trace_id_hex(trace.trace_id)));
  return response.dump();
}

}  // namespace

Server::Server(const ServerOptions& options)
    : options_(options),
      cache_(options.cache),
      queue_(options.workers, options.queue_capacity) {
  // Every fast workload builder under its qualified "<workload>.<builder>"
  // name; slow builders (vhls) stay out of the long-running service.
  const workload::Registry& reg = workload::Registry::instance();
  for (const auto& [wname, spec] : reg.all())
    for (const workload::BuilderInfo& b : spec.builders)
      if (!b.slow) register_design(wname + "." + b.name, b.build);
  // The historical bare names predate the registry; keep them resolving to
  // the same IDCT builders so existing clients see no change.
  const workload::WorkloadSpec& idct = reg.get("idct");
  for (const char* name : {"verilog_initial", "verilog_opt1", "verilog_opt2",
                           "chisel_initial", "chisel_opt"})
    register_design(name, idct.builder(name).build);
  // The raw combinational matrix kernels behind the DSE's scheduler sweep.
  // The compile method's stages/objective/retime knobs pipeline a pure
  // dataflow function; the harness-wrapped registry designs above contain
  // registers, so the unwrapped kernels get their own names.
  register_design("idct.rtl_kernel", rtl::build_matrix_kernel);
  register_design("idct.chisel_kernel", chisel::build_matrix_kernel);
}

Server::~Server() = default;

void Server::register_design(const std::string& name,
                             std::function<netlist::Design()> builder) {
  HLSHC_CHECK(builder != nullptr, "null design builder for '" << name << '\'');
  std::lock_guard<std::mutex> lock(designs_mutex_);
  designs_[name] = std::move(builder);
}

std::vector<std::string> Server::design_names() const {
  std::lock_guard<std::mutex> lock(designs_mutex_);
  std::vector<std::string> names;
  names.reserve(designs_.size());
  for (const auto& [name, builder] : designs_) names.push_back(name);
  return names;
}

std::future<std::string> Server::submit(const std::string& line) {
  auto promise = std::make_shared<std::promise<std::string>>();
  std::future<std::string> future = promise->get_future();
  const int64_t admitted_ns = obs::now_ns();
  // Every request — even one that fails to parse — gets a trace identity at
  // admission; it correlates the span tree, the event log, and the response.
  const obs::TraceContext trace = obs::new_trace();
  obs::count("svc.requests");

  Request req;
  try {
    req = parse_request(line, options_.max_request_bytes);
  } catch (const ProtocolError& e) {
    finish(req, error_code_name(e.code()), admitted_ns, 0, trace);
    promise->set_value(
        stamp_trace(error_response(Json(), e.code(), e.what()), trace));
    return future;
  }

  const int64_t budget_ms =
      req.deadline_ms > 0 ? req.deadline_ms : options_.default_deadline_ms;
  std::shared_ptr<const Deadline> deadline;
  if (budget_ms > 0) deadline = Deadline::shared_after_ms(budget_ms);

  if (obs::enabled()) {
    obs::Event admitted;
    admitted.level = obs::EventLevel::kDebug;
    admitted.trace_id = trace.trace_id;
    admitted.name = "svc.admitted";
    admitted.kv = {{"method", req.method}};
    obs::event_log().emit(std::move(admitted));
  }
  const bool accepted = queue_.try_submit(
      [this, promise, req = std::move(req), deadline, admitted_ns,
       trace]() mutable {
        promise->set_value(process(req, deadline, admitted_ns, trace));
      });
  if (!accepted) {
    // Shed at admission: O(1), no handler work consumed, and the hint tells
    // a well-behaved client how long to back off before retrying.
    obs::count("svc.shed");
    finish(req, "overloaded", admitted_ns, 0, trace);
    promise->set_value(stamp_trace(
        error_response(req.id, ErrorCode::kOverloaded,
                       "admission queue full (capacity " +
                           std::to_string(options_.queue_capacity) + ')',
                       options_.retry_after_ms),
        trace));
  }
  return future;
}

std::string Server::handle(const std::string& line) {
  return submit(line).get();
}

void Server::serve(std::istream& in, std::ostream& out) {
  std::deque<std::future<std::string>> pending;
  const auto flush_ready = [&](bool block) {
    while (!pending.empty() &&
           (block || pending.front().wait_for(std::chrono::seconds(0)) ==
                         std::future_status::ready)) {
      out << pending.front().get() << '\n';
      out.flush();
      pending.pop_front();
    }
  };

  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    bool shutdown = false;
    try {
      shutdown = parse_request(line, options_.max_request_bytes).method ==
                 "shutdown";
    } catch (const ProtocolError&) {
      // submit() below answers with the structured error.
    }
    pending.push_back(submit(line));
    flush_ready(/*block=*/false);
    if (shutdown) break;
  }
  flush_ready(/*block=*/true);
}

std::string Server::process(const Request& req,
                            const std::shared_ptr<const Deadline>& deadline,
                            int64_t admitted_ns,
                            const obs::TraceContext& trace) {
  // Install the request context minted at admission: every span and event
  // below — compile passes, cache lookups, pool chunks — carries its ids.
  obs::TraceScope trace_scope(trace);
  const int64_t queue_ns = obs::now_ns() - admitted_ns;
  obs::Span span("svc.request", "svc");
  span.arg("method", req.method).arg("queue_ns", queue_ns);
  Json response;
  std::string outcome = "ok";
  // Per-request crash isolation: nothing a handler throws escapes this
  // frame — the worker thread, the queue, and the other requests live on.
  try {
    if (deadline)
      deadline->check("request '" + req.method + "' dequeued after " +
                      std::to_string(queue_ns / 1000000) + " ms in queue");
    response = ok_response(req.id, dispatch(req, deadline));
  } catch (const ProtocolError& e) {
    outcome = error_code_name(e.code());
    response = error_response(req.id, e.code(), e.what(), e.retry_after_ms());
  } catch (const DeadlineExceeded& e) {
    outcome = error_code_name(ErrorCode::kDeadlineExceeded);
    response =
        error_response(req.id, ErrorCode::kDeadlineExceeded, e.what());
  } catch (const std::exception& e) {
    outcome = error_code_name(ErrorCode::kInternalError);
    response = error_response(req.id, ErrorCode::kInternalError, e.what());
  } catch (...) {
    outcome = error_code_name(ErrorCode::kInternalError);
    response = error_response(req.id, ErrorCode::kInternalError,
                              "unknown exception in handler");
  }
  span.arg("outcome", outcome);
  finish(req, outcome, admitted_ns, queue_ns, trace);
  return stamp_trace(std::move(response), trace);
}

Json Server::dispatch(const Request& req,
                      const std::shared_ptr<const Deadline>& deadline) {
  if (req.method == "ping") {
    Json result = Json::object();
    result.set("pong", Json::boolean(true));
    return result;
  }
  if (req.method == "list_designs") {
    Json names = Json::array();
    for (const std::string& name : design_names())
      names.push(Json::string(name));
    Json workloads = Json::array();
    for (const std::string& name : workload::Registry::instance().names())
      workloads.push(Json::string(name));
    Json result = Json::object();
    result.set("designs", std::move(names));
    result.set("workloads", std::move(workloads));
    return result;
  }
  if (req.method == "stats") return handle_stats();
  if (req.method == "trace") return handle_trace(req);
  if (req.method == "shutdown") {
    Json result = Json::object();
    result.set("shutting_down", Json::boolean(true));
    return result;
  }
  if (req.method == "compile") return handle_compile(req, deadline);
  if (req.method == "evaluate") return handle_evaluate(req, deadline);
  if (req.method == "campaign") return handle_campaign(req, deadline);
  if (req.method == "dse") return handle_dse(req, deadline);
  throw ProtocolError(ErrorCode::kUnknownMethod,
                      "unknown method '" + req.method + '\'');
}

netlist::Design Server::build_design(const Json& params) const {
  const std::string name = require_string(params, "design");
  std::function<netlist::Design()> builder;
  {
    std::lock_guard<std::mutex> lock(designs_mutex_);
    auto it = designs_.find(name);
    if (it == designs_.end())
      throw ProtocolError(ErrorCode::kInvalidRequest,
                          "unknown design '" + name +
                              "' (see list_designs)");
    builder = it->second;
  }
  return builder();
}

const workload::WorkloadSpec& Server::resolve_workload(
    const Json& params) const {
  const workload::Registry& reg = workload::Registry::instance();
  // Per-workload request accounting: every compile/evaluate/campaign
  // resolves its workload exactly once, right here.
  const auto counted = [](const workload::WorkloadSpec& spec)
      -> const workload::WorkloadSpec& {
    obs::count(obs::labeled("svc.requests", "workload", spec.name));
    return spec;
  };
  const Json* v = params.find("workload");
  if (v) {
    if (v->kind() != Json::Kind::kString)
      throw ProtocolError(ErrorCode::kInvalidRequest,
                          "params.workload must be a string");
    const workload::WorkloadSpec* spec = reg.find(v->as_string());
    if (!spec) {
      std::string known;
      for (const std::string& name : reg.names()) {
        if (!known.empty()) known += ", ";
        known += name;
      }
      throw ProtocolError(ErrorCode::kInvalidRequest,
                          "unknown workload '" + v->as_string() +
                              "' (known: " + known + ')');
    }
    return counted(*spec);
  }
  // Qualified design names carry their workload; a registered test design
  // that happens to contain a dot just falls through to the default.
  const Json* d = params.find("design");
  if (d && d->kind() == Json::Kind::kString) {
    const std::string& name = d->as_string();
    const size_t dot = name.find('.');
    if (dot != std::string::npos)
      if (const workload::WorkloadSpec* spec = reg.find(name.substr(0, dot)))
        return counted(*spec);
  }
  return counted(reg.get("idct"));
}

tools::CompileOptions Server::compile_options(
    const Json& params,
    const std::shared_ptr<const Deadline>& deadline) const {
  tools::CompileOptions opts = options_.compile;
  opts.optimize = get_bool(params, "optimize", opts.optimize);
  opts.strength_reduce =
      get_bool(params, "strength_reduce", opts.strength_reduce);
  opts.narrow = get_bool(params, "narrow", opts.narrow);
  opts.verify = get_bool(params, "verify", opts.verify);
  opts.deadline = deadline;
  return opts;
}

namespace {

/// Scheduler knobs shared by the compile method: params.stages (0 =
/// combinational, the default), params.objective ("balance"/"regmin"),
/// params.retime. Unknown values are an invalid_request, with the
/// synth::parse_* diagnostics naming the offending knob.
synth::ScheduleOptions schedule_options(const Json& params) {
  synth::ScheduleOptions opts;
  opts.stages = static_cast<int>(
      get_int(params, "stages", 0, 0, synth::kMaxScheduleStages));
  if (const Json* v = find_param(params, "objective")) {
    if (v->kind() != Json::Kind::kString)
      throw ProtocolError(ErrorCode::kInvalidRequest,
                          "params.objective must be a string");
    try {
      opts.objective =
          synth::parse_objective(v->as_string(), "params.objective");
    } catch (const Error& e) {
      throw ProtocolError(ErrorCode::kInvalidRequest, e.what());
    }
  }
  opts.retime_boundaries = get_bool(params, "retime", false);
  return opts;
}

}  // namespace

Json Server::handle_compile(const Request& req,
                            const std::shared_ptr<const Deadline>& deadline) {
  // Validate params.workload up front so a typo is an invalid_request, not a
  // half-finished compile.
  const workload::WorkloadSpec& spec = resolve_workload(req.params);
  const synth::ScheduleOptions sched = schedule_options(req.params);
  netlist::Design design = build_design(req.params);
  if (deadline) deadline->check("compile of '" + design.name() + "' (built)");

  // Scheduler knobs: stages > 0 pipelines the (combinational) function
  // before the canonical compile pipeline, the same order the DSE flows
  // use. Asking to pipeline a sequential design is a client mistake, not a
  // server fault — schedule_pipeline's diagnostic comes back verbatim.
  std::optional<synth::ScheduleResult> scheduled;
  if (sched.stages > 0) {
    try {
      scheduled = synth::schedule_pipeline(design, sched);
    } catch (const Error& e) {
      throw ProtocolError(ErrorCode::kInvalidRequest, e.what());
    }
    design = std::move(scheduled->design);
  }

  const CachedCompile compiled =
      cache_.get_or_compile(design, compile_options(req.params, deadline));

  Json result = Json::object();
  result.set("design", Json::string(design.name()));
  if (sched.stages > 0) {
    result.set("stages", Json::number(static_cast<int64_t>(sched.stages)));
    result.set("objective", Json::string(synth::schedule_objective_name(
                                sched.objective)));
    result.set("latency",
               Json::number(static_cast<int64_t>(scheduled->latency)));
    result.set("pipeline_regs",
               Json::number(static_cast<int64_t>(scheduled->pipeline_regs)));
  }
  result.set("workload", Json::string(spec.name));
  result.set("cached", Json::boolean(compiled.hit));
  result.set("key", Json::string(compiled.key));
  result.set("content_hash", Json::string(compiled.result_hash));
  result.set("node_count",
             Json::number(static_cast<int64_t>(compiled.design->node_count())));
  result.set("iterations",
             Json::number(static_cast<int64_t>(compiled.stats.iterations)));
  result.set("nodes_before",
             Json::number(static_cast<int64_t>(compiled.stats.nodes_before())));
  result.set("nodes_after",
             Json::number(static_cast<int64_t>(compiled.stats.nodes_after())));
  // The full canonical dump on request: the poison test diffs it against a
  // direct tools::compile to prove the service changes nothing.
  if (get_bool(req.params, "emit_netlist", false))
    result.set("netlist", Json::string(netlist::dump_text(*compiled.design)));
  return result;
}

Json Server::handle_evaluate(const Request& req,
                             const std::shared_ptr<const Deadline>& deadline) {
  const workload::WorkloadSpec& spec = resolve_workload(req.params);
  const netlist::Design design = build_design(req.params);
  if (deadline) deadline->check("evaluate of '" + design.name() + "' (built)");
  // The same decomposition as tools::evaluate_design — compile through the
  // canonical pipeline (memoized), then the Section III.C measurement — so
  // the cache applies to the expensive half shared between methods.
  const CachedCompile compiled =
      cache_.get_or_compile(design, compile_options(req.params, deadline));
  core::EvaluateOptions eval;
  eval.matrices = static_cast<int>(
      get_int(req.params, "matrices", eval.matrices, 1, 64));
  eval.max_cycles = static_cast<uint64_t>(get_int(
      req.params, "max_cycles", static_cast<int64_t>(eval.max_cycles), 1,
      int64_t{1} << 40));
  eval.deadline = deadline;
  const core::DesignEvaluation ev =
      core::evaluate_axis_design(*compiled.design, spec, eval);

  Json result = Json::object();
  result.set("design", Json::string(design.name()));
  result.set("workload", Json::string(spec.name));
  result.set("cached", Json::boolean(compiled.hit));
  result.set("functional", Json::boolean(ev.functional));
  result.set("latency_cycles", Json::number(ev.latency_cycles));
  result.set("periodicity_cycles", Json::number(ev.periodicity_cycles));
  result.set("fmax_mhz", Json::number(ev.fmax_mhz));
  result.set("throughput_mops", Json::number(ev.throughput_mops));
  result.set("area", Json::number(static_cast<int64_t>(ev.area)));
  result.set("quality", Json::number(ev.quality()));
  return result;
}

Json Server::handle_campaign(const Request& req,
                             const std::shared_ptr<const Deadline>& deadline) {
  const workload::WorkloadSpec& spec = resolve_workload(req.params);
  const netlist::Design design = build_design(req.params);
  if (deadline) deadline->check("campaign on '" + design.name() + "' (built)");
  const CachedCompile compiled =
      cache_.get_or_compile(design, compile_options(req.params, deadline));

  const int sites =
      static_cast<int>(get_int(req.params, "sites", 16, 1, 100000));
  const uint64_t seed = static_cast<uint64_t>(
      get_int(req.params, "seed", 2026, 0, int64_t{1} << 62));
  const uint64_t max_cycle =
      static_cast<uint64_t>(get_int(req.params, "max_cycle", 40, 0, 1 << 20));
  const std::string kind = [&] {
    const Json* v = req.params.find("kind");
    if (!v) return std::string("seu");
    if (v->kind() != Json::Kind::kString)
      throw ProtocolError(ErrorCode::kInvalidRequest,
                          "params.kind must be a string");
    return v->as_string();
  }();

  std::vector<fault::FaultSite> fault_sites;
  if (kind == "seu")
    fault_sites = fault::sample_seu_sites(*compiled.design, sites, max_cycle,
                                          seed);
  else if (kind == "stuck")
    fault_sites = fault::sample_stuck_sites(*compiled.design, sites, seed);
  else
    throw ProtocolError(ErrorCode::kInvalidRequest,
                        "params.kind must be \"seu\" or \"stuck\", got '" +
                            kind + '\'');

  fault::CampaignOptions copts;
  copts.matrices =
      static_cast<int>(get_int(req.params, "matrices", 2, 1, 64));
  copts.jobs = static_cast<int>(get_int(req.params, "jobs", 1, 1, 256));
  // 0 = the process default (HLSHC_LANES, else 32); 1 forces scalar.
  copts.lanes = static_cast<int>(get_int(req.params, "lanes", 0, 0, 64));
  copts.progress_every = 0;  // a service response is the progress report
  copts.keep_runs = false;
  copts.deadline = deadline;
  const fault::CampaignReport report =
      fault::run_campaign(*compiled.design, spec, fault_sites, copts);

  Json counts = Json::object();
  counts.set("masked", Json::number(report.counts.masked));
  counts.set("sdc", Json::number(report.counts.sdc));
  counts.set("detected", Json::number(report.counts.detected));
  counts.set("hang", Json::number(report.counts.hang));
  Json result = Json::object();
  result.set("design", Json::string(design.name()));
  result.set("workload", Json::string(spec.name));
  result.set("cached", Json::boolean(compiled.hit));
  result.set("reference_functional",
             Json::boolean(report.reference_functional));
  result.set("sites", Json::number(report.counts.total()));
  result.set("counts", std::move(counts));
  result.set("vulnerability", Json::number(report.counts.vulnerability()));
  return result;
}

Json Server::handle_dse(const Request& req,
                        const std::shared_ptr<const Deadline>& deadline) {
  const std::string family = require_string(req.params, "flow");
  const int64_t limit = get_int(req.params, "limit", 1 << 20, 1, 1 << 20);

  // The narrowing knob reshapes every flow's sweep grid (params.narrow =
  // false regenerates the pre-narrowing design space).
  std::vector<std::unique_ptr<tools::Flow>> flows =
      tools::make_flows(compile_options(req.params, deadline));
  const tools::Flow* flow = nullptr;
  std::string known;
  for (const auto& f : flows) {
    if (!known.empty()) known += ", ";
    known += f->family();
    if (f->family() == family) flow = f.get();
  }
  if (!flow)
    throw ProtocolError(ErrorCode::kInvalidRequest,
                        "unknown flow '" + family + "' (known: " + known +
                            ')');

  Json points = Json::array();
  int64_t ran = 0;
  for (const tools::SweepTask& task : flow->sweep_tasks()) {
    if (ran >= limit) break;
    if (deadline)
      deadline->check("DSE sweep '" + family + "' before point " +
                      task.config);
    const core::ScatterPoint p = task.run();
    Json point = Json::object();
    point.set("family", Json::string(p.family));
    point.set("config", Json::string(p.config));
    point.set("throughput_mops", Json::number(p.throughput_mops));
    point.set("area", Json::number(static_cast<int64_t>(p.area)));
    point.set("quality", Json::number(p.quality()));
    points.push(std::move(point));
    ++ran;
  }
  Json result = Json::object();
  result.set("flow", Json::string(family));
  result.set("points", std::move(points));
  return result;
}

Json Server::handle_trace(const Request& req) const {
  const int64_t limit = get_int(req.params, "limit", 32, 1, 1024);
  uint64_t want_trace = 0;
  if (const Json* v = req.params.find("trace_id")) {
    if (v->kind() != Json::Kind::kString)
      throw ProtocolError(ErrorCode::kInvalidRequest,
                          "params.trace_id must be a hex string "
                          "(the response field of an earlier request)");
    want_trace = obs::parse_trace_id(v->as_string());
    if (want_trace == 0)
      throw ProtocolError(ErrorCode::kInvalidRequest,
                          "params.trace_id '" + v->as_string() +
                              "' is not a valid trace id");
  }

  Json requests = Json::array();
  int64_t listed = 0;
  for (const RequestRecord& r : recent_requests()) {
    if (want_trace != 0 && r.trace_id != want_trace) continue;
    if (listed >= limit) break;
    Json row = Json::object();
    row.set("trace_id", Json::string(obs::trace_id_hex(r.trace_id)));
    row.set("method", Json::string(r.method));
    if (!r.design.empty()) row.set("design", Json::string(r.design));
    row.set("outcome", Json::string(r.outcome));
    row.set("queue_ms",
            Json::number(static_cast<double>(r.queue_ns) / 1e6));
    row.set("total_ms",
            Json::number(static_cast<double>(r.total_ns) / 1e6));
    requests.push(std::move(row));
    ++listed;
  }

  // Correlated event-log entries for one specific trace. Events exist only
  // while obs::enabled(); events_recorded tells the client which case an
  // empty list means.
  Json events = Json::array();
  if (want_trace != 0)
    for (const obs::Event& e : obs::event_log().for_trace(want_trace))
      events.push(obs::EventLog::event_json(e));

  Json result = Json::object();
  result.set("requests", std::move(requests));
  if (want_trace != 0) {
    result.set("trace_id", Json::string(obs::trace_id_hex(want_trace)));
    result.set("events", std::move(events));
  }
  result.set("events_recorded", Json::boolean(obs::enabled()));
  return result;
}

Json Server::handle_stats() const {
  const DesignCache::Stats cs = cache_.stats();
  Json cache = Json::object();
  cache.set("hits", Json::number(cs.hits));
  cache.set("misses", Json::number(cs.misses));
  cache.set("evictions", Json::number(cs.evictions));
  cache.set("bytes", Json::number(static_cast<int64_t>(cs.bytes)));
  cache.set("entries", Json::number(static_cast<int64_t>(cs.entries)));

  Json queue = Json::object();
  queue.set("depth", Json::number(queue_.depth()));
  queue.set("capacity", Json::number(queue_.capacity()));
  queue.set("workers", Json::number(queue_.workers()));
  queue.set("accepted", Json::number(queue_.accepted()));
  queue.set("shed", Json::number(queue_.shed()));

  const obs::EventLog& log = obs::event_log();
  Json events = Json::object();
  events.set("held", Json::number(static_cast<int64_t>(log.size())));
  events.set("capacity", Json::number(static_cast<int64_t>(log.capacity())));
  events.set("total", Json::number(log.total()));
  events.set("dropped", Json::number(log.dropped()));

  Json result = Json::object();
  result.set("cache", std::move(cache));
  result.set("queue", std::move(queue));
  result.set("events", std::move(events));
  result.set("recent_requests",
             Json::number(static_cast<int64_t>(recent_requests().size())));
  if (obs::enabled()) {
    // Batched-campaign utilization passthrough: total sweeps, lane-runs
    // packed into them, and lanes that sat masked while stragglers ran.
    // A sweeps-free process reports zeros (the counters default-construct).
    obs::Registry& reg = obs::registry();
    Json batch = Json::object();
    batch.set("sweeps", Json::number(reg.counter("sim.batch.sweeps")->value()));
    batch.set("lane_runs",
              Json::number(reg.counter("sim.batch.lanes")->value()));
    batch.set("lanes_masked",
              Json::number(reg.counter("fault.lanes_masked")->value()));
    result.set("batch", std::move(batch));
    // Rewrite-pass passthrough: how much work the narrow pass is actually
    // doing across this process's compiles (0/0 when narrowing is off or
    // nothing compiled yet — the counters default-construct).
    Json passes = Json::object();
    Json narrow = Json::object();
    narrow.set("changes",
               Json::number(reg.counter("netlist.pass.narrow.changes")->value()));
    const obs::Timer* nt = reg.timer("netlist.pass.narrow.ns");
    narrow.set("runs", Json::number(nt->count()));
    narrow.set("ns", Json::number(nt->total_ns()));
    passes.set("narrow", std::move(narrow));
    result.set("passes", std::move(passes));
    result.set("metrics", obs::registry().to_json());
  }
  return result;
}

void Server::finish(const Request& req, const std::string& outcome,
                    int64_t admitted_ns, int64_t queue_ns,
                    const obs::TraceContext& trace) {
  const int64_t total_ns = obs::now_ns() - admitted_ns;

  // The recent-requests ring is always on: it is what the `trace` protocol
  // method serves, and one small record per request is cheap at any load.
  std::string design;
  if (const Json* d = req.params.find("design"))
    if (d->kind() == Json::Kind::kString) design = d->as_string();
  RequestRecord record;
  record.trace_id = trace.trace_id;
  record.method = req.method;
  record.design = design;
  record.outcome = outcome;
  record.queue_ns = queue_ns;
  record.total_ns = total_ns;
  if (options_.recent_requests > 0) {
    std::lock_guard<std::mutex> lock(recent_mutex_);
    recent_.push_back(std::move(record));
    while (recent_.size() > options_.recent_requests) recent_.pop_front();
  }

  if (!obs::enabled()) return;
  obs::Registry& reg = obs::registry();
  reg.counter(outcome == "ok" ? "svc.ok" : "svc.error." + outcome)->add(1);
  reg.counter(obs::labeled("svc.outcome", "code", outcome))->add(1);
  reg.histogram("svc.request_ns")->record(total_ns);
  if (!req.method.empty()) {
    reg.counter(obs::labeled("svc.requests", "method", req.method))->add(1);
    reg.histogram(obs::labeled("svc.request_ns", "method", req.method))
        ->record(total_ns);
  }

  obs::Event done;
  done.level = outcome == "ok" ? obs::EventLevel::kInfo
                               : obs::EventLevel::kWarn;
  done.trace_id = trace.trace_id;
  done.name = "svc.request";
  done.kv = {{"method", req.method},
             {"outcome", outcome},
             {"queue_ns", std::to_string(queue_ns)},
             {"total_ns", std::to_string(total_ns)}};
  obs::event_log().emit(std::move(done));

  // The slow-request log: one kWarn event per offender, with enough context
  // to find it again (method, design, latency split).
  if (options_.slow_request_ms > 0 &&
      total_ns > options_.slow_request_ms * 1000000) {
    obs::Event slow;
    slow.level = obs::EventLevel::kWarn;
    slow.trace_id = trace.trace_id;
    slow.name = "svc.slow_request";
    slow.kv = {{"method", req.method},
               {"design", design},
               {"threshold_ms", std::to_string(options_.slow_request_ms)},
               {"queue_ns", std::to_string(queue_ns)},
               {"total_ns", std::to_string(total_ns)}};
    obs::event_log().emit(std::move(slow));
  }
}

std::vector<Server::RequestRecord> Server::recent_requests() const {
  std::lock_guard<std::mutex> lock(recent_mutex_);
  return {recent_.rbegin(), recent_.rend()};
}

}  // namespace hlshc::svc
