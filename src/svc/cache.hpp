// Content-addressed cache of compiled designs for the synthesis service.
//
// The service's hot path is "compile this design with these options" — and
// identical requests are the common case for a daemon fronting many clients
// (the same design resubmitted, a campaign re-run, a DSE point revisited).
// The cache keys on *content*, not on the request: the key is a 64-bit
// FNV-1a hash of the netlist's canonical text dump (netlist::dump_text, one
// stable line per node) combined with the compile-option fingerprint, so two
// differently-named requests for structurally identical designs share one
// entry, and any structural or option difference misses.
//
// A hit returns a shared_ptr<const Design> whose derived caches (validation,
// topo order, the compiled-engine ExecPlan) were warmed once at insertion —
// after that, any number of worker threads can build engines over the entry
// concurrently without mutating it (the same pre-warm contract the parallel
// fault campaign relies on).
//
// Bounded by construction: a byte budget (sum of per-entry size estimates)
// and an entry budget, enforced by LRU eviction at insert time. The newest
// entry is never evicted by its own insertion — a single oversized design
// simply occupies the whole cache until something newer lands. Hits, misses,
// evictions and current occupancy are exported as svc.cache.* metrics.
//
// Thread-safe. Lookups and insertions take one mutex; the compile itself
// runs outside it, so a slow compile never blocks hits on other keys. Two
// threads racing on the same missing key may both compile; the second
// insert is dropped in favour of the first (counted as its own miss).
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

#include "netlist/ir.hpp"
#include "netlist/passes.hpp"
#include "tools/compile.hpp"

namespace hlshc::svc {

/// 64-bit FNV-1a of `text` as a 16-hex-digit string.
std::string content_hash(std::string_view text);

struct CacheConfig {
  size_t max_bytes = 8u << 20;  ///< sum of entry size estimates
  size_t max_entries = 64;
};

struct CachedCompile {
  std::shared_ptr<const netlist::Design> design;  ///< the compiled design
  netlist::PassStats stats;       ///< pass breakdown of the original compile
  std::string key;                ///< cache key (input hash + options)
  std::string result_hash;        ///< content hash of the compiled design
  bool hit = false;
};

class DesignCache {
 public:
  explicit DesignCache(CacheConfig config = {});

  /// The cache key for (design, options): input content hash + option bits.
  static std::string fingerprint(const netlist::Design& design,
                                 const tools::CompileOptions& options);

  /// Returns the cached compile for (design, options), running
  /// tools::compile and warming the entry's derived caches on a miss.
  /// Propagates whatever the compile throws (nothing is inserted then).
  CachedCompile get_or_compile(const netlist::Design& design,
                               const tools::CompileOptions& options);

  struct Stats {
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t evictions = 0;
    size_t bytes = 0;    ///< current occupancy (size estimates)
    size_t entries = 0;
  };
  Stats stats() const;

  const CacheConfig& config() const { return config_; }

 private:
  struct Entry {
    std::shared_ptr<const netlist::Design> design;
    netlist::PassStats stats;
    std::string result_hash;
    size_t bytes = 0;
    std::list<std::string>::iterator lru;  ///< position in lru_ (back = MRU)
  };

  void evict_over_budget_locked();
  void publish_metrics_locked();

  CacheConfig config_;
  mutable std::mutex mutex_;
  std::unordered_map<std::string, Entry> entries_;
  std::list<std::string> lru_;  ///< front = least recently used
  size_t bytes_ = 0;
  int64_t hits_ = 0, misses_ = 0, evictions_ = 0;
};

}  // namespace hlshc::svc
