// Deadline tokens: cooperative wall-clock budgets for long-running work.
//
// The simulation watchdog (sim::SimTimeout) bounds one run in *cycles*; a
// Deadline generalizes that to wall time across a whole request — compile,
// simulate, synthesize, campaign — so the synthesis service can promise "this
// request either finishes or fails with deadline_exceeded within its budget"
// no matter which inner loop the time went to. The token is checked
// cooperatively at natural loop boundaries (between passes, every few hundred
// simulated cycles, between campaign sites); a check is one steady_clock read,
// cheap enough for those granularities while keeping every loop interruptible.
//
// Tokens are immutable after construction and shared by const pointer, so one
// request's deadline can be handed to the pass pipeline, several engines, and
// a campaign at once without synchronization.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>

#include "base/check.hpp"

namespace hlshc {

/// Structured "wall-clock budget exhausted" outcome, the wall-time analogue
/// of sim::SimTimeout. Service handlers map it to a `deadline_exceeded`
/// response instead of wedging a worker.
class DeadlineExceeded : public Error {
 public:
  DeadlineExceeded(const std::string& context, int64_t budget_ms)
      : Error(context + " [DeadlineExceeded after " +
              std::to_string(budget_ms) + " ms budget]"),
        budget_ms_(budget_ms) {}

  int64_t budget_ms() const { return budget_ms_; }

 private:
  int64_t budget_ms_;
};

class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  /// A deadline `budget_ms` from now. Non-positive budgets are legal and
  /// already expired — tests use them for deterministic expiry.
  static Deadline after_ms(int64_t budget_ms) {
    return Deadline(Clock::now() + std::chrono::milliseconds(budget_ms),
                    budget_ms);
  }

  /// Shared-token convenience: the form every consumer hook stores.
  static std::shared_ptr<const Deadline> shared_after_ms(int64_t budget_ms) {
    return std::make_shared<const Deadline>(after_ms(budget_ms));
  }

  bool expired() const { return Clock::now() >= at_; }

  /// Milliseconds until expiry (negative once past it).
  int64_t remaining_ms() const {
    return std::chrono::duration_cast<std::chrono::milliseconds>(at_ -
                                                                 Clock::now())
        .count();
  }

  /// Throws DeadlineExceeded naming `context` once the deadline passed.
  void check(const std::string& context) const {
    if (expired()) throw DeadlineExceeded(context, budget_ms_);
  }

 private:
  Deadline(Clock::time_point at, int64_t budget_ms)
      : at_(at), budget_ms_(budget_ms) {}

  Clock::time_point at_;
  int64_t budget_ms_ = 0;  ///< original budget, for error messages
};

}  // namespace hlshc
