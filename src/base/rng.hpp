// Deterministic pseudo-random generators.
//
// Ieee1180Rng reproduces the generator mandated by IEEE Std 1180-1990 Annex A
// for producing IDCT conformance input blocks: a 32-bit linear congruential
// generator (x <- x*1103515245 + 12345) whose output is folded into the
// inclusive range [-H, L]. SplitMix64 is a general-purpose engine for
// workload generation where the standard does not dictate one.
#pragma once

#include <cstdint>

namespace hlshc {

/// The exact random-number generator from IEEE Std 1180-1990.
class Ieee1180Rng {
 public:
  explicit Ieee1180Rng(long seed = 1) : randx_(seed) {}

  /// Returns a pseudo-random value in [-H, L] (note the asymmetric bounds,
  /// matching the standard's `rand(L, H)` routine).
  long next(long L, long H) {
    randx_ = (randx_ * 1103515245L + 12345L) & 0xffffffffL;
    long i = randx_ & 0x7ffffffeL;
    double x = static_cast<double>(i) / 2147483647.0;
    x *= static_cast<double>(L + H + 1);
    long j = static_cast<long>(x);
    return j - H;
  }

  void reseed(long seed) { randx_ = seed; }

 private:
  long randx_;
};

/// SplitMix64 — tiny, fast, well-distributed 64-bit engine.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed = 0x9e3779b97f4a7c15ull) : state_(seed) {}

  uint64_t next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  /// Uniform value in [lo, hi] (inclusive).
  int64_t next_in(int64_t lo, int64_t hi) {
    uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    return lo + static_cast<int64_t>(next() % span);
  }

 private:
  uint64_t state_;
};

}  // namespace hlshc
