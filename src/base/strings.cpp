#include "base/strings.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace hlshc {

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> split_lines(std::string_view s) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '\n') {
      size_t end = i;
      if (end > start && s[end - 1] == '\r') --end;
      out.emplace_back(s.substr(start, end - start));
      start = i + 1;
    }
  }
  if (start < s.size()) {
    std::string_view last = s.substr(start);
    if (!last.empty() && last.back() == '\r') last.remove_suffix(1);
    out.emplace_back(last);
  }
  return out;
}

std::string_view trim(std::string_view s) {
  size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool is_blank(std::string_view s) { return trim(s).empty(); }

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string format_fixed(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

std::string format_grouped(long long v) {
  bool neg = v < 0;
  unsigned long long u = neg ? static_cast<unsigned long long>(-(v + 1)) + 1
                             : static_cast<unsigned long long>(v);
  std::string digits = std::to_string(u);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  if (neg) out.push_back('-');
  return std::string(out.rbegin(), out.rend());
}

}  // namespace hlshc
