// Small string utilities shared by the LOC counter, report renderers and
// the HLS frontend. Kept header-only; everything operates on string_view.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace hlshc {

/// Split on a single separator character; keeps empty fields.
std::vector<std::string> split(std::string_view s, char sep);

/// Split into lines, treating both "\n" and "\r\n" as terminators.
std::vector<std::string> split_lines(std::string_view s);

/// Strip leading/trailing ASCII whitespace.
std::string_view trim(std::string_view s);

/// True if `s` consists only of ASCII whitespace (or is empty).
bool is_blank(std::string_view s);

/// Join with a separator.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Fixed-point decimal rendering with `digits` fraction digits ("12.34").
std::string format_fixed(double v, int digits);

/// Thousands-separated integer rendering ("1,182,240").
std::string format_grouped(long long v);

}  // namespace hlshc
