// Error-handling helpers used across the hlshc libraries.
//
// The libraries are deterministic model-building and analysis code, so every
// violated precondition is a programming error in the caller; we throw
// hlshc::Error (a std::runtime_error) with a formatted location-carrying
// message rather than aborting, so tests can assert on failures.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace hlshc {

/// Exception type thrown by all HLSHC_CHECK failures.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

[[noreturn]] inline void raise_check_failure(const char* file, int line,
                                             const char* expr,
                                             const std::string& msg) {
  std::ostringstream os;
  os << file << ':' << line << ": check failed: " << expr;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}

}  // namespace detail

}  // namespace hlshc

/// Precondition / invariant check. `msg` is a streamable expression list,
/// e.g. HLSHC_CHECK(w > 0, "width " << w << " must be positive").
#define HLSHC_CHECK(cond, msg)                                             \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::ostringstream hlshc_check_os_;                                  \
      hlshc_check_os_ << msg;                                              \
      ::hlshc::detail::raise_check_failure(__FILE__, __LINE__, #cond,      \
                                           hlshc_check_os_.str());         \
    }                                                                      \
  } while (false)

/// Unreachable-code marker.
#define HLSHC_UNREACHABLE(msg)                                             \
  ::hlshc::detail::raise_check_failure(__FILE__, __LINE__, "unreachable",  \
                                       (msg))
