#include "base/bitvec.hpp"

#include <ostream>
#include <sstream>

namespace hlshc {

int BitVec::min_signed_width(int64_t v) {
  // Smallest w with -(2^(w-1)) <= v <= 2^(w-1)-1.
  for (int w = 1; w < 64; ++w) {
    int64_t lo = -(int64_t{1} << (w - 1));
    int64_t hi = (int64_t{1} << (w - 1)) - 1;
    if (v >= lo && v <= hi) return w;
  }
  return 64;
}

std::string BitVec::to_binary_string() const {
  std::string s;
  s.reserve(static_cast<size_t>(width_));
  for (int i = width_ - 1; i >= 0; --i) s.push_back(bit(i) ? '1' : '0');
  return s;
}

std::string BitVec::to_string() const {
  std::ostringstream os;
  os << width_ << "'d" << value_;
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const BitVec& v) {
  return os << v.to_string();
}

}  // namespace hlshc
