// BitVec — a fixed-width two's-complement bit vector of 1..64 bits.
//
// All hardware values flowing through the netlist simulator are BitVecs.
// The canonical representation keeps the value sign-extended into an int64_t,
// so `to_int64()` is always the signed interpretation and `to_uint64()` the
// zero-extended one. Every arithmetic result is wrapped (truncated) to the
// result width, matching synthesizable RTL semantics.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "base/check.hpp"

namespace hlshc {

class BitVec {
 public:
  static constexpr int kMaxWidth = 64;

  /// Default: 1-bit zero (convenient for containers).
  BitVec() : width_(1), value_(0) {}

  /// Value is truncated to `width` bits and sign-extended internally.
  BitVec(int width, int64_t value) : width_(width), value_(wrap(width, value)) {
    HLSHC_CHECK(width >= 1 && width <= kMaxWidth,
                "BitVec width " << width << " out of range [1,64]");
  }

  static BitVec zero(int width) { return BitVec(width, 0); }
  static BitVec one(int width) { return BitVec(width, 1); }
  static BitVec all_ones(int width) { return BitVec(width, -1); }
  static BitVec bool_of(bool b) { return BitVec(1, b ? 1 : 0); }

  int width() const { return width_; }

  /// Signed (two's complement) interpretation.
  int64_t to_int64() const { return value_; }

  /// Unsigned (zero-extended) interpretation.
  uint64_t to_uint64() const {
    return static_cast<uint64_t>(value_) & mask(width_);
  }

  bool is_zero() const { return value_ == 0; }
  bool to_bool() const { return value_ != 0; }

  /// Bit i (0 = LSB).
  bool bit(int i) const {
    HLSHC_CHECK(i >= 0 && i < width_, "bit index " << i << " out of width "
                                                   << width_);
    return (static_cast<uint64_t>(value_) >> i) & 1u;
  }

  // ---- arithmetic (all results wrapped to `out_width`) ----

  static BitVec add(const BitVec& a, const BitVec& b, int out_width) {
    return BitVec(out_width, wide_to_i64(i128(a.value_) + i128(b.value_)));
  }
  static BitVec sub(const BitVec& a, const BitVec& b, int out_width) {
    return BitVec(out_width, wide_to_i64(i128(a.value_) - i128(b.value_)));
  }
  static BitVec mul(const BitVec& a, const BitVec& b, int out_width) {
    return BitVec(out_width, wide_to_i64(i128(a.value_) * i128(b.value_)));
  }
  static BitVec neg(const BitVec& a, int out_width) {
    return BitVec(out_width, wide_to_i64(-i128(a.value_)));
  }

  /// Logical shift left by a constant amount.
  static BitVec shl(const BitVec& a, int amount, int out_width) {
    HLSHC_CHECK(amount >= 0 && amount < 2 * kMaxWidth, "bad shl " << amount);
    i128 v = amount >= 127 ? i128(0) : (i128(a.value_) << amount);
    return BitVec(out_width, wide_to_i64(v));
  }

  /// Arithmetic (sign-preserving) shift right by a constant amount.
  static BitVec ashr(const BitVec& a, int amount, int out_width) {
    HLSHC_CHECK(amount >= 0, "bad ashr " << amount);
    int64_t v = amount >= 63 ? (a.value_ < 0 ? -1 : 0) : (a.value_ >> amount);
    return BitVec(out_width, v);
  }

  /// Logical (zero-filling) shift right by a constant amount.
  static BitVec lshr(const BitVec& a, int amount, int out_width) {
    HLSHC_CHECK(amount >= 0, "bad lshr " << amount);
    uint64_t u = a.to_uint64();
    uint64_t v = amount >= 64 ? 0 : (u >> amount);
    return BitVec(out_width, static_cast<int64_t>(v));
  }

  // ---- bitwise ----

  static BitVec band(const BitVec& a, const BitVec& b, int out_width) {
    return BitVec(out_width, a.value_ & b.value_);
  }
  static BitVec bor(const BitVec& a, const BitVec& b, int out_width) {
    return BitVec(out_width, a.value_ | b.value_);
  }
  static BitVec bxor(const BitVec& a, const BitVec& b, int out_width) {
    return BitVec(out_width, a.value_ ^ b.value_);
  }
  static BitVec bnot(const BitVec& a, int out_width) {
    return BitVec(out_width, ~a.value_);
  }

  // ---- comparisons (1-bit results) ----

  static BitVec eq(const BitVec& a, const BitVec& b) {
    // Operands of a well-formed netlist Eq have equal widths; comparing the
    // canonical sign-extended values is then exact.
    return bool_of(a.value_ == b.value_);
  }
  static BitVec ne(const BitVec& a, const BitVec& b) {
    return bool_of(!eq(a, b).to_bool());
  }
  /// Signed less-than.
  static BitVec slt(const BitVec& a, const BitVec& b) {
    return bool_of(a.value_ < b.value_);
  }
  static BitVec sle(const BitVec& a, const BitVec& b) {
    return bool_of(a.value_ <= b.value_);
  }
  static BitVec sgt(const BitVec& a, const BitVec& b) {
    return bool_of(a.value_ > b.value_);
  }
  static BitVec sge(const BitVec& a, const BitVec& b) {
    return bool_of(a.value_ >= b.value_);
  }
  /// Unsigned less-than.
  static BitVec ult(const BitVec& a, const BitVec& b) {
    return bool_of(a.to_uint64() < b.to_uint64());
  }

  // ---- structure ----

  /// Bits [hi:lo], reinterpreted as a (hi-lo+1)-wide value.
  static BitVec slice(const BitVec& a, int hi, int lo) {
    HLSHC_CHECK(0 <= lo && lo <= hi && hi < a.width_,
                "slice [" << hi << ':' << lo << "] of width " << a.width_);
    uint64_t u = a.to_uint64() >> lo;
    return BitVec(hi - lo + 1, static_cast<int64_t>(u));
  }

  /// {hi, lo} — hi becomes the most significant part.
  static BitVec concat(const BitVec& hi, const BitVec& lo) {
    int w = hi.width_ + lo.width_;
    HLSHC_CHECK(w <= kMaxWidth, "concat width " << w << " exceeds 64");
    uint64_t u = (hi.to_uint64() << lo.width_) | lo.to_uint64();
    return BitVec(w, static_cast<int64_t>(u));
  }

  /// Sign-extend (or truncate) to `out_width`.
  static BitVec sext(const BitVec& a, int out_width) {
    return BitVec(out_width, a.value_);
  }

  /// Zero-extend (or truncate) to `out_width`.
  static BitVec zext(const BitVec& a, int out_width) {
    return BitVec(out_width, static_cast<int64_t>(a.to_uint64()));
  }

  static BitVec mux(const BitVec& sel, const BitVec& t, const BitVec& f,
                    int out_width) {
    const BitVec& chosen = sel.to_bool() ? t : f;
    return BitVec(out_width, chosen.value_);
  }

  /// Minimum signed width that can represent `v` in two's complement
  /// (e.g. 0 -> 1, 1 -> 2, -1 -> 1, 7 -> 4, -8 -> 4).
  static int min_signed_width(int64_t v);

  /// Binary string, MSB first, e.g. "4'b0101" style without the prefix.
  std::string to_binary_string() const;
  std::string to_string() const;  ///< "<width>'d<signed value>"

  friend bool operator==(const BitVec& a, const BitVec& b) {
    return a.width_ == b.width_ && a.value_ == b.value_;
  }
  friend bool operator!=(const BitVec& a, const BitVec& b) { return !(a == b); }

 private:
  using i128 = __int128;

  static uint64_t mask(int width) {
    return width >= 64 ? ~uint64_t{0} : ((uint64_t{1} << width) - 1);
  }

  /// Truncate to `width` bits, then sign-extend into int64_t.
  static int64_t wrap(int width, int64_t value) {
    uint64_t u = static_cast<uint64_t>(value) & mask(width);
    if (width < 64 && (u >> (width - 1)) & 1u) u |= ~mask(width);
    return static_cast<int64_t>(u);
  }

  static int64_t wide_to_i64(i128 v) { return static_cast<int64_t>(v); }

  int width_;
  int64_t value_;  ///< canonical: sign-extended to 64 bits
};

std::ostream& operator<<(std::ostream& os, const BitVec& v);

}  // namespace hlshc
