#include "fault/model.hpp"

#include <sstream>

#include "base/rng.hpp"

namespace hlshc::fault {

using netlist::Design;
using netlist::Node;
using netlist::NodeId;
using netlist::Op;

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kSeuReg: return "seu-reg";
    case FaultKind::kSeuMem: return "seu-mem";
    case FaultKind::kStuckAt0: return "stuck-at-0";
    case FaultKind::kStuckAt1: return "stuck-at-1";
    case FaultKind::kTransient: return "transient";
  }
  HLSHC_UNREACHABLE("bad FaultKind");
}

std::string FaultSite::to_string() const {
  std::ostringstream os;
  os << fault_kind_name(kind);
  if (kind == FaultKind::kSeuMem)
    os << " mem " << mem << " [" << addr << ']';
  else
    os << " node " << node;
  os << " bit " << bit;
  if (kind != FaultKind::kStuckAt0 && kind != FaultKind::kStuckAt1)
    os << " @cycle " << cycle;
  return os.str();
}

void validate_site(const Design& d, const FaultSite& site) {
  switch (site.kind) {
    case FaultKind::kSeuReg: {
      const Node& n = d.node(site.node);  // validates the id
      HLSHC_CHECK(n.op == Op::Reg, "fault site " << site.to_string()
                                                 << ": node is "
                                                 << netlist::op_name(n.op)
                                                 << ", not a register");
      HLSHC_CHECK(site.bit >= 0 && site.bit < n.width,
                  "fault site " << site.to_string() << ": bit out of width "
                                << n.width);
      break;
    }
    case FaultKind::kSeuMem: {
      HLSHC_CHECK(site.mem >= 0 &&
                      static_cast<size_t>(site.mem) < d.memories().size(),
                  "fault site " << site.to_string() << ": no such memory in '"
                                << d.name() << '\'');
      const netlist::Memory& m = d.memories()[static_cast<size_t>(site.mem)];
      HLSHC_CHECK(site.addr >= 0 && site.addr < m.depth,
                  "fault site " << site.to_string() << ": address out of depth "
                                << m.depth);
      HLSHC_CHECK(site.bit >= 0 && site.bit < m.width,
                  "fault site " << site.to_string() << ": bit out of width "
                                << m.width);
      break;
    }
    case FaultKind::kStuckAt0:
    case FaultKind::kStuckAt1:
    case FaultKind::kTransient: {
      const Node& n = d.node(site.node);
      HLSHC_CHECK(n.op != Op::MemWrite,
                  "fault site " << site.to_string()
                                << ": MemWrite probe values drive nothing");
      HLSHC_CHECK(site.bit >= 0 && site.bit < n.width,
                  "fault site " << site.to_string() << ": bit out of width "
                                << n.width);
      break;
    }
  }
}

std::vector<FaultSite> enumerate_reg_seu_sites(const Design& d,
                                               uint64_t cycle) {
  std::vector<FaultSite> sites;
  for (size_t i = 0; i < d.node_count(); ++i) {
    const Node& n = d.node(static_cast<NodeId>(i));
    if (n.op != Op::Reg) continue;
    for (int b = 0; b < n.width; ++b)
      sites.push_back({FaultKind::kSeuReg, static_cast<NodeId>(i), -1, 0, b,
                       cycle});
  }
  return sites;
}

std::vector<FaultSite> enumerate_mem_seu_sites(const Design& d,
                                               uint64_t cycle) {
  std::vector<FaultSite> sites;
  for (int m = 0; m < static_cast<int>(d.memories().size()); ++m) {
    const netlist::Memory& mem = d.memories()[static_cast<size_t>(m)];
    for (int a = 0; a < mem.depth; ++a)
      for (int b = 0; b < mem.width; ++b)
        sites.push_back(
            {FaultKind::kSeuMem, netlist::kInvalidNode, m, a, b, cycle});
  }
  return sites;
}

namespace {

// Per-site RNG derivation. Each sampled site draws from its own SplitMix64
// seeded as a pure function of (campaign seed, site index):
//
//     state_i = seed + i * GOLDEN;  rng_i = SplitMix64(scramble(state_i))
//
// (seeding SplitMix64 with `seed + i*GOLDEN` and taking one output is
// exactly the SplitMix64 stream evaluated at offset i, so per-index seeds
// inherit the generator's full avalanche). Deriving functionally instead of
// advancing one shared stream site-by-site means:
//
//   * site i's draws do not depend on how many values earlier sites
//     consumed — inserting, dropping or reordering sites leaves every other
//     site's sample unchanged (the old shared stream shifted all of them);
//   * a parallel campaign can hand any site to any worker in any order and
//     still reproduce the serial sample bit-for-bit, which is what makes
//     campaign results thread-count invariant.
SplitMix64 site_rng(uint64_t seed, uint64_t index) {
  SplitMix64 derive(seed + index * 0x9e3779b97f4a7c15ull);
  return SplitMix64(derive.next());
}

}  // namespace

std::vector<FaultSite> sample_seu_sites(const Design& d, int count,
                                        uint64_t max_cycle, uint64_t seed) {
  // The state-bit universe: one entry per register, one per memory.
  struct RegSpan { NodeId node; int width; };
  struct MemSpan { int mem; int depth; int width; };
  std::vector<RegSpan> regs;
  std::vector<MemSpan> mems;
  uint64_t reg_bits = 0, mem_bits = 0;
  for (size_t i = 0; i < d.node_count(); ++i) {
    const Node& n = d.node(static_cast<NodeId>(i));
    if (n.op != Op::Reg) continue;
    regs.push_back({static_cast<NodeId>(i), n.width});
    reg_bits += static_cast<uint64_t>(n.width);
  }
  for (int m = 0; m < static_cast<int>(d.memories().size()); ++m) {
    const netlist::Memory& mem = d.memories()[static_cast<size_t>(m)];
    mems.push_back({m, mem.depth, mem.width});
    mem_bits += static_cast<uint64_t>(mem.depth) *
                static_cast<uint64_t>(mem.width);
  }
  HLSHC_CHECK(reg_bits + mem_bits > 0, "design '" << d.name()
                                                  << "' has no state to upset");
  std::vector<FaultSite> sites;
  sites.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    SplitMix64 rng = site_rng(seed, static_cast<uint64_t>(i));
    uint64_t pick = rng.next() % (reg_bits + mem_bits);
    FaultSite site;
    site.cycle = max_cycle == 0 ? 0 : rng.next() % (max_cycle + 1);
    if (pick < reg_bits) {
      site.kind = FaultKind::kSeuReg;
      for (const RegSpan& r : regs) {
        if (pick < static_cast<uint64_t>(r.width)) {
          site.node = r.node;
          site.bit = static_cast<int>(pick);
          break;
        }
        pick -= static_cast<uint64_t>(r.width);
      }
    } else {
      pick -= reg_bits;
      site.kind = FaultKind::kSeuMem;
      for (const MemSpan& m : mems) {
        uint64_t span = static_cast<uint64_t>(m.depth) *
                        static_cast<uint64_t>(m.width);
        if (pick < span) {
          site.mem = m.mem;
          site.addr = static_cast<int>(pick / static_cast<uint64_t>(m.width));
          site.bit = static_cast<int>(pick % static_cast<uint64_t>(m.width));
          break;
        }
        pick -= span;
      }
    }
    sites.push_back(site);
  }
  return sites;
}

std::vector<FaultSite> sample_stuck_sites(const Design& d, int count,
                                          uint64_t seed) {
  std::vector<NodeId> candidates;
  for (size_t i = 0; i < d.node_count(); ++i)
    if (d.node(static_cast<NodeId>(i)).op != Op::MemWrite)
      candidates.push_back(static_cast<NodeId>(i));
  HLSHC_CHECK(!candidates.empty(),
              "design '" << d.name() << "' has no stuck-at candidates");
  std::vector<FaultSite> sites;
  sites.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    // Same functional (seed, index) derivation as sample_seu_sites.
    SplitMix64 rng = site_rng(seed, static_cast<uint64_t>(i));
    NodeId node = candidates[rng.next() % candidates.size()];
    FaultSite site;
    site.kind = (rng.next() & 1) ? FaultKind::kStuckAt1 : FaultKind::kStuckAt0;
    site.node = node;
    site.bit = static_cast<int>(
        rng.next() % static_cast<uint64_t>(d.node(node).width));
    sites.push_back(site);
  }
  return sites;
}

}  // namespace hlshc::fault
