#include "fault/harden.hpp"

#include <map>
#include <string>
#include <vector>

#include "base/bitvec.hpp"
#include "netlist/instantiate.hpp"
#include "netlist/passes.hpp"

namespace hlshc::fault {

using netlist::Design;
using netlist::kInvalidNode;
using netlist::Node;
using netlist::NodeId;
using netlist::Op;

Design tmr(const Design& kernel, const TmrOptions& options) {
  HLSHC_CHECK(!kernel.outputs().empty(),
              "tmr: design '" << kernel.name() << "' has no outputs to vote");
  Design out(kernel.name() + "_tmr");
  std::map<std::string, NodeId> ins;
  for (NodeId i : kernel.inputs()) {
    const Node& n = kernel.node(i);
    ins[n.name] = out.input(n.name, n.width);
  }
  auto c0 = netlist::instantiate(out, kernel, ins);
  auto c1 = netlist::instantiate(out, kernel, ins);
  auto c2 = netlist::instantiate(out, kernel, ins);

  NodeId mismatch = kInvalidNode;
  for (NodeId o : kernel.outputs()) {
    const std::string& port = kernel.node(o).name;
    NodeId a = c0.at(port), b = c1.at(port), c = c2.at(port);
    out.output(port, netlist::majority3(out, a, b, c));
    if (options.with_detector) {
      NodeId mm = out.bor(out.ne(a, b), out.ne(a, c), 1);
      mismatch = mismatch == kInvalidNode ? mm : out.bor(mismatch, mm, 1);
    }
  }
  if (options.with_detector) {
    NodeId err = out.reg(1, 0, "tmr_err_r");
    out.set_reg_next(err, out.bor(err, mismatch, 1));
    out.output("tmr_err", err);
  }
  return out;
}

Design parity_protect(const Design& d) {
  HLSHC_CHECK(!d.memories().empty(),
              "parity_protect: design '" << d.name() << "' has no memories");
  Design out(d.name() + "_par");
  for (const netlist::Memory& m : d.memories()) {
    HLSHC_CHECK(m.width < BitVec::kMaxWidth,
                "parity_protect: memory '" << m.name
                                           << "' has no headroom for a parity"
                                              " bit");
    out.add_memory(m.name, m.width + 1, m.depth);
  }

  std::vector<NodeId> remap(d.node_count(), kInvalidNode);
  std::vector<NodeId> checks;

  // Pass 1: copy nodes in id order (which is topological for everything but
  // register next-values). Memory ports are rewritten around the widened
  // word: writes append the parity bit as MSB, reads split it back off and
  // contribute a parity-mismatch check.
  for (size_t i = 0; i < d.node_count(); ++i) {
    NodeId id = static_cast<NodeId>(i);
    const Node& n = d.node(id);
    switch (n.op) {
      case Op::Input:
        remap[i] = out.input(n.name, n.width);
        break;
      case Op::Output:
        remap[i] = out.output(n.name, remap[static_cast<size_t>(n.operands[0])]);
        break;
      case Op::Reg:
        remap[i] = out.reg(n.width, n.imm, n.name);
        break;
      case Op::MemWrite: {
        NodeId data = remap[static_cast<size_t>(n.operands[1])];
        NodeId guarded = out.concat(netlist::xor_reduce(out, data), data);
        remap[i] = out.mem_write(n.mem,
                                 remap[static_cast<size_t>(n.operands[0])],
                                 guarded,
                                 remap[static_cast<size_t>(n.operands[2])]);
        break;
      }
      case Op::MemRead: {
        const int w = d.memories()[static_cast<size_t>(n.mem)].width;
        NodeId raw =
            out.mem_read(n.mem, remap[static_cast<size_t>(n.operands[0])]);
        NodeId value = out.slice(raw, w - 1, 0);
        NodeId stored = out.slice(raw, w, w);
        checks.push_back(
            out.bxor(stored, netlist::xor_reduce(out, value), 1));
        remap[i] = value;
        break;
      }
      default: {
        Node copy = n;
        copy.operands.clear();
        for (NodeId o : n.operands) {
          NodeId m = remap[static_cast<size_t>(o)];
          HLSHC_CHECK(m != kInvalidNode,
                      "parity_protect: forward reference through non-reg node");
          copy.operands.push_back(m);
        }
        NodeId nid = out.constant(copy.width, 0);
        out.mutable_node(nid) = copy;
        remap[i] = nid;
        break;
      }
    }
  }

  // Pass 2: register next-values (may reference later nodes).
  for (size_t i = 0; i < d.node_count(); ++i) {
    const Node& n = d.node(static_cast<NodeId>(i));
    if (n.op != Op::Reg) continue;
    HLSHC_CHECK(!n.operands.empty(),
                "parity_protect: register without next-value in " << d.name());
    NodeId next = remap[static_cast<size_t>(n.operands[0])];
    NodeId en = n.operands.size() > 1
                    ? remap[static_cast<size_t>(n.operands[1])]
                    : kInvalidNode;
    out.set_reg_next(remap[i], next, en);
  }

  NodeId any = out.constant(1, 0);
  for (NodeId c : checks) any = out.bor(any, c, 1);
  NodeId err = out.reg(1, 0, "parity_err_r");
  out.set_reg_next(err, out.bor(err, any, 1));
  out.output("parity_err", err);
  return out;
}

}  // namespace hlshc::fault
