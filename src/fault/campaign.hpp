// Fault-injection campaign runner.
//
// A campaign drives one design's AXI-Stream interface through an IEEE 1180
// input set once per fault site, with exactly one fault armed per run, and
// classifies every run:
//
//   masked   — outputs bit-exact against the golden result;
//   sdc      — silent data corruption: outputs differ (diff vs. the ISO
//              13818-4 C model via core/diff) with no error indication;
//   detected — a sticky "*_err" hardening output asserted, or the AXI
//              protocol monitor recorded a violation (wrong data, but the
//              system knows);
//   hang     — the watchdog fired (sim::SimTimeout): the fault wedged the
//              TVALID/TREADY handshake.
//
// The golden reference is the C model when the fault-free design is
// bit-exact against it (every shipped flow is), and the design's own
// fault-free run otherwise — which lets hand-built test netlists reuse the
// harness. Aggregated counts give the design's vulnerability factor; the
// resilience table lines that up with the paper's A, P and Q axes so
// hardened variants can be compared against Table II.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "base/deadline.hpp"
#include "fault/model.hpp"
#include "idct/block.hpp"
#include "netlist/ir.hpp"
#include "sim/engine.hpp"
#include "synth/synthesize.hpp"
#include "workload/workload.hpp"

namespace hlshc::fault {

enum class Outcome : uint8_t { kMasked, kSdc, kDetected, kHang };

const char* outcome_name(Outcome outcome);

struct CampaignCounts {
  int masked = 0, sdc = 0, detected = 0, hang = 0;

  int total() const { return masked + sdc + detected + hang; }
  /// Fraction of runs ending in the unacceptable outcomes (SDC or hang).
  double vulnerability() const {
    return total() > 0 ? static_cast<double>(sdc + hang) / total() : 0.0;
  }
};

/// Snapshot handed to the progress callback every `progress_every`
/// *completed* sites. Completion count — not the current site index — is
/// the reported quantity, so the line stays meaningful under parallel
/// execution where sites finish out of index order. Under jobs > 1 the
/// `counts` mix is a racy-but-consistent running snapshot (other workers
/// may finish between the count tick and the snapshot).
struct CampaignProgress {
  std::string design_name;
  int completed = 0;  ///< sites finished so far
  int total = 0;      ///< sites in the campaign
  CampaignCounts counts;  ///< running outcome mix
};

struct CampaignOptions {
  int matrices = 2;             ///< IEEE 1180 matrices streamed per run
  long input_seed = 1;          ///< seed for the IEEE 1180 input generator
  uint64_t max_cycles = 20000;  ///< per-run watchdog budget
  bool keep_runs = true;        ///< record the per-run (site, outcome) log
  /// Which simulation engine runs the campaign. The compiled engine is the
  /// default; the differential suite asserts both engines classify every
  /// run identically.
  sim::EngineKind engine = sim::EngineKind::kCompiled;
  /// Progress reporting cadence in completed sites; 0 disables it. The
  /// default keeps small test campaigns (a handful of sites) silent while a
  /// 1000-site bench campaign reports every 250 sites.
  int progress_every = 250;
  /// Invoked at each cadence tick. When unset, a one-line running summary
  /// goes to stderr — long campaigns are no longer silent by default. The
  /// tracer additionally records an instant event per tick when active.
  /// Thread-safe under jobs > 1: invocations are serialized on a mutex and
  /// rate-limited by the atomic completion counter.
  ///
  /// Crash isolation: an exception thrown by the callback can neither abort
  /// nor deadlock the campaign — it is caught, recorded once in
  /// CampaignReport::progress_error, and further callbacks are disarmed for
  /// the rest of the campaign. The outcome counts and run log are unaffected.
  std::function<void(const CampaignProgress&)> on_progress;
  /// Worker count for the site loop. 1 (the default) runs the classic
  /// serial loop; 0 means "all cores" (HLSHC_JOBS / hardware_concurrency);
  /// N > 1 shards sites over a par::Pool, each worker owning one Engine
  /// built from the shared ExecPlan. Results — counts AND the per-run log —
  /// are bitwise identical at every jobs value: each site's classification
  /// is a pure function of (design, site, input set).
  int jobs = 1;
  /// Simulation lanes per instruction-stream sweep. 0 (the default) means
  /// par::default_lanes() (HLSHC_LANES, else 32); 1 forces the classic
  /// scalar per-site loop. With lanes > 1 and the compiled engine, sites
  /// shard into lane-groups and each group runs as one
  /// sim::BatchSimulator sweep — composing with `jobs` (lane-groups shard
  /// over the pool). Classifications — counts AND the per-run log — are
  /// bitwise identical at every {lanes, jobs} combination: each lane
  /// replays the exact scalar per-cycle protocol. The interpreter engine
  /// ignores this and always runs the scalar loop.
  int lanes = 0;
  /// Per-request wall budget (synthesis service): armed on every campaign
  /// engine, so a whole campaign aborts with DeadlineExceeded mid-run
  /// instead of overrunning its budget site by site.
  std::shared_ptr<const Deadline> deadline;
};

struct RunRecord {
  FaultSite site;
  Outcome outcome = Outcome::kMasked;
};

struct CampaignReport {
  std::string design_name;
  bool reference_functional = false;  ///< fault-free run matches the C model
  CampaignCounts counts;
  std::vector<RunRecord> runs;  ///< empty unless options.keep_runs
  /// what() of the first exception a user on_progress callback threw (empty
  /// when none did). A throwing callback is disarmed after this one record;
  /// the campaign itself runs to completion either way.
  std::string progress_error;
};

/// The IDCT campaign stimulus: IEEE 1180 (L,H)=(256,255) spatial blocks
/// pushed through the reference forward DCT, i.e. realistic coefficient
/// matrices. Equivalent to the registered "idct" workload's campaign set.
std::vector<idct::Block> ieee1180_input_set(int matrices, long seed = 1);

/// One run per site; every site is validated before any run starts. The
/// campaign stimulus, reference model and SDC judgement come from `spec`.
CampaignReport run_campaign(const netlist::Design& d,
                            const workload::WorkloadSpec& spec,
                            const std::vector<FaultSite>& sites,
                            const CampaignOptions& options = {});

/// Convenience overload against the registered "idct" workload;
/// bit-identical to the historical hardwired path.
CampaignReport run_campaign(const netlist::Design& d,
                            const std::vector<FaultSite>& sites,
                            const CampaignOptions& options = {});

/// A campaign joined with the paper's Table II axes for the same design:
/// measured periodicity, modelled fmax, normalized area A, P and Q — so a
/// hardened variant reports what its protection costs.
struct DesignResilience {
  CampaignReport campaign;
  double fmax_mhz = 0.0;
  double periodicity_cycles = 0.0;
  double throughput_mops = 0.0;  ///< P
  long area = 0;                 ///< A = N*_LUT + N*_FF (maxdsp=0)
  double quality = 0.0;          ///< Q = P/A
};

/// `ds` is the design's synthesis result (both DSP modes); it is injected so
/// the caller controls the netlist pipeline — benches pass the result of
/// tools::compile_synth_normalized, tests may synthesize directly.
DesignResilience evaluate_resilience(const netlist::Design& d,
                                     const workload::WorkloadSpec& spec,
                                     const std::vector<FaultSite>& sites,
                                     const synth::NormalizedSynth& ds,
                                     const CampaignOptions& options = {});
DesignResilience evaluate_resilience(const netlist::Design& d,
                                     const std::vector<FaultSite>& sites,
                                     const synth::NormalizedSynth& ds,
                                     const CampaignOptions& options = {});

/// The A/P/Q half of evaluate_resilience joined with an already-run
/// campaign — lets the bench time serial and parallel campaigns separately
/// without paying for a third one.
DesignResilience resilience_from_campaign(const netlist::Design& d,
                                          const workload::WorkloadSpec& spec,
                                          CampaignReport campaign,
                                          const synth::NormalizedSynth& ds,
                                          const CampaignOptions& options = {});
DesignResilience resilience_from_campaign(const netlist::Design& d,
                                          CampaignReport campaign,
                                          const synth::NormalizedSynth& ds,
                                          const CampaignOptions& options = {});

/// Fixed-width ASCII table over core::Table: one row per design with the
/// outcome counts, vulnerability factor, and the hardened A/P/Q block.
std::string resilience_table(const std::vector<DesignResilience>& rows);

}  // namespace hlshc::fault
