// Fault models for the resilience campaigns.
//
// A FaultSite names one physical defect in a netlist design:
//
//   * kSeuReg / kSeuMem — a single-event upset: one bit of one register
//     (or one memory word) flips at one clock cycle and stays flipped until
//     overwritten, the classic soft-error model for user flops and BRAM;
//   * kStuckAt0 / kStuckAt1 — a permanent stuck-at on one bit of any
//     netlist node's combinational value (configuration-memory upsets and
//     manufacturing defects look like this at the netlist level);
//   * kTransient — a single-cycle glitch: one bit of a node's value is
//     inverted during exactly one cycle's combinational settle.
//
// Sites are enumerated deterministically (every register/memory bit) or
// sampled with a per-site SplitMix64 derived functionally from
// (seed, site_index) — see model.cpp — so campaigns are reproducible
// run-to-run and invariant to sharding order under parallel execution.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/ir.hpp"

namespace hlshc::fault {

enum class FaultKind : uint8_t {
  kSeuReg,
  kSeuMem,
  kStuckAt0,
  kStuckAt1,
  kTransient,
};

const char* fault_kind_name(FaultKind kind);

struct FaultSite {
  FaultKind kind = FaultKind::kSeuReg;
  netlist::NodeId node = netlist::kInvalidNode;  ///< target node (not kSeuMem)
  int mem = -1;        ///< memory id (kSeuMem only)
  int addr = 0;        ///< word address (kSeuMem only)
  int bit = 0;         ///< bit index within the target value
  uint64_t cycle = 0;  ///< injection cycle (SEU/transient; unused: stuck-at)

  std::string to_string() const;
};

/// Throws hlshc::Error unless `site` names a real location in `d`: the node
/// must exist and be a register for kSeuReg, the memory/address must exist
/// for kSeuMem, the bit must fit the target width, and stuck-at/transient
/// targets must not be MemWrite sinks (whose probe value drives nothing).
void validate_site(const netlist::Design& d, const FaultSite& site);

/// Every register bit of `d` as an SEU site injected at `cycle`.
std::vector<FaultSite> enumerate_reg_seu_sites(const netlist::Design& d,
                                               uint64_t cycle);

/// Every memory bit of `d` as an SEU site injected at `cycle`.
std::vector<FaultSite> enumerate_mem_seu_sites(const netlist::Design& d,
                                               uint64_t cycle);

/// `count` SEU sites drawn uniformly over all register and memory bits of
/// `d`, each with an injection cycle uniform in [0, max_cycle]. Deterministic
/// in `seed`. Throws if `d` holds no sequential state.
std::vector<FaultSite> sample_seu_sites(const netlist::Design& d, int count,
                                        uint64_t max_cycle, uint64_t seed);

/// `count` stuck-at sites (alternating polarity by draw) over the bits of
/// every non-MemWrite node. Deterministic in `seed`.
std::vector<FaultSite> sample_stuck_sites(const netlist::Design& d, int count,
                                          uint64_t seed);

}  // namespace hlshc::fault
