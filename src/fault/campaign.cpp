#include "fault/campaign.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <mutex>

#include "axis/batch.hpp"
#include "axis/testbench.hpp"
#include "base/rng.hpp"
#include "base/strings.hpp"
#include "core/report.hpp"
#include "netlist/exec_plan.hpp"
#include "obs/event_log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "par/pool.hpp"
#include "sim/engine.hpp"
#include "synth/synthesize.hpp"

namespace hlshc::fault {

using netlist::Design;
using netlist::NodeId;

const char* outcome_name(Outcome outcome) {
  switch (outcome) {
    case Outcome::kMasked: return "masked";
    case Outcome::kSdc: return "sdc";
    case Outcome::kDetected: return "detected";
    case Outcome::kHang: return "hang";
  }
  HLSHC_UNREACHABLE("bad Outcome");
}

std::vector<idct::Block> ieee1180_input_set(int matrices, long seed) {
  return workload::campaign_input_set(
      workload::Registry::instance().get("idct"), matrices, seed);
}

namespace {

/// The concrete injector: arms exactly one FaultSite on a simulator.
class SiteInjector : public sim::FaultInjector {
 public:
  explicit SiteInjector(const FaultSite& site) : site_(site) {}

  std::vector<NodeId> combinational_targets() const override {
    switch (site_.kind) {
      case FaultKind::kStuckAt0:
      case FaultKind::kStuckAt1:
      case FaultKind::kTransient:
        return {site_.node};
      default:
        return {};
    }
  }

  BitVec transform(NodeId id, const BitVec& value, uint64_t cycle) override {
    (void)id;
    const int w = value.width();
    const BitVec mask(w, static_cast<int64_t>(uint64_t{1} << site_.bit));
    switch (site_.kind) {
      case FaultKind::kStuckAt0:
        return BitVec::band(value, BitVec::bnot(mask, w), w);
      case FaultKind::kStuckAt1:
        return BitVec::bor(value, mask, w);
      case FaultKind::kTransient:
        return cycle == site_.cycle ? BitVec::bxor(value, mask, w) : value;
      default:
        return value;
    }
  }

  void at_cycle(sim::Engine& sim) override {
    if (fired_ || sim.cycle() != site_.cycle) return;
    if (site_.kind == FaultKind::kSeuReg) {
      sim.flip_reg_bit(site_.node, site_.bit);
      fired_ = true;
    } else if (site_.kind == FaultKind::kSeuMem) {
      sim.flip_mem_bit(site_.mem, site_.addr, site_.bit);
      fired_ = true;
    }
  }

 private:
  FaultSite site_;
  bool fired_ = false;
};

/// Output ports whose assertion counts as fault detection (the sticky flags
/// the hardening transforms add).
std::vector<std::string> detector_ports(const Design& d) {
  std::vector<std::string> ports;
  for (NodeId o : d.outputs()) {
    const std::string& name = d.node(o).name;
    if (name.ends_with("_err")) ports.push_back(name);
  }
  return ports;
}

}  // namespace

namespace {

/// Shared disarm state for a campaign's progress callbacks. A user callback
/// that throws must not take the campaign down with it (under jobs > 1 the
/// exception would abort the pool loop mid-shard): the first throw is
/// recorded here and every later tick skips the callback entirely.
struct ProgressGuard {
  std::atomic<bool> disarmed{false};
  std::mutex mutex;
  std::string error;  ///< what() of the first throw (guarded by mutex)
};

void report_progress(const CampaignOptions& options,
                     const CampaignProgress& progress,
                     ProgressGuard* guard) {
  obs::tracer().instant("campaign.progress", "fault");
  if (options.on_progress) {
    if (guard->disarmed.load(std::memory_order_acquire)) return;
    try {
      options.on_progress(progress);
    } catch (const std::exception& e) {
      guard->disarmed.store(true, std::memory_order_release);
      std::lock_guard<std::mutex> lock(guard->mutex);
      if (guard->error.empty()) guard->error = e.what();
    } catch (...) {
      guard->disarmed.store(true, std::memory_order_release);
      std::lock_guard<std::mutex> lock(guard->mutex);
      if (guard->error.empty()) guard->error = "unknown exception";
    }
    return;
  }
  // The leading figure is the completed-site count, never a site index —
  // under parallel execution indices complete out of order, but "N of M
  // done" stays monotone and meaningful at any worker count.
  std::fprintf(stderr,
               "[campaign %s] %d/%d sites (masked=%d sdc=%d detected=%d "
               "hang=%d)\n",
               progress.design_name.c_str(), progress.completed,
               progress.total, progress.counts.masked, progress.counts.sdc,
               progress.counts.detected, progress.counts.hang);
}

/// Classify one site on `sim`: arm the injector, stream the input set,
/// compare against golden. Pure in (design, site, inputs) — the engine is
/// reset by the testbench each run, so engine reuse and sharding order
/// cannot influence the outcome.
Outcome classify_site(sim::Engine& sim, const workload::WorkloadSpec& spec,
                      const FaultSite& site,
                      const std::vector<idct::Block>& inputs,
                      const std::vector<idct::Block>& golden,
                      const std::vector<std::string>& detectors,
                      const CampaignOptions& options) {
  SiteInjector injector(site);
  sim.set_fault_injector(&injector);
  const int64_t run_start_ns = obs::enabled() ? obs::now_ns() : 0;
  Outcome outcome;
  try {
    axis::StreamTestbench tb(sim);
    auto got = tb.run(inputs, options.max_cycles);
    bool flagged = !tb.monitor().clean();
    for (const std::string& port : detectors)
      flagged = flagged || sim.output(port).to_bool();
    if (flagged)
      outcome = Outcome::kDetected;
    else if (workload::diff_outputs(spec, golden, got) != 0)
      outcome = Outcome::kSdc;
    else
      outcome = Outcome::kMasked;
  } catch (const sim::SimTimeout&) {
    outcome = Outcome::kHang;
  }
  sim.set_fault_injector(nullptr);
  // Per-classification run timing: the timer name carries the outcome, so
  // the metrics export shows e.g. how much wall time hangs cost (each one
  // burns a full watchdog budget).
  if (obs::enabled())
    obs::registry()
        .timer(std::string("fault.outcome.") + outcome_name(outcome))
        ->record_ns(obs::now_ns() - run_start_ns);
  return outcome;
}

/// FaultSite -> the sim-layer lane fault (sim cannot depend on src/fault,
/// so BatchSimulator speaks its own struct).
sim::LaneFault to_lane_fault(const FaultSite& site) {
  sim::LaneFault f;
  switch (site.kind) {
    case FaultKind::kSeuReg: f.kind = sim::LaneFault::Kind::kSeuReg; break;
    case FaultKind::kSeuMem: f.kind = sim::LaneFault::Kind::kSeuMem; break;
    case FaultKind::kStuckAt0: f.kind = sim::LaneFault::Kind::kStuck0; break;
    case FaultKind::kStuckAt1: f.kind = sim::LaneFault::Kind::kStuck1; break;
    case FaultKind::kTransient:
      f.kind = sim::LaneFault::Kind::kTransient;
      break;
  }
  f.node = site.node;
  f.mem = site.mem;
  f.addr = site.addr;
  f.bit = site.bit;
  f.cycle = site.cycle;
  return f;
}

/// One batched lane result -> the scalar outcome, mirroring classify_site
/// line by line: hang, then detection via monitor/sticky ports, then SDC.
/// The per-lane probes were sampled by the harness at the lane's completion
/// cycle — the same read point as the scalar post-run detector reads.
Outcome classify_result(const workload::WorkloadSpec& spec,
                        const std::vector<idct::Block>& golden,
                        const axis::BatchLaneResult& r) {
  if (r.hung) return Outcome::kHang;
  bool flagged = !r.clean;
  for (int64_t probe : r.probes) flagged = flagged || probe != 0;
  if (flagged) return Outcome::kDetected;
  if (workload::diff_outputs(spec, golden, r.matrices) != 0)
    return Outcome::kSdc;
  return Outcome::kMasked;
}

/// Classify one lane-group of sites in a single batched sweep: `count`
/// sites from `sites[from]`, one per lane, every lane streaming the same
/// input set.
void classify_group(sim::BatchSimulator& bsim,
                    const workload::WorkloadSpec& spec,
                    const std::vector<FaultSite>& sites, size_t from,
                    int count, const std::vector<idct::Block>& inputs,
                    const std::vector<idct::Block>& golden,
                    const std::vector<NodeId>& detector_ids,
                    const CampaignOptions& options, Outcome* out) {
  const int lanes = bsim.lanes();
  for (int l = 0; l < lanes; ++l) {
    if (l < count)
      bsim.arm_lane_fault(l, to_lane_fault(sites[from + static_cast<size_t>(l)]));
    else
      bsim.disarm_lane_fault(l);
  }
  std::vector<std::vector<idct::Block>> lane_inputs(
      static_cast<size_t>(lanes));
  for (int l = 0; l < count; ++l) lane_inputs[static_cast<size_t>(l)] = inputs;
  axis::BatchStreamTestbench tb(bsim);
  const auto results = tb.run(lane_inputs, options.max_cycles, detector_ids);
  if (obs::enabled())
    obs::registry()
        .counter("fault.lanes_masked")
        ->add(tb.lanes_masked_early());
  for (int l = 0; l < count; ++l)
    out[l] = classify_result(spec, golden, results[static_cast<size_t>(l)]);
}

void count_outcome(Outcome outcome, CampaignCounts* counts) {
  switch (outcome) {
    case Outcome::kMasked: ++counts->masked; break;
    case Outcome::kSdc: ++counts->sdc; break;
    case Outcome::kDetected: ++counts->detected; break;
    case Outcome::kHang: ++counts->hang; break;
  }
}

}  // namespace

CampaignReport run_campaign(const Design& d,
                            const workload::WorkloadSpec& spec,
                            const std::vector<FaultSite>& sites,
                            const CampaignOptions& options) {
  const int lanes = std::max(
      1, std::min(options.lanes == 0 ? par::default_lanes() : options.lanes,
                  par::kMaxLanes));
  // The batched strategy only exists for the compiled engine (it executes
  // the shared ExecPlan); the interpreter keeps the scalar per-site loop.
  const bool batched = lanes > 1 &&
                       options.engine == sim::EngineKind::kCompiled &&
                       !sites.empty();
  // Work shards over the pool: lane-groups when batched, single sites
  // otherwise — the jobs clamp follows the shard count.
  const int64_t shards =
      batched ? (static_cast<int64_t>(sites.size()) + lanes - 1) / lanes
              : static_cast<int64_t>(sites.size());
  const int jobs = std::max<int64_t>(
      1, std::min<int64_t>(
             options.jobs <= 0 ? par::default_jobs() : options.jobs, shards));
  obs::Span span("fault.campaign", "fault");
  span.arg("design", d.name())
      .arg("workload", spec.name)
      .arg("sites", static_cast<int64_t>(sites.size()))
      .arg("engine", sim::engine_kind_name(options.engine))
      .arg("jobs", static_cast<int64_t>(jobs))
      .arg("lanes", static_cast<int64_t>(batched ? lanes : 1));
  for (const FaultSite& site : sites) validate_site(d, site);

  CampaignReport report;
  report.design_name = d.name();

  const std::vector<idct::Block> inputs = workload::campaign_input_set(
      spec, options.matrices, options.input_seed);
  const std::vector<idct::Block> model =
      workload::reference_outputs(spec, inputs);

  // The fault-free reference run also pre-warms every derived cache on the
  // design — validation, topo order, and (for the compiled engine) the
  // shared ExecPlan — so worker-side engine construction below is a pure
  // read of the design. Capture the plan identity to assert the "compiled
  // exactly once" contract across the whole campaign.
  std::unique_ptr<sim::Engine> sim = sim::make_engine(d, options.engine);
  if (options.deadline) sim->set_deadline(options.deadline);
  const std::shared_ptr<const void> plan_before = d.cached_exec_plan();
  std::vector<idct::Block> reference;
  {
    axis::StreamTestbench tb(*sim);
    reference = tb.run(inputs, options.max_cycles);
  }
  report.reference_functional =
      workload::diff_outputs(spec, model, reference) == 0;
  const std::vector<idct::Block>& golden =
      report.reference_functional ? model : reference;

  const std::vector<std::string> detectors = detector_ports(d);
  const int total = static_cast<int>(sites.size());
  ProgressGuard progress_guard;

  if (batched) {
    // Lane-batched loops: a single worker streams every site through one
    // refilling sweep; multiple workers shard site groups of `lanes` over
    // the pool, each group classified in one BatchSimulator sweep. Either
    // way outcomes land in per-site slots and merge in site order, so
    // counts and the run log are bitwise identical to the scalar loop at
    // every {lanes, jobs} combination. (The per-outcome wall timers
    // recorded by classify_site have no per-site meaning inside a shared
    // sweep and are skipped here.)
    std::vector<NodeId> detector_ids;
    detector_ids.reserve(detectors.size());
    for (const std::string& name : detectors)
      detector_ids.push_back(d.find_output(name));
    std::vector<Outcome> outcomes(sites.size());
    const int64_t n_groups = shards;

    if (jobs == 1) {
      // Single worker: one streaming sweep over every site. Each site is a
      // job; lanes freed by early finishers refill with fresh sites once
      // half the group idles, so a hang straggler burning its whole cycle
      // budget no longer drains the group — the other lanes keep
      // classifying new sites around it. Outcomes land in per-site slots,
      // so counts and the run log stay bitwise identical to the scalar
      // loop; completions (and therefore progress ticks) arrive in lane
      // completion order, with the same once-per-cadence-multiple contract
      // as the scalar loop.
      sim::BatchSimulator bsim(d, lanes);
      if (options.deadline) bsim.set_deadline(options.deadline);
      std::vector<axis::BatchStreamTestbench::Job> batch_jobs(sites.size());
      for (size_t i = 0; i < sites.size(); ++i) {
        batch_jobs[i].inputs = inputs;
        batch_jobs[i].fault = to_lane_fault(sites[i]);
      }
      axis::BatchStreamTestbench tb(bsim);
      int completed = 0;
      tb.run_jobs(
          batch_jobs, options.max_cycles, detector_ids,
          [&](size_t job, const axis::BatchLaneResult& r) {
            outcomes[job] = classify_result(spec, golden, r);
            count_outcome(outcomes[job], &report.counts);
            ++completed;
            if (options.progress_every > 0 &&
                completed % options.progress_every == 0)
              report_progress(options,
                              {d.name(), completed, total, report.counts},
                              &progress_guard);
          });
      if (obs::enabled())
        obs::registry()
            .counter("fault.lane_refills")
            ->add(tb.lane_refills());
    } else {
      par::Pool pool(jobs);
      std::vector<std::unique_ptr<sim::BatchSimulator>> sims(
          static_cast<size_t>(pool.jobs()));
      std::atomic<int> completed{0};
      std::atomic<int> masked{0}, sdc{0}, detected{0}, hang{0};
      std::mutex progress_mutex;
      pool.parallel_for_worker(n_groups, [&](int worker, int64_t g) {
        std::unique_ptr<sim::BatchSimulator>& bsim =
            sims[static_cast<size_t>(worker)];
        if (!bsim) {
          bsim = std::make_unique<sim::BatchSimulator>(d, lanes);
          if (options.deadline) bsim->set_deadline(options.deadline);
        }
        const size_t from = static_cast<size_t>(g) *
                            static_cast<size_t>(lanes);
        const int count = std::min(lanes, total - static_cast<int>(from));
        classify_group(*bsim, spec, sites, from, count, inputs, golden,
                       detector_ids, options, outcomes.data() + from);
        for (int l = 0; l < count; ++l) {
          switch (outcomes[from + static_cast<size_t>(l)]) {
            case Outcome::kMasked: ++masked; break;
            case Outcome::kSdc: ++sdc; break;
            case Outcome::kDetected: ++detected; break;
            case Outcome::kHang: ++hang; break;
          }
        }
        const int done = count + completed.fetch_add(count);
        const int prev = done - count;
        // Same per-site cadence contract as the scalar loop: the atomic
        // counter hands each multiple of the cadence in (prev, done] to
        // exactly one worker, which fires once per multiple.
        if (options.progress_every > 0 &&
            prev / options.progress_every != done / options.progress_every) {
          CampaignCounts running{masked.load(), sdc.load(), detected.load(),
                                 hang.load()};
          std::lock_guard<std::mutex> lock(progress_mutex);
          for (int m = (prev / options.progress_every + 1) *
                       options.progress_every;
               m <= done; m += options.progress_every)
            report_progress(options, {d.name(), m, total, running},
                            &progress_guard);
        }
      });
      for (size_t i = 0; i < sites.size(); ++i)
        count_outcome(outcomes[i], &report.counts);
    }
    if (options.keep_runs) {
      report.runs.reserve(sites.size());
      for (size_t i = 0; i < sites.size(); ++i)
        report.runs.push_back({sites[i], outcomes[i]});
    }
  } else if (jobs == 1) {
    // Serial loop: the tier-1 path, byte-identical to the pre-parallel
    // implementation (every run on the one reference engine, in order).
    if (options.keep_runs) report.runs.reserve(sites.size());
    int completed = 0;
    for (const FaultSite& site : sites) {
      const Outcome outcome =
          classify_site(*sim, spec, site, inputs, golden, detectors, options);
      count_outcome(outcome, &report.counts);
      if (options.keep_runs) report.runs.push_back({site, outcome});
      ++completed;
      if (options.progress_every > 0 &&
          completed % options.progress_every == 0)
        report_progress(options, {d.name(), completed, total, report.counts},
                        &progress_guard);
    }
  } else {
    // Parallel loop: sites shard over the pool in chunks; each worker lazily
    // builds one Engine over the shared (already-compiled) ExecPlan and
    // reuses it for all of its sites. Outcomes land in per-site slots and
    // are merged in site order afterwards, so counts and the run log are
    // bitwise identical to the serial loop at any worker count.
    par::Pool pool(jobs);
    std::vector<std::unique_ptr<sim::Engine>> engines(
        static_cast<size_t>(pool.jobs()));
    std::vector<Outcome> outcomes(sites.size());
    std::atomic<int> completed{0};
    std::atomic<int> masked{0}, sdc{0}, detected{0}, hang{0};
    std::mutex progress_mutex;
    pool.parallel_for_worker(
        static_cast<int64_t>(sites.size()), [&](int worker, int64_t i) {
          std::unique_ptr<sim::Engine>& engine =
              engines[static_cast<size_t>(worker)];
          if (!engine) {
            engine = sim::make_engine(d, options.engine);
            if (options.deadline) engine->set_deadline(options.deadline);
          }
          const Outcome outcome =
              classify_site(*engine, spec, sites[static_cast<size_t>(i)],
                            inputs, golden, detectors, options);
          outcomes[static_cast<size_t>(i)] = outcome;
          switch (outcome) {
            case Outcome::kMasked: ++masked; break;
            case Outcome::kSdc: ++sdc; break;
            case Outcome::kDetected: ++detected; break;
            case Outcome::kHang: ++hang; break;
          }
          const int done = 1 + completed.fetch_add(1);
          if (options.progress_every > 0 &&
              done % options.progress_every == 0) {
            CampaignCounts running{masked.load(), sdc.load(), detected.load(),
                                   hang.load()};
            std::lock_guard<std::mutex> lock(progress_mutex);
            report_progress(options, {d.name(), done, total, running},
                            &progress_guard);
          }
        });
    if (options.keep_runs) report.runs.reserve(sites.size());
    for (size_t i = 0; i < sites.size(); ++i) {
      count_outcome(outcomes[i], &report.counts);
      if (options.keep_runs) report.runs.push_back({sites[i], outcomes[i]});
    }
  }

  report.progress_error = progress_guard.error;
  if (options.engine == sim::EngineKind::kCompiled)
    HLSHC_CHECK(d.cached_exec_plan().get() == plan_before.get(),
                "ExecPlan for '" << d.name()
                                 << "' was recompiled mid-campaign — the "
                                    "design mutated under the workers");
  obs::log_event(obs::EventLevel::kInfo, "fault.campaign",
                 {{"design", d.name()},
                  {"workload", spec.name},
                  {"sites", std::to_string(sites.size())},
                  {"jobs", std::to_string(jobs)},
                  {"lanes", std::to_string(batched ? lanes : 1)},
                  {"masked", std::to_string(report.counts.masked)},
                  {"sdc", std::to_string(report.counts.sdc)},
                  {"detected", std::to_string(report.counts.detected)},
                  {"hang", std::to_string(report.counts.hang)}});
  return report;
}

CampaignReport run_campaign(const Design& d,
                            const std::vector<FaultSite>& sites,
                            const CampaignOptions& options) {
  return run_campaign(d, workload::Registry::instance().get("idct"), sites,
                      options);
}

DesignResilience resilience_from_campaign(const Design& d,
                                          const workload::WorkloadSpec& spec,
                                          CampaignReport campaign,
                                          const synth::NormalizedSynth& ds,
                                          const CampaignOptions& options) {
  DesignResilience r;
  r.campaign = std::move(campaign);

  // Fault-free timing run with enough matrices for a steady-state T_P.
  std::unique_ptr<sim::Engine> sim = sim::make_engine(d, options.engine);
  axis::StreamTestbench tb(*sim);
  const int matrices = std::max(options.matrices, 4);
  tb.run(workload::campaign_input_set(spec, matrices, options.input_seed),
         options.max_cycles * static_cast<uint64_t>(matrices));
  r.periodicity_cycles = tb.timing().periodicity_cycles;

  r.fmax_mhz = ds.normal.fmax_mhz;
  r.area = ds.area();
  r.throughput_mops =
      r.periodicity_cycles > 0 ? r.fmax_mhz / r.periodicity_cycles : 0.0;
  r.quality = r.area > 0
                  ? r.throughput_mops * 1e6 / static_cast<double>(r.area)
                  : 0.0;
  return r;
}

DesignResilience resilience_from_campaign(const Design& d,
                                          CampaignReport campaign,
                                          const synth::NormalizedSynth& ds,
                                          const CampaignOptions& options) {
  return resilience_from_campaign(d, workload::Registry::instance().get("idct"),
                                  std::move(campaign), ds, options);
}

DesignResilience evaluate_resilience(const Design& d,
                                     const workload::WorkloadSpec& spec,
                                     const std::vector<FaultSite>& sites,
                                     const synth::NormalizedSynth& ds,
                                     const CampaignOptions& options) {
  return resilience_from_campaign(d, spec, run_campaign(d, spec, sites, options),
                                  ds, options);
}

DesignResilience evaluate_resilience(const Design& d,
                                     const std::vector<FaultSite>& sites,
                                     const synth::NormalizedSynth& ds,
                                     const CampaignOptions& options) {
  return evaluate_resilience(d, workload::Registry::instance().get("idct"),
                             sites, ds, options);
}

std::string resilience_table(const std::vector<DesignResilience>& rows) {
  core::Table table({"design", "runs", "masked", "sdc", "detected", "hang",
                     "VF", "fmax", "T_P", "P(MOPS)", "A", "Q"});
  for (const DesignResilience& r : rows) {
    const CampaignCounts& c = r.campaign.counts;
    table.add_row({r.campaign.design_name, std::to_string(c.total()),
                   std::to_string(c.masked), std::to_string(c.sdc),
                   std::to_string(c.detected), std::to_string(c.hang),
                   format_fixed(100.0 * c.vulnerability(), 1) + "%",
                   format_fixed(r.fmax_mhz, 1),
                   format_fixed(r.periodicity_cycles, 1),
                   format_fixed(r.throughput_mops, 2),
                   format_grouped(r.area), format_fixed(r.quality, 1)});
  }
  return table.render();
}

}  // namespace hlshc::fault
