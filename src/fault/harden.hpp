// Hardening transforms: TMR and memory parity.
//
// Both transforms operate on finished netlist designs, so any flow's output
// (Verilog-style RTL, Chisel eDSL, BSV schedule, XLS pipeline, HLS result)
// can be hardened after the fact and re-costed with synth::cost_model — the
// hardened A, P and Q land next to the paper's Table II numbers.
//
//   * tmr() triplicates the whole kernel via netlist::instantiate and
//     majority-votes every output port bitwise, masking any single fault
//     confined to one copy. Port-compatible with the original design; the
//     optional detector adds a sticky 1-bit "tmr_err" output that latches
//     any copy disagreement.
//   * parity_protect() widens every memory by one even-parity bit, checks
//     parity on every combinational read, and exposes a sticky 1-bit
//     "parity_err" output — single memory bit-flips become detected (not
//     silent) the first time the corrupted word is read.
#pragma once

#include "netlist/ir.hpp"

namespace hlshc::fault {

struct TmrOptions {
  /// Add the sticky "tmr_err" disagreement output. Off by default: a plain
  /// voter masks silently, which is what the masking guarantees assert.
  bool with_detector = false;
};

/// Triple-modular redundancy around `kernel`. Throws if the kernel has no
/// outputs to vote.
netlist::Design tmr(const netlist::Design& kernel,
                    const TmrOptions& options = {});

/// Even-parity protection on every memory of `d`. Throws if `d` has no
/// memories or a memory word is already at the 64-bit value-width cap.
netlist::Design parity_protect(const netlist::Design& d);

}  // namespace hlshc::fault
