// Unified machine-readable run telemetry: the RunReport schema.
//
// Every bench driver (and the fault campaign runner) used to hand-roll its
// JSON with string concatenation, which meant unstable key order, no schema
// marker, and no shared place to attach metrics. RunReport fixes the
// envelope once:
//
//   {
//     "schema": "hlshc.run_report",
//     "schema_version": 1,
//     "tool": "bench_sim_throughput",
//     "params":  { ... run configuration, insertion order ... },
//     "results": { ... tool-specific payload, insertion order ... },
//     "metrics": { ... registry snapshot, sorted ... }   // when captured
//   }
//
// Tools own params/results layout; the envelope and key order are fixed
// here so `diff BENCH_sim.json` across PRs shows value changes, not
// serialization noise. Bump schema_version on breaking envelope changes.
#pragma once

#include <string>

#include "obs/json.hpp"

namespace hlshc::obs {

class RunReport {
 public:
  static constexpr int kSchemaVersion = 1;

  explicit RunReport(std::string tool);

  /// Run configuration (cycle counts, seeds, site counts). Insertion order
  /// is preserved in the output.
  Json& params() { return params_; }
  /// Tool-specific results payload.
  Json& results() { return results_; }

  /// Snapshot the process-wide metrics registry into the report. Call after
  /// the measured work; repeat calls overwrite.
  void capture_metrics();

  Json to_json() const;
  /// Pretty-printed (2-space) dump to `path`; throws hlshc::Error on I/O
  /// failure.
  void write_file(const std::string& path) const;

 private:
  std::string tool_;
  Json params_ = Json::object();
  Json results_ = Json::object();
  Json metrics_;  // null until capture_metrics()
};

}  // namespace hlshc::obs
