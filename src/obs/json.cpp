#include "obs/json.hpp"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace hlshc::obs {

Json Json::boolean(bool b) {
  Json j;
  j.kind_ = Kind::kBool;
  j.bool_ = b;
  return j;
}

Json Json::number(double v) {
  Json j;
  j.kind_ = Kind::kNumber;
  j.num_ = std::isfinite(v) ? v : 0.0;
  return j;
}

Json Json::number(int64_t v) {
  Json j;
  j.kind_ = Kind::kNumber;
  j.int_number_ = true;
  j.int_ = v;
  j.num_ = static_cast<double>(v);
  return j;
}

Json Json::number(uint64_t v) {
  // Counters fit int64 in practice; saturate rather than wrap negative.
  return number(v > static_cast<uint64_t>(INT64_MAX)
                    ? INT64_MAX
                    : static_cast<int64_t>(v));
}

Json Json::string(std::string s) {
  Json j;
  j.kind_ = Kind::kString;
  j.str_ = std::move(s);
  return j;
}

Json Json::array() {
  Json j;
  j.kind_ = Kind::kArray;
  return j;
}

Json Json::object() {
  Json j;
  j.kind_ = Kind::kObject;
  return j;
}

bool Json::as_bool() const {
  HLSHC_CHECK(kind_ == Kind::kBool, "JSON value is not a bool");
  return bool_;
}

double Json::as_number() const {
  HLSHC_CHECK(kind_ == Kind::kNumber, "JSON value is not a number");
  return num_;
}

int64_t Json::as_int() const {
  HLSHC_CHECK(kind_ == Kind::kNumber, "JSON value is not a number");
  return int_number_ ? int_ : static_cast<int64_t>(num_);
}

const std::string& Json::as_string() const {
  HLSHC_CHECK(kind_ == Kind::kString, "JSON value is not a string");
  return str_;
}

Json& Json::set(std::string key, Json value) {
  HLSHC_CHECK(kind_ == Kind::kObject, "set() on non-object JSON value");
  for (auto& [k, v] : obj_) {
    if (k == key) {
      v = std::move(value);
      return *this;
    }
  }
  obj_.emplace_back(std::move(key), std::move(value));
  return *this;
}

const Json* Json::find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : obj_)
    if (k == key) return &v;
  return nullptr;
}

const Json& Json::at(std::string_view key) const {
  const Json* v = find(key);
  HLSHC_CHECK(v != nullptr, "missing JSON key '" << key << '\'');
  return *v;
}

const std::vector<std::pair<std::string, Json>>& Json::items() const {
  HLSHC_CHECK(kind_ == Kind::kObject, "items() on non-object JSON value");
  return obj_;
}

Json& Json::push(Json value) {
  HLSHC_CHECK(kind_ == Kind::kArray, "push() on non-array JSON value");
  arr_.push_back(std::move(value));
  return *this;
}

size_t Json::size() const {
  return kind_ == Kind::kArray ? arr_.size() : obj_.size();
}

const Json& Json::operator[](size_t index) const {
  HLSHC_CHECK(kind_ == Kind::kArray, "operator[] on non-array JSON value");
  HLSHC_CHECK(index < arr_.size(),
              "JSON index " << index << " out of " << arr_.size());
  return arr_[index];
}

// ---- serialization ---------------------------------------------------------

namespace {

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (char raw : s) {
    unsigned char c = static_cast<unsigned char>(raw);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += raw;
        }
    }
  }
  out += '"';
}

void append_newline_indent(std::string& out, int indent, int depth) {
  if (indent < 0) return;
  out += '\n';
  out.append(static_cast<size_t>(indent * depth), ' ');
}

}  // namespace

void Json::dump_to(std::string& out, int indent, int depth) const {
  switch (kind_) {
    case Kind::kNull: out += "null"; break;
    case Kind::kBool: out += bool_ ? "true" : "false"; break;
    case Kind::kNumber: {
      char buf[40];
      if (int_number_) {
        std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(int_));
      } else {
        // %.17g round-trips doubles; trim to a friendlier form when exact.
        std::snprintf(buf, sizeof buf, "%.17g", num_);
        double parsed = 0;
        char probe[40];
        std::snprintf(probe, sizeof probe, "%.6g", num_);
        std::sscanf(probe, "%lf", &parsed);
        if (parsed == num_) std::snprintf(buf, sizeof buf, "%.6g", num_);
      }
      out += buf;
      break;
    }
    case Kind::kString: append_escaped(out, str_); break;
    case Kind::kArray: {
      if (arr_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      for (size_t i = 0; i < arr_.size(); ++i) {
        if (i) out += ',';
        append_newline_indent(out, indent, depth + 1);
        arr_[i].dump_to(out, indent, depth + 1);
      }
      append_newline_indent(out, indent, depth);
      out += ']';
      break;
    }
    case Kind::kObject: {
      if (obj_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      bool first = true;
      for (const auto& [k, v] : obj_) {
        if (!first) out += ',';
        first = false;
        append_newline_indent(out, indent, depth + 1);
        append_escaped(out, k);
        out += indent < 0 ? ":" : ": ";
        v.dump_to(out, indent, depth + 1);
      }
      append_newline_indent(out, indent, depth);
      out += '}';
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  if (indent >= 0) out += '\n';
  return out;
}

// ---- parsing ---------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json parse_document() {
    Json v = parse_value();
    skip_ws();
    HLSHC_CHECK(pos_ == text_.size(),
                "trailing JSON content at offset " << pos_);
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) {
    throw Error("JSON parse error at offset " + std::to_string(pos_) + ": " +
                what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "', got '" +
                          text_[pos_] + '\'');
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  std::string parse_string_body() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else
              fail("bad \\u escape digit");
          }
          // Basic-multilingual-plane only; encode as UTF-8.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("bad escape character");
      }
    }
  }

  Json parse_number() {
    size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    bool integral = true;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        integral = false;
        ++pos_;
      } else {
        break;
      }
    }
    std::string token(text_.substr(start, pos_ - start));
    if (token.empty() || token == "-") fail("malformed number");
    if (integral) {
      errno = 0;
      char* end = nullptr;
      long long v = std::strtoll(token.c_str(), &end, 10);
      if (errno == 0 && end && *end == '\0')
        return Json::number(static_cast<int64_t>(v));
    }
    double d = 0;
    if (std::sscanf(token.c_str(), "%lf", &d) != 1) fail("malformed number");
    return Json::number(d);
  }

  Json parse_value() {
    char c = peek();
    switch (c) {
      case '{': {
        ++pos_;
        Json obj = Json::object();
        if (peek() == '}') {
          ++pos_;
          return obj;
        }
        while (true) {
          skip_ws();
          std::string key = parse_string_body();
          expect(':');
          obj.set(std::move(key), parse_value());
          char d = peek();
          if (d == ',') {
            ++pos_;
            continue;
          }
          if (d == '}') {
            ++pos_;
            return obj;
          }
          fail("expected ',' or '}' in object");
        }
      }
      case '[': {
        ++pos_;
        Json arr = Json::array();
        if (peek() == ']') {
          ++pos_;
          return arr;
        }
        while (true) {
          arr.push(parse_value());
          char d = peek();
          if (d == ',') {
            ++pos_;
            continue;
          }
          if (d == ']') {
            ++pos_;
            return arr;
          }
          fail("expected ',' or ']' in array");
        }
      }
      case '"': return Json::string(parse_string_body());
      case 't':
        if (consume_literal("true")) return Json::boolean(true);
        fail("bad literal");
      case 'f':
        if (consume_literal("false")) return Json::boolean(false);
        fail("bad literal");
      case 'n':
        if (consume_literal("null")) return Json();
        fail("bad literal");
      default: return parse_number();
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Json Json::parse(std::string_view text) {
  return Parser(text).parse_document();
}

}  // namespace hlshc::obs
