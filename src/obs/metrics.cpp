#include "obs/metrics.hpp"

#include <chrono>

namespace hlshc::obs {

namespace {
bool g_enabled = false;
}  // namespace

bool enabled() { return g_enabled; }
void set_enabled(bool on) { g_enabled = on; }

int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  counters_.clear();
  gauges_.clear();
  timers_.clear();
}

Json Registry::to_json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Json counters = Json::object();
  for (const auto& [name, c] : counters_)
    counters.set(name, Json::number(c.value()));

  Json gauges = Json::object();
  for (const auto& [name, g] : gauges_) gauges.set(name, Json::number(g.value()));

  Json timers = Json::object();
  for (const auto& [name, t] : timers_) {
    Json entry = Json::object();
    entry.set("total_ns", Json::number(t.total_ns()));
    entry.set("count", Json::number(t.count()));
    timers.set(name, std::move(entry));
  }

  Json out = Json::object();
  out.set("counters", std::move(counters));
  out.set("gauges", std::move(gauges));
  out.set("timers", std::move(timers));
  return out;
}

Registry& registry() {
  static Registry instance;
  return instance;
}

}  // namespace hlshc::obs
