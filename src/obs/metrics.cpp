#include "obs/metrics.hpp"

#include <algorithm>
#include <chrono>

namespace hlshc::obs {

namespace {
bool g_enabled = false;
}  // namespace

bool enabled() { return g_enabled; }
void set_enabled(bool on) { g_enabled = on; }

int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

int64_t Histogram::percentile(double p) const {
  const int64_t n = count();
  if (n <= 0) return 0;
  // Clamp into [0, 1]; the negated comparison routes NaN to 0 instead of
  // feeding it into the int cast below (which would be UB).
  if (!(p >= 0.0)) p = 0.0;
  if (p > 1.0) p = 1.0;
  // Rank of the requested sample, 1-based; walk buckets to find it and
  // report that bucket's inclusive upper bound (2^bucket - 1).
  const int64_t rank = std::max<int64_t>(
      1, static_cast<int64_t>(p * static_cast<double>(n) + 0.5));
  int64_t seen = 0;
  for (size_t b = 0; b < buckets_.size(); ++b) {
    seen += buckets_[b].load(std::memory_order_relaxed);
    if (seen >= rank)
      return b >= 63 ? max()
                     : static_cast<int64_t>((uint64_t{1} << b) - 1);
  }
  return max();
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  counters_.clear();
  gauges_.clear();
  timers_.clear();
  histograms_.clear();
}

Json Registry::to_json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Json counters = Json::object();
  for (const auto& [name, c] : counters_)
    counters.set(name, Json::number(c.value()));

  Json gauges = Json::object();
  for (const auto& [name, g] : gauges_) gauges.set(name, Json::number(g.value()));

  Json timers = Json::object();
  for (const auto& [name, t] : timers_) {
    Json entry = Json::object();
    entry.set("total_ns", Json::number(t.total_ns()));
    entry.set("count", Json::number(t.count()));
    timers.set(name, std::move(entry));
  }

  Json out = Json::object();
  out.set("counters", std::move(counters));
  out.set("gauges", std::move(gauges));
  out.set("timers", std::move(timers));
  if (!histograms_.empty()) {
    Json histograms = Json::object();
    for (const auto& [name, h] : histograms_) {
      Json entry = Json::object();
      entry.set("count", Json::number(h.count()));
      entry.set("sum", Json::number(h.sum()));
      entry.set("p50", Json::number(h.percentile(0.5)));
      entry.set("p99", Json::number(h.percentile(0.99)));
      entry.set("max", Json::number(h.max()));
      histograms.set(name, std::move(entry));
    }
    out.set("histograms", std::move(histograms));
  }
  return out;
}

std::string labeled(std::string_view name, std::string_view key,
                    std::string_view value) {
  std::string out;
  out.reserve(name.size() + key.size() + value.size() + 3);
  out.append(name).push_back('{');
  out.append(key).push_back('=');
  out.append(value).push_back('}');
  return out;
}

std::string labeled(std::string_view name, std::string_view key1,
                    std::string_view value1, std::string_view key2,
                    std::string_view value2) {
  std::string out;
  out.reserve(name.size() + key1.size() + value1.size() + key2.size() +
              value2.size() + 4);
  out.append(name).push_back('{');
  out.append(key1).push_back('=');
  out.append(value1).push_back(',');
  out.append(key2).push_back('=');
  out.append(value2).push_back('}');
  return out;
}

Registry& registry() {
  static Registry instance;
  return instance;
}

}  // namespace hlshc::obs
