#include "obs/trace.hpp"

#include <fstream>

namespace hlshc::obs {

int64_t current_tid() {
  static std::atomic<int64_t> next{1};
  thread_local int64_t tid = next.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

void Tracer::start() {
  if (!kTraceCompiled) return;
  std::lock_guard<std::mutex> lock(mutex_);
  events_.clear();
  epoch_ns_ = now_ns();
  active_.store(true, std::memory_order_relaxed);
}

void Tracer::stop() { active_.store(false, std::memory_order_relaxed); }

int64_t Tracer::now_us() const { return (now_ns() - epoch_ns_) / 1000; }

void Tracer::record(TraceEvent event) {
  if (!active()) return;
  event.tid = current_tid();
  std::lock_guard<std::mutex> lock(mutex_);
  events_.push_back(std::move(event));
}

void Tracer::instant(std::string name, std::string category) {
  if (!active()) return;
  TraceEvent e;
  e.name = std::move(name);
  e.category = std::move(category);
  e.start_us = now_us();
  e.tid = current_tid();
  e.instant = true;
  std::lock_guard<std::mutex> lock(mutex_);
  events_.push_back(std::move(e));
}

size_t Tracer::event_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.clear();
}

Json Tracer::to_json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Json list = Json::array();
  for (const TraceEvent& e : events_) {
    Json entry = Json::object();
    entry.set("name", Json::string(e.name));
    entry.set("cat", Json::string(e.category.empty() ? "hlshc" : e.category));
    entry.set("ph", Json::string(e.instant ? "i" : "X"));
    entry.set("ts", Json::number(e.start_us));
    if (!e.instant) entry.set("dur", Json::number(e.duration_us));
    if (e.instant) entry.set("s", Json::string("p"));  // process-scoped mark
    entry.set("pid", Json::number(int64_t{1}));
    entry.set("tid", Json::number(e.tid));
    if (!e.args.empty()) {
      Json args = Json::object();
      for (const auto& [k, v] : e.args) args.set(k, Json::string(v));
      entry.set("args", std::move(args));
    }
    list.push(std::move(entry));
  }
  Json out = Json::object();
  out.set("traceEvents", std::move(list));
  out.set("displayTimeUnit", Json::string("ms"));
  return out;
}

void Tracer::write_file(const std::string& path) const {
  std::ofstream out(path);
  HLSHC_CHECK(out.good(), "cannot open trace output file '" << path << '\'');
  out << to_json().dump(2);
  out.close();
  HLSHC_CHECK(out.good(), "failed writing trace output file '" << path << '\'');
}

Tracer& tracer() {
  static Tracer instance;
  return instance;
}

}  // namespace hlshc::obs
