#include "obs/trace.hpp"

#include <fstream>

namespace hlshc::obs {

int64_t current_tid() {
  static std::atomic<int64_t> next{1};
  thread_local int64_t tid = next.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

namespace {

thread_local TraceContext t_current_trace;

/// splitmix64 finalizer: spreads the sequential mint counters over the id
/// space so ids from different runs/sessions don't collide visually, while
/// staying a pure function of the counter (no wall clock, no global RNG).
uint64_t mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

TraceContext new_trace() {
  static std::atomic<uint64_t> next{1};
  TraceContext ctx;
  ctx.trace_id = mix64(next.fetch_add(1, std::memory_order_relaxed));
  if (ctx.trace_id == 0) ctx.trace_id = 1;  // 0 is reserved for "no trace"
  return ctx;
}

TraceContext child_of(const TraceContext& ctx) {
  if (!ctx.valid()) return {};
  static std::atomic<uint64_t> next_span{1};
  TraceContext child;
  child.trace_id = ctx.trace_id;
  child.span_id = next_span.fetch_add(1, std::memory_order_relaxed);
  child.parent_span_id = ctx.span_id;
  return child;
}

const TraceContext& current_trace() { return t_current_trace; }

void set_current_trace(const TraceContext& ctx) { t_current_trace = ctx; }

std::string trace_id_hex(uint64_t id) {
  static const char* kHex = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<size_t>(i)] = kHex[id & 0xF];
    id >>= 4;
  }
  return out;
}

uint64_t parse_trace_id(std::string_view hex) {
  if (hex.empty() || hex.size() > 16) return 0;
  uint64_t id = 0;
  for (const char c : hex) {
    uint64_t digit;
    if (c >= '0' && c <= '9') digit = static_cast<uint64_t>(c - '0');
    else if (c >= 'a' && c <= 'f') digit = static_cast<uint64_t>(c - 'a' + 10);
    else if (c >= 'A' && c <= 'F') digit = static_cast<uint64_t>(c - 'A' + 10);
    else return 0;
    id = (id << 4) | digit;
  }
  return id;
}

TraceScope::TraceScope(const TraceContext& ctx) : prev_(t_current_trace) {
  t_current_trace = ctx;
}

TraceScope::~TraceScope() { t_current_trace = prev_; }

void Tracer::start() {
  if (!kTraceCompiled) return;
  std::lock_guard<std::mutex> lock(mutex_);
  events_.clear();
  epoch_ns_ = now_ns();
  active_.store(true, std::memory_order_relaxed);
}

void Tracer::stop() { active_.store(false, std::memory_order_relaxed); }

int64_t Tracer::now_us() const { return (now_ns() - epoch_ns_) / 1000; }

void Tracer::record(TraceEvent event) {
  if (!active()) return;
  event.tid = current_tid();
  std::lock_guard<std::mutex> lock(mutex_);
  events_.push_back(std::move(event));
}

void Tracer::instant(std::string name, std::string category) {
  if (!active()) return;
  TraceEvent e;
  e.name = std::move(name);
  e.category = std::move(category);
  e.start_us = now_us();
  e.tid = current_tid();
  e.instant = true;
  const TraceContext& ctx = current_trace();
  e.trace_id = ctx.trace_id;
  e.span_id = ctx.span_id;
  e.parent_span_id = ctx.parent_span_id;
  std::lock_guard<std::mutex> lock(mutex_);
  events_.push_back(std::move(e));
}

size_t Tracer::event_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.clear();
}

Json Tracer::to_json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Json list = Json::array();
  for (const TraceEvent& e : events_) {
    Json entry = Json::object();
    entry.set("name", Json::string(e.name));
    entry.set("cat", Json::string(e.category.empty() ? "hlshc" : e.category));
    entry.set("ph", Json::string(e.instant ? "i" : "X"));
    entry.set("ts", Json::number(e.start_us));
    if (!e.instant) entry.set("dur", Json::number(e.duration_us));
    if (e.instant) entry.set("s", Json::string("p"));  // process-scoped mark
    entry.set("pid", Json::number(int64_t{1}));
    entry.set("tid", Json::number(e.tid));
    if (!e.args.empty() || e.trace_id != 0) {
      Json args = Json::object();
      // Correlation ids lead, so the viewer's detail pane shows the request
      // identity first on every span of a traced request.
      if (e.trace_id != 0) {
        args.set("trace_id", Json::string(trace_id_hex(e.trace_id)));
        args.set("span_id", Json::string(trace_id_hex(e.span_id)));
        args.set("parent_span_id",
                 Json::string(trace_id_hex(e.parent_span_id)));
      }
      for (const auto& [k, v] : e.args) args.set(k, Json::string(v));
      entry.set("args", std::move(args));
    }
    list.push(std::move(entry));
  }
  Json out = Json::object();
  out.set("traceEvents", std::move(list));
  out.set("displayTimeUnit", Json::string("ms"));
  return out;
}

void Tracer::write_file(const std::string& path) const {
  std::ofstream out(path);
  HLSHC_CHECK(out.good(), "cannot open trace output file '" << path << '\'');
  out << to_json().dump(2);
  out.close();
  HLSHC_CHECK(out.good(), "failed writing trace output file '" << path << '\'');
}

Tracer& tracer() {
  static Tracer instance;
  return instance;
}

}  // namespace hlshc::obs
