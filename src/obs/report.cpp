#include "obs/report.hpp"

#include <fstream>
#include <utility>

#include "obs/metrics.hpp"

namespace hlshc::obs {

RunReport::RunReport(std::string tool) : tool_(std::move(tool)) {}

void RunReport::capture_metrics() { metrics_ = registry().to_json(); }

Json RunReport::to_json() const {
  Json out = Json::object();
  out.set("schema", Json::string("hlshc.run_report"));
  out.set("schema_version", Json::number(int64_t{kSchemaVersion}));
  out.set("tool", Json::string(tool_));
  out.set("params", params_);
  out.set("results", results_);
  if (!metrics_.is_null()) out.set("metrics", metrics_);
  return out;
}

void RunReport::write_file(const std::string& path) const {
  std::ofstream out(path);
  HLSHC_CHECK(out.good(), "cannot open report output file '" << path << '\'');
  out << to_json().dump(2);
  out.close();
  HLSHC_CHECK(out.good(),
              "failed writing report output file '" << path << '\'');
}

}  // namespace hlshc::obs
