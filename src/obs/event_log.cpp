#include "obs/event_log.hpp"

#include <algorithm>

namespace hlshc::obs {

const char* event_level_name(EventLevel level) {
  switch (level) {
    case EventLevel::kDebug: return "debug";
    case EventLevel::kInfo: return "info";
    case EventLevel::kWarn: return "warn";
    case EventLevel::kError: return "error";
  }
  HLSHC_UNREACHABLE("bad EventLevel");
}

EventLog::EventLog(size_t capacity) { ring_.resize(std::max<size_t>(capacity, 1)); }

void EventLog::set_capacity(size_t capacity) {
  std::lock_guard<std::mutex> lock(mutex_);
  ring_.assign(std::max<size_t>(capacity, 1), Event{});
  start_ = 0;
  count_ = 0;
}

size_t EventLog::capacity() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ring_.size();
}

void EventLog::emit(Event event) {
  if (event.ts_ns == 0) event.ts_ns = now_ns();
  if (event.tid == 0) event.tid = current_tid();
  if (event.trace_id == 0) {
    const TraceContext& ctx = current_trace();
    event.trace_id = ctx.trace_id;
    event.span_id = ctx.span_id;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (sink_) {
    *sink_ << event_json(event).dump() << '\n';
    sink_->flush();  // a crashing daemon must not owe the log its tail
  }
  if (count_ < ring_.size()) {
    ring_[(start_ + count_) % ring_.size()] = std::move(event);
    ++count_;
  } else {
    ring_[start_] = std::move(event);
    start_ = (start_ + 1) % ring_.size();
    ++dropped_;
  }
  ++total_;
}

void EventLog::emit(EventLevel level, std::string name,
                    std::vector<std::pair<std::string, std::string>> kv) {
  Event e;
  e.level = level;
  e.name = std::move(name);
  e.kv = std::move(kv);
  emit(std::move(e));
}

size_t EventLog::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return count_;
}

int64_t EventLog::total() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_;
}

int64_t EventLog::dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

std::vector<Event> EventLog::snapshot(size_t limit) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const size_t n = (limit == 0 || limit > count_) ? count_ : limit;
  std::vector<Event> out;
  out.reserve(n);
  for (size_t i = count_ - n; i < count_; ++i)
    out.push_back(ring_[(start_ + i) % ring_.size()]);
  return out;
}

std::vector<Event> EventLog::for_trace(uint64_t trace_id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Event> out;
  for (size_t i = 0; i < count_; ++i) {
    const Event& e = ring_[(start_ + i) % ring_.size()];
    if (e.trace_id == trace_id) out.push_back(e);
  }
  return out;
}

void EventLog::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  start_ = 0;
  count_ = 0;
}

void EventLog::open_sink(const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto sink = std::make_unique<std::ofstream>(path);
  HLSHC_CHECK(sink->good(),
              "cannot open event-log sink '" << path << '\'');
  sink_ = std::move(sink);
  sink_path_ = path;
}

void EventLog::close_sink() {
  std::lock_guard<std::mutex> lock(mutex_);
  sink_.reset();
  sink_path_.clear();
}

bool EventLog::sink_open() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return sink_ != nullptr;
}

Json EventLog::event_json(const Event& event) {
  Json out = Json::object();
  out.set("ts_ns", Json::number(event.ts_ns));
  out.set("level", Json::string(event_level_name(event.level)));
  if (event.trace_id != 0) {
    out.set("trace_id", Json::string(trace_id_hex(event.trace_id)));
    out.set("span_id", Json::string(trace_id_hex(event.span_id)));
  }
  out.set("tid", Json::number(event.tid));
  out.set("name", Json::string(event.name));
  for (const auto& [k, v] : event.kv) out.set(k, Json::string(v));
  return out;
}

EventLog& event_log() {
  static EventLog instance;
  return instance;
}

}  // namespace hlshc::obs
