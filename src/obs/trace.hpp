// Structured event tracer emitting Chrome trace_event JSON.
//
// The tracer records *phases* — engine compile, testbench runs, synth
// passes, HLS scheduling, fault-campaign sweeps — as complete ("X") events
// with microsecond timestamps. The output file loads directly into
// chrome://tracing or ui.perfetto.dev, which is how the hotspot work in the
// perf PRs is meant to be read: open the trace, find the widest span, go
// optimize that.
//
// Overhead contract: spans are recorded only while the tracer is *active*
// (between start() and stop()); an inactive Span constructor is a bool test
// against a constant-false and nothing else. Builds configured with
// -DHLSHC_TRACE=OFF compile the tracer to stubs (kTraceCompiled == false),
// so release binaries carry no tracing branches at all — the `trace` CMake
// option from the build README.
//
// Per-*cycle* events are deliberately not traced: at millions of cycles per
// second even a disabled branch adds up, and a flame chart of 2^20
// identical 200ns slices is useless. Cycle-grain data goes through the
// metrics registry and ActivityProfile instead.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/json.hpp"
#include "obs/metrics.hpp"

#ifndef HLSHC_TRACE
#define HLSHC_TRACE 1
#endif

namespace hlshc::obs {

/// True when the build carries tracer code (CMake option HLSHC_TRACE).
inline constexpr bool kTraceCompiled = HLSHC_TRACE != 0;

/// Stable small integer id for the calling thread, used as the Chrome trace
/// "tid": the main thread is lane 1, every further thread (pool workers) the
/// next integer in first-use order — so a parallel campaign renders as one
/// swimlane per worker and the schedule is visible at a glance.
int64_t current_tid();

// ---- request-scoped trace contexts ----------------------------------------
//
// A TraceContext is the correlation token of one *request* (a service
// request, or one CLI/bench invocation): a process-unique trace_id plus the
// current span lineage within that trace. It is propagated explicitly —
// minted at admission, installed on the handling thread with a TraceScope,
// adopted by par::Pool workers for the duration of a parallel loop — so one
// request yields ONE correlated span tree even when its work shards across
// threads. Spans and EventLog events stamp the ids of the context current
// on their thread; a zero trace_id means "no request in flight" and nothing
// is stamped.
//
// Propagation is independent of the Tracer being active: reading the
// thread-local context is one TLS load, so the service always correlates
// its event log and metrics, while full span trees appear only while the
// tracer collects.

/// (trace_id, span_id, parent_span_id). span_id == 0 marks "trace open, no
/// enclosing span yet" — the state between admission and the root span.
struct TraceContext {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_span_id = 0;
  bool valid() const { return trace_id != 0; }
};

/// Mints a fresh root context: a process-unique nonzero trace_id, no span.
TraceContext new_trace();

/// A child context inside the same trace: fresh span_id, parent = the
/// context's span_id. Invalid contexts beget invalid contexts.
TraceContext child_of(const TraceContext& ctx);

/// The context current on this thread (invalid when none was installed).
const TraceContext& current_trace();

/// Replaces the thread's current context. Prefer TraceScope/Span, which
/// restore the previous context; this is their (and the pool's) substrate.
void set_current_trace(const TraceContext& ctx);

/// Fixed-width lowercase-hex rendering of a trace/span id ("00c0ffee…"),
/// the wire format used in responses, event logs, and trace args.
std::string trace_id_hex(uint64_t id);
/// Inverse of trace_id_hex; returns 0 on malformed input.
uint64_t parse_trace_id(std::string_view hex);

/// RAII: installs `ctx` as the thread's current context, restoring the
/// previous one on destruction. Cheap enough to use unconditionally.
class TraceScope {
 public:
  explicit TraceScope(const TraceContext& ctx);
  ~TraceScope();
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  TraceContext prev_;
};

/// One completed span or instant marker, in trace_event terms.
struct TraceEvent {
  std::string name;
  std::string category;
  int64_t start_us = 0;
  int64_t duration_us = 0;        ///< 0 + instant==true → "i" event
  int64_t tid = 1;                ///< trace lane (current_tid() of recorder)
  bool instant = false;
  uint64_t trace_id = 0;          ///< request correlation; 0 = untraced
  uint64_t span_id = 0;
  uint64_t parent_span_id = 0;
  std::vector<std::pair<std::string, std::string>> args;
};

/// Collects events in memory; to_json()/write_file() emit the standard
/// {"traceEvents": [...]} envelope. One process-wide instance (tracer()).
///
/// Thread-safety: record()/instant() serialize on an internal mutex so pool
/// workers can emit spans concurrently; start()/stop() must not race active
/// recording (benches start the tracer before spawning workers).
class Tracer {
 public:
  /// Begin collecting. Clears any previously recorded events and anchors
  /// t=0 at the call, so span timestamps are small and stable-ish.
  void start();
  /// Stop collecting; already-recorded events are kept for export.
  void stop();
  bool active() const {
    return kTraceCompiled && active_.load(std::memory_order_relaxed);
  }

  /// Timestamp for record(); microseconds since start().
  int64_t now_us() const;

  void record(TraceEvent event);
  /// Zero-duration marker ("i" event) — campaign progress ticks etc.
  void instant(std::string name, std::string category);

  size_t event_count() const;
  void clear();

  /// Chrome trace_event JSON object format: {"traceEvents": [...],
  /// "displayTimeUnit": "ms"}. Every event carries name/cat/ph/ts/pid/tid.
  Json to_json() const;
  /// Dump to_json() to a file; throws hlshc::Error on I/O failure.
  void write_file(const std::string& path) const;

 private:
  std::atomic<bool> active_{false};
  int64_t epoch_ns_ = 0;
  mutable std::mutex mutex_;  ///< guards events_
  std::vector<TraceEvent> events_;
};

Tracer& tracer();

/// RAII span: stamps the start on construction, records a complete event on
/// end() or destruction. When the tracer is inactive (or tracing compiled
/// out) every method is a no-op. arg() attaches string key/values shown in
/// the trace viewer's detail pane.
///
/// When a request context is current on the thread, a live span becomes a
/// node of that request's span tree: it mints a child span id, stamps
/// (trace_id, span_id, parent_span_id) on its event, and installs itself as
/// the current context until end() — so nested spans (and spans on pool
/// workers that adopted the context) chain into one tree per trace_id.
class Span {
 public:
  Span(std::string name, std::string category) {
    if (!tracer().active()) return;
    live_ = true;
    event_.name = std::move(name);
    event_.category = std::move(category);
    event_.start_us = tracer().now_us();
    const TraceContext& current = current_trace();
    if (current.valid()) {
      const TraceContext ctx = child_of(current);
      event_.trace_id = ctx.trace_id;
      event_.span_id = ctx.span_id;
      event_.parent_span_id = ctx.parent_span_id;
      prev_ = current;
      scoped_ = true;
      set_current_trace(ctx);
    }
  }
  ~Span() { end(); }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  Span& arg(std::string key, std::string value) {
    if (live_) event_.args.emplace_back(std::move(key), std::move(value));
    return *this;
  }
  Span& arg(std::string key, int64_t value) {
    return arg(std::move(key), std::to_string(value));
  }

  /// Close the span early (for sequential phases sharing one scope).
  void end() {
    if (!live_) return;
    live_ = false;
    if (scoped_) {
      scoped_ = false;
      set_current_trace(prev_);
    }
    event_.duration_us = tracer().now_us() - event_.start_us;
    tracer().record(std::move(event_));
  }

 private:
  bool live_ = false;
  bool scoped_ = false;
  TraceContext prev_;
  TraceEvent event_;
};

}  // namespace hlshc::obs
