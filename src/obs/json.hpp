// Minimal JSON document model shared by the observability layer.
//
// One value type covers everything the instrumentation layer emits and
// consumes: the metrics-registry export, Chrome trace_event files, and the
// unified RunReport schema the bench drivers write. Two properties matter
// and are guaranteed here:
//
//   * object keys keep **insertion order** on dump(), so a report written
//     through the same code path serializes byte-identically run to run
//     (stable key order makes BENCH_*.json diffs meaningful across PRs);
//   * parse() is a full round-trip partner for dump(): tests parse every
//     trace and report back and assert on structure, so a malformed emitter
//     cannot ship silently.
//
// Numbers remember whether they were integers, so counters print as "42",
// not "42.000000". This is a deliberately small JSON — no comments, no
// NaN/Inf (dumped as 0), UTF-8 passed through verbatim.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "base/check.hpp"

namespace hlshc::obs {

class Json {
 public:
  enum class Kind : uint8_t { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Default value is null.
  Json() = default;

  static Json boolean(bool b);
  static Json number(double v);
  static Json number(int64_t v);
  static Json number(uint64_t v);
  static Json number(int v) { return number(static_cast<int64_t>(v)); }
  static Json string(std::string s);
  static Json array();
  static Json object();

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }

  // ---- scalar access (checked) -------------------------------------------

  bool as_bool() const;
  double as_number() const;
  int64_t as_int() const;
  const std::string& as_string() const;

  // ---- object access ------------------------------------------------------

  /// Insert or overwrite a key; insertion order is the dump order. Returns
  /// *this so report-building code can chain set() calls.
  Json& set(std::string key, Json value);
  /// Member lookup; nullptr when absent (or not an object).
  const Json* find(std::string_view key) const;
  /// Checked member lookup.
  const Json& at(std::string_view key) const;
  const std::vector<std::pair<std::string, Json>>& items() const;

  // ---- array access -------------------------------------------------------

  Json& push(Json value);  ///< returns *this for chaining
  size_t size() const;     ///< elements (array) or members (object)
  const Json& operator[](size_t index) const;

  // ---- serialization ------------------------------------------------------

  /// Compact when indent < 0; pretty-printed with `indent` spaces per level
  /// otherwise. Key order is insertion order — stable by construction.
  std::string dump(int indent = -1) const;

  /// Recursive-descent parser; throws hlshc::Error with position info on
  /// malformed input. Accepts exactly what dump() produces plus arbitrary
  /// standard JSON.
  static Json parse(std::string_view text);

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  bool int_number_ = false;
  double num_ = 0.0;
  int64_t int_ = 0;
  std::string str_;
  std::vector<Json> arr_;
  std::vector<std::pair<std::string, Json>> obj_;
};

}  // namespace hlshc::obs
