// Process-wide metrics registry: named counters, gauges, and timers.
//
// The registry is the "always cheap" half of the observability layer. Hot
// paths guard every update behind `obs::enabled()` — a single inline bool
// load — so a release run with instrumentation off pays one predicted
// branch per call site and touches no shared state. When enabled, updates
// are relaxed atomic stores into slots owned by the registry; name lookup
// takes a mutex (call sites resolve a metric once and cache the pointer),
// while updates through a resolved pointer are lock-free. This is what lets
// the parallel execution layer (src/par) record per-worker metrics and the
// fault campaigns time runs from worker threads.
//
// Naming convention: dotted lowercase paths, subsystem first —
// "sim.eval_ns", "axis.s.beats", "fault.campaign.sites". The JSON export
// sorts keys so BENCH_*.json metric blocks diff cleanly across PRs.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

#include "obs/json.hpp"

namespace hlshc::obs {

/// Master switch for metrics + activity accounting. Off by default; benches
/// and tests that want telemetry flip it explicitly. Tracing has its own
/// switch (the Tracer is active only between start()/stop()).
bool enabled();
void set_enabled(bool on);

/// Monotonic wall-clock in nanoseconds (steady_clock based).
int64_t now_ns();

class Registry;

/// Monotonically increasing count (events, beats, toggles). Updates are
/// relaxed atomics: safe from any thread, with no ordering implied between
/// metrics (reports snapshot after the workers join).
class Counter {
 public:
  void add(int64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class Registry;
  std::atomic<int64_t> value_{0};
};

/// Last-write-wins sample (queue depth, slot count, ratio).
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class Registry;
  std::atomic<double> value_{0.0};
};

/// Accumulated duration + invocation count. Use ScopedTimer to feed it.
class Timer {
 public:
  void record_ns(int64_t ns) {
    total_ns_.fetch_add(ns, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
  }
  int64_t total_ns() const {
    return total_ns_.load(std::memory_order_relaxed);
  }
  int64_t count() const { return count_.load(std::memory_order_relaxed); }

 private:
  friend class Registry;
  std::atomic<int64_t> total_ns_{0};
  std::atomic<int64_t> count_{0};
};

/// Latency distribution: a lock-free log2-bucketed histogram. A Timer gives
/// totals and counts; the service layer also needs tail percentiles (p50 /
/// p99 request latency for RunReports and the overload bench), which a
/// total can't recover. record(v) increments the bucket indexed by
/// bit_width(v) — 64 buckets cover the full int64 range at 2x resolution,
/// plenty for "is p99 5ms or 500ms" questions. percentile() reports the
/// upper bound of the bucket containing the requested rank, so estimates
/// are conservative (never under-report a tail). All updates are relaxed
/// atomics; snapshots taken after workers quiesce are exact.
class Histogram {
 public:
  void record(int64_t v) {
    if (v < 0) v = 0;
    const int bucket =
        64 - std::countl_zero(static_cast<uint64_t>(v));  // bit_width
    buckets_[static_cast<size_t>(bucket)].fetch_add(
        1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    // Racy max: two writers may both read a stale max, but a CAS loop keeps
    // the final value correct.
    int64_t prev = max_.load(std::memory_order_relaxed);
    while (v > prev &&
           !max_.compare_exchange_weak(prev, v, std::memory_order_relaxed)) {
    }
  }

  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  int64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  int64_t max() const { return max_.load(std::memory_order_relaxed); }

  /// Upper bound of the bucket holding the `p`-quantile sample. Edge cases
  /// are defined, not UB: an empty histogram returns 0 for every p, and p
  /// is clamped into [0, 1] (p <= 0 → the smallest recorded sample's bucket
  /// bound, p >= 1 → the largest; NaN behaves as 0). p=0.5 → p50,
  /// p=0.99 → p99. The top bucket reports max() exactly instead of a
  /// 2^63-scale bound.
  int64_t percentile(double p) const;

 private:
  friend class Registry;
  std::array<std::atomic<int64_t>, 65> buckets_{};  ///< index = bit_width(v)
  std::atomic<int64_t> count_{0};
  std::atomic<int64_t> sum_{0};
  std::atomic<int64_t> max_{0};
};

/// RAII timer: measures from construction to destruction and records into
/// the named Timer — but only when obs::enabled() was true at construction,
/// so a disabled run never reads the clock.
class ScopedTimer {
 public:
  explicit ScopedTimer(Timer* timer)
      : timer_(timer), start_ns_(timer ? now_ns() : 0) {}
  ~ScopedTimer() {
    if (timer_) timer_->record_ns(now_ns() - start_ns_);
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Timer* timer_;
  int64_t start_ns_;
};

/// Owns every named metric. Lookups return stable pointers (std::map nodes
/// don't move), so call sites resolve a metric once and cache the pointer.
/// Lookup/reset/export serialize on a mutex; updates through a resolved
/// pointer stay lock-free, so concurrent workers may record while another
/// thread registers new names.
class Registry {
 public:
  Counter* counter(const std::string& name) {
    std::lock_guard<std::mutex> lock(mutex_);
    return &counters_[name];
  }
  Gauge* gauge(const std::string& name) {
    std::lock_guard<std::mutex> lock(mutex_);
    return &gauges_[name];
  }
  Timer* timer(const std::string& name) {
    std::lock_guard<std::mutex> lock(mutex_);
    return &timers_[name];
  }
  Histogram* histogram(const std::string& name) {
    std::lock_guard<std::mutex> lock(mutex_);
    return &histograms_[name];
  }

  /// Drop every metric (tests; bench sections). Must not race live updates:
  /// callers quiesce workers first (map nodes die here).
  void reset();

  /// {"counters": {...}, "gauges": {...}, "timers": {name: {total_ns,
  /// count}}, "histograms": {name: {count, sum, p50, p99, max}}} with keys
  /// sorted (std::map iteration order). Zero-valued metrics are included —
  /// absence means "never registered". The histograms key is omitted while
  /// no histogram is registered, keeping pre-existing report bytes stable.
  Json to_json() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Timer> timers_;
  std::map<std::string, Histogram> histograms_;
};

/// The process-wide registry used by all instrumented subsystems.
Registry& registry();

/// Canonical labeled-metric name: `name{key=value}` — one string key per
/// (name, label) pair, so labeled series live in the same registry (and the
/// same sorted JSON export) as plain metrics while staying distinct per
/// label value. Use for low-cardinality dimensions only (method, workload,
/// outcome): every distinct value is a live registry entry.
std::string labeled(std::string_view name, std::string_view key,
                    std::string_view value);
/// Two-label variant: `name{k1=v1,k2=v2}`.
std::string labeled(std::string_view name, std::string_view key1,
                    std::string_view value1, std::string_view key2,
                    std::string_view value2);

/// Convenience: bump a named counter iff metrics are enabled. For hot loops
/// prefer resolving the Counter* once and guarding manually.
inline void count(const std::string& name, int64_t n = 1) {
  if (enabled()) registry().counter(name)->add(n);
}

/// Convenience: time a scope iff metrics are enabled. Usage:
///   auto t = obs::timed("synth.map_ns");
inline ScopedTimer timed(const std::string& name) {
  return ScopedTimer(enabled() ? registry().timer(name) : nullptr);
}

}  // namespace hlshc::obs
