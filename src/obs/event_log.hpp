// obs::EventLog — a bounded, structured event log with request correlation.
//
// The tracer answers "where did the time go" with a flame chart; the event
// log answers "what happened to request X" with a queryable record: every
// event carries a level, a monotonic timestamp, the (trace_id, span_id) of
// the request context current on the emitting thread, a dotted name, and
// free-form key/value details. The service's `trace` protocol method serves
// events straight out of this log so clients can self-diagnose shed /
// deadline / cache behaviour in-band, and the hlshc_serve --event-log flag
// streams every event as one JSON object per line (JSON-lines) for offline
// analysis.
//
// Bounded by construction: a fixed-capacity ring buffer under one mutex.
// When full, the oldest event is overwritten and counted in dropped() —
// memory use cannot grow with uptime, which is the property a long-running
// daemon actually needs from its log.
//
// Overhead contract: emission through log_event() is gated on
// obs::enabled() — one predicted branch when telemetry is off, exactly like
// the metrics registry. EventLog::emit() itself is unconditional (tests and
// sinks use it directly); hot per-cycle paths must never emit events at all
// (that is what metrics are for).
#pragma once

#include <cstdint>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace hlshc::obs {

enum class EventLevel : uint8_t { kDebug, kInfo, kWarn, kError };

/// The wire name: "debug", "info", "warn", "error".
const char* event_level_name(EventLevel level);

/// One structured event. kv pairs are flattened into the JSON object, so
/// keys must not collide with the envelope fields (ts_ns, level, trace_id,
/// span_id, tid, name).
struct Event {
  EventLevel level = EventLevel::kInfo;
  int64_t ts_ns = 0;       ///< obs::now_ns() at emit
  uint64_t trace_id = 0;   ///< request correlation; 0 = no request context
  uint64_t span_id = 0;
  int64_t tid = 0;         ///< obs::current_tid() of the emitting thread
  std::string name;        ///< dotted, subsystem-first ("svc.request")
  std::vector<std::pair<std::string, std::string>> kv;
};

class EventLog {
 public:
  static constexpr size_t kDefaultCapacity = 1024;

  explicit EventLog(size_t capacity = kDefaultCapacity);

  /// Resizes the ring; existing events are dropped (tests, daemon startup).
  void set_capacity(size_t capacity);
  size_t capacity() const;

  /// Records `event`, stamping ts_ns / tid / trace ids from the calling
  /// thread when they are zero. Overwrites the oldest event when full, and
  /// mirrors the event to the JSON-lines sink when one is open.
  void emit(Event event);
  /// Convenience: level + name + kv pairs.
  void emit(EventLevel level, std::string name,
            std::vector<std::pair<std::string, std::string>> kv = {});

  size_t size() const;        ///< events currently held
  int64_t total() const;      ///< events ever emitted
  int64_t dropped() const;    ///< events overwritten by ring wraparound

  /// Oldest-first copy of the newest `limit` events (0 = all held).
  std::vector<Event> snapshot(size_t limit = 0) const;
  /// Oldest-first copy of every held event stamped with `trace_id`.
  std::vector<Event> for_trace(uint64_t trace_id) const;

  /// Drops every held event (counters keep their totals).
  void clear();

  /// Opens a JSON-lines sink: every subsequent emit appends one line to
  /// `path` (truncating an existing file). Throws hlshc::Error on failure.
  void open_sink(const std::string& path);
  void close_sink();
  bool sink_open() const;

  /// {"ts_ns":…, "level":"info", "trace_id":"00c0…", "span_id":"…",
  ///  "tid":…, "name":"svc.request", …kv…} — trace ids omitted when 0.
  static Json event_json(const Event& event);

 private:
  mutable std::mutex mutex_;
  std::vector<Event> ring_;     ///< ring_[ (start_ + i) % capacity ]
  size_t start_ = 0;            ///< index of the oldest held event
  size_t count_ = 0;            ///< events currently held
  int64_t total_ = 0;
  int64_t dropped_ = 0;
  std::string sink_path_;
  std::unique_ptr<std::ofstream> sink_;
};

/// The process-wide event log used by all instrumented subsystems.
EventLog& event_log();

/// Convenience: emit into the process-wide log iff obs::enabled() — the
/// standard call for instrumentation sites.
inline void log_event(EventLevel level, std::string name,
                      std::vector<std::pair<std::string, std::string>> kv = {}) {
  if (enabled()) event_log().emit(level, std::move(name), std::move(kv));
}

}  // namespace hlshc::obs
