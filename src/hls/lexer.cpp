#include "hls/lexer.hpp"

#include <cctype>
#include <map>

#include "base/check.hpp"
#include "base/strings.hpp"

namespace hlshc::hls {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

const char* token_name(Tok t) {
  switch (t) {
    case Tok::kEnd: return "<eof>";
    case Tok::kIdent: return "identifier";
    case Tok::kNumber: return "number";
    case Tok::kKwInt: return "int";
    case Tok::kKwShort: return "short";
    case Tok::kKwVoid: return "void";
    case Tok::kKwStatic: return "static";
    case Tok::kKwFor: return "for";
    case Tok::kKwIf: return "if";
    case Tok::kKwElse: return "else";
    case Tok::kKwReturn: return "return";
    case Tok::kLParen: return "(";
    case Tok::kRParen: return ")";
    case Tok::kLBrace: return "{";
    case Tok::kRBrace: return "}";
    case Tok::kLBracket: return "[";
    case Tok::kRBracket: return "]";
    case Tok::kComma: return ",";
    case Tok::kSemi: return ";";
    case Tok::kAssign: return "=";
    case Tok::kPlus: return "+";
    case Tok::kMinus: return "-";
    case Tok::kStar: return "*";
    case Tok::kShl: return "<<";
    case Tok::kShr: return ">>";
    case Tok::kAmp: return "&";
    case Tok::kPipe: return "|";
    case Tok::kCaret: return "^";
    case Tok::kLt: return "<";
    case Tok::kGt: return ">";
    case Tok::kLe: return "<=";
    case Tok::kGe: return ">=";
    case Tok::kEqEq: return "==";
    case Tok::kNe: return "!=";
    case Tok::kNot: return "!";
    case Tok::kQuestion: return "?";
    case Tok::kColon: return ":";
    case Tok::kPlusPlus: return "++";
  }
  return "?";
}

std::vector<Token> lex(const std::string& source) {
  std::vector<Token> out;
  std::map<std::string, int64_t> defines;
  size_t i = 0;
  int line = 1;
  const size_t n = source.size();

  auto peek = [&](size_t k = 0) -> char {
    return i + k < n ? source[i + k] : '\0';
  };

  while (i < n) {
    char c = source[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Comments.
    if (c == '/' && peek(1) == '/') {
      while (i < n && source[i] != '\n') ++i;
      continue;
    }
    if (c == '/' && peek(1) == '*') {
      i += 2;
      while (i + 1 < n && !(source[i] == '*' && source[i + 1] == '/')) {
        if (source[i] == '\n') ++line;
        ++i;
      }
      HLSHC_CHECK(i + 1 < n, "unterminated comment at line " << line);
      i += 2;
      continue;
    }
    // Preprocessor: only "#define NAME VALUE" (value may be an integer or
    // a previously defined macro).
    if (c == '#') {
      size_t eol = source.find('\n', i);
      std::string directive =
          source.substr(i, eol == std::string::npos ? n - i : eol - i);
      auto parts = split(std::string(trim(directive)), ' ');
      std::vector<std::string> words;
      for (auto& p : parts)
        if (!is_blank(p)) words.push_back(std::string(trim(p)));
      HLSHC_CHECK(words.size() >= 3 && words[0] == "#define",
                  "unsupported preprocessor directive at line "
                      << line << ": " << directive);
      int64_t value = 0;
      const std::string& v = words[2];
      if (defines.count(v)) {
        value = defines[v];
      } else {
        try {
          value = std::stoll(v, nullptr, 0);
        } catch (...) {
          HLSHC_CHECK(false, "#define value '" << v
                                               << "' is not an integer (line "
                                               << line << ')');
        }
      }
      defines[words[1]] = value;
      i = eol == std::string::npos ? n : eol;
      continue;
    }
    // Numbers.
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = i;
      while (i < n && std::isalnum(static_cast<unsigned char>(source[i])))
        ++i;
      std::string text = source.substr(start, i - start);
      Token t;
      t.kind = Tok::kNumber;
      t.text = text;
      t.line = line;
      t.value = std::stoll(text, nullptr, 0);
      out.push_back(std::move(t));
      continue;
    }
    // Identifiers / keywords / macro uses.
    if (ident_start(c)) {
      size_t start = i;
      while (i < n && ident_char(source[i])) ++i;
      std::string text = source.substr(start, i - start);
      Token t;
      t.line = line;
      if (auto it = defines.find(text); it != defines.end()) {
        t.kind = Tok::kNumber;
        t.value = it->second;
        t.text = text;
      } else if (text == "int") {
        t.kind = Tok::kKwInt;
      } else if (text == "short") {
        t.kind = Tok::kKwShort;
      } else if (text == "void") {
        t.kind = Tok::kKwVoid;
      } else if (text == "static") {
        t.kind = Tok::kKwStatic;
      } else if (text == "for") {
        t.kind = Tok::kKwFor;
      } else if (text == "if") {
        t.kind = Tok::kKwIf;
      } else if (text == "else") {
        t.kind = Tok::kKwElse;
      } else if (text == "return") {
        t.kind = Tok::kKwReturn;
      } else {
        t.kind = Tok::kIdent;
        t.text = text;
      }
      out.push_back(std::move(t));
      continue;
    }
    // Operators and punctuation.
    auto push = [&](Tok k, int len) {
      Token t;
      t.kind = k;
      t.line = line;
      out.push_back(std::move(t));
      i += static_cast<size_t>(len);
    };
    switch (c) {
      case '(': push(Tok::kLParen, 1); break;
      case ')': push(Tok::kRParen, 1); break;
      case '{': push(Tok::kLBrace, 1); break;
      case '}': push(Tok::kRBrace, 1); break;
      case '[': push(Tok::kLBracket, 1); break;
      case ']': push(Tok::kRBracket, 1); break;
      case ',': push(Tok::kComma, 1); break;
      case ';': push(Tok::kSemi, 1); break;
      case '?': push(Tok::kQuestion, 1); break;
      case ':': push(Tok::kColon, 1); break;
      case '+':
        peek(1) == '+' ? push(Tok::kPlusPlus, 2) : push(Tok::kPlus, 1);
        break;
      case '-': push(Tok::kMinus, 1); break;
      case '*': push(Tok::kStar, 1); break;
      case '&': push(Tok::kAmp, 1); break;
      case '|': push(Tok::kPipe, 1); break;
      case '^': push(Tok::kCaret, 1); break;
      case '=':
        peek(1) == '=' ? push(Tok::kEqEq, 2) : push(Tok::kAssign, 1);
        break;
      case '!':
        peek(1) == '=' ? push(Tok::kNe, 2) : push(Tok::kNot, 1);
        break;
      case '<':
        if (peek(1) == '<') push(Tok::kShl, 2);
        else if (peek(1) == '=') push(Tok::kLe, 2);
        else push(Tok::kLt, 1);
        break;
      case '>':
        if (peek(1) == '>') push(Tok::kShr, 2);
        else if (peek(1) == '=') push(Tok::kGe, 2);
        else push(Tok::kGt, 1);
        break;
      default:
        HLSHC_CHECK(false, "unexpected character '" << c << "' at line "
                                                    << line);
    }
  }
  Token end;
  end.kind = Tok::kEnd;
  end.line = line;
  out.push_back(end);
  return out;
}

}  // namespace hlshc::hls
