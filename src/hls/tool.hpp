// Tool personalities: Bambu and Vivado HLS.
//
// Both consume the same C source (data/c/idct.c) through the same frontend;
// they differ exactly where the real tools do:
//
//   * Bambu — option-driven. `--channels-type` picks the memory port count
//     (MEM_ACC_11 = 1R+1W, MEM_ACC_NN = 2R+2W), the experimental-setup
//     presets trade functional-unit sharing against schedule length,
//     `--speculative-sdc-scheduling` compresses chains, and the
//     memory-allocation-policy nudges the RAM timing. The 7 presets x 2
//     speculation x 3 policies grid is the paper's 42-configuration sweep.
//     Bambu cannot make an AXI adapter, so the hand-written sequential
//     wrapper surrounds the kernel.
//
//   * Vivado HLS — pragma-driven. Push-button (no pragmas) leaves
//     idctrow/idctcol un-inlined: each call becomes its own region with
//     stream-transfer overhead ("superfluous AXI-Stream interfaces"),
//     roughly 18x slower than the Verilog baseline. With the paper's
//     source modification (buf scalars) plus INTERFACE axis + PIPELINE,
//     codegen switches to the row-rate streaming engine.
#pragma once

#include <string>
#include <vector>

#include "hls/codegen.hpp"
#include "hls/wrapper.hpp"
#include "netlist/ir.hpp"

namespace hlshc::hls {

enum class BambuChannels { kMemAcc11, kMemAccNN };
enum class BambuPreset {
  kDefault, kArea, kAreaMp, kBalanced, kBalancedMp, kPerformance,
  kPerformanceMp,
};
enum class MemoryAllocationPolicy { kLss, kGss, kAllBram };

struct BambuOptions {
  BambuPreset preset = BambuPreset::kDefault;
  bool speculative_sdc = false;
  MemoryAllocationPolicy memory_policy = MemoryAllocationPolicy::kLss;
  /// Optional explicit channel override (presets imply one).
  bool override_channels = false;
  BambuChannels channels = BambuChannels::kMemAcc11;

  std::string label() const;
};

struct VhlsOptions {
  /// false = push-button (paper's initial design); true = the pragma set
  /// (INTERFACE axis + PIPELINE + buf scalarization).
  bool pragmas = false;
  int pipeline_stages = 1;  ///< per 1-D pass when pragmas are on

  std::string label() const;
};

struct HlsCompileResult {
  netlist::Design design;
  int kernel_states = 0;   ///< sequential schedule length (0 for streaming)
  int mul_units = 0;
  int value_regs = 0;
  bool streaming = false;
};

/// Loads data/c/idct.c (the shipped source, also the LOC-metric input).
std::string idct_source();

HlsCompileResult compile_bambu(const std::string& source,
                               const BambuOptions& options);

/// compile_bambu generalized beyond the IDCT: `top` names the entry
/// function (one short[64] parameter), `out_width` the output sample width
/// the AXI adapter slices from the kernel RAM, and `wrap_name` the wrapped
/// design's name. The workload registry's fDCT/FIR/matmul HLS builders go
/// through here; compile_bambu(src, o) is exactly
/// compile_bambu_top(src, "idct", o, 9, "bambu_" + o.label()).
HlsCompileResult compile_bambu_top(const std::string& source,
                                   const std::string& top,
                                   const BambuOptions& options,
                                   int out_width,
                                   const std::string& wrap_name);
HlsCompileResult compile_vhls(const std::string& source,
                              const VhlsOptions& options);

/// The paper's 42 Bambu configurations.
std::vector<BambuOptions> bambu_sweep();

/// ScheduleOptions a Bambu configuration resolves to (exposed for tests).
ScheduleOptions bambu_schedule_options(const BambuOptions& options);

}  // namespace hlshc::hls
