#include "hls/tool.hpp"

#include <fstream>
#include <sstream>

#include "base/check.hpp"
#include "hls/ast.hpp"
#include "obs/trace.hpp"

namespace hlshc::hls {

namespace {

const char* preset_name(BambuPreset p) {
  switch (p) {
    case BambuPreset::kDefault: return "BAMBU";
    case BambuPreset::kArea: return "BAMBU-AREA";
    case BambuPreset::kAreaMp: return "BAMBU-AREA-MP";
    case BambuPreset::kBalanced: return "BAMBU-BALANCED";
    case BambuPreset::kBalancedMp: return "BAMBU-BALANCED-MP";
    case BambuPreset::kPerformance: return "BAMBU-PERFORMANCE";
    case BambuPreset::kPerformanceMp: return "BAMBU-PERFORMANCE-MP";
  }
  return "?";
}

bool preset_is_mp(BambuPreset p) {
  return p == BambuPreset::kAreaMp || p == BambuPreset::kBalancedMp ||
         p == BambuPreset::kPerformanceMp;
}

}  // namespace

std::string BambuOptions::label() const {
  std::ostringstream os;
  os << preset_name(preset);
  if (speculative_sdc) os << "+sdc";
  switch (memory_policy) {
    case MemoryAllocationPolicy::kLss: os << "+LSS"; break;
    case MemoryAllocationPolicy::kGss: os << "+GSS"; break;
    case MemoryAllocationPolicy::kAllBram: os << "+ALL_BRAM"; break;
  }
  return os.str();
}

std::string VhlsOptions::label() const {
  return pragmas ? "vhls+pragmas(stages=" + std::to_string(pipeline_stages) +
                       ")"
                 : "vhls-pushbutton";
}

std::string idct_source() {
  const std::string path = std::string(HLSHC_DATA_DIR) + "/c/idct.c";
  std::ifstream in(path);
  HLSHC_CHECK(in.good(), "cannot open " << path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

ScheduleOptions bambu_schedule_options(const BambuOptions& options) {
  ScheduleOptions s;
  switch (options.preset) {
    case BambuPreset::kDefault:
      s.mul_units = 2;
      s.add_units = 6;
      s.cycle_budget_ns = 6.0;
      break;
    case BambuPreset::kArea:
    case BambuPreset::kAreaMp:
      s.mul_units = 1;
      s.add_units = 2;
      s.cycle_budget_ns = 8.0;
      break;
    case BambuPreset::kBalanced:
    case BambuPreset::kBalancedMp:
      s.mul_units = 2;
      s.add_units = 4;
      s.cycle_budget_ns = 7.0;
      break;
    case BambuPreset::kPerformance:
    case BambuPreset::kPerformanceMp:
      s.mul_units = 4;
      s.add_units = 8;
      s.cycle_budget_ns = 6.0;
      break;
  }
  BambuChannels ch = options.override_channels
                         ? options.channels
                         : (preset_is_mp(options.preset)
                                ? BambuChannels::kMemAccNN
                                : BambuChannels::kMemAcc11);
  s.mem_read_ports = ch == BambuChannels::kMemAccNN ? 2 : 1;
  s.mem_write_ports = s.mem_read_ports;
  s.speculative = options.speculative_sdc;
  return s;
}

HlsCompileResult compile_bambu_top(const std::string& source,
                                   const std::string& top,
                                   const BambuOptions& options,
                                   int out_width,
                                   const std::string& wrap_name) {
  obs::Span span("hls.compile_bambu", "hls");
  span.arg("config", options.label());
  span.arg("top", top);
  Program prog = parse(source);
  LowerOptions lo;
  lo.inline_functions = true;  // Bambu inlines these leaves by default
  Dfg dfg = lower(prog, top, lo);
  ScheduleOptions so = bambu_schedule_options(options);
  Schedule sched = schedule(dfg, so);
  KernelResult kernel =
      codegen_sequential(dfg, sched, so, "bambu_kernel");
  HlsCompileResult res{wrap_axis_sequential(kernel, wrap_name, out_width),
                       sched.length, kernel.mul_units, kernel.value_regs,
                       false};
  return res;
}

HlsCompileResult compile_bambu(const std::string& source,
                               const BambuOptions& options) {
  return compile_bambu_top(source, "idct", options, 9,
                           "bambu_" + options.label());
}

HlsCompileResult compile_vhls(const std::string& source,
                              const VhlsOptions& options) {
  obs::Span span("hls.compile_vhls", "hls");
  span.arg("config", options.label());
  Program prog = parse(source);
  if (!options.pragmas) {
    // Push-button: functions stay separate modules; every call pays the
    // generated inter-module stream interface.
    LowerOptions lo;
    lo.inline_functions = false;
    Dfg dfg = lower(prog, "idct", lo);
    ScheduleOptions so;
    so.mul_units = 2;
    so.add_units = 0;
    so.mem_read_ports = 1;
    so.mem_write_ports = 1;
    so.region_overhead = 18;  // per-call stream-in/stream-out + handshake
    Schedule sched = schedule(dfg, so);
    KernelResult kernel = codegen_sequential(dfg, sched, so, "vhls_kernel");
    return HlsCompileResult{wrap_axis_sequential(kernel, "vhls_initial"),
                            sched.length, kernel.mul_units,
                            kernel.value_regs, false};
  }
  // Pragma set: INTERFACE axis + PIPELINE + scalarized buffers -> the
  // row-rate streaming engine built from the compiled 1-D passes.
  LeafDfg row = lower_leaf(prog, "idctrow", 0);
  LeafDfg col = lower_leaf(prog, "idctcol", 0);
  StreamingDesign sd =
      build_streaming_design(row, col, options.pipeline_stages,
                             options.pipeline_stages, "vhls_opt");
  return HlsCompileResult{std::move(sd.design), 0, 0, 0, true};
}

std::vector<BambuOptions> bambu_sweep() {
  std::vector<BambuOptions> out;
  for (BambuPreset p :
       {BambuPreset::kDefault, BambuPreset::kArea, BambuPreset::kAreaMp,
        BambuPreset::kBalanced, BambuPreset::kBalancedMp,
        BambuPreset::kPerformance, BambuPreset::kPerformanceMp}) {
    for (bool sdc : {false, true}) {
      for (MemoryAllocationPolicy m :
           {MemoryAllocationPolicy::kLss, MemoryAllocationPolicy::kGss,
            MemoryAllocationPolicy::kAllBram}) {
        BambuOptions o;
        o.preset = p;
        o.speculative_sdc = sdc;
        o.memory_policy = m;
        out.push_back(o);
      }
    }
  }
  return out;  // 7 x 2 x 3 = 42, the paper's configuration count
}

}  // namespace hlshc::hls
