// Dataflow graph: the HLS compiler's mid-level IR.
//
// Lowering executes the AST symbolically — constant-bound loops fully
// unrolled, calls inlined (always for semantics; "non-inlined" calls keep
// a region tag so the backend can reproduce module-per-function costs),
// scalar variables renamed SSA-style — leaving one straight-line DFG of
// 32-bit operations plus Load/Store ops against the top function's array.
//
// Because every index expression folds to a constant after unrolling, all
// memory addresses are exact; dependence edges (RAW with 1-cycle latency,
// WAW, WAR with 0-cycle latency) are computed per address, which is what
// lets the list scheduler overlap independent loads aggressively — the
// same precision real HLS gets from array dependence analysis here.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace hlshc::hls {

struct Program;  // ast.hpp

enum class DOp : uint8_t {
  kConst,
  kAdd, kSub, kMul, kShl, kShr, kAnd, kOr, kXor,
  kLt, kGt, kLe, kGe, kEq, kNe,
  kSelect,     ///< a ? b : c
  kNeg, kNot,
  kCastShort,  ///< truncate to 16 bits, sign-extend back (C (short) cast)
  kLoad,       ///< memory[imm]; value is sign-extended short
  kStore,      ///< memory[imm] = a (stored as short)
  kInput,      ///< leaf-mode scalar input for array element `imm`
};

struct DNode {
  DOp op = DOp::kConst;
  int64_t imm = 0;   ///< constant value, or memory address for Load/Store
  int a = -1, b = -1, c = -1;  ///< operand node ids
  int region = 0;    ///< call-instance tag (0 = top-level code)
};

struct Dfg {
  std::vector<DNode> nodes;
  int mem_size = 64;     ///< words in the external array
  int regions = 1;       ///< number of region tags in use

  int add_node(DNode n) {
    nodes.push_back(n);
    return static_cast<int>(nodes.size() - 1);
  }
  const DNode& node(int i) const { return nodes[static_cast<size_t>(i)]; }
  bool is_const(int i) const { return node(i).op == DOp::kConst; }
  int64_t const_value(int i) const { return node(i).imm; }
};

/// Dependence edge for scheduling: `to` may start `latency` cycles after
/// `from` (latency 0 allows the same cycle).
struct DepEdge {
  int from = 0, to = 0, latency = 1;
};

/// Data edges (operand -> user, latency 0 chaining-permitted) plus memory
/// ordering edges derived from the exact addresses.
std::vector<DepEdge> dependence_edges(const Dfg& dfg);

struct LowerOptions {
  /// false reproduces Vivado HLS's default of *not* inlining sub-functions:
  /// every call instance gets its own region; the scheduler serializes
  /// regions and charges per-call interface-transfer overhead.
  bool inline_functions = true;
  int max_loop_iterations = 4096;  ///< unroll guard
};

/// Lowers `top`'s body. The top function must take exactly one short[]
/// array parameter (the paper's `void idct(short block[64])`).
Dfg lower(const Program& program, const std::string& top,
          const LowerOptions& options = {});

/// Leaf-mode lowering: compiles one 1-D pass function (idctrow / idctcol)
/// into a *pure dataflow* function over scalars — array loads become
/// kInput nodes, the final store per address becomes an output. This is
/// the form Vivado HLS effectively reaches after INTERFACE axis + PIPELINE
/// + array scalarization, and it feeds the streaming backend.
struct LeafDfg {
  Dfg dfg;
  std::vector<int64_t> input_addrs;          ///< sorted
  std::vector<std::pair<int64_t, int>> outputs;  ///< (addr, node), sorted
};

LeafDfg lower_leaf(const Program& program, const std::string& function,
                   int64_t off_value = 0);

/// Reference interpreter for the DFG: applies it to a 64-word memory image.
/// Used by tests to validate lowering before any hardware is generated.
void interpret(const Dfg& dfg, std::vector<int32_t>& memory);

}  // namespace hlshc::hls
