// Resource-constrained list scheduler.
//
// Assigns every DFG operation a start cycle subject to:
//   * data dependences (with operator chaining inside a cycle, bounded by
//     a delay budget, like Bambu's chaining / Vivado HLS's clock margin);
//   * memory ports (Bambu's channels-type: MEM_ACC_11 = 1R+1W,
//     MEM_ACC_NN = 2R+2W) — the dominant constraint for this kernel;
//   * multiplier and (optionally) adder unit counts, which the binder
//     later turns into shared functional units;
//   * region barriers: with inlining disabled, every call instance's
//     operations are scheduled after the previous region completes plus an
//     interface overhead — reproducing Vivado HLS's module-per-function
//     default and its "superfluous AXI-Stream interfaces" cost.
//
// `speculative` mimics Bambu's speculative SDC scheduling: compare/select
// operations chain for free and the budget stretches, compressing the
// schedule a little.
#pragma once

#include <vector>

#include "hls/dfg.hpp"
#include "synth/cost_model.hpp"

namespace hlshc::hls {

struct ScheduleOptions {
  int mul_units = 2;
  int add_units = 0;        ///< 0 = unlimited (no adder sharing)
  int mem_read_ports = 1;
  int mem_write_ports = 1;
  bool chaining = true;
  double cycle_budget_ns = 6.0;  ///< max combinational chain per cycle
  bool speculative = false;
  int region_overhead = 18;  ///< cycles per non-inlined call (stream in/out)
  /// Delay model shared with synthesis (synth/cost_model.hpp): chaining
  /// decisions and the timing engine price a multiply, a logic level, and a
  /// memory access off the same constants.
  synth::DelayModel delay;
};

struct Schedule {
  std::vector<int> cycle;  ///< per node; constants get -1 (always available)
  int length = 0;          ///< total FSM states
  int mul_units_used = 0;
  int add_units_used = 0;
};

/// Operator delays used for chaining decisions (ns), expressed over the
/// synth delay model. The DFG carries no operand widths, so the
/// width-dependent operators (add/compare) chain at fixed 32-bit
/// calibrations of the model's carry chain; everything else reads the
/// model's constants directly.
double dfg_op_delay(DOp op, const synth::DelayModel& delay = {});

/// True when `node`'s result comes out of a shared, output-registered
/// functional unit under `options` (consumers start a cycle later).
bool is_shared_output(const Dfg& dfg, int node, const ScheduleOptions& options);

Schedule schedule(const Dfg& dfg, const ScheduleOptions& options);

}  // namespace hlshc::hls
