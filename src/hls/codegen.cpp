#include "hls/codegen.hpp"

#include <algorithm>
#include <map>
#include <vector>

#include "base/check.hpp"

namespace hlshc::hls {

namespace {

using netlist::Design;
using netlist::kInvalidNode;
using netlist::NodeId;

constexpr int kWord = 32;   ///< C int datapath width
constexpr int kShort = 16;  ///< array element width

int clog2(int v) {
  int w = 1;
  while ((1 << w) < v) ++w;
  return w;
}

/// Builds the FSM skeleton and shared-unit mux helpers.
struct Fsm {
  Design* d = nullptr;
  NodeId state = kInvalidNode;
  NodeId running = kInvalidNode;
  int length = 0;
  std::map<int, NodeId> state_eq;  ///< memoized (state == t)

  NodeId at(int t) {
    auto it = state_eq.find(t);
    if (it != state_eq.end()) return it->second;
    NodeId eq = d->eq(state, d->constant(d->node(state).width, t));
    state_eq[t] = eq;
    return eq;
  }
  NodeId firing_at(int t) { return d->band(running, at(t), 1); }

  /// Balanced OR reduction (enable aggregation off the critical path).
  NodeId or_reduce(std::vector<NodeId> terms) {
    HLSHC_CHECK(!terms.empty(), "empty or_reduce");
    while (terms.size() > 1) {
      std::vector<NodeId> next;
      next.reserve((terms.size() + 1) / 2);
      for (size_t i = 0; i + 1 < terms.size(); i += 2)
        next.push_back(d->bor(terms[i], terms[i + 1], 1));
      if (terms.size() % 2) next.push_back(terms.back());
      terms = std::move(next);
    }
    return terms[0];
  }

  /// One-hot balanced selection: OR over (value AND sign-extended
  /// state-match). States are mutually exclusive, so the OR is exact, and
  /// the balanced tree keeps the select logic off the critical path — the
  /// structure real FSMD datapaths (and our cost model) map to packed
  /// mux LUTs.
  NodeId select_by_state(const std::vector<std::pair<int, NodeId>>& entries,
                         int width) {
    HLSHC_CHECK(!entries.empty(), "empty state mux");
    if (entries.size() == 1) {
      NodeId v = entries[0].second;
      return d->node(v).width == width ? v : d->sext(v, width);
    }
    std::vector<NodeId> terms;
    terms.reserve(entries.size());
    for (const auto& [t, value] : entries) {
      NodeId v = value;
      if (d->node(v).width != width) v = d->sext(v, width);
      terms.push_back(d->band(v, d->sext(at(t), width), width));
    }
    while (terms.size() > 1) {
      std::vector<NodeId> next;
      next.reserve((terms.size() + 1) / 2);
      for (size_t i = 0; i + 1 < terms.size(); i += 2)
        next.push_back(d->bor(terms[i], terms[i + 1], width));
      if (terms.size() % 2) next.push_back(terms.back());
      terms = std::move(next);
    }
    return terms[0];
  }
};

}  // namespace

KernelResult codegen_sequential(const Dfg& dfg, const Schedule& sched,
                                const ScheduleOptions& options,
                                const std::string& name) {
  const int n = static_cast<int>(dfg.nodes.size());
  Design design(name);
  Design* d = &design;

  // ---- FSM -------------------------------------------------------------------
  Fsm fsm;
  fsm.d = d;
  fsm.length = std::max(1, sched.length);
  const int sw = clog2(fsm.length + 1);
  fsm.state = d->reg(sw, 0, "state");
  fsm.running = d->reg(1, 0, "running");
  NodeId start = d->input("start", 1);
  NodeId at_last = d->eq(fsm.state, d->constant(sw, fsm.length - 1));
  NodeId launch = d->band(start, d->bnot(fsm.running, 1), 1);
  d->set_reg_next(fsm.running,
                  d->mux(launch, d->constant(1, 1),
                         d->mux(d->band(fsm.running, at_last, 1),
                                d->constant(1, 0), fsm.running, 1),
                         1));
  d->set_reg_next(
      fsm.state,
      d->mux(fsm.running,
             d->mux(at_last, d->constant(sw, 0),
                    d->add(fsm.state, d->constant(sw, 1), sw), sw),
             d->constant(sw, 0), sw));
  d->output("done", d->band(fsm.running, at_last, 1));

  // ---- memory + external port --------------------------------------------------
  const int aw = clog2(dfg.mem_size);
  int mem = d->add_memory("block", kShort, dfg.mem_size);
  NodeId ext_we = d->input("ext_we", 1);
  NodeId ext_waddr = d->input("ext_waddr", aw);
  NodeId ext_wdata = d->input("ext_wdata", kShort);
  NodeId ext_raddr = d->input("ext_raddr", aw);
  d->output("ext_rdata", d->mem_read(mem, ext_raddr));
  d->mem_write(mem, ext_waddr, ext_wdata,
               d->band(ext_we, d->bnot(fsm.running, 1), 1));

  // ---- liveness + register allocation -------------------------------------------
  std::vector<int> last_use(static_cast<size_t>(n), -1);
  auto use = [&](int opnd, int at_cycle) {
    if (opnd >= 0 && !dfg.is_const(opnd))
      last_use[static_cast<size_t>(opnd)] =
          std::max(last_use[static_cast<size_t>(opnd)], at_cycle);
  };
  for (int i = 0; i < n; ++i) {
    const DNode& nd = dfg.node(i);
    int c = sched.cycle[static_cast<size_t>(i)];
    use(nd.a, c);
    use(nd.b, c);
    use(nd.c, c);
  }
  // A value needs a register iff a consumer reads it after its cycle (this
  // is always the case for shared-unit outputs by construction).
  std::vector<bool> needs_reg(static_cast<size_t>(n), false);
  for (int i = 0; i < n; ++i) {
    if (dfg.is_const(i) || dfg.node(i).op == DOp::kStore) continue;
    int def = sched.cycle[static_cast<size_t>(i)];
    if (last_use[static_cast<size_t>(i)] > def) needs_reg[static_cast<size_t>(i)] = true;
  }
  // Linear scan: reuse a register whose previous value expired.
  struct PhysReg {
    int free_at = 0;  ///< first cycle a new def may claim it
    std::vector<std::pair<int, int>> writers;  ///< (cycle, dfg node)
  };
  std::vector<PhysReg> regs;
  std::vector<int> reg_of(static_cast<size_t>(n), -1);
  {
    std::vector<int> order;
    for (int i = 0; i < n; ++i)
      if (needs_reg[static_cast<size_t>(i)]) order.push_back(i);
    std::sort(order.begin(), order.end(), [&](int a, int b) {
      return sched.cycle[static_cast<size_t>(a)] <
             sched.cycle[static_cast<size_t>(b)];
    });
    for (int i : order) {
      int def = sched.cycle[static_cast<size_t>(i)];
      int chosen = -1;
      for (size_t r = 0; r < regs.size(); ++r) {
        if (regs[r].free_at <= def) {
          chosen = static_cast<int>(r);
          break;
        }
      }
      if (chosen < 0) {
        regs.push_back(PhysReg{});
        chosen = static_cast<int>(regs.size() - 1);
      }
      regs[static_cast<size_t>(chosen)].free_at =
          last_use[static_cast<size_t>(i)];
      regs[static_cast<size_t>(chosen)].writers.emplace_back(def, i);
      reg_of[static_cast<size_t>(i)] = chosen;
    }
  }

  // ---- datapath -------------------------------------------------------------------
  // comb_out[i]: the combinational wire computing node i in its cycle.
  std::vector<NodeId> comb_out(static_cast<size_t>(n), kInvalidNode);
  std::vector<NodeId> reg_node(regs.size(), kInvalidNode);
  for (size_t r = 0; r < regs.size(); ++r)
    reg_node[r] = d->reg(kWord, 0, "v" + std::to_string(r));

  // Operand value as seen by a consumer scheduled at cycle t.
  auto val = [&](int i, int t) -> NodeId {
    HLSHC_CHECK(i >= 0, "missing operand");
    if (dfg.is_const(i)) return d->constant(kWord, dfg.const_value(i));
    int def = sched.cycle[static_cast<size_t>(i)];
    if (def == t && !is_shared_output(dfg, i, options)) {
      HLSHC_CHECK(comb_out[static_cast<size_t>(i)] != kInvalidNode,
                  "comb value not yet built (chain order)");
      return comb_out[static_cast<size_t>(i)];
    }
    int r = reg_of[static_cast<size_t>(i)];
    HLSHC_CHECK(r >= 0, "value consumed later but not registered");
    return reg_node[static_cast<size_t>(r)];
  };

  // Group shared ops per kind.
  struct UnitOp {
    int node;
    int cycle;
  };
  std::vector<std::vector<UnitOp>> mul_insts, add_insts;
  std::vector<std::vector<UnitOp>> read_ports(
      static_cast<size_t>(options.mem_read_ports)),
      write_ports(static_cast<size_t>(options.mem_write_ports));
  {
    std::map<int, int> muls_in_cycle, adds_in_cycle, reads_in_cycle,
        writes_in_cycle;
    for (int i = 0; i < n; ++i) {
      if (dfg.is_const(i)) continue;
      const DNode& nd = dfg.node(i);
      int c = sched.cycle[static_cast<size_t>(i)];
      switch (nd.op) {
        case DOp::kMul: {
          int k = muls_in_cycle[c]++;
          if (static_cast<size_t>(k) >= mul_insts.size())
            mul_insts.resize(static_cast<size_t>(k) + 1);
          mul_insts[static_cast<size_t>(k)].push_back({i, c});
          break;
        }
        case DOp::kAdd:
        case DOp::kSub:
        case DOp::kNeg:
          if (options.add_units > 0) {
            int k = adds_in_cycle[c]++;
            if (static_cast<size_t>(k) >= add_insts.size())
              add_insts.resize(static_cast<size_t>(k) + 1);
            add_insts[static_cast<size_t>(k)].push_back({i, c});
          }
          break;
        case DOp::kLoad:
          read_ports[static_cast<size_t>(reads_in_cycle[c]++)].push_back(
              {i, c});
          break;
        case DOp::kStore:
          write_ports[static_cast<size_t>(writes_in_cycle[c]++)].push_back(
              {i, c});
          break;
        default:
          break;
      }
    }
  }

  // Read ports first: their addresses are constants, so loads' comb values
  // exist before any arithmetic that chains from them.
  for (auto& port : read_ports) {
    if (port.empty()) continue;
    std::vector<std::pair<int, NodeId>> addrs;
    for (const UnitOp& op : port)
      addrs.emplace_back(op.cycle,
                         d->constant(aw, dfg.node(op.node).imm));
    NodeId addr = fsm.select_by_state(addrs, aw);
    NodeId value = d->sext(d->mem_read(mem, addr), kWord);
    for (const UnitOp& op : port) comb_out[static_cast<size_t>(op.node)] = value;
  }

  // Per-op combinational logic in index order (operands precede users, so
  // same-cycle chains resolve). Shared mul/add units are built afterwards;
  // their consumers read registers, never comb wires.
  for (int i = 0; i < n; ++i) {
    if (dfg.is_const(i)) continue;
    const DNode& nd = dfg.node(i);
    const int t = sched.cycle[static_cast<size_t>(i)];
    switch (nd.op) {
      case DOp::kMul:
        break;  // shared unit
      case DOp::kAdd:
      case DOp::kSub:
      case DOp::kNeg:
        if (options.add_units > 0) break;  // shared unit
        if (nd.op == DOp::kAdd)
          comb_out[static_cast<size_t>(i)] =
              d->add(val(nd.a, t), val(nd.b, t), kWord);
        else if (nd.op == DOp::kSub)
          comb_out[static_cast<size_t>(i)] =
              d->sub(val(nd.a, t), val(nd.b, t), kWord);
        else
          comb_out[static_cast<size_t>(i)] = d->neg(val(nd.a, t), kWord);
        break;
      case DOp::kShl:
      case DOp::kShr: {
        HLSHC_CHECK(dfg.is_const(nd.b), "shift amount must be constant");
        int amt = static_cast<int>(dfg.const_value(nd.b)) & 31;
        comb_out[static_cast<size_t>(i)] =
            nd.op == DOp::kShl ? d->shl(val(nd.a, t), amt, kWord)
                               : d->ashr(val(nd.a, t), amt, kWord);
        break;
      }
      case DOp::kAnd:
        comb_out[static_cast<size_t>(i)] =
            d->band(val(nd.a, t), val(nd.b, t), kWord);
        break;
      case DOp::kOr:
        comb_out[static_cast<size_t>(i)] =
            d->bor(val(nd.a, t), val(nd.b, t), kWord);
        break;
      case DOp::kXor:
        comb_out[static_cast<size_t>(i)] =
            d->bxor(val(nd.a, t), val(nd.b, t), kWord);
        break;
      case DOp::kLt:
        comb_out[static_cast<size_t>(i)] =
            d->zext(d->slt(val(nd.a, t), val(nd.b, t)), kWord);
        break;
      case DOp::kGt:
        comb_out[static_cast<size_t>(i)] =
            d->zext(d->sgt(val(nd.a, t), val(nd.b, t)), kWord);
        break;
      case DOp::kLe:
        comb_out[static_cast<size_t>(i)] =
            d->zext(d->sle(val(nd.a, t), val(nd.b, t)), kWord);
        break;
      case DOp::kGe:
        comb_out[static_cast<size_t>(i)] =
            d->zext(d->sge(val(nd.a, t), val(nd.b, t)), kWord);
        break;
      case DOp::kEq:
        comb_out[static_cast<size_t>(i)] =
            d->zext(d->eq(val(nd.a, t), val(nd.b, t)), kWord);
        break;
      case DOp::kNe:
        comb_out[static_cast<size_t>(i)] =
            d->zext(d->ne(val(nd.a, t), val(nd.b, t)), kWord);
        break;
      case DOp::kSelect: {
        NodeId cond = d->ne(val(nd.a, t), d->constant(kWord, 0));
        comb_out[static_cast<size_t>(i)] =
            d->mux(cond, val(nd.b, t), val(nd.c, t), kWord);
        break;
      }
      case DOp::kNot:
        comb_out[static_cast<size_t>(i)] = d->zext(
            d->eq(val(nd.a, t), d->constant(kWord, 0)), kWord);
        break;
      case DOp::kCastShort:
        comb_out[static_cast<size_t>(i)] =
            d->sext(d->slice(val(nd.a, t), kShort - 1, 0), kWord);
        break;
      case DOp::kLoad:
      case DOp::kStore:
        break;  // ports handled separately
      case DOp::kConst:
        break;
      case DOp::kInput:
        HLSHC_CHECK(false, "leaf-mode DFGs use the streaming backend");
        break;
    }
  }

  // Shared multiplier units.
  for (const auto& inst : mul_insts) {
    if (inst.empty()) continue;
    std::vector<std::pair<int, NodeId>> ea, eb;
    for (const UnitOp& op : inst) {
      const DNode& nd = dfg.node(op.node);
      ea.emplace_back(op.cycle, val(nd.a, op.cycle));
      eb.emplace_back(op.cycle, val(nd.b, op.cycle));
    }
    NodeId out = d->mul(fsm.select_by_state(ea, kWord),
                        fsm.select_by_state(eb, kWord), kWord);
    for (const UnitOp& op : inst) comb_out[static_cast<size_t>(op.node)] = out;
  }
  // Shared add/sub units (one adder + one subtractor path, muxed).
  for (const auto& inst : add_insts) {
    if (inst.empty()) continue;
    std::vector<std::pair<int, NodeId>> ea, eb, esub;
    for (const UnitOp& op : inst) {
      const DNode& nd = dfg.node(op.node);
      bool is_sub = nd.op != DOp::kAdd;
      NodeId a = nd.op == DOp::kNeg ? d->constant(kWord, 0)
                                    : val(nd.a, op.cycle);
      NodeId b = nd.op == DOp::kNeg ? val(nd.a, op.cycle)
                                    : val(nd.b, op.cycle);
      ea.emplace_back(op.cycle, a);
      eb.emplace_back(op.cycle, b);
      esub.emplace_back(op.cycle, d->constant(1, is_sub ? 1 : 0));
    }
    NodeId a = fsm.select_by_state(ea, kWord);
    NodeId b = fsm.select_by_state(eb, kWord);
    NodeId is_sub = fsm.select_by_state(esub, 1);
    NodeId out =
        d->mux(is_sub, d->sub(a, b, kWord), d->add(a, b, kWord), kWord);
    for (const UnitOp& op : inst) comb_out[static_cast<size_t>(op.node)] = out;
  }

  // Write ports.
  for (auto& port : write_ports) {
    if (port.empty()) continue;
    std::vector<std::pair<int, NodeId>> addrs, datas;
    std::vector<NodeId> fires;
    for (const UnitOp& op : port) {
      const DNode& nd = dfg.node(op.node);
      addrs.emplace_back(op.cycle, d->constant(aw, nd.imm));
      datas.emplace_back(op.cycle,
                         d->slice(val(nd.a, op.cycle), kShort - 1, 0));
      fires.push_back(fsm.firing_at(op.cycle));
    }
    d->mem_write(mem, fsm.select_by_state(addrs, aw),
                 fsm.select_by_state(datas, kShort), fsm.or_reduce(fires));
  }

  // Value registers.
  for (size_t r = 0; r < regs.size(); ++r) {
    std::vector<std::pair<int, NodeId>> writes;
    std::vector<NodeId> fires;
    for (auto [cyc, node] : regs[r].writers) {
      writes.emplace_back(cyc, comb_out[static_cast<size_t>(node)]);
      fires.push_back(fsm.firing_at(cyc));
    }
    d->set_reg_next(reg_node[r], fsm.select_by_state(writes, kWord),
                    fsm.or_reduce(fires));
  }

  KernelResult res{std::move(design), fsm.length,
                   static_cast<int>(regs.size()),
                   static_cast<int>(mul_insts.size()),
                   static_cast<int>(add_insts.size())};
  return res;
}

}  // namespace hlshc::hls
