// AST for the HLS C subset.
//
// Types are `int` (32-bit), `short` (16-bit storage, promoted to int in
// expressions, truncated on store — standard C semantics) and
// fixed-size `short[N]` arrays passed by reference. Statements cover what
// fixed-bound DSP kernels use: declarations, assignments (scalar and
// array element), constant-bound for loops, if/else, expression calls and
// return.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace hlshc::hls {

enum class BinOp {
  kAdd, kSub, kMul, kShl, kShr, kAnd, kOr, kXor,
  kLt, kGt, kLe, kGe, kEq, kNe,
};

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Expr {
  enum class Kind {
    kNumber,    ///< value
    kVar,       ///< name
    kIndex,     ///< name[a]
    kBinary,    ///< a op b
    kTernary,   ///< a ? b : c
    kCall,      ///< name(args)  (value-returning call in an expression)
    kCastShort, ///< (short)a
    kNeg,       ///< -a
    kNot,       ///< !a
  };
  Kind kind;
  int64_t value = 0;
  std::string name;
  BinOp op = BinOp::kAdd;
  ExprPtr a, b, c;
  std::vector<ExprPtr> args;
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

struct Stmt {
  enum class Kind {
    kDecl,        ///< int name;  / int name = expr;
    kAssign,      ///< name = expr;
    kStore,       ///< name[idx] = expr;
    kFor,         ///< for (init; cond; step) body   (constant trip count)
    kIf,          ///< if (cond) then [else els]
    kExpr,        ///< expr;  (call statement)
    kReturn,      ///< return [expr];
    kBlock,       ///< { ... }
  };
  Kind kind;
  std::string name;         // decl/assign target
  ExprPtr index;            // store index
  ExprPtr expr;             // rhs / condition / return value / call
  StmtPtr init, step;       // for
  StmtPtr body, els;        // for body / if branches
  std::vector<StmtPtr> stmts;  // block
};

struct Param {
  std::string name;
  bool is_array = false;
  int array_size = 0;  ///< elements, for array params
  bool is_short = false;
};

struct Function {
  std::string name;
  bool returns_value = false;  ///< int f(...) vs void f(...)
  std::vector<Param> params;
  StmtPtr body;  ///< a kBlock
};

struct Program {
  std::vector<Function> functions;
  const Function* find(const std::string& name) const {
    for (const auto& f : functions)
      if (f.name == name) return &f;
    return nullptr;
  }
};

/// Parses the token stream. Throws hlshc::Error with line info on errors.
Program parse(const std::string& source);

}  // namespace hlshc::hls
