#include <map>
#include <optional>

#include "base/check.hpp"
#include "hls/ast.hpp"
#include "hls/dfg.hpp"

namespace hlshc::hls {

namespace {

/// Symbolic executor: walks the AST, maintaining a scalar environment of
/// SSA value ids, emitting DFG nodes, folding constants as it goes.
class Lowerer {
 public:
  Lowerer(const Program& program, const LowerOptions& options)
      : program_(program), options_(options) {}

  LeafDfg run_leaf(const std::string& name, int64_t off_value) {
    const Function* fn = program_.find(name);
    HLSHC_CHECK(fn != nullptr, "no function '" << name << '\'');
    leaf_mode_ = true;
    dfg_.mem_size = 64;
    Env env;
    for (const Param& p : fn->params) {
      if (p.is_array) {
        env.array_param = p.name;
      } else {
        env.vars[p.name] = konst(off_value);
      }
    }
    exec_block(*fn->body, env, /*region=*/0);
    LeafDfg leaf;
    leaf.dfg = std::move(dfg_);
    for (const auto& [addr, node] : leaf_inputs_)
      leaf.input_addrs.push_back(addr);
    for (const auto& [addr, node] : leaf_outputs_)
      leaf.outputs.emplace_back(addr, node);
    return leaf;
  }

  Dfg run(const std::string& top) {
    const Function* fn = program_.find(top);
    HLSHC_CHECK(fn != nullptr, "no top function '" << top << '\'');
    HLSHC_CHECK(fn->params.size() == 1 && fn->params[0].is_array,
                "top function must take a single array parameter");
    dfg_.mem_size = fn->params[0].array_size;
    Env env;
    env.array_param = fn->params[0].name;
    exec_block(*fn->body, env, /*region=*/0);
    dfg_.regions = next_region_;
    return std::move(dfg_);
  }

 private:
  struct Env {
    std::map<std::string, int> vars;  ///< scalar name -> DFG node
    std::string array_param;          ///< name bound to the external array
  };

  int konst(int64_t v) {
    // Memoize constants to keep the graph small.
    auto it = const_cache_.find(v);
    if (it != const_cache_.end()) return it->second;
    int id = dfg_.add_node(DNode{DOp::kConst, v, -1, -1, -1, 0});
    const_cache_[v] = id;
    return id;
  }

  int emit(DOp op, int a, int b, int c, int region) {
    // Local constant folding: all-const operands compute now.
    auto cv = [&](int i) { return dfg_.const_value(i); };
    bool fold = (a < 0 || dfg_.is_const(a)) && (b < 0 || dfg_.is_const(b)) &&
                (c < 0 || dfg_.is_const(c)) && op != DOp::kLoad &&
                op != DOp::kStore;
    if (fold) {
      int64_t x = a >= 0 ? cv(a) : 0, y = b >= 0 ? cv(b) : 0,
              z = c >= 0 ? cv(c) : 0;
      int64_t r = 0;
      switch (op) {
        case DOp::kAdd: r = static_cast<int32_t>(x + y); break;
        case DOp::kSub: r = static_cast<int32_t>(x - y); break;
        case DOp::kMul: r = static_cast<int32_t>(x * y); break;
        case DOp::kShl: r = static_cast<int32_t>(x << (y & 31)); break;
        case DOp::kShr: r = static_cast<int32_t>(x >> (y & 31)); break;
        case DOp::kAnd: r = x & y; break;
        case DOp::kOr: r = x | y; break;
        case DOp::kXor: r = x ^ y; break;
        case DOp::kLt: r = x < y; break;
        case DOp::kGt: r = x > y; break;
        case DOp::kLe: r = x <= y; break;
        case DOp::kGe: r = x >= y; break;
        case DOp::kEq: r = x == y; break;
        case DOp::kNe: r = x != y; break;
        case DOp::kSelect: r = x ? y : z; break;
        case DOp::kNeg: r = -x; break;
        case DOp::kNot: r = !x; break;
        case DOp::kCastShort: r = static_cast<int16_t>(x); break;
        default: HLSHC_UNREACHABLE("fold");
      }
      return konst(r);
    }
    return dfg_.add_node(DNode{op, 0, a, b, c, region});
  }

  int64_t const_index(int node, int line_hint) {
    HLSHC_CHECK(dfg_.is_const(node),
                "array index does not fold to a constant (op "
                    << static_cast<int>(dfg_.node(node).op) << ", near "
                    << line_hint << ')');
    return dfg_.const_value(node);
  }

  // ---- expressions ----------------------------------------------------------

  int eval(const Expr& e, Env& env, int region) {
    switch (e.kind) {
      case Expr::Kind::kNumber:
        return konst(e.value);
      case Expr::Kind::kVar: {
        auto it = env.vars.find(e.name);
        HLSHC_CHECK(it != env.vars.end(),
                    "use of undefined variable '" << e.name << '\'');
        return it->second;
      }
      case Expr::Kind::kIndex: {
        HLSHC_CHECK(e.name == env.array_param,
                    "unknown array '" << e.name << '\'');
        int idx = eval(*e.a, env, region);
        int64_t addr = const_index(idx, 0);
        HLSHC_CHECK(addr >= 0 && addr < dfg_.mem_size,
                    "array index " << addr << " out of bounds");
        if (leaf_mode_) {
          // Read-after-write within the pass sees the stored value.
          if (auto it = leaf_outputs_.find(addr); it != leaf_outputs_.end())
            return it->second;
          if (auto it = leaf_inputs_.find(addr); it != leaf_inputs_.end())
            return it->second;
          int in = dfg_.add_node(DNode{DOp::kInput, addr, -1, -1, -1, region});
          leaf_inputs_[addr] = in;
          return in;
        }
        int id = dfg_.add_node(DNode{DOp::kLoad, addr, -1, -1, -1, region});
        return id;
      }
      case Expr::Kind::kBinary: {
        int a = eval(*e.a, env, region);
        int b = eval(*e.b, env, region);
        DOp op;
        switch (e.op) {
          case BinOp::kAdd: op = DOp::kAdd; break;
          case BinOp::kSub: op = DOp::kSub; break;
          case BinOp::kMul: op = DOp::kMul; break;
          case BinOp::kShl: op = DOp::kShl; break;
          case BinOp::kShr: op = DOp::kShr; break;
          case BinOp::kAnd: op = DOp::kAnd; break;
          case BinOp::kOr: op = DOp::kOr; break;
          case BinOp::kXor: op = DOp::kXor; break;
          case BinOp::kLt: op = DOp::kLt; break;
          case BinOp::kGt: op = DOp::kGt; break;
          case BinOp::kLe: op = DOp::kLe; break;
          case BinOp::kGe: op = DOp::kGe; break;
          case BinOp::kEq: op = DOp::kEq; break;
          case BinOp::kNe: op = DOp::kNe; break;
          default: HLSHC_UNREACHABLE("binop");
        }
        return emit(op, a, b, -1, region);
      }
      case Expr::Kind::kTernary: {
        int cnd = eval(*e.a, env, region);
        if (dfg_.is_const(cnd))
          return dfg_.const_value(cnd) ? eval(*e.b, env, region)
                                       : eval(*e.c, env, region);
        int t = eval(*e.b, env, region);
        int f = eval(*e.c, env, region);
        return emit(DOp::kSelect, cnd, t, f, region);
      }
      case Expr::Kind::kCall:
        return call_function(e, env, region, /*want_value=*/true);
      case Expr::Kind::kCastShort:
        return emit(DOp::kCastShort, eval(*e.a, env, region), -1, -1, region);
      case Expr::Kind::kNeg:
        return emit(DOp::kNeg, eval(*e.a, env, region), -1, -1, region);
      case Expr::Kind::kNot:
        return emit(DOp::kNot, eval(*e.a, env, region), -1, -1, region);
    }
    HLSHC_UNREACHABLE("expr kind");
  }

  // ---- calls ------------------------------------------------------------------

  int call_function(const Expr& call, Env& caller_env, int region,
                    bool want_value) {
    const Function* fn = program_.find(call.name);
    HLSHC_CHECK(fn != nullptr, "call to unknown function '" << call.name
                                                            << '\'');
    HLSHC_CHECK(call.args.size() == fn->params.size(),
                "wrong arity calling '" << call.name << '\'');

    // "Non-inlined" calls get a fresh region tag — the backend serializes
    // regions and charges interface overhead, reproducing Vivado HLS's
    // module-per-function default. Value-returning helpers (iclip) are
    // always inlined, as both real tools do for tiny leaf functions.
    int callee_region = region;
    if (!options_.inline_functions && !fn->returns_value)
      callee_region = next_region_++;

    Env env;
    env.array_param.clear();
    for (size_t i = 0; i < fn->params.size(); ++i) {
      const Param& p = fn->params[i];
      const Expr& arg = *call.args[i];
      if (p.is_array) {
        HLSHC_CHECK(arg.kind == Expr::Kind::kVar &&
                        arg.name == caller_env.array_param,
                    "array argument must be the top-level array");
        env.array_param = p.name;
      } else {
        env.vars[p.name] = eval(const_cast<Expr&>(arg), caller_env, region);
      }
    }
    std::optional<int> ret = exec_block(*fn->body, env, callee_region);
    if (want_value) {
      HLSHC_CHECK(ret.has_value(),
                  "function '" << call.name << "' did not return a value");
      return *ret;
    }
    return -1;
  }

  // ---- statements ----------------------------------------------------------------

  /// Executes a block; returns the value of a `return expr` if one runs.
  std::optional<int> exec_block(const Stmt& block, Env& env, int region) {
    HLSHC_CHECK(block.kind == Stmt::Kind::kBlock, "not a block");
    for (const StmtPtr& s : block.stmts) {
      std::optional<int> r = exec_stmt(*s, env, region);
      if (r.has_value()) return r;
    }
    return std::nullopt;
  }

  std::optional<int> exec_stmt(const Stmt& s, Env& env, int region) {
    switch (s.kind) {
      case Stmt::Kind::kBlock:
        return exec_block(s, env, region);
      case Stmt::Kind::kDecl:
        env.vars[s.name] =
            s.expr ? eval(*s.expr, env, region) : konst(0);
        return std::nullopt;
      case Stmt::Kind::kAssign: {
        HLSHC_CHECK(env.vars.count(s.name) || true, "");
        env.vars[s.name] = eval(*s.expr, env, region);
        return std::nullopt;
      }
      case Stmt::Kind::kStore: {
        HLSHC_CHECK(s.name == env.array_param,
                    "store to unknown array '" << s.name << '\'');
        int idx = eval(*s.index, env, region);
        int64_t addr = const_index(idx, 0);
        HLSHC_CHECK(addr >= 0 && addr < dfg_.mem_size,
                    "store index " << addr << " out of bounds");
        int value = eval(*s.expr, env, region);
        // The array is short[]: storing truncates (unless the value is
        // already an explicit (short) cast).
        if (dfg_.node(value).op != DOp::kCastShort)
          value = emit(DOp::kCastShort, value, -1, -1, region);
        if (leaf_mode_) {
          leaf_outputs_[addr] = value;
          return std::nullopt;
        }
        DNode st{DOp::kStore, addr, value, -1, -1, region};
        dfg_.add_node(st);
        return std::nullopt;
      }
      case Stmt::Kind::kFor: {
        Env loop_env = env;  // C scoping is close enough for this subset
        exec_stmt(*s.init, loop_env, region);
        int iters = 0;
        while (true) {
          int cond = eval(*s.expr, loop_env, region);
          HLSHC_CHECK(dfg_.is_const(cond),
                      "loop bound does not fold to a constant");
          if (!dfg_.const_value(cond)) break;
          HLSHC_CHECK(++iters <= options_.max_loop_iterations,
                      "loop exceeds unroll limit");
          std::optional<int> r = exec_stmt(*s.body, loop_env, region);
          HLSHC_CHECK(!r.has_value(), "return inside a loop is unsupported");
          exec_stmt(*s.step, loop_env, region);
        }
        return std::nullopt;
      }
      case Stmt::Kind::kIf: {
        int cond = eval(*s.expr, env, region);
        HLSHC_CHECK(dfg_.is_const(cond),
                    "only compile-time-resolvable if() is supported "
                    "(data-dependent control must be expressed as ?:)");
        if (dfg_.const_value(cond)) return exec_stmt(*s.body, env, region);
        if (s.els) return exec_stmt(*s.els, env, region);
        return std::nullopt;
      }
      case Stmt::Kind::kExpr:
        call_function(*s.expr, env, region, /*want_value=*/false);
        return std::nullopt;
      case Stmt::Kind::kReturn:
        return s.expr ? std::optional<int>(eval(*s.expr, env, region))
                      : std::optional<int>(-1);
    }
    HLSHC_UNREACHABLE("stmt kind");
  }

  const Program& program_;
  const LowerOptions& options_;
  Dfg dfg_;
  std::map<int64_t, int> const_cache_;
  std::map<int64_t, int> leaf_inputs_;
  std::map<int64_t, int> leaf_outputs_;
  bool leaf_mode_ = false;
  int next_region_ = 1;
};

}  // namespace

Dfg lower(const Program& program, const std::string& top,
          const LowerOptions& options) {
  return Lowerer(program, options).run(top);
}

LeafDfg lower_leaf(const Program& program, const std::string& function,
                   int64_t off_value) {
  LowerOptions options;
  return Lowerer(program, options).run_leaf(function, off_value);
}

std::vector<DepEdge> dependence_edges(const Dfg& dfg) {
  std::vector<DepEdge> edges;
  const int n = static_cast<int>(dfg.nodes.size());
  for (int i = 0; i < n; ++i) {
    const DNode& nd = dfg.node(i);
    for (int opnd : {nd.a, nd.b, nd.c})
      if (opnd >= 0 && !dfg.is_const(opnd))
        edges.push_back(DepEdge{opnd, i, 0});
  }
  // Memory ordering per exact address: RAW latency 1 (the write commits at
  // the clock edge), WAW latency 1, WAR latency 0 (combinational read may
  // share the writer's cycle).
  std::map<int64_t, int> last_store;
  std::map<int64_t, std::vector<int>> loads_since_store;
  for (int i = 0; i < n; ++i) {
    const DNode& nd = dfg.node(i);
    if (nd.op == DOp::kLoad) {
      auto it = last_store.find(nd.imm);
      if (it != last_store.end())
        edges.push_back(DepEdge{it->second, i, 1});
      loads_since_store[nd.imm].push_back(i);
    } else if (nd.op == DOp::kStore) {
      auto it = last_store.find(nd.imm);
      if (it != last_store.end()) edges.push_back(DepEdge{it->second, i, 1});
      for (int ld : loads_since_store[nd.imm])
        edges.push_back(DepEdge{ld, i, 0});
      loads_since_store[nd.imm].clear();
      last_store[nd.imm] = i;
    }
  }
  return edges;
}

void interpret(const Dfg& dfg, std::vector<int32_t>& memory) {
  HLSHC_CHECK(static_cast<int>(memory.size()) >= dfg.mem_size,
              "memory image too small");
  std::vector<int64_t> val(dfg.nodes.size(), 0);
  for (size_t i = 0; i < dfg.nodes.size(); ++i) {
    const DNode& nd = dfg.nodes[i];
    auto v = [&](int k) { return k >= 0 ? val[static_cast<size_t>(k)] : 0; };
    switch (nd.op) {
      case DOp::kConst: val[i] = nd.imm; break;
      case DOp::kAdd: val[i] = static_cast<int32_t>(v(nd.a) + v(nd.b)); break;
      case DOp::kSub: val[i] = static_cast<int32_t>(v(nd.a) - v(nd.b)); break;
      case DOp::kMul: val[i] = static_cast<int32_t>(v(nd.a) * v(nd.b)); break;
      case DOp::kShl:
        val[i] = static_cast<int32_t>(v(nd.a) << (v(nd.b) & 31));
        break;
      case DOp::kShr:
        val[i] = static_cast<int32_t>(static_cast<int32_t>(v(nd.a)) >>
                                      (v(nd.b) & 31));
        break;
      case DOp::kAnd: val[i] = v(nd.a) & v(nd.b); break;
      case DOp::kOr: val[i] = v(nd.a) | v(nd.b); break;
      case DOp::kXor: val[i] = v(nd.a) ^ v(nd.b); break;
      case DOp::kLt: val[i] = v(nd.a) < v(nd.b); break;
      case DOp::kGt: val[i] = v(nd.a) > v(nd.b); break;
      case DOp::kLe: val[i] = v(nd.a) <= v(nd.b); break;
      case DOp::kGe: val[i] = v(nd.a) >= v(nd.b); break;
      case DOp::kEq: val[i] = v(nd.a) == v(nd.b); break;
      case DOp::kNe: val[i] = v(nd.a) != v(nd.b); break;
      case DOp::kSelect: val[i] = v(nd.a) ? v(nd.b) : v(nd.c); break;
      case DOp::kNeg: val[i] = static_cast<int32_t>(-v(nd.a)); break;
      case DOp::kNot: val[i] = !v(nd.a); break;
      case DOp::kCastShort: val[i] = static_cast<int16_t>(v(nd.a)); break;
      case DOp::kLoad:
        val[i] = memory[static_cast<size_t>(nd.imm)];
        break;
      case DOp::kStore:
        memory[static_cast<size_t>(nd.imm)] =
            static_cast<int32_t>(static_cast<int16_t>(v(nd.a)));
        break;
      case DOp::kInput:
        HLSHC_CHECK(false, "interpret() does not support leaf-mode DFGs");
        break;
    }
  }
}

}  // namespace hlshc::hls
