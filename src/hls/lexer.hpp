// Lexer for the C subset consumed by the mini HLS compiler.
//
// Handles exactly what HLS-able fixed-point kernels like the ISO IDCT use:
// identifiers, integer literals, the full C operator set we schedule
// (+ - * << >> & | ^ ?: comparisons, assignment), punctuation, both
// comment styles, and #define object macros (expanded textually, like a
// one-level preprocessor).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace hlshc::hls {

enum class Tok : uint8_t {
  kEnd, kIdent, kNumber,
  kKwInt, kKwShort, kKwVoid, kKwStatic, kKwFor, kKwIf, kKwElse, kKwReturn,
  kLParen, kRParen, kLBrace, kRBrace, kLBracket, kRBracket,
  kComma, kSemi,
  kAssign, kPlus, kMinus, kStar, kShl, kShr, kAmp, kPipe, kCaret,
  kLt, kGt, kLe, kGe, kEqEq, kNe, kNot, kQuestion, kColon, kPlusPlus,
};

struct Token {
  Tok kind = Tok::kEnd;
  std::string text;
  int64_t value = 0;  ///< for kNumber
  int line = 0;
};

/// Tokenizes `source`; expands #define NAME VALUE macros; strips comments.
/// Throws hlshc::Error with a line number on unknown input.
std::vector<Token> lex(const std::string& source);

const char* token_name(Tok t);

}  // namespace hlshc::hls
