#include "hls/schedule.hpp"

#include <algorithm>
#include <map>

#include "base/check.hpp"
#include "obs/trace.hpp"

namespace hlshc::hls {

double dfg_op_delay(DOp op, const synth::DelayModel& delay) {
  switch (op) {
    case DOp::kMul: return delay.dsp_mul;
    // The DFG has no widths: a 32-bit carry chain is priced as a fixed
    // constant rather than adder_base + w * carry_per_bit. The literals are
    // the historical calibration — kept verbatim so chaining decisions (and
    // through them every HLS Table II row) are reproducible bit for bit.
    case DOp::kAdd: case DOp::kSub: case DOp::kNeg: return 0.7;
    case DOp::kLt: case DOp::kGt: case DOp::kLe: case DOp::kGe:
    case DOp::kEq: case DOp::kNe: return 0.6;
    case DOp::kSelect: return 0.2;
    case DOp::kAnd: case DOp::kOr: case DOp::kXor: case DOp::kNot:
      return delay.logic_level;
    case DOp::kLoad: return delay.mem_read;
    case DOp::kStore: return delay.logic_level;
    case DOp::kShl: case DOp::kShr: case DOp::kCastShort: return 0.0;
    case DOp::kConst: case DOp::kInput: return 0.0;
  }
  return 0.0;
}

bool is_shared_output(const Dfg& dfg, int node,
                      const ScheduleOptions& options) {
  DOp op = dfg.node(node).op;
  if (op == DOp::kMul) return true;
  if (options.add_units > 0 &&
      (op == DOp::kAdd || op == DOp::kSub || op == DOp::kNeg))
    return true;
  return false;
}

Schedule schedule(const Dfg& dfg, const ScheduleOptions& options) {
  obs::Span span("hls.schedule", "hls");
  span.arg("ops", static_cast<int64_t>(dfg.nodes.size()))
      .arg("mul_units", static_cast<int64_t>(options.mul_units));
  const int n = static_cast<int>(dfg.nodes.size());
  Schedule sched;
  sched.cycle.assign(static_cast<size_t>(n), -2);  // -2 = unscheduled

  // Dependence structure. Results of *shared* functional units (multipliers
  // always; adders when adder sharing is on) are registered at the unit
  // output, so their consumers start one cycle later — this both models the
  // FU output register and guarantees the bound datapath has no structural
  // combinational cycles through shared-unit input muxes.
  std::vector<std::vector<DepEdge>> preds(static_cast<size_t>(n));
  std::vector<std::vector<int>> succs(static_cast<size_t>(n));
  for (DepEdge e : dependence_edges(dfg)) {
    if (e.latency == 0 && is_shared_output(dfg, e.from, options))
      e.latency = 1;
    preds[static_cast<size_t>(e.to)].push_back(e);
    succs[static_cast<size_t>(e.from)].push_back(e.to);
  }

  // Priority: height (longest path to a sink) — classic list scheduling.
  std::vector<int> height(static_cast<size_t>(n), 0);
  for (int i = n - 1; i >= 0; --i)
    for (int s : succs[static_cast<size_t>(i)])
      height[static_cast<size_t>(i)] = std::max(
          height[static_cast<size_t>(i)], height[static_cast<size_t>(s)] + 1);

  // Constants are free.
  for (int i = 0; i < n; ++i)
    if (dfg.is_const(i)) sched.cycle[static_cast<size_t>(i)] = -1;

  // Chain delay accumulated inside a node's cycle.
  std::vector<double> chain(static_cast<size_t>(n), 0.0);
  const double budget =
      options.speculative ? options.cycle_budget_ns * 1.3
                          : options.cycle_budget_ns;
  auto op_chain_delay = [&](DOp op) {
    double d = dfg_op_delay(op, options.delay);
    if (options.speculative &&
        (op == DOp::kSelect || op == DOp::kLt || op == DOp::kGt ||
         op == DOp::kLe || op == DOp::kGe))
      d *= 0.5;  // speculation hides compare/select latency
    return d;
  };

  // Region processing order: regions are scheduled strictly one after
  // another (region 0 may be empty when everything was outlined).
  std::vector<std::vector<int>> by_region(
      static_cast<size_t>(std::max(1, dfg.regions)));
  for (int i = 0; i < n; ++i) {
    if (dfg.is_const(i)) continue;
    by_region[static_cast<size_t>(dfg.node(i).region)].push_back(i);
  }

  int t = 0;
  int max_mul = 0, max_add = 0;
  for (size_t region = 0; region < by_region.size(); ++region) {
    std::vector<int>& todo = by_region[region];
    if (todo.empty()) continue;
    if (region > 0) t += options.region_overhead;

    size_t remaining = todo.size();
    int guard = 0;
    while (remaining > 0) {
      HLSHC_CHECK(++guard < 1000000, "scheduler did not converge");
      int muls = 0, adds = 0, reads = 0, writes = 0;
      // Chained ops become ready mid-cycle when their producer lands in
      // this cycle, so iterate the ready computation to a fixpoint.
      bool progressed = true;
      while (progressed) {
        progressed = false;
        std::vector<int> ready;
        for (int i : todo) {
          if (sched.cycle[static_cast<size_t>(i)] != -2) continue;
          bool ok = true;
          for (const DepEdge& e : preds[static_cast<size_t>(i)]) {
            int pc = sched.cycle[static_cast<size_t>(e.from)];
            if (pc == -2 || pc + e.latency > t) {
              ok = false;
              break;
            }
          }
          if (ok) ready.push_back(i);
        }
        std::sort(ready.begin(), ready.end(), [&](int a, int b) {
          return height[static_cast<size_t>(a)] >
                 height[static_cast<size_t>(b)];
        });

        for (int i : ready) {
        const DNode& nd = dfg.node(i);
        // Chaining feasibility: accumulate the chain through same-cycle
        // producers.
        double in_chain = 0.0;
        bool same_cycle_producer = false;
        for (const DepEdge& e : preds[static_cast<size_t>(i)]) {
          if (e.latency != 0) continue;
          if (sched.cycle[static_cast<size_t>(e.from)] == t) {
            same_cycle_producer = true;
            in_chain = std::max(in_chain, chain[static_cast<size_t>(e.from)]);
          }
        }
        if (same_cycle_producer && !options.chaining) continue;
        double my_chain = in_chain + op_chain_delay(nd.op);
        if (my_chain > budget) continue;

        // Resources.
        switch (nd.op) {
          case DOp::kMul:
            if (muls >= options.mul_units) continue;
            break;
          case DOp::kAdd:
          case DOp::kSub:
          case DOp::kNeg:
            if (options.add_units > 0 && adds >= options.add_units) continue;
            break;
          case DOp::kLoad:
            if (reads >= options.mem_read_ports) continue;
            break;
          case DOp::kStore:
            if (writes >= options.mem_write_ports) continue;
            break;
          default:
            break;
        }

        sched.cycle[static_cast<size_t>(i)] = t;
        chain[static_cast<size_t>(i)] = my_chain;
        switch (nd.op) {
          case DOp::kMul: ++muls; break;
          case DOp::kAdd: case DOp::kSub: case DOp::kNeg: ++adds; break;
          case DOp::kLoad: ++reads; break;
          case DOp::kStore: ++writes; break;
          default: break;
        }
        --remaining;
        progressed = true;
        }
      }
      max_mul = std::max(max_mul, muls);
      max_add = std::max(max_add, adds);
      ++t;
    }
  }
  sched.length = t;
  sched.mul_units_used = std::max(1, max_mul);
  sched.add_units_used = max_add;
  return sched;
}

}  // namespace hlshc::hls
