// HLS backend: FSM + datapath code generation.
//
// codegen_sequential() turns a scheduled DFG into a netlist kernel:
//
//   * a state counter steps through the schedule while `running`;
//   * shared functional units — multipliers (bound to DSPs, which is why
//     the paper's Bambu designs use only a handful of DSP blocks), shared
//     adders when configured, and the memory read/write ports — receive
//     their per-state operands through state-selected input muxes;
//   * cheap operators (logic, selects, unshared adds, wiring) are
//     instantiated per operation;
//   * values that live across cycles are kept in a register file allocated
//     by linear-scan over live ranges (a fresh register per value would
//     triple the flip-flop bill);
//   * the kernel owns the block RAM; an external port (ext_*) lets the
//     AXI-Stream adapter fill and drain it while the kernel is idle.
//
// Kernel interface: start -> done, ext_we/ext_waddr/ext_wdata,
// ext_raddr -> ext_rdata.
#pragma once

#include <string>

#include "hls/schedule.hpp"
#include "netlist/ir.hpp"

namespace hlshc::hls {

struct KernelResult {
  netlist::Design design;
  int latency = 0;        ///< FSM states from start to done
  int value_regs = 0;     ///< registers allocated by linear scan
  int mul_units = 0;
  int add_units = 0;      ///< 0 when adders are unshared
};

KernelResult codegen_sequential(const Dfg& dfg, const Schedule& sched,
                                const ScheduleOptions& options,
                                const std::string& name);

}  // namespace hlshc::hls
