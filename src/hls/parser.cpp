#include <map>

#include "base/check.hpp"
#include "hls/ast.hpp"
#include "hls/lexer.hpp"

namespace hlshc::hls {

namespace {

/// Recursive-descent parser with C precedence for the supported operators.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : toks_(std::move(tokens)) {}

  Program parse_program() {
    Program prog;
    while (!at(Tok::kEnd)) prog.functions.push_back(parse_function());
    return prog;
  }

 private:
  const Token& cur() const { return toks_[pos_]; }
  bool at(Tok k) const { return cur().kind == k; }
  Token eat() { return toks_[pos_++]; }
  Token expect(Tok k) {
    HLSHC_CHECK(at(k), "line " << cur().line << ": expected '"
                               << token_name(k) << "', found '"
                               << token_name(cur().kind) << '\'');
    return eat();
  }
  bool accept(Tok k) {
    if (at(k)) {
      eat();
      return true;
    }
    return false;
  }

  Function parse_function() {
    accept(Tok::kKwStatic);
    bool returns_value;
    if (accept(Tok::kKwVoid)) {
      returns_value = false;
    } else if (accept(Tok::kKwInt) || accept(Tok::kKwShort)) {
      returns_value = true;
    } else {
      HLSHC_CHECK(false, "line " << cur().line
                                 << ": expected a function return type");
      returns_value = false;
    }
    Function fn;
    fn.returns_value = returns_value;
    fn.name = expect(Tok::kIdent).text;
    expect(Tok::kLParen);
    if (!at(Tok::kRParen)) {
      do {
        Param p;
        if (accept(Tok::kKwShort)) p.is_short = true;
        else expect(Tok::kKwInt);
        p.name = expect(Tok::kIdent).text;
        if (accept(Tok::kLBracket)) {
          p.is_array = true;
          p.array_size = static_cast<int>(expect(Tok::kNumber).value);
          expect(Tok::kRBracket);
        }
        fn.params.push_back(std::move(p));
      } while (accept(Tok::kComma));
    }
    expect(Tok::kRParen);
    fn.body = parse_block();
    return fn;
  }

  StmtPtr parse_block() {
    expect(Tok::kLBrace);
    auto block = std::make_unique<Stmt>();
    block->kind = Stmt::Kind::kBlock;
    while (!at(Tok::kRBrace)) block->stmts.push_back(parse_statement());
    expect(Tok::kRBrace);
    return block;
  }

  StmtPtr parse_statement() {
    if (at(Tok::kLBrace)) return parse_block();
    if (at(Tok::kKwInt) || at(Tok::kKwShort)) return parse_decl();
    if (accept(Tok::kKwReturn)) {
      auto s = std::make_unique<Stmt>();
      s->kind = Stmt::Kind::kReturn;
      if (!at(Tok::kSemi)) s->expr = parse_expr();
      expect(Tok::kSemi);
      return s;
    }
    if (accept(Tok::kKwFor)) return parse_for();
    if (accept(Tok::kKwIf)) return parse_if();
    // assignment / store / expression statement
    StmtPtr s = parse_simple_statement();
    expect(Tok::kSemi);
    return s;
  }

  StmtPtr parse_decl() {
    eat();  // int | short (locals are promoted to int anyway)
    auto s = std::make_unique<Stmt>();
    s->kind = Stmt::Kind::kDecl;
    s->name = expect(Tok::kIdent).text;
    if (accept(Tok::kAssign)) s->expr = parse_expr();
    expect(Tok::kSemi);
    return s;
  }

  /// assignment, array store, increment, or call — without the ';'.
  StmtPtr parse_simple_statement() {
    HLSHC_CHECK(at(Tok::kIdent), "line " << cur().line
                                         << ": expected a statement");
    std::string name = eat().text;
    auto s = std::make_unique<Stmt>();
    if (accept(Tok::kLBracket)) {
      s->kind = Stmt::Kind::kStore;
      s->name = std::move(name);
      s->index = parse_expr();
      expect(Tok::kRBracket);
      expect(Tok::kAssign);
      s->expr = parse_expr();
      return s;
    }
    if (accept(Tok::kAssign)) {
      s->kind = Stmt::Kind::kAssign;
      s->name = std::move(name);
      s->expr = parse_expr();
      return s;
    }
    if (accept(Tok::kPlusPlus)) {
      // i++ desugars to i = i + 1.
      s->kind = Stmt::Kind::kAssign;
      s->name = name;
      auto var = std::make_unique<Expr>();
      var->kind = Expr::Kind::kVar;
      var->name = name;
      auto one = std::make_unique<Expr>();
      one->kind = Expr::Kind::kNumber;
      one->value = 1;
      auto add = std::make_unique<Expr>();
      add->kind = Expr::Kind::kBinary;
      add->op = BinOp::kAdd;
      add->a = std::move(var);
      add->b = std::move(one);
      s->expr = std::move(add);
      return s;
    }
    if (at(Tok::kLParen)) {
      s->kind = Stmt::Kind::kExpr;
      s->expr = parse_call(std::move(name));
      return s;
    }
    HLSHC_CHECK(false, "line " << cur().line << ": malformed statement");
    return nullptr;
  }

  StmtPtr parse_for() {
    auto s = std::make_unique<Stmt>();
    s->kind = Stmt::Kind::kFor;
    expect(Tok::kLParen);
    s->init = at(Tok::kKwInt) || at(Tok::kKwShort)
                  ? parse_decl()
                  : [&] {
                      StmtPtr st = parse_simple_statement();
                      expect(Tok::kSemi);
                      return st;
                    }();
    s->expr = parse_expr();
    expect(Tok::kSemi);
    s->step = parse_simple_statement();
    expect(Tok::kRParen);
    s->body = parse_statement();
    return s;
  }

  StmtPtr parse_if() {
    auto s = std::make_unique<Stmt>();
    s->kind = Stmt::Kind::kIf;
    expect(Tok::kLParen);
    s->expr = parse_expr();
    expect(Tok::kRParen);
    s->body = parse_statement();
    if (accept(Tok::kKwElse)) s->els = parse_statement();
    return s;
  }

  ExprPtr parse_call(std::string name) {
    expect(Tok::kLParen);
    auto e = std::make_unique<Expr>();
    e->kind = Expr::Kind::kCall;
    e->name = std::move(name);
    if (!at(Tok::kRParen)) {
      do {
        e->args.push_back(parse_expr());
      } while (accept(Tok::kComma));
    }
    expect(Tok::kRParen);
    return e;
  }

  // Precedence climbing: ternary < or < xor < and < equality < relational
  // < shift < additive < multiplicative < unary < primary.
  ExprPtr parse_expr() { return parse_ternary(); }

  ExprPtr parse_ternary() {
    ExprPtr cond = parse_or();
    if (!accept(Tok::kQuestion)) return cond;
    auto e = std::make_unique<Expr>();
    e->kind = Expr::Kind::kTernary;
    e->a = std::move(cond);
    e->b = parse_expr();
    expect(Tok::kColon);
    e->c = parse_ternary();
    return e;
  }

  ExprPtr binary(BinOp op, ExprPtr a, ExprPtr b) {
    auto e = std::make_unique<Expr>();
    e->kind = Expr::Kind::kBinary;
    e->op = op;
    e->a = std::move(a);
    e->b = std::move(b);
    return e;
  }

  ExprPtr parse_or() {
    ExprPtr e = parse_xor();
    while (accept(Tok::kPipe)) e = binary(BinOp::kOr, std::move(e), parse_xor());
    return e;
  }
  ExprPtr parse_xor() {
    ExprPtr e = parse_and();
    while (accept(Tok::kCaret))
      e = binary(BinOp::kXor, std::move(e), parse_and());
    return e;
  }
  ExprPtr parse_and() {
    ExprPtr e = parse_equality();
    while (accept(Tok::kAmp))
      e = binary(BinOp::kAnd, std::move(e), parse_equality());
    return e;
  }
  ExprPtr parse_equality() {
    ExprPtr e = parse_relational();
    while (true) {
      if (accept(Tok::kEqEq))
        e = binary(BinOp::kEq, std::move(e), parse_relational());
      else if (accept(Tok::kNe))
        e = binary(BinOp::kNe, std::move(e), parse_relational());
      else
        return e;
    }
  }
  ExprPtr parse_relational() {
    ExprPtr e = parse_shift();
    while (true) {
      if (accept(Tok::kLt)) e = binary(BinOp::kLt, std::move(e), parse_shift());
      else if (accept(Tok::kGt))
        e = binary(BinOp::kGt, std::move(e), parse_shift());
      else if (accept(Tok::kLe))
        e = binary(BinOp::kLe, std::move(e), parse_shift());
      else if (accept(Tok::kGe))
        e = binary(BinOp::kGe, std::move(e), parse_shift());
      else
        return e;
    }
  }
  ExprPtr parse_shift() {
    ExprPtr e = parse_additive();
    while (true) {
      if (accept(Tok::kShl))
        e = binary(BinOp::kShl, std::move(e), parse_additive());
      else if (accept(Tok::kShr))
        e = binary(BinOp::kShr, std::move(e), parse_additive());
      else
        return e;
    }
  }
  ExprPtr parse_additive() {
    ExprPtr e = parse_multiplicative();
    while (true) {
      if (accept(Tok::kPlus))
        e = binary(BinOp::kAdd, std::move(e), parse_multiplicative());
      else if (accept(Tok::kMinus))
        e = binary(BinOp::kSub, std::move(e), parse_multiplicative());
      else
        return e;
    }
  }
  ExprPtr parse_multiplicative() {
    ExprPtr e = parse_unary();
    while (accept(Tok::kStar))
      e = binary(BinOp::kMul, std::move(e), parse_unary());
    return e;
  }

  ExprPtr parse_unary() {
    if (accept(Tok::kMinus)) {
      auto e = std::make_unique<Expr>();
      e->kind = Expr::Kind::kNeg;
      e->a = parse_unary();
      return e;
    }
    if (accept(Tok::kNot)) {
      auto e = std::make_unique<Expr>();
      e->kind = Expr::Kind::kNot;
      e->a = parse_unary();
      return e;
    }
    // "(short)" cast or parenthesized expression.
    if (accept(Tok::kLParen)) {
      if (accept(Tok::kKwShort)) {
        expect(Tok::kRParen);
        auto e = std::make_unique<Expr>();
        e->kind = Expr::Kind::kCastShort;
        e->a = parse_unary();
        return e;
      }
      if (accept(Tok::kKwInt)) {  // (int) cast is a no-op in this subset
        expect(Tok::kRParen);
        return parse_unary();
      }
      ExprPtr e = parse_expr();
      expect(Tok::kRParen);
      return e;
    }
    return parse_primary();
  }

  ExprPtr parse_primary() {
    if (at(Tok::kNumber)) {
      auto e = std::make_unique<Expr>();
      e->kind = Expr::Kind::kNumber;
      e->value = eat().value;
      return e;
    }
    HLSHC_CHECK(at(Tok::kIdent), "line " << cur().line
                                         << ": expected an expression");
    std::string name = eat().text;
    if (at(Tok::kLParen)) return parse_call(std::move(name));
    if (accept(Tok::kLBracket)) {
      auto e = std::make_unique<Expr>();
      e->kind = Expr::Kind::kIndex;
      e->name = std::move(name);
      e->a = parse_expr();
      expect(Tok::kRBracket);
      return e;
    }
    auto e = std::make_unique<Expr>();
    e->kind = Expr::Kind::kVar;
    e->name = std::move(name);
    return e;
  }

  std::vector<Token> toks_;
  size_t pos_ = 0;
};

}  // namespace

Program parse(const std::string& source) {
  return Parser(lex(source)).parse_program();
}

}  // namespace hlshc::hls
