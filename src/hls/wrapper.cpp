#include "hls/wrapper.hpp"

#include <map>
#include <vector>

#include "axis/stream.hpp"
#include "framework/compose.hpp"
#include "netlist/instantiate.hpp"
#include "rtl/units.hpp"

namespace hlshc::hls {

namespace {

using netlist::Design;
using netlist::kInvalidNode;
using netlist::NodeId;

constexpr int kShort = 16;

}  // namespace

netlist::Design wrap_axis_sequential(const KernelResult& kernel,
                                     const std::string& name,
                                     int out_width) {
  HLSHC_CHECK(out_width >= 1 && out_width <= kShort,
              "bad wrapper out_width " << out_width);
  Design d(name);
  std::array<NodeId, 8> lane;
  for (int c = 0; c < 8; ++c)
    lane[static_cast<size_t>(c)] =
        d.input(axis::lane_port("s", c), axis::kInElemWidth);
  NodeId s_valid = d.input("s_tvalid", 1);
  d.input("s_tlast", 1);
  NodeId m_ready = d.input("m_tready", 1);

  // Adapter state. Phases: 0 LOAD, 1 RUN, 2 READ, 3 EMIT.
  NodeId phase = d.reg(2, 0, "phase");
  NodeId have = d.reg(1, 0, "have");
  NodeId widx = d.reg(6, 0, "widx");
  NodeId start_pending = d.reg(1, 0, "start_pending");
  NodeId relem = d.reg(3, 0, "relem");
  NodeId orow = d.reg(3, 0, "orow");
  std::array<NodeId, 8> staging, ostg;
  for (int c = 0; c < 8; ++c) {
    staging[static_cast<size_t>(c)] =
        d.reg(axis::kInElemWidth, 0, "stg" + std::to_string(c));
    ostg[static_cast<size_t>(c)] =
        d.reg(out_width, 0, "ostg" + std::to_string(c));
  }

  auto phase_is = [&](int p) { return d.eq(phase, d.constant(2, p)); };
  NodeId in_load = phase_is(0);
  NodeId in_run = phase_is(1);
  NodeId in_read = phase_is(2);
  NodeId in_emit = phase_is(3);

  // ---- LOAD ------------------------------------------------------------------
  NodeId s_ready = d.band(in_load, d.bnot(have, 1), 1);
  NodeId in_fire = d.band(s_valid, s_ready, 1);
  d.output("s_tready", s_ready);
  for (int c = 0; c < 8; ++c)
    d.set_reg_next(staging[static_cast<size_t>(c)],
                   lane[static_cast<size_t>(c)], in_fire);

  NodeId wlane = d.slice(widx, 2, 0);
  NodeId wlane7 = d.eq(wlane, d.constant(3, 7));
  NodeId drain = d.band(in_load, have, 1);
  NodeId widx63 = d.eq(widx, d.constant(6, 63));
  NodeId load_done = d.band(drain, widx63, 1);

  std::vector<NodeId> stage_elems(staging.begin(), staging.end());
  NodeId ext_wdata =
      d.sext(rtl::mux_by_index(d, wlane, stage_elems), kShort);
  // Kernel external memory port bindings (comb, from adapter registers).
  NodeId ext_we = drain;
  NodeId ext_waddr = widx;
  NodeId ext_raddr = d.concat(orow, relem);

  d.set_reg_next(have,
                 d.mux(in_fire, d.constant(1, 1),
                       d.mux(d.band(drain, wlane7, 1), d.constant(1, 0),
                             d.band(have, in_load, 1), 1),
                       1));
  d.set_reg_next(widx, d.mux(in_load,
                             d.mux(drain, d.add(widx, d.constant(6, 1), 6),
                                   widx, 6),
                             d.constant(6, 0), 6));
  d.set_reg_next(start_pending, load_done);

  // ---- kernel instance ----------------------------------------------------------
  std::map<std::string, NodeId> bindings = {
      {"start", start_pending},
      {"ext_we", ext_we},
      {"ext_waddr", ext_waddr},
      {"ext_wdata", ext_wdata},
      {"ext_raddr", ext_raddr},
  };
  auto kout = netlist::instantiate(d, kernel.design, bindings);
  NodeId done = kout.at("done");
  NodeId ext_rdata = kout.at("ext_rdata");

  // ---- READ / EMIT -----------------------------------------------------------------
  NodeId relem7 = d.eq(relem, d.constant(3, 7));
  for (int c = 0; c < 8; ++c) {
    NodeId en = d.band(in_read, d.eq(relem, d.constant(3, c)), 1);
    d.set_reg_next(ostg[static_cast<size_t>(c)],
                   d.slice(ext_rdata, out_width - 1, 0), en);
  }
  d.set_reg_next(relem, d.mux(in_read, d.add(relem, d.constant(3, 1), 3),
                              d.constant(3, 0), 3));

  NodeId m_valid = in_emit;
  NodeId out_fire = d.band(m_valid, m_ready, 1);
  NodeId orow7 = d.eq(orow, d.constant(3, 7));
  d.output("m_tvalid", m_valid);
  d.output("m_tlast", orow7);
  for (int c = 0; c < 8; ++c)
    d.output(axis::lane_port("m", c), ostg[static_cast<size_t>(c)]);
  d.set_reg_next(orow, d.mux(d.band(out_fire, d.bnot(orow7, 1), 1),
                             d.add(orow, d.constant(3, 1), 3),
                             d.mux(in_load, d.constant(3, 0), orow, 3), 3));

  // ---- phase transitions ---------------------------------------------------------
  NodeId next_from_load = d.mux(load_done, d.constant(2, 1), d.constant(2, 0), 2);
  NodeId next_from_run = d.mux(done, d.constant(2, 2), d.constant(2, 1), 2);
  NodeId next_from_read =
      d.mux(relem7, d.constant(2, 3), d.constant(2, 2), 2);
  NodeId next_from_emit =
      d.mux(out_fire,
            d.mux(orow7, d.constant(2, 0), d.constant(2, 2), 2),
            d.constant(2, 3), 2);
  NodeId phase_next =
      d.mux(in_load, next_from_load,
            d.mux(in_run, next_from_run,
                  d.mux(in_read, next_from_read, next_from_emit, 2), 2),
            2);
  d.set_reg_next(phase, phase_next);
  return d;
}

netlist::Design leaf_to_netlist(const LeafDfg& leaf, const std::string& name,
                                int input_width) {
  Design d(name);
  constexpr int kWord = 32;
  const Dfg& g = leaf.dfg;
  std::vector<NodeId> out(g.nodes.size(), kInvalidNode);
  std::map<int64_t, int> input_index;
  for (size_t k = 0; k < leaf.input_addrs.size(); ++k)
    input_index[leaf.input_addrs[k]] = static_cast<int>(k);

  for (size_t i = 0; i < g.nodes.size(); ++i) {
    const DNode& nd = g.nodes[i];
    auto v = [&](int k) { return out[static_cast<size_t>(k)]; };
    switch (nd.op) {
      case DOp::kConst:
        out[i] = d.constant(kWord, nd.imm);
        break;
      case DOp::kInput: {
        int k = input_index.at(nd.imm);
        out[i] = d.sext(d.input("i" + std::to_string(k), input_width), kWord);
        break;
      }
      case DOp::kAdd: out[i] = d.add(v(nd.a), v(nd.b), kWord); break;
      case DOp::kSub: out[i] = d.sub(v(nd.a), v(nd.b), kWord); break;
      case DOp::kMul: out[i] = d.mul(v(nd.a), v(nd.b), kWord); break;
      case DOp::kNeg: out[i] = d.neg(v(nd.a), kWord); break;
      case DOp::kShl:
      case DOp::kShr: {
        HLSHC_CHECK(g.is_const(nd.b), "shift amount must be constant");
        int amt = static_cast<int>(g.const_value(nd.b)) & 31;
        out[i] = nd.op == DOp::kShl ? d.shl(v(nd.a), amt, kWord)
                                    : d.ashr(v(nd.a), amt, kWord);
        break;
      }
      case DOp::kAnd: out[i] = d.band(v(nd.a), v(nd.b), kWord); break;
      case DOp::kOr: out[i] = d.bor(v(nd.a), v(nd.b), kWord); break;
      case DOp::kXor: out[i] = d.bxor(v(nd.a), v(nd.b), kWord); break;
      case DOp::kLt: out[i] = d.zext(d.slt(v(nd.a), v(nd.b)), kWord); break;
      case DOp::kGt: out[i] = d.zext(d.sgt(v(nd.a), v(nd.b)), kWord); break;
      case DOp::kLe: out[i] = d.zext(d.sle(v(nd.a), v(nd.b)), kWord); break;
      case DOp::kGe: out[i] = d.zext(d.sge(v(nd.a), v(nd.b)), kWord); break;
      case DOp::kEq: out[i] = d.zext(d.eq(v(nd.a), v(nd.b)), kWord); break;
      case DOp::kNe: out[i] = d.zext(d.ne(v(nd.a), v(nd.b)), kWord); break;
      case DOp::kSelect: {
        NodeId cond = d.ne(v(nd.a), d.constant(kWord, 0));
        out[i] = d.mux(cond, v(nd.b), v(nd.c), kWord);
        break;
      }
      case DOp::kNot:
        out[i] = d.zext(d.eq(v(nd.a), d.constant(kWord, 0)), kWord);
        break;
      case DOp::kCastShort:
        out[i] = d.sext(d.slice(v(nd.a), kShort - 1, 0), kWord);
        break;
      case DOp::kLoad:
      case DOp::kStore:
        HLSHC_CHECK(false, "leaf function must not touch memory");
        break;
    }
  }
  for (size_t k = 0; k < leaf.outputs.size(); ++k)
    d.output("o" + std::to_string(k),
             out[static_cast<size_t>(leaf.outputs[k].second)]);
  d.validate();
  return d;
}

StreamingDesign build_streaming_design(const LeafDfg& row, const LeafDfg& col,
                                       int row_stages, int col_stages,
                                       const std::string& name) {
  xls::PipelineResult rk = xls::pipeline_function(
      leaf_to_netlist(row, name + "_row", axis::kInElemWidth), row_stages);
  xls::PipelineResult ck = xls::pipeline_function(
      leaf_to_netlist(col, name + "_col", kShort), col_stages);
  netlist::Design wrapped = framework::compose_row_col(
      framework::PassKernel{rk.design, rk.latency},
      framework::PassKernel{ck.design, ck.latency}, kShort, name);
  return StreamingDesign{std::move(wrapped), rk.latency, ck.latency};
}

}  // namespace hlshc::hls
