// AXI-Stream wrappers around compiled HLS kernels.
//
// wrap_axis_sequential(): the Bambu flow. Bambu cannot generate a stream
// adapter, so (as in the paper) a hand-written one surrounds the kernel:
// it fills the kernel's block RAM one element per cycle (the stream stalls
// while a beat drains), pulses start, waits for done, then reads the RAM
// back out row by row. Everything is strictly sequential — the mechanism
// behind the paper's Bambu periodicity of ~323/185 cycles and throughput
// around a tenth of the Verilog baseline.
//
// build_streaming_design(): the pragma-optimized Vivado HLS flow. With
// `#pragma HLS INTERFACE axis`, buf scalarization and PIPELINE, VHLS
// produces a row-rate streaming engine: the compiled idctrow dataflow
// processes each arriving beat, ping-pong row buffers feed the compiled
// idctcol dataflow one column per cycle, and results stream out — latency
// 8+Lr+8+Lc+8 (26 cycles at one pipeline stage per pass, the paper's
// number) at periodicity ~8.
#pragma once

#include <string>

#include "hls/codegen.hpp"
#include "hls/dfg.hpp"
#include "xls/pipeline.hpp"

namespace hlshc::hls {

/// Sequential wrapper around a codegen_sequential() kernel. `out_width` is
/// the output sample width sliced from the kernel RAM read-back (9 bits =
/// the IDCT sample width; registry workloads with 12-bit outputs widen it).
netlist::Design wrap_axis_sequential(const KernelResult& kernel,
                                     const std::string& name,
                                     int out_width = 9);

/// Converts a leaf DFG (from lower_leaf) to a pure combinational netlist
/// function with ports i0..iN-1 (of `input_width` bits) and o0..oN-1
/// (32-bit); input/output order follows the sorted element addresses.
netlist::Design leaf_to_netlist(const LeafDfg& leaf, const std::string& name,
                                int input_width);

struct StreamingDesign {
  netlist::Design design;
  int row_latency = 0;  ///< pipeline stages in the row pass
  int col_latency = 0;
};

/// Streaming design from compiled row/col passes, each pipelined with the
/// given number of stages (>= 1).
StreamingDesign build_streaming_design(const LeafDfg& row, const LeafDfg& col,
                                       int row_stages, int col_stages,
                                       const std::string& name);

}  // namespace hlshc::hls
