#include "synth/schedule.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <map>
#include <vector>

#include "base/check.hpp"

namespace hlshc::synth {

using netlist::Design;
using netlist::Node;
using netlist::NodeId;
using netlist::Op;

const char* schedule_objective_name(ScheduleObjective objective) {
  switch (objective) {
    case ScheduleObjective::kDelayBalance:
      return "balance";
    case ScheduleObjective::kRegisterMin:
      return "regmin";
  }
  return "balance";
}

int parse_stages(std::string_view text, std::string_view what) {
  const std::string s(text);
  char* end = nullptr;
  errno = 0;
  const long v = std::strtol(s.c_str(), &end, 10);
  // First-char digit check: strtol quietly skips leading whitespace and
  // accepts sign characters, neither of which is a valid stage count.
  HLSHC_CHECK(!s.empty() && s[0] >= '0' && s[0] <= '9' &&
                  end == s.c_str() + s.size() && errno == 0,
              what << " must be a decimal stage count, got '" << s << '\'');
  HLSHC_CHECK(v <= kMaxScheduleStages,
              what << " must be at most " << kMaxScheduleStages
                   << " stages, got '" << s << '\'');
  return static_cast<int>(v);
}

ScheduleObjective parse_objective(std::string_view text,
                                  std::string_view what) {
  if (text == "balance") return ScheduleObjective::kDelayBalance;
  if (text == "regmin") return ScheduleObjective::kRegisterMin;
  throw Error(std::string(what) + " must be 'balance' or 'regmin', got '" +
              std::string(text) + '\'');
}

ScheduleResult schedule_pipeline(const Design& function,
                                 const ScheduleOptions& options) {
  for (size_t i = 0; i < function.node_count(); ++i) {
    Op op = function.node(static_cast<NodeId>(i)).op;
    HLSHC_CHECK(op != Op::Reg && op != Op::MemRead && op != Op::MemWrite,
                "schedule_pipeline requires a pure dataflow function");
  }
  const int stages = options.stages;
  HLSHC_CHECK(stages >= 0 && stages <= kMaxScheduleStages,
              "pipeline stages must be in [0, " << kMaxScheduleStages
                                                << "], got " << stages);

  ScheduleResult res{Design(function.name()), 0, stages, 0, 0};
  if (stages <= 0) {
    res.design = function;
    return res;
  }

  // Arrival times with the synthesis delay model (no I/O pads: the function
  // is an internal kernel).
  Mapper mapper(function, options.synth);
  const auto order = function.topo_order();
  const size_t n = function.node_count();
  std::vector<double> arrival(n, 0.0);
  double crit = 0.0;
  for (NodeId id : order) {
    const Node& nd = function.node(id);
    double in = 0.0;
    for (NodeId o : nd.operands)
      in = std::max(in, arrival[static_cast<size_t>(o)]);
    arrival[static_cast<size_t>(id)] = in + mapper.cost(id).delay_ns;
    crit = std::max(crit, arrival[static_cast<size_t>(id)]);
  }
  if (crit <= 0.0) crit = 1.0;

  // Greedy balanced stage assignment, monotone over operands.
  std::vector<int> stage(n, 0);
  for (NodeId id : order) {
    const Node& nd = function.node(id);
    int s = static_cast<int>(arrival[static_cast<size_t>(id)] *
                             static_cast<double>(stages) / (crit * 1.0001));
    s = std::min(s, stages - 1);
    for (NodeId o : nd.operands)
      s = std::max(s, stage[static_cast<size_t>(o)]);
    if (nd.op == Op::Input) s = 0;
    stage[static_cast<size_t>(id)] = s;
  }

  if (options.objective == ScheduleObjective::kRegisterMin) {
    // Sink nodes toward their consumers when their operands are cheaper to
    // register than their output: moving node i from stage s to s' trades
    // (s'-s) output registers of width(i) for (s'-s) operand registers of
    // sum(width(o)) — profitable exactly when width(i) > sum(width(o)).
    // Constant operands cost nothing (never pipelined), and the pipe cache
    // shares operand registers between consumers, so this is a lower bound
    // on the real saving. Reverse topo order lets sunk consumers pull their
    // producers along; the schedule stays monotone because a node only ever
    // moves up to the minimum of its (already final) consumer stages.
    std::vector<int> sink_to(n, stages);  // min consumer stage
    for (NodeId id : order) {
      const Node& nd = function.node(id);
      // A value driving an Output is registered at the final boundary
      // regardless, so an Output consumer permits the last stage.
      const int consumer_stage = nd.op == Op::Output
                                     ? stages - 1
                                     : stage[static_cast<size_t>(id)];
      for (NodeId o : nd.operands)
        sink_to[static_cast<size_t>(o)] =
            std::min(sink_to[static_cast<size_t>(o)], consumer_stage);
    }
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      const NodeId id = *it;
      const Node& nd = function.node(id);
      if (nd.op == Op::Input || nd.op == Op::Const || nd.op == Op::Output)
        continue;
      if (sink_to[static_cast<size_t>(id)] >= stages) continue;  // dead node
      int operand_bits = 0;
      for (NodeId o : nd.operands)
        if (function.node(o).op != Op::Const)
          operand_bits += function.node(o).width;
      if (nd.width <= operand_bits) continue;
      if (sink_to[static_cast<size_t>(id)] > stage[static_cast<size_t>(id)]) {
        stage[static_cast<size_t>(id)] = sink_to[static_cast<size_t>(id)];
        // Re-propagate the move to this node's operands' slack.
        for (NodeId o : nd.operands)
          sink_to[static_cast<size_t>(o)] =
              std::min(sink_to[static_cast<size_t>(o)],
                       stage[static_cast<size_t>(id)]);
      }
    }
  }

  // Merge empty stages: remap used stage indices to a dense range.
  std::vector<bool> used(static_cast<size_t>(stages), false);
  for (NodeId id : order)
    if (function.node(id).op != Op::Input && function.node(id).op != Op::Const)
      used[static_cast<size_t>(stage[static_cast<size_t>(id)])] = true;
  std::vector<int> remap(static_cast<size_t>(stages), 0);
  int dense = 0;
  for (int s = 0; s < stages; ++s) {
    remap[static_cast<size_t>(s)] = dense;
    if (used[static_cast<size_t>(s)]) ++dense;
  }
  if (dense == 0) dense = 1;
  const int depth = dense;  // surviving stages == register layers
  res.merged_stages = stages - depth;
  res.latency = depth;

  for (NodeId id : order)
    stage[static_cast<size_t>(id)] =
        std::min(remap[static_cast<size_t>(stage[static_cast<size_t>(id)])],
                 depth - 1);

  // Rebuild with pipeline registers. pipe[(node, layer)] = value of `node`
  // delayed to just after boundary `layer` (boundary L sits after stage L).
  Design& out = res.design;
  std::vector<NodeId> built(n, netlist::kInvalidNode);
  std::map<std::pair<NodeId, int>, NodeId> pipe;

  auto delayed = [&](NodeId src, int to_layer) -> NodeId {
    // Value of src (produced in stage[src]) as seen after `to_layer`
    // register layers (to_layer >= stage[src] means that many boundaries
    // crossed; to_layer == stage[src] means raw combinational value).
    // Constants exist in every stage — never pipelined.
    if (function.node(src).op == Op::Const)
      return built[static_cast<size_t>(src)];
    NodeId cur = built[static_cast<size_t>(src)];
    int have = stage[static_cast<size_t>(src)];
    for (int l = have; l < to_layer; ++l) {
      auto key = std::make_pair(src, l);
      auto it = pipe.find(key);
      if (it != pipe.end()) {
        cur = it->second;
        continue;
      }
      const std::string name =
          "p" + std::to_string(l) + "_n" + std::to_string(src);
      // Copy the fields we need: creating nodes below may reallocate the
      // node storage behind out.node() references.
      const Op cur_op = out.node(cur).op;
      const int cur_width = out.node(cur).width;
      NodeId r;
      if (options.retime_boundaries &&
          (cur_op == Op::SExt || cur_op == Op::ZExt) &&
          out.node(out.node(cur).operands[0]).width < cur_width) {
        // Register the narrow source of the extension and re-extend after
        // the boundary: delay commutes with sign/zero extension, and the
        // register init of 0 extends to 0 either way, so behaviour is
        // identical while the boundary flops shrink to the informative
        // bits. Iterates naturally across layers (the re-extension is
        // itself an extension of a narrow register).
        const NodeId narrow_src = out.node(cur).operands[0];
        const int narrow_width = out.node(narrow_src).width;
        NodeId rr = out.reg(narrow_width, 0, name);
        out.set_reg_next(rr, narrow_src);
        res.pipeline_regs += narrow_width;
        r = cur_op == Op::SExt ? out.sext(rr, cur_width)
                               : out.zext(rr, cur_width);
      } else {
        r = out.reg(cur_width, 0, name);
        out.set_reg_next(r, cur);
        res.pipeline_regs += cur_width;
      }
      pipe[key] = r;
      cur = r;
    }
    return cur;
  };

  for (NodeId id : order) {
    const Node& nd = function.node(id);
    Node copy = nd;
    copy.operands.clear();
    int my_stage = stage[static_cast<size_t>(id)];
    for (NodeId o : nd.operands) copy.operands.push_back(delayed(o, my_stage));
    NodeId nid;
    if (nd.op == Op::Input) {
      nid = out.input(nd.name, nd.width);
    } else if (nd.op == Op::Output) {
      // Outputs are registered at the final boundary: delay the driven
      // value through every remaining layer.
      NodeId v = delayed(nd.operands[0], depth);
      nid = out.output(nd.name, v);
    } else {
      nid = out.constant(nd.width, 0);
      out.mutable_node(nid) = copy;
    }
    built[static_cast<size_t>(id)] = nid;
  }
  out.validate();
  return res;
}

}  // namespace hlshc::synth
