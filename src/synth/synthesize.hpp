// Top-level "virtual Vivado" entry point.
//
// synthesize() runs the logic-optimization passes (constant folding, dead
// logic sweep), technology-maps the result with the cost model, and runs
// static timing. The returned SynthReport carries every per-design indicator
// of the paper's Table II area/frequency block:
//
//   fmax (ν_max), N_LUT, N_FF, N_DSP, N_IO  — with the given maxdsp budget.
//
// The paper's normalized area A = N*_LUT + N*_FF is obtained by calling
// synthesize() again with maxdsp=0 (helper: synthesize_normalized()).
#pragma once

#include <string>

#include "netlist/ir.hpp"
#include "synth/cost_model.hpp"
#include "synth/device.hpp"
#include "synth/timing.hpp"

namespace hlshc::synth {

struct SynthReport {
  std::string design_name;
  double fmax_mhz = 0.0;
  double min_period_ns = 0.0;
  double critical_path_ns = 0.0;
  long n_lut = 0;
  long n_ff = 0;
  long n_dsp = 0;
  long n_bram = 0;
  long n_io = 0;  ///< data pins; +2 for clk/reset is not counted, as in the paper
  std::string critical_path;

  /// Utilization against a device (percent).
  double lut_util(const Device& dev) const {
    return dev.luts ? 100.0 * static_cast<double>(n_lut) / static_cast<double>(dev.luts) : 0.0;
  }
  double ff_util(const Device& dev) const {
    return dev.ffs ? 100.0 * static_cast<double>(n_ff) / static_cast<double>(dev.ffs) : 0.0;
  }
};

/// Optimize + map + time with the given options.
SynthReport synthesize(const netlist::Design& design,
                       const SynthOptions& options = {});

/// The paper's two synthesis runs in one call: `normal` uses the default DSP
/// mapping, `nodsp` re-maps with maxdsp=0; A = nodsp.n_lut + nodsp.n_ff.
struct NormalizedSynth {
  SynthReport normal;
  SynthReport nodsp;
  long area() const { return nodsp.n_lut + nodsp.n_ff; }
};

NormalizedSynth synthesize_normalized(const netlist::Design& design,
                                      SynthOptions options = {});

}  // namespace hlshc::synth
