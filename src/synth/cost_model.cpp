#include "synth/cost_model.hpp"

#include <algorithm>
#include <functional>
#include <cmath>

#include "synth/csd.hpp"

namespace hlshc::synth {

using netlist::Node;
using netlist::NodeId;
using netlist::Op;

CostModel::CostModel(const netlist::Design& design,
                     const SynthOptions& options, const RangeAnalysis* ranges)
    : design_(design), options_(options), ranges_(ranges) {}

int CostModel::eff_width(NodeId id) const {
  const int declared = design_.node(id).width;
  if (!ranges_) return declared;
  int narrowed = std::min(declared, ranges_->effective_width(id));
  int slack = static_cast<int>(
      std::ceil(options_.trim_slack * (declared - narrowed)));
  return std::min(declared, narrowed + slack);
}

int CostModel::dsp_tiles(int w1, int w2) {
  // DSP48E2: 27x18 signed multiply natively. Wider operands tile in chunks
  // of 26x17 (one bit is lost to sign handling when cascading).
  int a = w1 <= 27 ? 1 : (w1 - 2) / 26 + 1;
  int b = w2 <= 18 ? 1 : (w2 - 2) / 17 + 1;
  return a * b;
}

NodeCost CostModel::node_cost(NodeId id, bool allow_dsp) const {
  const Node& n = design_.node(id);
  const DelayModel& dm = options_.delay;
  const AreaModel& am = options_.area;
  NodeCost c;
  const int w = eff_width(id);

  switch (n.op) {
    case Op::Input:
    case Op::Output:
    case Op::Const:
      break;  // free; pad delay is added by the timing engine

    case Op::Add:
    case Op::Sub:
    case Op::Neg:
      c.delay_ns = dm.adder_base + dm.carry_per_bit * w;
      c.luts = am.lut_per_add_bit * w;
      break;

    case Op::And:
    case Op::Or:
    case Op::Xor: {
      // Technology mapping recognizes one-hot mux structures (value AND
      // sign-extended 1-bit strobe, OR-reduced in a tree — what rule
      // compilers, BSC's AND/OR schedules and FSMD operand-select networks
      // emit) and packs them like wide mux LUT trees.
      std::function<bool(NodeId)> is_onehot_term = [&](NodeId id2) {
        const Node& nd = design_.node(id2);
        if (nd.op == Op::And) {
          for (NodeId o : nd.operands) {
            const Node& opn = design_.node(o);
            if (opn.op == Op::SExt &&
                design_.node(opn.operands[0]).width == 1)
              return true;
          }
          return false;
        }
        if (nd.op == Op::Or)
          return is_onehot_term(nd.operands[0]) &&
                 is_onehot_term(nd.operands[1]);
        return false;
      };
      if (n.op == Op::And && is_onehot_term(id))
        break;  // absorbed into the downstream OR's LUTs
      if (n.op == Op::Or && is_onehot_term(id)) {
        c.delay_ns = dm.mux_level;
        c.luts = am.lut_per_mux_bit * w;
        break;
      }
      c.delay_ns = dm.logic_level;
      c.luts = am.lut_per_logic_bit * w;
      break;
    }
    case Op::Not:
      // Inverters are absorbed into downstream LUT masks.
      break;

    case Op::Eq:
    case Op::Ne:
    case Op::Slt:
    case Op::Sle:
    case Op::Sgt:
    case Op::Sge:
    case Op::Ult: {
      int ow = std::max(eff_width(n.operands[0]), eff_width(n.operands[1]));
      c.delay_ns = dm.adder_base + dm.carry_per_bit * ow;
      c.luts = am.lut_per_cmp_bit * ow;
      break;
    }

    case Op::Mux:
      // 2:1 mux bits pack into LUT6s; trees combine through F7/F8 muxes,
      // so the per-level delay is well below a full logic level.
      c.delay_ns = dm.mux_level;
      c.luts = am.lut_per_mux_bit * w;
      break;

    case Op::Shl:
    case Op::AShr:
    case Op::LShr:
    case Op::Slice:
    case Op::Concat:
    case Op::SExt:
    case Op::ZExt:
      break;  // pure wiring for constant amounts

    case Op::Mul: {
      // Synthesis trims sign/zero extension off multiplier operands; size
      // the implementation by the un-extended effective source widths.
      auto effective_src = [&](NodeId opnd) -> NodeId {
        const Node* p = &design_.node(opnd);
        while ((p->op == Op::SExt || p->op == Op::ZExt) &&
               design_.node(p->operands[0]).width < p->width) {
          opnd = p->operands[0];
          p = &design_.node(opnd);
        }
        return opnd;
      };
      NodeId a_id = effective_src(n.operands[0]);
      NodeId b_id = effective_src(n.operands[1]);
      const Node& a = design_.node(a_id);
      const Node& b = design_.node(b_id);
      const Node* konst =
          a.op == Op::Const ? &a : (b.op == Op::Const ? &b : nullptr);
      NodeId var_id = a.op == Op::Const ? b_id : a_id;
      if (konst != nullptr) {
        int64_t value = konst->imm;
        int digits = options_.csd_recoding ? csd_nonzero_digits(value)
                                           : binary_nonzero_digits(value);
        if (digits <= 1) break;  // power of two / zero: wiring
        if (allow_dsp) {
          c.dsps = dsp_tiles(eff_width(var_id),
                             BitVec::min_signed_width(value));
          c.delay_ns = dm.dsp_mul;
        } else {
          int adders = digits - 1;
          int depth = 0;
          while ((1 << depth) < digits) ++depth;
          double add_delay = dm.adder_base + dm.carry_per_bit * w;
          c.delay_ns = depth * add_delay;
          c.luts = am.lut_per_add_bit * w * adders;
        }
      } else {
        int wa = eff_width(a_id), wb = eff_width(b_id);
        if (allow_dsp) {
          c.dsps = dsp_tiles(wa, wb);
          c.delay_ns = dm.dsp_mul;
        } else {
          int levels = 1;
          while ((1 << levels) < std::min(wa, wb)) ++levels;
          c.delay_ns = dm.lutmul_level * levels;
          c.luts = am.lutmul_density * wa * wb;
        }
      }
      break;
    }

    case Op::Reg:
      c.ffs = am.ff_per_reg_bit * w;
      break;

    case Op::MemRead:
      c.delay_ns = dm.mem_read;
      break;
    case Op::MemWrite:
      c.delay_ns = dm.logic_level;  // write-enable decode
      break;
  }
  return c;
}

Mapper::Mapper(const netlist::Design& design, const SynthOptions& options) {
  std::unique_ptr<RangeAnalysis> ranges;
  if (options.range_narrowing)
    ranges = std::make_unique<RangeAnalysis>(design);
  CostModel model(design, options, ranges.get());
  costs_.resize(design.node_count());
  long dsp_budget = options.maxdsp < 0 ? (1L << 30) : options.maxdsp;
  for (size_t i = 0; i < design.node_count(); ++i) {
    NodeId id = static_cast<NodeId>(i);
    const Node& n = design.node(id);
    bool wants_dsp = n.op == Op::Mul;
    NodeCost c;
    if (wants_dsp) {
      NodeCost with_dsp = model.node_cost(id, true);
      if (with_dsp.dsps > 0 && with_dsp.dsps <= dsp_budget) {
        c = with_dsp;
        dsp_budget -= with_dsp.dsps;
      } else {
        c = model.node_cost(id, false);
      }
    } else {
      c = model.node_cost(id, false);
    }
    costs_[i] = c;
    total_luts_ += c.luts;
    total_ffs_ += c.ffs;
    total_dsps_ += c.dsps;
    total_brams_ += c.brams;
  }
  // Memories map to BRAM tiles (36 Kb each, with a minimum of one tile per
  // logical memory). The paper excludes BRAM from its area metric; we track
  // the count for completeness.
  for (const netlist::Memory& m : design.memories()) {
    long bits = static_cast<long>(m.width) * m.depth;
    total_brams_ += static_cast<int>(std::max<long>(1, (bits + 36863) / 36864));
  }
  total_luts_ *= options.area.pack_factor;
}

}  // namespace hlshc::synth
