// Static timing analysis over a mapped netlist.
//
// Computes the longest combinational path between timing endpoints
// (input pads, register outputs, constants → register D-inputs, output
// pads, memory write ports) using the per-node delays assigned by the
// Mapper. The minimum clock period is that path plus clocking overhead;
// ν_max = 1 / T_clk, which is what the paper extracts from Vivado timing
// reports via T_clk - T_wns.
#pragma once

#include <string>
#include <vector>

#include "netlist/ir.hpp"
#include "synth/cost_model.hpp"

namespace hlshc::synth {

struct TimingReport {
  double critical_path_ns = 0.0;  ///< longest register-to-register-ish path
  double min_period_ns = 0.0;     ///< critical path + clock overhead
  double fmax_mhz = 0.0;
  std::vector<netlist::NodeId> critical_nodes;  ///< path, source first
};

TimingReport analyze_timing(const netlist::Design& design,
                            const Mapper& mapper,
                            const SynthOptions& options);

/// Render the critical path as "in -> add<24> -> ... -> reg" for reports.
std::string describe_path(const netlist::Design& design,
                          const TimingReport& report);

}  // namespace hlshc::synth
