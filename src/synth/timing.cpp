#include "synth/timing.hpp"

#include <algorithm>
#include <sstream>

namespace hlshc::synth {

using netlist::Node;
using netlist::NodeId;
using netlist::Op;

TimingReport analyze_timing(const netlist::Design& design,
                            const Mapper& mapper,
                            const SynthOptions& options) {
  const auto order = design.topo_order();
  const size_t n = design.node_count();
  std::vector<double> arrival(n, 0.0);
  std::vector<NodeId> pred(n, netlist::kInvalidNode);

  // Pass 1: arrival times in topological order. Registers launch fresh
  // paths (arrival 0); their D-input logic is timed like any other fan-in.
  for (NodeId id : order) {
    const Node& nd = design.node(id);
    const size_t i = static_cast<size_t>(id);

    if (nd.op == Op::Reg) {
      arrival[i] = 0.0;
      continue;
    }
    if (nd.op == Op::Input) {
      arrival[i] = options.delay.io_pad;
      continue;
    }
    if (nd.op == Op::Const) {
      arrival[i] = 0.0;
      continue;
    }

    double in_arrival = 0.0;
    NodeId in_pred = netlist::kInvalidNode;
    for (NodeId o : nd.operands) {
      double t = arrival[static_cast<size_t>(o)];
      if (t >= in_arrival) {
        in_arrival = t;
        in_pred = o;
      }
    }
    arrival[i] = in_arrival + mapper.cost(id).delay_ns;
    pred[i] = in_pred;
  }

  // Pass 2: endpoints — register D (and enable) pins, output pads, memory
  // write ports.
  double worst = 0.0;
  NodeId worst_end = netlist::kInvalidNode;
  auto consider_endpoint = [&](double t, NodeId end) {
    if (t > worst) {
      worst = t;
      worst_end = end;
    }
  };
  for (size_t i = 0; i < n; ++i) {
    const Node& nd = design.node(static_cast<NodeId>(i));
    if (nd.op == Op::Reg) {
      for (NodeId o : nd.operands)
        consider_endpoint(arrival[static_cast<size_t>(o)], o);
    } else if (nd.op == Op::Output) {
      consider_endpoint(arrival[i] + options.delay.io_pad,
                        static_cast<NodeId>(i));
    } else if (nd.op == Op::MemWrite) {
      consider_endpoint(arrival[i], static_cast<NodeId>(i));
    }
  }

  TimingReport report;
  report.critical_path_ns = worst;
  report.min_period_ns = worst + options.delay.clk_overhead;
  report.fmax_mhz =
      report.min_period_ns > 0 ? 1000.0 / report.min_period_ns : 0.0;

  for (NodeId at = worst_end; at != netlist::kInvalidNode;
       at = pred[static_cast<size_t>(at)])
    report.critical_nodes.push_back(at);
  std::reverse(report.critical_nodes.begin(), report.critical_nodes.end());
  return report;
}

std::string describe_path(const netlist::Design& design,
                          const TimingReport& report) {
  std::ostringstream os;
  for (size_t i = 0; i < report.critical_nodes.size(); ++i) {
    const Node& n = design.node(report.critical_nodes[i]);
    if (i) os << " -> ";
    os << op_name(n.op) << '<' << n.width << '>';
    if (!n.name.empty()) os << '(' << n.name << ')';
  }
  return os.str();
}

}  // namespace hlshc::synth
