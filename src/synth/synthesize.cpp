#include "synth/synthesize.hpp"

#include <cmath>

#include "netlist/passes.hpp"
#include "obs/trace.hpp"

namespace hlshc::synth {

SynthReport synthesize(const netlist::Design& design,
                       const SynthOptions& options) {
  obs::Span span("synth.synthesize", "synth");
  span.arg("design", design.name());
  obs::Span opt_span("synth.optimize", "synth");
  netlist::Design optimized = netlist::optimize(design);
  opt_span.end();
  obs::Span map_span("synth.map", "synth");
  Mapper mapper(optimized, options);
  map_span.end();
  obs::Span timing_span("synth.timing", "synth");
  TimingReport timing = analyze_timing(optimized, mapper, options);
  timing_span.end();

  SynthReport report;
  report.design_name = design.name();
  report.fmax_mhz = timing.fmax_mhz;
  report.min_period_ns = timing.min_period_ns;
  report.critical_path_ns = timing.critical_path_ns;
  report.n_lut = static_cast<long>(std::llround(mapper.total_luts()));
  report.n_ff = static_cast<long>(std::llround(mapper.total_ffs()));
  report.n_dsp = mapper.total_dsps();
  report.n_bram = mapper.total_brams();
  report.n_io = optimized.io_bit_count();
  report.critical_path = describe_path(optimized, timing);
  return report;
}

NormalizedSynth synthesize_normalized(const netlist::Design& design,
                                      SynthOptions options) {
  NormalizedSynth out;
  out.normal = synthesize(design, options);
  SynthOptions nodsp = options;
  nodsp.maxdsp = 0;
  out.nodsp = synthesize(design, nodsp);
  return out;
}

}  // namespace hlshc::synth
