#include "synth/csd.hpp"

#include <cmath>
#include <cstdlib>

#include "base/check.hpp"

namespace hlshc::synth {

std::vector<CsdDigit> csd_decompose(int64_t value) {
  std::vector<CsdDigit> digits;
  bool negative = value < 0;
  uint64_t v = negative ? static_cast<uint64_t>(-value)
                        : static_cast<uint64_t>(value);
  // Standard CSD recoding: scan LSB to MSB; a run of ones ...0111...1 is
  // replaced by +2^(k+run) - 2^k.
  int shift = 0;
  while (v != 0) {
    if (v & 1) {
      // Look at the next bit to decide between +1 here and -1 with carry.
      int sign = ((v & 3) == 3) ? -1 : +1;
      digits.push_back({shift, negative ? -sign : sign});
      if (sign < 0) v += 1;  // carry propagates
    }
    v >>= 1;
    ++shift;
    HLSHC_CHECK(shift < 80, "csd_decompose runaway");
  }
  return digits;
}

int csd_nonzero_digits(int64_t value) {
  return static_cast<int>(csd_decompose(value).size());
}

int csd_adder_depth(int64_t value) {
  int d = csd_nonzero_digits(value);
  if (d <= 1) return 0;
  int depth = 0;
  while ((1 << depth) < d) ++depth;
  return depth;
}

int csd_adder_count(int64_t value) {
  int d = csd_nonzero_digits(value);
  return d > 1 ? d - 1 : 0;
}

int binary_nonzero_digits(int64_t value) {
  uint64_t v = value < 0 ? static_cast<uint64_t>(-value)
                         : static_cast<uint64_t>(value);
  int count = 0;
  while (v != 0) {
    count += static_cast<int>(v & 1);
    v >>= 1;
  }
  return count;
}

}  // namespace hlshc::synth
