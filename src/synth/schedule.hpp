// Flow-neutral feed-forward pipeline scheduler.
//
// Extracted from the XLS flow's pipeliner (xls/pipeline.hpp is now a thin
// wrapper): any flow with a pure dataflow kernel — hand-written RTL rows,
// Chisel's butterfly network, the XLS IDCT function — can be pipelined by
// the same stage-assignment machinery, which is how the DSE sweeps stage
// counts across every flow instead of only XLS.
//
//   * stage(node) = floor(arrival_end(node) * N / critical_path), clamped
//     monotone over operands — the greedy ASAP delay balancing XLS's
//     scheduler defaults to (ScheduleObjective::kDelayBalance);
//   * kRegisterMin keeps that schedule feasible but sinks nodes toward
//     their consumers whenever their operands are cheaper to register than
//     the node's own output — fewer pipeline flops, possibly a longer
//     critical stage (the classic area/fmax scheduling trade);
//   * retime_boundaries registers the narrow source of a sign/zero
//     extension instead of the extended value — boundary registers shrink
//     to the bits that carry information (pairs well with the `narrow`
//     pass, which leaves SExt adapters on exactly such seams);
//   * empty stages merge away, and outputs register at the final boundary,
//     so latency equals the number of surviving stages.
//
// The returned design has the same port names as the input function.
#pragma once

#include <string>
#include <string_view>

#include "netlist/ir.hpp"
#include "synth/cost_model.hpp"

namespace hlshc::synth {

enum class ScheduleObjective {
  kDelayBalance,  ///< balance per-stage delay (the XLS default)
  kRegisterMin,   ///< minimize pipeline register bits within the schedule
};

/// Wire names for the objective knob ("balance" / "regmin").
const char* schedule_objective_name(ScheduleObjective objective);

/// Most stages a request may ask for. The paper sweeps 1..18; the scheduler
/// itself is happy far beyond that, but a bound keeps mistyped requests
/// ("180") from silently building absurd register chains.
inline constexpr int kMaxScheduleStages = 64;

/// Validator for user-provided stage counts (service knobs, bench --stages
/// flags, XlsOptions): decimal integer in [0, kMaxScheduleStages], where 0
/// means combinational. Throws hlshc::Error naming `what` on anything else
/// — the same loud-failure contract as par::parse_jobs/parse_lanes.
int parse_stages(std::string_view text, std::string_view what);

/// Validator for the objective knob: "balance" or "regmin" (throws
/// hlshc::Error naming `what` otherwise).
ScheduleObjective parse_objective(std::string_view text,
                                  std::string_view what);

struct ScheduleOptions {
  int stages = 0;  ///< requested stages; 0 = combinational passthrough
  ScheduleObjective objective = ScheduleObjective::kDelayBalance;
  /// Push boundary registers across SExt/ZExt onto their narrower source.
  bool retime_boundaries = false;
  /// Delay model used for arrival times (no I/O pads: internal kernel).
  SynthOptions synth;
};

struct ScheduleResult {
  netlist::Design design;
  int latency = 0;          ///< register layers from input to output
  int requested_stages = 0;
  int merged_stages = 0;    ///< empty stages removed
  int pipeline_regs = 0;    ///< total pipeline register bits inserted
};

/// Pipelines a pure combinational function. options.stages == 0 returns a
/// copy of the function unchanged (combinational codegen). Throws if the
/// function contains registers or memories.
ScheduleResult schedule_pipeline(const netlist::Design& function,
                                 const ScheduleOptions& options);

}  // namespace hlshc::synth
