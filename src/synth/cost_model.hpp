// Technology-mapping cost model: per-node delay and area.
//
// This module plays Vivado's role in the reproduction. It maps each netlist
// node to UltraScale+-flavoured resources:
//
//   * adders/subtractors/comparators — carry chains: ~w LUTs, delay with a
//     per-bit carry component;
//   * bitwise ops and 2:1 muxes — one logic level;
//   * constant multipliers — either a DSP48E2 (when the `maxdsp` budget
//     allows) or a CSD shift-add tree in LUTs (the paper's A metric is
//     defined with DSP mapping disabled, "maxdsp=0");
//   * variable multipliers — DSP48E2 tiles (ceil over 26x17 signed chunks)
//     or a LUT partial-product array;
//   * registers — w flip-flops; memories — BRAM (reported separately, not
//     part of A, matching the paper, which ignores BRAM).
//
// The constants are deliberately simple and fully documented; they are
// calibrated so that the *ratios* of the paper's Table II hold (see
// EXPERIMENTS.md), not its absolute MHz/LUT values.
#pragma once

#include <cstdint>
#include <memory>

#include "netlist/ir.hpp"
#include "netlist/range.hpp"

namespace hlshc::synth {

/// Interval analysis now lives in the netlist layer (it feeds the `narrow`
/// rewrite pass there); synthesis keeps consuming it for cost discounting
/// on designs compiled without the pass.
using netlist::Interval;
using netlist::RangeAnalysis;

/// Delay model, all values in nanoseconds.
struct DelayModel {
  double logic_level = 0.35;     ///< one LUT + local routing
  double mux_level = 0.12;       ///< one 2:1 mux level (LUT6 + F7/F8 combining)
  double adder_base = 0.35;      ///< carry-chain entry
  double carry_per_bit = 0.008;  ///< per carry-chain bit
  double dsp_mul = 2.40;         ///< DSP48E2 multiply (unpipelined use)
  double lutmul_level = 0.90;    ///< one partial-product reduction level
  double mem_read = 1.10;        ///< distributed/block RAM access
  double clk_overhead = 0.50;    ///< clk->Q + setup + skew
  double io_pad = 1.00;          ///< IBUF/OBUF on paths touching pads
};

/// Area model.
struct AreaModel {
  double lut_per_add_bit = 1.0;
  double lut_per_logic_bit = 1.0;
  double lut_per_mux_bit = 0.33;  ///< LUT6 + F7/F8 packing of mux trees
  double lut_per_cmp_bit = 0.5;
  double lutmul_density = 0.55;   ///< LUTs per partial-product bit (w1*w2)
  double ff_per_reg_bit = 1.0;
  double pack_factor = 0.88;      ///< global post-packing scale on LUTs
};

/// Synthesis options (the "tool settings" of our virtual Vivado).
struct SynthOptions {
  /// Maximum number of DSP blocks the mapper may use. 0 reproduces the
  /// paper's `maxdsp=0` normalization; a negative value means unlimited.
  long maxdsp = -1;
  /// Use CSD recoding for constant multipliers (true, default) or naive
  /// binary shift-add (ablation).
  bool csd_recoding = true;
  /// Narrow operator widths by value-range analysis (netlist/range.hpp),
  /// like Vivado's optimization sweep. Off = pay declared widths (ablation).
  /// Designs already rewritten by the `narrow` pass have nothing left to
  /// trim, so this discount degrades to a no-op on them (one source of
  /// truth: the declared widths).
  bool range_narrowing = true;
  /// Imperfection of that sweep: the effective width keeps this fraction of
  /// the declared-minus-range fat. Real tools trim most but not all of the
  /// over-declared bits — the mechanism behind the paper's observation that
  /// width-inferred Chisel comes out a few percent smaller than 32-bit
  /// Verilog pushed through the same synthesizer.
  double trim_slack = 0.15;
  DelayModel delay;
  AreaModel area;
};

/// Per-node mapping result.
struct NodeCost {
  double delay_ns = 0.0;  ///< combinational delay through the node
  double luts = 0.0;
  double ffs = 0.0;
  int dsps = 0;
  int brams = 0;
};

class CostModel {
 public:
  /// `ranges` may be null (no narrowing: nodes cost their declared width).
  CostModel(const netlist::Design& design, const SynthOptions& options,
            const RangeAnalysis* ranges);

  /// Cost of one node. For Mul nodes `allow_dsp` selects the DSP mapping
  /// (when the Mapper still has budget) or the LUT fabric fallback.
  NodeCost node_cost(netlist::NodeId id, bool allow_dsp) const;

  /// Number of DSP48E2 tiles a `w1 x w2` signed multiply needs (0 if either
  /// operand is degenerate). A DSP48E2 natively handles 27x18 signed.
  static int dsp_tiles(int w1, int w2);

 private:
  friend class Mapper;
  int eff_width(netlist::NodeId id) const;

  const netlist::Design& design_;
  const SynthOptions& options_;
  const RangeAnalysis* ranges_;
};

/// Whole-design mapping: walks every node, spends the DSP budget greedily
/// in node order (like Vivado's default max-DSP-first mapping), and
/// accumulates totals plus per-node costs for the timing engine.
class Mapper {
 public:
  Mapper(const netlist::Design& design, const SynthOptions& options);

  const NodeCost& cost(netlist::NodeId id) const {
    return costs_[static_cast<size_t>(id)];
  }

  double total_luts() const { return total_luts_; }
  double total_ffs() const { return total_ffs_; }
  int total_dsps() const { return total_dsps_; }
  int total_brams() const { return total_brams_; }

 private:
  std::vector<NodeCost> costs_;
  double total_luts_ = 0.0;
  double total_ffs_ = 0.0;
  int total_dsps_ = 0;
  int total_brams_ = 0;
};

}  // namespace hlshc::synth
