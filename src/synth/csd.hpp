// Canonical signed digit (CSD) decomposition of multiplier constants.
//
// Logic synthesis implements `x * C` for a literal C as a tree of shifted
// additions/subtractions. The CSD recoding of C (digits in {-1, 0, +1} with
// no two adjacent non-zeros) minimizes the number of non-zero digits and
// hence the number of adders; a balanced tree over D non-zero digits has
// depth ceil(log2(D)). The cost model uses these two numbers for delay and
// area of constant multipliers when DSP mapping is off (maxdsp=0), which is
// exactly the normalization the paper applies for its area metric A.
#pragma once

#include <cstdint>
#include <vector>

namespace hlshc::synth {

struct CsdDigit {
  int shift = 0;   ///< power of two
  int sign = +1;   ///< +1 or -1
};

/// CSD recoding of `value` (must fit in 63 bits in magnitude). The digits
/// are returned LSB-first. For value == 0 the result is empty.
std::vector<CsdDigit> csd_decompose(int64_t value);

/// Number of non-zero digits in the CSD form.
int csd_nonzero_digits(int64_t value);

/// Depth (in adder levels) of a balanced shift-add tree implementing
/// multiplication by `value`; 0 when the constant is a power of two or zero.
int csd_adder_depth(int64_t value);

/// Number of adders in the shift-add tree (= non-zero digits - 1, min 0).
int csd_adder_count(int64_t value);

/// Plain binary (non-recoded) non-zero bit count — the naive shift-add
/// implementation; used by the cost-model ablation bench.
int binary_nonzero_digits(int64_t value);

}  // namespace hlshc::synth
