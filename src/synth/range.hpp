// Value-range (interval) analysis for netlists.
//
// Logic synthesis does not implement a 32-bit adder when its inputs can
// only ever carry 13-bit values: Vivado's optimization sweeps constant and
// sign-extension fat off wide nets. This pass reproduces that behaviour.
// For every node it computes a conservative signed interval [lo, hi] of
// reachable values — propagating through arithmetic, shifts, muxes and
// register feedback (with widening) — and derives an *effective width*:
// the bits synthesis actually has to build.
//
// The cost model and static timing consume effective widths instead of
// declared widths. This is what puts the paper's hand-written 32-bit
// Verilog (trimmed by the tool) and Chisel's inferred widths within a few
// percent of each other, exactly as Table II shows.
//
// The analysis never rewrites the netlist; wrap-around is handled by
// falling back to the declared width's full range whenever a candidate
// interval does not fit.
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/ir.hpp"

namespace hlshc::synth {

struct Interval {
  int64_t lo = 0;
  int64_t hi = 0;

  static Interval full(int width);
  static Interval point(int64_t v) { return {v, v}; }
  Interval join(const Interval& o) const;
  bool fits(int width) const;
  /// Smallest signed width holding both bounds.
  int min_width() const;
};

class RangeAnalysis {
 public:
  /// Runs to fixpoint (bounded iterations with widening on registers).
  explicit RangeAnalysis(const netlist::Design& design);

  const Interval& range(netlist::NodeId id) const {
    return ranges_[static_cast<size_t>(id)];
  }

  /// min(declared width, width of the value range).
  int effective_width(netlist::NodeId id) const {
    return widths_[static_cast<size_t>(id)];
  }

 private:
  std::vector<Interval> ranges_;
  std::vector<int> widths_;
};

}  // namespace hlshc::synth
