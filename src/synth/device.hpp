// FPGA device database.
//
// The paper synthesizes for a Xilinx Virtex UltraScale+ XCVU9P
// (XCVU9P-FLGB2104-2-E) and reports utilization against its capacity:
// N_LUT = 1,182,240, N_FF = 2,364,480, N_DSP = 6,840, N_IO = 702.
#pragma once

#include <string>

namespace hlshc::synth {

struct Device {
  std::string name;
  long luts = 0;
  long ffs = 0;
  long dsps = 0;
  long ios = 0;
  long brams = 0;  ///< 36 Kb block RAM tiles
};

/// The paper's target device.
inline Device xcvu9p() {
  return Device{"XCVU9P-FLGB2104-2-E", 1182240, 2364480, 6840, 702, 2160};
}

}  // namespace hlshc::synth
