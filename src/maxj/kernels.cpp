#include "maxj/kernels.hpp"

#include <array>
#include <string>
#include <vector>

#include "axis/stream.hpp"
#include "idct/chenwang.hpp"
#include "maxj/dsl.hpp"
#include "rtl/units.hpp"

namespace hlshc::maxj {

namespace {

using idct::kW1;
using idct::kW2;
using idct::kW3;
using idct::kW5;
using idct::kW6;
using idct::kW7;

/// 20-bit scratch words, as in the other optimized designs.
constexpr int kScratchWidth = 20;

/// Chen-Wang row pass in the auto-pipelined dataflow DSL.
std::array<DFEVar, 8> row_butterfly(KernelBuilder& k,
                                    const std::array<DFEVar, 8>& blk) {
  DFEVar x1 = k.shl(blk[4], 11);
  DFEVar x2 = blk[6], x3 = blk[2], x4 = blk[1], x5 = blk[7], x6 = blk[5],
         x7 = blk[3];
  DFEVar x0 = k.add(k.shl(blk[0], 11), k.constant(128));

  DFEVar x8 = k.mulc(k.add(x4, x5), kW7);
  x4 = k.add(x8, k.mulc(x4, kW1 - kW7));
  x5 = k.sub(x8, k.mulc(x5, kW1 + kW7));
  x8 = k.mulc(k.add(x6, x7), kW3);
  x6 = k.sub(x8, k.mulc(x6, kW3 - kW5));
  x7 = k.sub(x8, k.mulc(x7, kW3 + kW5));

  x8 = k.add(x0, x1);
  x0 = k.sub(x0, x1);
  x1 = k.mulc(k.add(x3, x2), kW6);
  x2 = k.sub(x1, k.mulc(x2, kW2 + kW6));
  x3 = k.add(x1, k.mulc(x3, kW2 - kW6));
  x1 = k.add(x4, x6);
  x4 = k.sub(x4, x6);
  x6 = k.add(x5, x7);
  x5 = k.sub(x5, x7);

  x7 = k.add(x8, x3);
  x8 = k.sub(x8, x3);
  x3 = k.add(x0, x2);
  x0 = k.sub(x0, x2);
  x2 = k.ashr(k.add(k.mulc(k.add(x4, x5), 181), k.constant(128)), 8);
  x4 = k.ashr(k.add(k.mulc(k.sub(x4, x5), 181), k.constant(128)), 8);

  return {k.ashr(k.add(x7, x1), 8), k.ashr(k.add(x3, x2), 8),
          k.ashr(k.add(x0, x4), 8), k.ashr(k.add(x8, x6), 8),
          k.ashr(k.sub(x8, x6), 8), k.ashr(k.sub(x0, x4), 8),
          k.ashr(k.sub(x3, x2), 8), k.ashr(k.sub(x7, x1), 8)};
}

/// Chen-Wang column pass with rounding and clipping.
std::array<DFEVar, 8> col_butterfly(KernelBuilder& k,
                                    const std::array<DFEVar, 8>& blk) {
  DFEVar x1 = k.shl(blk[4], 8);
  DFEVar x2 = blk[6], x3 = blk[2], x4 = blk[1], x5 = blk[7], x6 = blk[5],
         x7 = blk[3];
  DFEVar x0 = k.add(k.shl(blk[0], 8), k.constant(8192));

  DFEVar x8 = k.add(k.mulc(k.add(x4, x5), kW7), k.constant(4));
  x4 = k.ashr(k.add(x8, k.mulc(x4, kW1 - kW7)), 3);
  x5 = k.ashr(k.sub(x8, k.mulc(x5, kW1 + kW7)), 3);
  x8 = k.add(k.mulc(k.add(x6, x7), kW3), k.constant(4));
  x6 = k.ashr(k.sub(x8, k.mulc(x6, kW3 - kW5)), 3);
  x7 = k.ashr(k.sub(x8, k.mulc(x7, kW3 + kW5)), 3);

  x8 = k.add(x0, x1);
  x0 = k.sub(x0, x1);
  x1 = k.add(k.mulc(k.add(x3, x2), kW6), k.constant(4));
  x2 = k.ashr(k.sub(x1, k.mulc(x2, kW2 + kW6)), 3);
  x3 = k.ashr(k.add(x1, k.mulc(x3, kW2 - kW6)), 3);
  x1 = k.add(x4, x6);
  x4 = k.sub(x4, x6);
  x6 = k.add(x5, x7);
  x5 = k.sub(x5, x7);

  x7 = k.add(x8, x3);
  x8 = k.sub(x8, x3);
  x3 = k.add(x0, x2);
  x0 = k.sub(x0, x2);
  x2 = k.ashr(k.add(k.mulc(k.add(x4, x5), 181), k.constant(128)), 8);
  x4 = k.ashr(k.add(k.mulc(k.sub(x4, x5), 181), k.constant(128)), 8);

  return {k.clip9(k.ashr(k.add(x7, x1), 14)),
          k.clip9(k.ashr(k.add(x3, x2), 14)),
          k.clip9(k.ashr(k.add(x0, x4), 14)),
          k.clip9(k.ashr(k.add(x8, x6), 14)),
          k.clip9(k.ashr(k.sub(x8, x6), 14)),
          k.clip9(k.ashr(k.sub(x0, x4), 14)),
          k.clip9(k.ashr(k.sub(x3, x2), 14)),
          k.clip9(k.ashr(k.sub(x7, x1), 14))};
}

}  // namespace

Kernel build_matrix_kernel() {
  KernelBuilder k("maxj_matrix_kernel");
  std::array<std::array<DFEVar, 8>, 8> in;
  for (int r = 0; r < 8; ++r)
    for (int c = 0; c < 8; ++c)
      in[static_cast<size_t>(r)][static_cast<size_t>(c)] =
          k.input("x" + std::to_string(r * 8 + c), axis::kInElemWidth);
  DFEVar ivalid = k.input("ivalid", 1);

  std::array<std::array<DFEVar, 8>, 8> rows;
  for (int r = 0; r < 8; ++r)
    rows[static_cast<size_t>(r)] =
        row_butterfly(k, in[static_cast<size_t>(r)]);

  for (int col = 0; col < 8; ++col) {
    std::array<DFEVar, 8> column;
    for (int r = 0; r < 8; ++r)
      column[static_cast<size_t>(r)] =
          rows[static_cast<size_t>(r)][static_cast<size_t>(col)];
    auto out = col_butterfly(k, column);
    for (int r = 0; r < 8; ++r)
      k.output("y" + std::to_string(r * 8 + col),
               out[static_cast<size_t>(r)]);
  }
  k.output("ovalid", ivalid);

  int depth = k.max_depth();
  // 64 x 16-bit padded words per matrix over the PCIe DMA stream.
  return Kernel{k.finish(), depth, 1, 1024};
}

Kernel build_row_kernel() {
  KernelBuilder k("maxj_row_kernel");
  netlist::Design& d = k.design();

  std::array<DFEVar, 8> lane;
  for (int c = 0; c < 8; ++c)
    lane[static_cast<size_t>(c)] =
        k.input("in" + std::to_string(c), axis::kInElemWidth);
  DFEVar ivalid = k.input("ivalid", 1);

  // Schedule: a modulo-9 tick counter; the manager feeds one row on each of
  // the first 8 ticks of a frame (paced by "iready"), leaving 1 idle tick —
  // the paper's periodicity of 9.
  DFEVar p = k.counter(9, "phase");
  k.output_raw("iready", k.le(p, 7));

  // Row pass on the arriving row; balance the 8 results to one depth.
  auto row_res = row_butterfly(k, lane);
  int dr = 0;
  for (const DFEVar& v : row_res) dr = std::max(dr, v.depth);
  for (auto& v : row_res) v = k.balance(v, dr);

  // Scratch: ping-pong 2 x 8 x 8 registers of 20-bit row results, written
  // at the row pass's exit tick (address/enable travel with the data).
  DFEVar wrow = k.offset(p, dr);
  DFEVar wvalid = k.offset(ivalid, dr);
  DFEVar wbuf = k.state_reg(1, "wbuf");
  {
    DFEVar row7 = k.eq(wrow, 7);
    DFEVar toggle = k.logic_and(wvalid, row7);
    DFEVar inv{d.bnot(wbuf.id, 1), 1, 0};
    k.state_update(wbuf, toggle, inv);
  }

  std::array<std::array<std::array<DFEVar, 8>, 8>, 2> scratch;
  for (int b = 0; b < 2; ++b) {
    netlist::NodeId bank = d.eq(wbuf.id, d.constant(1, b));
    for (int r = 0; r < 8; ++r) {
      netlist::NodeId here =
          d.band(d.band(wvalid.id, d.eq(wrow.id, d.constant(wrow.width, r)), 1),
                 bank, 1);
      DFEVar en{here, 1, 0};
      for (int c = 0; c < 8; ++c) {
        DFEVar reg = k.state_reg(kScratchWidth, "scratch");
        DFEVar val{d.slice(row_res[static_cast<size_t>(c)].id,
                           kScratchWidth - 1, 0),
                   kScratchWidth, 0};
        k.state_update(reg, en, val);
        scratch[static_cast<size_t>(b)][static_cast<size_t>(r)]
               [static_cast<size_t>(c)] = reg;
      }
    }
  }

  // Column engine: the column index is the phase counter delayed past the
  // last scratch write; the delayed ivalid doubles as the column-valid
  // strobe and gives a clean warm-up for free.
  DFEVar c9 = k.offset(p, 8 + dr);
  DFEVar cvalid = k.offset(ivalid, 8 + dr);
  DFEVar rbuf = k.state_reg(1, "rbuf");
  {
    DFEVar done = k.logic_and(cvalid, k.eq(c9, 7));
    DFEVar inv{d.bnot(rbuf.id, 1), 1, 0};
    k.state_update(rbuf, done, inv);
  }

  std::array<DFEVar, 8> col_in;
  netlist::NodeId c3 = d.slice(c9.id, 2, 0);
  for (int r = 0; r < 8; ++r) {
    std::vector<netlist::NodeId> e0, e1;
    for (int c = 0; c < 8; ++c) {
      e0.push_back(scratch[0][static_cast<size_t>(r)]
                          [static_cast<size_t>(c)].id);
      e1.push_back(scratch[1][static_cast<size_t>(r)]
                          [static_cast<size_t>(c)].id);
    }
    netlist::NodeId sel = d.mux(rbuf.id, rtl::mux_by_index(d, c3, e1),
                                rtl::mux_by_index(d, c3, e0), kScratchWidth);
    col_in[static_cast<size_t>(r)] =
        DFEVar{d.sext(sel, 32), 32, c9.depth};
  }

  auto col_out = col_butterfly(k, col_in);
  for (int r = 0; r < 8; ++r)
    k.output("o" + std::to_string(r), col_out[static_cast<size_t>(r)]);
  k.output("ovalid", cvalid);

  int depth = k.max_depth();
  return Kernel{k.finish(), depth, 9, 1024};
}

}  // namespace hlshc::maxj
