// MaxJ-flavoured dataflow kernel DSL with MaxCompiler-style auto-pipelining.
//
// A MaxJ kernel describes a statically scheduled dataflow graph; the
// compiler inserts a pipeline register after every arithmetic node and
// automatically *balances* the graph — when two values of different
// pipeline depth meet, the shallower one is delayed so both arrive in the
// same tick. That scheduling discipline is why the paper's matrix-per-cycle
// MaxJ kernel comes out as a 47-stage pipeline running at the highest
// frequency of all designs while spending by far the most flip-flops.
//
// DFEVar carries (node, width, depth); KernelBuilder implements:
//   * arithmetic (+ - * with a constant, shifts) — depth max(in)+1,
//     balancing registers inserted on the shallower operand;
//   * stream.offset(v, -k) — k extra delay registers;
//   * control counters and comparisons (depth-0 control plane values get
//     balanced like any other var);
//   * explicit width semantics (32-bit like the reference C, so kernels
//     wrap exactly like the int32 software model).
#pragma once

#include <cstdint>
#include <string>

#include "netlist/ir.hpp"

namespace hlshc::maxj {

class KernelBuilder;

/// A dataflow value: netlist node + pipeline depth (ticks since input).
struct DFEVar {
  netlist::NodeId id = netlist::kInvalidNode;
  int width = 0;
  int depth = 0;
};

class KernelBuilder {
 public:
  explicit KernelBuilder(std::string name) : design_(std::move(name)) {}

  // ---- streams -------------------------------------------------------------
  DFEVar input(const std::string& port, int width);
  /// Output port; the value is first balanced to the kernel's final depth
  /// when finish() runs, so call output() for all results then finish().
  void output(const std::string& port, const DFEVar& v);

  /// Output wired without balancing — for schedule/control outputs (e.g.
  /// the "iready" pacing signal) that must not be delayed.
  void output_raw(const std::string& port, const DFEVar& v);

  // ---- arithmetic (auto-pipelined: result depth = max(operands)+1) ---------
  DFEVar add(const DFEVar& a, const DFEVar& b);
  DFEVar sub(const DFEVar& a, const DFEVar& b);
  DFEVar mulc(const DFEVar& a, int64_t constant);  ///< constant multiply
  // ---- wiring (no pipeline stage) -------------------------------------------
  DFEVar shl(const DFEVar& a, int amount);
  DFEVar ashr(const DFEVar& a, int amount);
  DFEVar constant(int64_t value, int width = 32);
  DFEVar slice(const DFEVar& a, int hi, int lo);

  // ---- control --------------------------------------------------------------
  /// Free-running modulo counter (control.count.simpleCounter).
  DFEVar counter(int modulo, const std::string& label);
  DFEVar eq(const DFEVar& a, int64_t value);
  DFEVar le(const DFEVar& a, int64_t value);
  DFEVar logic_and(const DFEVar& a, const DFEVar& b);
  DFEVar logic_not(const DFEVar& a);
  DFEVar mux(const DFEVar& sel, const DFEVar& t, const DFEVar& f);

  /// stream.offset(v, -k): v delayed k ticks.
  DFEVar offset(const DFEVar& v, int back);

  /// Clamp to [-256,255] and narrow to 9 bits (one pipeline stage).
  DFEVar clip9(const DFEVar& v);

  /// A register whose next value is chosen by `enable ? next : hold`;
  /// depth is treated as `depth_hint` (scratch state, not stream data).
  DFEVar state_reg(int width, const std::string& label);
  void state_update(const DFEVar& reg, const DFEVar& enable,
                    const DFEVar& next);

  /// Align `v` to depth `d` (inserting delay registers; d >= v.depth).
  DFEVar balance(const DFEVar& v, int d);

  /// Deepest value seen so far — the kernel's pipeline depth.
  int max_depth() const { return max_depth_; }
  int balancing_regs() const { return balancing_regs_; }

  /// Registers every pending output at max_depth() and returns the design.
  netlist::Design finish();

  netlist::Design& design() { return design_; }

 private:
  DFEVar wrap(netlist::NodeId id, int w, int depth) {
    max_depth_ = std::max(max_depth_, depth);
    return DFEVar{id, w, depth};
  }
  std::pair<DFEVar, DFEVar> aligned(const DFEVar& a, const DFEVar& b);
  netlist::NodeId delay1(netlist::NodeId v, const std::string& label);

  netlist::Design design_;
  std::vector<std::pair<std::string, DFEVar>> pending_outputs_;
  int max_depth_ = 0;
  int balancing_regs_ = 0;
};

}  // namespace hlshc::maxj
