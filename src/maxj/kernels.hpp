// The two MaxJ kernels of the paper.
//
//   * matrix kernel — inputs a full 8x8 matrix every tick and outputs the
//     IDCT result `depth` ticks later: the paper's initial design, a
//     ~40-stage auto-pipelined dataflow graph with the highest clock rate
//     and the largest flip-flop bill of the whole study. Its system-level
//     throughput is PCIe-bound (see system.hpp).
//
//   * row kernel — inputs one matrix row per tick, eight rows then one
//     idle tick per matrix (periodicity 9): the paper's optimized design.
//     Row results accumulate in on-chip scratch buffers (ping-pong); a
//     single column unit walks the stored matrix one column per tick.
//     Roughly a third of the area at a ninth of the per-tick work.
//
// Kernel ports:
//   matrix: x0..x63 (12b) -> y0..y63 (9b), ivalid -> ovalid
//   row:    in0..in7 (12b), ivalid -> o0..o7 (9b, one COLUMN per tick),
//           ovalid; plus the unregistered "iready" schedule output the
//           manager uses to pace the input stream (high 8 of 9 ticks).
#pragma once

#include "netlist/ir.hpp"

namespace hlshc::maxj {

struct Kernel {
  netlist::Design design;
  int depth = 0;          ///< pipeline depth in ticks (input to output)
  int ticks_per_op = 1;   ///< kernel ticks consumed per matrix
  int input_bits = 0;     ///< stream payload bits per matrix (PCIe side)
};

Kernel build_matrix_kernel();
Kernel build_row_kernel();

}  // namespace hlshc::maxj
