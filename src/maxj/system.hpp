// MaxCompiler system (manager) model.
//
// Unlike the other flows, MaxCompiler builds a whole host-attached system:
// kernels talk to the CPU through PCIe DMA streams set up by the manager.
// The paper therefore evaluates the MaxJ designs against the PCIe 3.0 x16
// link — it *estimates* throughput analytically as
//
//     P = min( f_kernel / ticks_per_op ,  BW_pcie / bits_per_op )
//
// (its initial kernel is PCIe-bound: 16 GB/s / 1024 bit = ~125 Mops/s; the
// row kernel is frequency-bound at f/9). This module reproduces exactly
// that computation on top of the synthesized kernel frequency.
#pragma once

#include "maxj/kernels.hpp"
#include "synth/synthesize.hpp"

namespace hlshc::maxj {

struct PcieModel {
  double gbytes_per_s = 16.0;   ///< PCIe 3.0 x16 effective DMA bandwidth
  double bytes_per_s() const { return gbytes_per_s * 1e9; }
};

struct SystemEvaluation {
  synth::NormalizedSynth synth;       ///< kernel synthesis (both DSP modes)
  double kernel_tick_rate_hz = 0.0;   ///< synthesized f_max
  double pcie_bound_ops = 0.0;        ///< BW / bits_per_op
  double kernel_bound_ops = 0.0;      ///< f / ticks_per_op
  double throughput_ops = 0.0;        ///< min of the two
  bool pcie_limited = false;
  int latency_ticks = 0;              ///< pipeline depth + I/O framing
};

/// Evaluate the full system against the link from an already-synthesized
/// kernel. Synthesis is injected (rather than run here) so the caller
/// controls the netlist pipeline — flows and benches pass the result of
/// tools::compile_synth_normalized; tests may synthesize directly.
SystemEvaluation evaluate_system(const Kernel& kernel,
                                 synth::NormalizedSynth kernel_synth,
                                 const PcieModel& pcie = {});

}  // namespace hlshc::maxj
