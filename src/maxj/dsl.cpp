#include "maxj/dsl.hpp"

#include <algorithm>

#include "base/check.hpp"
#include "idct/block.hpp"

namespace hlshc::maxj {

using netlist::NodeId;

namespace {
constexpr int kWord = 32;
}

netlist::NodeId KernelBuilder::delay1(NodeId v, const std::string& label) {
  NodeId r = design_.reg(design_.node(v).width, 0, label);
  design_.set_reg_next(r, v);
  return r;
}

DFEVar KernelBuilder::balance(const DFEVar& v, int d) {
  HLSHC_CHECK(d >= v.depth, "balance can only delay, not advance");
  DFEVar cur = v;
  while (cur.depth < d) {
    // Constants need no balancing: they are valid in every tick.
    if (design_.node(cur.id).op == netlist::Op::Const) {
      cur.depth = d;
      break;
    }
    cur.id = delay1(cur.id, "bal_d" + std::to_string(cur.depth));
    balancing_regs_ += cur.width;
    ++cur.depth;
  }
  return wrap(cur.id, cur.width, d);
}

std::pair<DFEVar, DFEVar> KernelBuilder::aligned(const DFEVar& a,
                                                 const DFEVar& b) {
  int d = std::max(a.depth, b.depth);
  return {balance(a, d), balance(b, d)};
}

DFEVar KernelBuilder::input(const std::string& port, int width) {
  return wrap(design_.input(port, width), width, 0);
}

void KernelBuilder::output(const std::string& port, const DFEVar& v) {
  pending_outputs_.emplace_back(port, v);
}

void KernelBuilder::output_raw(const std::string& port, const DFEVar& v) {
  design_.output(port, v.id);
}

DFEVar KernelBuilder::add(const DFEVar& a, const DFEVar& b) {
  auto [x, y] = aligned(a, b);
  NodeId sum = design_.add(x.id, y.id, kWord);
  return wrap(delay1(sum, "p_add"), kWord, x.depth + 1);
}

DFEVar KernelBuilder::sub(const DFEVar& a, const DFEVar& b) {
  auto [x, y] = aligned(a, b);
  NodeId diff = design_.sub(x.id, y.id, kWord);
  return wrap(delay1(diff, "p_sub"), kWord, x.depth + 1);
}

DFEVar KernelBuilder::mulc(const DFEVar& a, int64_t constant) {
  NodeId k = design_.constant(BitVec::min_signed_width(constant), constant);
  NodeId m = design_.mul(a.id, k, kWord);
  return wrap(delay1(m, "p_mul"), kWord, a.depth + 1);
}

DFEVar KernelBuilder::shl(const DFEVar& a, int amount) {
  return wrap(design_.shl(a.id, amount, kWord), kWord, a.depth);
}

DFEVar KernelBuilder::ashr(const DFEVar& a, int amount) {
  return wrap(design_.ashr(a.id, amount, kWord), kWord, a.depth);
}

DFEVar KernelBuilder::constant(int64_t value, int width) {
  return wrap(design_.constant(width, value), width, 0);
}

DFEVar KernelBuilder::slice(const DFEVar& a, int hi, int lo) {
  return wrap(design_.slice(a.id, hi, lo), hi - lo + 1, a.depth);
}

DFEVar KernelBuilder::counter(int modulo, const std::string& label) {
  // Width: enough for modulo-1, kept positive.
  int w = BitVec::min_signed_width(modulo) + 1;
  NodeId r = design_.reg(w, 0, label);
  NodeId at_top = design_.eq(r, design_.constant(w, modulo - 1));
  NodeId nxt = design_.mux(at_top, design_.constant(w, 0),
                           design_.add(r, design_.constant(w, 1), w), w);
  design_.set_reg_next(r, nxt);
  return wrap(r, w, 0);
}

DFEVar KernelBuilder::eq(const DFEVar& a, int64_t value) {
  return wrap(design_.eq(a.id, design_.constant(a.width, value)), 1, a.depth);
}

DFEVar KernelBuilder::le(const DFEVar& a, int64_t value) {
  return wrap(design_.sle(a.id, design_.constant(a.width, value)), 1,
              a.depth);
}

DFEVar KernelBuilder::logic_and(const DFEVar& a, const DFEVar& b) {
  auto [x, y] = aligned(a, b);
  return wrap(design_.band(x.id, y.id, 1), 1, x.depth);
}

DFEVar KernelBuilder::logic_not(const DFEVar& a) {
  return wrap(design_.bnot(a.id, 1), 1, a.depth);
}

DFEVar KernelBuilder::mux(const DFEVar& sel, const DFEVar& t,
                          const DFEVar& f) {
  DFEVar s = sel, a = t, b = f;
  int d = std::max({s.depth, a.depth, b.depth});
  s = balance(s, d);
  a = balance(a, d);
  b = balance(b, d);
  int w = std::max(a.width, b.width);
  return wrap(design_.mux(s.id, design_.sext(a.id, w),
                          design_.sext(b.id, w), w),
              w, d);
}

DFEVar KernelBuilder::offset(const DFEVar& v, int back) {
  HLSHC_CHECK(back >= 0, "only backward offsets are synthesizable");
  DFEVar cur = v;
  for (int i = 0; i < back; ++i) {
    cur.id = delay1(cur.id, "off");
    ++cur.depth;
  }
  return wrap(cur.id, cur.width, cur.depth);
}

DFEVar KernelBuilder::clip9(const DFEVar& v) {
  NodeId lo = design_.constant(kWord, idct::kSampleMin);
  NodeId hi = design_.constant(kWord, idct::kSampleMax);
  NodeId below = design_.slt(v.id, lo);
  NodeId above = design_.sgt(v.id, hi);
  NodeId clamped =
      design_.mux(below, lo, design_.mux(above, hi, v.id, kWord), kWord);
  NodeId nine = design_.slice(clamped, 8, 0);
  return wrap(delay1(nine, "p_clip"), 9, v.depth + 1);
}

DFEVar KernelBuilder::state_reg(int width, const std::string& label) {
  return wrap(design_.reg(width, 0, label), width, 0);
}

void KernelBuilder::state_update(const DFEVar& reg, const DFEVar& enable,
                                 const DFEVar& next) {
  // Enable and next must be contemporaneous; the caller aligns them by
  // construction (state registers sit outside the stream schedule).
  design_.set_reg_next(reg.id, design_.sext(next.id, reg.width), enable.id);
}

netlist::Design KernelBuilder::finish() {
  const int d = max_depth_;
  for (auto& [port, v] : pending_outputs_) {
    DFEVar flat = balance(v, d);
    design_.output(port, flat.id);
  }
  pending_outputs_.clear();
  return std::move(design_);
}

}  // namespace hlshc::maxj
