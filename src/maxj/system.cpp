#include "maxj/system.hpp"

#include <algorithm>
#include <utility>

namespace hlshc::maxj {

SystemEvaluation evaluate_system(const Kernel& kernel,
                                 synth::NormalizedSynth kernel_synth,
                                 const PcieModel& pcie) {
  SystemEvaluation ev;
  ev.synth = std::move(kernel_synth);
  ev.kernel_tick_rate_hz = ev.synth.normal.fmax_mhz * 1e6;
  ev.pcie_bound_ops =
      pcie.bytes_per_s() * 8.0 / static_cast<double>(kernel.input_bits);
  ev.kernel_bound_ops =
      ev.kernel_tick_rate_hz / static_cast<double>(kernel.ticks_per_op);
  ev.throughput_ops = std::min(ev.pcie_bound_ops, ev.kernel_bound_ops);
  ev.pcie_limited = ev.pcie_bound_ops <= ev.kernel_bound_ops;
  // Latency: pipeline depth plus the ticks needed to stream one matrix in.
  ev.latency_ticks = kernel.depth + kernel.ticks_per_op +
                     (kernel.ticks_per_op > 1 ? 7 : 0);
  return ev;
}

}  // namespace hlshc::maxj
