#include "bsv/designs.hpp"

#include <array>
#include <string>
#include <vector>

#include "axis/stream.hpp"
#include "rtl/units.hpp"

namespace hlshc::bsv {

namespace {

using netlist::Design;
using netlist::kInvalidNode;
using netlist::NodeId;

constexpr int kRowStoreWidth = 20;

struct Ports {
  std::array<NodeId, 8> lane;
  NodeId s_valid, s_last, m_ready;
};

Ports make_ports(Design& d) {
  Ports p{};
  for (int c = 0; c < 8; ++c)
    p.lane[static_cast<size_t>(c)] =
        d.input(axis::lane_port("s", c), axis::kInElemWidth);
  p.s_valid = d.input("s_tvalid", 1);
  p.s_last = d.input("s_tlast", 1);
  p.m_ready = d.input("m_tready", 1);
  return p;
}


/// TVALID/TREADY of a BSV interface method must reflect the method's
/// *schedulable* readiness: the guard minus any more-urgent conflicting
/// rule that fires this cycle (BSC folds exactly this into the generated
/// RDY signals). Returns guard & ~OR(blockers' WILL_FIRE).
NodeId method_ready(Design& d, const ScheduleInfo& info,
                    const std::string& rule, NodeId guard) {
  for (const auto& r : info.rules) {
    if (r.name != rule) continue;
    NodeId out = guard;
    for (const std::string& blocker : r.conflicts_with)
      for (const auto& b : info.rules)
        if (b.name == blocker)
          out = d.band(out, d.bnot(b.will_fire, 1), 1);
    return out;
  }
  return guard;
}

NodeId cnt_is(Design& d, NodeId cnt4, int v) {
  return d.eq(cnt4, d.constant(4, v));
}

/// next value of a 0..7 counter held in 4 bits.
NodeId cnt_next(Design& d, NodeId cnt4) {
  return d.mux(cnt_is(d, cnt4, 7), d.constant(4, 0),
               d.add(cnt4, d.constant(4, 1), 4), 4);
}

NodeId sel3(Design& d, NodeId cnt4) { return d.slice(cnt4, 2, 0); }

}  // namespace

netlist::Design build_bsv_initial(const SchedulerOptions& options) {
  RuleModule m("bsv_initial");
  Design& d = m.design();
  Ports p = make_ports(d);

  // Phase token: 0 = IN, 1 = ROWS, 2 = COLS.
  NodeId phase = m.mk_reg(2, 0, "phase");
  NodeId in_cnt = m.mk_reg(4, 0, "in_cnt");
  NodeId out_active = m.mk_reg(1, 0, "out_active");
  NodeId out_cnt = m.mk_reg(4, 0, "out_cnt");

  std::array<std::array<NodeId, 8>, 8> in_regs, row_regs, out_regs;
  for (int r = 0; r < 8; ++r)
    for (int c = 0; c < 8; ++c) {
      auto tag = "_r" + std::to_string(r) + "c" + std::to_string(c);
      in_regs[static_cast<size_t>(r)][static_cast<size_t>(c)] =
          m.mk_reg(axis::kInElemWidth, 0, "in" + tag);
      row_regs[static_cast<size_t>(r)][static_cast<size_t>(c)] =
          m.mk_reg(kRowStoreWidth, 0, "row" + tag);
      out_regs[static_cast<size_t>(r)][static_cast<size_t>(c)] =
          m.mk_reg(axis::kOutElemWidth, 0, "out" + tag);
    }

  NodeId phase_in = d.eq(phase, d.constant(2, 0));
  NodeId phase_rows = d.eq(phase, d.constant(2, 1));
  NodeId phase_cols = d.eq(phase, d.constant(2, 2));
  NodeId in_last = cnt_is(d, in_cnt, 7);
  NodeId out_last = cnt_is(d, out_cnt, 7);

  // rule emit (most urgent): drain the output buffer row by row.
  m.add_rule("emit", d.band(out_active, p.m_ready, 1),
             {{out_cnt, cnt_next(d, out_cnt), kInvalidNode},
              {out_active, d.bnot(out_last, 1), kInvalidNode}});

  // rule collect: accept one row per cycle while in phase IN.
  {
    std::vector<RuleAction> acts;
    for (int r = 0; r < 8; ++r) {
      NodeId here = cnt_is(d, in_cnt, r);
      for (int c = 0; c < 8; ++c)
        acts.push_back({in_regs[static_cast<size_t>(r)]
                               [static_cast<size_t>(c)],
                        p.lane[static_cast<size_t>(c)], here});
    }
    acts.push_back({in_cnt, cnt_next(d, in_cnt), kInvalidNode});
    acts.push_back({phase,
                    d.mux(in_last, d.constant(2, 1), d.constant(2, 0), 2),
                    kInvalidNode});
    m.add_rule("collect", d.band(p.s_valid, phase_in, 1), std::move(acts));
  }

  // rule do_rows: all eight row passes in one cycle (the C loop, unrolled
  // in space like the reference translation).
  {
    std::vector<RuleAction> acts;
    for (int r = 0; r < 8; ++r) {
      auto out = rtl::build_row_unit(d, in_regs[static_cast<size_t>(r)]);
      for (int c = 0; c < 8; ++c)
        acts.push_back({row_regs[static_cast<size_t>(r)]
                               [static_cast<size_t>(c)],
                        d.slice(out[static_cast<size_t>(c)],
                                kRowStoreWidth - 1, 0),
                        kInvalidNode});
    }
    acts.push_back({phase, d.constant(2, 2), kInvalidNode});
    m.add_rule("do_rows", phase_rows, std::move(acts));
  }

  // rule do_cols: all eight column passes, capture the 9-bit results and
  // hand the phase token back to the input stage.
  {
    std::vector<RuleAction> acts;
    for (int col = 0; col < 8; ++col) {
      std::array<NodeId, 8> column;
      for (int r = 0; r < 8; ++r)
        column[static_cast<size_t>(r)] =
            row_regs[static_cast<size_t>(r)][static_cast<size_t>(col)];
      auto out = rtl::build_col_unit(d, column);
      for (int r = 0; r < 8; ++r)
        acts.push_back({out_regs[static_cast<size_t>(r)]
                               [static_cast<size_t>(col)],
                        out[static_cast<size_t>(r)], kInvalidNode});
    }
    acts.push_back({phase, d.constant(2, 0), kInvalidNode});
    acts.push_back({out_active, d.constant(1, 1), kInvalidNode});
    acts.push_back({out_cnt, d.constant(4, 0), kInvalidNode});
    m.add_rule("do_cols",
               d.band(phase_cols, d.bnot(out_active, 1), 1),
               std::move(acts));
  }

  ScheduleInfo sched = m.compile(options);

  d.output("s_tready", method_ready(d, sched, "collect", phase_in));
  d.output("m_tvalid", method_ready(d, sched, "emit", out_active));
  d.output("m_tlast", out_last);
  for (int c = 0; c < 8; ++c) {
    std::vector<NodeId> rows;
    for (int r = 0; r < 8; ++r)
      rows.push_back(out_regs[static_cast<size_t>(r)]
                             [static_cast<size_t>(c)]);
    d.output(axis::lane_port("m", c),
             rtl::mux_by_index(d, sel3(d, out_cnt), rows));
  }
  return m.take();
}

namespace {

struct OptModule {
  RuleModule m{"bsv_opt"};
  ScheduleInfo schedule;
};

OptModule build_opt_module(const SchedulerOptions& options) {
  OptModule om;
  RuleModule& m = om.m;
  Design& d = m.design();
  Ports p = make_ports(d);

  NodeId in_cnt = m.mk_reg(4, 0, "in_cnt");
  NodeId in_buf = m.mk_reg(1, 0, "in_buf");
  NodeId row_full0 = m.mk_reg(1, 0, "row_full0");
  NodeId row_full1 = m.mk_reg(1, 0, "row_full1");
  NodeId col_cnt = m.mk_reg(4, 0, "col_cnt");
  NodeId col_rptr = m.mk_reg(1, 0, "col_rptr");
  NodeId col_wptr = m.mk_reg(1, 0, "col_wptr");
  NodeId out_full = m.mk_reg(2, 0, "out_full");  // one Reg#(Vector#(2,Bool))
  NodeId out_cnt = m.mk_reg(4, 0, "out_cnt");
  NodeId out_rptr = m.mk_reg(1, 0, "out_rptr");

  std::array<std::array<std::array<NodeId, 8>, 8>, 2> rowbuf, outbuf;
  for (int b = 0; b < 2; ++b)
    for (int r = 0; r < 8; ++r)
      for (int c = 0; c < 8; ++c) {
        auto tag = std::to_string(b) + "_r" + std::to_string(r) + "c" +
                   std::to_string(c);
        rowbuf[static_cast<size_t>(b)][static_cast<size_t>(r)]
              [static_cast<size_t>(c)] =
            m.mk_reg(kRowStoreWidth, 0, "rowbuf" + tag);
        outbuf[static_cast<size_t>(b)][static_cast<size_t>(r)]
              [static_cast<size_t>(c)] =
            m.mk_reg(axis::kOutElemWidth, 0, "outbuf" + tag);
      }

  auto sel2 = [&](NodeId ptr, NodeId v0, NodeId v1) {
    return d.mux(ptr, v1, v0, d.node(v0).width);
  };
  auto bit_of = [&](NodeId vec2, NodeId ptr) {
    return sel2(ptr, d.slice(vec2, 0, 0), d.slice(vec2, 1, 1));
  };
  auto onehot = [&](NodeId ptr) {
    return d.mux(ptr, d.constant(2, 2), d.constant(2, 1), 2);
  };

  NodeId in_last = cnt_is(d, in_cnt, 7);
  NodeId col_at7 = cnt_is(d, col_cnt, 7);
  NodeId out_last = cnt_is(d, out_cnt, 7);
  NodeId out_full_r = bit_of(out_full, out_rptr);
  NodeId out_full_w = bit_of(out_full, col_wptr);
  NodeId row_avail = sel2(col_rptr, row_full0, row_full1);
  NodeId s_ready = d.bnot(sel2(in_buf, row_full0, row_full1), 1);
  NodeId col_guard = d.band(row_avail, d.bnot(out_full_w, 1), 1);

  // rule emit (most urgent).
  m.add_rule(
      "emit", d.band(out_full_r, p.m_ready, 1),
      {{out_cnt, cnt_next(d, out_cnt), kInvalidNode},
       {out_rptr, d.mux(out_last, d.bnot(out_rptr, 1), out_rptr, 1),
        kInvalidNode},
       {out_full, d.band(out_full, d.bnot(onehot(out_rptr), 2), 2),
        out_last}});

  // rule collect: on-the-fly row pass into the ping-pong row buffers.
  NodeId in_fire_guard = d.band(p.s_valid, s_ready, 1);
  {
    auto row_now = rtl::build_row_unit(d, p.lane);
    std::vector<RuleAction> acts;
    for (int b = 0; b < 2; ++b) {
      NodeId bank = d.eq(in_buf, d.constant(1, b));
      for (int r = 0; r < 8; ++r) {
        NodeId en = d.band(cnt_is(d, in_cnt, r), bank, 1);
        for (int c = 0; c < 8; ++c)
          acts.push_back({rowbuf[static_cast<size_t>(b)]
                                [static_cast<size_t>(r)]
                                [static_cast<size_t>(c)],
                          d.slice(row_now[static_cast<size_t>(c)],
                                  kRowStoreWidth - 1, 0),
                          en});
      }
    }
    acts.push_back({in_cnt, cnt_next(d, in_cnt), kInvalidNode});
    acts.push_back({in_buf, d.bnot(in_buf, 1), in_last});
    acts.push_back({row_full0, d.constant(1, 1),
                    d.band(in_last, d.eq(in_buf, d.constant(1, 0)), 1)});
    acts.push_back({row_full1, d.constant(1, 1),
                    d.band(in_last, d.eq(in_buf, d.constant(1, 1)), 1)});
    m.add_rule("collect", in_fire_guard, std::move(acts));
  }

  // Column datapath shared by col_step / col_finish.
  std::array<NodeId, 8> col_in;
  for (int r = 0; r < 8; ++r) {
    std::vector<NodeId> e0, e1;
    for (int c = 0; c < 8; ++c) {
      e0.push_back(rowbuf[0][static_cast<size_t>(r)][static_cast<size_t>(c)]);
      e1.push_back(rowbuf[1][static_cast<size_t>(r)][static_cast<size_t>(c)]);
    }
    col_in[static_cast<size_t>(r)] =
        sel2(col_rptr, rtl::mux_by_index(d, sel3(d, col_cnt), e0),
             rtl::mux_by_index(d, sel3(d, col_cnt), e1));
  }
  auto col_out = rtl::build_col_unit(d, col_in);

  auto outbuf_actions = [&]() {
    std::vector<RuleAction> acts;
    for (int b = 0; b < 2; ++b) {
      NodeId bank = d.eq(col_wptr, d.constant(1, b));
      for (int col = 0; col < 8; ++col) {
        NodeId en = d.band(cnt_is(d, col_cnt, col), bank, 1);
        for (int r = 0; r < 8; ++r)
          acts.push_back({outbuf[static_cast<size_t>(b)]
                                [static_cast<size_t>(r)]
                                [static_cast<size_t>(col)],
                          col_out[static_cast<size_t>(r)], en});
      }
    }
    return acts;
  };

  // rule col_step: columns 0..6.
  {
    std::vector<RuleAction> acts = outbuf_actions();
    acts.push_back({col_cnt, cnt_next(d, col_cnt), kInvalidNode});
    m.add_rule("col_step", d.band(col_guard, d.bnot(col_at7, 1), 1),
               std::move(acts));
  }

  // rule col_finish: column 7 — publishes the finished bank. It writes the
  // out_full vector, as emit does, so the scheduler serializes them: the
  // once-per-matrix bubble of the paper.
  {
    std::vector<RuleAction> acts = outbuf_actions();
    acts.push_back({col_cnt, d.constant(4, 0), kInvalidNode});
    acts.push_back({col_rptr, d.bnot(col_rptr, 1), kInvalidNode});
    acts.push_back({col_wptr, d.bnot(col_wptr, 1), kInvalidNode});
    acts.push_back({row_full0, d.constant(1, 0),
                    d.eq(col_rptr, d.constant(1, 0))});
    acts.push_back({row_full1, d.constant(1, 0),
                    d.eq(col_rptr, d.constant(1, 1))});
    acts.push_back({out_full, d.bor(out_full, onehot(col_wptr), 2),
                    kInvalidNode});
    m.add_rule("col_finish", d.band(col_guard, col_at7, 1), std::move(acts));
  }

  // collect touches row_full{0,1} to set, col_finish to clear — provably
  // disjoint banks (a bank cannot be both full and empty), asserted the
  // BSV way:
  m.mark_conflict_free("collect", "col_finish");
  // col_step and col_finish share outbuf/col_cnt but have mutually
  // exclusive guards (col_cnt != 7 vs == 7):
  m.mark_conflict_free("col_step", "col_finish");

  om.schedule = m.compile(options);

  d.output("s_tready", method_ready(d, om.schedule, "collect", s_ready));
  d.output("m_tvalid", method_ready(d, om.schedule, "emit", out_full_r));
  d.output("m_tlast", out_last);
  for (int c = 0; c < 8; ++c) {
    std::vector<NodeId> r0, r1;
    for (int r = 0; r < 8; ++r) {
      r0.push_back(outbuf[0][static_cast<size_t>(r)][static_cast<size_t>(c)]);
      r1.push_back(outbuf[1][static_cast<size_t>(r)][static_cast<size_t>(c)]);
    }
    d.output(axis::lane_port("m", c),
             sel2(out_rptr, rtl::mux_by_index(d, sel3(d, out_cnt), r0),
                  rtl::mux_by_index(d, sel3(d, out_cnt), r1)));
  }
  return om;
}

}  // namespace

netlist::Design build_bsv_opt(const SchedulerOptions& options) {
  OptModule om = build_opt_module(options);
  return om.m.take();
}

ScheduleInfo schedule_of_bsv_opt(const SchedulerOptions& options) {
  return build_opt_module(options).schedule;
}

}  // namespace hlshc::bsv
