// Bluespec-style rule framework: guarded atomic actions over registers,
// compiled to a clocked netlist by a static scheduler.
//
// A module is a set of registers plus rules. Each rule has a guard (CAN_FIRE)
// and a list of register updates that commit atomically when the rule fires.
// The compiler reproduces what the Bluespec Compiler (BSC) does:
//
//   1. conflict analysis — two rules conflict when they write a common
//      register (write-write); conflict-free rules may fire together in one
//      cycle, which is BSC's standard strengthening of the one-rule-at-a-time
//      semantics;
//   2. a static urgency order resolves conflicts: WILL_FIRE_i = CAN_FIRE_i
//      and no more-urgent conflicting rule fires this cycle;
//   3. register next-value logic is a priority mux over the firing writers.
//
// The scheduler options mirror the BSC/code-attribute knobs the paper
// sweeps 26 configurations over (urgency order, condition factoring, mux
// structure) — and, like the paper observes, they have almost no effect on
// the synthesized quality for this benchmark; the tests assert exactly that.
#pragma once

#include <string>
#include <vector>

#include "netlist/ir.hpp"

namespace hlshc::bsv {

enum class UrgencyOrder {
  kDeclaration,     ///< earlier rules win conflicts (descending_urgency default)
  kReversed,        ///< later rules win
  kConflictSorted,  ///< rules with fewer conflicts scheduled more urgent
};

enum class MuxStyle {
  kPriorityChain,  ///< nested 2:1 muxes in urgency order
  kOneHotAndOr,    ///< AND/OR network over one-hot WILL_FIREs
};

struct SchedulerOptions {
  UrgencyOrder urgency = UrgencyOrder::kDeclaration;
  MuxStyle mux_style = MuxStyle::kPriorityChain;
  /// BSC's -aggressive-conditions: factor common conflict terms into a
  /// two-level network instead of a serial chain. Functionally identical.
  bool aggressive_conditions = false;
};

struct RuleAction {
  netlist::NodeId reg;    ///< target register
  netlist::NodeId value;  ///< value written when the rule fires
  /// Optional per-action condition (BSV `if` inside a rule body): the write
  /// commits only when the rule fires AND this is true. kInvalidNode = always.
  netlist::NodeId enable = netlist::kInvalidNode;
};

struct Rule {
  std::string name;
  netlist::NodeId guard;  ///< CAN_FIRE (1 bit)
  std::vector<RuleAction> actions;
};

/// Post-compilation schedule facts, for tests and reports.
struct ScheduleInfo {
  struct RuleInfo {
    std::string name;
    netlist::NodeId will_fire;
    std::vector<std::string> conflicts_with;  ///< more-urgent conflictors
  };
  std::vector<RuleInfo> rules;
  int conflict_pairs = 0;
};

/// A module under construction. Build registers and guard/value expressions
/// directly on `design()`, declare rules, then compile() once.
class RuleModule {
 public:
  explicit RuleModule(std::string name) : design_(std::move(name)) {}

  netlist::Design& design() { return design_; }

  /// mkReg / mkRegU.
  netlist::NodeId mk_reg(int width, int64_t init, const std::string& name);

  /// Declare a rule. Guards must be 1-bit; every action's value must match
  /// its register's width. Declaration order defines default urgency.
  void add_rule(const std::string& name, netlist::NodeId guard,
                std::vector<RuleAction> actions);

  /// BSV's (* conflict_free = "a, b" *) attribute: the designer asserts the
  /// two rules never write the same register in the same cycle (their
  /// per-action enables are disjoint), so the scheduler must not serialize
  /// them. Unsound if the assertion is wrong — exactly like in BSC.
  void mark_conflict_free(const std::string& rule_a,
                          const std::string& rule_b);

  /// Compile all rules into register next-value logic. Must be called
  /// exactly once; afterwards take the design with take().
  ScheduleInfo compile(const SchedulerOptions& options = {});

  netlist::Design take() { return std::move(design_); }

  const std::vector<Rule>& rules() const { return rules_; }

 private:
  netlist::Design design_;
  std::vector<Rule> rules_;
  std::vector<netlist::NodeId> regs_;
  std::vector<std::pair<std::string, std::string>> conflict_free_;
  bool compiled_ = false;
};

}  // namespace hlshc::bsv
