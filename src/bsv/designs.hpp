// The Bluespec SystemVerilog design family of the paper.
//
//   * initial : a direct translation of the ISO 13818-4 C program into
//     rules — collect a matrix (phase IN), one rule applies all eight row
//     passes in a cycle (phase ROWS), one rule applies all eight column
//     passes (phase COLS), then a serializer rule emits. The phase-token
//     handoffs cost extra cycles, so throughput trails the Verilog initial
//     design's periodicity even though the logic is nearly the same size.
//
//   * opt : the pipelined one-row-unit/one-col-unit architecture. The
//     column engine is split into a step rule and a finish rule; the finish
//     rule and the output serializer both write the out-bank occupancy
//     vector, so BSC-style conservative scheduling serializes them whenever
//     they would fire together — once per matrix. That is the paper's
//     "bubble": measured periodicity 9 instead of 8, which "in theory could
//     be eliminated".
//
// Both designs funnel through RuleModule::compile, whose SchedulerOptions
// form the 26-configuration sweep of the paper (see tools/).
#pragma once

#include "bsv/rules.hpp"
#include "netlist/ir.hpp"

namespace hlshc::bsv {

netlist::Design build_bsv_initial(const SchedulerOptions& options = {});
netlist::Design build_bsv_opt(const SchedulerOptions& options = {});

/// Schedule facts for tests (same construction, exposing compile() output).
ScheduleInfo schedule_of_bsv_opt(const SchedulerOptions& options = {});

}  // namespace hlshc::bsv
