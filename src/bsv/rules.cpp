#include "bsv/rules.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "base/check.hpp"

namespace hlshc::bsv {

using netlist::Design;
using netlist::kInvalidNode;
using netlist::NodeId;

NodeId RuleModule::mk_reg(int width, int64_t init, const std::string& name) {
  NodeId r = design_.reg(width, init, name);
  regs_.push_back(r);
  return r;
}

void RuleModule::add_rule(const std::string& name, NodeId guard,
                          std::vector<RuleAction> actions) {
  HLSHC_CHECK(!compiled_, "add_rule after compile");
  HLSHC_CHECK(design_.node(guard).width == 1,
              "rule '" << name << "' guard must be 1 bit");
  for (const RuleAction& a : actions) {
    HLSHC_CHECK(design_.node(a.reg).op == netlist::Op::Reg,
                "rule '" << name << "' action target is not a register");
    HLSHC_CHECK(design_.node(a.reg).width == design_.node(a.value).width,
                "rule '" << name << "' action width mismatch on '"
                         << design_.node(a.reg).name << '\'');
    if (a.enable != kInvalidNode)
      HLSHC_CHECK(design_.node(a.enable).width == 1,
                  "rule '" << name << "' action enable must be 1 bit");
  }
  rules_.push_back(Rule{name, guard, std::move(actions)});
}

void RuleModule::mark_conflict_free(const std::string& rule_a,
                                    const std::string& rule_b) {
  conflict_free_.emplace_back(rule_a, rule_b);
}

ScheduleInfo RuleModule::compile(const SchedulerOptions& options) {
  HLSHC_CHECK(!compiled_, "compile called twice");
  compiled_ = true;
  Design& d = design_;

  // Write sets for conflict analysis.
  std::vector<std::set<NodeId>> writes(rules_.size());
  for (size_t i = 0; i < rules_.size(); ++i)
    for (const RuleAction& a : rules_[i].actions) writes[i].insert(a.reg);

  auto is_conflict_free = [&](size_t a, size_t b) {
    for (const auto& [x, y] : conflict_free_) {
      if ((rules_[a].name == x && rules_[b].name == y) ||
          (rules_[a].name == y && rules_[b].name == x))
        return true;
    }
    return false;
  };
  auto conflicts = [&](size_t a, size_t b) {
    if (is_conflict_free(a, b)) return false;
    for (NodeId r : writes[a])
      if (writes[b].count(r)) return true;
    return false;
  };

  // Urgency order (indices into rules_, most urgent first).
  std::vector<size_t> order(rules_.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  switch (options.urgency) {
    case UrgencyOrder::kDeclaration:
      break;
    case UrgencyOrder::kReversed:
      std::reverse(order.begin(), order.end());
      break;
    case UrgencyOrder::kConflictSorted: {
      std::vector<int> degree(rules_.size(), 0);
      for (size_t a = 0; a < rules_.size(); ++a)
        for (size_t b = 0; b < rules_.size(); ++b)
          if (a != b && conflicts(a, b)) ++degree[a];
      std::stable_sort(order.begin(), order.end(),
                       [&](size_t a, size_t b) {
                         return degree[a] < degree[b];
                       });
      break;
    }
  }

  ScheduleInfo info;
  info.rules.resize(rules_.size());

  // WILL_FIRE in urgency order.
  std::vector<NodeId> will_fire(rules_.size(), kInvalidNode);
  int conflict_pairs = 0;
  for (size_t pos = 0; pos < order.size(); ++pos) {
    size_t i = order[pos];
    NodeId wf = rules_[i].guard;
    std::vector<NodeId> blockers;
    for (size_t q = 0; q < pos; ++q) {
      size_t j = order[q];
      if (conflicts(i, j)) {
        blockers.push_back(will_fire[j]);
        info.rules[i].conflicts_with.push_back(rules_[j].name);
        ++conflict_pairs;
      }
    }
    if (!blockers.empty()) {
      if (options.aggressive_conditions) {
        // Flat two-level network: one OR of all blockers, one AND.
        NodeId any = blockers[0];
        for (size_t k = 1; k < blockers.size(); ++k)
          any = d.bor(any, blockers[k], 1);
        wf = d.band(wf, d.bnot(any, 1), 1);
      } else {
        for (NodeId blk : blockers) wf = d.band(wf, d.bnot(blk, 1), 1);
      }
    }
    will_fire[i] = wf;
    info.rules[i].name = rules_[i].name;
    info.rules[i].will_fire = wf;
  }
  info.conflict_pairs = conflict_pairs;

  // Per-register update logic from the firing writers.
  struct Writer {
    size_t rule;
    NodeId value;
    NodeId strobe;  ///< WILL_FIRE [&& enable]
  };
  std::map<NodeId, std::vector<Writer>> writers;
  for (size_t pos = 0; pos < order.size(); ++pos) {
    size_t i = order[pos];
    for (const RuleAction& a : rules_[i].actions) {
      NodeId strobe = will_fire[i];
      if (a.enable != kInvalidNode) strobe = d.band(strobe, a.enable, 1);
      writers[a.reg].push_back(Writer{i, a.value, strobe});
    }
  }

  for (NodeId r : regs_) {
    auto it = writers.find(r);
    if (it == writers.end()) {
      d.set_reg_next(r, r);  // nobody writes: hold
      continue;
    }
    const int w = d.node(r).width;
    const std::vector<Writer>& ws = it->second;  // already urgency-ordered

    NodeId any = ws[0].strobe;
    for (size_t k = 1; k < ws.size(); ++k) any = d.bor(any, ws[k].strobe, 1);

    NodeId next;
    if (options.mux_style == MuxStyle::kPriorityChain) {
      next = ws.back().value;
      for (size_t k = ws.size() - 1; k-- > 0;)
        next = d.mux(ws[k].strobe, ws[k].value, next, w);
    } else {
      // One-hot AND/OR: strobes of writers to one register are mutually
      // exclusive (conflicting rules are serialized; conflict-free pairs
      // have designer-guaranteed disjoint enables).
      next = d.band(ws[0].value, d.sext(ws[0].strobe, w), w);
      for (size_t k = 1; k < ws.size(); ++k)
        next = d.bor(next, d.band(ws[k].value, d.sext(ws[k].strobe, w), w),
                     w);
    }
    d.set_reg_next(r, next, any);
  }
  return info;
}

}  // namespace hlshc::bsv
