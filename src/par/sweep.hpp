// par::SweepRunner — parallel evaluation of independent design points.
//
// The Fig. 1 scatter, Table II and the single-knob narrative benches
// (Vivado-HLS pragmas, XLS pipeline stages) all evaluate N configurations
// where each evaluation builds its own netlist, simulates and synthesizes
// it, and shares nothing with its neighbours. SweepRunner runs those
// evaluations over a par::Pool and collects the results **in input order**,
// so a parallel sweep emits byte-identical tables/CSV to the serial one —
// only the wall clock changes.
//
// The runner also keeps sweep-level accounting (sweeps run, points
// evaluated, wall time) and can stamp it into an obs::RunReport's results
// under a "parallel" block, which is how the benches record serial-vs-
// parallel speedups in BENCH_*.json.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "par/pool.hpp"

namespace hlshc::par {

class SweepRunner {
 public:
  /// `jobs` <= 0 selects default_jobs() (HLSHC_JOBS / hardware_concurrency).
  explicit SweepRunner(int jobs = 0) : pool_(jobs) {}

  int jobs() const { return pool_.jobs(); }

  /// Evaluates fn(i) for every i in [0, n) across the pool; results land in
  /// input order. `name` labels the sweep's trace span and metrics.
  template <typename R>
  std::vector<R> map(const std::string& name, int64_t n,
                     const std::function<R(int64_t)>& fn) {
    obs::Span span("sweep." + name, "par");
    span.arg("points", n).arg("jobs", static_cast<int64_t>(jobs()));
    const int64_t start_ns = obs::now_ns();
    std::vector<R> out = pool_.parallel_map<R>(n, fn);
    record(name, n, obs::now_ns() - start_ns);
    return out;
  }

  int64_t sweeps() const { return sweeps_; }
  int64_t points() const { return points_; }
  int64_t wall_ns() const { return wall_ns_; }

  /// Stamp {"jobs", "sweeps", "points", "wall_ms"} into the report's
  /// results under the key "parallel".
  void annotate(obs::RunReport& report) const;

 private:
  void record(const std::string& name, int64_t n, int64_t ns);

  Pool pool_;
  int64_t sweeps_ = 0;
  int64_t points_ = 0;
  int64_t wall_ns_ = 0;
};

}  // namespace hlshc::par
