// par::TaskQueue — a bounded task queue with dedicated worker threads: the
// admission-control substrate of the synthesis service.
//
// The Pool (pool.hpp) parallelizes one loop at a time and blocks the caller;
// a service needs the opposite shape — callers that never block, work that
// queues, and a hard bound on how much may queue. TaskQueue provides exactly
// that and nothing more:
//
//   * try_submit(task) enqueues when the backlog is below capacity and
//     returns false otherwise — the caller decides what shedding means
//     (the service turns it into a structured `overloaded` response with a
//     retry-after hint). Submission never blocks and never allocates
//     unboundedly: the queue cannot grow past its capacity.
//   * `workers` dedicated threads pop tasks FIFO. Tasks must not throw —
//     the service wraps every handler in its own catch-all; a task that
//     does throw anyway terminates via std::terminate by design (a missing
//     catch-all in the service layer is a bug, not a runtime condition).
//   * depth() is the current backlog (queued, not yet started), exported as
//     the `par.queue.depth` gauge whenever it changes so overload episodes
//     are visible in every metrics snapshot.
//   * cancel_pending() drops queued-but-unstarted tasks (returning how many)
//     — shutdown and deadline sweeps use it; in-flight tasks always finish.
//   * drain() blocks until the queue is empty AND no task is executing —
//     the graceful-shutdown barrier.
//
// The destructor cancels pending tasks, waits for in-flight ones, and joins
// the workers.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace hlshc::par {

class TaskQueue {
 public:
  /// `workers` >= 1 threads, `capacity` >= 1 maximum backlog.
  TaskQueue(int workers, int capacity);
  /// Cancels pending tasks, waits for in-flight ones, joins the workers.
  ~TaskQueue();

  TaskQueue(const TaskQueue&) = delete;
  TaskQueue& operator=(const TaskQueue&) = delete;

  int workers() const { return workers_; }
  int capacity() const { return capacity_; }

  /// Enqueues `task` unless the backlog is at capacity; false = shed (the
  /// task was not and will not be run). Thread-safe, non-blocking.
  bool try_submit(std::function<void()> task);

  /// Tasks queued but not yet started.
  int depth() const;

  /// Drops every queued-but-unstarted task; returns how many were dropped.
  /// Tasks already executing are unaffected.
  int cancel_pending();

  /// Blocks until the queue is empty and every worker is idle.
  void drain();

  /// Total tasks ever accepted / shed by try_submit (monotonic).
  int64_t accepted() const;
  int64_t shed() const;

 private:
  void worker_main();
  void publish_depth_locked();

  int workers_ = 1;
  int capacity_ = 1;

  mutable std::mutex mutex_;
  std::condition_variable cv_work_;  ///< task available / shutdown
  std::condition_variable cv_idle_;  ///< queue empty and workers idle
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> threads_;
  int active_ = 0;  ///< tasks currently executing
  bool shutdown_ = false;
  int64_t accepted_ = 0;
  int64_t shed_ = 0;
};

}  // namespace hlshc::par
