// par::Pool — the repo's parallel execution layer: a chunked, steal-free
// thread pool for embarrassingly parallel loops.
//
// Every headline artifact (the Fig. 1 DSE scatter, Tables I/II, the fault
// campaigns) is produced by a loop whose iterations are independent: one
// fault site, one design point, one pragma/stage configuration per
// iteration. The pool parallelizes exactly that shape and nothing more:
//
//   * parallel_for(n, body) runs body(i) for every i in [0, n) across the
//     workers. Iterations are handed out as contiguous chunks from one
//     shared atomic cursor (steal-free: there are no per-worker deques to
//     steal from, so completion order is the only nondeterminism — and
//     callers write results into per-index slots, which makes the overall
//     result deterministic at any worker count);
//   * parallel_for_worker(n, body) additionally passes the worker id in
//     [0, jobs), which consumers use for worker-local state (the fault
//     campaign builds one simulation Engine per worker and reuses it
//     across that worker's sites);
//   * parallel_map(n, fn) collects fn(i) into a vector in input order.
//
// Worker count: explicit `jobs`, else the HLSHC_JOBS environment variable,
// else hardware_concurrency. jobs=1 is a strict single-threaded fallback —
// no threads are spawned and the loop runs inline on the caller, so tier-1
// determinism (and debuggability) is trivially preserved.
//
// The caller participates as worker 0; the pool spawns jobs-1 threads which
// park on a condition variable between loops. Exceptions thrown by any
// iteration stop the loop early (remaining chunks are drained unexecuted)
// and the first one is rethrown on the calling thread.
//
// Observability: when obs::enabled(), each parallel loop records per-worker
// metrics — par.worker.<k>.tasks (iterations executed), .busy_ns (time
// inside the body) and .wait_ns (time parked waiting for work) — and each
// chunk emits a trace span ("par.chunk", with worker/range args) on its
// worker's trace lane, so the Chrome trace shows the actual schedule.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <string_view>
#include <thread>
#include <vector>

#include "obs/trace.hpp"

namespace hlshc::par {

/// Hard ceiling on worker counts (absurd values are clamped here, not
/// rejected — 10000 workers is a typo for "lots", not a semantic request).
inline constexpr int kMaxJobs = 256;

/// Hard ceiling on simulation lane counts (sim::BatchSimulator packs this
/// many independent runs into one instruction-stream sweep; beyond it the
/// lane vectors outgrow the cache and batching stops paying).
inline constexpr int kMaxLanes = 64;

/// Lane count used when neither HLSHC_LANES nor --lanes says otherwise.
/// Fixed (not hardware-derived) so batched campaign results and bench
/// parameters are reproducible across hosts. 32 packs four AVX-512 (or
/// eight AVX2) vectors per instruction — wide enough to amortize dispatch,
/// measured fastest on the campaign benchmarks; lane retirement keeps
/// partially-drained batches from paying for the full width.
inline constexpr int kDefaultLanes = 32;

/// The one validator for user-provided worker counts (the HLSHC_JOBS
/// environment variable, every bench's --jobs flag, the service daemon's
/// --jobs flag). Accepts a positive decimal integer, clamps values above
/// kMaxJobs, and throws hlshc::Error naming `what` on anything else —
/// "0", "-2", "8cores" and "" are configuration mistakes that should fail
/// loudly, not silently fall back to some other worker count.
int parse_jobs(std::string_view text, std::string_view what);

/// Same validation contract for simulation lane counts (the HLSHC_LANES
/// environment variable, every bench's --lanes flag): positive decimal,
/// clamped at kMaxLanes, throws hlshc::Error naming `what` otherwise.
int parse_lanes(std::string_view text, std::string_view what);

/// Default worker count: the HLSHC_JOBS environment variable when set
/// (validated through parse_jobs — a malformed value throws rather than
/// being ignored), otherwise std::thread::hardware_concurrency (at least
/// 1). Read on every call so tests can vary the environment.
int default_jobs();

/// Default simulation lane count: HLSHC_LANES when set (validated through
/// parse_lanes), otherwise kDefaultLanes. Read on every call so tests can
/// vary the environment.
int default_lanes();

class Pool {
 public:
  /// `jobs` <= 0 selects default_jobs(). Workers (jobs-1 threads; the
  /// caller is worker 0) start immediately and park between loops.
  explicit Pool(int jobs = 0);
  /// Joins the workers. No loop may be in flight.
  ~Pool();

  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;

  int jobs() const { return jobs_; }

  /// Runs body(i) for every i in [0, n), sharded over the workers in
  /// contiguous chunks. Returns when every iteration completed (or the loop
  /// stopped on an exception, which is rethrown here). Not reentrant: one
  /// loop at a time per pool.
  void parallel_for(int64_t n, const std::function<void(int64_t)>& body);

  /// parallel_for with the executing worker's id in [0, jobs()) passed to
  /// the body, for worker-local caches (engines, scratch buffers).
  void parallel_for_worker(
      int64_t n, const std::function<void(int worker, int64_t i)>& body);

  /// fn(i) for every i in [0, n), results in input order. R must be
  /// default-constructible (results land in a pre-sized vector).
  template <typename R>
  std::vector<R> parallel_map(int64_t n,
                              const std::function<R(int64_t)>& fn) {
    std::vector<R> out(static_cast<size_t>(n));
    parallel_for(n, [&](int64_t i) { out[static_cast<size_t>(i)] = fn(i); });
    return out;
  }

 private:
  /// Per-worker accounting, flushed into the obs registry by the caller
  /// after the join barrier (so no worker touches the registry maps while
  /// another loop is being set up).
  struct WorkerStats {
    int64_t tasks = 0;    ///< iterations executed
    int64_t busy_ns = 0;  ///< wall time inside the body
    int64_t wait_ns = 0;  ///< wall time parked on the condition variable
  };

  void worker_main(int worker);
  /// Grab-and-run loop shared by workers and the caller.
  void run_chunks(int worker);
  void flush_stats(int64_t n);

  int jobs_ = 1;
  std::vector<std::thread> threads_;
  std::vector<WorkerStats> stats_;

  std::mutex mutex_;
  std::condition_variable cv_work_;  ///< signals a new loop / shutdown
  std::condition_variable cv_done_;  ///< signals all workers left the loop
  uint64_t epoch_ = 0;               ///< bumped per loop; workers wake on it
  bool shutdown_ = false;
  int workers_in_loop_ = 0;
  int64_t loop_start_ns_ = 0;  ///< epoch bump time, for queue-wait metrics
  /// The caller's request context at loop start; workers install it for the
  /// loop's duration so their spans/events join the caller's span tree.
  obs::TraceContext loop_trace_;

  // Current-loop state (valid while workers_in_loop_ > 0).
  const std::function<void(int, int64_t)>* body_ = nullptr;
  int64_t n_ = 0;
  int64_t chunk_ = 1;
  std::atomic<int64_t> cursor_{0};
  std::atomic<bool> failed_{false};
  std::exception_ptr error_;
};

}  // namespace hlshc::par
