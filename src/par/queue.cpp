#include "par/queue.hpp"

#include <utility>

#include "base/check.hpp"
#include "obs/metrics.hpp"

namespace hlshc::par {

TaskQueue::TaskQueue(int workers, int capacity)
    : workers_(workers), capacity_(capacity) {
  HLSHC_CHECK(workers >= 1, "TaskQueue needs at least one worker, got "
                                << workers);
  HLSHC_CHECK(capacity >= 1, "TaskQueue needs capacity >= 1, got "
                                 << capacity);
  threads_.reserve(static_cast<size_t>(workers_));
  for (int w = 0; w < workers_; ++w)
    threads_.emplace_back([this] { worker_main(); });
}

TaskQueue::~TaskQueue() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.clear();
    shutdown_ = true;
  }
  cv_work_.notify_all();
  for (std::thread& t : threads_) t.join();
}

bool TaskQueue::try_submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shutdown_ || static_cast<int>(queue_.size()) >= capacity_) {
      ++shed_;
      return false;
    }
    queue_.push_back(std::move(task));
    ++accepted_;
    publish_depth_locked();
  }
  cv_work_.notify_one();
  return true;
}

int TaskQueue::depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<int>(queue_.size());
}

int TaskQueue::cancel_pending() {
  std::lock_guard<std::mutex> lock(mutex_);
  const int dropped = static_cast<int>(queue_.size());
  queue_.clear();
  publish_depth_locked();
  if (dropped > 0 && active_ == 0) cv_idle_.notify_all();
  return dropped;
}

void TaskQueue::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

int64_t TaskQueue::accepted() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return accepted_;
}

int64_t TaskQueue::shed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return shed_;
}

void TaskQueue::worker_main() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    cv_work_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
    if (shutdown_ && queue_.empty()) return;
    std::function<void()> task = std::move(queue_.front());
    queue_.pop_front();
    ++active_;
    publish_depth_locked();
    lock.unlock();
    task();  // service layer guarantees noexcept semantics (catch-all inside)
    lock.lock();
    --active_;
    if (queue_.empty() && active_ == 0) cv_idle_.notify_all();
  }
}

void TaskQueue::publish_depth_locked() {
  if (obs::enabled())
    obs::registry()
        .gauge("par.queue.depth")
        ->set(static_cast<double>(queue_.size()));
}

}  // namespace hlshc::par
