#include "par/pool.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <string>

#include "base/check.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace hlshc::par {

namespace {

// Shared validation behind parse_jobs / parse_lanes: strict positive
// decimal, clamped at `max`. `noun` only flavours the error text.
int parse_positive_count(std::string_view text, std::string_view what,
                         std::string_view noun, long max) {
  const std::string s(text);
  char* end = nullptr;
  errno = 0;
  const long v = std::strtol(s.c_str(), &end, 10);
  // First-char digit check: strtol quietly skips leading whitespace and
  // accepts sign characters, neither of which is a valid count.
  HLSHC_CHECK(!s.empty() && s[0] >= '0' && s[0] <= '9' &&
                  end == s.c_str() + s.size() && errno == 0,
              what << " must be a decimal " << noun << " count, got '" << s
                   << '\'');
  HLSHC_CHECK(v > 0, what << " must be a positive " << noun
                          << " count, got '" << s
                          << "' (use 1 for serial; omit the option for the "
                             "default)");
  return static_cast<int>(std::min(v, max));
}

}  // namespace

int parse_jobs(std::string_view text, std::string_view what) {
  return parse_positive_count(text, what, "worker",
                              static_cast<long>(kMaxJobs));
}

int parse_lanes(std::string_view text, std::string_view what) {
  return parse_positive_count(text, what, "lane",
                              static_cast<long>(kMaxLanes));
}

int default_jobs() {
  if (const char* env = std::getenv("HLSHC_JOBS"))
    return parse_jobs(env, "HLSHC_JOBS");
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

int default_lanes() {
  if (const char* env = std::getenv("HLSHC_LANES"))
    return parse_lanes(env, "HLSHC_LANES");
  return kDefaultLanes;
}

Pool::Pool(int jobs) : jobs_(jobs <= 0 ? default_jobs() : jobs) {
  stats_.resize(static_cast<size_t>(jobs_));
  threads_.reserve(static_cast<size_t>(jobs_ - 1));
  for (int w = 1; w < jobs_; ++w)
    threads_.emplace_back([this, w] { worker_main(w); });
}

Pool::~Pool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  cv_work_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void Pool::parallel_for(int64_t n,
                        const std::function<void(int64_t)>& body) {
  parallel_for_worker(n, [&body](int, int64_t i) { body(i); });
}

void Pool::parallel_for_worker(
    int64_t n, const std::function<void(int worker, int64_t i)>& body) {
  if (n <= 0) return;

  body_ = &body;
  n_ = n;
  cursor_.store(0, std::memory_order_relaxed);
  failed_.store(false, std::memory_order_relaxed);
  error_ = nullptr;

  if (jobs_ == 1 || n == 1) {
    // Single-threaded fallback: one chunk, run inline on the caller in
    // index order. No threads wake, no locks are taken.
    chunk_ = n;
    run_chunks(0);
  } else {
    // Chunks trade dispatch overhead against load balance; heterogeneous
    // iterations (design points, fault sites with hangs) favour small
    // chunks, so aim for ~8 chunks per worker.
    chunk_ = std::max<int64_t>(1, n / (static_cast<int64_t>(jobs_) * 8));
    {
      std::lock_guard<std::mutex> lock(mutex_);
      workers_in_loop_ = jobs_ - 1;
      loop_start_ns_ = obs::now_ns();
      loop_trace_ = obs::current_trace();  // adopted by the woken workers
      ++epoch_;
    }
    cv_work_.notify_all();
    run_chunks(0);
    std::unique_lock<std::mutex> lock(mutex_);
    cv_done_.wait(lock, [this] { return workers_in_loop_ == 0; });
  }

  body_ = nullptr;
  flush_stats(n);
  if (error_) {
    std::exception_ptr error = error_;
    error_ = nullptr;
    std::rethrow_exception(error);
  }
}

void Pool::worker_main(int worker) {
  uint64_t seen = 0;
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    cv_work_.wait(lock, [&] { return shutdown_ || epoch_ != seen; });
    if (shutdown_) return;
    seen = epoch_;
    const int64_t loop_start = loop_start_ns_;
    const obs::TraceContext loop_trace = loop_trace_;
    lock.unlock();
    // Queue wait: how long this loop's work sat before the worker reached
    // it (wakeup latency — there is no other queueing in a steal-free pool).
    stats_[static_cast<size_t>(worker)].wait_ns +=
        obs::now_ns() - loop_start;
    {
      // Adopt the caller's request context for the loop: chunk spans and any
      // events the body emits land in the one span tree of that request.
      obs::TraceScope scope(loop_trace);
      run_chunks(worker);
    }
    lock.lock();
    if (--workers_in_loop_ == 0) cv_done_.notify_one();
  }
}

void Pool::run_chunks(int worker) {
  WorkerStats& stats = stats_[static_cast<size_t>(worker)];
  const int64_t busy_start = obs::now_ns();
  int64_t executed = 0;
  while (!failed_.load(std::memory_order_relaxed)) {
    const int64_t begin = cursor_.fetch_add(chunk_, std::memory_order_relaxed);
    if (begin >= n_) break;
    const int64_t end = std::min(begin + chunk_, n_);
    obs::Span span("par.chunk", "par");
    span.arg("worker", static_cast<int64_t>(worker))
        .arg("begin", begin)
        .arg("end", end);
    try {
      for (int64_t i = begin;
           i < end && !failed_.load(std::memory_order_relaxed); ++i) {
        (*body_)(worker, i);
        ++executed;
      }
    } catch (...) {
      // First failure wins; the cursor keeps advancing past n_ so every
      // worker drains out without running further iterations.
      std::lock_guard<std::mutex> lock(mutex_);
      if (!error_) error_ = std::current_exception();
      failed_.store(true, std::memory_order_relaxed);
    }
  }
  stats.tasks += executed;
  stats.busy_ns += obs::now_ns() - busy_start;
}

void Pool::flush_stats(int64_t n) {
  if (!obs::enabled()) {
    for (WorkerStats& s : stats_) s = WorkerStats{};
    return;
  }
  obs::Registry& reg = obs::registry();
  reg.counter("par.pool.loops")->add(1);
  reg.counter("par.pool.items")->add(n);
  reg.gauge("par.pool.jobs")->set(jobs_);
  for (int w = 0; w < jobs_; ++w) {
    WorkerStats& s = stats_[static_cast<size_t>(w)];
    const std::string prefix = "par.worker." + std::to_string(w);
    reg.counter(prefix + ".tasks")->add(s.tasks);
    reg.counter(prefix + ".busy_ns")->add(s.busy_ns);
    reg.counter(prefix + ".wait_ns")->add(s.wait_ns);
    s = WorkerStats{};
  }
}

}  // namespace hlshc::par
