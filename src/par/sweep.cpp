#include "par/sweep.hpp"

#include "obs/metrics.hpp"

namespace hlshc::par {

void SweepRunner::record(const std::string& name, int64_t n, int64_t ns) {
  ++sweeps_;
  points_ += n;
  wall_ns_ += ns;
  if (obs::enabled()) {
    obs::registry().counter("par.sweep." + name + ".points")->add(n);
    obs::registry().timer("par.sweep." + name + ".wall_ns")->record_ns(ns);
  }
}

void SweepRunner::annotate(obs::RunReport& report) const {
  obs::Json block = obs::Json::object();
  block.set("jobs", obs::Json::number(static_cast<int64_t>(jobs())))
      .set("sweeps", obs::Json::number(sweeps_))
      .set("points", obs::Json::number(points_))
      .set("wall_ms", obs::Json::number(static_cast<double>(wall_ns_) / 1e6));
  report.results().set("parallel", std::move(block));
}

}  // namespace hlshc::par
