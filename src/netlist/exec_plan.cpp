#include "netlist/exec_plan.hpp"

#include <algorithm>
#include <mutex>

#include "obs/trace.hpp"

namespace hlshc::netlist {

namespace {

uint64_t width_mask(int width) {
  return width >= 64 ? ~uint64_t{0} : ((uint64_t{1} << width) - 1);
}

}  // namespace

ExecPlan::ExecPlan(const Design& d) {
  obs::Span span("plan.compile", "netlist");
  span.arg("design", d.name())
      .arg("nodes", static_cast<int64_t>(d.node_count()));
  d.validate();
  const std::vector<NodeId>& order = d.topo_order();
  const size_t n = d.node_count();
  slot_count_ = n;

  // Levelize: sources (inputs, constants, register outputs) are level 0;
  // every other node settles one level after its slowest operand. Reg
  // operands are next-state logic, not a combinational dependency.
  std::vector<int32_t> level(n, 0);
  for (NodeId id : order) {
    const Node& nd = d.node(id);
    if (nd.op == Op::Input || nd.op == Op::Const || nd.op == Op::Reg) continue;
    int32_t lv = 0;
    for (NodeId o : nd.operands)
      lv = std::max(lv, level[static_cast<size_t>(o)] + 1);
    level[static_cast<size_t>(id)] = lv;
  }

  // Stream order: by (level, node id). Inputs are externally driven and
  // constants are hoisted, so neither occupies a per-cycle instruction.
  std::vector<NodeId> stream;
  stream.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Op op = d.node(static_cast<NodeId>(i)).op;
    if (op == Op::Input || op == Op::Const) continue;
    stream.push_back(static_cast<NodeId>(i));
  }
  // Within a level all instructions are independent, so group them by
  // opcode: the dispatch branch then sees long same-op runs and predicts.
  std::stable_sort(stream.begin(), stream.end(), [&](NodeId x, NodeId y) {
    const int32_t lx = level[static_cast<size_t>(x)];
    const int32_t ly = level[static_cast<size_t>(y)];
    if (lx != ly) return lx < ly;
    return d.node(x).op < d.node(y).op;
  });

  auto lower = [&](NodeId id) {
    const Node& nd = d.node(id);
    ExecInstr in;
    in.op = nd.op;
    in.dst = id;
    in.width = nd.width;
    in.mem = static_cast<int16_t>(nd.mem);
    in.dsh = static_cast<uint8_t>(64 - nd.width);
    if (!nd.operands.empty()) {
      in.a = nd.operands[0];
      in.amask = width_mask(d.node(in.a).width);
    }
    if (nd.operands.size() > 1) {
      in.b = nd.operands[1];
      in.bmask = width_mask(d.node(in.b).width);
    }
    if (nd.operands.size() > 2) in.c = nd.operands[2];
    switch (nd.op) {
      case Op::Const:
      case Op::Reg:
        in.imm = nd.imm;  // canonical constant / reset value
        break;
      case Op::Shl:
      case Op::AShr:
      case Op::LShr:
        in.imm = nd.imm;  // shift amount
        break;
      case Op::Slice:
        in.imm = nd.imm;  // low bit; width already encodes hi-lo+1
        break;
      case Op::Concat:
        in.imm = d.node(in.b).width;  // low operand's width
        break;
      case Op::MemRead:
        in.imm = d.memories()[static_cast<size_t>(nd.mem)].depth;
        break;
      default:
        break;
    }
    return in;
  };

  int32_t max_level = 0;
  for (NodeId id : stream)
    max_level = std::max(max_level, level[static_cast<size_t>(id)]);
  instrs_.reserve(stream.size());
  level_starts_.assign(static_cast<size_t>(max_level) + 2, 0);
  for (NodeId id : stream) {
    level_starts_[static_cast<size_t>(level[static_cast<size_t>(id)]) + 1]++;
    instrs_.push_back(lower(id));
  }
  for (size_t l = 1; l < level_starts_.size(); ++l)
    level_starts_[l] += level_starts_[l - 1];

  for (size_t i = 0; i < n; ++i) {
    const Node& nd = d.node(static_cast<NodeId>(i));
    if (nd.op == Op::Const) {
      const_instrs_.push_back(lower(static_cast<NodeId>(i)));
    } else if (nd.op == Op::Reg) {
      RegCommit rc;
      rc.reg = static_cast<int32_t>(i);
      rc.next = nd.operands[0];
      rc.enable = nd.operands.size() > 1 ? nd.operands[1] : -1;
      rc.init = nd.imm;
      reg_commits_.push_back(rc);
    }
  }

  // Memory writes commit in node order (later writes win on collisions),
  // exactly like the interpreter.
  for (NodeId wr : d.mem_writes()) {
    const Node& nd = d.node(wr);
    MemCommit mc;
    mc.mem = nd.mem;
    mc.addr = nd.operands[0];
    mc.data = nd.operands[1];
    mc.enable = nd.operands[2];
    mc.addr_mask = width_mask(d.node(mc.addr).width);
    mem_commits_.push_back(mc);
  }

  for (const Memory& m : d.memories())
    mem_shapes_.push_back(MemShape{m.width, m.depth});
}

std::shared_ptr<const ExecPlan> ExecPlan::for_design(const Design& design) {
  // Fault campaigns build one engine per pool worker (and per lane-group)
  // over a shared design, so first use of a design's plan can race: guard
  // the check-compile-store sequence with one process-wide mutex. Compiles
  // are one-time per design and cheap relative to a campaign, so a single
  // mutex (rather than per-design state) keeps Design header-simple; after
  // the first compile every caller takes the lock briefly and reads the
  // cached handle.
  static std::mutex mutex;
  std::lock_guard<std::mutex> lock(mutex);
  auto cached =
      std::static_pointer_cast<const ExecPlan>(design.cached_exec_plan());
  if (cached) return cached;
  auto plan = std::make_shared<const ExecPlan>(design);
  design.set_cached_exec_plan(plan);
  return plan;
}

}  // namespace hlshc::netlist
