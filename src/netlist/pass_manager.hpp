// Pass registry and pipeline driver for the netlist optimization passes.
//
// Passes are named objects composed into a PassManager pipeline that runs
// them in order, iterating the whole sequence to a fixed point. Every pass
// execution is wrapped in an obs span plus change/latency metrics, and an
// optional verifier hook differentially checks the design after each pass
// that reported changes — the concrete simulator-backed verifier lives in
// sim/verify.hpp to keep this layer free of a sim dependency. This mirrors
// the pass-manager shape of production HLS middle-ends: the frontends emit
// naive netlists and rely on one shared, instrumented cleanup pipeline.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "base/deadline.hpp"
#include "netlist/passes.hpp"

namespace hlshc::netlist {

/// A named netlist transformation. run() mutates the design in place and
/// returns the number of rewrites it performed (0 = fixed point reached for
/// this pass). Passes that rebuild the design (DCE) assign the result back.
class Pass {
 public:
  virtual ~Pass() = default;
  virtual std::string name() const = 0;
  virtual int run(Design& d) = 0;
};

/// Checks a transformed design against its pre-pass original, returning a
/// divergence description or std::nullopt when behaviour is preserved.
using PassVerifier = std::function<std::optional<std::string>(
    const Design& before, const Design& after)>;

struct PipelineOptions {
  bool fixed_point = true;  ///< iterate the sequence until no pass changes
  int max_iterations = 10;  ///< safety bound on fixed-point rounds
  /// When set, runs after every pass that reported changes; a non-empty
  /// result aborts the pipeline with an Error naming the offending pass.
  PassVerifier verifier;
  /// When set, the pipeline checks the token before every pass and aborts
  /// with DeadlineExceeded once it expires — the per-request wall budget of
  /// the synthesis service reaches into the compile inner loop through this.
  std::shared_ptr<const Deadline> deadline;
};

/// An ordered pipeline of passes. Immutable once built; run() never mutates
/// the input design.
class PassManager {
 public:
  PassManager& add(std::unique_ptr<Pass> pass);
  /// Adds a registered pass by name (throws Error on unknown names).
  PassManager& add(const std::string& pass_name);

  size_t size() const { return passes_.size(); }
  std::vector<std::string> pass_names() const;

  /// Runs the pipeline over a copy of `d`. Per-pass breakdowns accumulate
  /// into `stats` (merged, not overwritten). Throws Error with the pass name
  /// when options.verifier reports a divergence.
  Design run(const Design& d, PassStats* stats = nullptr,
             const PipelineOptions& options = {}) const;

 private:
  std::vector<std::shared_ptr<Pass>> passes_;
};

/// Names accepted by make_pass()/PassManager::add, in default-pipeline order.
std::vector<std::string> registered_pass_names();

/// Instantiates a registered pass by name (throws Error on unknown names).
std::unique_ptr<Pass> make_pass(const std::string& pass_name);

/// The canonical cleanup pipeline every frontend goes through:
/// fold_constants [, narrow] [, strength_reduce], mux_simplify, copy_prop,
/// cse, eliminate_dead. Strength reduction is opt-in because expanding
/// multipliers changes the DSP/LUT split that Table II normalizes over.
/// Width narrowing is on by default (every flow executes and is costed at
/// range-proven widths); narrow = false reproduces the pre-narrowing
/// pipeline bit for bit.
PassManager default_pipeline(bool strength_reduce = false,
                             bool narrow = true);

}  // namespace hlshc::netlist
