#include "netlist/passes.hpp"

#include <algorithm>
#include <numeric>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "synth/csd.hpp"

namespace hlshc::netlist {

namespace {

/// Evaluate a purely combinational node from constant operand values.
std::optional<BitVec> eval_const(const Design& d, const Node& n,
                                 const std::vector<std::optional<BitVec>>& v) {
  auto get = [&](int i) -> const BitVec& {
    return *v[static_cast<size_t>(n.operands[static_cast<size_t>(i)])];
  };
  for (NodeId o : n.operands)
    if (!v[static_cast<size_t>(o)].has_value()) return std::nullopt;

  const int w = n.width;
  switch (n.op) {
    case Op::Add: return BitVec::add(get(0), get(1), w);
    case Op::Sub: return BitVec::sub(get(0), get(1), w);
    case Op::Mul: return BitVec::mul(get(0), get(1), w);
    case Op::Neg: return BitVec::neg(get(0), w);
    case Op::Shl: return BitVec::shl(get(0), static_cast<int>(n.imm), w);
    case Op::AShr: return BitVec::ashr(get(0), static_cast<int>(n.imm), w);
    case Op::LShr: return BitVec::lshr(get(0), static_cast<int>(n.imm), w);
    case Op::And: return BitVec::band(get(0), get(1), w);
    case Op::Or: return BitVec::bor(get(0), get(1), w);
    case Op::Xor: return BitVec::bxor(get(0), get(1), w);
    case Op::Not: return BitVec::bnot(get(0), w);
    case Op::Eq: return BitVec::eq(get(0), get(1));
    case Op::Ne: return BitVec::ne(get(0), get(1));
    case Op::Slt: return BitVec::slt(get(0), get(1));
    case Op::Sle: return BitVec::sle(get(0), get(1));
    case Op::Sgt: return BitVec::sgt(get(0), get(1));
    case Op::Sge: return BitVec::sge(get(0), get(1));
    case Op::Ult: return BitVec::ult(get(0), get(1));
    case Op::Mux: return BitVec::mux(get(0), get(1), get(2), w);
    case Op::Slice:
      return BitVec::slice(get(0), static_cast<int>(n.imm2),
                           static_cast<int>(n.imm));
    case Op::Concat: return BitVec::concat(get(0), get(1));
    case Op::SExt: return BitVec::sext(get(0), w);
    case Op::ZExt: return BitVec::zext(get(0), w);
    default: return std::nullopt;  // sequential / ports: never folded
  }
  (void)d;
}

/// Path-compressed lookup in a node-replacement forest.
NodeId find_repl(std::vector<NodeId>& repl, NodeId id) {
  while (repl[static_cast<size_t>(id)] != id) {
    repl[static_cast<size_t>(id)] =
        repl[static_cast<size_t>(repl[static_cast<size_t>(id)])];
    id = repl[static_cast<size_t>(id)];
  }
  return id;
}

/// Rewrites every operand reference through `repl`, returning the number of
/// slots that changed. Covers register feedback edges because it runs after
/// the whole classification sweep.
int apply_replacements(Design& d, std::vector<NodeId>& repl) {
  int changes = 0;
  for (size_t i = 0; i < d.node_count(); ++i) {
    const Node& n = d.node(static_cast<NodeId>(i));
    for (size_t k = 0; k < n.operands.size(); ++k) {
      NodeId target = find_repl(repl, n.operands[k]);
      if (target != n.operands[k]) {
        d.mutable_node(static_cast<NodeId>(i)).operands[k] = target;
        ++changes;
      }
    }
  }
  return changes;
}

}  // namespace

int PassStats::total_changes() const {
  return std::accumulate(runs.begin(), runs.end(), 0,
                         [](int acc, const PassRun& r) {
                           return acc + r.changes;
                         });
}

size_t PassStats::nodes_before() const {
  return runs.empty() ? 0 : runs.front().nodes_before;
}

size_t PassStats::nodes_after() const {
  return runs.empty() ? 0 : runs.back().nodes_after;
}

void PassStats::merge(const PassStats& other) {
  folded += other.folded;
  removed += other.removed;
  iterations += other.iterations;
  runs.insert(runs.end(), other.runs.begin(), other.runs.end());
}

PassStats fold_constants(Design& d) {
  PassStats stats;
  const auto order = d.topo_order();
  std::vector<std::optional<BitVec>> values(d.node_count());
  for (NodeId id : order) {
    Node& n = d.mutable_node(id);
    if (n.op == Op::Const) {
      values[static_cast<size_t>(id)] = BitVec(n.width, n.imm);
      continue;
    }
    auto folded = eval_const(d, n, values);
    if (folded.has_value()) {
      values[static_cast<size_t>(id)] = *folded;
      n.op = Op::Const;
      n.imm = folded->to_int64();
      n.operands.clear();
      ++stats.folded;
    }
  }
  return stats;
}

Design eliminate_dead(const Design& d, PassStats* stats) {
  // Mark: everything reachable (through any operand edge, including through
  // registers) from outputs and memory writes is live.
  std::vector<bool> live(d.node_count(), false);
  std::vector<NodeId> work;
  auto mark = [&](NodeId id) {
    if (!live[static_cast<size_t>(id)]) {
      live[static_cast<size_t>(id)] = true;
      work.push_back(id);
    }
  };
  for (NodeId id : d.outputs()) mark(id);
  for (NodeId id : d.mem_writes()) mark(id);
  while (!work.empty()) {
    NodeId id = work.back();
    work.pop_back();
    for (NodeId o : d.node(id).operands) mark(o);
  }
  // Inputs are ports: they survive even if unused (they are pins).
  for (NodeId id : d.inputs()) live[static_cast<size_t>(id)] = true;

  Design out(d.name());
  std::unordered_map<NodeId, NodeId> remap;
  for (int m = 0; m < static_cast<int>(d.memories().size()); ++m) {
    const Memory& mem = d.memories()[static_cast<size_t>(m)];
    int id = out.add_memory(mem.name, mem.width, mem.depth);
    HLSHC_CHECK(id == m, "memory remap mismatch");
  }
  int removed = 0;
  // Two passes so register feedback (reg -> logic -> same reg) remaps
  // correctly: first create all live nodes with empty reg operands, then
  // wire the register next-values.
  for (size_t i = 0; i < d.node_count(); ++i) {
    NodeId id = static_cast<NodeId>(i);
    if (!live[i]) {
      ++removed;
      continue;
    }
    const Node& n = d.node(id);
    if (n.op == Op::Reg) {
      remap[id] = out.reg(n.width, n.imm, n.name);
      continue;
    }
    Node copy = n;
    copy.operands.clear();
    for (NodeId o : n.operands) {
      auto it = remap.find(o);
      HLSHC_CHECK(it != remap.end(),
                  "dangling operand during DCE (non-topological input)");
      copy.operands.push_back(it->second);
    }
    // Re-push via the public builder path where bookkeeping matters.
    NodeId nid;
    if (n.op == Op::Input) {
      nid = out.input(n.name, n.width);
    } else if (n.op == Op::Output) {
      nid = out.output(n.name, copy.operands[0]);
    } else if (n.op == Op::MemWrite) {
      nid = out.mem_write(n.mem, copy.operands[0], copy.operands[1],
                          copy.operands[2]);
    } else {
      // Generic copy through mutable access: build a placeholder constant
      // and overwrite it. This keeps one code path for all comb ops.
      nid = out.constant(n.width, 0);
      Node& dst = out.mutable_node(nid);
      dst = copy;
    }
    remap[id] = nid;
  }
  for (size_t i = 0; i < d.node_count(); ++i) {
    NodeId id = static_cast<NodeId>(i);
    if (!live[i]) continue;
    const Node& n = d.node(id);
    if (n.op != Op::Reg) continue;
    HLSHC_CHECK(!n.operands.empty(), "live register without next-value");
    NodeId next = remap.at(n.operands[0]);
    NodeId en = n.operands.size() > 1 ? remap.at(n.operands[1]) : kInvalidNode;
    out.set_reg_next(remap.at(id), next, en);
  }
  if (stats) stats->removed += removed;
  return out;
}

int propagate_copies(Design& d) {
  // Classification sweep in index order (a valid topo order for
  // combinational nodes: only register feedback edges point forward), then
  // one rewrite sweep so feedback operands are forwarded too.
  std::vector<NodeId> repl(d.node_count());
  std::iota(repl.begin(), repl.end(), 0);
  for (size_t i = 0; i < d.node_count(); ++i) {
    const Node& n = d.node(static_cast<NodeId>(i));
    if (n.operands.empty()) continue;
    const int src_width = d.node(find_repl(repl, n.operands[0])).width;
    bool is_copy = false;
    switch (n.op) {
      case Op::SExt:
      case Op::ZExt:
        is_copy = n.width == src_width;
        break;
      case Op::Slice:
        is_copy = n.imm == 0 && n.imm2 == src_width - 1;
        break;
      case Op::Shl:
      case Op::AShr:
      case Op::LShr:
        is_copy = n.imm == 0 && n.width == src_width;
        break;
      default:
        break;
    }
    if (is_copy)
      repl[i] = find_repl(repl, n.operands[0]);
  }
  return apply_replacements(d, repl);
}

int simplify_mux_bool(Design& d) {
  int rewrites = 0;
  std::vector<NodeId> repl(d.node_count());
  std::iota(repl.begin(), repl.end(), 0);

  for (size_t i = 0; i < d.node_count(); ++i) {
    const NodeId id = static_cast<NodeId>(i);
    // Resolve operands through replacements made earlier this sweep so
    // chains (e.g. x^x feeding a mux select) simplify in one pass.
    const Node& n = d.node(id);
    std::vector<NodeId> ops;
    ops.reserve(n.operands.size());
    for (NodeId o : n.operands) ops.push_back(find_repl(repl, o));

    auto imm_of = [&](size_t k) -> std::optional<int64_t> {
      const Node& opn = d.node(ops[k]);
      if (opn.op != Op::Const) return std::nullopt;
      return opn.imm;  // canonical sign-extended (all-ones == -1)
    };
    // Rewrite node `id` to a width-adapted copy of `src`. SExt of the
    // canonical sign-extended value is exact at any width relation; when the
    // widths match, users are forwarded directly this same sweep.
    auto to_copy = [&](NodeId src) {
      Node& m = d.mutable_node(id);
      m.op = Op::SExt;
      m.operands = {src};
      m.imm = 0;
      m.imm2 = 0;
      if (d.node(src).width == m.width) repl[i] = src;
      ++rewrites;
    };
    auto to_const = [&](int64_t value) {
      Node& m = d.mutable_node(id);
      m.op = Op::Const;
      m.operands.clear();
      m.imm = BitVec(m.width, value).to_int64();
      m.imm2 = 0;
      ++rewrites;
    };
    auto to_unary = [&](Op op, NodeId src) {
      Node& m = d.mutable_node(id);
      m.op = op;
      m.operands = {src};
      m.imm = 0;
      m.imm2 = 0;
      ++rewrites;
    };

    switch (n.op) {
      case Op::Mux: {
        if (auto sel = imm_of(0)) {
          to_copy(*sel != 0 ? ops[1] : ops[2]);
        } else if (ops[1] == ops[2]) {
          to_copy(ops[1]);  // mux(c,a,a) -> a
        }
        break;
      }
      case Op::And: {
        auto a = imm_of(0), b = imm_of(1);
        if ((a && *a == 0) || (b && *b == 0)) to_const(0);
        else if (a && *a == -1) to_copy(ops[1]);
        else if (b && *b == -1) to_copy(ops[0]);
        else if (ops[0] == ops[1]) to_copy(ops[0]);
        break;
      }
      case Op::Or: {
        auto a = imm_of(0), b = imm_of(1);
        if ((a && *a == -1) || (b && *b == -1)) to_const(-1);
        else if (a && *a == 0) to_copy(ops[1]);
        else if (b && *b == 0) to_copy(ops[0]);
        else if (ops[0] == ops[1]) to_copy(ops[0]);
        break;
      }
      case Op::Xor: {
        auto a = imm_of(0), b = imm_of(1);
        if (ops[0] == ops[1]) to_const(0);
        else if (a && *a == 0) to_copy(ops[1]);
        else if (b && *b == 0) to_copy(ops[0]);
        else if (a && *a == -1) to_unary(Op::Not, ops[1]);
        else if (b && *b == -1) to_unary(Op::Not, ops[0]);
        break;
      }
      case Op::Add: {
        auto a = imm_of(0), b = imm_of(1);
        if (a && *a == 0) to_copy(ops[1]);
        else if (b && *b == 0) to_copy(ops[0]);
        break;
      }
      case Op::Sub: {
        auto a = imm_of(0), b = imm_of(1);
        if (ops[0] == ops[1]) to_const(0);
        else if (b && *b == 0) to_copy(ops[0]);
        else if (a && *a == 0) to_unary(Op::Neg, ops[1]);
        break;
      }
      case Op::Mul: {
        auto a = imm_of(0), b = imm_of(1);
        if ((a && *a == 0) || (b && *b == 0)) to_const(0);
        else if (a && *a == 1) to_copy(ops[1]);
        else if (b && *b == 1) to_copy(ops[0]);
        else if (a && *a == -1) to_unary(Op::Neg, ops[1]);
        else if (b && *b == -1) to_unary(Op::Neg, ops[0]);
        break;
      }
      case Op::Not: {
        // not(not(x)) -> x, exact only when no width change truncates bits.
        const Node& inner = d.node(ops[0]);
        if (inner.op == Op::Not && inner.width == n.width) {
          NodeId x = find_repl(repl, inner.operands[0]);
          if (d.node(x).width == n.width) to_copy(x);
        }
        break;
      }
      case Op::Neg: {
        const Node& inner = d.node(ops[0]);
        if (inner.op == Op::Neg && inner.width == n.width) {
          NodeId x = find_repl(repl, inner.operands[0]);
          if (d.node(x).width == n.width) to_copy(x);
        }
        break;
      }
      case Op::Eq:
      case Op::Sle:
      case Op::Sge: {
        if (ops[0] == ops[1]) to_const(1);
        break;
      }
      case Op::Ne:
      case Op::Slt:
      case Op::Sgt:
      case Op::Ult: {
        if (ops[0] == ops[1]) to_const(0);
        break;
      }
      default:
        break;
    }
  }
  // Forward users of same-width copies created above (and fix feedback
  // edges). Operand rewrites are not counted again on top of the node
  // rewrites — the node count alone decides fixed-point convergence, and the
  // next round's copy-prop handles any remaining SExt shims.
  std::vector<NodeId> forward = repl;
  apply_replacements(d, forward);
  return rewrites;
}

int eliminate_common_subexpr(Design& d) {
  std::vector<NodeId> repl(d.node_count());
  std::iota(repl.begin(), repl.end(), 0);
  std::unordered_map<std::string, NodeId> table;
  table.reserve(d.node_count());
  for (size_t i = 0; i < d.node_count(); ++i) {
    const NodeId id = static_cast<NodeId>(i);
    const Node& n = d.node(id);
    switch (n.op) {
      case Op::Input:
      case Op::Output:
      case Op::Reg:       // stateful: two regs with one next are distinct FFs
      case Op::MemWrite:  // side-effecting
        continue;
      default:
        break;
    }
    // MemRead is combinational here (same memory + same address reads the
    // same port value within a cycle), so it participates like any comb op.
    std::vector<NodeId> ops;
    ops.reserve(n.operands.size());
    for (NodeId o : n.operands) ops.push_back(find_repl(repl, o));
    switch (n.op) {
      case Op::Add:
      case Op::Mul:
      case Op::And:
      case Op::Or:
      case Op::Xor:
      case Op::Eq:
      case Op::Ne:
        std::sort(ops.begin(), ops.end());  // commutative: canonical order
        break;
      default:
        break;
    }
    std::string key;
    key.reserve(32);
    key += std::to_string(static_cast<int>(n.op));
    key += '|';
    key += std::to_string(n.width);
    key += '|';
    key += std::to_string(n.imm);
    key += '|';
    key += std::to_string(n.imm2);
    key += '|';
    key += std::to_string(n.mem);
    for (NodeId o : ops) {
      key += ',';
      key += std::to_string(o);
    }
    auto [it, inserted] = table.emplace(std::move(key), id);
    if (!inserted) repl[i] = it->second;
  }
  return apply_replacements(d, repl);
}

NodeId build_shift_add(Design& d, NodeId x, int64_t constant, int width,
                       bool csd) {
  if (constant == 0) return d.constant(width, 0);

  struct Digit {
    int shift;
    int sign;
  };
  std::vector<Digit> digits;
  if (csd) {
    for (const synth::CsdDigit& g : synth::csd_decompose(constant))
      digits.push_back({g.shift, g.sign});
  } else {
    bool neg = constant < 0;
    uint64_t v = neg ? static_cast<uint64_t>(-constant)
                     : static_cast<uint64_t>(constant);
    for (int s = 0; v != 0; ++s, v >>= 1)
      if (v & 1) digits.push_back({s, neg ? -1 : +1});
  }

  // Partial products are just wires (shifts); combine with a balanced
  // adder tree, folding signs into adds/subs.
  struct Term {
    NodeId value;
    int sign;
  };
  std::vector<Term> terms;
  for (const Digit& g : digits)
    terms.push_back({d.shl(d.sext(x, width), g.shift, width), g.sign});

  while (terms.size() > 1) {
    std::vector<Term> next;
    for (size_t i = 0; i + 1 < terms.size(); i += 2) {
      Term a = terms[i], b = terms[i + 1];
      // Normalize so the combined term carries sign +1 where possible.
      NodeId v;
      int sign;
      if (a.sign == b.sign) {
        v = d.add(a.value, b.value, width);
        sign = a.sign;
      } else if (a.sign > 0) {
        v = d.sub(a.value, b.value, width);
        sign = +1;
      } else {
        v = d.sub(b.value, a.value, width);
        sign = +1;
      }
      next.push_back({v, sign});
    }
    if (terms.size() % 2) next.push_back(terms.back());
    terms = std::move(next);
  }
  NodeId out = terms[0].value;
  if (terms[0].sign < 0) out = d.neg(out, width);
  return out;
}

int strength_reduce_mults(Design& d) {
  // Rebuilds the design so each shift-add tree is spliced in *before* its
  // consumers: appending trees to the existing design would create forward
  // operand references, which the index-order invariant (combinational
  // operands always point backwards) forbids.
  int expanded = 0;
  Design out(d.name());
  for (int m = 0; m < static_cast<int>(d.memories().size()); ++m) {
    const Memory& mem = d.memories()[static_cast<size_t>(m)];
    int mid = out.add_memory(mem.name, mem.width, mem.depth);
    HLSHC_CHECK(mid == m, "memory remap mismatch");
  }
  std::unordered_map<NodeId, NodeId> remap;
  for (size_t i = 0; i < d.node_count(); ++i) {
    const NodeId id = static_cast<NodeId>(i);
    const Node& n = d.node(id);
    if (n.op == Op::Reg) {
      remap[id] = out.reg(n.width, n.imm, n.name);
      continue;
    }
    if (n.op == Op::Mul) {
      const bool a_const = d.node(n.operands[0]).op == Op::Const;
      const bool b_const = d.node(n.operands[1]).op == Op::Const;
      if (a_const != b_const) {  // both const is fold's job
        const int64_t c = a_const ? d.node(n.operands[0]).imm
                                  : d.node(n.operands[1]).imm;
        const NodeId x = remap.at(a_const ? n.operands[1] : n.operands[0]);
        remap[id] = build_shift_add(out, x, c, n.width, /*csd=*/true);
        ++expanded;
        continue;
      }
    }
    Node copy = n;
    copy.operands.clear();
    for (NodeId o : n.operands) copy.operands.push_back(remap.at(o));
    NodeId nid;
    if (n.op == Op::Input) {
      nid = out.input(n.name, n.width);
    } else if (n.op == Op::Output) {
      nid = out.output(n.name, copy.operands[0]);
    } else if (n.op == Op::MemWrite) {
      nid = out.mem_write(n.mem, copy.operands[0], copy.operands[1],
                          copy.operands[2]);
    } else {
      nid = out.constant(n.width, 0);
      out.mutable_node(nid) = copy;
    }
    remap[id] = nid;
  }
  for (size_t i = 0; i < d.node_count(); ++i) {
    const NodeId id = static_cast<NodeId>(i);
    const Node& n = d.node(id);
    if (n.op != Op::Reg) continue;
    HLSHC_CHECK(!n.operands.empty(), "register without next-value");
    NodeId next = remap.at(n.operands[0]);
    NodeId en = n.operands.size() > 1 ? remap.at(n.operands[1]) : kInvalidNode;
    out.set_reg_next(remap.at(id), next, en);
  }
  if (expanded > 0) d = std::move(out);
  return expanded;
}

NodeId xor_reduce(Design& d, NodeId v) {
  const int w = d.node(v).width;
  NodeId acc = d.slice(v, 0, 0);
  for (int b = 1; b < w; ++b) acc = d.bxor(acc, d.slice(v, b, b), 1);
  return acc;
}

NodeId majority3(Design& d, NodeId a, NodeId b, NodeId c) {
  const int w = d.node(a).width;
  HLSHC_CHECK(d.node(b).width == w && d.node(c).width == w,
              "majority3: operand widths " << w << '/' << d.node(b).width
                                           << '/' << d.node(c).width
                                           << " differ");
  NodeId ab = d.band(a, b, w);
  NodeId ac = d.band(a, c, w);
  NodeId bc = d.band(b, c, w);
  return d.bor(d.bor(ab, ac, w), bc, w);
}

}  // namespace hlshc::netlist
