#include "netlist/passes.hpp"

#include <optional>
#include <unordered_map>
#include <vector>

#include "obs/trace.hpp"

namespace hlshc::netlist {

namespace {

/// Evaluate a purely combinational node from constant operand values.
std::optional<BitVec> eval_const(const Design& d, const Node& n,
                                 const std::vector<std::optional<BitVec>>& v) {
  auto get = [&](int i) -> const BitVec& {
    return *v[static_cast<size_t>(n.operands[static_cast<size_t>(i)])];
  };
  for (NodeId o : n.operands)
    if (!v[static_cast<size_t>(o)].has_value()) return std::nullopt;

  const int w = n.width;
  switch (n.op) {
    case Op::Add: return BitVec::add(get(0), get(1), w);
    case Op::Sub: return BitVec::sub(get(0), get(1), w);
    case Op::Mul: return BitVec::mul(get(0), get(1), w);
    case Op::Neg: return BitVec::neg(get(0), w);
    case Op::Shl: return BitVec::shl(get(0), static_cast<int>(n.imm), w);
    case Op::AShr: return BitVec::ashr(get(0), static_cast<int>(n.imm), w);
    case Op::LShr: return BitVec::lshr(get(0), static_cast<int>(n.imm), w);
    case Op::And: return BitVec::band(get(0), get(1), w);
    case Op::Or: return BitVec::bor(get(0), get(1), w);
    case Op::Xor: return BitVec::bxor(get(0), get(1), w);
    case Op::Not: return BitVec::bnot(get(0), w);
    case Op::Eq: return BitVec::eq(get(0), get(1));
    case Op::Ne: return BitVec::ne(get(0), get(1));
    case Op::Slt: return BitVec::slt(get(0), get(1));
    case Op::Sle: return BitVec::sle(get(0), get(1));
    case Op::Sgt: return BitVec::sgt(get(0), get(1));
    case Op::Sge: return BitVec::sge(get(0), get(1));
    case Op::Ult: return BitVec::ult(get(0), get(1));
    case Op::Mux: return BitVec::mux(get(0), get(1), get(2), w);
    case Op::Slice:
      return BitVec::slice(get(0), static_cast<int>(n.imm2),
                           static_cast<int>(n.imm));
    case Op::Concat: return BitVec::concat(get(0), get(1));
    case Op::SExt: return BitVec::sext(get(0), w);
    case Op::ZExt: return BitVec::zext(get(0), w);
    default: return std::nullopt;  // sequential / ports: never folded
  }
  (void)d;
}

}  // namespace

PassStats fold_constants(Design& d) {
  PassStats stats;
  const auto order = d.topo_order();
  std::vector<std::optional<BitVec>> values(d.node_count());
  for (NodeId id : order) {
    Node& n = d.mutable_node(id);
    if (n.op == Op::Const) {
      values[static_cast<size_t>(id)] = BitVec(n.width, n.imm);
      continue;
    }
    auto folded = eval_const(d, n, values);
    if (folded.has_value()) {
      values[static_cast<size_t>(id)] = *folded;
      n.op = Op::Const;
      n.imm = folded->to_int64();
      n.operands.clear();
      ++stats.folded;
    }
  }
  return stats;
}

Design eliminate_dead(const Design& d, PassStats* stats) {
  // Mark: everything reachable (through any operand edge, including through
  // registers) from outputs and memory writes is live.
  std::vector<bool> live(d.node_count(), false);
  std::vector<NodeId> work;
  auto mark = [&](NodeId id) {
    if (!live[static_cast<size_t>(id)]) {
      live[static_cast<size_t>(id)] = true;
      work.push_back(id);
    }
  };
  for (NodeId id : d.outputs()) mark(id);
  for (NodeId id : d.mem_writes()) mark(id);
  while (!work.empty()) {
    NodeId id = work.back();
    work.pop_back();
    for (NodeId o : d.node(id).operands) mark(o);
  }
  // Inputs are ports: they survive even if unused (they are pins).
  for (NodeId id : d.inputs()) live[static_cast<size_t>(id)] = true;

  Design out(d.name());
  std::unordered_map<NodeId, NodeId> remap;
  for (int m = 0; m < static_cast<int>(d.memories().size()); ++m) {
    const Memory& mem = d.memories()[static_cast<size_t>(m)];
    int id = out.add_memory(mem.name, mem.width, mem.depth);
    HLSHC_CHECK(id == m, "memory remap mismatch");
  }
  int removed = 0;
  // Two passes so register feedback (reg -> logic -> same reg) remaps
  // correctly: first create all live nodes with empty reg operands, then
  // wire the register next-values.
  for (size_t i = 0; i < d.node_count(); ++i) {
    NodeId id = static_cast<NodeId>(i);
    if (!live[i]) {
      ++removed;
      continue;
    }
    const Node& n = d.node(id);
    if (n.op == Op::Reg) {
      remap[id] = out.reg(n.width, n.imm, n.name);
      continue;
    }
    Node copy = n;
    copy.operands.clear();
    for (NodeId o : n.operands) {
      auto it = remap.find(o);
      HLSHC_CHECK(it != remap.end(),
                  "dangling operand during DCE (non-topological input)");
      copy.operands.push_back(it->second);
    }
    // Re-push via the public builder path where bookkeeping matters.
    NodeId nid;
    if (n.op == Op::Input) {
      nid = out.input(n.name, n.width);
    } else if (n.op == Op::Output) {
      nid = out.output(n.name, copy.operands[0]);
    } else if (n.op == Op::MemWrite) {
      nid = out.mem_write(n.mem, copy.operands[0], copy.operands[1],
                          copy.operands[2]);
    } else {
      // Generic copy through mutable access: build a placeholder constant
      // and overwrite it. This keeps one code path for all comb ops.
      nid = out.constant(n.width, 0);
      Node& dst = out.mutable_node(nid);
      dst = copy;
    }
    remap[id] = nid;
  }
  for (size_t i = 0; i < d.node_count(); ++i) {
    NodeId id = static_cast<NodeId>(i);
    if (!live[i]) continue;
    const Node& n = d.node(id);
    if (n.op != Op::Reg) continue;
    HLSHC_CHECK(!n.operands.empty(), "live register without next-value");
    NodeId next = remap.at(n.operands[0]);
    NodeId en = n.operands.size() > 1 ? remap.at(n.operands[1]) : kInvalidNode;
    out.set_reg_next(remap.at(id), next, en);
  }
  if (stats) stats->removed += removed;
  return out;
}

NodeId xor_reduce(Design& d, NodeId v) {
  const int w = d.node(v).width;
  NodeId acc = d.slice(v, 0, 0);
  for (int b = 1; b < w; ++b) acc = d.bxor(acc, d.slice(v, b, b), 1);
  return acc;
}

NodeId majority3(Design& d, NodeId a, NodeId b, NodeId c) {
  const int w = d.node(a).width;
  HLSHC_CHECK(d.node(b).width == w && d.node(c).width == w,
              "majority3: operand widths " << w << '/' << d.node(b).width
                                           << '/' << d.node(c).width
                                           << " differ");
  NodeId ab = d.band(a, b, w);
  NodeId ac = d.band(a, c, w);
  NodeId bc = d.band(b, c, w);
  return d.bor(d.bor(ab, ac, w), bc, w);
}

Design optimize(const Design& d, PassStats* stats) {
  Design work = d;  // fold mutates in place
  PassStats local;
  {
    obs::Span span("pass.fold_constants", "netlist");
    span.arg("design", d.name());
    local = fold_constants(work);
    span.arg("folded", static_cast<int64_t>(local.folded));
  }
  obs::Span span("pass.eliminate_dead", "netlist");
  span.arg("design", d.name());
  Design out = eliminate_dead(work, &local);
  span.arg("removed", static_cast<int64_t>(local.removed));
  if (stats) {
    stats->folded += local.folded;
    stats->removed += local.removed;
  }
  return out;
}

}  // namespace hlshc::netlist
