#include "netlist/instantiate.hpp"

#include <vector>

#include "base/check.hpp"

namespace hlshc::netlist {

std::map<std::string, NodeId> instantiate(
    Design& host, const Design& sub,
    const std::map<std::string, NodeId>& inputs) {
  // Memories first.
  std::vector<int> mem_remap;
  for (const Memory& m : sub.memories())
    mem_remap.push_back(
        host.add_memory(sub.name() + "." + m.name, m.width, m.depth));

  std::vector<NodeId> remap(sub.node_count(), kInvalidNode);

  // Pass 1: create nodes (registers with deferred next-values).
  for (size_t i = 0; i < sub.node_count(); ++i) {
    NodeId id = static_cast<NodeId>(i);
    const Node& n = sub.node(id);
    switch (n.op) {
      case Op::Input: {
        auto it = inputs.find(n.name);
        HLSHC_CHECK(it != inputs.end(),
                    "instantiate: no driver for input '" << n.name << "' of "
                                                         << sub.name());
        HLSHC_CHECK(host.node(it->second).width == n.width,
                    "instantiate: width mismatch on '" << n.name << '\'');
        remap[i] = it->second;
        break;
      }
      case Op::Output:
        remap[i] = remap[static_cast<size_t>(n.operands[0])];
        break;
      case Op::Reg:
        remap[i] = host.reg(n.width, n.imm, sub.name() + "." + n.name);
        break;
      case Op::MemWrite: {
        NodeId a = remap[static_cast<size_t>(n.operands[0])];
        NodeId v = remap[static_cast<size_t>(n.operands[1])];
        NodeId e = remap[static_cast<size_t>(n.operands[2])];
        remap[i] = host.mem_write(mem_remap[static_cast<size_t>(n.mem)], a,
                                  v, e);
        break;
      }
      case Op::MemRead: {
        NodeId a = remap[static_cast<size_t>(n.operands[0])];
        remap[i] = host.mem_read(mem_remap[static_cast<size_t>(n.mem)], a);
        break;
      }
      default: {
        Node copy = n;
        copy.operands.clear();
        for (NodeId o : n.operands) {
          NodeId m = remap[static_cast<size_t>(o)];
          HLSHC_CHECK(m != kInvalidNode,
                      "instantiate: forward reference through non-reg node");
          copy.operands.push_back(m);
        }
        NodeId nid = host.constant(copy.width, 0);
        host.mutable_node(nid) = copy;
        remap[i] = nid;
        break;
      }
    }
  }

  // Pass 2: wire register next-values (may reference later nodes).
  for (size_t i = 0; i < sub.node_count(); ++i) {
    const Node& n = sub.node(static_cast<NodeId>(i));
    if (n.op != Op::Reg) continue;
    HLSHC_CHECK(!n.operands.empty(),
                "instantiate: register without next-value in " << sub.name());
    NodeId next = remap[static_cast<size_t>(n.operands[0])];
    NodeId en = n.operands.size() > 1
                    ? remap[static_cast<size_t>(n.operands[1])]
                    : kInvalidNode;
    host.set_reg_next(remap[i], next, en);
  }

  std::map<std::string, NodeId> outs;
  for (NodeId o : sub.outputs())
    outs[sub.node(o).name] = remap[static_cast<size_t>(o)];
  return outs;
}

}  // namespace hlshc::netlist
