#include "netlist/range.hpp"

#include <algorithm>

#include "base/bitvec.hpp"

namespace hlshc::netlist {

namespace {

// Saturation bound well inside int64 so interval arithmetic cannot
// overflow (products of two in-bound values fit in __int128 and are
// clamped back).
constexpr int64_t kSat = Interval::kSat;

int64_t clamp_sat(__int128 v) {
  if (v > kSat) return kSat;
  if (v < -kSat) return -kSat;
  return static_cast<int64_t>(v);
}

Interval make(__int128 lo, __int128 hi) {
  return Interval{clamp_sat(lo), clamp_sat(hi)};
}

Interval mul_iv(const Interval& a, const Interval& b) {
  __int128 c[4] = {static_cast<__int128>(a.lo) * b.lo,
                   static_cast<__int128>(a.lo) * b.hi,
                   static_cast<__int128>(a.hi) * b.lo,
                   static_cast<__int128>(a.hi) * b.hi};
  __int128 lo = c[0], hi = c[0];
  for (__int128 v : c) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  return make(lo, hi);
}

int64_t floor_shift(int64_t v, int k) {
  return k >= 63 ? (v < 0 ? -1 : 0) : (v >> k);
}

}  // namespace

Interval Interval::full(int width) {
  if (width >= 58) return Interval{-kSat, kSat};
  int64_t h = (int64_t{1} << (width - 1)) - 1;
  return Interval{-h - 1, h};
}

Interval Interval::join(const Interval& o) const {
  return Interval{std::min(lo, o.lo), std::max(hi, o.hi)};
}

bool Interval::fits(int width) const {
  Interval f = full(width);
  return lo >= f.lo && hi <= f.hi;
}

int Interval::min_width() const {
  int w = std::max(BitVec::min_signed_width(lo),
                   BitVec::min_signed_width(hi));
  return w;
}

RangeAnalysis::RangeAnalysis(const Design& design) {
  const size_t n = design.node_count();
  ranges_.assign(n, Interval{0, 0});
  widths_.assign(n, 1);
  const auto order = design.topo_order();

  // Registers start at their reset point and are widened to their declared
  // range if still unstable after the iteration budget.
  for (size_t i = 0; i < n; ++i) {
    const Node& nd = design.node(static_cast<NodeId>(i));
    if (nd.op == Op::Reg) ranges_[i] = Interval::point(nd.imm);
  }

  constexpr int kMaxIter = 24;
  for (int iter = 0; iter <= kMaxIter; ++iter) {
    bool changed = false;
    const bool widen = iter == kMaxIter;  // last round: give up on cyclers

    for (NodeId id : order) {
      const Node& nd = design.node(id);
      const size_t i = static_cast<size_t>(id);
      auto in = [&](int k) -> const Interval& {
        return ranges_[static_cast<size_t>(
            nd.operands[static_cast<size_t>(k)])];
      };
      Interval r;
      switch (nd.op) {
        case Op::Input:
          r = Interval::full(nd.width);
          break;
        case Op::Const:
          r = Interval::point(nd.imm);
          break;
        case Op::Output:
          r = in(0);
          break;
        case Op::Add:
          r = make(static_cast<__int128>(in(0).lo) + in(1).lo,
                   static_cast<__int128>(in(0).hi) + in(1).hi);
          break;
        case Op::Sub:
          r = make(static_cast<__int128>(in(0).lo) - in(1).hi,
                   static_cast<__int128>(in(0).hi) - in(1).lo);
          break;
        case Op::Mul:
          r = mul_iv(in(0), in(1));
          break;
        case Op::Neg:
          r = make(-static_cast<__int128>(in(0).hi),
                   -static_cast<__int128>(in(0).lo));
          break;
        case Op::Shl: {
          int k = static_cast<int>(nd.imm);
          __int128 f = k >= 100 ? 0 : (static_cast<__int128>(1) << k);
          r = make(static_cast<__int128>(in(0).lo) * f,
                   static_cast<__int128>(in(0).hi) * f);
          break;
        }
        case Op::AShr:
          r = Interval{floor_shift(in(0).lo, static_cast<int>(nd.imm)),
                       floor_shift(in(0).hi, static_cast<int>(nd.imm))};
          break;
        case Op::Mux:
          r = in(1).join(in(2));
          break;
        case Op::SExt:
          r = in(0);
          break;
        case Op::ZExt:
          // Zero extension reinterprets negatives as large positives; keep
          // it simple unless the source is already non-negative.
          r = in(0).lo >= 0 ? in(0) : Interval::full(nd.width);
          break;
        case Op::Slice:
          // A slice from bit 0 wide enough for the source range passes the
          // value through unchanged.
          if (nd.imm == 0 && in(0).min_width() <= nd.width) {
            r = in(0);
          } else {
            r = Interval::full(nd.width);
          }
          break;
        case Op::Reg: {
          Interval next = nd.operands.empty()
                              ? Interval::full(nd.width)
                              : ranges_[static_cast<size_t>(nd.operands[0])];
          r = ranges_[i].join(next);
          if (widen && (r.lo != ranges_[i].lo || r.hi != ranges_[i].hi))
            r = Interval::full(nd.width);
          break;
        }
        case Op::Eq: case Op::Ne: case Op::Slt: case Op::Sle:
        case Op::Sgt: case Op::Sge: case Op::Ult:
        case Op::LShr: case Op::And: case Op::Or: case Op::Xor:
        case Op::Not: case Op::Concat: case Op::MemRead:
        case Op::MemWrite:
        default:
          r = Interval::full(nd.width);
          break;
      }
      // Wrap-around safety: if the candidate interval does not fit the
      // declared width, the hardware wraps — fall back to the full range.
      if (!r.fits(nd.width)) r = Interval::full(nd.width);
      if (r.lo != ranges_[i].lo || r.hi != ranges_[i].hi) {
        ranges_[i] = r;
        changed = true;
      }
    }
    if (!changed) break;
  }

  for (size_t i = 0; i < n; ++i) {
    const Node& nd = design.node(static_cast<NodeId>(i));
    widths_[i] = std::min(nd.width, ranges_[i].min_width());
  }
}

}  // namespace hlshc::netlist
