// Module instantiation: splice one design into another.
//
// Copies every node of `sub` into `host`, substituting `sub`'s input ports
// with caller-provided driver nodes and returning the nodes that drove
// `sub`'s output ports. Registers, memories and feedback loops are
// preserved. This is how wrappers (AXI adapters, testbenches) embed
// generated kernels — the netlist equivalent of a Verilog module instance
// flattened at elaboration.
#pragma once

#include <map>
#include <string>

#include "netlist/ir.hpp"

namespace hlshc::netlist {

/// `inputs` maps each of sub's input port names to a host node of the same
/// width (missing bindings throw). Returns sub's output port name -> host
/// node carrying that output's value.
std::map<std::string, NodeId> instantiate(
    Design& host, const Design& sub,
    const std::map<std::string, NodeId>& inputs);

}  // namespace hlshc::netlist
