#include "netlist/dump.hpp"

#include <sstream>

namespace hlshc::netlist {

std::string dump_text(const Design& d) {
  std::ostringstream os;
  os << "design " << d.name() << " {\n";
  for (const Memory& m : d.memories())
    os << "  memory " << m.name << " : " << m.width << " x " << m.depth
       << "\n";
  for (size_t i = 0; i < d.node_count(); ++i) {
    const Node& n = d.node(static_cast<NodeId>(i));
    os << "  %" << i << " = " << op_name(n.op) << '<' << n.width << '>';
    if (!n.operands.empty()) {
      os << " (";
      for (size_t j = 0; j < n.operands.size(); ++j) {
        if (j) os << ", ";
        os << '%' << n.operands[j];
      }
      os << ')';
    }
    switch (n.op) {
      case Op::Const: os << " value=" << n.imm; break;
      case Op::Shl: case Op::AShr: case Op::LShr:
        os << " amount=" << n.imm; break;
      case Op::Slice: os << " [" << n.imm2 << ':' << n.imm << ']'; break;
      case Op::Reg: os << " init=" << n.imm; break;
      case Op::MemRead: case Op::MemWrite: os << " mem=" << n.mem; break;
      default: break;
    }
    if (!n.name.empty()) os << " \"" << n.name << '"';
    os << '\n';
  }
  os << "}\n";
  return os.str();
}

std::string dump_dot(const Design& d) {
  std::ostringstream os;
  os << "digraph \"" << d.name() << "\" {\n  rankdir=LR;\n";
  for (size_t i = 0; i < d.node_count(); ++i) {
    const Node& n = d.node(static_cast<NodeId>(i));
    os << "  n" << i << " [label=\"" << op_name(n.op) << '<' << n.width
       << '>';
    if (n.op == Op::Const) os << ' ' << n.imm;
    if (!n.name.empty()) os << "\\n" << n.name;
    os << "\", shape=" << (n.op == Op::Reg ? "box" : "ellipse") << "];\n";
    for (NodeId o : n.operands)
      os << "  n" << o << " -> n" << i << ";\n";
  }
  os << "}\n";
  return os.str();
}

std::string summarize(const Design& d) {
  DesignStats s = compute_stats(d);
  std::ostringstream os;
  os << d.name() << ": " << s.nodes << " nodes, " << s.regs << " regs ("
     << s.reg_bits << " bits), " << s.adders << " adders, " << s.const_mults
     << " const-mults, " << s.multipliers << " mults, " << s.muxes
     << " muxes, " << s.memories << " memories";
  return os.str();
}

}  // namespace hlshc::netlist
