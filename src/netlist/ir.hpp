// Word-level netlist intermediate representation.
//
// Every design family in this repository — Verilog-style structural RTL,
// the Chisel-style eDSL, compiled BSV rule schedules, XLS pipelines, MaxJ
// kernels and the output of the mini HLS compiler — elaborates to this one
// IR. A single cycle-accurate simulator (src/sim) and a single synthesis
// cost model (src/synth) then make all flows directly comparable, mirroring
// the paper's methodology where every tool's output funnels through Vivado.
//
// The IR is a DAG of fixed-width nodes. Sequential elements are `Reg` nodes
// (operands: next-value and optional enable) and `MemWrite` sinks attached to
// declared memories; `Reg` breaks combinational cycles. All
// arithmetic is signed two's complement, wrapped to the node width — the
// semantics of BitVec.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "base/bitvec.hpp"
#include "base/check.hpp"

namespace hlshc::netlist {

using NodeId = int32_t;
inline constexpr NodeId kInvalidNode = -1;

enum class Op : uint8_t {
  Input,    ///< top-level input port; `name` is the port name
  Output,   ///< top-level output port; operand 0 is the driven value
  Const,    ///< literal; `imm` holds the signed value
  Add, Sub, Mul, Neg,
  Shl, AShr, LShr,            ///< shift by constant amount `imm`
  And, Or, Xor, Not,
  Eq, Ne, Slt, Sle, Sgt, Sge, Ult,   ///< comparisons; 1-bit result
  Mux,      ///< operands: sel (1 bit), then-value, else-value
  Slice,    ///< bits [imm2:imm] of operand 0
  Concat,   ///< {op0, op1} with op0 as the MSB part
  SExt, ZExt,
  Reg,      ///< operands: next [, enable]; `imm` is the reset value
  MemRead,  ///< combinational read; operand 0 = address, `mem` = memory id
  MemWrite, ///< sink; operands: address, data, enable; `mem` = memory id
};

const char* op_name(Op op);

/// True for ops that produce a 1-bit result regardless of operand widths.
bool is_comparison(Op op);

/// True for zero-cost "wiring" ops (slices, extensions, concatenation,
/// constant shifts) that consume neither LUTs nor delay.
bool is_wiring(Op op);

struct Node {
  Op op = Op::Const;
  int width = 1;                  ///< result width in bits (1..64)
  std::vector<NodeId> operands;   ///< indices into Design::nodes
  int64_t imm = 0;                ///< const value / shift amount / slice lo / reg init
  int64_t imm2 = 0;               ///< slice hi
  int32_t mem = -1;               ///< memory id for MemRead/MemWrite
  std::string name;               ///< port name, or optional debug label
};

/// A synchronous-write, combinational-read memory (distributed-RAM-like).
/// BRAM-style registered reads are modelled by placing a Reg after MemRead.
struct Memory {
  std::string name;
  int width = 0;   ///< word width in bits
  int depth = 0;   ///< number of words
};

/// A complete synchronous single-clock design.
class Design {
 public:
  explicit Design(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  // ---- construction ------------------------------------------------------

  NodeId input(const std::string& port_name, int width);
  NodeId output(const std::string& port_name, NodeId value);
  NodeId constant(int width, int64_t value);

  NodeId add(NodeId a, NodeId b, int width);
  NodeId sub(NodeId a, NodeId b, int width);
  NodeId mul(NodeId a, NodeId b, int width);
  NodeId neg(NodeId a, int width);
  NodeId shl(NodeId a, int amount, int width);
  NodeId ashr(NodeId a, int amount, int width);
  NodeId lshr(NodeId a, int amount, int width);
  NodeId band(NodeId a, NodeId b, int width);
  NodeId bor(NodeId a, NodeId b, int width);
  NodeId bxor(NodeId a, NodeId b, int width);
  NodeId bnot(NodeId a, int width);
  NodeId eq(NodeId a, NodeId b);
  NodeId ne(NodeId a, NodeId b);
  NodeId slt(NodeId a, NodeId b);
  NodeId sle(NodeId a, NodeId b);
  NodeId sgt(NodeId a, NodeId b);
  NodeId sge(NodeId a, NodeId b);
  NodeId ult(NodeId a, NodeId b);
  NodeId mux(NodeId sel, NodeId t, NodeId f, int width);
  NodeId slice(NodeId a, int hi, int lo);
  NodeId concat(NodeId hi, NodeId lo);
  NodeId sext(NodeId a, int width);
  NodeId zext(NodeId a, int width);

  /// A register with reset value `init`. The next-value operand may be set
  /// later via `set_reg_next` to allow feedback loops.
  NodeId reg(int width, int64_t init = 0, const std::string& label = {});
  void set_reg_next(NodeId reg_node, NodeId next,
                    NodeId enable = kInvalidNode);

  int add_memory(const std::string& mem_name, int width, int depth);
  NodeId mem_read(int mem_id, NodeId addr);
  NodeId mem_write(int mem_id, NodeId addr, NodeId data, NodeId enable);

  // ---- inspection --------------------------------------------------------

  const Node& node(NodeId id) const {
    HLSHC_CHECK(id >= 0 && static_cast<size_t>(id) < nodes_.size(),
                "bad node id " << id << " in design '" << name_ << '\'');
    return nodes_[static_cast<size_t>(id)];
  }
  size_t node_count() const { return nodes_.size(); }

  const std::vector<NodeId>& inputs() const { return inputs_; }
  const std::vector<NodeId>& outputs() const { return outputs_; }
  const std::vector<NodeId>& mem_writes() const { return mem_writes_; }
  const std::vector<Memory>& memories() const { return memories_; }

  NodeId find_input(std::string_view port_name) const;
  NodeId find_output(std::string_view port_name) const;

  /// Total input + output port bits (the paper's N_IO, before clock/reset).
  int io_bit_count() const;

  /// Combinational topological order over all nodes. Reg values are treated
  /// as cycle sources (their operands are still ordered, as next-value
  /// logic). Throws hlshc::Error on a combinational cycle.
  ///
  /// The order is computed once and cached until the design is mutated, so
  /// constructing thousands of simulators over one design (a fault campaign)
  /// re-sorts the graph exactly once. The returned reference is invalidated
  /// by any mutation; use topo_order_shared() to hold it across mutations.
  const std::vector<NodeId>& topo_order() const;

  /// The cached order as a shared handle that stays valid (though stale)
  /// even if the design is later mutated. Engines hold this.
  std::shared_ptr<const std::vector<NodeId>> topo_order_shared() const;

  /// Structural sanity: operand ids valid, widths legal, mux selectors
  /// 1 bit, every Reg has a next-value, memory ids in range. A successful
  /// validation is cached until the design is mutated; failures are not.
  void validate() const;

  // Mutation hooks used by optimization passes (src/netlist/passes).
  // Handing out a mutable node conservatively drops every derived cache.
  Node& mutable_node(NodeId id) {
    invalidate_caches();
    return nodes_[static_cast<size_t>(id)];
  }

  /// Opaque per-design cache slot for the compiled execution plan
  /// (netlist::ExecPlan). Owned here so the plan's lifetime follows the
  /// design's and mutation drops it with the other derived caches; only
  /// exec_plan.cpp reads or writes it — and only under the process-wide
  /// compile mutex in ExecPlan::for_design(), because pool workers and
  /// lane-groups may race on a design's first compile. Mutation (which
  /// clears the slot) must still be externally synchronized, like every
  /// other Design method.
  const std::shared_ptr<const void>& cached_exec_plan() const {
    return exec_plan_cache_;
  }
  void set_cached_exec_plan(std::shared_ptr<const void> plan) const {
    exec_plan_cache_ = std::move(plan);
  }

 private:
  NodeId push(Node n);
  NodeId binary(Op op, NodeId a, NodeId b, int width);
  NodeId unary(Op op, NodeId a, int width);
  NodeId compare(Op op, NodeId a, NodeId b);
  void check_id(NodeId id) const;
  void invalidate_caches() {
    topo_cache_.reset();
    validated_ = false;
    exec_plan_cache_.reset();
  }

  std::string name_;
  std::vector<Node> nodes_;
  std::vector<NodeId> inputs_;
  std::vector<NodeId> outputs_;
  std::vector<NodeId> mem_writes_;
  std::vector<Memory> memories_;

  // Derived-data caches (single-threaded use, like the rest of the class).
  mutable std::shared_ptr<const std::vector<NodeId>> topo_cache_;
  mutable bool validated_ = false;
  mutable std::shared_ptr<const void> exec_plan_cache_;
};

/// Aggregate statistics used by reports and tests.
struct DesignStats {
  int nodes = 0;
  int regs = 0;
  int reg_bits = 0;
  int adders = 0;       ///< Add/Sub/Neg
  int multipliers = 0;  ///< Mul with two non-constant operands
  int const_mults = 0;  ///< Mul with one constant operand
  int muxes = 0;
  int memories = 0;
};

DesignStats compute_stats(const Design& d);

}  // namespace hlshc::netlist
