#include "netlist/pass_manager.hpp"

#include <utility>

#include "base/check.hpp"
#include "obs/event_log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace hlshc::netlist {

namespace {

/// Adapter for the free-function passes: name + a callable returning the
/// change count.
class FunctionPass : public Pass {
 public:
  FunctionPass(std::string name, int (*fn)(Design&))
      : name_(std::move(name)), fn_(fn) {}
  std::string name() const override { return name_; }
  int run(Design& d) override { return fn_(d); }

 private:
  std::string name_;
  int (*fn_)(Design&);
};

int run_fold(Design& d) { return fold_constants(d).folded; }

int run_dce(Design& d) {
  PassStats s;
  d = eliminate_dead(d, &s);
  return s.removed;
}

}  // namespace

std::vector<std::string> registered_pass_names() {
  return {"fold_constants", "narrow", "strength_reduce", "mux_simplify",
          "copy_prop",      "cse",    "eliminate_dead"};
}

std::unique_ptr<Pass> make_pass(const std::string& pass_name) {
  if (pass_name == "fold_constants")
    return std::make_unique<FunctionPass>(pass_name, run_fold);
  if (pass_name == "eliminate_dead")
    return std::make_unique<FunctionPass>(pass_name, run_dce);
  if (pass_name == "cse")
    return std::make_unique<FunctionPass>(pass_name, eliminate_common_subexpr);
  if (pass_name == "copy_prop")
    return std::make_unique<FunctionPass>(pass_name, propagate_copies);
  if (pass_name == "mux_simplify")
    return std::make_unique<FunctionPass>(pass_name, simplify_mux_bool);
  if (pass_name == "strength_reduce")
    return std::make_unique<FunctionPass>(pass_name, strength_reduce_mults);
  if (pass_name == "narrow")
    return std::make_unique<FunctionPass>(pass_name, narrow_widths);
  throw Error("unknown netlist pass '" + pass_name + "'");
}

PassManager& PassManager::add(std::unique_ptr<Pass> pass) {
  HLSHC_CHECK(pass != nullptr, "null pass added to PassManager");
  passes_.push_back(std::move(pass));
  return *this;
}

PassManager& PassManager::add(const std::string& pass_name) {
  return add(make_pass(pass_name));
}

std::vector<std::string> PassManager::pass_names() const {
  std::vector<std::string> names;
  names.reserve(passes_.size());
  for (const auto& p : passes_) names.push_back(p->name());
  return names;
}

Design PassManager::run(const Design& d, PassStats* stats,
                        const PipelineOptions& options) const {
  obs::Span pipeline_span("netlist.pipeline", "netlist");
  pipeline_span.arg("design", d.name())
      .arg("passes", static_cast<int64_t>(passes_.size()));

  Design work = d;
  PassStats local;
  int iteration = 0;
  bool changed = true;
  while (changed && iteration < options.max_iterations) {
    changed = false;
    for (const auto& pass : passes_) {
      const std::string pass_name = pass->name();
      if (options.deadline)
        options.deadline->check("compile pipeline for design '" + d.name() +
                                "' before pass '" + pass_name + '\'');
      // Keep the pre-pass design only when a verifier will want it.
      Design before = options.verifier ? work : Design(std::string());
      PassRun run;
      run.pass = pass_name;
      run.iteration = iteration + 1;  // 1-based: "fixed-point round N"
      run.nodes_before = work.node_count();
      const int64_t t0 = obs::now_ns();
      {
        obs::Span span("pass." + pass_name, "netlist");
        span.arg("design", d.name())
            .arg("iteration", static_cast<int64_t>(iteration));
        run.changes = pass->run(work);
        span.arg("changes", static_cast<int64_t>(run.changes));
      }
      run.wall_ns = obs::now_ns() - t0;
      run.nodes_after = work.node_count();
      if (obs::enabled()) {
        obs::registry()
            .counter("netlist.pass." + pass_name + ".changes")
            ->add(run.changes);
        obs::registry()
            .timer("netlist.pass." + pass_name + ".ns")
            ->record_ns(run.wall_ns);
        obs::log_event(obs::EventLevel::kDebug, "netlist.pass",
                       {{"pass", pass_name},
                        {"design", d.name()},
                        {"iteration", std::to_string(run.iteration)},
                        {"changes", std::to_string(run.changes)}});
      }
      if (pass_name == "fold_constants") local.folded += run.changes;
      if (pass_name == "eliminate_dead") local.removed += run.changes;
      local.runs.push_back(std::move(run));
      const int changes = local.runs.back().changes;
      if (changes > 0 && options.verifier) {
        auto divergence = options.verifier(before, work);
        if (divergence.has_value())
          throw Error("compile pipeline verification failed after pass '" +
                      pass_name + "' on design '" + d.name() +
                      "': " + *divergence);
      }
      if (changes > 0) changed = true;
    }
    ++iteration;
    if (!options.fixed_point) break;
  }
  local.iterations = iteration;
  if (stats) stats->merge(local);
  return work;
}

PassManager default_pipeline(bool strength_reduce, bool narrow) {
  PassManager pm;
  pm.add("fold_constants");
  // Narrowing runs after folding (constant subtrees collapse to points the
  // interval analysis can prove) and before strength reduction, so the CSD
  // shift-add trees are built at the narrowed multiplier widths.
  if (narrow) pm.add("narrow");
  if (strength_reduce) pm.add("strength_reduce");
  pm.add("mux_simplify");
  pm.add("copy_prop");
  pm.add("cse");
  pm.add("eliminate_dead");
  return pm;
}

Design optimize(const Design& d, PassStats* stats) {
  PassManager pm;
  pm.add("fold_constants");
  pm.add("eliminate_dead");
  return pm.run(d, stats);
}

}  // namespace hlshc::netlist
