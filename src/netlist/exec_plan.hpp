// ExecPlan — one-time compilation of a netlist::Design into a flat,
// cache-friendly instruction stream for the compiled simulation engine.
//
// The interpreter (sim/simulator.cpp) re-walks the node graph every cycle:
// per node it chases the operand vector (a separate heap allocation per
// node), re-reads widths, and routes every value through BitVec temporaries.
// The ExecPlan does all of that work exactly once per design:
//
//   * levelize the combinational fabric — level 0 holds the cycle sources
//     (inputs, constants, register outputs), level k+1 everything whose
//     operands settle by level k — and lay the instructions out level by
//     level in one contiguous array;
//   * lower each node to a word-packed ExecInstr: operand slot indices,
//     the op-specific immediate, and precomputed wrap/zero-extension masks,
//     so the execution loop is a switch over a 48-byte struct with no
//     pointer chasing (every design value fits one machine word — BitVec
//     caps widths at 64 — and the sign-extended int64 slot encoding is
//     byte-compatible with BitVec's canonical form);
//   * precompute the sequential-state commit schedule: which slot each
//     register latches (and its enable), and each memory write port's
//     address/data/enable slots, in the same order the interpreter commits.
//
// Constants are hoisted out of the per-cycle stream into a one-time init
// list; register loads stay in the stream (level 0) because fault injectors
// may rewrite them per cycle.
//
// Plans are immutable, self-contained (no back-reference into the Design,
// so a cached plan survives design copies) and cached per design:
// ExecPlan::for_design() compiles on first use and reuses the plan until
// the design is mutated.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "netlist/ir.hpp"

namespace hlshc::netlist {

/// One lowered node. `dst`/`a`/`b`/`c` index the engine's value-slot array
/// (slot i holds node i's value, sign-extended into an int64 exactly like
/// BitVec's canonical form). Unused operand fields alias slot 0 so the
/// execution loop can load them unconditionally. `imm` is op-specific:
/// shift amount (Shl/AShr/LShr), slice low bit (Slice), low-operand width
/// (Concat), memory depth (MemRead), canonical constant (Const), reset
/// value (Reg). Exactly 48 bytes: four instructions per pair of cache
/// lines, no padding holes.
struct ExecInstr {
  int32_t dst = 0;
  int32_t a = 0, b = 0, c = 0;
  int64_t imm = 0;
  uint64_t amask = 0;  ///< zero-extension mask of operand a's width
  uint64_t bmask = 0;  ///< zero-extension mask of operand b's width
  int32_t width = 1;
  Op op = Op::Const;
  uint8_t dsh = 63;  ///< 64 - width: branchless sign-extension shift pair
  int16_t mem = -1;
};
static_assert(sizeof(ExecInstr) == 48, "keep ExecInstr densely packed");

/// Register latch: `state[reg] = slot[next]` when enabled (enable < 0 means
/// always). Widths are equal by Design::validate, so the copy is verbatim.
struct RegCommit {
  int32_t reg = -1;
  int32_t next = -1;
  int32_t enable = -1;
  int64_t init = 0;  ///< canonical reset value
};

/// Memory write port: when `slot[enable]` is true, commit `slot[data]` to
/// word `(slot[addr] & addr_mask) % depth` of memory `mem`.
struct MemCommit {
  int32_t mem = -1;
  int32_t addr = -1;
  int32_t data = -1;
  int32_t enable = -1;
  uint64_t addr_mask = 0;
};

/// A memory's shape, copied out of the Design so the plan is self-contained.
struct MemShape {
  int width = 0;
  int depth = 0;
};

class ExecPlan {
 public:
  /// Compiles (and validates) the design. Prefer for_design(), which caches.
  explicit ExecPlan(const Design& design);

  /// The cached plan for `design`, compiling it on first use. The cache
  /// lives in the design and is dropped on mutation; the returned handle
  /// stays valid regardless. Safe to call concurrently for the same design
  /// (pool workers and lane-groups race on first compile; a process-wide
  /// mutex serializes the check-compile-store sequence). Mutating the
  /// design concurrently with for_design is still a data race.
  static std::shared_ptr<const ExecPlan> for_design(const Design& design);

  /// Per-cycle instruction stream, levelized: sorted by (level, opcode,
  /// node id) — same-level instructions are independent, so grouping by
  /// opcode keeps the dispatch branch predictable.
  const std::vector<ExecInstr>& instrs() const { return instrs_; }

  /// One-time constant materialization (run at engine construction/reset).
  const std::vector<ExecInstr>& const_instrs() const { return const_instrs_; }

  /// Sequential commit schedules, in interpreter order.
  const std::vector<RegCommit>& reg_commits() const { return reg_commits_; }
  const std::vector<MemCommit>& mem_commits() const { return mem_commits_; }

  const std::vector<MemShape>& mem_shapes() const { return mem_shapes_; }

  /// Index of the first instruction of each level, plus a final sentinel
  /// (so level l spans [level_starts[l], level_starts[l+1])).
  const std::vector<size_t>& level_starts() const { return level_starts_; }
  int depth() const { return static_cast<int>(level_starts_.size()) - 1; }

  size_t slot_count() const { return slot_count_; }

 private:
  std::vector<ExecInstr> instrs_;
  std::vector<ExecInstr> const_instrs_;
  std::vector<RegCommit> reg_commits_;
  std::vector<MemCommit> mem_commits_;
  std::vector<MemShape> mem_shapes_;
  std::vector<size_t> level_starts_;
  size_t slot_count_ = 0;
};

}  // namespace hlshc::netlist
