// The `narrow` pass: rewrite nodes to their range-proven effective widths.
//
// RangeAnalysis proves a conservative signed interval for every node; any
// costed node (adder, subtractor, multiplier, mux, shifter, register) whose
// interval fits fewer bits than declared is rebuilt at that width. Values
// are canonical sign-extended int64s in both engines, so a node narrowed
// from W to t bits produces the *same* canonical value — only consumers
// that interpret the raw W-bit pattern (ZExt, Slice, Concat, LShr, Ult,
// memory addressing/data, output ports) need an SExt adapter back to the
// declared width, which later passes fold or keep as free wiring.
//
// Saturated intervals (bounds clamped at Interval::kSat) are lossy and
// never justify a rewrite; the analysis' wrap-around fallback (an interval
// that does not fit the declared width becomes the full declared range)
// keeps the rewrite sound for overflowing arithmetic. Input/Output port
// widths are never changed, so the rewritten design is drop-in for every
// testbench, campaign and emission path.
//
// Like strength_reduce_mults, the pass rebuilds the design: adapters must
// be spliced in *before* their consumers to preserve the index-order
// invariant (combinational operands always point backwards).
#include <unordered_map>
#include <vector>

#include "base/check.hpp"
#include "netlist/passes.hpp"
#include "netlist/range.hpp"

namespace hlshc::netlist {

namespace {

/// Ops whose declared width the pass may shrink. Wiring ops (extensions,
/// slices, concats) are free in the cost model and carry width semantics of
/// their own; everything else either has a fixed width (comparisons) or a
/// full-range interval anyway (bitwise logic, memory reads).
bool narrowable(Op op) {
  switch (op) {
    case Op::Add:
    case Op::Sub:
    case Op::Mul:
    case Op::Neg:
    case Op::Shl:
    case Op::AShr:
    case Op::Mux:
    case Op::Reg:
      return true;
    default:
      return false;
  }
}

}  // namespace

int narrow_widths(Design& d) {
  const size_t n = d.node_count();
  RangeAnalysis ra(d);

  std::vector<int> target(n, 0);
  int shrunk = 0;
  for (size_t i = 0; i < n; ++i) {
    const Node& nd = d.node(static_cast<NodeId>(i));
    target[i] = nd.width;
    if (!narrowable(nd.op)) continue;
    const Interval& iv = ra.range(static_cast<NodeId>(i));
    if (iv.saturated()) continue;  // lossy bound: unsound to rewrite
    const int t = std::max(1, iv.min_width());
    if (t < nd.width) {
      target[i] = t;
      ++shrunk;
    }
  }
  if (shrunk == 0) return 0;

  Design out(d.name());
  for (int m = 0; m < static_cast<int>(d.memories().size()); ++m) {
    const Memory& mem = d.memories()[static_cast<size_t>(m)];
    int mid = out.add_memory(mem.name, mem.width, mem.depth);
    HLSHC_CHECK(mid == m, "memory remap mismatch");
  }

  std::vector<NodeId> remap(n, kInvalidNode);
  // The remapped operand restored to its original declared width: identical
  // canonical value, but the raw bit pattern a width-sensitive consumer
  // reads is the declared-width one again.
  auto widened = [&](NodeId o) -> NodeId {
    NodeId m = remap[static_cast<size_t>(o)];
    const int declared = d.node(o).width;
    return out.node(m).width < declared ? out.sext(m, declared) : m;
  };

  for (size_t i = 0; i < n; ++i) {
    const NodeId id = static_cast<NodeId>(i);
    const Node& nd = d.node(id);
    NodeId nid;
    switch (nd.op) {
      case Op::Input:
        nid = out.input(nd.name, nd.width);  // port widths are interface
        break;
      case Op::Output:
        // output() derives the port width from its driver: widen the
        // (possibly narrowed) value back so the port keeps its width.
        nid = out.output(nd.name, widened(nd.operands[0]));
        break;
      case Op::Reg:
        // Placeholder at the narrowed width; next-value wired below. The
        // reset value fits (the register's interval includes it).
        nid = out.reg(target[i], nd.imm, nd.name);
        break;
      case Op::MemWrite:
        // Address and data are raw-pattern consumers (modular addressing,
        // word storage); the enable is 1-bit.
        nid = out.mem_write(nd.mem, widened(nd.operands[0]),
                            widened(nd.operands[1]),
                            remap[static_cast<size_t>(nd.operands[2])]);
        break;
      default: {
        Node copy = nd;
        copy.width = target[i];
        copy.operands.clear();
        switch (nd.op) {
          case Op::ZExt:
          case Op::Slice:
          case Op::LShr:
            copy.operands.push_back(widened(nd.operands[0]));
            break;
          case Op::Concat:
          case Op::Ult:
            copy.operands.push_back(widened(nd.operands[0]));
            copy.operands.push_back(widened(nd.operands[1]));
            break;
          case Op::MemRead:
            copy.operands.push_back(widened(nd.operands[0]));
            break;
          default:
            // Canonical-value-safe consumers (arithmetic, muxes, signed
            // compares, bitwise logic, SExt) take narrowed operands as-is.
            for (NodeId o : nd.operands)
              copy.operands.push_back(remap[static_cast<size_t>(o)]);
            break;
        }
        nid = out.constant(copy.width, 0);
        out.mutable_node(nid) = copy;
        break;
      }
    }
    remap[i] = nid;
  }

  for (size_t i = 0; i < n; ++i) {
    const NodeId id = static_cast<NodeId>(i);
    const Node& nd = d.node(id);
    if (nd.op != Op::Reg) continue;
    HLSHC_CHECK(!nd.operands.empty(), "register without next-value");
    NodeId next = remap[static_cast<size_t>(nd.operands[0])];
    // The register was narrowed to hold its whole reachable range, which
    // contains the next-value's range — SExt to the register width is a
    // value-preserving truncation (or widening) in canonical form.
    if (out.node(next).width != target[i]) next = out.sext(next, target[i]);
    NodeId en = nd.operands.size() > 1
                    ? remap[static_cast<size_t>(nd.operands[1])]
                    : kInvalidNode;
    out.set_reg_next(remap[i], next, en);
  }

  out.validate();
  d = std::move(out);
  return shrunk;
}

}  // namespace hlshc::netlist
