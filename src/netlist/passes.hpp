// Netlist optimization and analysis passes.
//
// These model the front half of what a logic-synthesis tool does before
// technology mapping: folding constant subexpressions, propagating through
// wiring ops, and sweeping dead logic. The HLS backend and the eDSL layers
// emit netlists naively and rely on these passes — the same division of
// labour the evaluated tools have with Vivado.
#pragma once

#include <cstdint>

#include "netlist/ir.hpp"

namespace hlshc::netlist {

struct PassStats {
  int folded = 0;    ///< nodes replaced by constants
  int removed = 0;   ///< dead nodes eliminated
};

/// Evaluates every node whose operands are all constants and replaces it
/// with a Const node (in place). Iterates to a fixed point.
PassStats fold_constants(Design& d);

/// Rebuilds `d` without nodes unreachable from outputs, register
/// next-values, and memory writes. Returns the new design; `d` is untouched.
Design eliminate_dead(const Design& d, PassStats* stats = nullptr);

/// fold_constants + eliminate_dead, returning the cleaned design.
Design optimize(const Design& d, PassStats* stats = nullptr);

// ---- structural building blocks shared by the hardening transforms --------

/// Single-bit XOR reduction (even parity) of `v`.
NodeId xor_reduce(Design& d, NodeId v);

/// Bitwise 2-of-3 majority vote of three equal-width values — the TMR voter:
/// any single corrupted operand is outvoted per bit.
NodeId majority3(Design& d, NodeId a, NodeId b, NodeId c);

}  // namespace hlshc::netlist
