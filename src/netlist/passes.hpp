// Netlist optimization and analysis passes.
//
// These model the front half of what a logic-synthesis tool does before
// technology mapping: folding constant subexpressions, propagating through
// wiring ops, and sweeping dead logic. The HLS backend and the eDSL layers
// emit netlists naively and rely on these passes — the same division of
// labour the evaluated tools have with Vivado.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/ir.hpp"

namespace hlshc::netlist {

/// One pass execution inside a pipeline: which pass ran, on which pipeline
/// iteration, how many rewrites it made, and the node-count/wall-time cost.
struct PassRun {
  std::string pass;
  int iteration = 0;       ///< fixed-point round the run belonged to
  int changes = 0;         ///< rewritten operand slots / replaced nodes
  size_t nodes_before = 0;
  size_t nodes_after = 0;
  int64_t wall_ns = 0;
};

struct PassStats {
  int folded = 0;    ///< nodes replaced by constants
  int removed = 0;   ///< dead nodes eliminated
  int iterations = 0;          ///< fixed-point rounds executed
  std::vector<PassRun> runs;   ///< per-pass breakdown, in execution order

  int total_changes() const;
  /// Node counts at the pipeline boundaries (0 when no pass ran).
  size_t nodes_before() const;
  size_t nodes_after() const;
  /// Nodes eliminated end-to-end (negative if a pass expanded the design).
  int64_t nodes_delta() const {
    return static_cast<int64_t>(nodes_before()) -
           static_cast<int64_t>(nodes_after());
  }
  void merge(const PassStats& other);
};

/// Evaluates every node whose operands are all constants and replaces it
/// with a Const node (in place). Iterates to a fixed point.
PassStats fold_constants(Design& d);

/// Rebuilds `d` without nodes unreachable from outputs, register
/// next-values, and memory writes. Returns the new design; `d` is untouched.
Design eliminate_dead(const Design& d, PassStats* stats = nullptr);

/// Hash-based common-subexpression elimination: combinational nodes with
/// identical (op, width, imm, resolved operands) are merged onto the earliest
/// occurrence (commutative ops match either operand order). Duplicates are
/// left dead for eliminate_dead. Returns the number of rewritten references.
int eliminate_common_subexpr(Design& d);

/// Copy/wire propagation: forwards users of width-preserving wiring nodes
/// (same-width SExt/ZExt, full-range Slice, shift-by-zero) to the underlying
/// source. Returns the number of rewritten operand references.
int propagate_copies(Design& d);

/// Mux and boolean/arithmetic identity simplification: mux(c,a,a), constant
/// selects, x&0, x|~0, x^x, x+0, x-0, x*{0,1,-1}, double Not/Neg, and
/// comparisons of a node with itself. Rewrites nodes in place (using SExt as
/// the width-adapted copy). Returns the number of rewrites.
int simplify_mux_bool(Design& d);

/// Width narrowing: rewrites costed nodes (adders, subtractors, multipliers,
/// muxes, shifters, registers) to the effective width proven by
/// netlist::RangeAnalysis, inserting minimal SExt adapters where a consumer
/// reads the raw declared-width pattern. Port widths never change. Returns
/// the number of nodes narrowed; `d` is rebuilt when any were.
int narrow_widths(Design& d);

/// Multiply-by-constant strength reduction: expands Mul nodes with exactly
/// one Const operand into the CSD shift-add form used by `synth/csd` (the
/// paper's hand-optimization recipe, applied mechanically). Returns the
/// number of multiplies expanded.
int strength_reduce_mults(Design& d);

/// Builds `x * constant` as a shift-add/sub tree at `width` bits, using CSD
/// recoding (csd=true) or plain binary digits. Shared by strength reduction
/// and the framework's arithmetic-unit generator.
NodeId build_shift_add(Design& d, NodeId x, int64_t constant, int width,
                       bool csd);

/// fold_constants + eliminate_dead iterated to a joint fixed point via
/// PassManager, returning the cleaned design.
Design optimize(const Design& d, PassStats* stats = nullptr);

// ---- structural building blocks shared by the hardening transforms --------

/// Single-bit XOR reduction (even parity) of `v`.
NodeId xor_reduce(Design& d, NodeId v);

/// Bitwise 2-of-3 majority vote of three equal-width values — the TMR voter:
/// any single corrupted operand is outvoted per bit.
NodeId majority3(Design& d, NodeId a, NodeId b, NodeId c);

}  // namespace hlshc::netlist
