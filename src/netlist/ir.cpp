#include "netlist/ir.hpp"

#include <algorithm>
#include <queue>

namespace hlshc::netlist {

const char* op_name(Op op) {
  switch (op) {
    case Op::Input: return "input";
    case Op::Output: return "output";
    case Op::Const: return "const";
    case Op::Add: return "add";
    case Op::Sub: return "sub";
    case Op::Mul: return "mul";
    case Op::Neg: return "neg";
    case Op::Shl: return "shl";
    case Op::AShr: return "ashr";
    case Op::LShr: return "lshr";
    case Op::And: return "and";
    case Op::Or: return "or";
    case Op::Xor: return "xor";
    case Op::Not: return "not";
    case Op::Eq: return "eq";
    case Op::Ne: return "ne";
    case Op::Slt: return "slt";
    case Op::Sle: return "sle";
    case Op::Sgt: return "sgt";
    case Op::Sge: return "sge";
    case Op::Ult: return "ult";
    case Op::Mux: return "mux";
    case Op::Slice: return "slice";
    case Op::Concat: return "concat";
    case Op::SExt: return "sext";
    case Op::ZExt: return "zext";
    case Op::Reg: return "reg";
    case Op::MemRead: return "mem_read";
    case Op::MemWrite: return "mem_write";
  }
  return "?";
}

bool is_comparison(Op op) {
  switch (op) {
    case Op::Eq: case Op::Ne: case Op::Slt: case Op::Sle:
    case Op::Sgt: case Op::Sge: case Op::Ult:
      return true;
    default:
      return false;
  }
}

bool is_wiring(Op op) {
  switch (op) {
    case Op::Shl: case Op::AShr: case Op::LShr:
    case Op::Slice: case Op::Concat: case Op::SExt: case Op::ZExt:
      return true;
    default:
      return false;
  }
}

NodeId Design::push(Node n) {
  HLSHC_CHECK(n.width >= 1 && n.width <= BitVec::kMaxWidth,
              "node width " << n.width << " out of range in '" << name_
                            << '\'');
  invalidate_caches();
  nodes_.push_back(std::move(n));
  return static_cast<NodeId>(nodes_.size() - 1);
}

void Design::check_id(NodeId id) const {
  HLSHC_CHECK(id >= 0 && static_cast<size_t>(id) < nodes_.size(),
              "operand id " << id << " out of range in '" << name_ << '\'');
}

NodeId Design::input(const std::string& port_name, int width) {
  HLSHC_CHECK(find_input(port_name) == kInvalidNode,
              "duplicate input port '" << port_name << '\'');
  Node n;
  n.op = Op::Input;
  n.width = width;
  n.name = port_name;
  NodeId id = push(std::move(n));
  inputs_.push_back(id);
  return id;
}

NodeId Design::output(const std::string& port_name, NodeId value) {
  check_id(value);
  HLSHC_CHECK(find_output(port_name) == kInvalidNode,
              "duplicate output port '" << port_name << '\'');
  Node n;
  n.op = Op::Output;
  n.width = node(value).width;
  n.operands = {value};
  n.name = port_name;
  NodeId id = push(std::move(n));
  outputs_.push_back(id);
  return id;
}

NodeId Design::constant(int width, int64_t value) {
  Node n;
  n.op = Op::Const;
  n.width = width;
  n.imm = BitVec(width, value).to_int64();
  return push(std::move(n));
}

NodeId Design::binary(Op op, NodeId a, NodeId b, int width) {
  check_id(a);
  check_id(b);
  Node n;
  n.op = op;
  n.width = width;
  n.operands = {a, b};
  return push(std::move(n));
}

NodeId Design::unary(Op op, NodeId a, int width) {
  check_id(a);
  Node n;
  n.op = op;
  n.width = width;
  n.operands = {a};
  return push(std::move(n));
}

NodeId Design::compare(Op op, NodeId a, NodeId b) {
  check_id(a);
  check_id(b);
  Node n;
  n.op = op;
  n.width = 1;
  n.operands = {a, b};
  return push(std::move(n));
}

NodeId Design::add(NodeId a, NodeId b, int w) { return binary(Op::Add, a, b, w); }
NodeId Design::sub(NodeId a, NodeId b, int w) { return binary(Op::Sub, a, b, w); }
NodeId Design::mul(NodeId a, NodeId b, int w) { return binary(Op::Mul, a, b, w); }
NodeId Design::neg(NodeId a, int w) { return unary(Op::Neg, a, w); }

NodeId Design::shl(NodeId a, int amount, int w) {
  NodeId id = unary(Op::Shl, a, w);
  mutable_node(id).imm = amount;
  return id;
}
NodeId Design::ashr(NodeId a, int amount, int w) {
  NodeId id = unary(Op::AShr, a, w);
  mutable_node(id).imm = amount;
  return id;
}
NodeId Design::lshr(NodeId a, int amount, int w) {
  NodeId id = unary(Op::LShr, a, w);
  mutable_node(id).imm = amount;
  return id;
}

NodeId Design::band(NodeId a, NodeId b, int w) { return binary(Op::And, a, b, w); }
NodeId Design::bor(NodeId a, NodeId b, int w) { return binary(Op::Or, a, b, w); }
NodeId Design::bxor(NodeId a, NodeId b, int w) { return binary(Op::Xor, a, b, w); }
NodeId Design::bnot(NodeId a, int w) { return unary(Op::Not, a, w); }

NodeId Design::eq(NodeId a, NodeId b) { return compare(Op::Eq, a, b); }
NodeId Design::ne(NodeId a, NodeId b) { return compare(Op::Ne, a, b); }
NodeId Design::slt(NodeId a, NodeId b) { return compare(Op::Slt, a, b); }
NodeId Design::sle(NodeId a, NodeId b) { return compare(Op::Sle, a, b); }
NodeId Design::sgt(NodeId a, NodeId b) { return compare(Op::Sgt, a, b); }
NodeId Design::sge(NodeId a, NodeId b) { return compare(Op::Sge, a, b); }
NodeId Design::ult(NodeId a, NodeId b) { return compare(Op::Ult, a, b); }

NodeId Design::mux(NodeId sel, NodeId t, NodeId f, int w) {
  check_id(sel);
  check_id(t);
  check_id(f);
  Node n;
  n.op = Op::Mux;
  n.width = w;
  n.operands = {sel, t, f};
  return push(std::move(n));
}

NodeId Design::slice(NodeId a, int hi, int lo) {
  check_id(a);
  HLSHC_CHECK(0 <= lo && lo <= hi && hi < node(a).width,
              "slice [" << hi << ':' << lo << "] of node width "
                        << node(a).width);
  Node n;
  n.op = Op::Slice;
  n.width = hi - lo + 1;
  n.operands = {a};
  n.imm = lo;
  n.imm2 = hi;
  return push(std::move(n));
}

NodeId Design::concat(NodeId hi, NodeId lo) {
  check_id(hi);
  check_id(lo);
  Node n;
  n.op = Op::Concat;
  n.width = node(hi).width + node(lo).width;
  n.operands = {hi, lo};
  return push(std::move(n));
}

NodeId Design::sext(NodeId a, int w) { return unary(Op::SExt, a, w); }
NodeId Design::zext(NodeId a, int w) { return unary(Op::ZExt, a, w); }

NodeId Design::reg(int width, int64_t init, const std::string& label) {
  Node n;
  n.op = Op::Reg;
  n.width = width;
  n.imm = BitVec(width, init).to_int64();
  n.name = label;
  return push(std::move(n));
}

void Design::set_reg_next(NodeId reg_node, NodeId next, NodeId enable) {
  check_id(reg_node);
  check_id(next);
  Node& r = mutable_node(reg_node);
  HLSHC_CHECK(r.op == Op::Reg, "set_reg_next on non-reg node");
  HLSHC_CHECK(r.operands.empty(), "register next-value already set");
  r.operands = {next};
  if (enable != kInvalidNode) {
    check_id(enable);
    HLSHC_CHECK(node(enable).width == 1, "register enable must be 1 bit");
    r.operands.push_back(enable);
  }
}

int Design::add_memory(const std::string& mem_name, int width, int depth) {
  HLSHC_CHECK(width >= 1 && depth >= 1,
              "bad memory shape " << width << 'x' << depth);
  invalidate_caches();
  memories_.push_back(Memory{mem_name, width, depth});
  return static_cast<int>(memories_.size() - 1);
}

NodeId Design::mem_read(int mem_id, NodeId addr) {
  check_id(addr);
  HLSHC_CHECK(mem_id >= 0 && static_cast<size_t>(mem_id) < memories_.size(),
              "bad memory id " << mem_id);
  Node n;
  n.op = Op::MemRead;
  n.width = memories_[static_cast<size_t>(mem_id)].width;
  n.operands = {addr};
  n.mem = mem_id;
  return push(std::move(n));
}

NodeId Design::mem_write(int mem_id, NodeId addr, NodeId data, NodeId enable) {
  check_id(addr);
  check_id(data);
  check_id(enable);
  HLSHC_CHECK(mem_id >= 0 && static_cast<size_t>(mem_id) < memories_.size(),
              "bad memory id " << mem_id);
  HLSHC_CHECK(node(enable).width == 1, "memory write enable must be 1 bit");
  Node n;
  n.op = Op::MemWrite;
  n.width = memories_[static_cast<size_t>(mem_id)].width;
  n.operands = {addr, data, enable};
  n.mem = mem_id;
  NodeId id = push(std::move(n));
  mem_writes_.push_back(id);
  return id;
}

NodeId Design::find_input(std::string_view port_name) const {
  for (NodeId id : inputs_)
    if (node(id).name == port_name) return id;
  return kInvalidNode;
}

NodeId Design::find_output(std::string_view port_name) const {
  for (NodeId id : outputs_)
    if (node(id).name == port_name) return id;
  return kInvalidNode;
}

int Design::io_bit_count() const {
  int bits = 0;
  for (NodeId id : inputs_) bits += node(id).width;
  for (NodeId id : outputs_) bits += node(id).width;
  return bits;
}

namespace {

// Kahn's algorithm over combinational edges only: the *output value* of a
// Reg does not depend on its operands within a cycle, so those edges are
// excluded; the operands still appear in the order (they feed the
// sequential update). MemRead is combinational in its address and keeps
// its edges.
std::vector<NodeId> compute_topo_order(const std::vector<Node>& nodes_,
                                       const std::string& name_) {
  const size_t n = nodes_.size();
  std::vector<int> indeg(n, 0);
  std::vector<std::vector<NodeId>> users(n);
  for (size_t i = 0; i < n; ++i) {
    const Node& nd = nodes_[i];
    if (nd.op == Op::Reg) continue;
    for (NodeId o : nd.operands) {
      users[static_cast<size_t>(o)].push_back(static_cast<NodeId>(i));
      ++indeg[i];
    }
  }
  std::queue<NodeId> ready;
  for (size_t i = 0; i < n; ++i)
    if (indeg[i] == 0) ready.push(static_cast<NodeId>(i));
  std::vector<NodeId> order;
  order.reserve(n);
  while (!ready.empty()) {
    NodeId id = ready.front();
    ready.pop();
    order.push_back(id);
    for (NodeId u : users[static_cast<size_t>(id)])
      if (--indeg[static_cast<size_t>(u)] == 0) ready.push(u);
  }
  HLSHC_CHECK(order.size() == n, "combinational cycle in design '"
                                     << name_ << "' (" << order.size() << '/'
                                     << n << " nodes ordered)");
  return order;
}

}  // namespace

const std::vector<NodeId>& Design::topo_order() const {
  if (!topo_cache_)
    topo_cache_ = std::make_shared<const std::vector<NodeId>>(
        compute_topo_order(nodes_, name_));
  return *topo_cache_;
}

std::shared_ptr<const std::vector<NodeId>> Design::topo_order_shared() const {
  topo_order();  // populate
  return topo_cache_;
}

void Design::validate() const {
  if (validated_) return;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    const Node& nd = nodes_[i];
    for (NodeId o : nd.operands) check_id(o);
    switch (nd.op) {
      case Op::Mux:
        HLSHC_CHECK(nd.operands.size() == 3, "mux arity");
        HLSHC_CHECK(node(nd.operands[0]).width == 1,
                    "mux selector must be 1 bit (node " << i << ')');
        break;
      case Op::Reg:
        HLSHC_CHECK(!nd.operands.empty(),
                    "register '" << nd.name << "' (node " << i
                                 << ") has no next-value");
        HLSHC_CHECK(node(nd.operands[0]).width == nd.width,
                    "register next-value width mismatch (node " << i << ')');
        break;
      case Op::MemRead:
        HLSHC_CHECK(nd.mem >= 0 &&
                        static_cast<size_t>(nd.mem) < memories_.size(),
                    "mem_read memory id");
        break;
      case Op::MemWrite:
        HLSHC_CHECK(nd.operands.size() == 3, "mem_write arity");
        break;
      default:
        break;
    }
  }
  (void)topo_order();  // throws on combinational cycles
  validated_ = true;   // only successful validations are cached
}

DesignStats compute_stats(const Design& d) {
  DesignStats s;
  s.nodes = static_cast<int>(d.node_count());
  s.memories = static_cast<int>(d.memories().size());
  for (size_t i = 0; i < d.node_count(); ++i) {
    const Node& n = d.node(static_cast<NodeId>(i));
    switch (n.op) {
      case Op::Reg:
        ++s.regs;
        s.reg_bits += n.width;
        break;
      case Op::Add:
      case Op::Sub:
      case Op::Neg:
        ++s.adders;
        break;
      case Op::Mul: {
        bool has_const = false;
        for (NodeId o : n.operands)
          if (d.node(o).op == Op::Const) has_const = true;
        has_const ? ++s.const_mults : ++s.multipliers;
        break;
      }
      case Op::Mux:
        ++s.muxes;
        break;
      default:
        break;
    }
  }
  return s;
}

}  // namespace hlshc::netlist
