// Verilog-2001 emitter for netlist designs.
//
// Every design this library elaborates — from any of the seven flows — can
// be exported as synthesizable RTL: one flat module with a synchronous
// process for the registers and memories and continuous assignments for
// the combinational fabric. This is the bridge back to a real toolchain:
// the emitted file can be handed to an actual synthesizer to check the
// cost model's predictions against real LUT/FF counts.
//
// Conventions:
//   * node %i becomes wire n_i (registers become reg n_i);
//   * all values are signed vectors of the node's width;
//   * a single clk input drives every register; reset is by initial value
//     (FPGA-style initialization);
//   * memories become reg arrays with one write block per port.
#pragma once

#include <string>

#include "netlist/ir.hpp"

namespace hlshc::netlist {

/// Emits the whole design as one Verilog module named after the design
/// (sanitized to an identifier).
std::string emit_verilog(const Design& design);

}  // namespace hlshc::netlist
