// Human-readable netlist dumps: a flat text listing (one node per line,
// stable across runs, used in golden tests) and a Graphviz dot rendering
// for debugging elaborated designs.
#pragma once

#include <string>

#include "netlist/ir.hpp"

namespace hlshc::netlist {

/// One line per node: "%id = op<width> (%a, %b) [attrs]".
std::string dump_text(const Design& d);

/// Graphviz digraph.
std::string dump_dot(const Design& d);

/// One-line summary: "name: N nodes, R regs (B bits), A adders, ...".
std::string summarize(const Design& d);

}  // namespace hlshc::netlist
