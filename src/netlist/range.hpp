// Value-range (interval) analysis for netlists.
//
// Logic synthesis does not implement a 32-bit adder when its inputs can
// only ever carry 13-bit values: Vivado's optimization sweeps constant and
// sign-extension fat off wide nets. This analysis reproduces that
// behaviour. For every node it computes a conservative signed interval
// [lo, hi] of reachable values — propagating through arithmetic, shifts,
// muxes and register feedback (with widening) — and derives an *effective
// width*: the bits synthesis actually has to build.
//
// Two consumers:
//   * the `narrow` PassManager pass (netlist/passes.hpp) rewrites nodes to
//     their effective widths, so simulation, fault campaigns and Verilog
//     emission all execute the trimmed design;
//   * synth::CostModel/static timing fall back to effective widths for
//     designs compiled without the pass (SynthOptions::range_narrowing).
//
// This is what puts the paper's hand-written 32-bit Verilog (trimmed by
// the tool) and Chisel's inferred widths within a few percent of each
// other, exactly as Table II shows.
//
// The analysis itself never rewrites the netlist; wrap-around is handled
// by falling back to the declared width's full range whenever a candidate
// interval does not fit.
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/ir.hpp"

namespace hlshc::netlist {

struct Interval {
  int64_t lo = 0;
  int64_t hi = 0;

  /// Saturation bound: intervals are clamped to ±kSat so the transfer
  /// functions cannot overflow int64. A bound at ±kSat is a *lossy*
  /// approximation (the true range may be wider), so saturated intervals
  /// must never justify a rewrite — only cost discounts.
  static constexpr int64_t kSat = int64_t{1} << 56;

  static Interval full(int width);
  static Interval point(int64_t v) { return {v, v}; }
  Interval join(const Interval& o) const;
  bool fits(int width) const;
  /// Smallest signed width holding both bounds.
  int min_width() const;
  /// True when either bound hit the saturation clamp — the interval is an
  /// unsound basis for width rewriting (see kSat).
  bool saturated() const { return lo <= -kSat || hi >= kSat; }
};

class RangeAnalysis {
 public:
  /// Runs to fixpoint (bounded iterations with widening on registers).
  explicit RangeAnalysis(const Design& design);

  const Interval& range(NodeId id) const {
    return ranges_[static_cast<size_t>(id)];
  }

  /// min(declared width, width of the value range).
  int effective_width(NodeId id) const {
    return widths_[static_cast<size_t>(id)];
  }

 private:
  std::vector<Interval> ranges_;
  std::vector<int> widths_;
};

}  // namespace hlshc::netlist
