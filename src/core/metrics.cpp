#include "core/metrics.hpp"

#include "base/check.hpp"

namespace hlshc::core {

double automation_percent(double loc, double loc_verilog) {
  HLSHC_CHECK(loc_verilog > 0, "automation needs a Verilog baseline LOC");
  return (loc_verilog - loc) / loc_verilog * 100.0;
}

double controllability_percent(double phi_best, double phi_verilog_best) {
  HLSHC_CHECK(phi_verilog_best > 0, "controllability needs a baseline Phi");
  return phi_best / phi_verilog_best * 100.0;
}

double flexibility(double phi_best, double phi_initial, int delta_loc) {
  if (delta_loc <= 0) return 0.0;
  return (phi_best - phi_initial) / static_cast<double>(delta_loc);
}

double quality(double perf_ops_per_s, long area) {
  HLSHC_CHECK(area > 0, "quality needs a positive area");
  return perf_ops_per_s / static_cast<double>(area);
}

}  // namespace hlshc::core
