#include "core/report.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "base/strings.hpp"

namespace hlshc::core {

Table::Table(std::vector<std::string> header) {
  rows_.push_back(std::move(header));
}

void Table::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

std::string Table::render() const {
  std::vector<size_t> width;
  for (const auto& row : rows_) {
    if (width.size() < row.size()) width.resize(row.size(), 0);
    for (size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());
  }
  std::ostringstream os;
  for (size_t r = 0; r < rows_.size(); ++r) {
    for (size_t c = 0; c < rows_[r].size(); ++c) {
      os << rows_[r][c];
      if (c + 1 < rows_[r].size())
        os << std::string(width[c] - rows_[r][c].size() + 2, ' ');
    }
    os << '\n';
    if (r == 0) {
      size_t total = 0;
      for (size_t c = 0; c < width.size(); ++c)
        total += width[c] + (c + 1 < width.size() ? 2 : 0);
      os << std::string(total, '-') << '\n';
    }
  }
  return os.str();
}

std::string scatter_csv(const std::vector<ScatterPoint>& points) {
  std::ostringstream os;
  os << "family,config,workload,throughput_mops,area,quality,nodes_saved\n";
  for (const ScatterPoint& p : points)
    os << p.family << ',' << p.config << ',' << p.workload << ','
       << format_fixed(p.throughput_mops, 3) << ',' << p.area << ','
       << format_fixed(p.quality(), 1) << ',' << p.nodes_saved << '\n';
  return os.str();
}

std::vector<ScatterPoint> pareto_front(std::vector<ScatterPoint> points) {
  std::sort(points.begin(), points.end(),
            [](const ScatterPoint& a, const ScatterPoint& b) {
              if (a.area != b.area) return a.area < b.area;
              return a.throughput_mops > b.throughput_mops;
            });
  std::vector<ScatterPoint> front;
  double best_p = -1.0;
  for (const ScatterPoint& p : points) {
    if (p.throughput_mops > best_p) {
      front.push_back(p);
      best_p = p.throughput_mops;
    }
  }
  return front;
}

std::string scatter_summary(const std::vector<ScatterPoint>& points) {
  std::map<std::string, std::vector<const ScatterPoint*>> by_family;
  for (const ScatterPoint& p : points) by_family[p.family].push_back(&p);
  std::ostringstream os;
  for (auto& [family, pts] : by_family) {
    double best_q = 0, min_a = 1e18, max_p = 0;
    const ScatterPoint* best = nullptr;
    for (const ScatterPoint* p : pts) {
      if (p->quality() > best_q) {
        best_q = p->quality();
        best = p;
      }
      min_a = std::min(min_a, static_cast<double>(p->area));
      max_p = std::max(max_p, p->throughput_mops);
    }
    os << family << ": " << pts.size() << " circuits, best Q="
       << format_fixed(best_q, 1);
    if (best) os << " (" << best->config << ')';
    os << ", max P=" << format_fixed(max_p, 2) << " MOPS, min A="
       << format_grouped(static_cast<long long>(min_a)) << '\n';
  }
  return os.str();
}

std::string hotspot_table(const netlist::Design& design,
                          const sim::ActivityProfile& profile, int top_n) {
  HLSHC_CHECK(profile.toggles.size() == design.node_count(),
              "activity profile for " << profile.toggles.size()
                                      << " nodes does not match design '"
                                      << design.name() << "' ("
                                      << design.node_count() << " nodes)");
  std::vector<netlist::NodeId> ranked(design.node_count());
  for (size_t i = 0; i < ranked.size(); ++i)
    ranked[i] = static_cast<netlist::NodeId>(i);
  std::stable_sort(ranked.begin(), ranked.end(),
                   [&](netlist::NodeId a, netlist::NodeId b) {
                     return profile.toggles[static_cast<size_t>(a)] >
                            profile.toggles[static_cast<size_t>(b)];
                   });
  if (top_n > 0 && static_cast<size_t>(top_n) < ranked.size())
    ranked.resize(static_cast<size_t>(top_n));

  Table table({"rank", "node", "op", "width", "label", "toggles", "tgl/cyc"});
  int rank = 1;
  for (netlist::NodeId id : ranked) {
    const netlist::Node& n = design.node(id);
    uint64_t toggles = profile.toggles[static_cast<size_t>(id)];
    double per_cycle = profile.cycles > 0
                           ? static_cast<double>(toggles) /
                                 static_cast<double>(profile.cycles)
                           : 0.0;
    table.add_row({std::to_string(rank++), std::to_string(id),
                   netlist::op_name(n.op), std::to_string(n.width),
                   n.name.empty() ? "-" : n.name,
                   format_grouped(static_cast<long long>(toggles)),
                   format_fixed(per_cycle, 2)});
  }
  std::ostringstream os;
  os << "activity hotspots: " << design.name() << " over "
     << format_grouped(static_cast<long long>(profile.cycles)) << " cycles\n"
     << table.render();
  return os.str();
}

}  // namespace hlshc::core
