// The paper's measurement procedure (Section III.C) for one design.
//
// Every AXI-Stream design goes through the same pipeline:
//   1. cycle-accurate simulation against the ISO 13818-4 software model
//      (functional verification is a precondition for reporting numbers);
//   2. measured latency T_L and periodicity T_P from the stream testbench;
//   3. synthesis twice — default DSP mapping for ν_max/N_LUT/N_FF/N_DSP,
//      and maxdsp=0 for the normalized area A = N*_LUT + N*_FF;
//   4. P = ν_max / T_P and Q = P / A.
//
// MaxJ designs (PCIe systems, no AXI wrapper) are evaluated through
// maxj::evaluate_system and converted to the same record.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "base/deadline.hpp"
#include "maxj/system.hpp"
#include "netlist/ir.hpp"
#include "netlist/passes.hpp"
#include "sim/engine.hpp"
#include "synth/synthesize.hpp"
#include "workload/workload.hpp"

namespace hlshc::core {

struct DesignEvaluation {
  std::string name;
  bool functional = false;       ///< bit-exact against the software model
  int latency_cycles = 0;        ///< T_L, measured (or modelled for MaxJ)
  double periodicity_cycles = 0; ///< T_P, measured
  double fmax_mhz = 0.0;
  double throughput_mops = 0.0;  ///< P in MOPS
  long area = 0;                 ///< A = N*_LUT + N*_FF
  long n_lut_star = 0, n_ff_star = 0;  ///< maxdsp=0 mapping
  long n_lut = 0, n_ff = 0, n_dsp = 0, n_io = 0;  ///< default mapping
  /// Per-pass breakdown of the tools::compile pipeline that produced the
  /// measured design (empty when the design was evaluated unoptimized).
  netlist::PassStats pipeline;

  double quality() const {
    return area > 0 ? throughput_mops * 1e6 / static_cast<double>(area) : 0;
  }
};

struct EvaluateOptions {
  int matrices = 8;          ///< workload size for timing measurement
  bool realistic_inputs = true;  ///< fDCT-derived coefficients (see tests)
  uint64_t seed = 2026;
  uint64_t max_cycles = 500000;
  /// Which simulation engine runs the stream testbench. The compiled engine
  /// is the default; the interpreter is the differential-testing oracle.
  sim::EngineKind engine = sim::EngineKind::kCompiled;
  /// Stimulus lanes for the functional check. 1 (the default) runs the
  /// classic single-stimulus testbench. N > 1 (compiled engine only) runs
  /// N independent stimulus sets — seed, seed+1, ..., seed+N-1 — through
  /// one lane-batched sweep (sim::BatchSimulator); `functional` then
  /// requires every lane bit-exact and protocol-clean, while the reported
  /// T_L/T_P come from lane 0, whose trajectory (same seed, same per-cycle
  /// protocol) is bitwise identical to the scalar run.
  int lanes = 1;
  synth::SynthOptions synth;
  /// Per-request wall budget (synthesis service): armed on the measurement
  /// engine so a runaway simulation throws DeadlineExceeded mid-run.
  std::shared_ptr<const Deadline> deadline;
};

/// Full procedure for a canonical-port AXI-Stream design implementing
/// `spec`: stimulus, reference model and quality judge all come from the
/// workload registry entry.
DesignEvaluation evaluate_axis_design(const netlist::Design& design,
                                      const workload::WorkloadSpec& spec,
                                      const EvaluateOptions& options = {});

/// Convenience overload against the registered "idct" workload (the
/// paper's benchmark); bit-identical to the historical hardwired path.
DesignEvaluation evaluate_axis_design(const netlist::Design& design,
                                      const EvaluateOptions& options = {});

/// Conversion for MaxJ system evaluations (throughput from the PCIe model,
/// periodicity = kernel ticks per op).
DesignEvaluation from_maxj(const std::string& name,
                           const maxj::Kernel& kernel,
                           const maxj::SystemEvaluation& ev);

}  // namespace hlshc::core
