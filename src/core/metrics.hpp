// The paper's evaluation metrics (Section III.A).
//
//   L  — lines of code including tool settings (core/loc.hpp);
//   P  — throughput in operations per second (ν_max / T_P);
//   A  — normalized area N*_LUT + N*_FF with DSP mapping disabled;
//   Q  — quality, P / A, the default optimization criterion Φ;
//   α  — degree of automation, Eq. (1): (L_V - L)/L_V x 100%;
//   C_Φ — controllability, Eq. (2): Φ*/Φ*_V x 100%;
//   F_Φ — flexibility, Eq. (3): (Φ* - Φ0)/ΔL.
#pragma once

namespace hlshc::core {

/// Eq. (1). `loc_verilog` is L_V (the Verilog description of the same
/// design point). Negative results are legal (more code than Verilog).
double automation_percent(double loc, double loc_verilog);

/// Eq. (2), in percent. `phi_best` is the tool's best Φ, `phi_verilog_best`
/// the Verilog maximum.
double controllability_percent(double phi_best, double phi_verilog_best);

/// Eq. (3). `delta_loc` = ΔL+ + ΔL- between the initial and optimal
/// sources (including options). Returns 0 when nothing was changed.
double flexibility(double phi_best, double phi_initial, int delta_loc);

/// Q = P/A with P in operations per second.
double quality(double perf_ops_per_s, long area);

}  // namespace hlshc::core
