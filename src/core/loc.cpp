#include "core/loc.hpp"

#include <fstream>
#include <sstream>

#include "base/check.hpp"
#include "base/strings.hpp"

namespace hlshc::core {

namespace {

struct CommentSyntax {
  const char* line = "//";
  const char* block_open = "/*";
  const char* block_close = "*/";
};

CommentSyntax syntax_of(Language lang) {
  switch (lang) {
    case Language::kConfig:
      return CommentSyntax{"#", nullptr, nullptr};
    default:
      return CommentSyntax{};
  }
}

}  // namespace

LocCount count_loc(const std::string& text, Language language) {
  const CommentSyntax syn = syntax_of(language);
  LocCount count;
  bool in_block = false;

  for (const std::string& raw : split_lines(text)) {
    std::string_view line = trim(raw);
    bool has_code = false;
    bool has_comment = in_block;

    size_t i = 0;
    while (i < line.size()) {
      if (in_block) {
        size_t close = syn.block_close
                           ? line.find(syn.block_close, i)
                           : std::string_view::npos;
        if (close == std::string_view::npos) {
          i = line.size();
        } else {
          in_block = false;
          i = close + 2;
        }
        continue;
      }
      if (syn.block_open &&
          line.substr(i).starts_with(syn.block_open)) {
        in_block = true;
        has_comment = true;
        i += 2;
        continue;
      }
      if (line.substr(i).starts_with(syn.line)) {
        has_comment = true;
        break;  // rest of the line is a comment
      }
      if (!std::isspace(static_cast<unsigned char>(line[i]))) has_code = true;
      ++i;
    }

    if (line.empty()) {
      ++count.blank;
    } else if (has_code) {
      ++count.code;
    } else if (has_comment) {
      ++count.comment;
    } else {
      ++count.blank;
    }
  }
  return count;
}

std::string data_path(const std::string& relative_path) {
  return std::string(HLSHC_DATA_DIR) + "/" + relative_path;
}

LocCount count_data_file(const std::string& relative_path,
                         Language language) {
  std::ifstream in(data_path(relative_path));
  HLSHC_CHECK(in.good(), "cannot open data file " << relative_path);
  std::ostringstream os;
  os << in.rdbuf();
  return count_loc(os.str(), language);
}

Language language_of(const std::string& filename) {
  auto ends_with = [&](const char* suffix) {
    std::string_view sv(filename);
    std::string_view s(suffix);
    return sv.size() >= s.size() && sv.substr(sv.size() - s.size()) == s;
  };
  if (ends_with(".v") || ends_with(".sv")) return Language::kVerilog;
  if (ends_with(".scala")) return Language::kScala;
  if (ends_with(".bsv")) return Language::kBsv;
  if (ends_with(".x")) return Language::kDslx;
  if (ends_with(".maxj") || ends_with(".java")) return Language::kMaxj;
  if (ends_with(".c") || ends_with(".h")) return Language::kC;
  return Language::kConfig;
}

}  // namespace hlshc::core
