#include "core/evaluate.hpp"

#include "axis/batch.hpp"
#include "axis/testbench.hpp"
#include "base/rng.hpp"
#include "obs/event_log.hpp"
#include "obs/trace.hpp"
#include "sim/engine.hpp"

namespace hlshc::core {

DesignEvaluation evaluate_axis_design(const netlist::Design& design,
                                      const workload::WorkloadSpec& spec,
                                      const EvaluateOptions& options) {
  obs::Span span("evaluate.design", "core");
  span.arg("design", design.name());
  span.arg("workload", spec.name);
  DesignEvaluation ev;
  ev.name = design.name();

  // 1+2: simulate, verify, measure. Stimulus, reference model and the
  // accept/reject judgement are the workload's (the same hooks the fault
  // campaigns classify against, so the two paths cannot drift).
  const bool batched =
      options.lanes > 1 && options.engine == sim::EngineKind::kCompiled;
  if (batched) {
    // N independent stimulus sets per sweep: lane l streams the seed+l
    // set, so one batched run both verifies lane 0's canonical stimulus
    // (bitwise the scalar trajectory) and widens the functional check.
    sim::BatchSimulator bsim(design, options.lanes);
    if (options.deadline) bsim.set_deadline(options.deadline);
    axis::BatchStreamTestbench tb(bsim);
    std::vector<std::vector<workload::Frame>> lane_ins(
        static_cast<size_t>(options.lanes));
    for (int l = 0; l < options.lanes; ++l)
      lane_ins[static_cast<size_t>(l)] = workload::eval_input_set(
          spec, options.matrices, options.seed + static_cast<uint64_t>(l),
          options.realistic_inputs);
    auto results = tb.run(lane_ins, options.max_cycles);
    bool all_ok = true;
    for (int l = 0; l < options.lanes; ++l) {
      const axis::BatchLaneResult& r = results[static_cast<size_t>(l)];
      // The scalar path propagates SimTimeout out of the testbench; keep
      // that contract for any wedged lane.
      if (r.hung)
        throw sim::SimTimeout("stream testbench wedged on '" + design.name() +
                                  "' (batched lane " + std::to_string(l) +
                                  ')',
                              options.max_cycles);
      all_ok = all_ok && r.clean &&
               workload::diff_outputs(
                   spec,
                   workload::reference_outputs(spec,
                                               lane_ins[static_cast<size_t>(l)]),
                   r.matrices) == 0;
    }
    ev.functional = all_ok;
    ev.latency_cycles = results[0].timing.latency_cycles;
    ev.periodicity_cycles = results[0].timing.periodicity_cycles;
  } else {
    std::unique_ptr<sim::Engine> sim =
        sim::make_engine(design, options.engine);
    if (options.deadline) sim->set_deadline(options.deadline);
    axis::StreamTestbench tb(*sim);
    std::vector<workload::Frame> ins = workload::eval_input_set(
        spec, options.matrices, options.seed, options.realistic_inputs);
    auto outs = tb.run(ins, options.max_cycles);
    ev.functional =
        tb.monitor().clean() &&
        workload::diff_outputs(
            spec, workload::reference_outputs(spec, ins), outs) == 0;
    ev.latency_cycles = tb.timing().latency_cycles;
    ev.periodicity_cycles = tb.timing().periodicity_cycles;
  }

  // 3: synthesize with and without DSP mapping.
  synth::NormalizedSynth ns =
      synth::synthesize_normalized(design, options.synth);
  ev.fmax_mhz = ns.normal.fmax_mhz;
  ev.n_lut = ns.normal.n_lut;
  ev.n_ff = ns.normal.n_ff;
  ev.n_dsp = ns.normal.n_dsp;
  ev.n_io = ns.normal.n_io;
  ev.n_lut_star = ns.nodsp.n_lut;
  ev.n_ff_star = ns.nodsp.n_ff;
  ev.area = ns.area();

  // 4: P = ν_max / T_P.
  ev.throughput_mops =
      ev.periodicity_cycles > 0 ? ev.fmax_mhz / ev.periodicity_cycles : 0.0;
  obs::log_event(obs::EventLevel::kInfo, "core.evaluate",
                 {{"design", design.name()},
                  {"workload", spec.name},
                  {"functional", ev.functional ? "true" : "false"}});
  return ev;
}

DesignEvaluation evaluate_axis_design(const netlist::Design& design,
                                      const EvaluateOptions& options) {
  return evaluate_axis_design(
      design, workload::Registry::instance().get("idct"), options);
}

DesignEvaluation from_maxj(const std::string& name,
                           const maxj::Kernel& kernel,
                           const maxj::SystemEvaluation& ev) {
  DesignEvaluation out;
  out.name = name;
  out.functional = true;  // kernels are verified separately in tests
  out.latency_cycles = ev.latency_ticks;
  out.periodicity_cycles = kernel.ticks_per_op;
  out.fmax_mhz = ev.synth.normal.fmax_mhz;
  out.throughput_mops = ev.throughput_ops / 1e6;
  out.area = ev.synth.area();
  out.n_lut_star = ev.synth.nodsp.n_lut;
  out.n_ff_star = ev.synth.nodsp.n_ff;
  out.n_lut = ev.synth.normal.n_lut;
  out.n_ff = ev.synth.normal.n_ff;
  out.n_dsp = ev.synth.normal.n_dsp;
  out.n_io = ev.synth.normal.n_io;
  return out;
}

}  // namespace hlshc::core
