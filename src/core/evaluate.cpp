#include "core/evaluate.hpp"

#include "axis/testbench.hpp"
#include "base/rng.hpp"
#include "idct/chenwang.hpp"
#include "idct/reference.hpp"
#include "obs/trace.hpp"
#include "sim/engine.hpp"

namespace hlshc::core {

DesignEvaluation evaluate_axis_design(const netlist::Design& design,
                                      const EvaluateOptions& options) {
  obs::Span span("evaluate.design", "core");
  span.arg("design", design.name());
  DesignEvaluation ev;
  ev.name = design.name();

  // 1+2: simulate, verify, measure.
  std::unique_ptr<sim::Engine> sim = sim::make_engine(design, options.engine);
  if (options.deadline) sim->set_deadline(options.deadline);
  axis::StreamTestbench tb(*sim);
  SplitMix64 rng(options.seed);
  std::vector<idct::Block> ins;
  for (int i = 0; i < options.matrices; ++i) {
    idct::Block b{};
    if (options.realistic_inputs) {
      idct::Block spatial{};
      for (auto& v : spatial)
        v = static_cast<int32_t>(rng.next_in(-256, 255));
      b = idct::forward_dct_reference(spatial);
    } else {
      for (auto& v : b)
        v = static_cast<int32_t>(
            rng.next_in(idct::kCoeffMin, idct::kCoeffMax));
    }
    ins.push_back(b);
  }
  auto outs = tb.run(ins, options.max_cycles);
  ev.functional = outs.size() == ins.size() && tb.monitor().clean();
  for (size_t i = 0; ev.functional && i < ins.size(); ++i) {
    idct::Block want = ins[i];
    idct::idct_2d(want);
    if (outs[i] != want) ev.functional = false;
  }
  ev.latency_cycles = tb.timing().latency_cycles;
  ev.periodicity_cycles = tb.timing().periodicity_cycles;

  // 3: synthesize with and without DSP mapping.
  synth::NormalizedSynth ns =
      synth::synthesize_normalized(design, options.synth);
  ev.fmax_mhz = ns.normal.fmax_mhz;
  ev.n_lut = ns.normal.n_lut;
  ev.n_ff = ns.normal.n_ff;
  ev.n_dsp = ns.normal.n_dsp;
  ev.n_io = ns.normal.n_io;
  ev.n_lut_star = ns.nodsp.n_lut;
  ev.n_ff_star = ns.nodsp.n_ff;
  ev.area = ns.area();

  // 4: P = ν_max / T_P.
  ev.throughput_mops =
      ev.periodicity_cycles > 0 ? ev.fmax_mhz / ev.periodicity_cycles : 0.0;
  return ev;
}

DesignEvaluation from_maxj(const std::string& name,
                           const maxj::Kernel& kernel,
                           const maxj::SystemEvaluation& ev) {
  DesignEvaluation out;
  out.name = name;
  out.functional = true;  // kernels are verified separately in tests
  out.latency_cycles = ev.latency_ticks;
  out.periodicity_cycles = kernel.ticks_per_op;
  out.fmax_mhz = ev.synth.normal.fmax_mhz;
  out.throughput_mops = ev.throughput_ops / 1e6;
  out.area = ev.synth.area();
  out.n_lut_star = ev.synth.nodsp.n_lut;
  out.n_ff_star = ev.synth.nodsp.n_ff;
  out.n_lut = ev.synth.normal.n_lut;
  out.n_ff = ev.synth.normal.n_ff;
  out.n_dsp = ev.synth.normal.n_dsp;
  out.n_io = ev.synth.normal.n_io;
  return out;
}

}  // namespace hlshc::core
