#include "core/diff.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <vector>

#include "base/check.hpp"
#include "base/strings.hpp"

namespace hlshc::core {

namespace {

std::vector<std::string> significant_lines(const std::string& text) {
  std::vector<std::string> out;
  for (const std::string& line : split_lines(text)) {
    std::string_view t = trim(line);
    if (!t.empty()) out.emplace_back(t);
  }
  return out;
}

}  // namespace

DiffCount diff_lines(const std::string& before, const std::string& after) {
  std::vector<std::string> a = significant_lines(before);
  std::vector<std::string> b = significant_lines(after);
  const size_t n = a.size(), m = b.size();
  // Classic LCS table; the sources here are a few hundred lines, so the
  // quadratic table is immaterial.
  std::vector<std::vector<int>> lcs(n + 1, std::vector<int>(m + 1, 0));
  for (size_t i = n; i-- > 0;)
    for (size_t j = m; j-- > 0;)
      lcs[i][j] = a[i] == b[j]
                      ? lcs[i + 1][j + 1] + 1
                      : std::max(lcs[i + 1][j], lcs[i][j + 1]);
  DiffCount d;
  d.removed = static_cast<int>(n) - lcs[0][0];
  d.added = static_cast<int>(m) - lcs[0][0];
  return d;
}

DiffCount diff_data_files(const std::string& before_rel,
                          const std::string& after_rel) {
  auto read = [](const std::string& rel) {
    std::ifstream in(data_path(rel));
    HLSHC_CHECK(in.good(), "cannot open data file " << rel);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
  };
  return diff_lines(read(before_rel), read(after_rel));
}

int diff_block_elements(const idct::Block& want, const idct::Block& got) {
  int mismatches = 0;
  for (size_t i = 0; i < want.size(); ++i)
    if (want[i] != got[i]) ++mismatches;
  return mismatches;
}

int diff_block_sequences(const std::vector<idct::Block>& want,
                         const std::vector<idct::Block>& got) {
  int mismatches = 0;
  const size_t common = std::min(want.size(), got.size());
  for (size_t i = 0; i < common; ++i)
    mismatches += diff_block_elements(want[i], got[i]);
  const size_t surplus =
      std::max(want.size(), got.size()) - common;
  mismatches += static_cast<int>(surplus) * idct::kBlockSize;
  return mismatches;
}

}  // namespace hlshc::core
