// The paper's L metric: lines of code, "excluding comments and blank
// lines", including tool settings. Counted on the real per-language source
// files shipped under data/ (as the paper counts its GitHub sources).
#pragma once

#include <string>

namespace hlshc::core {

enum class Language {
  kVerilog,  ///< //, /* */
  kScala,    ///< Chisel
  kBsv,      ///< Bluespec SystemVerilog
  kDslx,     ///< //
  kMaxj,     ///< Java-flavoured
  kC,
  kConfig,   ///< tool option files: # comments
};

struct LocCount {
  int code = 0;
  int comment = 0;  ///< comment-only lines
  int blank = 0;
  int total() const { return code + comment + blank; }
};

/// Counts `text` with the language's comment syntax. A line containing any
/// code counts as code even if it carries a trailing comment.
LocCount count_loc(const std::string& text, Language language);

/// Reads and counts a file under the data/ root (path relative to it).
/// Throws hlshc::Error if the file is missing.
LocCount count_data_file(const std::string& relative_path,
                         Language language);

/// Absolute path of a file under data/.
std::string data_path(const std::string& relative_path);

/// Guess the language from a filename extension (.v/.sv, .scala, .bsv,
/// .x, .maxj, .c/.h, anything else = config).
Language language_of(const std::string& filename);

}  // namespace hlshc::core
