// Line diff for the paper's ΔL metric.
//
// Flexibility (Eq. 3) divides the quality improvement by ΔL = ΔL+ + ΔL-,
// the number of added plus removed lines between the initial and the
// optimized description (code, annotations and parameters alike). We
// compute it with a standard LCS diff over non-blank, non-comment-stripped
// source lines.
#pragma once

#include <string>
#include <vector>

#include "core/loc.hpp"
#include "idct/block.hpp"

namespace hlshc::core {

struct DiffCount {
  int added = 0;
  int removed = 0;
  int delta() const { return added + removed; }
};

/// LCS-based line diff of two texts (whitespace-trimmed lines; blank lines
/// ignored, matching how L itself is counted).
DiffCount diff_lines(const std::string& before, const std::string& after);

/// Diff of two files under data/.
DiffCount diff_data_files(const std::string& before_rel,
                          const std::string& after_rel);

/// Element-wise mismatch count between two 8x8 blocks — the fault campaign's
/// silent-data-corruption measure against the ISO 13818-4 C model.
int diff_block_elements(const idct::Block& want, const idct::Block& got);

/// Total mismatching elements across two block sequences; a missing or
/// surplus block counts as fully mismatched.
int diff_block_sequences(const std::vector<idct::Block>& want,
                         const std::vector<idct::Block>& got);

}  // namespace hlshc::core
