// Line diff for the paper's ΔL metric.
//
// Flexibility (Eq. 3) divides the quality improvement by ΔL = ΔL+ + ΔL-,
// the number of added plus removed lines between the initial and the
// optimized description (code, annotations and parameters alike). We
// compute it with a standard LCS diff over non-blank, non-comment-stripped
// source lines.
#pragma once

#include <string>

#include "core/loc.hpp"

namespace hlshc::core {

struct DiffCount {
  int added = 0;
  int removed = 0;
  int delta() const { return added + removed; }
};

/// LCS-based line diff of two texts (whitespace-trimmed lines; blank lines
/// ignored, matching how L itself is counted).
DiffCount diff_lines(const std::string& before, const std::string& after);

/// Diff of two files under data/.
DiffCount diff_data_files(const std::string& before_rel,
                          const std::string& after_rel);

}  // namespace hlshc::core
