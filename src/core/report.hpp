// Report rendering: fixed-width ASCII tables (the bench binaries print
// Table I / Table II in the paper's layout), CSV/TSV series emitters
// for Fig. 1's Performance x Area scatter, and the ranked activity
// hotspot table over a simulated ActivityProfile.
#pragma once

#include <string>
#include <vector>

#include "netlist/ir.hpp"
#include "sim/engine.hpp"

namespace hlshc::core {

/// Simple column-aligned table. Rows are added as string cells; render()
/// pads to the widest cell per column.
class Table {
 public:
  explicit Table(std::vector<std::string> header);
  void add_row(std::vector<std::string> cells);
  std::string render() const;

 private:
  std::vector<std::vector<std::string>> rows_;
};

/// One Fig. 1 scatter point.
struct ScatterPoint {
  std::string family;   ///< "verilog", "chisel", "bsv", "xls", "maxj", ...
  std::string config;   ///< option label
  double throughput_mops = 0.0;
  long area = 0;
  /// Nodes eliminated by the compile pipeline before synthesis (0 when the
  /// point was measured without the pipeline).
  long nodes_saved = 0;
  /// Workload-registry entry the point was measured against; the DSE
  /// groups its A/P/Q fronts by this.
  std::string workload = "idct";
  double quality() const {
    return area > 0 ? throughput_mops * 1e6 / static_cast<double>(area) : 0;
  }
};

/// CSV with header: family,config,workload,throughput_mops,area,quality,
/// nodes_saved.
std::string scatter_csv(const std::vector<ScatterPoint>& points);

/// A text rendering of the scatter grouped by family (for bench output).
std::string scatter_summary(const std::vector<ScatterPoint>& points);

/// Pareto frontier of the Performance x Area plane: the circuits no other
/// circuit beats on both throughput (higher better) and area (lower
/// better). Returned sorted by ascending area. This is the "which tool
/// wins where" reading of Fig. 1.
std::vector<ScatterPoint> pareto_front(std::vector<ScatterPoint> points);

/// Ranked activity hotspot table: the `top_n` nodes with the highest toggle
/// counts from a simulated ActivityProfile, with op, width, label (port
/// name / debug label when present), total toggles and toggles/cycle.
/// Toggled bits are the dynamic-power proxy (see DESIGN.md §8), so the top
/// of this table is where switching energy — and usually optimization
/// opportunity — concentrates. The profile must have been accumulated over
/// `design` (counter vectors sized to its node count).
std::string hotspot_table(const netlist::Design& design,
                          const sim::ActivityProfile& profile, int top_n = 10);

}  // namespace hlshc::core
