// Structural building blocks for the Verilog-style IDCT designs.
//
// This is the "hand-written Verilog" family of the paper: the Chen–Wang
// butterfly expressed directly as adders, subtractors and constant
// multipliers, with every intermediate net at a fixed 32-bit width — the
// paper notes "the Verilog description uses 32-bit arithmetic (as in the
// ISO reference C code)", which is precisely why the Chisel variant with
// inferred widths comes out slightly smaller.
//
// build_row_unit / build_col_unit emit one 8-point 1-D IDCT stage
// (IDCT^row / IDCT^col of the paper) into a Design and return the output
// nets. A row unit takes 8 coefficients and yields the 11-bit-scaled row
// transform; a col unit takes 8 row results and yields the rounded,
// 9-bit-clipped samples.
#pragma once

#include <array>
#include <vector>

#include "netlist/ir.hpp"

namespace hlshc::rtl {

using netlist::Design;
using netlist::NodeId;

inline constexpr int kWordWidth = 32;  ///< the Verilog family's net width

/// 1-D row IDCT (no clipping); inputs may be any width <= 32, outputs are
/// 32-bit nets holding the exact ISO 13818-4 row-pass values.
std::array<NodeId, 8> build_row_unit(Design& d,
                                     const std::array<NodeId, 8>& in);

/// 1-D column IDCT with rounding and iclip; outputs are 9-bit nets.
std::array<NodeId, 8> build_col_unit(Design& d,
                                     const std::array<NodeId, 8>& in);

/// iclip(v) = clamp to [-256, 255], as a 9-bit net.
NodeId build_clip9(Design& d, NodeId v);

/// items[sel] for a power-of-two item count, built as a mux tree.
/// All items must share a width; `sel` must have log2(items) bits.
NodeId mux_by_index(Design& d, NodeId sel, const std::vector<NodeId>& items);

}  // namespace hlshc::rtl
