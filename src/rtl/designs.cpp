#include "rtl/designs.hpp"

#include <array>
#include <string>
#include <vector>

#include "axis/stream.hpp"
#include "rtl/units.hpp"

namespace hlshc::rtl {

namespace {

using netlist::Design;
using netlist::NodeId;

constexpr int kRowStoreWidth = 20;  ///< holds worst-case row-pass results

/// Canonical stream ports shared by the family.
struct StreamPorts {
  std::array<NodeId, 8> s_lane;
  NodeId s_valid, s_last, m_ready;
};

StreamPorts make_input_ports(Design& d) {
  StreamPorts p{};
  for (int c = 0; c < 8; ++c)
    p.s_lane[static_cast<size_t>(c)] =
        d.input(axis::lane_port("s", c), axis::kInElemWidth);
  p.s_valid = d.input("s_tvalid", 1);
  p.s_last = d.input("s_tlast", 1);
  p.m_ready = d.input("m_tready", 1);
  return p;
}

NodeId is7(Design& d, NodeId cnt3) { return d.eq(cnt3, d.constant(3, 7)); }

NodeId inc3(Design& d, NodeId cnt3) {
  return d.add(cnt3, d.constant(3, 1), 3);  // wraps mod 8
}

/// out = cond ? a : keep (1-bit or wider).
NodeId hold(Design& d, NodeId cond, NodeId a, NodeId keep) {
  return d.mux(cond, a, keep, d.node(keep).width);
}

/// Shared single-buffer adapter control for the `initial` and `opt1`
/// designs: collect 8 rows, capture the combinational result into the
/// output registers one cycle later, then shift 8 rows out while the next
/// matrix streams in.
struct SingleBufferControl {
  NodeId in_cnt, pend, out_active, out_cnt;     // registers
  NodeId in_fire, capture_now, out_fire, out_last;
};

SingleBufferControl build_single_buffer_control(Design& d,
                                                const StreamPorts& p) {
  SingleBufferControl c{};
  c.in_cnt = d.reg(3, 0, "in_cnt");
  c.pend = d.reg(1, 0, "pend");
  c.out_active = d.reg(1, 0, "out_active");
  c.out_cnt = d.reg(3, 0, "out_cnt");

  c.out_last = is7(d, c.out_cnt);
  NodeId m_valid = c.out_active;
  c.out_fire = d.band(m_valid, p.m_ready, 1);
  NodeId out_last_fire = d.band(c.out_fire, c.out_last, 1);
  c.capture_now =
      d.band(c.pend, d.bor(d.bnot(c.out_active, 1), out_last_fire, 1), 1);
  NodeId s_ready = d.bor(d.bnot(c.pend, 1), c.capture_now, 1);
  c.in_fire = d.band(p.s_valid, s_ready, 1);
  NodeId in_last_fire = d.band(c.in_fire, is7(d, c.in_cnt), 1);

  d.set_reg_next(c.in_cnt, hold(d, c.in_fire, inc3(d, c.in_cnt), c.in_cnt));
  d.set_reg_next(
      c.pend,
      d.bor(in_last_fire,
            d.band(c.pend, d.bnot(c.capture_now, 1), 1), 1));
  d.set_reg_next(c.out_active,
                 hold(d, c.capture_now, d.constant(1, 1),
                      hold(d, out_last_fire, d.constant(1, 0),
                           c.out_active)));
  d.set_reg_next(c.out_cnt, hold(d, c.capture_now, d.constant(3, 0),
                                 hold(d, c.out_fire, inc3(d, c.out_cnt),
                                      c.out_cnt)));

  d.output("s_tready", s_ready);
  d.output("m_tvalid", m_valid);
  d.output("m_tlast", c.out_last);
  return c;
}

/// Output registers + serializer shared by `initial` and `opt1`:
/// 64 x 9-bit results captured on capture_now, streamed row by row.
void build_output_stage(Design& d, const SingleBufferControl& c,
                        const std::array<std::array<NodeId, 8>, 8>& result) {
  std::array<std::array<NodeId, 8>, 8> out_regs;
  for (int r = 0; r < 8; ++r)
    for (int col = 0; col < 8; ++col) {
      NodeId reg = d.reg(axis::kOutElemWidth, 0,
                         "out_r" + std::to_string(r) + "c" +
                             std::to_string(col));
      d.set_reg_next(reg, result[static_cast<size_t>(r)]
                              [static_cast<size_t>(col)],
                     c.capture_now);
      out_regs[static_cast<size_t>(r)][static_cast<size_t>(col)] = reg;
    }
  for (int col = 0; col < 8; ++col) {
    std::vector<NodeId> rows;
    for (int r = 0; r < 8; ++r)
      rows.push_back(out_regs[static_cast<size_t>(r)]
                             [static_cast<size_t>(col)]);
    d.output(axis::lane_port("m", col), mux_by_index(d, c.out_cnt, rows));
  }
}

/// Input collector for `initial`: 64 x 12-bit registers filled row by row.
std::array<std::array<NodeId, 8>, 8> build_input_collector(
    Design& d, const StreamPorts& p, const SingleBufferControl& c) {
  std::array<std::array<NodeId, 8>, 8> in_regs;
  for (int r = 0; r < 8; ++r) {
    NodeId row_en =
        d.band(c.in_fire, d.eq(c.in_cnt, d.constant(3, r)), 1);
    for (int col = 0; col < 8; ++col) {
      NodeId reg = d.reg(axis::kInElemWidth, 0,
                         "in_r" + std::to_string(r) + "c" +
                             std::to_string(col));
      d.set_reg_next(reg, p.s_lane[static_cast<size_t>(col)], row_en);
      in_regs[static_cast<size_t>(r)][static_cast<size_t>(col)] = reg;
    }
  }
  return in_regs;
}

/// Column pass over stored rows: col unit j consumes column j and yields
/// output elements (0..7, j); returns result[r][c].
std::array<std::array<NodeId, 8>, 8> build_column_pass(
    Design& d, const std::array<std::array<NodeId, 8>, 8>& rows) {
  std::array<std::array<NodeId, 8>, 8> result;
  for (int col = 0; col < 8; ++col) {
    std::array<NodeId, 8> column;
    for (int r = 0; r < 8; ++r)
      column[static_cast<size_t>(r)] =
          rows[static_cast<size_t>(r)][static_cast<size_t>(col)];
    std::array<NodeId, 8> out = build_col_unit(d, column);
    for (int r = 0; r < 8; ++r)
      result[static_cast<size_t>(r)][static_cast<size_t>(col)] =
          out[static_cast<size_t>(r)];
  }
  return result;
}

}  // namespace

netlist::Design build_verilog_initial() {
  Design d("verilog_initial");
  StreamPorts p = make_input_ports(d);
  SingleBufferControl c = build_single_buffer_control(d, p);
  auto in_regs = build_input_collector(d, p, c);

  // Eight row units over the stored coefficient rows...
  std::array<std::array<NodeId, 8>, 8> row_out;
  for (int r = 0; r < 8; ++r)
    row_out[static_cast<size_t>(r)] =
        build_row_unit(d, in_regs[static_cast<size_t>(r)]);
  // ...chained combinationally into eight column units.
  auto result = build_column_pass(d, row_out);
  build_output_stage(d, c, result);
  return d;
}

netlist::Design build_verilog_opt1() {
  Design d("verilog_opt1");
  StreamPorts p = make_input_ports(d);
  SingleBufferControl c = build_single_buffer_control(d, p);

  // One row unit transforms the arriving row combinationally; the 20-bit
  // row results are what gets stored, not the raw coefficients.
  std::array<NodeId, 8> lane_sig;
  for (int i = 0; i < 8; ++i) lane_sig[static_cast<size_t>(i)] = p.s_lane[static_cast<size_t>(i)];
  std::array<NodeId, 8> row_now = build_row_unit(d, lane_sig);

  std::array<std::array<NodeId, 8>, 8> row_regs;
  for (int r = 0; r < 8; ++r) {
    NodeId row_en =
        d.band(c.in_fire, d.eq(c.in_cnt, d.constant(3, r)), 1);
    for (int col = 0; col < 8; ++col) {
      NodeId reg = d.reg(kRowStoreWidth, 0,
                         "row_r" + std::to_string(r) + "c" +
                             std::to_string(col));
      d.set_reg_next(
          reg, d.slice(row_now[static_cast<size_t>(col)], kRowStoreWidth - 1, 0),
          row_en);
      row_regs[static_cast<size_t>(r)][static_cast<size_t>(col)] = reg;
    }
  }
  auto result = build_column_pass(d, row_regs);
  build_output_stage(d, c, result);
  return d;
}

netlist::Design build_verilog_opt2() {
  Design d("verilog_opt2");
  StreamPorts p = make_input_ports(d);

  // ---- state --------------------------------------------------------------
  NodeId in_cnt = d.reg(3, 0, "in_cnt");
  NodeId in_buf = d.reg(1, 0, "in_buf");
  NodeId row_full0 = d.reg(1, 0, "row_full0");
  NodeId row_full1 = d.reg(1, 0, "row_full1");
  NodeId col_cnt = d.reg(3, 0, "col_cnt");
  NodeId col_rptr = d.reg(1, 0, "col_rptr");
  NodeId col_wptr = d.reg(1, 0, "col_wptr");
  NodeId out_full0 = d.reg(1, 0, "out_full0");
  NodeId out_full1 = d.reg(1, 0, "out_full1");
  NodeId out_cnt = d.reg(3, 0, "out_cnt");
  NodeId out_rptr = d.reg(1, 0, "out_rptr");

  auto sel2 = [&](NodeId ptr, NodeId v0, NodeId v1) {
    return d.mux(ptr, v1, v0, d.node(v0).width);
  };

  // ---- input stage: one row unit, ping-pong row buffers --------------------
  NodeId s_ready = d.bnot(sel2(in_buf, row_full0, row_full1), 1);
  NodeId in_fire = d.band(p.s_valid, s_ready, 1);
  NodeId in_last_fire = d.band(in_fire, is7(d, in_cnt), 1);
  d.output("s_tready", s_ready);
  d.set_reg_next(in_cnt, hold(d, in_fire, inc3(d, in_cnt), in_cnt));
  d.set_reg_next(in_buf, hold(d, in_last_fire, d.bnot(in_buf, 1), in_buf));

  std::array<NodeId, 8> lane_sig;
  for (int i = 0; i < 8; ++i) lane_sig[static_cast<size_t>(i)] = p.s_lane[static_cast<size_t>(i)];
  std::array<NodeId, 8> row_now = build_row_unit(d, lane_sig);

  // rowbuf[b][r][c]
  std::array<std::array<std::array<NodeId, 8>, 8>, 2> rowbuf;
  for (int b = 0; b < 2; ++b) {
    NodeId buf_sel = d.eq(in_buf, d.constant(1, b));
    for (int r = 0; r < 8; ++r) {
      NodeId en = d.band(
          d.band(in_fire, d.eq(in_cnt, d.constant(3, r)), 1), buf_sel, 1);
      for (int col = 0; col < 8; ++col) {
        NodeId reg =
            d.reg(kRowStoreWidth, 0,
                  "rowbuf" + std::to_string(b) + "_r" + std::to_string(r) +
                      "c" + std::to_string(col));
        d.set_reg_next(
            reg,
            d.slice(row_now[static_cast<size_t>(col)], kRowStoreWidth - 1, 0),
            en);
        rowbuf[static_cast<size_t>(b)][static_cast<size_t>(r)]
              [static_cast<size_t>(col)] = reg;
      }
    }
  }

  // ---- column stage: one col unit, one column per cycle --------------------
  NodeId row_avail = sel2(col_rptr, row_full0, row_full1);
  NodeId out_free = d.bnot(sel2(col_wptr, out_full0, out_full1), 1);
  NodeId col_proc = d.band(row_avail, out_free, 1);
  NodeId col_done = d.band(col_proc, is7(d, col_cnt), 1);
  d.set_reg_next(col_cnt, hold(d, col_proc, inc3(d, col_cnt), col_cnt));
  d.set_reg_next(col_rptr, hold(d, col_done, d.bnot(col_rptr, 1), col_rptr));
  d.set_reg_next(col_wptr, hold(d, col_done, d.bnot(col_wptr, 1), col_wptr));

  // column input: element r of column col_cnt from the selected buffer
  std::array<NodeId, 8> col_in;
  for (int r = 0; r < 8; ++r) {
    std::vector<NodeId> elems0, elems1;
    for (int col = 0; col < 8; ++col) {
      elems0.push_back(rowbuf[0][static_cast<size_t>(r)]
                             [static_cast<size_t>(col)]);
      elems1.push_back(rowbuf[1][static_cast<size_t>(r)]
                             [static_cast<size_t>(col)]);
    }
    col_in[static_cast<size_t>(r)] =
        sel2(col_rptr, mux_by_index(d, col_cnt, elems0),
             mux_by_index(d, col_cnt, elems1));
  }
  std::array<NodeId, 8> col_out = build_col_unit(d, col_in);

  // outbuf[b][r][c] written column-wise
  std::array<std::array<std::array<NodeId, 8>, 8>, 2> outbuf;
  for (int b = 0; b < 2; ++b) {
    NodeId buf_sel = d.eq(col_wptr, d.constant(1, b));
    for (int col = 0; col < 8; ++col) {
      NodeId en = d.band(
          d.band(col_proc, d.eq(col_cnt, d.constant(3, col)), 1), buf_sel,
          1);
      for (int r = 0; r < 8; ++r) {
        NodeId reg =
            d.reg(axis::kOutElemWidth, 0,
                  "outbuf" + std::to_string(b) + "_r" + std::to_string(r) +
                      "c" + std::to_string(col));
        d.set_reg_next(reg, col_out[static_cast<size_t>(r)], en);
        outbuf[static_cast<size_t>(b)][static_cast<size_t>(r)]
              [static_cast<size_t>(col)] = reg;
      }
    }
  }

  // ---- output stage ---------------------------------------------------------
  NodeId m_valid = sel2(out_rptr, out_full0, out_full1);
  NodeId out_fire = d.band(m_valid, p.m_ready, 1);
  NodeId out_last = is7(d, out_cnt);
  NodeId out_done = d.band(out_fire, out_last, 1);
  d.set_reg_next(out_cnt, hold(d, out_fire, inc3(d, out_cnt), out_cnt));
  d.set_reg_next(out_rptr, hold(d, out_done, d.bnot(out_rptr, 1), out_rptr));
  d.output("m_tvalid", m_valid);
  d.output("m_tlast", out_last);
  for (int col = 0; col < 8; ++col) {
    std::vector<NodeId> rows0, rows1;
    for (int r = 0; r < 8; ++r) {
      rows0.push_back(outbuf[0][static_cast<size_t>(r)]
                            [static_cast<size_t>(col)]);
      rows1.push_back(outbuf[1][static_cast<size_t>(r)]
                            [static_cast<size_t>(col)]);
    }
    d.output(axis::lane_port("m", col),
             sel2(out_rptr, mux_by_index(d, out_cnt, rows0),
                  mux_by_index(d, out_cnt, rows1)));
  }

  // ---- buffer-full bookkeeping ---------------------------------------------
  auto full_next = [&](NodeId cur, int b, NodeId set_cond, NodeId set_ptr,
                       NodeId clr_cond, NodeId clr_ptr) {
    NodeId set_here =
        d.band(set_cond, d.eq(set_ptr, d.constant(1, b)), 1);
    NodeId clr_here =
        d.band(clr_cond, d.eq(clr_ptr, d.constant(1, b)), 1);
    return d.bor(set_here, d.band(cur, d.bnot(clr_here, 1), 1), 1);
  };
  d.set_reg_next(row_full0, full_next(row_full0, 0, in_last_fire, in_buf,
                                      col_done, col_rptr));
  d.set_reg_next(row_full1, full_next(row_full1, 1, in_last_fire, in_buf,
                                      col_done, col_rptr));
  d.set_reg_next(out_full0, full_next(out_full0, 0, col_done, col_wptr,
                                      out_done, out_rptr));
  d.set_reg_next(out_full1, full_next(out_full1, 1, col_done, col_wptr,
                                      out_done, out_rptr));
  return d;
}

netlist::Design build_matrix_kernel() {
  Design d("rtl_idct_kernel");
  std::array<std::array<NodeId, 8>, 8> in;
  for (int r = 0; r < 8; ++r)
    for (int c = 0; c < 8; ++c)
      in[static_cast<size_t>(r)][static_cast<size_t>(c)] =
          d.input("x" + std::to_string(r * 8 + c), axis::kInElemWidth);

  std::array<std::array<NodeId, 8>, 8> rows;
  for (int r = 0; r < 8; ++r)
    rows[static_cast<size_t>(r)] =
        build_row_unit(d, in[static_cast<size_t>(r)]);

  for (int col = 0; col < 8; ++col) {
    std::array<NodeId, 8> column;
    for (int r = 0; r < 8; ++r)
      column[static_cast<size_t>(r)] =
          rows[static_cast<size_t>(r)][static_cast<size_t>(col)];
    auto out = build_col_unit(d, column);
    for (int r = 0; r < 8; ++r)
      d.output("y" + std::to_string(r * 8 + col),
               out[static_cast<size_t>(r)]);
  }
  return d;
}

}  // namespace hlshc::rtl
