#include "rtl/units.hpp"

#include "base/check.hpp"
#include "idct/chenwang.hpp"

namespace hlshc::rtl {

namespace {

constexpr int W = kWordWidth;

/// x * C at 32 bits, C a literal.
NodeId mulc(Design& d, NodeId x, int c) {
  return d.mul(x, d.constant(W, c), W);
}

NodeId widen(Design& d, NodeId x) {
  return d.node(x).width == W ? x : d.sext(x, W);
}

}  // namespace

std::array<NodeId, 8> build_row_unit(Design& d,
                                     const std::array<NodeId, 8>& in) {
  using namespace hlshc::idct;
  NodeId b0 = widen(d, in[0]);

  NodeId x1 = d.shl(widen(d, in[4]), 11, W);
  NodeId x2 = widen(d, in[6]);
  NodeId x3 = widen(d, in[2]);
  NodeId x4 = widen(d, in[1]);
  NodeId x5 = widen(d, in[7]);
  NodeId x6 = widen(d, in[5]);
  NodeId x7 = widen(d, in[3]);
  NodeId x0 = d.add(d.shl(b0, 11, W), d.constant(W, 128), W);

  // first stage
  NodeId x8 = mulc(d, d.add(x4, x5, W), kW7);
  x4 = d.add(x8, mulc(d, x4, kW1 - kW7), W);
  x5 = d.sub(x8, mulc(d, x5, kW1 + kW7), W);
  x8 = mulc(d, d.add(x6, x7, W), kW3);
  x6 = d.sub(x8, mulc(d, x6, kW3 - kW5), W);
  x7 = d.sub(x8, mulc(d, x7, kW3 + kW5), W);

  // second stage
  x8 = d.add(x0, x1, W);
  x0 = d.sub(x0, x1, W);
  x1 = mulc(d, d.add(x3, x2, W), kW6);
  x2 = d.sub(x1, mulc(d, x2, kW2 + kW6), W);
  x3 = d.add(x1, mulc(d, x3, kW2 - kW6), W);
  x1 = d.add(x4, x6, W);
  x4 = d.sub(x4, x6, W);
  x6 = d.add(x5, x7, W);
  x5 = d.sub(x5, x7, W);

  // third stage
  x7 = d.add(x8, x3, W);
  x8 = d.sub(x8, x3, W);
  x3 = d.add(x0, x2, W);
  x0 = d.sub(x0, x2, W);
  x2 = d.ashr(d.add(mulc(d, d.add(x4, x5, W), 181), d.constant(W, 128), W),
              8, W);
  x4 = d.ashr(d.add(mulc(d, d.sub(x4, x5, W), 181), d.constant(W, 128), W),
              8, W);

  // fourth stage
  std::array<NodeId, 8> out;
  out[0] = d.ashr(d.add(x7, x1, W), 8, W);
  out[1] = d.ashr(d.add(x3, x2, W), 8, W);
  out[2] = d.ashr(d.add(x0, x4, W), 8, W);
  out[3] = d.ashr(d.add(x8, x6, W), 8, W);
  out[4] = d.ashr(d.sub(x8, x6, W), 8, W);
  out[5] = d.ashr(d.sub(x0, x4, W), 8, W);
  out[6] = d.ashr(d.sub(x3, x2, W), 8, W);
  out[7] = d.ashr(d.sub(x7, x1, W), 8, W);
  return out;
}

std::array<NodeId, 8> build_col_unit(Design& d,
                                     const std::array<NodeId, 8>& in) {
  using namespace hlshc::idct;
  NodeId b0 = widen(d, in[0]);

  NodeId x1 = d.shl(widen(d, in[4]), 8, W);
  NodeId x2 = widen(d, in[6]);
  NodeId x3 = widen(d, in[2]);
  NodeId x4 = widen(d, in[1]);
  NodeId x5 = widen(d, in[7]);
  NodeId x6 = widen(d, in[5]);
  NodeId x7 = widen(d, in[3]);
  NodeId x0 = d.add(d.shl(b0, 8, W), d.constant(W, 8192), W);

  // first stage
  NodeId x8 = d.add(mulc(d, d.add(x4, x5, W), kW7), d.constant(W, 4), W);
  x4 = d.ashr(d.add(x8, mulc(d, x4, kW1 - kW7), W), 3, W);
  x5 = d.ashr(d.sub(x8, mulc(d, x5, kW1 + kW7), W), 3, W);
  x8 = d.add(mulc(d, d.add(x6, x7, W), kW3), d.constant(W, 4), W);
  x6 = d.ashr(d.sub(x8, mulc(d, x6, kW3 - kW5), W), 3, W);
  x7 = d.ashr(d.sub(x8, mulc(d, x7, kW3 + kW5), W), 3, W);

  // second stage
  x8 = d.add(x0, x1, W);
  x0 = d.sub(x0, x1, W);
  x1 = d.add(mulc(d, d.add(x3, x2, W), kW6), d.constant(W, 4), W);
  x2 = d.ashr(d.sub(x1, mulc(d, x2, kW2 + kW6), W), 3, W);
  x3 = d.ashr(d.add(x1, mulc(d, x3, kW2 - kW6), W), 3, W);
  x1 = d.add(x4, x6, W);
  x4 = d.sub(x4, x6, W);
  x6 = d.add(x5, x7, W);
  x5 = d.sub(x5, x7, W);

  // third stage
  x7 = d.add(x8, x3, W);
  x8 = d.sub(x8, x3, W);
  x3 = d.add(x0, x2, W);
  x0 = d.sub(x0, x2, W);
  x2 = d.ashr(d.add(mulc(d, d.add(x4, x5, W), 181), d.constant(W, 128), W),
              8, W);
  x4 = d.ashr(d.add(mulc(d, d.sub(x4, x5, W), 181), d.constant(W, 128), W),
              8, W);

  // fourth stage
  std::array<NodeId, 8> out;
  out[0] = build_clip9(d, d.ashr(d.add(x7, x1, W), 14, W));
  out[1] = build_clip9(d, d.ashr(d.add(x3, x2, W), 14, W));
  out[2] = build_clip9(d, d.ashr(d.add(x0, x4, W), 14, W));
  out[3] = build_clip9(d, d.ashr(d.add(x8, x6, W), 14, W));
  out[4] = build_clip9(d, d.ashr(d.sub(x8, x6, W), 14, W));
  out[5] = build_clip9(d, d.ashr(d.sub(x0, x4, W), 14, W));
  out[6] = build_clip9(d, d.ashr(d.sub(x3, x2, W), 14, W));
  out[7] = build_clip9(d, d.ashr(d.sub(x7, x1, W), 14, W));
  return out;
}

NodeId build_clip9(Design& d, NodeId v) {
  const int w = d.node(v).width;
  NodeId lo = d.constant(w, idct::kSampleMin);
  NodeId hi = d.constant(w, idct::kSampleMax);
  NodeId below = d.slt(v, lo);
  NodeId above = d.sgt(v, hi);
  NodeId clamped = d.mux(below, lo, d.mux(above, hi, v, w), w);
  return d.slice(clamped, 8, 0);  // the clamped value fits in 9 bits
}

NodeId mux_by_index(Design& d, NodeId sel, const std::vector<NodeId>& items) {
  HLSHC_CHECK(!items.empty(), "mux_by_index with no items");
  size_t n = items.size();
  HLSHC_CHECK((n & (n - 1)) == 0, "mux_by_index needs a power-of-two count");
  const int width = d.node(items[0]).width;
  for (NodeId it : items)
    HLSHC_CHECK(d.node(it).width == width, "mux_by_index width mismatch");

  std::vector<NodeId> level = items;
  int bit = 0;
  while (level.size() > 1) {
    NodeId s = d.slice(sel, bit, bit);
    std::vector<NodeId> next;
    next.reserve(level.size() / 2);
    for (size_t i = 0; i < level.size(); i += 2)
      next.push_back(d.mux(s, level[i + 1], level[i], width));
    level = std::move(next);
    ++bit;
  }
  return level[0];
}

}  // namespace hlshc::rtl
