// The hand-written Verilog design family of the paper (our baseline).
//
// Three microarchitectures around the same row-by-row AXI-Stream adapter:
//
//   * initial : a naive combinational 2-D IDCT — eight IDCT^row units
//     feeding eight IDCT^col units — sampled once after a full matrix is
//     collected. Latency 17 cycles, periodicity 8, huge and slow (the comb
//     path chains two butterfly stages).
//   * opt1    : one IDCT^row processes each arriving row on the fly (there
//     is no point in eight row units when only one row arrives per cycle);
//     eight IDCT^col units remain. Same latency/periodicity, ~half the
//     logic, roughly half the critical path.
//   * opt2    : one IDCT^row and one IDCT^col, fully pipelined at the
//     matrix level with ping-pong row and output buffers: rows stream in
//     (8 cycles), columns are processed one per cycle (8 cycles), rows
//     stream out (8 cycles) — latency 24, periodicity still 8. This is the
//     paper's optimized Verilog design.
//
// All three share the canonical stream ports (see axis/stream.hpp) and are
// bit-exact against the ISO 13818-4 software model.
#pragma once

#include "netlist/ir.hpp"

namespace hlshc::rtl {

netlist::Design build_verilog_initial();
netlist::Design build_verilog_opt1();
netlist::Design build_verilog_opt2();

/// The pure 2-D IDCT dataflow kernel at the family's declared widths, in
/// the framework's MatrixKernel port shape (x0..x63 -> y0..y63,
/// combinational) — the synth::schedule_pipeline input for the Verilog
/// flow's pipelined sweep points.
netlist::Design build_matrix_kernel();

}  // namespace hlshc::rtl
