// AXI-Stream protocol monitor.
//
// Observes one stream (a TVALID/TREADY/TLAST triple plus data lanes) on the
// simulated DUT every cycle and records violations of the AXI4-Stream
// handshake rules that matter for this repository's designs:
//
//   V1  TVALID, once asserted, must stay asserted until TREADY (no
//       mid-offer retraction);
//   V2  TDATA and TLAST must be stable while TVALID is high and TREADY low;
//   V3  a matrix must consist of exactly 8 beats with TLAST on the 8th.
//
// Ports are resolved to node ids once at construction (a stream port may be
// an input or an output depending on which side of the DUT it sits);
// sampling reads by id through sim::PortAccess, so the same monitor serves
// a scalar sim::Engine and each lane of a sim::BatchSimulator.
//
// Integration tests arm the monitor on both the slave and master side of
// every design family under random back-pressure.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "axis/stream.hpp"
#include "sim/engine.hpp"

namespace hlshc::axis {

class StreamWatch {
 public:
  /// `data_lanes` may be 0 for streams observed on the input side where the
  /// testbench itself guarantees data stability.
  StreamWatch(sim::PortAccess& sim, std::string prefix, int lane_width);

  /// Call after eval(), before step().
  void sample();

  const std::vector<std::string>& violations() const { return violations_; }

  /// Handshake statistics over all samples: accepted beats and stalled
  /// offers (TVALID without TREADY) — the stream-utilization numbers the
  /// throughput analysis reads.
  uint64_t beats() const { return beats_; }
  uint64_t stalls() const { return stalls_; }

  /// Add this stream's beat/stall/violation counts to the process metrics
  /// registry as "axis.<prefix>.{beats,stalls,violations}". No-op unless
  /// obs::enabled().
  void publish_metrics() const;

 private:
  sim::PortAccess& sim_;
  std::string prefix_;
  int lane_width_;
  netlist::NodeId tvalid_, tready_, tlast_;
  std::array<netlist::NodeId, kLanes> lanes_{};
  bool prev_valid_ = false;
  bool prev_ready_ = true;
  bool prev_last_ = false;
  std::vector<BitVec> prev_lanes_;
  int beats_in_frame_ = 0;
  uint64_t beats_ = 0;
  uint64_t stalls_ = 0;
  std::vector<std::string> violations_;
};

/// Watches both the slave-side and master-side streams of a DUT.
class Monitor {
 public:
  explicit Monitor(sim::PortAccess& sim);

  void sample();

  std::vector<std::string> violations() const;
  bool clean() const { return violations().empty(); }

  const StreamWatch& slave() const { return slave_; }
  const StreamWatch& master() const { return master_; }

  /// Publish both streams' counters to the metrics registry.
  void publish_metrics() const;

 private:
  StreamWatch slave_;
  StreamWatch master_;
};

}  // namespace hlshc::axis
