// AXI-Stream protocol monitor.
//
// Observes one stream (a TVALID/TREADY/TLAST triple plus data lanes) on the
// simulated DUT every cycle and records violations of the AXI4-Stream
// handshake rules that matter for this repository's designs:
//
//   V1  TVALID, once asserted, must stay asserted until TREADY (no
//       mid-offer retraction);
//   V2  TDATA and TLAST must be stable while TVALID is high and TREADY low;
//   V3  a matrix must consist of exactly 8 beats with TLAST on the 8th.
//
// Integration tests arm the monitor on both the slave and master side of
// every design family under random back-pressure.
#pragma once

#include <string>
#include <vector>

#include "axis/stream.hpp"
#include "sim/simulator.hpp"

namespace hlshc::axis {

class StreamWatch {
 public:
  /// `data_lanes` may be 0 for streams observed on the input side where the
  /// testbench itself guarantees data stability.
  StreamWatch(sim::Simulator& sim, std::string prefix, int lane_width);

  /// Call after eval(), before step().
  void sample();

  const std::vector<std::string>& violations() const { return violations_; }

 private:
  sim::Simulator& sim_;
  std::string prefix_;
  int lane_width_;
  bool prev_valid_ = false;
  bool prev_ready_ = true;
  bool prev_last_ = false;
  std::vector<BitVec> prev_lanes_;
  int beats_in_frame_ = 0;
  std::vector<std::string> violations_;
};

/// Watches both the slave-side and master-side streams of a DUT.
class Monitor {
 public:
  explicit Monitor(sim::Simulator& sim);

  void sample();

  std::vector<std::string> violations() const;
  bool clean() const { return violations().empty(); }

 private:
  StreamWatch slave_;
  StreamWatch master_;
};

}  // namespace hlshc::axis
