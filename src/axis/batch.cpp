#include "axis/batch.hpp"

#include <memory>

#include "base/check.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace hlshc::axis {

std::vector<BatchLaneResult> BatchStreamTestbench::run(
    const std::vector<std::vector<idct::Block>>& inputs, uint64_t max_cycles,
    const std::vector<netlist::NodeId>& probes) {
  const int lanes = sim_.lanes();
  HLSHC_CHECK(static_cast<int>(inputs.size()) == lanes,
              "batch run got " << inputs.size() << " input sets for "
                               << lanes << " lanes");
  obs::Span span("testbench.batch_run", "axis");
  span.arg("design", sim_.design().name())
      .arg("lanes", static_cast<int64_t>(lanes));

  sim_.reset_all();

  // Per-lane drivers/monitors over the lane views: the same state machines
  // the scalar StreamTestbench uses, constructed per run for clean state.
  std::vector<std::unique_ptr<SourceDriver>> sources;
  std::vector<std::unique_ptr<SinkDriver>> sinks;
  std::vector<std::unique_ptr<Monitor>> monitors;
  sources.reserve(static_cast<size_t>(lanes));
  sinks.reserve(static_cast<size_t>(lanes));
  monitors.reserve(static_cast<size_t>(lanes));
  for (int l = 0; l < lanes; ++l) {
    sources.push_back(std::make_unique<SourceDriver>(sim_.lane(l)));
    sinks.push_back(std::make_unique<SinkDriver>(sim_.lane(l)));
    monitors.push_back(std::make_unique<Monitor>(sim_.lane(l)));
  }

  std::vector<BatchLaneResult> results(static_cast<size_t>(lanes));
  std::vector<size_t> want(static_cast<size_t>(lanes), 0);
  std::vector<char> active(static_cast<size_t>(lanes), 0);
  // Completion cycle per lane (the iteration count at which it finished),
  // for the masked-lane accounting below.
  std::vector<uint64_t> done_at(static_cast<size_t>(lanes), 0);
  int remaining = 0;
  for (int l = 0; l < lanes; ++l) {
    const size_t sl = static_cast<size_t>(l);
    want[sl] = inputs[sl].size();
    for (const idct::Block& b : inputs[sl]) sources[sl]->queue(b);
    active[sl] = want[sl] > 0;
    if (active[sl])
      ++remaining;
    else
      sim_.retire_lane(l);  // nothing to stream: drop it from the sweep
  }
  const int lanes_active = remaining;

  auto finish_lane = [&](int l, uint64_t cycles, bool hung) {
    const size_t sl = static_cast<size_t>(l);
    BatchLaneResult& r = results[sl];
    r.matrices = sinks[sl]->matrices();
    r.clean = monitors[sl]->clean();
    r.hung = hung;
    // Same read point as the scalar campaign's post-run detector reads:
    // the settled state right after the lane's final step.
    r.probes.reserve(probes.size());
    for (netlist::NodeId p : probes) r.probes.push_back(sim_.value_i64(l, p));
    r.timing = derive_stream_timing(static_cast<int>(want[sl]), sim_.cycle(),
                                    sources[sl]->matrix_start_cycles(),
                                    sinks[sl]->matrix_end_cycles());
    done_at[sl] = cycles;
    active[sl] = 0;
    --remaining;
    // A finished lane leaves the batch entirely: the remaining sweep only
    // pays for lanes still running, so one straggler (e.g. a hang
    // candidate burning its whole cycle budget) degrades toward scalar
    // cost instead of dragging `lanes` columns along.
    if (!hung) sim_.retire_lane(l);
  };

  uint64_t cycles = 0;
  bool timed_out = false;
  while (remaining > 0) {
    if (cycles >= max_cycles) {
      timed_out = true;
      for (int l = 0; l < lanes; ++l)
        if (active[static_cast<size_t>(l)]) finish_lane(l, cycles, true);
      break;
    }
    // One scalar-testbench cycle, in the scalar order, for every active
    // lane: drive, settle all lanes together, consume, check, clock edge.
    for (int l = 0; l < lanes; ++l) {
      if (!active[static_cast<size_t>(l)]) continue;
      sources[static_cast<size_t>(l)]->pre_cycle();
      sinks[static_cast<size_t>(l)]->pre_cycle();
    }
    sim_.eval_all();
    for (int l = 0; l < lanes; ++l) {
      if (!active[static_cast<size_t>(l)]) continue;
      sources[static_cast<size_t>(l)]->post_eval();
      sinks[static_cast<size_t>(l)]->post_eval();
      monitors[static_cast<size_t>(l)]->sample();
    }
    sim_.step_all();
    ++cycles;
    for (int l = 0; l < lanes; ++l) {
      const size_t sl = static_cast<size_t>(l);
      if (active[sl] && sinks[sl]->matrices().size() >= want[sl])
        finish_lane(l, cycles, false);
    }
  }

  // Masked lanes: finished (or never started) while the batch kept
  // stepping for stragglers. Hung lanes all end at the final cycle and are
  // not "masked" — they ran the whole sweep.
  masked_early_ = 0;
  for (int l = 0; l < lanes; ++l) {
    const size_t sl = static_cast<size_t>(l);
    if (want[sl] == 0) {
      if (cycles > 0) ++masked_early_;
    } else if (!results[sl].hung && done_at[sl] < cycles) {
      ++masked_early_;
    }
  }

  if (obs::enabled()) {
    obs::Registry& reg = obs::registry();
    reg.counter("sim.batch.sweeps")->add(1);
    reg.counter("sim.batch.lanes")->add(lanes_active);
  }
  span.arg("cycles", static_cast<int64_t>(cycles))
      .arg("timed_out", timed_out ? int64_t{1} : int64_t{0});
  return results;
}

std::vector<BatchLaneResult> BatchStreamTestbench::run_jobs(
    const std::vector<Job>& jobs, uint64_t max_cycles,
    const std::vector<netlist::NodeId>& probes,
    const std::function<void(size_t, const BatchLaneResult&)>& on_done) {
  const int lanes = sim_.lanes();
  obs::Span span("testbench.batch_stream", "axis");
  span.arg("design", sim_.design().name())
      .arg("lanes", static_cast<int64_t>(lanes))
      .arg("jobs", static_cast<int64_t>(jobs.size()));
  refills_ = 0;

  std::vector<BatchLaneResult> results(jobs.size());
  std::vector<std::unique_ptr<SourceDriver>> sources(
      static_cast<size_t>(lanes));
  std::vector<std::unique_ptr<SinkDriver>> sinks(static_cast<size_t>(lanes));
  std::vector<std::unique_ptr<Monitor>> monitors(static_cast<size_t>(lanes));
  std::vector<size_t> job_of(static_cast<size_t>(lanes), 0);
  std::vector<size_t> want(static_cast<size_t>(lanes), 0);
  std::vector<char> active(static_cast<size_t>(lanes), 0);
  std::vector<char> idle(static_cast<size_t>(lanes), 0);
  size_t next = 0;
  int active_count = 0;
  int idle_count = 0;

  // Fresh driver/monitor state machines over the lane view, exactly as a
  // scalar run would construct them, plus the job's stimulus queue.
  auto bind_lane = [&](int l) {
    const size_t sl = static_cast<size_t>(l);
    sources[sl] = std::make_unique<SourceDriver>(sim_.lane(l));
    sinks[sl] = std::make_unique<SinkDriver>(sim_.lane(l));
    monitors[sl] = std::make_unique<Monitor>(sim_.lane(l));
    for (const idct::Block& b : jobs[job_of[sl]].inputs)
      sources[sl]->queue(b);
    want[sl] = jobs[job_of[sl]].inputs.size();
    active[sl] = 1;
    ++active_count;
  };

  // Initial fill: arm before reset — the same contract as run(), so
  // reset_all fires each lane's cycle-0 SEU on the reset state. Lanes with
  // no job leave the sweep immediately.
  for (int l = 0; l < lanes; ++l) {
    if (static_cast<size_t>(l) < jobs.size())
      sim_.arm_lane_fault(l, jobs[static_cast<size_t>(l)].fault);
    else
      sim_.disarm_lane_fault(l);
  }
  sim_.reset_all();
  for (int l = 0; l < lanes; ++l) {
    if (static_cast<size_t>(l) < jobs.size()) {
      job_of[static_cast<size_t>(l)] = static_cast<size_t>(l);
      bind_lane(l);
    } else {
      sim_.retire_lane(l);
    }
  }
  next = std::min(static_cast<size_t>(lanes), jobs.size());

  auto finish_lane = [&](int l, bool hung) {
    const size_t sl = static_cast<size_t>(l);
    const size_t j = job_of[sl];
    BatchLaneResult& r = results[j];
    r.matrices = sinks[sl]->matrices();
    r.clean = monitors[sl]->clean();
    r.hung = hung;
    // Same read point as the scalar campaign's post-run detector reads:
    // the settled state right after the lane's final step.
    r.probes.reserve(probes.size());
    for (netlist::NodeId p : probes) r.probes.push_back(sim_.value_i64(l, p));
    r.timing = derive_stream_timing(static_cast<int>(want[sl]),
                                    sim_.lane_cycle(l),
                                    sources[sl]->matrix_start_cycles(),
                                    sinks[sl]->matrix_end_cycles());
    active[sl] = 0;
    --active_count;
    // The lane idles (fault disarmed, no stimulus) until the refill policy
    // hands it the next job; with nothing left to stream it leaves the
    // sweep for good.
    sim_.disarm_lane_fault(l);
    if (next < jobs.size()) {
      idle[sl] = 1;
      ++idle_count;
    } else {
      sim_.retire_lane(l);
    }
    if (on_done) on_done(j, r);
  };

  while (active_count > 0 || next < jobs.size()) {
    // Per-lane watchdog on the lane's own clock — the scalar max_cycles
    // contract, so a hang classifies at the same budget as a scalar run
    // regardless of when its lane started.
    for (int l = 0; l < lanes; ++l)
      if (active[static_cast<size_t>(l)] &&
          sim_.lane_cycle(l) >= max_cycles)
        finish_lane(l, true);
    // Refill: once at least half the live lanes sit idle (or nothing is
    // left running), every idle lane restarts on the next pending job, in
    // ascending lane order — deterministic at any lane count.
    if (next < jobs.size() && idle_count > 0 && idle_count >= active_count) {
      for (int l = 0; l < lanes && next < jobs.size(); ++l) {
        const size_t sl = static_cast<size_t>(l);
        if (!idle[sl]) continue;
        job_of[sl] = next++;
        sim_.refill_lane(l, jobs[job_of[sl]].fault);
        bind_lane(l);
        idle[sl] = 0;
        --idle_count;
        ++refills_;
      }
    }
    // Jobs exhausted: lanes still idle leave the sweep so the remaining
    // stragglers pay only for themselves.
    if (next >= jobs.size() && idle_count > 0) {
      for (int l = 0; l < lanes; ++l) {
        const size_t sl = static_cast<size_t>(l);
        if (!idle[sl]) continue;
        idle[sl] = 0;
        --idle_count;
        sim_.retire_lane(l);
      }
    }
    if (active_count == 0) continue;
    // One scalar-testbench cycle, in the scalar order, for every active
    // lane: drive, settle all lanes together, consume, check, clock edge.
    for (int l = 0; l < lanes; ++l) {
      if (!active[static_cast<size_t>(l)]) continue;
      sources[static_cast<size_t>(l)]->pre_cycle();
      sinks[static_cast<size_t>(l)]->pre_cycle();
    }
    sim_.eval_all();
    for (int l = 0; l < lanes; ++l) {
      if (!active[static_cast<size_t>(l)]) continue;
      sources[static_cast<size_t>(l)]->post_eval();
      sinks[static_cast<size_t>(l)]->post_eval();
      monitors[static_cast<size_t>(l)]->sample();
    }
    sim_.step_all();
    for (int l = 0; l < lanes; ++l) {
      const size_t sl = static_cast<size_t>(l);
      if (active[sl] && sinks[sl]->matrices().size() >= want[sl])
        finish_lane(l, false);
    }
  }

  if (obs::enabled()) {
    obs::Registry& reg = obs::registry();
    reg.counter("sim.batch.sweeps")->add(1);
    reg.counter("sim.batch.lanes")->add(static_cast<int64_t>(jobs.size()));
    reg.counter("sim.batch.refills")->add(refills_);
  }
  span.arg("cycles", static_cast<int64_t>(sim_.cycle()))
      .arg("refills", static_cast<int64_t>(refills_));
  return results;
}

}  // namespace hlshc::axis
