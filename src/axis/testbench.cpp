#include "axis/testbench.hpp"

#include <algorithm>

#include "base/check.hpp"
#include "obs/trace.hpp"

namespace hlshc::axis {

namespace {

netlist::NodeId resolve_input(const sim::PortAccess& sim,
                              const std::string& name) {
  netlist::NodeId id = sim.design().find_input(name);
  HLSHC_CHECK(id != netlist::kInvalidNode,
              "no input port '" << name << "' in design '"
                                << sim.design().name() << '\'');
  return id;
}

netlist::NodeId resolve_output(const sim::PortAccess& sim,
                               const std::string& name) {
  netlist::NodeId id = sim.design().find_output(name);
  HLSHC_CHECK(id != netlist::kInvalidNode,
              "no output port '" << name << "' in design '"
                                 << sim.design().name() << '\'');
  return id;
}

}  // namespace

// ---- SourceDriver ----------------------------------------------------------

SourceDriver::SourceDriver(sim::PortAccess& sim, std::string prefix)
    : sim_(sim),
      prefix_(std::move(prefix)),
      tvalid_(resolve_input(sim, prefix_ + "_tvalid")),
      tlast_(resolve_input(sim, prefix_ + "_tlast")),
      tready_(resolve_output(sim, prefix_ + "_tready")) {
  for (int c = 0; c < kLanes; ++c)
    lanes_[static_cast<size_t>(c)] = resolve_input(sim, lane_port(prefix_, c));
}

void SourceDriver::queue(const idct::Block& block) {
  for (const Beat& b : matrix_to_beats(block)) beats_.push_back(b);
}

void SourceDriver::pre_cycle() {
  bool present = !beats_.empty() && gap_left_ == 0;
  sim_.poke(tvalid_, present ? 1 : 0);
  if (present) {
    const Beat& b = beats_.front();
    for (int c = 0; c < kLanes; ++c)
      sim_.poke(lanes_[static_cast<size_t>(c)],
                b.lanes[static_cast<size_t>(c)].to_int64());
    sim_.poke(tlast_, b.last ? 1 : 0);
  } else {
    sim_.poke(tlast_, 0);
  }
}

bool SourceDriver::post_eval() {
  if (gap_left_ > 0) {
    --gap_left_;
    return false;
  }
  if (beats_.empty()) return false;
  bool valid = true;  // we presented
  bool ready = sim_.value(tready_).to_bool();
  if (!(valid && ready)) return false;
  if (beat_in_matrix_ == 0) matrix_starts_.push_back(sim_.cycle());
  beat_in_matrix_ = (beat_in_matrix_ + 1) % idct::kBlockDim;
  beats_.pop_front();
  gap_left_ = gap_cycles_;
  return true;
}

// ---- SinkDriver ------------------------------------------------------------

SinkDriver::SinkDriver(sim::PortAccess& sim, std::string prefix)
    : sim_(sim),
      prefix_(std::move(prefix)),
      tvalid_(resolve_output(sim, prefix_ + "_tvalid")),
      tlast_(resolve_output(sim, prefix_ + "_tlast")),
      tready_(resolve_input(sim, prefix_ + "_tready")) {
  for (int c = 0; c < kLanes; ++c)
    lanes_[static_cast<size_t>(c)] = resolve_output(sim, lane_port(prefix_, c));
}

void SinkDriver::set_backpressure(int stall_cycles, int period) {
  HLSHC_CHECK(stall_cycles >= 0 && period >= 0 &&
                  (period == 0 || stall_cycles < period),
              "bad backpressure config " << stall_cycles << '/' << period);
  stall_cycles_ = stall_cycles;
  period_ = period;
}

void SinkDriver::pre_cycle() {
  bool ready = true;
  if (period_ > 0) {
    ready = phase_ >= stall_cycles_;
    phase_ = (phase_ + 1) % period_;
  }
  sim_.poke(tready_, ready ? 1 : 0);
}

bool SinkDriver::post_eval() {
  bool valid = sim_.value(tvalid_).to_bool();
  bool ready = sim_.value(tready_).to_bool();
  if (!(valid && ready)) return false;
  Beat beat;
  for (int c = 0; c < kLanes; ++c)
    beat.lanes[static_cast<size_t>(c)] =
        sim_.value(lanes_[static_cast<size_t>(c)]);
  beat.last = sim_.value(tlast_).to_bool();
  pending_.push_back(beat);
  if (beat.last) {
    matrices_.push_back(beats_to_matrix(pending_));
    ends_.push_back(sim_.cycle());
    pending_.clear();
  }
  return true;
}

// ---- StreamTestbench -------------------------------------------------------

StreamTestbench::StreamTestbench(sim::Engine& sim)
    : sim_(sim), source_(sim), sink_(sim), monitor_(sim) {}

std::vector<idct::Block> StreamTestbench::run(
    const std::vector<idct::Block>& inputs, uint64_t max_cycles) {
  obs::Span span("testbench.run", "axis");
  span.arg("design", sim_.design().name())
      .arg("engine", sim_.kind_name())
      .arg("matrices", static_cast<int64_t>(inputs.size()));
  sim_.reset();
  for (const idct::Block& b : inputs) source_.queue(b);

  const size_t want = inputs.size();
  uint64_t cycles = 0;
  while (sink_.matrices().size() < want) {
    if (cycles >= max_cycles)
      throw sim::SimTimeout(
          "stream testbench wedged on '" + sim_.design().name() + "' (" +
              std::to_string(sink_.matrices().size()) + '/' +
              std::to_string(want) + " matrices)",
          cycles);
    source_.pre_cycle();
    sink_.pre_cycle();
    sim_.eval();
    source_.post_eval();
    sink_.post_eval();
    monitor_.sample();
    sim_.step();
    ++cycles;
  }

  timing_ = derive_stream_timing(static_cast<int>(want), sim_.cycle(),
                                 source_.matrix_start_cycles(),
                                 sink_.matrix_end_cycles());
  monitor_.publish_metrics();
  span.arg("cycles", static_cast<int64_t>(timing_.total_cycles));
  return sink_.matrices();
}

StreamTiming derive_stream_timing(int matrices, uint64_t total_cycles,
                                  const std::vector<uint64_t>& starts,
                                  const std::vector<uint64_t>& ends) {
  StreamTiming timing;
  timing.matrices = matrices;
  timing.total_cycles = total_cycles;
  if (!starts.empty() && !ends.empty())
    timing.latency_cycles =
        static_cast<int>(ends.front() - starts.front() + 1);
  if (ends.size() >= 3) {
    // Steady-state completion interval: median of successive differences,
    // skipping the pipeline fill.
    std::vector<uint64_t> deltas;
    for (size_t i = 1; i < ends.size(); ++i)
      deltas.push_back(ends[i] - ends[i - 1]);
    std::sort(deltas.begin(), deltas.end());
    timing.periodicity_cycles =
        static_cast<double>(deltas[deltas.size() / 2]);
  } else if (ends.size() == 2) {
    timing.periodicity_cycles = static_cast<double>(ends[1] - ends[0]);
  } else {
    timing.periodicity_cycles = static_cast<double>(timing.latency_cycles);
  }
  return timing;
}

}  // namespace hlshc::axis
