// AXI4-Stream payload conventions used by every IDCT design.
//
// All designs in this repository expose the same row-by-row stream
// interface the paper wraps its kernels in:
//
//   slave (input)  port prefix "s": s_tdata0..7 (12b), s_tvalid, s_tlast,
//                                   and the s_tready back-pressure output;
//   master (output) prefix "m":     m_tdata0..7 (9b), m_tvalid, m_tlast,
//                                   and the m_tready back-pressure input.
//
// One beat carries one matrix row. The 96-bit input TDATA (8 x 12-bit
// coefficients) and the 72-bit output TDATA (8 x 9-bit samples) are modelled
// as 8 element lanes because the netlist value type is capped at 64 bits;
// the lane split changes neither the handshake protocol nor the pin count
// (the paper's N_IO counts total TDATA bits, which are identical).
// TLAST marks the 8th row of a matrix.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "base/bitvec.hpp"
#include "idct/block.hpp"

namespace hlshc::axis {

inline constexpr int kInElemWidth = 12;
inline constexpr int kOutElemWidth = 9;
inline constexpr int kLanes = idct::kBlockDim;
inline constexpr int kInBeatBits = kInElemWidth * kLanes;    // 96
inline constexpr int kOutBeatBits = kOutElemWidth * kLanes;  // 72

/// One stream beat: one matrix row across 8 element lanes.
struct Beat {
  std::array<BitVec, kLanes> lanes;
  bool last = false;
};

/// Lane port name, e.g. lane_port("s", 3) == "s_tdata3".
std::string lane_port(const std::string& prefix, int lane);

/// Row `r` of `block` as a 12-bit-lane input beat (TLAST on row 7).
Beat input_row_beat(const idct::Block& block, int r);

/// All 8 input beats of a matrix.
std::vector<Beat> matrix_to_beats(const idct::Block& block);

/// Store an output beat (9-bit lanes, sign-extended) into row `r`.
void store_output_beat(const Beat& beat, idct::Block& block, int r);

/// Reassemble a matrix from 8 output beats (asserts beats.size() == 8).
idct::Block beats_to_matrix(const std::vector<Beat>& beats);

}  // namespace hlshc::axis
