#include "axis/stream.hpp"

#include "base/check.hpp"

namespace hlshc::axis {

std::string lane_port(const std::string& prefix, int lane) {
  return prefix + "_tdata" + std::to_string(lane);
}

Beat input_row_beat(const idct::Block& block, int r) {
  Beat beat;
  for (int c = 0; c < kLanes; ++c)
    beat.lanes[static_cast<size_t>(c)] =
        BitVec(kInElemWidth, idct::at(block, r, c));
  beat.last = (r == idct::kBlockDim - 1);
  return beat;
}

std::vector<Beat> matrix_to_beats(const idct::Block& block) {
  std::vector<Beat> beats;
  beats.reserve(idct::kBlockDim);
  for (int r = 0; r < idct::kBlockDim; ++r)
    beats.push_back(input_row_beat(block, r));
  return beats;
}

void store_output_beat(const Beat& beat, idct::Block& block, int r) {
  for (int c = 0; c < kLanes; ++c)
    idct::at(block, r, c) = static_cast<int32_t>(
        beat.lanes[static_cast<size_t>(c)].to_int64());
}

idct::Block beats_to_matrix(const std::vector<Beat>& beats) {
  HLSHC_CHECK(beats.size() == idct::kBlockDim,
              "expected 8 output beats, got " << beats.size());
  idct::Block block{};
  for (int r = 0; r < idct::kBlockDim; ++r)
    store_output_beat(beats[static_cast<size_t>(r)], block, r);
  return block;
}

}  // namespace hlshc::axis
