// AXI-Stream testbench drivers and the streaming measurement loop.
//
// StreamTestbench drives any sim::Engine (interpreter or compiled) over a
// DUT exposing the canonical s/m stream ports, drives queued matrices in,
// collects matrices out, and timestamps every handshake. The evaluation
// procedure derives latency (first accepted input beat -> last delivered
// output beat of the same matrix) and periodicity (steady-state interval
// between completions) from these timestamps — the T_L and T_P of the
// paper, measured rather than asserted.
//
// Port names are resolved to node ids once at construction; the per-cycle
// loop drives and samples by id so the harness overhead does not mask the
// engine's throughput.
//
// The slave-side driver can inject rate limiting and the master-side driver
// back-pressure, which the protocol tests use to check TREADY handling.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "axis/monitor.hpp"
#include "axis/stream.hpp"
#include "sim/engine.hpp"

namespace hlshc::axis {

/// Drives the DUT's slave (input) stream port.
class SourceDriver {
 public:
  /// Resolves the port names against the engine's design; throws on a
  /// design that lacks the canonical stream ports.
  SourceDriver(sim::PortAccess& sim, std::string prefix = "s");

  void queue(const idct::Block& block);
  bool idle() const { return beats_.empty(); }

  /// Present the head beat (or deassert TVALID when empty / throttled).
  void pre_cycle();
  /// After eval: consume the beat on TVALID && TREADY. Returns true when a
  /// beat was accepted this cycle.
  bool post_eval();

  /// If >0, insert this many idle cycles between presented beats.
  void set_gap_cycles(int gap) { gap_cycles_ = gap; }

  /// Cycle numbers at which the *first* beat of each queued matrix was
  /// accepted (indexed by matrix order).
  const std::vector<uint64_t>& matrix_start_cycles() const {
    return matrix_starts_;
  }

 private:
  sim::PortAccess& sim_;
  std::string prefix_;
  netlist::NodeId tvalid_, tlast_, tready_;
  std::array<netlist::NodeId, kLanes> lanes_{};
  std::deque<Beat> beats_;
  int beat_in_matrix_ = 0;
  int gap_cycles_ = 0;
  int gap_left_ = 0;
  std::vector<uint64_t> matrix_starts_;
};

/// Consumes the DUT's master (output) stream port.
class SinkDriver {
 public:
  SinkDriver(sim::PortAccess& sim, std::string prefix = "m");

  /// Deassert TREADY for `n` cycles out of every `period` (0 = always ready).
  void set_backpressure(int stall_cycles, int period);

  void pre_cycle();
  /// After eval: capture the beat on TVALID && TREADY. Returns true when a
  /// beat was captured this cycle.
  bool post_eval();

  const std::vector<idct::Block>& matrices() const { return matrices_; }
  /// Cycle of the final (TLAST) beat of each completed matrix.
  const std::vector<uint64_t>& matrix_end_cycles() const { return ends_; }

 private:
  sim::PortAccess& sim_;
  std::string prefix_;
  netlist::NodeId tvalid_, tlast_, tready_;
  std::array<netlist::NodeId, kLanes> lanes_{};
  std::vector<Beat> pending_;
  std::vector<idct::Block> matrices_;
  std::vector<uint64_t> ends_;
  int stall_cycles_ = 0;
  int period_ = 0;
  int phase_ = 0;
};

/// Measured stream timing for a run of N matrices.
struct StreamTiming {
  int matrices = 0;
  int latency_cycles = 0;      ///< T_L of the first matrix (incl. I/O)
  double periodicity_cycles = 0.0;  ///< steady-state completion interval T_P
  uint64_t total_cycles = 0;
};

/// The one timing derivation (T_L from the first start/end pair, T_P as the
/// median completion interval) shared by StreamTestbench and the lane-batched
/// harness, so both report bitwise-identical numbers for the same handshake
/// timestamps.
StreamTiming derive_stream_timing(int matrices, uint64_t total_cycles,
                                  const std::vector<uint64_t>& starts,
                                  const std::vector<uint64_t>& ends);

class StreamTestbench {
 public:
  /// `sim` must expose the canonical stream ports. The monitor is armed by
  /// default and records protocol violations.
  explicit StreamTestbench(sim::Engine& sim);

  /// Push `inputs` through the DUT; runs until all outputs are collected or
  /// `max_cycles` elapse (throws sim::SimTimeout — the watchdog that keeps a
  /// wedged TVALID/TREADY handshake from spinning forever). Returns the
  /// outputs.
  std::vector<idct::Block> run(const std::vector<idct::Block>& inputs,
                               uint64_t max_cycles = 200000);

  const StreamTiming& timing() const { return timing_; }
  SourceDriver& source() { return source_; }
  SinkDriver& sink() { return sink_; }
  const Monitor& monitor() const { return monitor_; }

 private:
  sim::Engine& sim_;
  SourceDriver source_;
  SinkDriver sink_;
  Monitor monitor_;
  StreamTiming timing_;
};

}  // namespace hlshc::axis
