#include "axis/monitor.hpp"

#include <sstream>

#include "obs/metrics.hpp"

namespace hlshc::axis {

namespace {

// The port may be an input (testbench-driven) or an output (DUT-driven);
// look it up on either side.
netlist::NodeId resolve_port(const sim::PortAccess& sim, const std::string& name) {
  const netlist::Design& d = sim.design();
  netlist::NodeId id = d.find_output(name);
  if (id == netlist::kInvalidNode) id = d.find_input(name);
  HLSHC_CHECK(id != netlist::kInvalidNode,
              "stream port '" << name << "' not found");
  return id;
}

}  // namespace

StreamWatch::StreamWatch(sim::PortAccess& sim, std::string prefix, int lane_width)
    : sim_(sim),
      prefix_(std::move(prefix)),
      lane_width_(lane_width),
      tvalid_(resolve_port(sim, prefix_ + "_tvalid")),
      tready_(resolve_port(sim, prefix_ + "_tready")),
      tlast_(resolve_port(sim, prefix_ + "_tlast")) {
  for (int c = 0; c < kLanes; ++c)
    lanes_[static_cast<size_t>(c)] = resolve_port(sim, lane_port(prefix_, c));
  prev_lanes_.assign(kLanes, BitVec::zero(lane_width_ > 0 ? lane_width_ : 1));
}

void StreamWatch::sample() {
  bool valid = sim_.value(tvalid_).to_bool();
  bool ready = sim_.value(tready_).to_bool();
  bool last = sim_.value(tlast_).to_bool();
  std::vector<BitVec> lanes(kLanes);
  for (int c = 0; c < kLanes; ++c)
    lanes[static_cast<size_t>(c)] = sim_.value(lanes_[static_cast<size_t>(c)]);

  auto report = [&](const std::string& what) {
    std::ostringstream os;
    os << prefix_ << " @cycle " << sim_.cycle() << ": " << what;
    violations_.push_back(os.str());
  };

  if (prev_valid_ && !prev_ready_) {
    // An offer was stalled last cycle: it must persist unchanged.
    if (!valid) report("TVALID retracted before handshake (V1)");
    if (valid && last != prev_last_) report("TLAST changed while stalled (V2)");
    if (valid) {
      for (int c = 0; c < kLanes; ++c)
        if (lanes[static_cast<size_t>(c)] !=
            prev_lanes_[static_cast<size_t>(c)]) {
          report("TDATA lane " + std::to_string(c) +
                 " changed while stalled (V2)");
          break;
        }
    }
  }

  if (valid && !ready) ++stalls_;
  if (valid && ready) {
    ++beats_;
    ++beats_in_frame_;
    if (last) {
      if (beats_in_frame_ != idct::kBlockDim)
        report("frame of " + std::to_string(beats_in_frame_) +
               " beats, expected 8 (V3)");
      beats_in_frame_ = 0;
    } else if (beats_in_frame_ >= idct::kBlockDim) {
      report("missing TLAST on 8th beat (V3)");
      beats_in_frame_ = 0;
    }
  }

  prev_valid_ = valid;
  prev_ready_ = ready;
  prev_last_ = last;
  prev_lanes_ = lanes;
}

void StreamWatch::publish_metrics() const {
  if (!obs::enabled()) return;
  obs::Registry& reg = obs::registry();
  reg.counter("axis." + prefix_ + ".beats")->add(static_cast<int64_t>(beats_));
  reg.counter("axis." + prefix_ + ".stalls")
      ->add(static_cast<int64_t>(stalls_));
  reg.counter("axis." + prefix_ + ".violations")
      ->add(static_cast<int64_t>(violations_.size()));
}

Monitor::Monitor(sim::PortAccess& sim)
    : slave_(sim, "s", kInElemWidth), master_(sim, "m", kOutElemWidth) {}

void Monitor::publish_metrics() const {
  slave_.publish_metrics();
  master_.publish_metrics();
}

void Monitor::sample() {
  slave_.sample();
  master_.sample();
}

std::vector<std::string> Monitor::violations() const {
  std::vector<std::string> all = slave_.violations();
  const auto& m = master_.violations();
  all.insert(all.end(), m.begin(), m.end());
  return all;
}

}  // namespace hlshc::axis
