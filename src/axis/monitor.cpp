#include "axis/monitor.hpp"

#include <sstream>

namespace hlshc::axis {

StreamWatch::StreamWatch(sim::Simulator& sim, std::string prefix,
                         int lane_width)
    : sim_(sim), prefix_(std::move(prefix)), lane_width_(lane_width) {
  prev_lanes_.assign(kLanes, BitVec::zero(lane_width_ > 0 ? lane_width_ : 1));
}

void StreamWatch::sample() {
  auto port_value = [&](const std::string& name) -> BitVec {
    // The port may be an input (testbench-driven) or an output (DUT-driven);
    // look it up on either side.
    const netlist::Design& d = sim_.design();
    netlist::NodeId id = d.find_output(name);
    if (id == netlist::kInvalidNode) id = d.find_input(name);
    HLSHC_CHECK(id != netlist::kInvalidNode,
                "stream port '" << name << "' not found");
    return sim_.value(id);
  };

  bool valid = port_value(prefix_ + "_tvalid").to_bool();
  bool ready = port_value(prefix_ + "_tready").to_bool();
  bool last = port_value(prefix_ + "_tlast").to_bool();
  std::vector<BitVec> lanes(kLanes);
  for (int c = 0; c < kLanes; ++c)
    lanes[static_cast<size_t>(c)] = port_value(lane_port(prefix_, c));

  auto report = [&](const std::string& what) {
    std::ostringstream os;
    os << prefix_ << " @cycle " << sim_.cycle() << ": " << what;
    violations_.push_back(os.str());
  };

  if (prev_valid_ && !prev_ready_) {
    // An offer was stalled last cycle: it must persist unchanged.
    if (!valid) report("TVALID retracted before handshake (V1)");
    if (valid && last != prev_last_) report("TLAST changed while stalled (V2)");
    if (valid) {
      for (int c = 0; c < kLanes; ++c)
        if (lanes[static_cast<size_t>(c)] !=
            prev_lanes_[static_cast<size_t>(c)]) {
          report("TDATA lane " + std::to_string(c) +
                 " changed while stalled (V2)");
          break;
        }
    }
  }

  if (valid && ready) {
    ++beats_in_frame_;
    if (last) {
      if (beats_in_frame_ != idct::kBlockDim)
        report("frame of " + std::to_string(beats_in_frame_) +
               " beats, expected 8 (V3)");
      beats_in_frame_ = 0;
    } else if (beats_in_frame_ >= idct::kBlockDim) {
      report("missing TLAST on 8th beat (V3)");
      beats_in_frame_ = 0;
    }
  }

  prev_valid_ = valid;
  prev_ready_ = ready;
  prev_last_ = last;
  prev_lanes_ = lanes;
}

Monitor::Monitor(sim::Simulator& sim)
    : slave_(sim, "s", kInElemWidth), master_(sim, "m", kOutElemWidth) {}

void Monitor::sample() {
  slave_.sample();
  master_.sample();
}

std::vector<std::string> Monitor::violations() const {
  std::vector<std::string> all = slave_.violations();
  const auto& m = master_.violations();
  all.insert(all.end(), m.begin(), m.end());
  return all;
}

}  // namespace hlshc::axis
