// axis::BatchStreamTestbench — the lockstep lane harness over
// sim::BatchSimulator.
//
// Each lane gets its own SourceDriver / SinkDriver / Monitor instance bound
// to that lane's PortAccess view — the *same* driver and monitor state
// machines StreamTestbench uses for scalar engines — and all lanes advance
// through one shared step_all() per cycle. Because a lane's stimulus, its
// handshake decisions and its protocol checks run exactly the scalar code
// over exactly the scalar per-cycle protocol, a lane's captured matrices,
// violations and timing are bitwise-identical to the same run on a scalar
// engine.
//
// Divergence handling (the "masking" of the lane-batched design): a lane is
// done when its sink has collected its quota of matrices; done lanes stop
// being driven and sampled (their TVALID stays low, their monitor stops
// accumulating) and are retired from the simulator — the lane-major arrays
// compact, so the remaining sweep only pays for the lanes still running and
// a single straggler degrades toward scalar cost. A lane still unfinished
// at max_cycles is flagged hung (the scalar harness throws sim::SimTimeout
// for the same condition; campaign code maps both to the hang outcome).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "axis/testbench.hpp"
#include "sim/batch.hpp"

namespace hlshc::axis {

/// One lane's run result.
struct BatchLaneResult {
  std::vector<idct::Block> matrices;
  bool clean = true;   ///< no protocol violations up to lane completion
  bool hung = false;   ///< lane did not finish within max_cycles
  /// Probe node values sampled at lane completion (same read point as the
  /// scalar campaign's post-run detector reads), canonical int64 per probe.
  std::vector<int64_t> probes;
  StreamTiming timing;
};

class BatchStreamTestbench {
 public:
  explicit BatchStreamTestbench(sim::BatchSimulator& sim) : sim_(sim) {}

  /// Push `inputs[l]` through lane l (an empty vector idles the lane);
  /// runs until every lane collected its matrices or `max_cycles` elapse
  /// (stragglers come back with hung=true — no exception, other lanes'
  /// results stay valid). `probes` names nodes to sample per lane at its
  /// completion cycle.
  std::vector<BatchLaneResult> run(
      const std::vector<std::vector<idct::Block>>& inputs,
      uint64_t max_cycles,
      const std::vector<netlist::NodeId>& probes = {});

  /// Lanes of the last run() that completed strictly before the final
  /// active lane (the "masked" lanes that idled while stragglers ran),
  /// including lanes given no input at all.
  int lanes_masked_early() const { return masked_early_; }

  /// One unit of streamed work: an input set plus the fault armed for its
  /// whole run (kNone = clean). Each job's result is bitwise-identical to
  /// a scalar run of the same fault/inputs from reset.
  struct Job {
    std::vector<idct::Block> inputs;
    sim::LaneFault fault;
  };

  /// Streaming variant of run(): pulls `jobs` through the lane pool,
  /// refilling freed lanes with fresh jobs instead of draining a whole
  /// group behind a straggler. Lanes that finish (or hang — each lane gets
  /// its own `max_cycles` budget on its own clock) go idle; once at least
  /// half the live lanes are idle (or no lane is left running), every idle
  /// lane is refilled via sim::BatchSimulator::refill_lane with the next
  /// pending jobs, in ascending lane order. Results land in job order.
  /// `on_done(job, result)` fires as each job completes, in completion
  /// order — campaign progress hooks ride on it.
  std::vector<BatchLaneResult> run_jobs(
      const std::vector<Job>& jobs, uint64_t max_cycles,
      const std::vector<netlist::NodeId>& probes = {},
      const std::function<void(size_t, const BatchLaneResult&)>& on_done =
          {});

  /// Mid-sweep lane refills performed by the last run_jobs().
  int lane_refills() const { return refills_; }

 private:
  sim::BatchSimulator& sim_;
  int masked_early_ = 0;
  int refills_ = 0;
};

}  // namespace hlshc::axis
