#include "chisel/dsl.hpp"

#include <algorithm>

#include "base/check.hpp"

namespace hlshc::chisel {

using netlist::NodeId;

namespace {

int checked_width(int w) {
  HLSHC_CHECK(w >= 1 && w <= 64,
              "inferred width " << w << " exceeds the 64-bit value limit");
  return w;
}

}  // namespace

// ---- Bool -------------------------------------------------------------------

Bool Bool::operator&&(const Bool& o) const {
  HLSHC_CHECK(b_ != nullptr && b_ == o.b_, "Bool from different builders");
  return Bool(b_, b_->design().band(id_, o.id_, 1));
}

Bool Bool::operator||(const Bool& o) const {
  HLSHC_CHECK(b_ != nullptr && b_ == o.b_, "Bool from different builders");
  return Bool(b_, b_->design().bor(id_, o.id_, 1));
}

Bool Bool::operator!() const {
  HLSHC_CHECK(b_ != nullptr, "unbound Bool");
  return Bool(b_, b_->design().bnot(id_, 1));
}

// ---- SInt -------------------------------------------------------------------

SInt SInt::operator+(const SInt& o) const {
  HLSHC_CHECK(b_ != nullptr && b_ == o.b_, "SInt from different builders");
  int w = checked_width(std::max(width_, o.width_) + 1);
  return SInt(b_, b_->design().add(id_, o.id_, w), w);
}

SInt SInt::operator-(const SInt& o) const {
  HLSHC_CHECK(b_ != nullptr && b_ == o.b_, "SInt from different builders");
  int w = checked_width(std::max(width_, o.width_) + 1);
  return SInt(b_, b_->design().sub(id_, o.id_, w), w);
}

SInt SInt::operator*(const SInt& o) const {
  HLSHC_CHECK(b_ != nullptr && b_ == o.b_, "SInt from different builders");
  int w = checked_width(width_ + o.width_);
  return SInt(b_, b_->design().mul(id_, o.id_, w), w);
}

SInt SInt::operator-() const {
  HLSHC_CHECK(b_ != nullptr, "unbound SInt");
  int w = checked_width(width_ + 1);
  return SInt(b_, b_->design().neg(id_, w), w);
}

SInt SInt::operator<<(int n) const {
  HLSHC_CHECK(b_ != nullptr, "unbound SInt");
  int w = checked_width(width_ + n);
  return SInt(b_, b_->design().shl(id_, n, w), w);
}

SInt SInt::operator>>(int n) const {
  HLSHC_CHECK(b_ != nullptr, "unbound SInt");
  int w = std::max(width_ - n, 1);
  return SInt(b_, b_->design().ashr(id_, n, w), w);
}

Bool SInt::operator<(const SInt& o) const {
  HLSHC_CHECK(b_ != nullptr && b_ == o.b_, "SInt from different builders");
  return Bool(b_, b_->design().slt(id_, o.id_));
}

Bool SInt::operator>(const SInt& o) const {
  HLSHC_CHECK(b_ != nullptr && b_ == o.b_, "SInt from different builders");
  return Bool(b_, b_->design().sgt(id_, o.id_));
}

Bool SInt::operator==(const SInt& o) const {
  HLSHC_CHECK(b_ != nullptr && b_ == o.b_, "SInt from different builders");
  // Chisel compares after widening both sides to the max width.
  int w = std::max(width_, o.width_);
  netlist::Design& d = b_->design();
  return Bool(b_, d.eq(d.sext(id_, w), d.sext(o.id_, w)));
}

SInt SInt::truncate(int w) const {
  HLSHC_CHECK(b_ != nullptr, "unbound SInt");
  if (w >= width_) return *this;
  return SInt(b_, b_->design().slice(id_, w - 1, 0), w);
}

Bool SInt::bit(int k) const {
  HLSHC_CHECK(b_ != nullptr, "unbound SInt");
  HLSHC_CHECK(k >= 0 && k < width_, "bit index " << k << " out of " << width_);
  return Bool(b_, b_->design().slice(id_, k, k));
}

// ---- Builder ----------------------------------------------------------------

SInt Builder::input(const std::string& port, int width) {
  return wrap(design_.input(port, width), width);
}

Bool Builder::input_bool(const std::string& port) {
  return wrap_bool(design_.input(port, 1));
}

void Builder::output(const std::string& port, const SInt& v) {
  design_.output(port, v.id());
}

void Builder::output_bool(const std::string& port, const Bool& v) {
  design_.output(port, v.id());
}

SInt Builder::lit(int64_t v) {
  int w = BitVec::min_signed_width(v);
  return wrap(design_.constant(w, v), w);
}

SInt Builder::lit_w(int64_t v, int width) {
  return wrap(design_.constant(width, v), width);
}

Bool Builder::lit_bool(bool v) {
  return wrap_bool(design_.constant(1, v ? 1 : 0));
}

SInt Builder::reg_init(int width, int64_t init, const std::string& label) {
  return wrap(design_.reg(width, init, label), width);
}

SInt Builder::reg_like(const SInt& model, int64_t init,
                       const std::string& label) {
  return wrap(design_.reg(model.width(), init, label), model.width());
}

Bool Builder::reg_bool(bool init, const std::string& label) {
  return wrap_bool(design_.reg(1, init ? 1 : 0, label));
}

void Builder::connect(const SInt& reg, const SInt& next) {
  // Widen (or refuse to silently truncate) like a Chisel := on SInt.
  HLSHC_CHECK(next.width() <= reg.width(),
              "connect would truncate " << next.width() << " -> "
                                        << reg.width() << " bits");
  netlist::NodeId rhs = next.width() == reg.width()
                            ? next.id()
                            : design_.sext(next.id(), reg.width());
  design_.set_reg_next(reg.id(), rhs);
}

void Builder::connect(const Bool& reg, const Bool& next) {
  design_.set_reg_next(reg.id(), next.id());
}

void Builder::connect_when(const SInt& reg, const Bool& en,
                           const SInt& next) {
  HLSHC_CHECK(next.width() <= reg.width(),
              "connect_when would truncate " << next.width() << " -> "
                                             << reg.width() << " bits");
  netlist::NodeId rhs = next.width() == reg.width()
                            ? next.id()
                            : design_.sext(next.id(), reg.width());
  design_.set_reg_next(reg.id(), rhs, en.id());
}

SInt Builder::mux(const Bool& sel, const SInt& t, const SInt& f) {
  int w = std::max(t.width(), f.width());
  return wrap(design_.mux(sel.id(), design_.sext(t.id(), w),
                          design_.sext(f.id(), w), w),
              w);
}

Bool Builder::mux(const Bool& sel, const Bool& t, const Bool& f) {
  return wrap_bool(design_.mux(sel.id(), t.id(), f.id(), 1));
}

}  // namespace hlshc::chisel
