// The Chisel design family of the paper.
//
// Same microarchitectures as the Verilog baseline (a naive combinational
// initial design and the pipelined one-row-unit/one-col-unit optimized
// design), but expressed in the width-inferring eDSL: every intermediate
// net carries only the bits the operator tree requires, which is the
// mechanism behind the paper's Chisel results (initial design: 105.7%
// performance, 94.6% area of Verilog; optimized: 98.7% / 109.5%).
#pragma once

#include <array>

#include "chisel/dsl.hpp"
#include "netlist/ir.hpp"

namespace hlshc::chisel {

/// Chen-Wang row pass with inferred widths; exposed for unit tests.
std::array<SInt, 8> idct_row(Builder& b, const std::array<SInt, 8>& blk);

/// Chen-Wang column pass with rounding and 9-bit clipping.
std::array<SInt, 8> idct_col(Builder& b, const std::array<SInt, 8>& blk);

netlist::Design build_chisel_initial();
netlist::Design build_chisel_opt();

/// Standalone 1-D pass kernels in the framework's PassKernel port shape
/// (i0..i7 -> o0..o7, combinational): Chisel-built units other flows can
/// compose with through framework::compose_row_col — the paper's
/// future-work "mix lower-level tools" scenario.
netlist::Design build_row_pass_kernel();
netlist::Design build_col_pass_kernel(int input_width = 16);

/// The pure 2-D IDCT dataflow kernel with inferred widths, in the
/// framework's MatrixKernel port shape (x0..x63 -> y0..y63, combinational)
/// — the synth::schedule_pipeline input for the Chisel flow's pipelined
/// sweep points.
netlist::Design build_matrix_kernel();

}  // namespace hlshc::chisel
