#include "chisel/designs.hpp"

#include <string>
#include <vector>

#include "axis/stream.hpp"
#include "idct/chenwang.hpp"

namespace hlshc::chisel {

namespace {

using idct::kW1;
using idct::kW2;
using idct::kW3;
using idct::kW5;
using idct::kW6;
using idct::kW7;

SInt clip9(Builder& b, const SInt& v) {
  SInt lo = b.lit(idct::kSampleMin);
  SInt hi = b.lit(idct::kSampleMax);
  return b.mux(v < lo, lo, b.mux(v > hi, hi, v)).truncate(9);
}

/// Vec(idx) lookup as a balanced mux tree over the index bits.
SInt vec_read(Builder& b, const SInt& idx, std::vector<SInt> items) {
  int bitpos = 0;
  while (items.size() > 1) {
    Bool sel = idx.bit(bitpos++);
    std::vector<SInt> next;
    next.reserve(items.size() / 2);
    for (size_t i = 0; i + 1 < items.size(); i += 2)
      next.push_back(b.mux(sel, items[i + 1], items[i]));
    items = std::move(next);
  }
  return items[0];
}

}  // namespace

std::array<SInt, 8> idct_row(Builder& b, const std::array<SInt, 8>& blk) {
  SInt x1 = blk[4] << 11;
  SInt x2 = blk[6], x3 = blk[2], x4 = blk[1], x5 = blk[7], x6 = blk[5],
       x7 = blk[3];
  SInt x0 = (blk[0] << 11) + b.lit(128);

  // first stage
  SInt x8 = b.lit(kW7) * (x4 + x5);
  x4 = x8 + b.lit(kW1 - kW7) * x4;
  x5 = x8 - b.lit(kW1 + kW7) * x5;
  x8 = b.lit(kW3) * (x6 + x7);
  x6 = x8 - b.lit(kW3 - kW5) * x6;
  x7 = x8 - b.lit(kW3 + kW5) * x7;

  // second stage
  x8 = x0 + x1;
  x0 = x0 - x1;
  x1 = b.lit(kW6) * (x3 + x2);
  x2 = x1 - b.lit(kW2 + kW6) * x2;
  x3 = x1 + b.lit(kW2 - kW6) * x3;
  x1 = x4 + x6;
  x4 = x4 - x6;
  x6 = x5 + x7;
  x5 = x5 - x7;

  // third stage
  x7 = x8 + x3;
  x8 = x8 - x3;
  x3 = x0 + x2;
  x0 = x0 - x2;
  x2 = (b.lit(181) * (x4 + x5) + b.lit(128)) >> 8;
  x4 = (b.lit(181) * (x4 - x5) + b.lit(128)) >> 8;

  // fourth stage
  return {(x7 + x1) >> 8, (x3 + x2) >> 8, (x0 + x4) >> 8, (x8 + x6) >> 8,
          (x8 - x6) >> 8, (x0 - x4) >> 8, (x3 - x2) >> 8, (x7 - x1) >> 8};
}

std::array<SInt, 8> idct_col(Builder& b, const std::array<SInt, 8>& blk) {
  SInt x1 = blk[4] << 8;
  SInt x2 = blk[6], x3 = blk[2], x4 = blk[1], x5 = blk[7], x6 = blk[5],
       x7 = blk[3];
  SInt x0 = (blk[0] << 8) + b.lit(8192);

  // first stage
  SInt x8 = b.lit(kW7) * (x4 + x5) + b.lit(4);
  x4 = (x8 + b.lit(kW1 - kW7) * x4) >> 3;
  x5 = (x8 - b.lit(kW1 + kW7) * x5) >> 3;
  x8 = b.lit(kW3) * (x6 + x7) + b.lit(4);
  x6 = (x8 - b.lit(kW3 - kW5) * x6) >> 3;
  x7 = (x8 - b.lit(kW3 + kW5) * x7) >> 3;

  // second stage
  x8 = x0 + x1;
  x0 = x0 - x1;
  x1 = b.lit(kW6) * (x3 + x2) + b.lit(4);
  x2 = (x1 - b.lit(kW2 + kW6) * x2) >> 3;
  x3 = (x1 + b.lit(kW2 - kW6) * x3) >> 3;
  x1 = x4 + x6;
  x4 = x4 - x6;
  x6 = x5 + x7;
  x5 = x5 - x7;

  // third stage
  x7 = x8 + x3;
  x8 = x8 - x3;
  x3 = x0 + x2;
  x0 = x0 - x2;
  x2 = (b.lit(181) * (x4 + x5) + b.lit(128)) >> 8;
  x4 = (b.lit(181) * (x4 - x5) + b.lit(128)) >> 8;

  // fourth stage
  return {clip9(b, (x7 + x1) >> 14), clip9(b, (x3 + x2) >> 14),
          clip9(b, (x0 + x4) >> 14), clip9(b, (x8 + x6) >> 14),
          clip9(b, (x8 - x6) >> 14), clip9(b, (x0 - x4) >> 14),
          clip9(b, (x3 - x2) >> 14), clip9(b, (x7 - x1) >> 14)};
}

namespace {

struct Io {
  std::array<SInt, 8> s_lane;
  Bool s_valid, s_last, m_ready;
};

Io make_io(Builder& b) {
  Io io;
  for (int c = 0; c < 8; ++c)
    io.s_lane[static_cast<size_t>(c)] =
        b.input(axis::lane_port("s", c), axis::kInElemWidth);
  io.s_valid = b.input_bool("s_tvalid");
  io.s_last = b.input_bool("s_tlast");
  io.m_ready = b.input_bool("m_tready");
  return io;
}

/// 0..7 counter at 4 bits (SInt counters stay non-negative) with an
/// explicit wrap mux, counting when `tick` holds.
struct Counter {
  SInt value;
  Bool at_last;
};

Counter make_counter(Builder& b, const Bool& tick, const std::string& name) {
  SInt cnt = b.reg_init(4, 0, name);
  Bool last = cnt == b.lit(7);
  SInt next = b.mux(last, b.lit_w(0, 4), (cnt + b.lit(1)).truncate(4));
  b.connect_when(cnt, tick, next);
  return Counter{cnt, last};
}

Bool is_row(Builder& b, const SInt& cnt, int r) { return cnt == b.lit(r); }

/// result[r][c] from the column pass over stored rows, eight col units.
std::array<std::array<SInt, 8>, 8> column_pass(
    Builder& b, const std::array<std::array<SInt, 8>, 8>& rows) {
  std::array<std::array<SInt, 8>, 8> result;
  for (int col = 0; col < 8; ++col) {
    std::array<SInt, 8> column;
    for (int r = 0; r < 8; ++r)
      column[static_cast<size_t>(r)] =
          rows[static_cast<size_t>(r)][static_cast<size_t>(col)];
    auto out = idct_col(b, column);
    for (int r = 0; r < 8; ++r)
      result[static_cast<size_t>(r)][static_cast<size_t>(col)] =
          out[static_cast<size_t>(r)];
  }
  return result;
}

}  // namespace

netlist::Design build_chisel_initial() {
  Builder b("chisel_initial");
  Io io = make_io(b);

  // --- handshake state (same scheme as the Verilog baseline) ---
  Bool pend = b.reg_bool(false, "pend");
  Bool out_active = b.reg_bool(false, "out_active");

  SInt out_cnt = b.reg_init(4, 0, "out_cnt");
  Bool out_last = out_cnt == b.lit(7);
  Bool m_valid = out_active;
  Bool out_fire = m_valid && io.m_ready;
  Bool out_last_fire = out_fire && out_last;
  Bool capture = pend && (!out_active || out_last_fire);
  Bool s_ready = !pend || capture;
  Bool in_fire = io.s_valid && s_ready;

  SInt in_cnt = b.reg_init(4, 0, "in_cnt");
  Bool in_last = in_cnt == b.lit(7);
  Bool in_last_fire = in_fire && in_last;
  b.connect_when(in_cnt, in_fire,
                 b.mux(in_last, b.lit_w(0, 4), (in_cnt + b.lit(1)).truncate(4)));
  b.connect(pend, in_last_fire || (pend && !capture));
  b.connect(out_active,
            b.mux(capture, b.lit_bool(true),
                  b.mux(out_last_fire, b.lit_bool(false), out_active)));
  b.connect_when(out_cnt, capture || out_fire,
                 b.mux(capture, b.lit_w(0, 4),
                       b.mux(out_last, b.lit_w(0, 4),
                             (out_cnt + b.lit(1)).truncate(4))));
  b.output_bool("s_tready", s_ready);
  b.output_bool("m_tvalid", m_valid);
  b.output_bool("m_tlast", out_last);

  // --- input collector: 64 x 12-bit registers ---
  std::array<std::array<SInt, 8>, 8> in_regs;
  for (int r = 0; r < 8; ++r) {
    Bool row_en = in_fire && is_row(b, in_cnt, r);
    for (int c = 0; c < 8; ++c) {
      SInt reg = b.reg_init(axis::kInElemWidth, 0,
                            "in_r" + std::to_string(r) + "c" +
                                std::to_string(c));
      b.connect_when(reg, row_en, io.s_lane[static_cast<size_t>(c)]);
      in_regs[static_cast<size_t>(r)][static_cast<size_t>(c)] = reg;
    }
  }

  // --- naive combinational 2-D IDCT: 8 row units into 8 col units ---
  std::array<std::array<SInt, 8>, 8> row_out;
  for (int r = 0; r < 8; ++r)
    row_out[static_cast<size_t>(r)] =
        idct_row(b, in_regs[static_cast<size_t>(r)]);
  auto result = column_pass(b, row_out);

  // --- output buffer and serializer ---
  std::array<std::array<SInt, 8>, 8> out_regs;
  for (int r = 0; r < 8; ++r)
    for (int c = 0; c < 8; ++c) {
      SInt reg = b.reg_init(axis::kOutElemWidth, 0,
                            "out_r" + std::to_string(r) + "c" +
                                std::to_string(c));
      b.connect_when(reg, capture,
                     result[static_cast<size_t>(r)][static_cast<size_t>(c)]);
      out_regs[static_cast<size_t>(r)][static_cast<size_t>(c)] = reg;
    }
  for (int c = 0; c < 8; ++c) {
    std::vector<SInt> rows;
    for (int r = 0; r < 8; ++r)
      rows.push_back(out_regs[static_cast<size_t>(r)][static_cast<size_t>(c)]);
    b.output(axis::lane_port("m", c), vec_read(b, out_cnt, rows));
  }
  return b.take();
}

netlist::Design build_chisel_opt() {
  Builder b("chisel_opt");
  Io io = make_io(b);

  // --- input: one row unit, ping-pong row buffers (widths inferred) ---
  Bool in_buf = b.reg_bool(false, "in_buf");
  Bool row_full0 = b.reg_bool(false, "row_full0");
  Bool row_full1 = b.reg_bool(false, "row_full1");
  Bool out_full0 = b.reg_bool(false, "out_full0");
  Bool out_full1 = b.reg_bool(false, "out_full1");
  Bool col_rptr = b.reg_bool(false, "col_rptr");
  Bool col_wptr = b.reg_bool(false, "col_wptr");
  Bool out_rptr = b.reg_bool(false, "out_rptr");

  Bool s_ready = !b.mux(in_buf, row_full1, row_full0);
  Bool in_fire = io.s_valid && s_ready;
  b.output_bool("s_tready", s_ready);

  Counter in_cnt = make_counter(b, in_fire, "in_cnt");
  Bool in_last_fire = in_fire && in_cnt.at_last;
  b.connect(in_buf, b.mux(in_last_fire, !in_buf, in_buf));

  auto row_now = idct_row(b, io.s_lane);

  std::array<std::array<std::array<SInt, 8>, 8>, 2> rowbuf;
  for (int bank = 0; bank < 2; ++bank) {
    Bool bank_sel = bank == 0 ? !in_buf : in_buf;
    for (int r = 0; r < 8; ++r) {
      Bool en = in_fire && is_row(b, in_cnt.value, r) && bank_sel;
      for (int c = 0; c < 8; ++c) {
        SInt reg = b.reg_like(row_now[static_cast<size_t>(c)], 0,
                              "rowbuf" + std::to_string(bank) + "_r" +
                                  std::to_string(r) + "c" + std::to_string(c));
        b.connect_when(reg, en, row_now[static_cast<size_t>(c)]);
        rowbuf[static_cast<size_t>(bank)][static_cast<size_t>(r)]
              [static_cast<size_t>(c)] = reg;
      }
    }
  }

  // --- column engine: one col unit, one column per cycle ---
  Bool row_avail = b.mux(col_rptr, row_full1, row_full0);
  Bool out_free = !b.mux(col_wptr, out_full1, out_full0);
  Bool col_proc = row_avail && out_free;
  Counter col_cnt = make_counter(b, col_proc, "col_cnt");
  Bool col_done = col_proc && col_cnt.at_last;
  b.connect(col_rptr, b.mux(col_done, !col_rptr, col_rptr));
  b.connect(col_wptr, b.mux(col_done, !col_wptr, col_wptr));

  std::array<SInt, 8> col_in;
  for (int r = 0; r < 8; ++r) {
    std::vector<SInt> e0, e1;
    for (int c = 0; c < 8; ++c) {
      e0.push_back(rowbuf[0][static_cast<size_t>(r)][static_cast<size_t>(c)]);
      e1.push_back(rowbuf[1][static_cast<size_t>(r)][static_cast<size_t>(c)]);
    }
    col_in[static_cast<size_t>(r)] =
        b.mux(col_rptr, vec_read(b, col_cnt.value, e1),
              vec_read(b, col_cnt.value, e0));
  }
  auto col_out = idct_col(b, col_in);

  std::array<std::array<std::array<SInt, 8>, 8>, 2> outbuf;
  for (int bank = 0; bank < 2; ++bank) {
    Bool bank_sel = bank == 0 ? !col_wptr : col_wptr;
    for (int c = 0; c < 8; ++c) {
      Bool en = col_proc && is_row(b, col_cnt.value, c) && bank_sel;
      for (int r = 0; r < 8; ++r) {
        SInt reg = b.reg_init(axis::kOutElemWidth, 0,
                              "outbuf" + std::to_string(bank) + "_r" +
                                  std::to_string(r) + "c" + std::to_string(c));
        b.connect_when(reg, en, col_out[static_cast<size_t>(r)]);
        outbuf[static_cast<size_t>(bank)][static_cast<size_t>(r)]
              [static_cast<size_t>(c)] = reg;
      }
    }
  }

  // --- output serializer ---
  Bool m_valid = b.mux(out_rptr, out_full1, out_full0);
  Bool out_fire = m_valid && io.m_ready;
  Counter out_cnt = make_counter(b, out_fire, "out_cnt");
  Bool out_done = out_fire && out_cnt.at_last;
  b.connect(out_rptr, b.mux(out_done, !out_rptr, out_rptr));
  b.output_bool("m_tvalid", m_valid);
  b.output_bool("m_tlast", out_cnt.at_last);
  for (int c = 0; c < 8; ++c) {
    std::vector<SInt> r0, r1;
    for (int r = 0; r < 8; ++r) {
      r0.push_back(outbuf[0][static_cast<size_t>(r)][static_cast<size_t>(c)]);
      r1.push_back(outbuf[1][static_cast<size_t>(r)][static_cast<size_t>(c)]);
    }
    b.output(axis::lane_port("m", c),
             b.mux(out_rptr, vec_read(b, out_cnt.value, r1),
                   vec_read(b, out_cnt.value, r0)));
  }

  // --- bank bookkeeping ---
  auto full_next = [&](Bool cur, bool bank_is_1, Bool set_cond, Bool set_ptr,
                       Bool clr_cond, Bool clr_ptr) {
    Bool set_here = set_cond && (bank_is_1 ? set_ptr : !set_ptr);
    Bool clr_here = clr_cond && (bank_is_1 ? clr_ptr : !clr_ptr);
    return set_here || (cur && !clr_here);
  };
  b.connect(row_full0,
            full_next(row_full0, false, in_last_fire, in_buf, col_done,
                      col_rptr));
  b.connect(row_full1,
            full_next(row_full1, true, in_last_fire, in_buf, col_done,
                      col_rptr));
  b.connect(out_full0,
            full_next(out_full0, false, col_done, col_wptr, out_done,
                      out_rptr));
  b.connect(out_full1,
            full_next(out_full1, true, col_done, col_wptr, out_done,
                      out_rptr));
  return b.take();
}

netlist::Design build_row_pass_kernel() {
  Builder b("chisel_row_pass");
  std::array<SInt, 8> in;
  for (int c = 0; c < 8; ++c)
    in[static_cast<size_t>(c)] =
        b.input("i" + std::to_string(c), axis::kInElemWidth);
  auto out = idct_row(b, in);
  for (int c = 0; c < 8; ++c)
    b.output("o" + std::to_string(c), out[static_cast<size_t>(c)]);
  return b.take();
}

netlist::Design build_matrix_kernel() {
  Builder b("chisel_idct_kernel");
  std::array<std::array<SInt, 8>, 8> in;
  for (int r = 0; r < 8; ++r)
    for (int c = 0; c < 8; ++c)
      in[static_cast<size_t>(r)][static_cast<size_t>(c)] =
          b.input("x" + std::to_string(r * 8 + c), axis::kInElemWidth);
  std::array<std::array<SInt, 8>, 8> row_out;
  for (int r = 0; r < 8; ++r)
    row_out[static_cast<size_t>(r)] = idct_row(b, in[static_cast<size_t>(r)]);
  auto result = column_pass(b, row_out);
  for (int r = 0; r < 8; ++r)
    for (int c = 0; c < 8; ++c)
      b.output("y" + std::to_string(r * 8 + c),
               result[static_cast<size_t>(r)][static_cast<size_t>(c)]);
  return b.take();
}

netlist::Design build_col_pass_kernel(int input_width) {
  Builder b("chisel_col_pass");
  std::array<SInt, 8> in;
  for (int r = 0; r < 8; ++r)
    in[static_cast<size_t>(r)] = b.input("i" + std::to_string(r), input_width);
  auto out = idct_col(b, in);
  for (int r = 0; r < 8; ++r)
    b.output("o" + std::to_string(r), out[static_cast<size_t>(r)]);
  return b.take();
}

}  // namespace hlshc::chisel
