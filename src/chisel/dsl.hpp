// A Chisel-flavoured embedded DSL over the netlist IR.
//
// The paper's Chisel designs differ from the Verilog baseline in exactly
// one load-bearing way: bit widths of intermediate nets are *inferred*
// from the operator tree instead of being declared 32 bits wide. This DSL
// reproduces Chisel's inference rules (FIRRTL semantics):
//
//   a + b  -> max(w_a, w_b) + 1        a * b -> w_a + w_b
//   a - b  -> max(w_a, w_b) + 1        -a    -> w_a + 1
//   a << n -> w_a + n                  a >> n -> max(w_a - n, 1)
//   Mux    -> max of arms              comparisons -> Bool
//
// plus RegInit/RegLike registers, when()-style gated connections and
// SInt/Bool value types with operator overloading, so the design code in
// chisel/designs.cpp reads like the Scala it stands in for.
#pragma once

#include <cstdint>
#include <string>

#include "netlist/ir.hpp"

namespace hlshc::chisel {

class Builder;

/// A 1-bit predicate (Chisel's Bool).
class Bool {
 public:
  Bool() = default;
  netlist::NodeId id() const { return id_; }
  bool valid() const { return b_ != nullptr; }

  Bool operator&&(const Bool& o) const;
  Bool operator||(const Bool& o) const;
  Bool operator!() const;

 private:
  friend class Builder;
  friend class SInt;
  Bool(Builder* b, netlist::NodeId id) : b_(b), id_(id) {}
  Builder* b_ = nullptr;
  netlist::NodeId id_ = netlist::kInvalidNode;
};

/// A signed hardware value with an inferred width (Chisel's SInt).
class SInt {
 public:
  SInt() = default;
  int width() const { return width_; }
  netlist::NodeId id() const { return id_; }
  bool valid() const { return b_ != nullptr; }

  SInt operator+(const SInt& o) const;
  SInt operator-(const SInt& o) const;
  SInt operator*(const SInt& o) const;
  SInt operator-() const;
  SInt operator<<(int n) const;
  SInt operator>>(int n) const;  ///< arithmetic shift, width shrinks

  Bool operator<(const SInt& o) const;
  Bool operator>(const SInt& o) const;
  Bool operator==(const SInt& o) const;

  /// Chisel's .tail / asSInt reinterpretation: keep the low `w` bits.
  SInt truncate(int w) const;

  /// Bit extraction (Chisel's v(k)) as a Bool.
  Bool bit(int k) const;

 private:
  friend class Builder;
  SInt(Builder* b, netlist::NodeId id, int w) : b_(b), id_(id), width_(w) {}
  Builder* b_ = nullptr;
  netlist::NodeId id_ = netlist::kInvalidNode;
  int width_ = 0;
};

/// Elaboration context for one module.
class Builder {
 public:
  explicit Builder(std::string name) : design_(std::move(name)) {}

  SInt input(const std::string& port, int width);
  Bool input_bool(const std::string& port);
  void output(const std::string& port, const SInt& v);
  void output_bool(const std::string& port, const Bool& v);

  /// Literal with the minimal signed width (Chisel: v.S).
  SInt lit(int64_t v);
  /// Literal with an explicit width (Chisel: v.S(w.W)).
  SInt lit_w(int64_t v, int width);
  Bool lit_bool(bool v);

  /// RegInit(init.S(width.W)).
  SInt reg_init(int width, int64_t init, const std::string& label = {});
  /// Reg(chiselTypeOf(model)) with a reset value — width inferred from data.
  SInt reg_like(const SInt& model, int64_t init, const std::string& label);
  Bool reg_bool(bool init, const std::string& label = {});

  /// reg := next (unconditional).
  void connect(const SInt& reg, const SInt& next);
  void connect(const Bool& reg, const Bool& next);
  /// when(en) { reg := next } — otherwise the register holds.
  void connect_when(const SInt& reg, const Bool& en, const SInt& next);

  SInt mux(const Bool& sel, const SInt& t, const SInt& f);
  Bool mux(const Bool& sel, const Bool& t, const Bool& f);

  /// Hand the elaborated design over (Builder is spent afterwards).
  netlist::Design take() { return std::move(design_); }

  netlist::Design& design() { return design_; }

 private:
  friend class SInt;
  friend class Bool;
  SInt wrap(netlist::NodeId id, int w) { return SInt(this, id, w); }
  Bool wrap_bool(netlist::NodeId id) { return Bool(this, id); }

  netlist::Design design_;
};

}  // namespace hlshc::chisel
