#include "framework/arithgen.hpp"

#include "base/check.hpp"
#include "synth/csd.hpp"

namespace hlshc::framework {

namespace {

using netlist::Design;
using netlist::NodeId;

/// Builds x * constant at `width` as an explicit shift-add tree over the
/// (CSD or binary) digits of the constant.
NodeId build_shift_add(Design& d, NodeId x, int64_t constant, int width,
                       bool csd) {
  if (constant == 0) return d.constant(width, 0);

  struct Digit {
    int shift;
    int sign;
  };
  std::vector<Digit> digits;
  if (csd) {
    for (const synth::CsdDigit& g : synth::csd_decompose(constant))
      digits.push_back({g.shift, g.sign});
  } else {
    bool neg = constant < 0;
    uint64_t v = neg ? static_cast<uint64_t>(-constant)
                     : static_cast<uint64_t>(constant);
    for (int s = 0; v != 0; ++s, v >>= 1)
      if (v & 1) digits.push_back({s, neg ? -1 : +1});
  }

  // Partial products are just wires (shifts); combine with a balanced
  // adder tree, folding signs into adds/subs.
  struct Term {
    NodeId value;
    int sign;
  };
  std::vector<Term> terms;
  for (const Digit& g : digits)
    terms.push_back({d.shl(d.sext(x, width), g.shift, width), g.sign});

  while (terms.size() > 1) {
    std::vector<Term> next;
    for (size_t i = 0; i + 1 < terms.size(); i += 2) {
      Term a = terms[i], b = terms[i + 1];
      // Normalize so the combined term carries sign +1 where possible.
      NodeId v;
      int sign;
      if (a.sign == b.sign) {
        v = d.add(a.value, b.value, width);
        sign = a.sign;
      } else if (a.sign > 0) {
        v = d.sub(a.value, b.value, width);
        sign = +1;
      } else {
        v = d.sub(b.value, a.value, width);
        sign = +1;
      }
      next.push_back({v, sign});
    }
    if (terms.size() % 2) next.push_back(terms.back());
    terms = std::move(next);
  }
  NodeId out = terms[0].value;
  if (terms[0].sign < 0) out = d.neg(out, width);
  return out;
}

}  // namespace

netlist::Design generate_const_multiplier(int64_t constant,
                                          const ArithGenOptions& options,
                                          const std::string& name) {
  Design d(name);
  NodeId x = d.input("i0", options.input_width);
  d.output("o0",
           build_shift_add(d, x, constant, options.output_width, options.csd));
  d.validate();
  return d;
}

netlist::Design generate_dot_product(const std::vector<int64_t>& constants,
                                     const ArithGenOptions& options,
                                     const std::string& name) {
  HLSHC_CHECK(!constants.empty(), "dot product needs at least one term");
  Design d(name);
  std::vector<NodeId> products;
  for (size_t k = 0; k < constants.size(); ++k) {
    NodeId x = d.input("i" + std::to_string(k), options.input_width);
    products.push_back(
        build_shift_add(d, x, constants[k], options.output_width,
                        options.csd));
  }
  while (products.size() > 1) {
    std::vector<NodeId> next;
    for (size_t i = 0; i + 1 < products.size(); i += 2)
      next.push_back(d.add(products[i], products[i + 1],
                           options.output_width));
    if (products.size() % 2) next.push_back(products.back());
    products = std::move(next);
  }
  d.output("o0", products[0]);
  d.validate();
  return d;
}

}  // namespace hlshc::framework
