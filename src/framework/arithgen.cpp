#include "framework/arithgen.hpp"

#include "base/check.hpp"
#include "netlist/passes.hpp"

namespace hlshc::framework {

namespace {

using netlist::Design;
using netlist::NodeId;

}  // namespace

netlist::Design generate_const_multiplier(int64_t constant,
                                          const ArithGenOptions& options,
                                          const std::string& name) {
  Design d(name);
  NodeId x = d.input("i0", options.input_width);
  d.output("o0", netlist::build_shift_add(d, x, constant,
                                          options.output_width, options.csd));
  d.validate();
  return d;
}

netlist::Design generate_dot_product(const std::vector<int64_t>& constants,
                                     const ArithGenOptions& options,
                                     const std::string& name) {
  HLSHC_CHECK(!constants.empty(), "dot product needs at least one term");
  Design d(name);
  std::vector<NodeId> products;
  for (size_t k = 0; k < constants.size(); ++k) {
    NodeId x = d.input("i" + std::to_string(k), options.input_width);
    products.push_back(
        netlist::build_shift_add(d, x, constants[k], options.output_width,
                                 options.csd));
  }
  while (products.size() > 1) {
    std::vector<NodeId> next;
    for (size_t i = 0; i + 1 < products.size(); i += 2)
      next.push_back(d.add(products[i], products[i + 1],
                           options.output_width));
    if (products.size() % 2) next.push_back(products.back());
    products = std::move(next);
  }
  d.output("o0", products[0]);
  d.validate();
  return d;
}

}  // namespace hlshc::framework
