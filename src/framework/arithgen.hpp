// Specialized arithmetic generators (the FloPoCo role in the paper's
// future-work sketch: "lower-level tools, both universal ... and
// specialized (e.g., FloPoCo)").
//
// Each generator emits a small pure-dataflow netlist function with the
// framework's pass-kernel port discipline, so generated units compose with
// everything else:
//
//   * generate_const_multiplier — x * C as an explicit CSD shift-add tree
//     ("i0" -> "o0"). Unlike the cost model (which only *prices* the CSD
//     form), this builds the actual adders, so the unit can be simulated,
//     pipelined by the XLS scheduler, emitted as Verilog, and dropped into
//     a datapath in place of a DSP multiply.
//
//   * generate_dot_product — sum(x_k * C_k) over fixed constants, the
//     building block of filter/transform generators (one IDCT butterfly
//     stage is exactly such a unit).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/ir.hpp"

namespace hlshc::framework {

struct ArithGenOptions {
  int input_width = 16;
  int output_width = 32;
  bool csd = true;  ///< CSD recoding (false: plain binary shift-add)
};

/// x * constant as a shift-add tree. Ports: i0 -> o0.
netlist::Design generate_const_multiplier(int64_t constant,
                                          const ArithGenOptions& options,
                                          const std::string& name);

/// sum_k (x_k * constants[k]) as shift-add trees + a balanced adder tree.
/// Ports: i0..iN-1 -> o0.
netlist::Design generate_dot_product(const std::vector<int64_t>& constants,
                                     const ArithGenOptions& options,
                                     const std::string& name);

}  // namespace hlshc::framework
