// The paper's future-work sketch, realized: an open composition framework.
//
// The conclusion of the paper proposes a tool where "individual units
// (nodes) can be designed using various lower-level tools, both universal
// (XLS, Chisel, BSV, Verilog, etc.) and specialized", with "the ability to
// generate external and internal interfaces". This module is that
// interface generator for our substrate:
//
//   * wrap_matrix_kernel() takes ANY pure dataflow matrix kernel — ports
//     x0..x63 (12 bit) in, y0..y63 out, a fixed register latency — and
//     generates the row-by-row AXI-Stream adapter around it (input
//     collector, credit-managed launches, valid-token tracking, ping-pong
//     capture banks, serializer). The XLS flow is one client.
//
//   * compose_row_col() takes a 1-D row-pass kernel and a 1-D column-pass
//     kernel — each from ANY flow: the HLS compiler, the Chisel eDSL, a
//     pipelined XLS function, hand-built netlists — and generates the
//     row-rate streaming engine between them (ping-pong row buffers, the
//     column walker, occupancy bookkeeping). The pragma-optimized Vivado
//     HLS flow is one client; examples/mixed_flows.cpp composes an
//     HLS-compiled row pass with a Chisel-built column pass.
//
// Kernels must be feed-forward (registers only as pipeline stages) with
// uniform per-port widths; latency is the number of register layers from
// input to output (0 = combinational).
#pragma once

#include <string>

#include "netlist/ir.hpp"

namespace hlshc::framework {

/// Contract for a matrix kernel: inputs "x0".."x63" of 12 bits, outputs
/// "y0".."y63" of >= out_width bits (the low out_width bits are the
/// samples). out_width defaults to the 9-bit IDCT sample width; wider
/// kernels (the workload registry's 12-bit fDCT/FIR/matmul) declare it.
struct MatrixKernel {
  const netlist::Design& design;
  int latency = 0;
  int out_width = 9;
};

/// Contract for a 1-D pass kernel: inputs "i0".."i7", outputs "o0".."o7"
/// (low bits hold the results; the wrapper slices).
struct PassKernel {
  const netlist::Design& design;
  int latency = 0;
};

/// Generates the full AXI-Stream design around a matrix kernel.
netlist::Design wrap_matrix_kernel(const MatrixKernel& kernel,
                                   const std::string& name);

/// Generates the row-rate streaming engine from a row pass and a column
/// pass. `row_store_width` is the width of the buffered row results (and
/// therefore of the column kernel's inputs).
netlist::Design compose_row_col(const PassKernel& row, const PassKernel& col,
                                int row_store_width,
                                const std::string& name);

}  // namespace hlshc::framework
