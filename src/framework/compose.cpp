#include "framework/compose.hpp"

#include <array>
#include <map>
#include <vector>

#include "axis/stream.hpp"
#include "base/check.hpp"
#include "netlist/instantiate.hpp"
#include "rtl/units.hpp"

namespace hlshc::framework {

namespace {

using netlist::Design;
using netlist::NodeId;

struct StreamIo {
  std::array<NodeId, 8> lane;
  NodeId s_valid, m_ready;
};

StreamIo make_stream_inputs(Design& d) {
  StreamIo io{};
  for (int c = 0; c < 8; ++c)
    io.lane[static_cast<size_t>(c)] =
        d.input(axis::lane_port("s", c), axis::kInElemWidth);
  io.s_valid = d.input("s_tvalid", 1);
  d.input("s_tlast", 1);
  io.m_ready = d.input("m_tready", 1);
  return io;
}

}  // namespace

netlist::Design wrap_matrix_kernel(const MatrixKernel& kernel,
                                   const std::string& name) {
  const int L = kernel.latency;
  const int W = kernel.out_width;
  HLSHC_CHECK(L >= 0, "negative kernel latency");
  HLSHC_CHECK(W >= 1 && W <= 32, "bad kernel out_width " << W);

  Design d(name);
  StreamIo io = make_stream_inputs(d);

  // ---- state ---------------------------------------------------------------
  NodeId in_cnt = d.reg(3, 0, "in_cnt");
  NodeId pend = d.reg(1, 0, "pend");
  NodeId in_flight = d.reg(3, 0, "in_flight");  // 0..2 credits, kept positive
  NodeId cap_ptr = d.reg(1, 0, "cap_ptr");
  NodeId out_full0 = d.reg(1, 0, "out_full0");
  NodeId out_full1 = d.reg(1, 0, "out_full1");
  NodeId out_cnt = d.reg(3, 0, "out_cnt");
  NodeId out_rptr = d.reg(1, 0, "out_rptr");

  std::array<std::array<NodeId, 8>, 8> in_regs;
  for (int r = 0; r < 8; ++r)
    for (int c = 0; c < 8; ++c)
      in_regs[static_cast<size_t>(r)][static_cast<size_t>(c)] =
          d.reg(axis::kInElemWidth, 0,
                "in_r" + std::to_string(r) + "c" + std::to_string(c));

  auto sel2 = [&](NodeId ptr, NodeId v0, NodeId v1) {
    return d.mux(ptr, v1, v0, d.node(v0).width);
  };
  auto is7 = [&](NodeId cnt) { return d.eq(cnt, d.constant(3, 7)); };
  auto inc = [&](NodeId cnt) { return d.add(cnt, d.constant(3, 1), 3); };
  auto hold = [&](NodeId c, NodeId a, NodeId keep) {
    return d.mux(c, a, keep, d.node(keep).width);
  };

  // ---- output serializer -----------------------------------------------------
  NodeId m_valid = sel2(out_rptr, out_full0, out_full1);
  NodeId out_fire = d.band(m_valid, io.m_ready, 1);
  NodeId out_last = is7(out_cnt);
  NodeId out_done = d.band(out_fire, out_last, 1);
  d.set_reg_next(out_cnt, hold(out_fire, inc(out_cnt), out_cnt));
  d.set_reg_next(out_rptr, hold(out_done, d.bnot(out_rptr, 1), out_rptr));
  d.output("m_tvalid", m_valid);
  d.output("m_tlast", out_last);

  // ---- launch control ---------------------------------------------------------
  // Two capture banks = two credits; a launch is allowed when a slot is
  // free or frees this very cycle, which sustains one matrix per 8 beats
  // and stays safe under back-pressure.
  NodeId slots_free = d.slt(in_flight, d.constant(3, 2));
  NodeId launch = d.band(pend, d.bor(slots_free, out_done, 1), 1);
  NodeId s_ready = d.bor(d.bnot(pend, 1), launch, 1);
  NodeId in_fire = d.band(io.s_valid, s_ready, 1);
  NodeId in_last_fire = d.band(in_fire, is7(in_cnt), 1);
  d.output("s_tready", s_ready);
  d.set_reg_next(in_cnt, hold(in_fire, inc(in_cnt), in_cnt));
  d.set_reg_next(pend, d.bor(in_last_fire,
                             d.band(pend, d.bnot(launch, 1), 1), 1));
  {
    NodeId up = d.zext(launch, 3);
    NodeId down = d.zext(out_done, 3);
    d.set_reg_next(in_flight, d.sub(d.add(in_flight, up, 3), down, 3));
  }

  // ---- input collector ---------------------------------------------------------
  for (int r = 0; r < 8; ++r) {
    NodeId en = d.band(in_fire, d.eq(in_cnt, d.constant(3, r)), 1);
    for (int c = 0; c < 8; ++c)
      d.set_reg_next(in_regs[static_cast<size_t>(r)][static_cast<size_t>(c)],
                     io.lane[static_cast<size_t>(c)], en);
  }

  // ---- kernel instance -----------------------------------------------------------
  std::map<std::string, NodeId> kin;
  for (int i = 0; i < 64; ++i)
    kin["x" + std::to_string(i)] =
        in_regs[static_cast<size_t>(i / 8)][static_cast<size_t>(i % 8)];
  auto kout = netlist::instantiate(d, kernel.design, kin);

  // ---- valid-token shift register tracking pipeline wavefronts -------------------
  NodeId arrive = launch;
  for (int i = 0; i < L; ++i) {
    NodeId t = d.reg(1, 0, "token" + std::to_string(i));
    d.set_reg_next(t, arrive);
    arrive = t;
  }

  // ---- ping-pong capture banks ------------------------------------------------------
  std::array<std::array<std::array<NodeId, 8>, 8>, 2> outbuf;
  for (int b = 0; b < 2; ++b) {
    NodeId bank_en = d.band(arrive, d.eq(cap_ptr, d.constant(1, b)), 1);
    for (int r = 0; r < 8; ++r)
      for (int c = 0; c < 8; ++c) {
        NodeId y = kout.at("y" + std::to_string(r * 8 + c));
        NodeId reg = d.reg(W, 0,
                           "outbuf" + std::to_string(b) + "_r" +
                               std::to_string(r) + "c" + std::to_string(c));
        d.set_reg_next(reg, d.slice(y, W - 1, 0), bank_en);
        outbuf[static_cast<size_t>(b)][static_cast<size_t>(r)]
              [static_cast<size_t>(c)] = reg;
      }
  }
  d.set_reg_next(cap_ptr, hold(arrive, d.bnot(cap_ptr, 1), cap_ptr));

  auto full_next = [&](NodeId cur, int b) {
    NodeId set_here = d.band(arrive, d.eq(cap_ptr, d.constant(1, b)), 1);
    NodeId clr_here = d.band(out_done, d.eq(out_rptr, d.constant(1, b)), 1);
    // Same-cycle refill wins over the drain's clear.
    return d.mux(set_here, d.constant(1, 1),
                 d.mux(clr_here, d.constant(1, 0), cur, 1), 1);
  };
  d.set_reg_next(out_full0, full_next(out_full0, 0));
  d.set_reg_next(out_full1, full_next(out_full1, 1));

  for (int c = 0; c < 8; ++c) {
    std::vector<NodeId> r0, r1;
    for (int r = 0; r < 8; ++r) {
      r0.push_back(outbuf[0][static_cast<size_t>(r)][static_cast<size_t>(c)]);
      r1.push_back(outbuf[1][static_cast<size_t>(r)][static_cast<size_t>(c)]);
    }
    d.output(axis::lane_port("m", c),
             sel2(out_rptr, rtl::mux_by_index(d, out_cnt, r0),
                  rtl::mux_by_index(d, out_cnt, r1)));
  }
  return d;
}

netlist::Design compose_row_col(const PassKernel& row, const PassKernel& col,
                                int row_store_width,
                                const std::string& name) {
  const int Lr = row.latency, Lc = col.latency;
  HLSHC_CHECK(row_store_width >= 9 && row_store_width <= 32,
              "bad row store width " << row_store_width);

  Design d(name);
  StreamIo io = make_stream_inputs(d);

  // ---- state -------------------------------------------------------------------
  NodeId in_cnt = d.reg(3, 0, "in_cnt");
  NodeId in_buf = d.reg(1, 0, "in_buf");
  NodeId row_full0 = d.reg(1, 0, "row_full0");
  NodeId row_full1 = d.reg(1, 0, "row_full1");
  NodeId col_cnt = d.reg(3, 0, "col_cnt");
  NodeId col_rptr = d.reg(1, 0, "col_rptr");
  NodeId col_wptr = d.reg(1, 0, "col_wptr");
  NodeId resv0 = d.reg(1, 0, "resv0");
  NodeId resv1 = d.reg(1, 0, "resv1");
  NodeId out_full0 = d.reg(1, 0, "out_full0");
  NodeId out_full1 = d.reg(1, 0, "out_full1");
  NodeId out_cnt = d.reg(3, 0, "out_cnt");
  NodeId out_rptr = d.reg(1, 0, "out_rptr");

  auto sel2 = [&](NodeId p, NodeId a, NodeId b) {
    return d.mux(p, b, a, d.node(a).width);
  };
  auto is7 = [&](NodeId c) { return d.eq(c, d.constant(3, 7)); };
  auto inc = [&](NodeId c) { return d.add(c, d.constant(3, 1), 3); };
  auto hold = [&](NodeId cnd, NodeId a, NodeId keep) {
    return d.mux(cnd, a, keep, d.node(keep).width);
  };

  // ---- input + row pipeline -------------------------------------------------------
  NodeId s_ready = d.bnot(sel2(in_buf, row_full0, row_full1), 1);
  NodeId in_fire = d.band(io.s_valid, s_ready, 1);
  NodeId in_last_fire = d.band(in_fire, is7(in_cnt), 1);
  d.output("s_tready", s_ready);
  d.set_reg_next(in_cnt, hold(in_fire, inc(in_cnt), in_cnt));
  d.set_reg_next(in_buf, hold(in_last_fire, d.bnot(in_buf, 1), in_buf));

  std::map<std::string, NodeId> rk_in;
  for (int c = 0; c < 8; ++c)
    rk_in["i" + std::to_string(c)] = io.lane[static_cast<size_t>(c)];
  auto rk_out = netlist::instantiate(d, row.design, rk_in);

  // Write-token pipeline: (valid, row, bank) delayed Lr cycles with the
  // data travelling through the row pipeline.
  NodeId tok_v = in_fire, tok_row = in_cnt, tok_bank = in_buf;
  for (int i = 0; i < Lr; ++i) {
    NodeId v = d.reg(1, 0, "rtv" + std::to_string(i));
    NodeId r = d.reg(3, 0, "rtr" + std::to_string(i));
    NodeId b = d.reg(1, 0, "rtb" + std::to_string(i));
    d.set_reg_next(v, tok_v);
    d.set_reg_next(r, tok_row);
    d.set_reg_next(b, tok_bank);
    tok_v = v;
    tok_row = r;
    tok_bank = b;
  }

  std::array<std::array<std::array<NodeId, 8>, 8>, 2> rowbuf;
  for (int b = 0; b < 2; ++b) {
    NodeId bank = d.band(tok_v, d.eq(tok_bank, d.constant(1, b)), 1);
    for (int r = 0; r < 8; ++r) {
      NodeId en = d.band(bank, d.eq(tok_row, d.constant(3, r)), 1);
      for (int c = 0; c < 8; ++c) {
        NodeId reg = d.reg(row_store_width, 0,
                           "rowbuf" + std::to_string(b) + "_r" +
                               std::to_string(r) + "c" + std::to_string(c));
        d.set_reg_next(reg,
                       d.slice(rk_out.at("o" + std::to_string(c)),
                               row_store_width - 1, 0),
                       en);
        rowbuf[static_cast<size_t>(b)][static_cast<size_t>(r)]
              [static_cast<size_t>(c)] = reg;
      }
    }
  }
  NodeId row_done_tok = d.band(tok_v, d.eq(tok_row, d.constant(3, 7)), 1);

  // ---- column engine + col pipeline -------------------------------------------------
  NodeId row_avail = sel2(col_rptr, row_full0, row_full1);
  NodeId out_free = d.bnot(sel2(col_wptr, resv0, resv1), 1);
  NodeId col_proc = d.band(row_avail, out_free, 1);
  NodeId col_done = d.band(col_proc, is7(col_cnt), 1);
  d.set_reg_next(col_cnt, hold(col_proc, inc(col_cnt), col_cnt));
  d.set_reg_next(col_rptr, hold(col_done, d.bnot(col_rptr, 1), col_rptr));
  d.set_reg_next(col_wptr, hold(col_done, d.bnot(col_wptr, 1), col_wptr));

  std::map<std::string, NodeId> ck_in;
  for (int r = 0; r < 8; ++r) {
    std::vector<NodeId> e0, e1;
    for (int c = 0; c < 8; ++c) {
      e0.push_back(rowbuf[0][static_cast<size_t>(r)][static_cast<size_t>(c)]);
      e1.push_back(rowbuf[1][static_cast<size_t>(r)][static_cast<size_t>(c)]);
    }
    ck_in["i" + std::to_string(r)] =
        sel2(col_rptr, rtl::mux_by_index(d, col_cnt, e0),
             rtl::mux_by_index(d, col_cnt, e1));
  }
  auto ck_out = netlist::instantiate(d, col.design, ck_in);

  NodeId ctok_v = col_proc, ctok_col = col_cnt, ctok_bank = col_wptr;
  for (int i = 0; i < Lc; ++i) {
    NodeId v = d.reg(1, 0, "ctv" + std::to_string(i));
    NodeId cc = d.reg(3, 0, "ctc" + std::to_string(i));
    NodeId b = d.reg(1, 0, "ctb" + std::to_string(i));
    d.set_reg_next(v, ctok_v);
    d.set_reg_next(cc, ctok_col);
    d.set_reg_next(b, ctok_bank);
    ctok_v = v;
    ctok_col = cc;
    ctok_bank = b;
  }

  std::array<std::array<std::array<NodeId, 8>, 8>, 2> outbuf;
  for (int b = 0; b < 2; ++b) {
    NodeId bank = d.band(ctok_v, d.eq(ctok_bank, d.constant(1, b)), 1);
    for (int c = 0; c < 8; ++c) {
      NodeId en = d.band(bank, d.eq(ctok_col, d.constant(3, c)), 1);
      for (int r = 0; r < 8; ++r) {
        NodeId reg = d.reg(axis::kOutElemWidth, 0,
                           "outbuf" + std::to_string(b) + "_r" +
                               std::to_string(r) + "c" + std::to_string(c));
        d.set_reg_next(reg,
                       d.slice(ck_out.at("o" + std::to_string(r)),
                               axis::kOutElemWidth - 1, 0),
                       en);
        outbuf[static_cast<size_t>(b)][static_cast<size_t>(r)]
              [static_cast<size_t>(c)] = reg;
      }
    }
  }
  NodeId col_done_tok = d.band(ctok_v, d.eq(ctok_col, d.constant(3, 7)), 1);

  // ---- output serializer ---------------------------------------------------------------
  NodeId m_valid = sel2(out_rptr, out_full0, out_full1);
  NodeId out_fire = d.band(m_valid, io.m_ready, 1);
  NodeId out_last = is7(out_cnt);
  NodeId out_done = d.band(out_fire, out_last, 1);
  d.set_reg_next(out_cnt, hold(out_fire, inc(out_cnt), out_cnt));
  d.set_reg_next(out_rptr, hold(out_done, d.bnot(out_rptr, 1), out_rptr));
  d.output("m_tvalid", m_valid);
  d.output("m_tlast", out_last);
  for (int c = 0; c < 8; ++c) {
    std::vector<NodeId> r0, r1;
    for (int r = 0; r < 8; ++r) {
      r0.push_back(outbuf[0][static_cast<size_t>(r)][static_cast<size_t>(c)]);
      r1.push_back(outbuf[1][static_cast<size_t>(r)][static_cast<size_t>(c)]);
    }
    d.output(axis::lane_port("m", c),
             sel2(out_rptr, rtl::mux_by_index(d, out_cnt, r0),
                  rtl::mux_by_index(d, out_cnt, r1)));
  }

  // ---- occupancy bookkeeping -------------------------------------------------------------
  auto flag_next = [&](NodeId cur, int b, NodeId set_cond, NodeId set_ptr,
                       NodeId clr_cond, NodeId clr_ptr) {
    NodeId set_here = d.band(set_cond, d.eq(set_ptr, d.constant(1, b)), 1);
    NodeId clr_here = d.band(clr_cond, d.eq(clr_ptr, d.constant(1, b)), 1);
    return d.mux(set_here, d.constant(1, 1),
                 d.mux(clr_here, d.constant(1, 0), cur, 1), 1);
  };
  d.set_reg_next(row_full0, flag_next(row_full0, 0, row_done_tok, tok_bank,
                                      col_done, col_rptr));
  d.set_reg_next(row_full1, flag_next(row_full1, 1, row_done_tok, tok_bank,
                                      col_done, col_rptr));
  d.set_reg_next(resv0, flag_next(resv0, 0, col_done, col_wptr, out_done,
                                  out_rptr));
  d.set_reg_next(resv1, flag_next(resv1, 1, col_done, col_wptr, out_done,
                                  out_rptr));
  d.set_reg_next(out_full0, flag_next(out_full0, 0, col_done_tok, ctok_bank,
                                      out_done, out_rptr));
  d.set_reg_next(out_full1, flag_next(out_full1, 1, col_done_tok, ctok_bank,
                                      out_done, out_rptr));
  return d;
}

}  // namespace hlshc::framework
