#include "xls/pipeline.hpp"

#include <algorithm>
#include <map>
#include <vector>

#include "base/check.hpp"
#include "synth/range.hpp"

namespace hlshc::xls {

using netlist::Design;
using netlist::Node;
using netlist::NodeId;
using netlist::Op;

PipelineResult pipeline_function(const Design& function, int stages,
                                 const synth::SynthOptions& options) {
  for (size_t i = 0; i < function.node_count(); ++i) {
    Op op = function.node(static_cast<NodeId>(i)).op;
    HLSHC_CHECK(op != Op::Reg && op != Op::MemRead && op != Op::MemWrite,
                "pipeline_function requires a pure dataflow function");
  }

  PipelineResult res{Design(function.name()), 0, stages, 0, 0};
  if (stages <= 0) {
    res.design = function;
    return res;
  }

  // Arrival times with the synthesis delay model (no I/O pads: the function
  // is an internal kernel).
  synth::Mapper mapper(function, options);
  const auto order = function.topo_order();
  const size_t n = function.node_count();
  std::vector<double> arrival(n, 0.0);
  double crit = 0.0;
  for (NodeId id : order) {
    const Node& nd = function.node(id);
    double in = 0.0;
    for (NodeId o : nd.operands) in = std::max(in, arrival[static_cast<size_t>(o)]);
    arrival[static_cast<size_t>(id)] = in + mapper.cost(id).delay_ns;
    crit = std::max(crit, arrival[static_cast<size_t>(id)]);
  }
  if (crit <= 0.0) crit = 1.0;

  // Greedy balanced stage assignment, monotone over operands.
  std::vector<int> stage(n, 0);
  for (NodeId id : order) {
    const Node& nd = function.node(id);
    int s = static_cast<int>(arrival[static_cast<size_t>(id)] *
                             static_cast<double>(stages) / (crit * 1.0001));
    s = std::min(s, stages - 1);
    for (NodeId o : nd.operands)
      s = std::max(s, stage[static_cast<size_t>(o)]);
    if (nd.op == Op::Input) s = 0;
    stage[static_cast<size_t>(id)] = s;
  }

  // Merge empty stages: remap used stage indices to a dense range.
  std::vector<bool> used(static_cast<size_t>(stages), false);
  for (NodeId id : order)
    if (function.node(id).op != Op::Input && function.node(id).op != Op::Const)
      used[static_cast<size_t>(stage[static_cast<size_t>(id)])] = true;
  std::vector<int> remap(static_cast<size_t>(stages), 0);
  int dense = 0;
  for (int s = 0; s < stages; ++s) {
    remap[static_cast<size_t>(s)] = dense;
    if (used[static_cast<size_t>(s)]) ++dense;
  }
  if (dense == 0) dense = 1;
  const int depth = dense;  // surviving stages == register layers
  res.merged_stages = stages - depth;
  res.latency = depth;

  for (NodeId id : order)
    stage[static_cast<size_t>(id)] =
        std::min(remap[static_cast<size_t>(stage[static_cast<size_t>(id)])],
                 depth - 1);

  // Rebuild with pipeline registers. pipe[(node, layer)] = value of `node`
  // delayed to just after boundary `layer` (boundary L sits after stage L).
  Design& out = res.design;
  std::vector<NodeId> built(n, netlist::kInvalidNode);
  std::map<std::pair<NodeId, int>, NodeId> pipe;

  auto delayed = [&](NodeId src, int to_layer) -> NodeId {
    // Value of src (produced in stage[src]) as seen after `to_layer`
    // register layers (to_layer >= stage[src] means that many boundaries
    // crossed; to_layer == stage[src] means raw combinational value).
    // Constants exist in every stage — never pipelined.
    if (function.node(src).op == Op::Const)
      return built[static_cast<size_t>(src)];
    NodeId cur = built[static_cast<size_t>(src)];
    int have = stage[static_cast<size_t>(src)];
    for (int l = have; l < to_layer; ++l) {
      auto key = std::make_pair(src, l);
      auto it = pipe.find(key);
      if (it != pipe.end()) {
        cur = it->second;
      } else {
        NodeId r = out.reg(out.node(cur).width, 0,
                           "p" + std::to_string(l) + "_n" +
                               std::to_string(src));
        out.set_reg_next(r, cur);
        res.pipeline_regs += out.node(cur).width;
        pipe[key] = r;
        cur = r;
      }
    }
    return cur;
  };

  for (NodeId id : order) {
    const Node& nd = function.node(id);
    Node copy = nd;
    copy.operands.clear();
    int my_stage = stage[static_cast<size_t>(id)];
    for (NodeId o : nd.operands) copy.operands.push_back(delayed(o, my_stage));
    NodeId nid;
    if (nd.op == Op::Input) {
      nid = out.input(nd.name, nd.width);
    } else if (nd.op == Op::Output) {
      // Outputs are registered at the final boundary: delay the driven
      // value through every remaining layer.
      NodeId v = delayed(nd.operands[0], depth);
      nid = out.output(nd.name, v);
    } else {
      nid = out.constant(nd.width, 0);
      out.mutable_node(nid) = copy;
    }
    built[static_cast<size_t>(id)] = nid;
  }
  out.validate();
  return res;
}

}  // namespace hlshc::xls
