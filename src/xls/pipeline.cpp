#include "xls/pipeline.hpp"

#include <utility>

namespace hlshc::xls {

PipelineResult pipeline_function(const netlist::Design& function,
                                 const synth::ScheduleOptions& schedule) {
  synth::ScheduleResult r = synth::schedule_pipeline(function, schedule);
  return PipelineResult{std::move(r.design), r.latency, r.requested_stages,
                        r.merged_stages, r.pipeline_regs};
}

PipelineResult pipeline_function(const netlist::Design& function, int stages,
                                 const synth::SynthOptions& options) {
  synth::ScheduleOptions schedule;
  schedule.stages = stages;
  schedule.synth = options;
  return pipeline_function(function, schedule);
}

}  // namespace hlshc::xls
