// The DSLX/XLS design family of the paper.
//
// The kernel is the full 8x8 2-D IDCT as one dataflow function (adapted
// from the IDCT example shipped with google/xls, with the element widths
// changed to the paper's 12-bit-in/9-bit-out interface). XLS compiles it
// either combinationally or as an N-stage pipeline; the paper sweeps one
// knob — the number of pipeline stages — over 19 configurations (comb +
// 1..18 stages) and finds the best quality at 8 requested stages.
//
// The AXI-Stream adapter is hand-crafted (XLS does not generate it): it
// collects 8 rows, launches one matrix per free slot into the kernel, and
// serializes results from ping-pong capture banks. A valid-token shift
// register tracks wavefronts through the pipeline and a two-slot credit
// counter makes the adapter safe under output back-pressure while
// sustaining the paper's periodicity of 8.
#pragma once

#include "netlist/ir.hpp"
#include "xls/pipeline.hpp"

namespace hlshc::xls {

struct XlsOptions {
  /// 0 = combinational codegen (the paper's initial design);
  /// >= 1 = requested pipeline stages (8 is the paper's optimum; the
  /// paper's sweep stops at 18, the scheduler accepts up to
  /// synth::kMaxScheduleStages). Validated by build_xls_design — out of
  /// range throws with the knob's name, same contract as
  /// synth::parse_stages.
  int pipeline_stages = 0;
  /// Stage-assignment objective (delay balance reproduces the paper).
  synth::ScheduleObjective objective = synth::ScheduleObjective::kDelayBalance;
  /// Retime boundary registers across sign/zero extensions.
  bool retime_boundaries = false;
};

/// The pure dataflow 2-D IDCT function: inputs x0..x63 (12 bit),
/// outputs y0..y63 (9 bit).
netlist::Design build_idct_kernel();

struct XlsDesign {
  netlist::Design design;
  int kernel_latency = 0;  ///< register layers in the generated kernel
  PipelineResult pipeline;  ///< codegen stats (requested/merged stages...)
};

XlsDesign build_xls_design(const XlsOptions& options);

}  // namespace hlshc::xls
