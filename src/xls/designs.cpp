#include "xls/designs.hpp"

#include <map>
#include <string>
#include <vector>

#include "axis/stream.hpp"
#include "base/check.hpp"
#include "framework/compose.hpp"
#include "rtl/units.hpp"

namespace hlshc::xls {

namespace {

using netlist::Design;
using netlist::NodeId;

std::string xin(int i) { return "x" + std::to_string(i); }
std::string yout(int i) { return "y" + std::to_string(i); }

}  // namespace

netlist::Design build_idct_kernel() {
  Design d("xls_idct_kernel");
  std::array<std::array<NodeId, 8>, 8> in;
  for (int r = 0; r < 8; ++r)
    for (int c = 0; c < 8; ++c)
      in[static_cast<size_t>(r)][static_cast<size_t>(c)] =
          d.input(xin(r * 8 + c), axis::kInElemWidth);

  std::array<std::array<NodeId, 8>, 8> rows;
  for (int r = 0; r < 8; ++r)
    rows[static_cast<size_t>(r)] =
        rtl::build_row_unit(d, in[static_cast<size_t>(r)]);

  for (int col = 0; col < 8; ++col) {
    std::array<NodeId, 8> column;
    for (int r = 0; r < 8; ++r)
      column[static_cast<size_t>(r)] =
          rows[static_cast<size_t>(r)][static_cast<size_t>(col)];
    auto out = rtl::build_col_unit(d, column);
    for (int r = 0; r < 8; ++r)
      d.output(yout(r * 8 + col), out[static_cast<size_t>(r)]);
  }
  return d;
}

XlsDesign build_xls_design(const XlsOptions& options) {
  HLSHC_CHECK(options.pipeline_stages >= 0 &&
                  options.pipeline_stages <= synth::kMaxScheduleStages,
              "XlsOptions::pipeline_stages must be in [0, "
                  << synth::kMaxScheduleStages << "], got "
                  << options.pipeline_stages);
  synth::ScheduleOptions schedule;
  schedule.stages = options.pipeline_stages;
  schedule.objective = options.objective;
  schedule.retime_boundaries = options.retime_boundaries;
  PipelineResult pr = pipeline_function(build_idct_kernel(), schedule);
  const int L = pr.latency;
  // The hand-crafted AXI adapter is the framework's generated interface
  // (the XLS flow was its first client).
  netlist::Design wrapped = framework::wrap_matrix_kernel(
      framework::MatrixKernel{pr.design, L},
      "xls_stages" + std::to_string(options.pipeline_stages) +
          (options.objective == synth::ScheduleObjective::kRegisterMin
               ? "_regmin"
               : "") +
          (options.retime_boundaries ? "_rt" : ""));
  return XlsDesign{std::move(wrapped), L, std::move(pr)};
}

}  // namespace hlshc::xls
