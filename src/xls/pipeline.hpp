// XLS-style feed-forward pipeliner.
//
// XLS consumes a pure dataflow function (no registers) and a
// `pipeline_stages` option, then emits a pipelined circuit: nodes are
// assigned to stages by delay balancing against the function's critical
// path, and every value crossing a stage boundary gets a pipeline
// register. This module reproduces that codegen step for our netlist IR:
//
//   * stage(node) = floor(arrival_end(node) * N / critical_path), clamped
//     monotone over operands — the same greedy ASAP balancing XLS's
//     scheduler defaults to;
//   * empty stages are merged away (XLS also emits fewer effective stages
//     than requested when the schedule doesn't need them — the paper notes
//     its best 8-stage configuration "for unknown reasons" takes only 3
//     cycles; stage merging is precisely such a mechanism);
//   * outputs are registered at the final boundary, so the pipeline
//     latency equals the number of surviving stages.
//
// The returned design has the same port names as the input function.
#pragma once

#include "netlist/ir.hpp"
#include "synth/cost_model.hpp"

namespace hlshc::xls {

struct PipelineResult {
  netlist::Design design;
  int latency = 0;          ///< register layers from input to output
  int requested_stages = 0;
  int merged_stages = 0;    ///< empty stages removed
  int pipeline_regs = 0;    ///< total pipeline register bits inserted
};

/// Pipelines a pure combinational function. `stages` == 0 returns a copy of
/// the function unchanged (combinational codegen). Throws if the function
/// contains registers or memories.
PipelineResult pipeline_function(const netlist::Design& function, int stages,
                                 const synth::SynthOptions& options = {});

}  // namespace hlshc::xls
