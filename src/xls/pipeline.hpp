// XLS-style feed-forward pipeliner.
//
// XLS consumes a pure dataflow function (no registers) and a
// `pipeline_stages` option, then emits a pipelined circuit. The actual
// stage-assignment machinery now lives in synth/schedule.hpp so every flow
// can pipeline its kernel; this header keeps the XLS flow's historical
// entry point as a thin wrapper (delay-balance objective, no boundary
// retiming — the configuration the paper's Table II was measured with).
#pragma once

#include "netlist/ir.hpp"
#include "synth/schedule.hpp"

namespace hlshc::xls {

struct PipelineResult {
  netlist::Design design;
  int latency = 0;          ///< register layers from input to output
  int requested_stages = 0;
  int merged_stages = 0;    ///< empty stages removed
  int pipeline_regs = 0;    ///< total pipeline register bits inserted
};

/// Pipelines a pure combinational function. `stages` == 0 returns a copy of
/// the function unchanged (combinational codegen). Throws if the function
/// contains registers or memories.
PipelineResult pipeline_function(const netlist::Design& function, int stages,
                                 const synth::SynthOptions& options = {});

/// Full-control variant: forwards `schedule` (stages, objective, boundary
/// retiming) to synth::schedule_pipeline.
PipelineResult pipeline_function(const netlist::Design& function,
                                 const synth::ScheduleOptions& schedule);

}  // namespace hlshc::xls
