#include "idct/reference.hpp"

#include <cmath>

namespace hlshc::idct {

namespace {

// cos((2*x + 1) * u * pi / 16) basis, with the C(u) normalization folded in.
struct Basis {
  double c[8][8];  // c[x][u] = C(u)/2 * cos((2x+1) u pi / 16)
  Basis() {
    const double pi = std::acos(-1.0);
    for (int x = 0; x < 8; ++x) {
      for (int u = 0; u < 8; ++u) {
        double cu = (u == 0) ? 1.0 / std::sqrt(2.0) : 1.0;
        c[x][u] = 0.5 * cu * std::cos((2 * x + 1) * u * pi / 16.0);
      }
    }
  }
};

const Basis& basis() {
  static const Basis b;
  return b;
}

int32_t round_clamp(double v, int lo, int hi) {
  double r = std::floor(v + 0.5);  // round half up, as the reference code does
  if (r < lo) return lo;
  if (r > hi) return hi;
  return static_cast<int32_t>(r);
}

}  // namespace

Block forward_dct_reference(const Block& spatial) {
  const Basis& b = basis();
  double tmp[8][8];
  // Rows: tmp[r][u] = sum_x spatial[r][x] * c[x][u]
  for (int r = 0; r < 8; ++r)
    for (int u = 0; u < 8; ++u) {
      double s = 0.0;
      for (int x = 0; x < 8; ++x) s += at(spatial, r, x) * b.c[x][u];
      tmp[r][u] = s;
    }
  Block out{};
  // Cols: out[v][u] = sum_r tmp[r][u] * c[r][v]
  for (int v = 0; v < 8; ++v)
    for (int u = 0; u < 8; ++u) {
      double s = 0.0;
      for (int r = 0; r < 8; ++r) s += tmp[r][u] * b.c[r][v];
      at(out, v, u) = round_clamp(s, kCoeffMin, kCoeffMax);
    }
  return out;
}

Block idct_reference(const Block& coeffs) {
  const Basis& b = basis();
  double tmp[8][8];
  // Rows: tmp[v][x] = sum_u coeffs[v][u] * c[x][u]
  for (int v = 0; v < 8; ++v)
    for (int x = 0; x < 8; ++x) {
      double s = 0.0;
      for (int u = 0; u < 8; ++u) s += at(coeffs, v, u) * b.c[x][u];
      tmp[v][x] = s;
    }
  Block out{};
  // Cols: out[y][x] = sum_v tmp[v][x] * c[y][v]
  for (int y = 0; y < 8; ++y)
    for (int x = 0; x < 8; ++x) {
      double s = 0.0;
      for (int v = 0; v < 8; ++v) s += tmp[v][x] * b.c[y][v];
      at(out, y, x) = round_clamp(s, kSampleMin, kSampleMax);
    }
  return out;
}

}  // namespace hlshc::idct
