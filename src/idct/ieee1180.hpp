// IEEE Std 1180-1990 compliance harness.
//
// The standard accepts an 8x8 IDCT implementation if, over 10,000 random
// coefficient blocks derived from spatial data in a given range (and again
// with all signs flipped), the implementation's output stays within these
// bounds of the double-precision reference IDCT:
//
//   * peak pixel error            |e|      <= 1 for every pixel,
//   * per-position mean square    pmse     <= 0.06,
//   * overall mean square         omse     <= 0.02,
//   * per-position mean error     |pme|    <= 0.015,
//   * overall mean error          |ome|    <= 0.0015,
//   * the all-zero block must produce all zeros.
//
// The mandated input ranges are (L,H) = (256,255), (5,5) and (300,300),
// run with both sign polarities. The random generator is the standard's
// own LCG (base/rng.hpp).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "idct/block.hpp"

namespace hlshc::idct {

/// Candidate IDCT under test: consumes a 12-bit coefficient block, returns
/// a 9-bit sample block.
using IdctFunction = std::function<Block(const Block&)>;

struct ComplianceCase {
  long range_low = 256;   ///< L: inputs drawn from [-L, H]
  long range_high = 255;  ///< H
  int sign = +1;          ///< +1, or -1 for the sign-flipped run
  int blocks = 10000;
  long seed = 1;
};

struct ComplianceResult {
  ComplianceCase config;
  double peak_error = 0.0;  ///< max |e| over all pixels/blocks
  double omse = 0.0;        ///< overall mean square error
  double ome = 0.0;         ///< overall mean error
  double worst_pmse = 0.0;  ///< worst per-position mean square error
  double worst_pme = 0.0;   ///< worst per-position |mean error|
  bool zero_in_zero_out = false;
  bool pass = false;
  std::string failure;  ///< empty when pass
};

/// Runs one (range, sign) case.
ComplianceResult run_compliance_case(const IdctFunction& idct,
                                     const ComplianceCase& config);

/// Runs the full standard matrix: ranges {(256,255),(5,5),(300,300)} x
/// signs {+1,-1}. `blocks` can be lowered for quick test runs (the
/// standard value is 10,000).
std::vector<ComplianceResult> run_compliance_suite(const IdctFunction& idct,
                                                   int blocks = 10000);

/// True iff every case in `results` passed.
bool all_pass(const std::vector<ComplianceResult>& results);

}  // namespace hlshc::idct
