#include "idct/ieee1180.hpp"

#include <cmath>
#include <sstream>

#include "base/rng.hpp"
#include "idct/reference.hpp"

namespace hlshc::idct {

ComplianceResult run_compliance_case(const IdctFunction& idct,
                                     const ComplianceCase& config) {
  ComplianceResult res;
  res.config = config;

  Ieee1180Rng rng(config.seed);
  double sum_err[kBlockSize] = {};
  double sum_sq[kBlockSize] = {};
  double peak = 0.0;

  for (int b = 0; b < config.blocks; ++b) {
    Block spatial{};
    for (int i = 0; i < kBlockSize; ++i) {
      long v = rng.next(config.range_low, config.range_high);
      spatial[static_cast<size_t>(i)] =
          static_cast<int32_t>(config.sign * v);
    }
    Block coeffs = forward_dct_reference(spatial);
    Block ref = idct_reference(coeffs);
    Block got = idct(coeffs);
    for (int i = 0; i < kBlockSize; ++i) {
      double e = static_cast<double>(got[static_cast<size_t>(i)]) -
                 static_cast<double>(ref[static_cast<size_t>(i)]);
      sum_err[i] += e;
      sum_sq[i] += e * e;
      peak = std::max(peak, std::fabs(e));
    }
  }

  const double n = static_cast<double>(config.blocks);
  double total_sq = 0.0, total_err = 0.0;
  for (int i = 0; i < kBlockSize; ++i) {
    double pmse = sum_sq[i] / n;
    double pme = std::fabs(sum_err[i] / n);
    res.worst_pmse = std::max(res.worst_pmse, pmse);
    res.worst_pme = std::max(res.worst_pme, pme);
    total_sq += sum_sq[i];
    total_err += sum_err[i];
  }
  res.peak_error = peak;
  res.omse = total_sq / (n * kBlockSize);
  res.ome = std::fabs(total_err / (n * kBlockSize));

  Block zeros{};
  Block zout = idct(zeros);
  res.zero_in_zero_out = (zout == Block{});

  std::ostringstream why;
  if (res.peak_error > 1.0) why << "peak error " << res.peak_error << " > 1; ";
  if (res.worst_pmse > 0.06) why << "pmse " << res.worst_pmse << " > 0.06; ";
  if (res.omse > 0.02) why << "omse " << res.omse << " > 0.02; ";
  if (res.worst_pme > 0.015) why << "pme " << res.worst_pme << " > 0.015; ";
  if (res.ome > 0.0015) why << "ome " << res.ome << " > 0.0015; ";
  if (!res.zero_in_zero_out) why << "zero block not preserved; ";
  res.failure = why.str();
  res.pass = res.failure.empty();
  return res;
}

std::vector<ComplianceResult> run_compliance_suite(const IdctFunction& idct,
                                                   int blocks) {
  std::vector<ComplianceResult> out;
  const long ranges[3][2] = {{256, 255}, {5, 5}, {300, 300}};
  for (const auto& r : ranges) {
    for (int sign : {+1, -1}) {
      ComplianceCase c;
      c.range_low = r[0];
      c.range_high = r[1];
      c.sign = sign;
      c.blocks = blocks;
      out.push_back(run_compliance_case(idct, c));
    }
  }
  return out;
}

bool all_pass(const std::vector<ComplianceResult>& results) {
  for (const auto& r : results)
    if (!r.pass) return false;
  return !results.empty();
}

}  // namespace hlshc::idct
