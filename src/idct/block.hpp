// 8x8 block type shared by all IDCT implementations.
//
// Blocks are stored row-major: element (row r, column c) lives at index
// r*8 + c. Inputs to the IDCT are 12-bit DCT coefficients in
// [-2048, 2047]; outputs are 9-bit samples in [-256, 255], matching the
// paper's interface ("input is a matrix of 12-bit numbers, output is a
// matrix of 9-bit numbers").
#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace hlshc::idct {

inline constexpr int kBlockDim = 8;
inline constexpr int kBlockSize = kBlockDim * kBlockDim;

using Block = std::array<int32_t, kBlockSize>;

inline constexpr int kCoeffMin = -2048;  ///< 12-bit signed
inline constexpr int kCoeffMax = 2047;
inline constexpr int kSampleMin = -256;  ///< 9-bit signed
inline constexpr int kSampleMax = 255;

inline int32_t& at(Block& b, int row, int col) {
  return b[static_cast<size_t>(row * kBlockDim + col)];
}
inline int32_t at(const Block& b, int row, int col) {
  return b[static_cast<size_t>(row * kBlockDim + col)];
}

/// Clamp to the 9-bit output range (the reference code's `iclip`).
inline int32_t iclip(int64_t v) {
  return v < kSampleMin ? kSampleMin
                        : (v > kSampleMax ? kSampleMax
                                          : static_cast<int32_t>(v));
}

/// True if every element is within [lo, hi].
bool in_range(const Block& b, int lo, int hi);

/// Multi-line rendering for test failure messages.
std::string to_string(const Block& b);

}  // namespace hlshc::idct
