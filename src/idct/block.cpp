#include "idct/block.hpp"

#include <sstream>

namespace hlshc::idct {

bool in_range(const Block& b, int lo, int hi) {
  for (int32_t v : b)
    if (v < lo || v > hi) return false;
  return true;
}

std::string to_string(const Block& b) {
  std::ostringstream os;
  for (int r = 0; r < kBlockDim; ++r) {
    for (int c = 0; c < kBlockDim; ++c) {
      os << at(b, r, c);
      if (c + 1 < kBlockDim) os << '\t';
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace hlshc::idct
