// Fixed-point 8x8 IDCT after Chen/Wang, as distributed with the MPEG-2
// conformance decoder (ISO/IEC 13818-4:2004, mpeg2decode, idct.c).
//
// This is the exact integer algorithm every hardware design in this
// repository implements: an 11-bit-scaled row pass followed by a col pass
// with final rounding and 9-bit clipping. The W constants are
// 2048 * sqrt(2) * cos(k*pi/16) rounded:
//   W1 = 2841, W2 = 2676, W3 = 2408, W5 = 1609, W6 = 1108, W7 = 565.
//
// Two entry points are provided per pass: the original form with the
// all-zero AC shortcut (a software speedup) and a straight-line form that
// always evaluates the butterflies — the one hardware realizes. They are
// bit-identical on all inputs (a property test asserts this), which is why
// the paper's combinational circuits can drop the shortcut.
#pragma once

#include "idct/block.hpp"

namespace hlshc::idct {

inline constexpr int kW1 = 2841;  ///< 2048*sqrt(2)*cos(1*pi/16)
inline constexpr int kW2 = 2676;  ///< 2048*sqrt(2)*cos(2*pi/16)
inline constexpr int kW3 = 2408;  ///< 2048*sqrt(2)*cos(3*pi/16)
inline constexpr int kW5 = 1609;  ///< 2048*sqrt(2)*cos(5*pi/16)
inline constexpr int kW6 = 1108;  ///< 2048*sqrt(2)*cos(6*pi/16)
inline constexpr int kW7 = 565;   ///< 2048*sqrt(2)*cos(7*pi/16)

/// Row (horizontal) pass over blk[0..7] (stride 1), in place.
/// Original form with the zero-AC shortcut.
void idct_row(int32_t* blk);

/// Column (vertical) pass over blk[0], blk[8], ..., blk[56] (stride 8),
/// in place, with rounding and iclip. Original form with the shortcut.
void idct_col(int32_t* blk);

/// Straight-line variants (no data-dependent shortcut); bit-identical.
void idct_row_straight(int32_t* blk);
void idct_col_straight(int32_t* blk);

/// Full 2-D IDCT: 8 row passes then 8 column passes, in place.
void idct_2d(Block& block);

/// Full 2-D IDCT using the straight-line passes (the hardware dataflow).
void idct_2d_straight(Block& block);

}  // namespace hlshc::idct
