#include "idct/chenwang.hpp"

namespace hlshc::idct {

// The row pass computes an 11-bit-scaled 1-D IDCT:
// intermediate precision is 32 bits (the paper notes the Verilog version
// keeps full 32-bit arithmetic; Chisel later infers narrower widths).

void idct_row(int32_t* blk) {
  int32_t x0, x1, x2, x3, x4, x5, x6, x7, x8;

  // Zero-AC shortcut: with all AC terms zero the full butterfly reduces to
  // blk[i] = blk[0] << 3 exactly (see idct_row_straight), so software skips
  // the arithmetic.
  if (!((x1 = blk[4] << 11) | (x2 = blk[6]) | (x3 = blk[2]) |
        (x4 = blk[1]) | (x5 = blk[7]) | (x6 = blk[5]) | (x7 = blk[3]))) {
    blk[0] = blk[1] = blk[2] = blk[3] = blk[4] = blk[5] = blk[6] = blk[7] =
        blk[0] << 3;
    return;
  }
  x0 = (blk[0] << 11) + 128;  // +128 rounds the final >>8

  // first stage
  x8 = kW7 * (x4 + x5);
  x4 = x8 + (kW1 - kW7) * x4;
  x5 = x8 - (kW1 + kW7) * x5;
  x8 = kW3 * (x6 + x7);
  x6 = x8 - (kW3 - kW5) * x6;
  x7 = x8 - (kW3 + kW5) * x7;

  // second stage
  x8 = x0 + x1;
  x0 -= x1;
  x1 = kW6 * (x3 + x2);
  x2 = x1 - (kW2 + kW6) * x2;
  x3 = x1 + (kW2 - kW6) * x3;
  x1 = x4 + x6;
  x4 -= x6;
  x6 = x5 + x7;
  x5 -= x7;

  // third stage
  x7 = x8 + x3;
  x8 -= x3;
  x3 = x0 + x2;
  x0 -= x2;
  x2 = (181 * (x4 + x5) + 128) >> 8;
  x4 = (181 * (x4 - x5) + 128) >> 8;

  // fourth stage
  blk[0] = (x7 + x1) >> 8;
  blk[1] = (x3 + x2) >> 8;
  blk[2] = (x0 + x4) >> 8;
  blk[3] = (x8 + x6) >> 8;
  blk[4] = (x8 - x6) >> 8;
  blk[5] = (x0 - x4) >> 8;
  blk[6] = (x3 - x2) >> 8;
  blk[7] = (x7 - x1) >> 8;
}

void idct_row_straight(int32_t* blk) {
  int32_t x1 = blk[4] << 11, x2 = blk[6], x3 = blk[2], x4 = blk[1],
          x5 = blk[7], x6 = blk[5], x7 = blk[3];
  int32_t x0 = (blk[0] << 11) + 128;
  int32_t x8;

  x8 = kW7 * (x4 + x5);
  x4 = x8 + (kW1 - kW7) * x4;
  x5 = x8 - (kW1 + kW7) * x5;
  x8 = kW3 * (x6 + x7);
  x6 = x8 - (kW3 - kW5) * x6;
  x7 = x8 - (kW3 + kW5) * x7;

  x8 = x0 + x1;
  x0 -= x1;
  x1 = kW6 * (x3 + x2);
  x2 = x1 - (kW2 + kW6) * x2;
  x3 = x1 + (kW2 - kW6) * x3;
  x1 = x4 + x6;
  x4 -= x6;
  x6 = x5 + x7;
  x5 -= x7;

  x7 = x8 + x3;
  x8 -= x3;
  x3 = x0 + x2;
  x0 -= x2;
  x2 = (181 * (x4 + x5) + 128) >> 8;
  x4 = (181 * (x4 - x5) + 128) >> 8;

  blk[0] = (x7 + x1) >> 8;
  blk[1] = (x3 + x2) >> 8;
  blk[2] = (x0 + x4) >> 8;
  blk[3] = (x8 + x6) >> 8;
  blk[4] = (x8 - x6) >> 8;
  blk[5] = (x0 - x4) >> 8;
  blk[6] = (x3 - x2) >> 8;
  blk[7] = (x7 - x1) >> 8;
}

void idct_col(int32_t* blk) {
  int32_t x0, x1, x2, x3, x4, x5, x6, x7, x8;

  if (!((x1 = (blk[8 * 4] << 8)) | (x2 = blk[8 * 6]) | (x3 = blk[8 * 2]) |
        (x4 = blk[8 * 1]) | (x5 = blk[8 * 7]) | (x6 = blk[8 * 5]) |
        (x7 = blk[8 * 3]))) {
    blk[8 * 0] = blk[8 * 1] = blk[8 * 2] = blk[8 * 3] = blk[8 * 4] =
        blk[8 * 5] = blk[8 * 6] = blk[8 * 7] = iclip((blk[8 * 0] + 32) >> 6);
    return;
  }
  x0 = (blk[8 * 0] << 8) + 8192;

  // first stage (with intermediate >>3 to hold 8-bit-scaled precision)
  x8 = kW7 * (x4 + x5) + 4;
  x4 = (x8 + (kW1 - kW7) * x4) >> 3;
  x5 = (x8 - (kW1 + kW7) * x5) >> 3;
  x8 = kW3 * (x6 + x7) + 4;
  x6 = (x8 - (kW3 - kW5) * x6) >> 3;
  x7 = (x8 - (kW3 + kW5) * x7) >> 3;

  // second stage
  x8 = x0 + x1;
  x0 -= x1;
  x1 = kW6 * (x3 + x2) + 4;
  x2 = (x1 - (kW2 + kW6) * x2) >> 3;
  x3 = (x1 + (kW2 - kW6) * x3) >> 3;
  x1 = x4 + x6;
  x4 -= x6;
  x6 = x5 + x7;
  x5 -= x7;

  // third stage
  x7 = x8 + x3;
  x8 -= x3;
  x3 = x0 + x2;
  x0 -= x2;
  x2 = (181 * (x4 + x5) + 128) >> 8;
  x4 = (181 * (x4 - x5) + 128) >> 8;

  // fourth stage
  blk[8 * 0] = iclip((x7 + x1) >> 14);
  blk[8 * 1] = iclip((x3 + x2) >> 14);
  blk[8 * 2] = iclip((x0 + x4) >> 14);
  blk[8 * 3] = iclip((x8 + x6) >> 14);
  blk[8 * 4] = iclip((x8 - x6) >> 14);
  blk[8 * 5] = iclip((x0 - x4) >> 14);
  blk[8 * 6] = iclip((x3 - x2) >> 14);
  blk[8 * 7] = iclip((x7 - x1) >> 14);
}

void idct_col_straight(int32_t* blk) {
  int32_t x1 = blk[8 * 4] << 8, x2 = blk[8 * 6], x3 = blk[8 * 2],
          x4 = blk[8 * 1], x5 = blk[8 * 7], x6 = blk[8 * 5],
          x7 = blk[8 * 3];
  int32_t x0 = (blk[8 * 0] << 8) + 8192;
  int32_t x8;

  x8 = kW7 * (x4 + x5) + 4;
  x4 = (x8 + (kW1 - kW7) * x4) >> 3;
  x5 = (x8 - (kW1 + kW7) * x5) >> 3;
  x8 = kW3 * (x6 + x7) + 4;
  x6 = (x8 - (kW3 - kW5) * x6) >> 3;
  x7 = (x8 - (kW3 + kW5) * x7) >> 3;

  x8 = x0 + x1;
  x0 -= x1;
  x1 = kW6 * (x3 + x2) + 4;
  x2 = (x1 - (kW2 + kW6) * x2) >> 3;
  x3 = (x1 + (kW2 - kW6) * x3) >> 3;
  x1 = x4 + x6;
  x4 -= x6;
  x6 = x5 + x7;
  x5 -= x7;

  x7 = x8 + x3;
  x8 -= x3;
  x3 = x0 + x2;
  x0 -= x2;
  x2 = (181 * (x4 + x5) + 128) >> 8;
  x4 = (181 * (x4 - x5) + 128) >> 8;

  blk[8 * 0] = iclip((x7 + x1) >> 14);
  blk[8 * 1] = iclip((x3 + x2) >> 14);
  blk[8 * 2] = iclip((x0 + x4) >> 14);
  blk[8 * 3] = iclip((x8 + x6) >> 14);
  blk[8 * 4] = iclip((x8 - x6) >> 14);
  blk[8 * 5] = iclip((x0 - x4) >> 14);
  blk[8 * 6] = iclip((x3 - x2) >> 14);
  blk[8 * 7] = iclip((x7 - x1) >> 14);
}

void idct_2d(Block& block) {
  for (int r = 0; r < kBlockDim; ++r) idct_row(block.data() + 8 * r);
  for (int c = 0; c < kBlockDim; ++c) idct_col(block.data() + c);
}

void idct_2d_straight(Block& block) {
  for (int r = 0; r < kBlockDim; ++r) idct_row_straight(block.data() + 8 * r);
  for (int c = 0; c < kBlockDim; ++c) idct_col_straight(block.data() + c);
}

}  // namespace hlshc::idct
