// Double-precision reference transforms per IEEE Std 1180-1990.
//
// The standard's compliance procedure needs two floating-point routines:
// a forward DCT used to turn random spatial blocks into 12-bit coefficient
// blocks, and the reference IDCT whose rounded output is the yardstick the
// integer implementations are compared against.
#pragma once

#include "idct/block.hpp"

namespace hlshc::idct {

/// Reference separable 8x8 forward DCT (64-bit floating point), with the
/// result rounded to nearest integer and clamped to the 12-bit coefficient
/// range [-2048, 2047], as prescribed by IEEE 1180 section 3.
Block forward_dct_reference(const Block& spatial);

/// Reference 8x8 IDCT (64-bit floating point), rounded to nearest integer
/// and clamped to [-256, 255].
Block idct_reference(const Block& coeffs);

}  // namespace hlshc::idct
