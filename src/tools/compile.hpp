// The single canonical frontend -> synthesis path.
//
// Every flow, bench, fault campaign, and DSE sweep funnels its emitted
// netlist through tools::compile before anything is measured: the default
// PassManager pipeline (fold, mux/bool simplify, copy-prop, CSE, DCE —
// optionally CSD strength reduction) runs to a fixed point, per-pass stats
// are captured for RunReports and Table II, and an optional verify mode
// differentially simulates every pass against its input. A CI guard script
// (scripts/check_pipeline_guard.sh) keeps direct synthesize()/optimize()
// calls from creeping back into flows and benches.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "base/deadline.hpp"
#include "core/evaluate.hpp"
#include "netlist/pass_manager.hpp"
#include "synth/synthesize.hpp"

namespace hlshc::tools {

struct CompileOptions {
  bool optimize = true;          ///< run the pass pipeline at all
  bool strength_reduce = false;  ///< expand const multiplies to CSD trees
  /// Rewrite nodes to their range-proven effective widths (the `narrow`
  /// pass). Default on: every flow executes, campaigns and emits the
  /// trimmed design. false reproduces the pre-narrowing pipeline bit for
  /// bit (the Table II oracle path).
  bool narrow = true;
  /// Differentially simulate after every pass (both engines); a divergence
  /// aborts compilation with an Error naming the pass.
  bool verify = false;
  int verify_cycles = 24;
  uint64_t verify_seed = 2026;
  int max_iterations = 10;       ///< fixed-point bound for the pipeline
  /// Per-request wall budget (synthesis service): checked between passes,
  /// so a compile aborts with DeadlineExceeded instead of overrunning.
  std::shared_ptr<const Deadline> deadline;
};

struct CompiledDesign {
  netlist::Design design;
  netlist::PassStats stats;
};

/// Runs the canonical pipeline over `design` (a no-op copy when
/// options.optimize is false).
CompiledDesign compile(const netlist::Design& design,
                       const CompileOptions& options = {});

/// compile() followed by a single synthesis run.
synth::SynthReport compile_synth(const netlist::Design& design,
                                 const CompileOptions& options = {},
                                 const synth::SynthOptions& synth_options = {});

/// compile() followed by the paper's two normalized runs (default DSP
/// mapping + maxdsp=0). Pass stats are merged into `stats` when given.
synth::NormalizedSynth compile_synth_normalized(
    const netlist::Design& design, const CompileOptions& options = {},
    const synth::SynthOptions& synth_options = {},
    netlist::PassStats* stats = nullptr);

/// compile() followed by the full Section III.C measurement procedure; the
/// pipeline's per-pass breakdown lands in DesignEvaluation::pipeline.
core::DesignEvaluation evaluate_design(
    const netlist::Design& design, const CompileOptions& options = {},
    const core::EvaluateOptions& eval_options = {});

/// Same, but measured against an explicit workload registry entry instead
/// of the default "idct" spec.
core::DesignEvaluation evaluate_design(
    const netlist::Design& design, const workload::WorkloadSpec& spec,
    const CompileOptions& options = {},
    const core::EvaluateOptions& eval_options = {});

/// Human-readable per-pass breakdown table (bench_table2 --verbose,
/// bench_passes): one row per pass run with iteration, changes, node counts
/// and wall time.
std::string render_pass_breakdown(const std::string& design_name,
                                  const netlist::PassStats& stats);

}  // namespace hlshc::tools
