// The tool registry: one driver per language/tool flow of Table I.
//
// A Flow knows how to (a) build and evaluate its paper-defined "initial"
// and "optimized" designs through the common measurement procedure,
// (b) account its lines of code from the shipped sources under data/
// (L = L_FU + L_AXI + L_Conf, Section III.C) and the ΔL diff between the
// initial and optimized sources, and (c) enumerate its design-space sweep
// for Fig. 1 (3 Verilog circuits, 2 Chisel, 26 BSV, 19 XLS, 2 MaxJ,
// 42 Bambu, 3 Vivado HLS).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/evaluate.hpp"
#include "core/report.hpp"
#include "tools/compile.hpp"

namespace hlshc::tools {

/// A Table I row.
struct ToolInfo {
  std::string language;
  std::string paradigm;
  std::string tool;
  std::string type;      ///< "LS/PR", "HC", "HLS"
  std::string openness;  ///< "Commercial", "Open-source"
};

struct LocBreakdown {
  int initial = 0;
  int optimized = 0;
  int delta = 0;  ///< ΔL = ΔL+ + ΔL- between the two source sets
};

struct FlowResult {
  ToolInfo info;
  core::DesignEvaluation initial;
  core::DesignEvaluation optimized;
  LocBreakdown loc;
};

/// One independently evaluable design point of a flow's Fig. 1 sweep: a
/// (family, config) label plus a closure that builds the circuit and runs
/// the full measurement procedure. Tasks share nothing — each builds its
/// own netlist — so the DSE can run them in any order or concurrently
/// (par::SweepRunner) and still produce the exact serial point list.
struct SweepTask {
  std::string family;
  std::string config;
  std::function<core::ScatterPoint()> run;
};

class Flow {
 public:
  virtual ~Flow() = default;
  virtual std::string family() const = 0;  ///< scatter series name
  virtual ToolInfo info() const = 0;
  virtual FlowResult evaluate() const = 0;
  /// The flow's sweep as independent tasks, in the canonical point order.
  virtual std::vector<SweepTask> sweep_tasks() const = 0;
  /// Serial convenience: run every sweep task in declaration order.
  std::vector<core::ScatterPoint> sweep() const;
};

/// All seven flows, in the paper's column order. Every design a flow
/// builds or sweeps goes through tools::compile with `compile` — narrowing
/// on/off, strength reduction, verify — so Table II and the DSE can be
/// regenerated under any pipeline configuration (compile.narrow = false is
/// the pre-narrowing bitwise oracle).
std::vector<std::unique_ptr<Flow>> make_flows(
    const CompileOptions& compile = {});

/// One assembled Table II column (both configurations + derived metrics).
struct Table2Column {
  FlowResult flow;
  double automation_initial = 0, automation_opt = 0;  ///< α, percent
  double quality_initial = 0, quality_opt = 0;        ///< Q = P/A
  double controllability = 0;                         ///< C_Q, percent
  double flexibility = 0;                             ///< F_Q
};

struct Table2 {
  std::vector<Table2Column> columns;
  double verilog_best_quality = 0;
};

/// Evaluates every flow and derives the metrics (slow: full simulation and
/// synthesis of 14 designs). `jobs` != 1 evaluates the seven flows
/// concurrently over a par::SweepRunner (0 = all cores); the derived
/// metrics and column order are identical at any worker count.
Table2 build_table2(int jobs = 1, const CompileOptions& compile = {});

/// The full design-space exploration: every flow's sweep with narrowing on,
/// the same grid with narrowing off (config suffix "+wide"), and every
/// non-IDCT workload-registry cell — 200+ configurations swept over one
/// par::SweepRunner pool. `jobs` != 1 evaluates concurrently (0 = all
/// cores); the point list is identical at any worker count. bench_dse
/// records this as BENCH_dse.json with per-workload A/P/Q fronts.
std::vector<core::ScatterPoint> full_dse(int jobs = 1);

/// Just the classic narrowing-on flow sweeps (the paper's Fig. 1 set plus
/// the new scheduler points), without the "+wide" and workload dimensions.
std::vector<core::ScatterPoint> flow_dse(int jobs = 1,
                                         const CompileOptions& compile = {});

/// Renderers used by the benches.
std::string render_table1();
std::string render_table2(const Table2& table);

/// Machine-readable Table II (one row per flow/configuration).
std::string table2_csv(const Table2& table);

}  // namespace hlshc::tools
