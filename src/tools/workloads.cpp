#include "tools/workloads.hpp"

#include <utility>

#include "base/check.hpp"
#include "base/strings.hpp"
#include "core/report.hpp"
#include "fault/model.hpp"
#include "obs/trace.hpp"
#include "par/sweep.hpp"

namespace hlshc::tools {
namespace {

struct Cell {
  const workload::WorkloadSpec* spec = nullptr;
  const workload::BuilderInfo* builder = nullptr;
};

std::string outcome_mix(const fault::CampaignCounts& c) {
  return std::to_string(c.masked) + "/" + std::to_string(c.sdc) + "/" +
         std::to_string(c.detected) + "/" + std::to_string(c.hang);
}

}  // namespace

std::vector<WorkloadFlowResult> run_workload_matrix(
    const WorkloadBenchOptions& options) {
  const workload::Registry& reg = workload::Registry::instance();
  std::vector<std::string> names =
      options.workloads.empty() ? reg.names() : options.workloads;

  std::vector<Cell> cells;
  for (const std::string& name : names) {
    const workload::WorkloadSpec& spec = reg.get(name);  // throws on unknown
    for (const workload::BuilderInfo& b : spec.builders) {
      if (b.slow && !options.include_slow) continue;
      cells.push_back({&spec, &b});
    }
  }
  HLSHC_CHECK(!cells.empty(), "workload matrix selected no builders");

  obs::Span span("tools.workload_matrix", "tools");
  span.arg("workloads", static_cast<int64_t>(names.size()))
      .arg("cells", static_cast<int64_t>(cells.size()));

  par::SweepRunner runner(options.jobs);
  return runner.map<WorkloadFlowResult>(
      "workload_matrix", static_cast<int64_t>(cells.size()),
      [&](int64_t i) {
        const Cell& cell = cells[static_cast<size_t>(i)];
        WorkloadFlowResult r;
        r.workload = cell.spec->name;
        r.builder = cell.builder->name;
        r.flow = cell.builder->flow;
        r.variant = cell.builder->variant;

        netlist::Design d = cell.builder->build();
        CompiledDesign cd = compile(d, options.compile);

        core::EvaluateOptions eo;
        eo.matrices = options.matrices;
        r.eval = core::evaluate_axis_design(cd.design, *cell.spec, eo);
        r.eval.pipeline = std::move(cd.stats);

        std::vector<fault::FaultSite> sites = fault::sample_seu_sites(
            cd.design, options.campaign_sites, options.max_inject_cycle,
            options.campaign_seed);
        fault::CampaignOptions co;
        co.matrices = options.campaign_matrices;
        co.progress_every = 0;  // the sweep already owns the terminal
        r.campaign = fault::run_campaign(cd.design, *cell.spec, sites, co);
        r.vulnerability = r.campaign.counts.vulnerability();
        return r;
      });
}

std::string render_workload_matrix(
    const std::vector<WorkloadFlowResult>& rows) {
  core::Table t({"workload", "builder", "flow", "func", "T_P", "fmax",
                 "P MOPS", "A", "Q", "VF", "m/s/d/h"});
  for (const WorkloadFlowResult& r : rows)
    t.add_row({r.workload, r.builder, r.flow, r.eval.functional ? "ok" : "FAIL",
               format_fixed(r.eval.periodicity_cycles, 1),
               format_fixed(r.eval.fmax_mhz, 1),
               format_fixed(r.eval.throughput_mops, 3),
               std::to_string(r.eval.area),
               format_fixed(r.eval.quality() * 1e3, 3),
               format_fixed(r.vulnerability, 3),
               outcome_mix(r.campaign.counts)});
  return t.render();
}

obs::RunReport make_workload_report(
    const std::vector<WorkloadFlowResult>& rows,
    const WorkloadBenchOptions& options) {
  obs::RunReport report("bench_workloads");
  report.params()
      .set("matrices", obs::Json::number(options.matrices))
      .set("campaign_sites", obs::Json::number(options.campaign_sites))
      .set("campaign_seed",
           obs::Json::number(static_cast<int64_t>(options.campaign_seed)))
      .set("max_inject_cycle",
           obs::Json::number(static_cast<int64_t>(options.max_inject_cycle)))
      .set("campaign_matrices", obs::Json::number(options.campaign_matrices))
      .set("include_slow", obs::Json::boolean(options.include_slow));

  obs::Json workloads = obs::Json::array();
  for (const std::string& name : workload::Registry::instance().names())
    workloads.push(obs::Json::string(name));
  report.params().set("registry", std::move(workloads));

  obs::Json cells = obs::Json::array();
  for (const WorkloadFlowResult& r : rows) {
    obs::Json cell = obs::Json::object();
    cell.set("workload", obs::Json::string(r.workload))
        .set("builder", obs::Json::string(r.builder))
        .set("flow", obs::Json::string(r.flow))
        .set("variant", obs::Json::string(r.variant))
        .set("functional", obs::Json::boolean(r.eval.functional))
        .set("latency_cycles", obs::Json::number(r.eval.latency_cycles))
        .set("periodicity_cycles",
             obs::Json::number(r.eval.periodicity_cycles))
        .set("fmax_mhz", obs::Json::number(r.eval.fmax_mhz))
        .set("throughput_mops", obs::Json::number(r.eval.throughput_mops))
        .set("area", obs::Json::number(static_cast<int64_t>(r.eval.area)))
        .set("quality", obs::Json::number(r.eval.quality()))
        .set("vulnerability", obs::Json::number(r.vulnerability))
        .set("masked", obs::Json::number(r.campaign.counts.masked))
        .set("sdc", obs::Json::number(r.campaign.counts.sdc))
        .set("detected", obs::Json::number(r.campaign.counts.detected))
        .set("hang", obs::Json::number(r.campaign.counts.hang));
    cells.push(std::move(cell));
  }
  report.results().set("cells", std::move(cells));
  return report;
}

}  // namespace hlshc::tools
