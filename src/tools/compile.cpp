#include "tools/compile.hpp"

#include <utility>

#include "base/strings.hpp"
#include "core/report.hpp"
#include "obs/event_log.hpp"
#include "obs/trace.hpp"
#include "sim/verify.hpp"

namespace hlshc::tools {

CompiledDesign compile(const netlist::Design& design,
                       const CompileOptions& options) {
  CompiledDesign out{design, {}};
  if (!options.optimize) return out;

  obs::Span span("tools.compile", "tools");
  span.arg("design", design.name());
  netlist::PipelineOptions po;
  po.max_iterations = options.max_iterations;
  po.deadline = options.deadline;
  if (options.verify) {
    sim::VerifyOptions vo;
    vo.cycles = options.verify_cycles;
    vo.seed = options.verify_seed;
    po.verifier = sim::make_pass_verifier(vo);
  }
  netlist::PassManager pipeline =
      netlist::default_pipeline(options.strength_reduce, options.narrow);
  out.design = pipeline.run(design, &out.stats, po);
  span.arg("iterations", static_cast<int64_t>(out.stats.iterations))
      .arg("nodes_before", static_cast<int64_t>(out.stats.nodes_before()))
      .arg("nodes_after", static_cast<int64_t>(out.stats.nodes_after()));
  obs::log_event(
      obs::EventLevel::kInfo, "tools.compile",
      {{"design", design.name()},
       {"iterations", std::to_string(out.stats.iterations)},
       {"nodes_before", std::to_string(out.stats.nodes_before())},
       {"nodes_after", std::to_string(out.stats.nodes_after())}});
  return out;
}

synth::SynthReport compile_synth(const netlist::Design& design,
                                 const CompileOptions& options,
                                 const synth::SynthOptions& synth_options) {
  CompiledDesign c = compile(design, options);
  return synth::synthesize(c.design, synth_options);
}

synth::NormalizedSynth compile_synth_normalized(
    const netlist::Design& design, const CompileOptions& options,
    const synth::SynthOptions& synth_options, netlist::PassStats* stats) {
  CompiledDesign c = compile(design, options);
  if (stats) stats->merge(c.stats);
  return synth::synthesize_normalized(c.design, synth_options);
}

core::DesignEvaluation evaluate_design(const netlist::Design& design,
                                       const CompileOptions& options,
                                       const core::EvaluateOptions& eval_options) {
  CompiledDesign c = compile(design, options);
  core::DesignEvaluation ev = core::evaluate_axis_design(c.design, eval_options);
  ev.pipeline = std::move(c.stats);
  return ev;
}

core::DesignEvaluation evaluate_design(const netlist::Design& design,
                                       const workload::WorkloadSpec& spec,
                                       const CompileOptions& options,
                                       const core::EvaluateOptions& eval_options) {
  CompiledDesign c = compile(design, options);
  core::DesignEvaluation ev =
      core::evaluate_axis_design(c.design, spec, eval_options);
  ev.pipeline = std::move(c.stats);
  return ev;
}

std::string render_pass_breakdown(const std::string& design_name,
                                  const netlist::PassStats& stats) {
  core::Table t({"design", "iter", "pass", "changes", "nodes before",
                 "nodes after", "wall us"});
  for (const netlist::PassRun& run : stats.runs)
    t.add_row({design_name, std::to_string(run.iteration), run.pass,
               std::to_string(run.changes), std::to_string(run.nodes_before),
               std::to_string(run.nodes_after),
               format_fixed(static_cast<double>(run.wall_ns) / 1e3, 1)});
  return t.render();
}

}  // namespace hlshc::tools
