#include "tools/flows.hpp"

#include <sstream>

#include "base/strings.hpp"
#include "tools/compile.hpp"
#include "bsv/designs.hpp"
#include "core/diff.hpp"
#include "core/loc.hpp"
#include "core/metrics.hpp"
#include "hls/tool.hpp"
#include "maxj/kernels.hpp"
#include "maxj/system.hpp"
#include "par/sweep.hpp"
#include "workload/workload.hpp"
#include "xls/designs.hpp"

namespace hlshc::tools {

namespace {

using core::DesignEvaluation;
using core::ScatterPoint;

/// Canonical named designs come from the workload registry — the flows no
/// longer hardwire the IDCT frontends. Configuration sweeps (BSV scheduler
/// grid, XLS stage sweep, the 42 Bambu configs) still call the frontends
/// directly with their swept options.
netlist::Design registry_build(const std::string& builder) {
  return workload::Registry::instance().get("idct").builder(builder).build();
}

int code_loc(const std::string& rel) {
  return core::count_data_file(rel, core::language_of(rel)).code;
}

ScatterPoint point(const std::string& family, const std::string& config,
                   const DesignEvaluation& ev) {
  return ScatterPoint{family, config, ev.throughput_mops, ev.area,
                      static_cast<long>(ev.pipeline.nodes_delta())};
}

/// Wraps a deferred evaluation into a SweepTask. `eval` must be
/// self-contained (capture everything it needs by value) so tasks stay
/// independent under parallel execution.
SweepTask task(std::string family, std::string config,
               std::function<DesignEvaluation()> eval) {
  SweepTask t;
  t.family = family;
  t.config = config;
  t.run = [family = std::move(family), config = std::move(config),
           eval = std::move(eval)]() { return point(family, config, eval()); };
  return t;
}

// ---- Verilog -----------------------------------------------------------------

class VerilogFlow : public Flow {
 public:
  std::string family() const override { return "verilog"; }
  ToolInfo info() const override {
    return {"Verilog", "Classical RTL", "Vivado", "LS/PR", "Commercial"};
  }
  FlowResult evaluate() const override {
    FlowResult r;
    r.info = info();
    r.initial = evaluate_design(registry_build("verilog_initial"));
    r.optimized = evaluate_design(registry_build("verilog_opt2"));
    r.loc.initial = code_loc("verilog/idct_initial.v");
    r.loc.optimized = code_loc("verilog/idct_opt.v");
    r.loc.delta = core::diff_data_files("verilog/idct_initial.v",
                                        "verilog/idct_opt.v")
                      .delta();
    return r;
  }
  std::vector<SweepTask> sweep_tasks() const override {
    std::vector<SweepTask> out;
    out.push_back(task(family(), "initial", [] {
      return evaluate_design(registry_build("verilog_initial"));
    }));
    out.push_back(task(family(), "opt1-1row8col", [] {
      return evaluate_design(registry_build("verilog_opt1"));
    }));
    out.push_back(task(family(), "opt2-pipelined", [] {
      return evaluate_design(registry_build("verilog_opt2"));
    }));
    return out;
  }
};

// ---- Chisel -------------------------------------------------------------------

class ChiselFlow : public Flow {
 public:
  std::string family() const override { return "chisel"; }
  ToolInfo info() const override {
    return {"Chisel", "Functional/RTL", "Chisel", "HC", "Open-source"};
  }
  FlowResult evaluate() const override {
    FlowResult r;
    r.info = info();
    r.initial = evaluate_design(registry_build("chisel_initial"));
    r.optimized = evaluate_design(registry_build("chisel_opt"));
    int shared = code_loc("chisel/Butterfly.scala");
    r.loc.initial = shared + code_loc("chisel/IdctInitial.scala");
    r.loc.optimized = shared + code_loc("chisel/IdctOpt.scala");
    r.loc.delta = core::diff_data_files("chisel/IdctInitial.scala",
                                        "chisel/IdctOpt.scala")
                      .delta();
    return r;
  }
  std::vector<SweepTask> sweep_tasks() const override {
    std::vector<SweepTask> out;
    out.push_back(task(family(), "initial", [] {
      return evaluate_design(registry_build("chisel_initial"));
    }));
    out.push_back(task(family(), "opt", [] {
      return evaluate_design(registry_build("chisel_opt"));
    }));
    return out;
  }
};

// ---- BSV ----------------------------------------------------------------------

std::vector<bsv::SchedulerOptions> bsv_configs() {
  std::vector<bsv::SchedulerOptions> out;
  // 13 scheduler/attribute combinations x 2 designs = the paper's 26.
  out.push_back({});  // the default comes first
  for (bsv::UrgencyOrder u :
       {bsv::UrgencyOrder::kDeclaration, bsv::UrgencyOrder::kReversed,
        bsv::UrgencyOrder::kConflictSorted}) {
    for (bsv::MuxStyle s :
         {bsv::MuxStyle::kPriorityChain, bsv::MuxStyle::kOneHotAndOr}) {
      for (bool ac : {false, true}) {
        bsv::SchedulerOptions o;
        o.urgency = u;
        o.mux_style = s;
        o.aggressive_conditions = ac;
        out.push_back(o);
      }
    }
  }
  return out;  // 1 + 12 = 13
}

std::string bsv_label(const bsv::SchedulerOptions& o) {
  std::string s;
  switch (o.urgency) {
    case bsv::UrgencyOrder::kDeclaration: s = "decl"; break;
    case bsv::UrgencyOrder::kReversed: s = "rev"; break;
    case bsv::UrgencyOrder::kConflictSorted: s = "csort"; break;
  }
  s += o.mux_style == bsv::MuxStyle::kOneHotAndOr ? "+onehot" : "+prio";
  if (o.aggressive_conditions) s += "+ac";
  return s;
}

class BsvFlow : public Flow {
 public:
  std::string family() const override { return "bsv"; }
  ToolInfo info() const override {
    return {"BSV", "Rule-based/RTL", "BSC", "HC", "Open-source"};
  }
  FlowResult evaluate() const override {
    FlowResult r;
    r.info = info();
    r.initial = evaluate_design(registry_build("bsv_initial"));
    r.optimized = evaluate_design(registry_build("bsv_opt"));
    int shared = code_loc("bsv/IdctFuncs.bsv");
    r.loc.initial = shared + code_loc("bsv/IdctInitial.bsv");
    r.loc.optimized = shared + code_loc("bsv/IdctOpt.bsv");
    r.loc.delta = core::diff_data_files("bsv/IdctInitial.bsv",
                                        "bsv/IdctOpt.bsv")
                      .delta();
    return r;
  }
  std::vector<SweepTask> sweep_tasks() const override {
    std::vector<SweepTask> out;
    for (const auto& cfg : bsv_configs()) {
      out.push_back(task(family(), "initial:" + bsv_label(cfg), [cfg] {
        return evaluate_design(bsv::build_bsv_initial(cfg));
      }));
      out.push_back(task(family(), "opt:" + bsv_label(cfg), [cfg] {
        return evaluate_design(bsv::build_bsv_opt(cfg));
      }));
    }
    return out;  // 26 circuits
  }
};

// ---- DSLX / XLS -----------------------------------------------------------------

class XlsFlow : public Flow {
 public:
  std::string family() const override { return "xls"; }
  ToolInfo info() const override {
    return {"DSLX", "Functional", "XLS", "HLS", "Open-source"};
  }
  FlowResult evaluate() const override {
    FlowResult r;
    r.info = info();
    r.initial = evaluate_design(registry_build("xls_comb"));
    r.optimized = evaluate_design(registry_build("xls_p8"));
    // L = kernel source + hand-crafted adapter (+ codegen options for the
    // optimized configuration).
    int base = code_loc("dslx/idct.x") + code_loc("dslx/axis_adapter.v");
    int conf = code_loc("dslx/xls_opt.cfg");
    r.loc.initial = base;
    r.loc.optimized = base + conf;
    r.loc.delta = conf;  // the paper: only the stage count changes (ΔL = 3)
    return r;
  }
  std::vector<SweepTask> sweep_tasks() const override {
    std::vector<SweepTask> out;
    out.push_back(task(family(), "comb", [] {
      return evaluate_design(xls::build_xls_design({0}).design);
    }));
    for (int stages = 1; stages <= 18; ++stages)
      out.push_back(
          task(family(), "stages=" + std::to_string(stages), [stages] {
            return evaluate_design(
                xls::build_xls_design({stages}).design);
          }));
    return out;  // 19 circuits
  }
};

// ---- MaxJ -----------------------------------------------------------------------

class MaxjFlow : public Flow {
 public:
  std::string family() const override { return "maxj"; }
  ToolInfo info() const override {
    return {"MaxJ", "Dataflow", "MaxCompiler", "HLS", "Commercial"};
  }
  FlowResult evaluate() const override {
    FlowResult r;
    r.info = info();
    maxj::Kernel init = maxj::build_matrix_kernel();
    maxj::Kernel opt = maxj::build_row_kernel();
    netlist::PassStats init_stats, opt_stats;
    r.initial = core::from_maxj(
        "maxj_matrix", init,
        maxj::evaluate_system(init, compile_synth_normalized(
                                        init.design, {}, {}, &init_stats)));
    r.initial.pipeline = init_stats;
    r.optimized = core::from_maxj(
        "maxj_row", opt,
        maxj::evaluate_system(
            opt, compile_synth_normalized(opt.design, {}, {}, &opt_stats)));
    r.optimized.pipeline = opt_stats;
    // MaxCompiler generates the PCIe interface: L_AXI = 0; the manager is
    // part of the description.
    int shared =
        code_loc("maxj/IdctMath.maxj") + code_loc("maxj/IdctManager.maxj");
    r.loc.initial = shared + code_loc("maxj/IdctMatrixKernel.maxj");
    r.loc.optimized = shared + code_loc("maxj/IdctRowKernel.maxj");
    r.loc.delta = core::diff_data_files("maxj/IdctMatrixKernel.maxj",
                                        "maxj/IdctRowKernel.maxj")
                      .delta();
    return r;
  }
  std::vector<SweepTask> sweep_tasks() const override {
    std::vector<SweepTask> out;
    out.push_back(task(family(), "matrix-per-tick", [] {
      maxj::Kernel k = maxj::build_matrix_kernel();
      netlist::PassStats ps;
      DesignEvaluation ev = core::from_maxj(
          "maxj_matrix", k,
          maxj::evaluate_system(
              k, compile_synth_normalized(k.design, {}, {}, &ps)));
      ev.pipeline = ps;
      return ev;
    }));
    out.push_back(task(family(), "row-per-tick", [] {
      maxj::Kernel k = maxj::build_row_kernel();
      netlist::PassStats ps;
      DesignEvaluation ev = core::from_maxj(
          "maxj_row", k,
          maxj::evaluate_system(
              k, compile_synth_normalized(k.design, {}, {}, &ps)));
      ev.pipeline = ps;
      return ev;
    }));
    return out;
  }
};

// ---- C / Bambu --------------------------------------------------------------------

class BambuFlow : public Flow {
 public:
  std::string family() const override { return "bambu"; }
  ToolInfo info() const override {
    return {"C", "Imperative", "Bambu", "HLS", "Open-source"};
  }
  FlowResult evaluate() const override {
    FlowResult r;
    r.info = info();
    r.initial = evaluate_design(registry_build("bambu"));
    r.optimized = evaluate_design(registry_build("bambu_perf"));
    int base = code_loc("c/idct.c") + code_loc("c/axis_adapter.v");
    int conf = code_loc("c/bambu_opt.cfg");
    r.loc.initial = base;
    r.loc.optimized = base + conf;
    r.loc.delta = conf;  // only options change between the two configs
    return r;
  }
  std::vector<SweepTask> sweep_tasks() const override {
    std::vector<SweepTask> out;
    const std::string src = hls::idct_source();
    core::EvaluateOptions eo;
    eo.matrices = 3;  // hundreds of cycles per matrix: keep the sweep quick
    for (const hls::BambuOptions& o : hls::bambu_sweep())
      out.push_back(task(family(), o.label(), [src, o, eo] {
        return evaluate_design(hls::compile_bambu(src, o).design, {}, eo);
      }));
    return out;  // 42 circuits
  }
};

// ---- C / Vivado HLS ----------------------------------------------------------------

class VhlsFlow : public Flow {
 public:
  std::string family() const override { return "vhls"; }
  ToolInfo info() const override {
    return {"C", "Imperative", "Vivado HLS", "HLS", "Commercial"};
  }
  FlowResult evaluate() const override {
    FlowResult r;
    r.info = info();
    r.initial = evaluate_design(registry_build("vhls_pushbutton"), {},
                                slow_options());
    r.optimized = evaluate_design(registry_build("vhls_pragmas"));
    r.loc.initial = code_loc("c/idct_vhls.c");
    r.loc.optimized = code_loc("c/idct_vhls_opt.c");
    r.loc.delta =
        core::diff_data_files("c/idct_vhls.c", "c/idct_vhls_opt.c").delta();
    return r;
  }
  std::vector<SweepTask> sweep_tasks() const override {
    const std::string src = hls::idct_source();
    std::vector<SweepTask> out;
    out.push_back(task(family(), "push-button", [src] {
      return evaluate_design(hls::compile_vhls(src, {}).design, {},
                             slow_options());
    }));
    for (int stages : {1, 2}) {
      hls::VhlsOptions o;
      o.pragmas = true;
      o.pipeline_stages = stages;
      out.push_back(task(family(), "pragmas-s" + std::to_string(stages),
                         [src, o] {
                           return evaluate_design(
                               hls::compile_vhls(src, o).design);
                         }));
    }
    return out;  // 3 circuits
  }

 private:
  static core::EvaluateOptions slow_options() {
    core::EvaluateOptions o;
    o.matrices = 3;  // the push-button design takes ~700 cycles per matrix
    return o;
  }
};

}  // namespace

std::vector<core::ScatterPoint> Flow::sweep() const {
  std::vector<core::ScatterPoint> out;
  for (const SweepTask& t : sweep_tasks()) out.push_back(t.run());
  return out;
}

std::vector<std::unique_ptr<Flow>> make_flows() {
  std::vector<std::unique_ptr<Flow>> out;
  out.push_back(std::make_unique<VerilogFlow>());
  out.push_back(std::make_unique<ChiselFlow>());
  out.push_back(std::make_unique<BsvFlow>());
  out.push_back(std::make_unique<XlsFlow>());
  out.push_back(std::make_unique<MaxjFlow>());
  out.push_back(std::make_unique<BambuFlow>());
  out.push_back(std::make_unique<VhlsFlow>());
  return out;
}

Table2 build_table2(int jobs) {
  Table2 table;
  // Each flow builds and measures its own designs from scratch — no shared
  // mutable state — so the seven evaluations parallelize trivially. Results
  // land in flow order regardless of completion order.
  auto flows = make_flows();
  par::SweepRunner runner(jobs);
  std::vector<FlowResult> results = runner.map<FlowResult>(
      "table2", static_cast<int64_t>(flows.size()), [&](int64_t i) {
        return flows[static_cast<size_t>(i)]->evaluate();
      });

  const FlowResult& verilog = results.front();
  table.verilog_best_quality =
      std::max(verilog.initial.quality(), verilog.optimized.quality());

  for (FlowResult& r : results) {
    Table2Column col;
    col.quality_initial = r.initial.quality();
    col.quality_opt = r.optimized.quality();
    col.automation_initial =
        core::automation_percent(r.loc.initial, verilog.loc.initial);
    col.automation_opt =
        core::automation_percent(r.loc.optimized, verilog.loc.optimized);
    double best = std::max(col.quality_initial, col.quality_opt);
    col.controllability =
        core::controllability_percent(best, table.verilog_best_quality);
    col.flexibility =
        core::flexibility(best, col.quality_initial, r.loc.delta);
    col.flow = std::move(r);
    table.columns.push_back(std::move(col));
  }
  return table;
}

std::vector<core::ScatterPoint> full_dse(int jobs) {
  // Flatten every flow's sweep into one task list so a single pool keeps all
  // workers busy across flow boundaries (the Bambu sweep alone is 42 of the
  // ~97 points). parallel_map writes each point into its input-order slot,
  // so the scatter list is identical at any worker count.
  std::vector<SweepTask> tasks;
  for (const auto& flow : make_flows())
    for (SweepTask& t : flow->sweep_tasks()) tasks.push_back(std::move(t));
  par::SweepRunner runner(jobs);
  return runner.map<core::ScatterPoint>(
      "full_dse", static_cast<int64_t>(tasks.size()), [&](int64_t i) {
        return tasks[static_cast<size_t>(i)].run();
      });
}

std::string render_table1() {
  core::Table t({"Language", "Paradigm", "Tool", "Type", "Openness"});
  for (const auto& flow : make_flows()) {
    ToolInfo i = flow->info();
    t.add_row({i.language, i.paradigm, i.tool, i.type, i.openness});
  }
  return t.render();
}

std::string render_table2(const Table2& table) {
  using hlshc::format_fixed;
  using hlshc::format_grouped;
  std::vector<std::string> header = {"Row"};
  for (const auto& c : table.columns) {
    header.push_back(c.flow.info.tool + "/init");
    header.push_back(c.flow.info.tool + "/opt");
  }
  core::Table t(header);
  auto row = [&](const std::string& name, auto get_init, auto get_opt) {
    std::vector<std::string> cells = {name};
    for (const auto& c : table.columns) {
      cells.push_back(get_init(c));
      cells.push_back(get_opt(c));
    }
    t.add_row(std::move(cells));
  };
  auto both = [&](const std::string& name, auto get) {
    row(
        name, [&](const Table2Column& c) { return get(c.flow.initial); },
        [&](const Table2Column& c) { return get(c.flow.optimized); });
  };

  row(
      "LOC (incl options)",
      [](const Table2Column& c) { return std::to_string(c.flow.loc.initial); },
      [](const Table2Column& c) {
        return std::to_string(c.flow.loc.optimized);
      });
  row(
      "Modification dL",
      [](const Table2Column& c) { return std::to_string(c.flow.loc.delta); },
      [](const Table2Column&) { return std::string("-"); });
  row(
      "Automation a, %",
      [](const Table2Column& c) { return format_fixed(c.automation_initial, 1); },
      [](const Table2Column& c) { return format_fixed(c.automation_opt, 1); });
  row(
      "Quality Q=P/A",
      [](const Table2Column& c) { return format_fixed(c.quality_initial, 0); },
      [](const Table2Column& c) { return format_fixed(c.quality_opt, 0); });
  row(
      "Controllability C_Q, %",
      [](const Table2Column& c) { return format_fixed(c.controllability, 1); },
      [](const Table2Column&) { return std::string("-"); });
  row(
      "Flexibility F_Q",
      [](const Table2Column& c) { return format_fixed(c.flexibility, 1); },
      [](const Table2Column&) { return std::string("-"); });
  both("Frequency, MHz",
       [](const DesignEvaluation& e) { return format_fixed(e.fmax_mhz, 2); });
  both("Throughput, MOPS", [](const DesignEvaluation& e) {
    return format_fixed(e.throughput_mops, 2);
  });
  both("Latency, cycles", [](const DesignEvaluation& e) {
    return std::to_string(e.latency_cycles);
  });
  both("Periodicity, cycles", [](const DesignEvaluation& e) {
    return format_fixed(e.periodicity_cycles, 1);
  });
  both("Area N*LUT+N*FF", [](const DesignEvaluation& e) {
    return format_grouped(e.area);
  });
  both("N*LUT (maxdsp=0)", [](const DesignEvaluation& e) {
    return format_grouped(e.n_lut_star);
  });
  both("N*FF (maxdsp=0)", [](const DesignEvaluation& e) {
    return format_grouped(e.n_ff_star);
  });
  both("N_LUT", [](const DesignEvaluation& e) {
    return format_grouped(e.n_lut);
  });
  both("N_FF",
       [](const DesignEvaluation& e) { return format_grouped(e.n_ff); });
  both("N_DSP",
       [](const DesignEvaluation& e) { return format_grouped(e.n_dsp); });
  both("Pipeline dN nodes", [](const DesignEvaluation& e) {
    return std::to_string(e.pipeline.nodes_delta());
  });
  both("Pipeline iterations", [](const DesignEvaluation& e) {
    return std::to_string(e.pipeline.iterations);
  });
  row(
      "Functional",
      [](const Table2Column& c) {
        return c.flow.initial.functional ? std::string("yes")
                                         : std::string("NO");
      },
      [](const Table2Column& c) {
        return c.flow.optimized.functional ? std::string("yes")
                                           : std::string("NO");
      });
  return t.render();
}

std::string table2_csv(const Table2& table) {
  std::ostringstream os;
  os << "tool,config,loc,delta_loc,automation_pct,quality,controllability_"
        "pct,flexibility,fmax_mhz,throughput_mops,latency,periodicity,area,"
        "n_lut_star,n_ff_star,n_lut,n_ff,n_dsp,n_io,pipeline_nodes_before,"
        "pipeline_nodes_after,functional\n";
  auto row = [&](const Table2Column& c, bool opt) {
    const core::DesignEvaluation& e = opt ? c.flow.optimized : c.flow.initial;
    os << c.flow.info.tool << ',' << (opt ? "optimized" : "initial") << ','
       << (opt ? c.flow.loc.optimized : c.flow.loc.initial) << ','
       << c.flow.loc.delta << ','
       << format_fixed(opt ? c.automation_opt : c.automation_initial, 1)
       << ',' << format_fixed(opt ? c.quality_opt : c.quality_initial, 1)
       << ',' << format_fixed(c.controllability, 1) << ','
       << format_fixed(c.flexibility, 2) << ','
       << format_fixed(e.fmax_mhz, 2) << ','
       << format_fixed(e.throughput_mops, 3) << ',' << e.latency_cycles
       << ',' << format_fixed(e.periodicity_cycles, 1) << ',' << e.area
       << ',' << e.n_lut_star << ',' << e.n_ff_star << ',' << e.n_lut << ','
       << e.n_ff << ',' << e.n_dsp << ',' << e.n_io << ','
       << e.pipeline.nodes_before() << ',' << e.pipeline.nodes_after() << ','
       << (e.functional ? "yes" : "no") << '\n';
  };
  for (const Table2Column& c : table.columns) {
    row(c, false);
    row(c, true);
  }
  return os.str();
}

}  // namespace hlshc::tools
