#include "tools/flows.hpp"

#include <sstream>

#include "base/strings.hpp"
#include "tools/compile.hpp"
#include "bsv/designs.hpp"
#include "chisel/designs.hpp"
#include "core/diff.hpp"
#include "core/loc.hpp"
#include "core/metrics.hpp"
#include "framework/compose.hpp"
#include "hls/tool.hpp"
#include "maxj/kernels.hpp"
#include "maxj/system.hpp"
#include "par/sweep.hpp"
#include "rtl/designs.hpp"
#include "synth/schedule.hpp"
#include "workload/workload.hpp"
#include "xls/designs.hpp"

namespace hlshc::tools {

namespace {

using core::DesignEvaluation;
using core::ScatterPoint;

/// Canonical named designs come from the workload registry — the flows no
/// longer hardwire the IDCT frontends. Configuration sweeps (BSV scheduler
/// grid, XLS stage sweep, the 42 Bambu configs) still call the frontends
/// directly with their swept options.
netlist::Design registry_build(const std::string& builder) {
  return workload::Registry::instance().get("idct").builder(builder).build();
}

int code_loc(const std::string& rel) {
  return core::count_data_file(rel, core::language_of(rel)).code;
}

ScatterPoint point(const std::string& family, const std::string& config,
                   const DesignEvaluation& ev,
                   const std::string& workload = "idct") {
  return ScatterPoint{family, config, ev.throughput_mops, ev.area,
                      static_cast<long>(ev.pipeline.nodes_delta()), workload};
}

/// Wraps a deferred evaluation into a SweepTask. `eval` must be
/// self-contained (capture everything it needs by value) so tasks stay
/// independent under parallel execution.
SweepTask task(std::string family, std::string config,
               std::function<DesignEvaluation()> eval) {
  SweepTask t;
  t.family = family;
  t.config = config;
  t.run = [family = std::move(family), config = std::move(config),
           eval = std::move(eval)]() { return point(family, config, eval()); };
  return t;
}

/// A sweep point that pipelines a flow's pure matrix kernel through the
/// flow-neutral scheduler and wraps it in the framework's AXI adapter —
/// how the RTL and Chisel flows (which have no tool-native pipeliner)
/// join the stage-count axis of the DSE.
SweepTask pipelined_kernel_task(const std::string& family,
                                netlist::Design (*kernel)(), int stages,
                                const CompileOptions& copts) {
  return task(family, "pipe=" + std::to_string(stages),
              [family, kernel, stages, copts] {
                synth::ScheduleOptions so;
                so.stages = stages;
                synth::ScheduleResult r = synth::schedule_pipeline(kernel(), so);
                netlist::Design wrapped = framework::wrap_matrix_kernel(
                    framework::MatrixKernel{r.design, r.latency},
                    family + "_pipe" + std::to_string(stages));
                return evaluate_design(wrapped, copts);
              });
}

// ---- Verilog -----------------------------------------------------------------

class VerilogFlow : public Flow {
 public:
  explicit VerilogFlow(CompileOptions copts = {}) : copts_(std::move(copts)) {}
  std::string family() const override { return "verilog"; }
  ToolInfo info() const override {
    return {"Verilog", "Classical RTL", "Vivado", "LS/PR", "Commercial"};
  }
  FlowResult evaluate() const override {
    FlowResult r;
    r.info = info();
    r.initial = evaluate_design(registry_build("verilog_initial"), copts_);
    r.optimized = evaluate_design(registry_build("verilog_opt2"), copts_);
    r.loc.initial = code_loc("verilog/idct_initial.v");
    r.loc.optimized = code_loc("verilog/idct_opt.v");
    r.loc.delta = core::diff_data_files("verilog/idct_initial.v",
                                        "verilog/idct_opt.v")
                      .delta();
    return r;
  }
  std::vector<SweepTask> sweep_tasks() const override {
    std::vector<SweepTask> out;
    CompileOptions copts = copts_;
    out.push_back(task(family(), "initial", [copts] {
      return evaluate_design(registry_build("verilog_initial"), copts);
    }));
    out.push_back(task(family(), "opt1-1row8col", [copts] {
      return evaluate_design(registry_build("verilog_opt1"), copts);
    }));
    out.push_back(task(family(), "opt2-pipelined", [copts] {
      return evaluate_design(registry_build("verilog_opt2"), copts);
    }));
    // Scheduler-pipelined kernel points: the hand-written rows/columns at
    // declared widths, staged by synth::schedule_pipeline.
    for (int stages : {2, 4, 8})
      out.push_back(pipelined_kernel_task(family(), rtl::build_matrix_kernel,
                                          stages, copts));
    return out;
  }

 private:
  CompileOptions copts_;
};

// ---- Chisel -------------------------------------------------------------------

class ChiselFlow : public Flow {
 public:
  explicit ChiselFlow(CompileOptions copts = {}) : copts_(std::move(copts)) {}
  std::string family() const override { return "chisel"; }
  ToolInfo info() const override {
    return {"Chisel", "Functional/RTL", "Chisel", "HC", "Open-source"};
  }
  FlowResult evaluate() const override {
    FlowResult r;
    r.info = info();
    r.initial = evaluate_design(registry_build("chisel_initial"), copts_);
    r.optimized = evaluate_design(registry_build("chisel_opt"), copts_);
    int shared = code_loc("chisel/Butterfly.scala");
    r.loc.initial = shared + code_loc("chisel/IdctInitial.scala");
    r.loc.optimized = shared + code_loc("chisel/IdctOpt.scala");
    r.loc.delta = core::diff_data_files("chisel/IdctInitial.scala",
                                        "chisel/IdctOpt.scala")
                      .delta();
    return r;
  }
  std::vector<SweepTask> sweep_tasks() const override {
    std::vector<SweepTask> out;
    CompileOptions copts = copts_;
    out.push_back(task(family(), "initial", [copts] {
      return evaluate_design(registry_build("chisel_initial"), copts);
    }));
    out.push_back(task(family(), "opt", [copts] {
      return evaluate_design(registry_build("chisel_opt"), copts);
    }));
    // Scheduler-pipelined kernel points at inferred widths.
    for (int stages : {2, 4, 8})
      out.push_back(pipelined_kernel_task(
          family(), chisel::build_matrix_kernel, stages, copts));
    return out;
  }

 private:
  CompileOptions copts_;
};

// ---- BSV ----------------------------------------------------------------------

std::vector<bsv::SchedulerOptions> bsv_configs() {
  std::vector<bsv::SchedulerOptions> out;
  // 13 scheduler/attribute combinations x 2 designs = the paper's 26.
  out.push_back({});  // the default comes first
  for (bsv::UrgencyOrder u :
       {bsv::UrgencyOrder::kDeclaration, bsv::UrgencyOrder::kReversed,
        bsv::UrgencyOrder::kConflictSorted}) {
    for (bsv::MuxStyle s :
         {bsv::MuxStyle::kPriorityChain, bsv::MuxStyle::kOneHotAndOr}) {
      for (bool ac : {false, true}) {
        bsv::SchedulerOptions o;
        o.urgency = u;
        o.mux_style = s;
        o.aggressive_conditions = ac;
        out.push_back(o);
      }
    }
  }
  return out;  // 1 + 12 = 13
}

std::string bsv_label(const bsv::SchedulerOptions& o) {
  std::string s;
  switch (o.urgency) {
    case bsv::UrgencyOrder::kDeclaration: s = "decl"; break;
    case bsv::UrgencyOrder::kReversed: s = "rev"; break;
    case bsv::UrgencyOrder::kConflictSorted: s = "csort"; break;
  }
  s += o.mux_style == bsv::MuxStyle::kOneHotAndOr ? "+onehot" : "+prio";
  if (o.aggressive_conditions) s += "+ac";
  return s;
}

class BsvFlow : public Flow {
 public:
  explicit BsvFlow(CompileOptions copts = {}) : copts_(std::move(copts)) {}
  std::string family() const override { return "bsv"; }
  ToolInfo info() const override {
    return {"BSV", "Rule-based/RTL", "BSC", "HC", "Open-source"};
  }
  FlowResult evaluate() const override {
    FlowResult r;
    r.info = info();
    r.initial = evaluate_design(registry_build("bsv_initial"), copts_);
    r.optimized = evaluate_design(registry_build("bsv_opt"), copts_);
    int shared = code_loc("bsv/IdctFuncs.bsv");
    r.loc.initial = shared + code_loc("bsv/IdctInitial.bsv");
    r.loc.optimized = shared + code_loc("bsv/IdctOpt.bsv");
    r.loc.delta = core::diff_data_files("bsv/IdctInitial.bsv",
                                        "bsv/IdctOpt.bsv")
                      .delta();
    return r;
  }
  std::vector<SweepTask> sweep_tasks() const override {
    std::vector<SweepTask> out;
    CompileOptions copts = copts_;
    for (const auto& cfg : bsv_configs()) {
      out.push_back(task(family(), "initial:" + bsv_label(cfg), [cfg, copts] {
        return evaluate_design(bsv::build_bsv_initial(cfg), copts);
      }));
      out.push_back(task(family(), "opt:" + bsv_label(cfg), [cfg, copts] {
        return evaluate_design(bsv::build_bsv_opt(cfg), copts);
      }));
    }
    return out;  // 26 circuits
  }

 private:
  CompileOptions copts_;
};

// ---- DSLX / XLS -----------------------------------------------------------------

class XlsFlow : public Flow {
 public:
  explicit XlsFlow(CompileOptions copts = {}) : copts_(std::move(copts)) {}
  std::string family() const override { return "xls"; }
  ToolInfo info() const override {
    return {"DSLX", "Functional", "XLS", "HLS", "Open-source"};
  }
  FlowResult evaluate() const override {
    FlowResult r;
    r.info = info();
    r.initial = evaluate_design(registry_build("xls_comb"), copts_);
    r.optimized = evaluate_design(registry_build("xls_p8"), copts_);
    // L = kernel source + hand-crafted adapter (+ codegen options for the
    // optimized configuration).
    int base = code_loc("dslx/idct.x") + code_loc("dslx/axis_adapter.v");
    int conf = code_loc("dslx/xls_opt.cfg");
    r.loc.initial = base;
    r.loc.optimized = base + conf;
    r.loc.delta = conf;  // the paper: only the stage count changes (ΔL = 3)
    return r;
  }
  std::vector<SweepTask> sweep_tasks() const override {
    std::vector<SweepTask> out;
    CompileOptions copts = copts_;
    out.push_back(task(family(), "comb", [copts] {
      return evaluate_design(xls::build_xls_design({0}).design, copts);
    }));
    // The paper's sweep: 1..18 requested stages under the default
    // delay-balance objective (19 configurations with "comb").
    for (int stages = 1; stages <= kPaperMaxStages; ++stages)
      out.push_back(
          task(family(), "stages=" + std::to_string(stages), [stages, copts] {
            return evaluate_design(xls::build_xls_design({stages}).design,
                                   copts);
          }));
    // Scheduler-objective points beyond the paper: register-minimizing
    // stage assignment and boundary retiming across extensions.
    for (int stages = 2; stages <= kPaperMaxStages; stages += 2) {
      out.push_back(task(family(), "stages=" + std::to_string(stages) +
                                       "+regmin",
                         [stages, copts] {
                           xls::XlsOptions o;
                           o.pipeline_stages = stages;
                           o.objective = synth::ScheduleObjective::kRegisterMin;
                           return evaluate_design(
                               xls::build_xls_design(o).design, copts);
                         }));
      out.push_back(task(family(), "stages=" + std::to_string(stages) + "+rt",
                         [stages, copts] {
                           xls::XlsOptions o;
                           o.pipeline_stages = stages;
                           o.retime_boundaries = true;
                           return evaluate_design(
                               xls::build_xls_design(o).design, copts);
                         }));
    }
    return out;  // 19 + 18 circuits
  }

 private:
  /// The paper sweeps comb + 1..18 stages; scheduler validation itself
  /// accepts up to synth::kMaxScheduleStages (see synth::parse_stages).
  static constexpr int kPaperMaxStages = 18;

  CompileOptions copts_;
};

// ---- MaxJ -----------------------------------------------------------------------

class MaxjFlow : public Flow {
 public:
  explicit MaxjFlow(CompileOptions copts = {}) : copts_(std::move(copts)) {}
  std::string family() const override { return "maxj"; }
  ToolInfo info() const override {
    return {"MaxJ", "Dataflow", "MaxCompiler", "HLS", "Commercial"};
  }
  FlowResult evaluate() const override {
    FlowResult r;
    r.info = info();
    maxj::Kernel init = maxj::build_matrix_kernel();
    maxj::Kernel opt = maxj::build_row_kernel();
    netlist::PassStats init_stats, opt_stats;
    r.initial = core::from_maxj(
        "maxj_matrix", init,
        maxj::evaluate_system(init, compile_synth_normalized(
                                        init.design, copts_, {},
                                        &init_stats)));
    r.initial.pipeline = init_stats;
    r.optimized = core::from_maxj(
        "maxj_row", opt,
        maxj::evaluate_system(
            opt,
            compile_synth_normalized(opt.design, copts_, {}, &opt_stats)));
    r.optimized.pipeline = opt_stats;
    // MaxCompiler generates the PCIe interface: L_AXI = 0; the manager is
    // part of the description.
    int shared =
        code_loc("maxj/IdctMath.maxj") + code_loc("maxj/IdctManager.maxj");
    r.loc.initial = shared + code_loc("maxj/IdctMatrixKernel.maxj");
    r.loc.optimized = shared + code_loc("maxj/IdctRowKernel.maxj");
    r.loc.delta = core::diff_data_files("maxj/IdctMatrixKernel.maxj",
                                        "maxj/IdctRowKernel.maxj")
                      .delta();
    return r;
  }
  std::vector<SweepTask> sweep_tasks() const override {
    std::vector<SweepTask> out;
    CompileOptions copts = copts_;
    out.push_back(task(family(), "matrix-per-tick", [copts] {
      maxj::Kernel k = maxj::build_matrix_kernel();
      netlist::PassStats ps;
      DesignEvaluation ev = core::from_maxj(
          "maxj_matrix", k,
          maxj::evaluate_system(
              k, compile_synth_normalized(k.design, copts, {}, &ps)));
      ev.pipeline = ps;
      return ev;
    }));
    out.push_back(task(family(), "row-per-tick", [copts] {
      maxj::Kernel k = maxj::build_row_kernel();
      netlist::PassStats ps;
      DesignEvaluation ev = core::from_maxj(
          "maxj_row", k,
          maxj::evaluate_system(
              k, compile_synth_normalized(k.design, copts, {}, &ps)));
      ev.pipeline = ps;
      return ev;
    }));
    return out;
  }

 private:
  CompileOptions copts_;
};

// ---- C / Bambu --------------------------------------------------------------------

class BambuFlow : public Flow {
 public:
  explicit BambuFlow(CompileOptions copts = {}) : copts_(std::move(copts)) {}
  std::string family() const override { return "bambu"; }
  ToolInfo info() const override {
    return {"C", "Imperative", "Bambu", "HLS", "Open-source"};
  }
  FlowResult evaluate() const override {
    FlowResult r;
    r.info = info();
    r.initial = evaluate_design(registry_build("bambu"), copts_);
    r.optimized = evaluate_design(registry_build("bambu_perf"), copts_);
    int base = code_loc("c/idct.c") + code_loc("c/axis_adapter.v");
    int conf = code_loc("c/bambu_opt.cfg");
    r.loc.initial = base;
    r.loc.optimized = base + conf;
    r.loc.delta = conf;  // only options change between the two configs
    return r;
  }
  std::vector<SweepTask> sweep_tasks() const override {
    std::vector<SweepTask> out;
    const std::string src = hls::idct_source();
    core::EvaluateOptions eo;
    eo.matrices = 3;  // hundreds of cycles per matrix: keep the sweep quick
    CompileOptions copts = copts_;
    for (const hls::BambuOptions& o : hls::bambu_sweep())
      out.push_back(task(family(), o.label(), [src, o, eo, copts] {
        return evaluate_design(hls::compile_bambu(src, o).design, copts, eo);
      }));
    return out;  // 42 circuits
  }

 private:
  CompileOptions copts_;
};

// ---- C / Vivado HLS ----------------------------------------------------------------

class VhlsFlow : public Flow {
 public:
  explicit VhlsFlow(CompileOptions copts = {}) : copts_(std::move(copts)) {}
  std::string family() const override { return "vhls"; }
  ToolInfo info() const override {
    return {"C", "Imperative", "Vivado HLS", "HLS", "Commercial"};
  }
  FlowResult evaluate() const override {
    FlowResult r;
    r.info = info();
    r.initial = evaluate_design(registry_build("vhls_pushbutton"), copts_,
                                slow_options());
    r.optimized = evaluate_design(registry_build("vhls_pragmas"), copts_);
    r.loc.initial = code_loc("c/idct_vhls.c");
    r.loc.optimized = code_loc("c/idct_vhls_opt.c");
    r.loc.delta =
        core::diff_data_files("c/idct_vhls.c", "c/idct_vhls_opt.c").delta();
    return r;
  }
  std::vector<SweepTask> sweep_tasks() const override {
    const std::string src = hls::idct_source();
    std::vector<SweepTask> out;
    CompileOptions copts = copts_;
    out.push_back(task(family(), "push-button", [src, copts] {
      return evaluate_design(hls::compile_vhls(src, {}).design, copts,
                             slow_options());
    }));
    for (int stages : {1, 2}) {
      hls::VhlsOptions o;
      o.pragmas = true;
      o.pipeline_stages = stages;
      out.push_back(task(family(), "pragmas-s" + std::to_string(stages),
                         [src, o, copts] {
                           return evaluate_design(
                               hls::compile_vhls(src, o).design, copts);
                         }));
    }
    return out;  // 3 circuits
  }

 private:
  static core::EvaluateOptions slow_options() {
    core::EvaluateOptions o;
    o.matrices = 3;  // the push-button design takes ~700 cycles per matrix
    return o;
  }

  CompileOptions copts_;
};

}  // namespace

std::vector<core::ScatterPoint> Flow::sweep() const {
  std::vector<core::ScatterPoint> out;
  for (const SweepTask& t : sweep_tasks()) out.push_back(t.run());
  return out;
}

std::vector<std::unique_ptr<Flow>> make_flows(const CompileOptions& compile) {
  std::vector<std::unique_ptr<Flow>> out;
  out.push_back(std::make_unique<VerilogFlow>(compile));
  out.push_back(std::make_unique<ChiselFlow>(compile));
  out.push_back(std::make_unique<BsvFlow>(compile));
  out.push_back(std::make_unique<XlsFlow>(compile));
  out.push_back(std::make_unique<MaxjFlow>(compile));
  out.push_back(std::make_unique<BambuFlow>(compile));
  out.push_back(std::make_unique<VhlsFlow>(compile));
  return out;
}

Table2 build_table2(int jobs, const CompileOptions& compile) {
  Table2 table;
  // Each flow builds and measures its own designs from scratch — no shared
  // mutable state — so the seven evaluations parallelize trivially. Results
  // land in flow order regardless of completion order.
  auto flows = make_flows(compile);
  par::SweepRunner runner(jobs);
  std::vector<FlowResult> results = runner.map<FlowResult>(
      "table2", static_cast<int64_t>(flows.size()), [&](int64_t i) {
        return flows[static_cast<size_t>(i)]->evaluate();
      });

  const FlowResult& verilog = results.front();
  table.verilog_best_quality =
      std::max(verilog.initial.quality(), verilog.optimized.quality());

  for (FlowResult& r : results) {
    Table2Column col;
    col.quality_initial = r.initial.quality();
    col.quality_opt = r.optimized.quality();
    col.automation_initial =
        core::automation_percent(r.loc.initial, verilog.loc.initial);
    col.automation_opt =
        core::automation_percent(r.loc.optimized, verilog.loc.optimized);
    double best = std::max(col.quality_initial, col.quality_opt);
    col.controllability =
        core::controllability_percent(best, table.verilog_best_quality);
    col.flexibility =
        core::flexibility(best, col.quality_initial, r.loc.delta);
    col.flow = std::move(r);
    table.columns.push_back(std::move(col));
  }
  return table;
}

namespace {

/// Relabels a sweep task with a "+wide" config suffix (narrowing off): the
/// wrapped run re-tags its point so config strings and point labels agree
/// at any worker count.
SweepTask wide_variant(SweepTask t) {
  const std::string config = t.config + "+wide";
  auto inner = std::move(t.run);
  t.config = config;
  t.run = [inner = std::move(inner), config]() {
    core::ScatterPoint p = inner();
    p.config = config;
    return p;
  };
  return t;
}

/// One (workload, builder) DSE cell evaluated against its registry spec.
SweepTask workload_task(const std::string& workload_name,
                        const workload::BuilderInfo& builder,
                        const CompileOptions& copts) {
  return SweepTask{
      builder.flow, workload_name + "." + builder.name,
      [workload_name, name = builder.name, flow = builder.flow, copts] {
        const workload::WorkloadSpec& spec =
            workload::Registry::instance().get(workload_name);
        DesignEvaluation ev =
            evaluate_design(spec.builder(name).build(), spec, copts);
        return point(flow, workload_name + "." + name, ev, workload_name);
      }};
}

std::vector<core::ScatterPoint> run_tasks(const char* label,
                                          std::vector<SweepTask> tasks,
                                          int jobs) {
  par::SweepRunner runner(jobs);
  return runner.map<core::ScatterPoint>(
      label, static_cast<int64_t>(tasks.size()), [&](int64_t i) {
        return tasks[static_cast<size_t>(i)].run();
      });
}

}  // namespace

std::vector<core::ScatterPoint> flow_dse(int jobs,
                                         const CompileOptions& compile) {
  // Flatten every flow's sweep into one task list so a single pool keeps all
  // workers busy across flow boundaries (the Bambu sweep alone is 42 of the
  // points). parallel_map writes each point into its input-order slot, so
  // the scatter list is identical at any worker count.
  std::vector<SweepTask> tasks;
  for (const auto& flow : make_flows(compile))
    for (SweepTask& t : flow->sweep_tasks()) tasks.push_back(std::move(t));
  return run_tasks("flow_dse", std::move(tasks), jobs);
}

std::vector<core::ScatterPoint> full_dse(int jobs) {
  std::vector<SweepTask> tasks;
  // Axis 1+2: every flow's sweep (stage counts, scheduler objectives, tool
  // options) with width narrowing on, then the same grid with narrowing
  // off ("+wide") — the cost of over-declared widths made visible per
  // configuration.
  for (const auto& flow : make_flows())
    for (SweepTask& t : flow->sweep_tasks()) tasks.push_back(std::move(t));
  CompileOptions wide;
  wide.narrow = false;
  for (const auto& flow : make_flows(wide))
    for (SweepTask& t : flow->sweep_tasks())
      tasks.push_back(wide_variant(std::move(t)));
  // Axis 3: the non-IDCT workload-registry cells (the IDCT is axes 1-2),
  // so the scatter carries per-workload A/P/Q fronts.
  for (const std::string& w : workload::Registry::instance().names()) {
    if (w == "idct") continue;
    const workload::WorkloadSpec& spec = workload::Registry::instance().get(w);
    for (const workload::BuilderInfo& b : spec.builders) {
      if (b.slow) continue;
      tasks.push_back(workload_task(w, b, CompileOptions{}));
    }
  }
  return run_tasks("full_dse", std::move(tasks), jobs);
}

std::string render_table1() {
  core::Table t({"Language", "Paradigm", "Tool", "Type", "Openness"});
  for (const auto& flow : make_flows()) {
    ToolInfo i = flow->info();
    t.add_row({i.language, i.paradigm, i.tool, i.type, i.openness});
  }
  return t.render();
}

std::string render_table2(const Table2& table) {
  using hlshc::format_fixed;
  using hlshc::format_grouped;
  std::vector<std::string> header = {"Row"};
  for (const auto& c : table.columns) {
    header.push_back(c.flow.info.tool + "/init");
    header.push_back(c.flow.info.tool + "/opt");
  }
  core::Table t(header);
  auto row = [&](const std::string& name, auto get_init, auto get_opt) {
    std::vector<std::string> cells = {name};
    for (const auto& c : table.columns) {
      cells.push_back(get_init(c));
      cells.push_back(get_opt(c));
    }
    t.add_row(std::move(cells));
  };
  auto both = [&](const std::string& name, auto get) {
    row(
        name, [&](const Table2Column& c) { return get(c.flow.initial); },
        [&](const Table2Column& c) { return get(c.flow.optimized); });
  };

  row(
      "LOC (incl options)",
      [](const Table2Column& c) { return std::to_string(c.flow.loc.initial); },
      [](const Table2Column& c) {
        return std::to_string(c.flow.loc.optimized);
      });
  row(
      "Modification dL",
      [](const Table2Column& c) { return std::to_string(c.flow.loc.delta); },
      [](const Table2Column&) { return std::string("-"); });
  row(
      "Automation a, %",
      [](const Table2Column& c) { return format_fixed(c.automation_initial, 1); },
      [](const Table2Column& c) { return format_fixed(c.automation_opt, 1); });
  row(
      "Quality Q=P/A",
      [](const Table2Column& c) { return format_fixed(c.quality_initial, 0); },
      [](const Table2Column& c) { return format_fixed(c.quality_opt, 0); });
  row(
      "Controllability C_Q, %",
      [](const Table2Column& c) { return format_fixed(c.controllability, 1); },
      [](const Table2Column&) { return std::string("-"); });
  row(
      "Flexibility F_Q",
      [](const Table2Column& c) { return format_fixed(c.flexibility, 1); },
      [](const Table2Column&) { return std::string("-"); });
  both("Frequency, MHz",
       [](const DesignEvaluation& e) { return format_fixed(e.fmax_mhz, 2); });
  both("Throughput, MOPS", [](const DesignEvaluation& e) {
    return format_fixed(e.throughput_mops, 2);
  });
  both("Latency, cycles", [](const DesignEvaluation& e) {
    return std::to_string(e.latency_cycles);
  });
  both("Periodicity, cycles", [](const DesignEvaluation& e) {
    return format_fixed(e.periodicity_cycles, 1);
  });
  both("Area N*LUT+N*FF", [](const DesignEvaluation& e) {
    return format_grouped(e.area);
  });
  both("N*LUT (maxdsp=0)", [](const DesignEvaluation& e) {
    return format_grouped(e.n_lut_star);
  });
  both("N*FF (maxdsp=0)", [](const DesignEvaluation& e) {
    return format_grouped(e.n_ff_star);
  });
  both("N_LUT", [](const DesignEvaluation& e) {
    return format_grouped(e.n_lut);
  });
  both("N_FF",
       [](const DesignEvaluation& e) { return format_grouped(e.n_ff); });
  both("N_DSP",
       [](const DesignEvaluation& e) { return format_grouped(e.n_dsp); });
  both("Pipeline dN nodes", [](const DesignEvaluation& e) {
    return std::to_string(e.pipeline.nodes_delta());
  });
  both("Pipeline iterations", [](const DesignEvaluation& e) {
    return std::to_string(e.pipeline.iterations);
  });
  row(
      "Functional",
      [](const Table2Column& c) {
        return c.flow.initial.functional ? std::string("yes")
                                         : std::string("NO");
      },
      [](const Table2Column& c) {
        return c.flow.optimized.functional ? std::string("yes")
                                           : std::string("NO");
      });
  return t.render();
}

std::string table2_csv(const Table2& table) {
  std::ostringstream os;
  os << "tool,config,loc,delta_loc,automation_pct,quality,controllability_"
        "pct,flexibility,fmax_mhz,throughput_mops,latency,periodicity,area,"
        "n_lut_star,n_ff_star,n_lut,n_ff,n_dsp,n_io,pipeline_nodes_before,"
        "pipeline_nodes_after,functional\n";
  auto row = [&](const Table2Column& c, bool opt) {
    const core::DesignEvaluation& e = opt ? c.flow.optimized : c.flow.initial;
    os << c.flow.info.tool << ',' << (opt ? "optimized" : "initial") << ','
       << (opt ? c.flow.loc.optimized : c.flow.loc.initial) << ','
       << c.flow.loc.delta << ','
       << format_fixed(opt ? c.automation_opt : c.automation_initial, 1)
       << ',' << format_fixed(opt ? c.quality_opt : c.quality_initial, 1)
       << ',' << format_fixed(c.controllability, 1) << ','
       << format_fixed(c.flexibility, 2) << ','
       << format_fixed(e.fmax_mhz, 2) << ','
       << format_fixed(e.throughput_mops, 3) << ',' << e.latency_cycles
       << ',' << format_fixed(e.periodicity_cycles, 1) << ',' << e.area
       << ',' << e.n_lut_star << ',' << e.n_ff_star << ',' << e.n_lut << ','
       << e.n_ff << ',' << e.n_dsp << ',' << e.n_io << ','
       << e.pipeline.nodes_before() << ',' << e.pipeline.nodes_after() << ','
       << (e.functional ? "yes" : "no") << '\n';
  };
  for (const Table2Column& c : table.columns) {
    row(c, false);
    row(c, true);
  }
  return os.str();
}

}  // namespace hlshc::tools
