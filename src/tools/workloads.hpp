// The workload x flow benchmark matrix.
//
// Table II and Fig. 1 measure one kernel (the IDCT) across every frontend.
// The workload registry turns that axis into a grid: every registered
// workload is swept across all of its builders through the one canonical
// tools::compile path, and each (workload, builder) cell reports the
// paper's A / P / Q axes plus the fault-campaign vulnerability factor.
// bench_table2 --workload all drives this and writes BENCH_workloads.json.
#pragma once

#include <string>
#include <vector>

#include "core/evaluate.hpp"
#include "fault/campaign.hpp"
#include "obs/report.hpp"
#include "tools/compile.hpp"
#include "workload/workload.hpp"

namespace hlshc::tools {

struct WorkloadBenchOptions {
  /// Workloads to sweep; empty means every registry entry.
  std::vector<std::string> workloads;
  bool include_slow = false;  ///< include builders marked slow (vhls)
  int matrices = 4;           ///< frames per evaluation run
  int campaign_sites = 24;    ///< sampled SEU sites per cell
  uint64_t campaign_seed = 2026;
  uint64_t max_inject_cycle = 60;
  int campaign_matrices = 2;  ///< frames per campaign run
  /// Worker count for the cell sweep; 0 means all cores (HLSHC_JOBS).
  int jobs = 0;
  CompileOptions compile;
};

/// One (workload, builder) cell of the matrix.
struct WorkloadFlowResult {
  std::string workload;
  std::string builder;
  std::string flow;     ///< builder's frontend family
  std::string variant;  ///< builder's option label
  core::DesignEvaluation eval;
  fault::CampaignReport campaign;
  double vulnerability = 0.0;
};

/// Builds, compiles, evaluates and fault-injects every selected cell; cells
/// run across a par::Pool and land in deterministic (workload, builder)
/// order. Throws hlshc::Error on an unknown workload name.
std::vector<WorkloadFlowResult> run_workload_matrix(
    const WorkloadBenchOptions& options = {});

/// Fixed-width ASCII table: one row per cell with functional status, T_P,
/// fmax, P, A, Q and the campaign outcome mix.
std::string render_workload_matrix(
    const std::vector<WorkloadFlowResult>& rows);

/// RunReport ("bench_workloads" schema) with one results entry per cell;
/// written by bench_table2 --workload all as BENCH_workloads.json.
obs::RunReport make_workload_report(
    const std::vector<WorkloadFlowResult>& rows,
    const WorkloadBenchOptions& options);

}  // namespace hlshc::tools
