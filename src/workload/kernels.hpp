// Internal support for the workload implementations (idct/fdct/fir16/
// matmul .cpp). Not part of the registry's public surface — consumers
// include workload/workload.hpp only.
#pragma once

#include <string>
#include <vector>

#include "netlist/ir.hpp"
#include "workload/workload.hpp"

namespace hlshc::workload {

// Built-in spec factories, one per translation unit; registry.cpp calls
// them in its constructor.
WorkloadSpec make_idct_spec();
WorkloadSpec make_fdct_spec();
WorkloadSpec make_fir16_spec();
WorkloadSpec make_matmul_spec();

namespace kernels {

/// Width of a stream input sample (== axis::kInElemWidth) and of the new
/// workloads' output samples.
inline constexpr int kDataWidth = 12;

inline constexpr int64_t kClipMin = -2048;
inline constexpr int64_t kClipMax = 2047;

/// Saturate to the 12-bit sample range (the reference-model counterpart of
/// clamp12() below; the generated C sources carry the same ternary).
inline int32_t clip12(int64_t v) {
  return v < kClipMin ? static_cast<int32_t>(kClipMin)
                      : (v > kClipMax ? static_cast<int32_t>(kClipMax)
                                      : static_cast<int32_t>(v));
}

/// Netlist saturation of a `w`-bit signed value to [-2048, 2047], returned
/// as the 12-bit sample.
netlist::NodeId clamp12(netlist::Design& d, netlist::NodeId v, int w);

/// Wraps a pure dataflow matrix kernel (x0..x63 in, y0..y63 out,
/// combinational) in the full AXI-Stream adapter.
netlist::Design wrap_comb_kernel(const netlist::Design& kernel, int out_width,
                                 const std::string& name);

/// Same, with the kernel first pipelined into `stages` register layers.
netlist::Design wrap_pipelined_kernel(const netlist::Design& kernel,
                                      int stages, int out_width,
                                      const std::string& name);

/// One frame of uniform samples in [lo, hi].
Frame uniform_frame(SplitMix64& rng, int lo, int hi);

/// Evaluation stimulus for workloads that consume spatial samples directly:
/// realistic draws pixel-range data (-256..255, the range the IDCT's
/// spatial stimulus uses), otherwise the full 12-bit input range.
Frame spatial_eval_frame(SplitMix64& rng, bool realistic);

/// Campaign input set for spatial-domain workloads: the IEEE-1180-style
/// generator drawing each sample from [-256, 255], no domain transform.
std::vector<Frame> spatial_campaign_set(int matrices, long seed);

}  // namespace kernels
}  // namespace hlshc::workload
