// The workload registry: the benchmark de-hardwired from the IDCT.
//
// The paper's comparison is one data point — a single 8x8 IDCT pushed
// through seven flows. Everything downstream of the frontends (the
// Section III.C measurement procedure, the fault campaigns, the synthesis
// service, the benches) used to assume that workload by name. A
// WorkloadSpec bundles what they actually need:
//
//   * named frontend builders — one closure per (flow, variant) that
//     elaborates a full canonical-port AXI-Stream design;
//   * a golden reference model over 64-sample frames;
//   * deterministic stimulus generators, seeded via base/rng: the
//     SplitMix64 evaluation stimulus (bit-compatible with the historical
//     core::evaluate_axis_design loop) and the IEEE-1180-style campaign
//     input set (bit-compatible with fault::ieee1180_input_set);
//   * a QualityJudge — the IEEE 1180 "is this output acceptable" check
//     generalized per workload (the shipped workloads are all bit-exact
//     integer kernels, so their judges are exact equality).
//
// The registry holds the IDCT (its rtl/chisel/bsv/xls/hls builders moved
// behind it without behaviour change) plus a forward 8x8 DCT, a 16-tap FIR
// filter, and an 8x8x8 integer matrix multiply — each with RTL-style,
// Chisel-style (width-inferred), XLS-pipelined and HLS-frontend builders.
// Consumers (core::evaluate_axis_design, fault::run_campaign, tools::flows,
// svc) take a spec instead of calling idct:: directly; a CI guard
// (scripts/check_pipeline_guard.sh) keeps it that way.
//
// Every frame is idct::Block-shaped (64 int32 samples): the substrate's
// AXI-Stream harness streams 8x8 matrices, and all registered workloads
// speak that frame format. Input samples are 12-bit
// (axis::kInElemWidth); output sample width is per-workload.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "base/rng.hpp"
#include "idct/block.hpp"
#include "netlist/ir.hpp"

namespace hlshc::workload {

/// One 8x8 frame of samples — the unit every registered workload consumes
/// and produces through the AXI-Stream harness.
using Frame = idct::Block;

/// One registered frontend builder of a workload.
struct BuilderInfo {
  std::string name;     ///< unique within the workload (e.g. "verilog_opt2")
  std::string flow;     ///< flow family: verilog/chisel/bsv/xls/bambu/vhls
  std::string variant;  ///< configuration label within the flow
  /// Excluded from the tier-1 conformance pass (hundreds of cycles per
  /// frame); the slow-labelled full matrix still covers it.
  bool slow = false;
  std::function<netlist::Design()> build;
};

/// Per-workload acceptance check for one output frame — the IEEE-1180-style
/// error criterion generalized. A null `accept` means bit-exact equality
/// (every shipped workload: all are integer-exact kernels).
struct QualityJudge {
  std::string description = "bit-exact against the reference model";
  std::function<bool(const Frame& want, const Frame& got)> accept;

  bool ok(const Frame& want, const Frame& got) const {
    return accept ? accept(want, got) : want == got;
  }
};

struct WorkloadSpec {
  std::string name;
  std::string description;
  int out_width = 9;  ///< output sample width on the m lanes
  /// True when every builder is exact on non-realistic full-range stimulus
  /// too. The IDCT sets this false: arbitrary +-2048 coefficient blocks are
  /// not forward-DCT outputs, and its narrow-width builders (inferred
  /// Chisel widths, 16-bit HLS kernel RAM) only contract for realistic
  /// data — see misc_coverage_test "UniformInputsWorkFor32BitFamilies".
  bool full_range_safe = true;
  std::vector<BuilderInfo> builders;

  /// Golden model: one input frame -> the expected output frame.
  std::function<Frame(const Frame&)> reference;
  /// Maps raw spatial-domain samples into the workload's input domain
  /// (the IDCT consumes forward-DCT coefficients; pass-through for
  /// workloads that consume spatial samples directly). Null = identity.
  std::function<Frame(const Frame&)> encode;
  /// One evaluation-stimulus frame drawn from `rng`. `realistic` selects
  /// in-domain data (the Section III.C default) over full-range samples.
  std::function<Frame(SplitMix64& rng, bool realistic)> eval_stimulus;
  /// The whole campaign input set (IEEE-1180-style deterministic RNG).
  std::function<std::vector<Frame>(int matrices, long seed)> campaign_inputs;
  QualityJudge judge;

  const BuilderInfo* find_builder(const std::string& builder_name) const;
  /// Throws hlshc::Error naming the known builders on a miss.
  const BuilderInfo& builder(const std::string& builder_name) const;
};

/// The process-wide workload table. Iteration order (and names()) is
/// lexicographic, so every enumeration — list_designs, conformance suites,
/// BENCH_workloads.json — is stable across runs and platforms.
class Registry {
 public:
  /// The singleton with the built-in workloads registered (idct, fdct,
  /// fir16, matmul). Thread-safe first-use construction.
  static const Registry& instance();

  std::vector<std::string> names() const;
  const WorkloadSpec* find(const std::string& name) const;
  /// Throws hlshc::Error naming the known workloads on a miss.
  const WorkloadSpec& get(const std::string& name) const;
  const std::map<std::string, WorkloadSpec>& all() const { return specs_; }

  void add(WorkloadSpec spec);

 private:
  Registry();

  std::map<std::string, WorkloadSpec> specs_;
};

// ---- the one stimulus/compare path ---------------------------------------
//
// core/evaluate.cpp and fault/campaign.cpp used to each carry their own
// copy of the generate-stimulate-compare loop; both now call these, so the
// two can never drift on quality classification.

/// The evaluation input set: `matrices` frames from a SplitMix64 stream.
/// For the idct workload this reproduces the historical
/// core::evaluate_axis_design stimulus bit for bit.
std::vector<Frame> eval_input_set(const WorkloadSpec& spec, int matrices,
                                  uint64_t seed, bool realistic);

/// The campaign input set (IEEE-1180-style RNG). For the idct workload this
/// reproduces fault::ieee1180_input_set bit for bit.
std::vector<Frame> campaign_input_set(const WorkloadSpec& spec, int matrices,
                                      long seed);

/// Golden outputs for `inputs` through the reference model.
std::vector<Frame> reference_outputs(const WorkloadSpec& spec,
                                     const std::vector<Frame>& inputs);

/// Frames the judge rejects, counting missing/surplus frames as rejected
/// (same semantics as core::diff_block_sequences for an exact judge). Zero
/// means the run is functionally acceptable.
int diff_outputs(const WorkloadSpec& spec, const std::vector<Frame>& want,
                 const std::vector<Frame>& got);

}  // namespace hlshc::workload
