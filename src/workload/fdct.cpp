// Forward 8x8 DCT workload — the encoder-side counterpart of the IDCT.
//
// Integer DCT-II with an 11-bit-scaled cosine table, separable row pass
// then column pass (the same two-pass shape as the Chen/Wang IDCT):
//
//   K[u][x] = round(1024 * C(u)/2 * cos((2x+1) u pi / 16)) built from
//   C1=1004 C2=946 C3=851 C4=724 C5=569 C6=392 C7=200,
//   pass(u)  = (sum_x K[u][x] * in[x] + 1024) >> 11,
//
// with the column pass saturated to the 12-bit coefficient range. Row-pass
// intermediates stay within short range (|t| <= ~8034), which is what lets
// the HLS builder store them in the kernel's 16-bit block RAM.
//
// Every builder — RTL-style netlist, width-inferred Chisel, the XLS
// pipeliner, and the generated-C Bambu flow — computes from the same kK
// table below, so they are bit-identical to fdct_reference by
// construction; the conformance suite holds them to that.
#include "workload/kernels.hpp"

#include <cstdlib>
#include <sstream>
#include <string>

#include "chisel/dsl.hpp"
#include "hls/tool.hpp"

namespace hlshc::workload {

namespace {

using kernels::clip12;
using kernels::kDataWidth;
using netlist::Design;
using netlist::NodeId;

// K[u][x], u = frequency, x = sample position; 1024-scaled cosines.
constexpr int kK[8][8] = {
    {724, 724, 724, 724, 724, 724, 724, 724},
    {1004, 851, 569, 200, -200, -569, -851, -1004},
    {946, 392, -392, -946, -946, -392, 392, 946},
    {851, -200, -1004, -569, 569, 1004, 200, -851},
    {724, -724, -724, 724, 724, -724, -724, 724},
    {569, -1004, 200, 851, -851, -200, 1004, -569},
    {392, -946, 946, -392, -392, 946, -946, 392},
    {200, -569, 851, -1004, 1004, -851, 569, -200},
};

constexpr int kRound = 1024;
constexpr int kShift = 11;
constexpr int kRowW = 26;  // |1024 + 8 * 2048 * 1004| < 2^25
constexpr int kColW = 28;  // |1024 + 8 * 8034 * 1004| < 2^27

Frame fdct_reference(const Frame& in) {
  int64_t t[64];
  for (int r = 0; r < 8; ++r)
    for (int u = 0; u < 8; ++u) {
      int64_t acc = kRound;
      for (int x = 0; x < 8; ++x) acc += int64_t{kK[u][x]} * in[size_t(r * 8 + x)];
      t[r * 8 + u] = acc >> kShift;
    }
  Frame out{};
  for (int v = 0; v < 8; ++v)
    for (int u = 0; u < 8; ++u) {
      int64_t acc = kRound;
      for (int r = 0; r < 8; ++r) acc += int64_t{kK[v][r]} * t[r * 8 + u];
      out[size_t(v * 8 + u)] = clip12(acc >> kShift);
    }
  return out;
}

// ---- RTL-style netlist kernel (explicit widths) ---------------------------

Design build_fdct_rtl_kernel() {
  Design d("fdct_kernel");
  NodeId x[64];
  for (int i = 0; i < 64; ++i)
    x[i] = d.sext(d.input("x" + std::to_string(i), kDataWidth), kRowW);
  NodeId t[64];
  for (int r = 0; r < 8; ++r)
    for (int u = 0; u < 8; ++u) {
      NodeId acc = d.constant(kRowW, kRound);
      for (int xi = 0; xi < 8; ++xi)
        acc = d.add(acc,
                    d.mul(x[r * 8 + xi], d.constant(kRowW, kK[u][xi]), kRowW),
                    kRowW);
      t[r * 8 + u] = d.sext(d.ashr(acc, kShift, kRowW), kColW);
    }
  for (int v = 0; v < 8; ++v)
    for (int u = 0; u < 8; ++u) {
      NodeId acc = d.constant(kColW, kRound);
      for (int r = 0; r < 8; ++r)
        acc = d.add(acc,
                    d.mul(t[r * 8 + u], d.constant(kColW, kK[v][r]), kColW),
                    kColW);
      d.output("y" + std::to_string(v * 8 + u),
               kernels::clamp12(d, d.ashr(acc, kShift, kColW), kColW));
    }
  d.validate();
  return d;
}

// ---- Chisel-style kernel (inferred widths) --------------------------------

Design build_fdct_chisel_kernel() {
  chisel::Builder b("fdct_chisel_kernel");
  chisel::SInt x[64];
  for (int i = 0; i < 64; ++i)
    x[i] = b.input("x" + std::to_string(i), kDataWidth);
  chisel::SInt t[64];
  for (int r = 0; r < 8; ++r)
    for (int u = 0; u < 8; ++u) {
      chisel::SInt acc = b.lit(kRound);
      for (int xi = 0; xi < 8; ++xi)
        acc = acc + x[r * 8 + xi] * b.lit(kK[u][xi]);
      t[r * 8 + u] = acc >> kShift;
    }
  chisel::SInt lo = b.lit(-2048), hi = b.lit(2047);
  for (int v = 0; v < 8; ++v)
    for (int u = 0; u < 8; ++u) {
      chisel::SInt acc = b.lit(kRound);
      for (int r = 0; r < 8; ++r) acc = acc + t[r * 8 + u] * b.lit(kK[v][r]);
      chisel::SInt s = acc >> kShift;
      chisel::SInt sat = b.mux(s < lo, lo, b.mux(s > hi, hi, s));
      b.output("y" + std::to_string(v * 8 + u), sat.truncate(kDataWidth));
    }
  return b.take();
}

// ---- generated C for the HLS flow -----------------------------------------

void append_terms(std::ostringstream& os, const int* coeffs,
                  const std::string& base) {
  for (int k = 0; k < 8; ++k) {
    if (coeffs[k] == 0) continue;
    os << (coeffs[k] < 0 ? " - " : " + ") << std::abs(coeffs[k]) << " * "
       << base << k;
  }
}

std::string fdct_source() {
  std::ostringstream os;
  os << "static int clip12(int x) {\n"
        "  return x < -2048 ? -2048 : (x > 2047 ? 2047 : x);\n"
        "}\n\n";
  os << "static void fdctrow(short blk[64], int off) {\n";
  for (int k = 0; k < 8; ++k) os << "  int x" << k << ";\n";
  for (int k = 0; k < 8; ++k) os << "  int t" << k << ";\n";
  for (int k = 0; k < 8; ++k)
    os << "  x" << k << " = blk[off + " << k << "];\n";
  for (int u = 0; u < 8; ++u) {
    os << "  t" << u << " = (" << kRound;
    append_terms(os, kK[u], "x");
    os << ") >> " << kShift << ";\n";
  }
  for (int k = 0; k < 8; ++k)
    os << "  blk[off + " << k << "] = (short) t" << k << ";\n";
  os << "}\n\n";
  os << "static void fdctcol(short blk[64], int off) {\n";
  for (int k = 0; k < 8; ++k) os << "  int x" << k << ";\n";
  for (int k = 0; k < 8; ++k)
    os << "  x" << k << " = blk[off + 8 * " << k << "];\n";
  for (int v = 0; v < 8; ++v) {
    os << "  blk[off + 8 * " << v << "] = (short) clip12((" << kRound;
    append_terms(os, kK[v], "x");
    os << ") >> " << kShift << ");\n";
  }
  os << "}\n\n";
  os << "void fdct(short block[64]) {\n"
        "  int i;\n"
        "  for (i = 0; i < 8; i = i + 1) { fdctrow(block, 8 * i); }\n"
        "  for (i = 0; i < 8; i = i + 1) { fdctcol(block, i); }\n"
        "}\n";
  return os.str();
}

}  // namespace

WorkloadSpec make_fdct_spec() {
  WorkloadSpec spec;
  spec.name = "fdct";
  spec.description =
      "8x8 forward DCT (integer, 1024-scaled cosines), 12-bit spatial "
      "samples in, 12-bit coefficients out";
  spec.out_width = kDataWidth;
  spec.reference = fdct_reference;
  spec.eval_stimulus = kernels::spatial_eval_frame;
  spec.campaign_inputs = kernels::spatial_campaign_set;
  spec.builders = {
      {"rtl_comb", "verilog", "combinational", false,
       [] {
         return kernels::wrap_comb_kernel(build_fdct_rtl_kernel(), kDataWidth,
                                          "fdct_rtl_comb");
       }},
      {"chisel_comb", "chisel", "combinational", false,
       [] {
         return kernels::wrap_comb_kernel(build_fdct_chisel_kernel(),
                                          kDataWidth, "fdct_chisel_comb");
       }},
      {"xls_p2", "xls", "2-stage", false,
       [] {
         return kernels::wrap_pipelined_kernel(build_fdct_rtl_kernel(), 2,
                                               kDataWidth, "fdct_xls_p2");
       }},
      {"bambu", "bambu", "BAMBU+LSS", false,
       [] {
         return hls::compile_bambu_top(fdct_source(), "fdct", {}, kDataWidth,
                                       "fdct_bambu")
             .design;
       }},
  };
  return spec;
}

}  // namespace hlshc::workload
