#include "workload/workload.hpp"

#include <sstream>

#include "base/check.hpp"
#include "workload/kernels.hpp"

namespace hlshc::workload {

const BuilderInfo* WorkloadSpec::find_builder(
    const std::string& builder_name) const {
  for (const BuilderInfo& b : builders)
    if (b.name == builder_name) return &b;
  return nullptr;
}

const BuilderInfo& WorkloadSpec::builder(const std::string& builder_name) const {
  const BuilderInfo* b = find_builder(builder_name);
  if (!b) {
    std::ostringstream os;
    os << "workload '" << name << "' has no builder '" << builder_name
       << "'; known:";
    for (const BuilderInfo& known : builders) os << ' ' << known.name;
    throw Error(os.str());
  }
  return *b;
}

Registry::Registry() {
  add(make_idct_spec());
  add(make_fdct_spec());
  add(make_fir16_spec());
  add(make_matmul_spec());
}

const Registry& Registry::instance() {
  static const Registry registry;
  return registry;
}

std::vector<std::string> Registry::names() const {
  std::vector<std::string> out;
  out.reserve(specs_.size());
  for (const auto& [name, spec] : specs_) out.push_back(name);
  return out;  // std::map iteration order: already sorted
}

const WorkloadSpec* Registry::find(const std::string& name) const {
  auto it = specs_.find(name);
  return it == specs_.end() ? nullptr : &it->second;
}

const WorkloadSpec& Registry::get(const std::string& name) const {
  const WorkloadSpec* spec = find(name);
  if (!spec) {
    std::ostringstream os;
    os << "unknown workload '" << name << "'; known:";
    for (const auto& [known, unused] : specs_) os << ' ' << known;
    throw Error(os.str());
  }
  return *spec;
}

void Registry::add(WorkloadSpec spec) {
  HLSHC_CHECK(!spec.name.empty(), "workload name must not be empty");
  HLSHC_CHECK(spec.reference && spec.eval_stimulus && spec.campaign_inputs,
              "workload '" << spec.name << "' is missing a model hook");
  HLSHC_CHECK(!spec.builders.empty(),
              "workload '" << spec.name << "' has no builders");
  for (size_t i = 0; i < spec.builders.size(); ++i) {
    HLSHC_CHECK(spec.builders[i].build,
                "workload '" << spec.name << "' builder '"
                             << spec.builders[i].name << "' has no build fn");
    for (size_t j = i + 1; j < spec.builders.size(); ++j)
      HLSHC_CHECK(spec.builders[i].name != spec.builders[j].name,
                  "workload '" << spec.name << "' registers builder '"
                               << spec.builders[i].name << "' twice");
  }
  auto [it, inserted] = specs_.emplace(spec.name, std::move(spec));
  HLSHC_CHECK(inserted, "workload '" << it->first << "' registered twice");
}

std::vector<Frame> eval_input_set(const WorkloadSpec& spec, int matrices,
                                  uint64_t seed, bool realistic) {
  HLSHC_CHECK(matrices >= 1, "need at least one input frame");
  SplitMix64 rng(seed);
  std::vector<Frame> inputs;
  inputs.reserve(static_cast<size_t>(matrices));
  for (int m = 0; m < matrices; ++m)
    inputs.push_back(spec.eval_stimulus(rng, realistic));
  return inputs;
}

std::vector<Frame> campaign_input_set(const WorkloadSpec& spec, int matrices,
                                      long seed) {
  HLSHC_CHECK(matrices >= 1, "need at least one input frame");
  return spec.campaign_inputs(matrices, seed);
}

std::vector<Frame> reference_outputs(const WorkloadSpec& spec,
                                     const std::vector<Frame>& inputs) {
  std::vector<Frame> outputs;
  outputs.reserve(inputs.size());
  for (const Frame& in : inputs) outputs.push_back(spec.reference(in));
  return outputs;
}

int diff_outputs(const WorkloadSpec& spec, const std::vector<Frame>& want,
                 const std::vector<Frame>& got) {
  const size_t shared = want.size() < got.size() ? want.size() : got.size();
  int bad = static_cast<int>(want.size() > got.size() ? want.size() - got.size()
                                                      : got.size() - want.size());
  for (size_t i = 0; i < shared; ++i)
    if (!spec.judge.ok(want[i], got[i])) ++bad;
  return bad;
}

}  // namespace hlshc::workload
