#include "workload/kernels.hpp"

#include "base/check.hpp"
#include "framework/compose.hpp"
#include "idct/block.hpp"
#include "xls/pipeline.hpp"

namespace hlshc::workload::kernels {

using netlist::Design;
using netlist::NodeId;

NodeId clamp12(Design& d, NodeId v, int w) {
  HLSHC_CHECK(w >= kDataWidth + 1 && w <= 64,
              "clamp12 needs headroom above 12 bits, got width " << w);
  NodeId lo = d.constant(w, kClipMin);
  NodeId hi = d.constant(w, kClipMax);
  NodeId sat = d.mux(d.slt(v, lo), lo, d.mux(d.sgt(v, hi), hi, v, w), w);
  return d.slice(sat, kDataWidth - 1, 0);
}

Design wrap_comb_kernel(const Design& kernel, int out_width,
                        const std::string& name) {
  return framework::wrap_matrix_kernel(
      framework::MatrixKernel{kernel, 0, out_width}, name);
}

Design wrap_pipelined_kernel(const Design& kernel, int stages, int out_width,
                             const std::string& name) {
  xls::PipelineResult pr = xls::pipeline_function(kernel, stages);
  return framework::wrap_matrix_kernel(
      framework::MatrixKernel{pr.design, pr.latency, out_width}, name);
}

Frame uniform_frame(SplitMix64& rng, int lo, int hi) {
  Frame f{};
  for (auto& v : f) v = static_cast<int32_t>(rng.next_in(lo, hi));
  return f;
}

Frame spatial_eval_frame(SplitMix64& rng, bool realistic) {
  return realistic
             ? uniform_frame(rng, idct::kSampleMin, idct::kSampleMax)
             : uniform_frame(rng, idct::kCoeffMin, idct::kCoeffMax);
}

std::vector<Frame> spatial_campaign_set(int matrices, long seed) {
  Ieee1180Rng rng(seed);
  std::vector<Frame> inputs;
  inputs.reserve(static_cast<size_t>(matrices));
  for (int m = 0; m < matrices; ++m) {
    Frame f{};
    for (auto& v : f) v = static_cast<int32_t>(rng.next(256, 255));
    inputs.push_back(f);
  }
  return inputs;
}

}  // namespace hlshc::workload::kernels
