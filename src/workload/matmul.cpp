// 8x8x8 integer matrix-multiply workload: the frame (row-major matrix A)
// times a fixed 4-bit-scaled coefficient matrix:
//
//   Y[r][c] = clip12((8 + sum_k A[r][k] * kM[k][c]) >> 4).
//
// Each output row depends only on the same input row, so the HLS builder's
// generated C loads a full row into scalars before storing any result —
// the in-place block RAM never reads a value it has already overwritten.
// The largest column |coefficient| sum is 50, so the accumulator fits 18
// signed bits on full-range input.
#include "workload/kernels.hpp"

#include <cstdlib>
#include <sstream>
#include <string>

#include "chisel/dsl.hpp"
#include "hls/tool.hpp"

namespace hlshc::workload {

namespace {

using kernels::clip12;
using kernels::kDataWidth;
using netlist::Design;
using netlist::NodeId;

// kM[k][c]: the fixed right-hand matrix (4-bit-scaled mixing coefficients).
constexpr int kM[8][8] = {
    {12, -7, 3, 9, -4, 6, -2, 5},
    {-3, 11, 8, -6, 2, -9, 7, 1},
    {5, -2, 13, 4, -8, 3, 6, -7},
    {-9, 6, -1, 10, 5, -3, 2, 8},
    {4, 7, -5, 2, 14, -6, 9, -3},
    {-6, 3, 9, -8, 1, 12, -4, 7},
    {8, -5, 2, 6, -7, 4, 11, -2},
    {-1, 9, -6, 3, 8, -2, 5, 13},
};

constexpr int kRound = 8;
constexpr int kShift = 4;
constexpr int kAccW = 20;  // |8 + 50 * 2048| < 2^17

Frame matmul_reference(const Frame& in) {
  Frame out{};
  for (int r = 0; r < 8; ++r)
    for (int c = 0; c < 8; ++c) {
      int64_t acc = kRound;
      for (int k = 0; k < 8; ++k)
        acc += int64_t{in[size_t(r * 8 + k)]} * kM[k][c];
      out[size_t(r * 8 + c)] = clip12(acc >> kShift);
    }
  return out;
}

Design build_matmul_rtl_kernel() {
  Design d("matmul_kernel");
  NodeId x[64];
  for (int i = 0; i < 64; ++i)
    x[i] = d.sext(d.input("x" + std::to_string(i), kDataWidth), kAccW);
  for (int r = 0; r < 8; ++r)
    for (int c = 0; c < 8; ++c) {
      NodeId acc = d.constant(kAccW, kRound);
      for (int k = 0; k < 8; ++k)
        acc = d.add(acc,
                    d.mul(x[r * 8 + k], d.constant(kAccW, kM[k][c]), kAccW),
                    kAccW);
      d.output("y" + std::to_string(r * 8 + c),
               kernels::clamp12(d, d.ashr(acc, kShift, kAccW), kAccW));
    }
  d.validate();
  return d;
}

Design build_matmul_chisel_kernel() {
  chisel::Builder b("matmul_chisel_kernel");
  chisel::SInt x[64];
  for (int i = 0; i < 64; ++i)
    x[i] = b.input("x" + std::to_string(i), kDataWidth);
  chisel::SInt lo = b.lit(-2048), hi = b.lit(2047);
  for (int r = 0; r < 8; ++r)
    for (int c = 0; c < 8; ++c) {
      chisel::SInt acc = b.lit(kRound);
      for (int k = 0; k < 8; ++k) acc = acc + x[r * 8 + k] * b.lit(kM[k][c]);
      chisel::SInt s = acc >> kShift;
      chisel::SInt sat = b.mux(s < lo, lo, b.mux(s > hi, hi, s));
      b.output("y" + std::to_string(r * 8 + c), sat.truncate(kDataWidth));
    }
  return b.take();
}

std::string matmul_source() {
  std::ostringstream os;
  os << "static int clip12(int x) {\n"
        "  return x < -2048 ? -2048 : (x > 2047 ? 2047 : x);\n"
        "}\n\n";
  os << "static void matrow(short blk[64], int off) {\n";
  for (int k = 0; k < 8; ++k) os << "  int a" << k << ";\n";
  for (int k = 0; k < 8; ++k)
    os << "  a" << k << " = blk[off + " << k << "];\n";
  for (int c = 0; c < 8; ++c) {
    os << "  blk[off + " << c << "] = (short) clip12((" << kRound;
    for (int k = 0; k < 8; ++k)
      os << (kM[k][c] < 0 ? " - " : " + ") << std::abs(kM[k][c]) << " * a"
         << k;
    os << ") >> " << kShift << ");\n";
  }
  os << "}\n\n";
  os << "void matmul(short block[64]) {\n"
        "  int i;\n"
        "  for (i = 0; i < 8; i = i + 1) { matrow(block, 8 * i); }\n"
        "}\n";
  return os.str();
}

}  // namespace

WorkloadSpec make_matmul_spec() {
  WorkloadSpec spec;
  spec.name = "matmul";
  spec.description =
      "8x8 matrix times a fixed 8x8 integer coefficient matrix, 12-bit "
      "samples in and out";
  spec.out_width = kDataWidth;
  spec.reference = matmul_reference;
  spec.eval_stimulus = kernels::spatial_eval_frame;
  spec.campaign_inputs = kernels::spatial_campaign_set;
  spec.builders = {
      {"rtl_comb", "verilog", "combinational", false,
       [] {
         return kernels::wrap_comb_kernel(build_matmul_rtl_kernel(),
                                          kDataWidth, "matmul_rtl_comb");
       }},
      {"chisel_comb", "chisel", "combinational", false,
       [] {
         return kernels::wrap_comb_kernel(build_matmul_chisel_kernel(),
                                          kDataWidth, "matmul_chisel_comb");
       }},
      {"xls_p2", "xls", "2-stage", false,
       [] {
         return kernels::wrap_pipelined_kernel(build_matmul_rtl_kernel(), 2,
                                               kDataWidth, "matmul_xls_p2");
       }},
      {"bambu", "bambu", "BAMBU+LSS", false,
       [] {
         return hls::compile_bambu_top(matmul_source(), "matmul", {},
                                       kDataWidth, "matmul_bambu")
             .design;
       }},
  };
  return spec;
}

}  // namespace hlshc::workload
