// 16-tap FIR low-pass workload.
//
// The frame is treated as a 1-D signal x[0..63] (row-major scan order); the
// filter is a symmetric 16-tap kernel with 6-bit-scaled integer taps:
//
//   y[i] = clip12((32 + sum_{k=0..min(i,15)} T[k] * x[i-k]) >> 6),
//
// with x[j] = 0 for j < 0 (zero boundary — the guards simply drop those
// taps). Sum of |T| is 220, so the accumulator never leaves 19 signed bits
// even on full-range 12-bit input.
//
// The HLS builder's generated C walks the frame in DESCENDING order: y[i]
// only reads x[j <= i], and a descending in-place loop has overwritten only
// indices above i when it stores there, so the single block RAM suffices.
// The tap guards `if (i >= k)` are compile-time-resolvable after unrolling,
// which is exactly the control the mini-HLS frontend accepts.
#include "workload/kernels.hpp"

#include <cstdlib>
#include <sstream>
#include <string>

#include "chisel/dsl.hpp"
#include "hls/tool.hpp"

namespace hlshc::workload {

namespace {

using kernels::clip12;
using kernels::kDataWidth;
using netlist::Design;
using netlist::NodeId;

constexpr int kTaps = 16;
constexpr int kT[kTaps] = {-2, -3, -4, 0,  9,  21, 32, 39,
                           39, 32, 21, 9,  0,  -4, -3, -2};
constexpr int kRound = 32;
constexpr int kShift = 6;
constexpr int kAccW = 20;  // |32 + 220 * 2048| < 2^19

Frame fir16_reference(const Frame& in) {
  Frame out{};
  for (int i = 0; i < 64; ++i) {
    int64_t acc = kRound;
    for (int k = 0; k < kTaps && k <= i; ++k)
      acc += int64_t{kT[k]} * in[size_t(i - k)];
    out[size_t(i)] = clip12(acc >> kShift);
  }
  return out;
}

Design build_fir16_rtl_kernel() {
  Design d("fir16_kernel");
  NodeId x[64];
  for (int i = 0; i < 64; ++i)
    x[i] = d.sext(d.input("x" + std::to_string(i), kDataWidth), kAccW);
  for (int i = 0; i < 64; ++i) {
    NodeId acc = d.constant(kAccW, kRound);
    for (int k = 0; k < kTaps && k <= i; ++k) {
      if (kT[k] == 0) continue;
      acc = d.add(acc, d.mul(x[i - k], d.constant(kAccW, kT[k]), kAccW),
                  kAccW);
    }
    d.output("y" + std::to_string(i),
             kernels::clamp12(d, d.ashr(acc, kShift, kAccW), kAccW));
  }
  d.validate();
  return d;
}

Design build_fir16_chisel_kernel() {
  chisel::Builder b("fir16_chisel_kernel");
  chisel::SInt x[64];
  for (int i = 0; i < 64; ++i)
    x[i] = b.input("x" + std::to_string(i), kDataWidth);
  chisel::SInt lo = b.lit(-2048), hi = b.lit(2047);
  for (int i = 0; i < 64; ++i) {
    chisel::SInt acc = b.lit(kRound);
    for (int k = 0; k < kTaps && k <= i; ++k) {
      if (kT[k] == 0) continue;
      acc = acc + x[i - k] * b.lit(kT[k]);
    }
    chisel::SInt s = acc >> kShift;
    chisel::SInt sat = b.mux(s < lo, lo, b.mux(s > hi, hi, s));
    b.output("y" + std::to_string(i), sat.truncate(kDataWidth));
  }
  return b.take();
}

std::string fir16_source() {
  std::ostringstream os;
  os << "static int clip12(int x) {\n"
        "  return x < -2048 ? -2048 : (x > 2047 ? 2047 : x);\n"
        "}\n\n";
  os << "void fir16(short block[64]) {\n"
        "  int i;\n"
        "  int acc;\n"
        "  for (i = 63; i >= 0; i = i - 1) {\n"
        "    acc = " << kRound << ";\n";
  for (int k = 0; k < kTaps; ++k) {
    if (kT[k] == 0) continue;
    std::ostringstream term;
    term << "acc = acc " << (kT[k] < 0 ? "-" : "+") << " " << std::abs(kT[k])
         << " * block[i" << (k ? " - " + std::to_string(k) : "") << "];";
    if (k == 0)
      os << "    " << term.str() << "\n";
    else
      os << "    if (i >= " << k << ") { " << term.str() << " }\n";
  }
  os << "    block[i] = (short) clip12(acc >> " << kShift << ");\n"
        "  }\n"
        "}\n";
  return os.str();
}

}  // namespace

WorkloadSpec make_fir16_spec() {
  WorkloadSpec spec;
  spec.name = "fir16";
  spec.description =
      "16-tap integer FIR low-pass over the frame in scan order, 12-bit "
      "samples in and out";
  spec.out_width = kDataWidth;
  spec.reference = fir16_reference;
  spec.eval_stimulus = kernels::spatial_eval_frame;
  spec.campaign_inputs = kernels::spatial_campaign_set;
  spec.builders = {
      {"rtl_comb", "verilog", "combinational", false,
       [] {
         return kernels::wrap_comb_kernel(build_fir16_rtl_kernel(),
                                          kDataWidth, "fir16_rtl_comb");
       }},
      {"chisel_comb", "chisel", "combinational", false,
       [] {
         return kernels::wrap_comb_kernel(build_fir16_chisel_kernel(),
                                          kDataWidth, "fir16_chisel_comb");
       }},
      {"xls_p2", "xls", "2-stage", false,
       [] {
         return kernels::wrap_pipelined_kernel(build_fir16_rtl_kernel(), 2,
                                               kDataWidth, "fir16_xls_p2");
       }},
      {"bambu", "bambu", "BAMBU+LSS", false,
       [] {
         return hls::compile_bambu_top(fir16_source(), "fir16", {},
                                       kDataWidth, "fir16_bambu")
             .design;
       }},
  };
  return spec;
}

}  // namespace hlshc::workload
