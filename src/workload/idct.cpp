// The inverse DCT — the paper's original benchmark, now the registry's
// first entry. The builders here are exactly the designs the paper's
// Table II rows come from: the refactor moved them behind the registry
// without touching them, so the registered "idct" path reproduces the
// pre-registry Table II bit for bit. The stimulus and reference hooks
// replicate the historical core::evaluate_axis_design and
// fault::ieee1180_input_set loops exactly (same RNG, same draw order).
#include "workload/kernels.hpp"

#include "bsv/designs.hpp"
#include "chisel/designs.hpp"
#include "hls/tool.hpp"
#include "idct/chenwang.hpp"
#include "idct/reference.hpp"
#include "rtl/designs.hpp"
#include "xls/designs.hpp"

namespace hlshc::workload {

namespace {

netlist::Design build_bambu_default() {
  return hls::compile_bambu(hls::idct_source(), {}).design;
}

netlist::Design build_bambu_perf() {
  hls::BambuOptions o;
  o.preset = hls::BambuPreset::kPerformanceMp;
  o.speculative_sdc = true;
  return hls::compile_bambu(hls::idct_source(), o).design;
}

netlist::Design build_vhls_pushbutton() {
  return hls::compile_vhls(hls::idct_source(), {}).design;
}

netlist::Design build_vhls_pragmas() {
  hls::VhlsOptions o;
  o.pragmas = true;
  o.pipeline_stages = 1;
  return hls::compile_vhls(hls::idct_source(), o).design;
}

}  // namespace

WorkloadSpec make_idct_spec() {
  WorkloadSpec spec;
  spec.name = "idct";
  spec.description =
      "8x8 inverse DCT (Chen/Wang fixed point), 12-bit coefficients in, "
      "9-bit samples out";
  spec.out_width = 9;
  spec.full_range_safe = false;  // narrow-width builders need realistic data

  spec.reference = [](const Frame& in) {
    Frame out = in;
    idct::idct_2d(out);
    return out;
  };
  spec.encode = [](const Frame& spatial) {
    return idct::forward_dct_reference(spatial);
  };
  spec.eval_stimulus = [](SplitMix64& rng, bool realistic) {
    Frame b{};
    if (realistic) {
      Frame spatial{};
      for (auto& v : spatial) v = static_cast<int32_t>(rng.next_in(-256, 255));
      b = idct::forward_dct_reference(spatial);
    } else {
      for (auto& v : b)
        v = static_cast<int32_t>(
            rng.next_in(idct::kCoeffMin, idct::kCoeffMax));
    }
    return b;
  };
  spec.campaign_inputs = [](int matrices, long seed) {
    Ieee1180Rng rng(seed);
    std::vector<Frame> inputs;
    inputs.reserve(static_cast<size_t>(matrices));
    for (int m = 0; m < matrices; ++m) {
      Frame spatial{};
      for (auto& v : spatial) v = static_cast<int32_t>(rng.next(256, 255));
      inputs.push_back(idct::forward_dct_reference(spatial));
    }
    return inputs;
  };

  spec.builders = {
      {"verilog_initial", "verilog", "initial", false,
       [] { return rtl::build_verilog_initial(); }},
      {"verilog_opt1", "verilog", "opt1-1row8col", false,
       [] { return rtl::build_verilog_opt1(); }},
      {"verilog_opt2", "verilog", "opt2-pipelined", false,
       [] { return rtl::build_verilog_opt2(); }},
      {"chisel_initial", "chisel", "initial", false,
       [] { return chisel::build_chisel_initial(); }},
      {"chisel_opt", "chisel", "optimized", false,
       [] { return chisel::build_chisel_opt(); }},
      {"bsv_initial", "bsv", "initial", false,
       [] { return bsv::build_bsv_initial(); }},
      {"bsv_opt", "bsv", "optimized", false,
       [] { return bsv::build_bsv_opt(); }},
      {"xls_comb", "xls", "combinational", false,
       [] { return xls::build_xls_design({0}).design; }},
      {"xls_p8", "xls", "8-stage", false,
       [] { return xls::build_xls_design({8}).design; }},
      {"bambu", "bambu", "BAMBU+LSS", false, build_bambu_default},
      {"bambu_perf", "bambu", "BAMBU-PERFORMANCE-MP+sdc+LSS", false,
       build_bambu_perf},
      // Push-button VHLS pays per-call stream overhead: hundreds of cycles
      // per frame, so the tier-1 conformance pass skips it.
      {"vhls_pushbutton", "vhls", "push-button", true, build_vhls_pushbutton},
      {"vhls_pragmas", "vhls", "pragmas(stages=1)", false, build_vhls_pragmas},
  };
  return spec;
}

}  // namespace hlshc::workload
