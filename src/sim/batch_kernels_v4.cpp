// x86-64-v4 instantiation of the lane kernels: same source as the baseline
// TU (batch_kernels.inc), compiled with -march=x86-64-v4 so the lane loops
// vectorize to AVX-512 (eight int64 per vector — four registers for the
// default 32-lane batch). Only added to the build when the toolchain accepts
// the flag and __builtin_cpu_supports can test for it at runtime (see
// src/sim/CMakeLists.txt); never executed on CPUs that don't report the
// level.
#include "sim/batch_kernels.hpp"

namespace hlshc::sim {

namespace kernels_v4 {
#include "sim/batch_kernels.inc"
}  // namespace kernels_v4

StreamKernelFn select_stream_kernel_v4(int lanes) {
  return kernels_v4::select(lanes);
}

}  // namespace hlshc::sim
