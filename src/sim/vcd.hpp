// VCD (IEEE 1364 value change dump) tracing for the simulator.
//
// Attach a trace to a simulation engine (interpreter or compiled), pick the signals to record (ports by
// name, or any node), call sample() once per cycle, and finish() returns a
// standard VCD document that GTKWave and friends open directly — the
// debugging loop hardware engineers expect from a simulator.
#pragma once

#include <string>
#include <vector>

#include "sim/engine.hpp"

namespace hlshc::sim {

class VcdTrace {
 public:
  /// Traces the given (label, node) pairs. Labels must be unique.
  VcdTrace(const Engine& sim,
           std::vector<std::pair<std::string, netlist::NodeId>> signals);

  /// Convenience: trace every input and output port of the design.
  static VcdTrace ports(const Engine& sim);

  /// Record the current values (call after eval(), once per cycle).
  void sample();

  /// The complete VCD document (header + change dump).
  std::string finish() const;

  int samples() const { return time_; }

 private:
  const Engine& sim_;
  std::vector<std::pair<std::string, netlist::NodeId>> signals_;
  std::vector<std::string> ids_;
  std::vector<BitVec> last_;
  std::vector<bool> has_last_;
  std::string body_;
  int time_ = 0;
};

}  // namespace hlshc::sim
