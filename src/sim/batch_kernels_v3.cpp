// x86-64-v3 instantiation of the lane kernels: same source as the baseline
// TU (batch_kernels.inc), compiled with -march=x86-64-v3 so the lane loops
// vectorize to AVX2 (four int64 per vector). Only added to the build when
// the toolchain accepts the flag and __builtin_cpu_supports can test for it
// at runtime (see src/sim/CMakeLists.txt); never executed on CPUs that
// don't report x86-64-v3.
#include "sim/batch_kernels.hpp"

namespace hlshc::sim {

namespace kernels_v3 {
#include "sim/batch_kernels.inc"
}  // namespace kernels_v3

StreamKernelFn select_stream_kernel_v3(int lanes) {
  return kernels_v3::select(lanes);
}

}  // namespace hlshc::sim
