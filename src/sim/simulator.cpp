#include "sim/simulator.hpp"

namespace hlshc::sim {

using netlist::Design;
using netlist::Node;
using netlist::NodeId;
using netlist::Op;

Simulator::Simulator(const Design& design)
    : Engine(design), order_(design.topo_order_shared()) {
  values_.assign(design_.node_count(), BitVec());
  reg_state_.assign(design_.node_count(), BitVec());
  for (size_t i = 0; i < design_.node_count(); ++i) {
    const Node& n = design_.node(static_cast<NodeId>(i));
    if (n.op == Op::Reg) regs_.push_back(static_cast<NodeId>(i));
    values_[i] = BitVec::zero(n.width);
  }
  for (const netlist::Memory& m : design_.memories())
    mem_state_.emplace_back(static_cast<size_t>(m.depth),
                            BitVec::zero(m.width));
  reset();
}

void Simulator::reset_state() {
  for (NodeId r : regs_) {
    const Node& n = design_.node(r);
    reg_state_[static_cast<size_t>(r)] = BitVec(n.width, n.imm);
  }
  for (size_t m = 0; m < mem_state_.size(); ++m) {
    const netlist::Memory& mem = design_.memories()[m];
    mem_state_[m].assign(static_cast<size_t>(mem.depth),
                         BitVec::zero(mem.width));
  }
  for (NodeId in : design_.inputs())
    values_[static_cast<size_t>(in)] = BitVec::zero(design_.node(in).width);
}

void Simulator::poke_input(NodeId id, int64_t value) {
  values_[static_cast<size_t>(id)] = BitVec(design_.node(id).width, value);
}

void Simulator::do_flip_reg_bit(NodeId reg, int bit, int width) {
  BitVec mask(width, static_cast<int64_t>(uint64_t{1} << bit));
  BitVec& state = reg_state_[static_cast<size_t>(reg)];
  state = BitVec::bxor(state, mask, width);
}

void Simulator::do_flip_mem_bit(int mem_id, int addr, int bit, int width) {
  BitVec mask(width, static_cast<int64_t>(uint64_t{1} << bit));
  BitVec& word =
      mem_state_[static_cast<size_t>(mem_id)][static_cast<size_t>(addr)];
  word = BitVec::bxor(word, mask, width);
}

void Simulator::compute(NodeId id) {
  const Node& n = design_.node(id);
  const size_t i = static_cast<size_t>(id);
  auto in = [&](int k) -> const BitVec& {
    return values_[static_cast<size_t>(n.operands[static_cast<size_t>(k)])];
  };
  const int w = n.width;
  switch (n.op) {
    case Op::Input: break;  // externally driven
    case Op::Output: values_[i] = in(0); break;
    case Op::Const: values_[i] = BitVec(w, n.imm); break;
    case Op::Add: values_[i] = BitVec::add(in(0), in(1), w); break;
    case Op::Sub: values_[i] = BitVec::sub(in(0), in(1), w); break;
    case Op::Mul: values_[i] = BitVec::mul(in(0), in(1), w); break;
    case Op::Neg: values_[i] = BitVec::neg(in(0), w); break;
    case Op::Shl:
      values_[i] = BitVec::shl(in(0), static_cast<int>(n.imm), w);
      break;
    case Op::AShr:
      values_[i] = BitVec::ashr(in(0), static_cast<int>(n.imm), w);
      break;
    case Op::LShr:
      values_[i] = BitVec::lshr(in(0), static_cast<int>(n.imm), w);
      break;
    case Op::And: values_[i] = BitVec::band(in(0), in(1), w); break;
    case Op::Or: values_[i] = BitVec::bor(in(0), in(1), w); break;
    case Op::Xor: values_[i] = BitVec::bxor(in(0), in(1), w); break;
    case Op::Not: values_[i] = BitVec::bnot(in(0), w); break;
    case Op::Eq: values_[i] = BitVec::eq(in(0), in(1)); break;
    case Op::Ne: values_[i] = BitVec::ne(in(0), in(1)); break;
    case Op::Slt: values_[i] = BitVec::slt(in(0), in(1)); break;
    case Op::Sle: values_[i] = BitVec::sle(in(0), in(1)); break;
    case Op::Sgt: values_[i] = BitVec::sgt(in(0), in(1)); break;
    case Op::Sge: values_[i] = BitVec::sge(in(0), in(1)); break;
    case Op::Ult: values_[i] = BitVec::ult(in(0), in(1)); break;
    case Op::Mux: values_[i] = BitVec::mux(in(0), in(1), in(2), w); break;
    case Op::Slice:
      values_[i] = BitVec::slice(in(0), static_cast<int>(n.imm2),
                                 static_cast<int>(n.imm));
      break;
    case Op::Concat: values_[i] = BitVec::concat(in(0), in(1)); break;
    case Op::SExt: values_[i] = BitVec::sext(in(0), w); break;
    case Op::ZExt: values_[i] = BitVec::zext(in(0), w); break;
    case Op::Reg: values_[i] = reg_state_[i]; break;
    case Op::MemRead: {
      const auto& mem = mem_state_[static_cast<size_t>(n.mem)];
      // Address wraps modulo depth, matching typical FPGA RAM behaviour.
      uint64_t addr = in(0).to_uint64() % mem.size();
      values_[i] = mem[addr];
      break;
    }
    case Op::MemWrite:
      values_[i] = in(1);  // value flows through for probing
      break;
  }
  if (inject_mask_[i])
    values_[i] =
        BitVec(w, injector_->transform(id, values_[i], cycle_).to_int64());
}

void Simulator::eval_comb() {
  for (NodeId id : *order_) compute(id);
}

void Simulator::commit_state() {
  // Latch registers.
  for (NodeId r : regs_) {
    const Node& n = design_.node(r);
    bool enabled = n.operands.size() < 2 ||
                   values_[static_cast<size_t>(n.operands[1])].to_bool();
    if (enabled)
      reg_state_[static_cast<size_t>(r)] =
          values_[static_cast<size_t>(n.operands[0])];
  }
  // Commit memory writes in node order (later writes win on collisions).
  for (NodeId wr : design_.mem_writes()) {
    const Node& n = design_.node(wr);
    if (!values_[static_cast<size_t>(n.operands[2])].to_bool()) continue;
    auto& mem = mem_state_[static_cast<size_t>(n.mem)];
    uint64_t addr =
        values_[static_cast<size_t>(n.operands[0])].to_uint64() % mem.size();
    mem[addr] = values_[static_cast<size_t>(n.operands[1])];
  }
}

void Simulator::snapshot_values(int64_t* out) const {
  for (size_t i = 0; i < values_.size(); ++i) out[i] = values_[i].to_int64();
}

BitVec Simulator::mem_peek(int mem_id, int addr) const {
  return mem_state_[static_cast<size_t>(mem_id)][static_cast<size_t>(addr)];
}

void Simulator::mem_poke(int mem_id, int addr, const BitVec& value) {
  auto& mem = mem_state_[static_cast<size_t>(mem_id)];
  mem[static_cast<size_t>(addr)] =
      BitVec(design_.memories()[static_cast<size_t>(mem_id)].width,
             value.to_int64());
}

}  // namespace hlshc::sim
