// The compiled simulation engine.
//
// Executes a netlist::ExecPlan — the levelized flat instruction stream
// compiled once per design — over dense preallocated int64 value slots
// (one machine word per node, sign-extended exactly like BitVec's canonical
// form). The per-cycle loop is a switch over a contiguous instruction
// array: no graph walk, no operand-vector chasing, no BitVec temporaries,
// and zero allocation after construction.
//
// Semantics are byte-identical to the interpreter (sim::Simulator): the
// same two-phase cycle protocol, the same commit order, and the same
// fault-injection hooks. Injection targets are handled in a slower checked
// loop only while an injector is armed; fault-free simulation always takes
// the unchecked fast path.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "netlist/exec_plan.hpp"
#include "sim/engine.hpp"

namespace hlshc::sim {

class CompiledSimulator : public Engine {
 public:
  /// The design must outlive the engine. Compiles the design's ExecPlan on
  /// first use and reuses the per-design cached plan thereafter.
  explicit CompiledSimulator(const netlist::Design& design);

  const char* kind_name() const override { return "compiled"; }

  BitVec value(netlist::NodeId id) const override;

  BitVec mem_peek(int mem_id, int addr) const override;
  void mem_poke(int mem_id, int addr, const BitVec& value) override;

  const netlist::ExecPlan& plan() const { return *plan_; }

 protected:
  void eval_comb() override;
  void commit_state() override;
  void reset_state() override;
  void poke_input(netlist::NodeId id, int64_t value) override;
  void do_flip_reg_bit(netlist::NodeId reg, int bit, int width) override;
  void do_flip_mem_bit(int mem_id, int addr, int bit, int width) override;
  void on_injector_changed() override;
  void snapshot_values(int64_t* out) const override;

 private:
  void exec_instr(const netlist::ExecInstr& in);
  void exec_stream_injected();
  int64_t apply_transform(const netlist::ExecInstr& in, int64_t value) const;

  std::shared_ptr<const netlist::ExecPlan> plan_;
  std::vector<int64_t> values_;  ///< per-node value slot (canonical int64)
  std::vector<int64_t> state_;   ///< register state, indexed by node id
  std::vector<std::vector<int64_t>> mem_;

  // Injection targets without a per-cycle instruction, rebuilt on arming:
  // inputs transform in place; constants re-materialize from the immediate
  // first (matching the interpreter's recompute-then-transform order).
  std::vector<int32_t> injected_inputs_;
  std::vector<std::pair<int32_t, int64_t>> injected_consts_;
};

}  // namespace hlshc::sim
