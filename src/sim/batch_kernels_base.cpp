// Baseline-ISA instantiation of the lane kernels (the toolchain's default
// -march; SSE2 on x86-64). Always compiled; select_stream_kernel() falls
// back here when the CPU lacks the wider kernel set.
#include "sim/batch_kernels.hpp"

namespace hlshc::sim {

namespace kernels_base {
#include "sim/batch_kernels.inc"
}  // namespace kernels_base

StreamKernelFn select_stream_kernel_base(int lanes) {
  return kernels_base::select(lanes);
}

void exec_instr_lanes(const netlist::ExecInstr& in, int64_t* values,
                      int64_t* state, std::vector<LaneVec>* mem, int lanes) {
  kernels_base::exec_lanes<0>(in, values, state, *mem, lanes);
}

}  // namespace hlshc::sim
