#include "sim/verify.hpp"

#include <memory>
#include <vector>

#include "base/rng.hpp"
#include "sim/engine.hpp"

namespace hlshc::sim {

namespace {

/// Port description resolved once per diff.
struct Port {
  std::string name;
  int width = 0;
};

std::vector<Port> ports_of(const netlist::Design& d,
                           const std::vector<netlist::NodeId>& ids) {
  std::vector<Port> ports;
  ports.reserve(ids.size());
  for (netlist::NodeId id : ids)
    ports.push_back({d.node(id).name, d.node(id).width});
  return ports;
}

std::optional<std::string> check_ports(const std::vector<Port>& a,
                                       const std::vector<Port>& b,
                                       const char* kind) {
  if (a.size() != b.size())
    return std::string(kind) + " port count changed: " +
           std::to_string(a.size()) + " -> " + std::to_string(b.size());
  for (const Port& p : a) {
    bool found = false;
    for (const Port& q : b) {
      if (q.name != p.name) continue;
      found = true;
      if (q.width != p.width)
        return std::string(kind) + " port '" + p.name + "' changed width: " +
               std::to_string(p.width) + " -> " + std::to_string(q.width);
      break;
    }
    if (!found)
      return std::string(kind) + " port '" + p.name + "' disappeared";
  }
  return std::nullopt;
}

}  // namespace

std::optional<std::string> diff_designs(const netlist::Design& before,
                                        const netlist::Design& after,
                                        const VerifyOptions& options) {
  const std::vector<Port> inputs = ports_of(before, before.inputs());
  const std::vector<Port> outputs = ports_of(before, before.outputs());
  if (auto err = check_ports(inputs, ports_of(after, after.inputs()), "input"))
    return err;
  if (auto err =
          check_ports(outputs, ports_of(after, after.outputs()), "output"))
    return err;

  for (EngineKind kind : {EngineKind::kInterpreter, EngineKind::kCompiled}) {
    std::unique_ptr<Engine> ea = make_engine(before, kind);
    std::unique_ptr<Engine> eb = make_engine(after, kind);
    ea->reset();
    eb->reset();
    // One stimulus stream per engine kind so both kinds see the same values.
    SplitMix64 rng(options.seed);
    for (int cycle = 0; cycle < options.cycles; ++cycle) {
      for (const Port& in : inputs) {
        BitVec value(in.width, static_cast<int64_t>(rng.next()));
        ea->set_input(in.name, value);
        eb->set_input(in.name, value);
      }
      ea->eval();
      eb->eval();
      for (const Port& out : outputs) {
        BitVec va = ea->output(out.name);
        BitVec vb = eb->output(out.name);
        if (va != vb)
          return "output '" + out.name + "' diverged at cycle " +
                 std::to_string(cycle) + " on the " +
                 engine_kind_name(kind) + " engine: " + va.to_string() +
                 " (before) vs " + vb.to_string() + " (after)";
      }
      ea->step();
      eb->step();
    }
  }
  return std::nullopt;
}

netlist::PassVerifier make_pass_verifier(const VerifyOptions& options) {
  return [options](const netlist::Design& before, const netlist::Design& after)
             -> std::optional<std::string> {
    return diff_designs(before, after, options);
  };
}

}  // namespace hlshc::sim
