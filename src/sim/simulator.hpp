// Cycle-accurate two-phase simulator for netlist::Design.
//
// Phase 1 (`eval`) propagates values through the combinational fabric in a
// precomputed topological order; Reg and MemRead nodes read current state.
// Phase 2 (`step`) models the clock edge: registers latch their next-value
// operand (subject to enable) and memory writes commit, in node order.
//
// The simulator is the measurement instrument of the reproduction: the
// evaluation procedure (src/core) drives a design's AXI-Stream interface
// through it to verify functional correctness against the ISO 13818-4 C
// model and to *measure* latency and periodicity, never trusting a design's
// claimed cycle counts.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "base/bitvec.hpp"
#include "netlist/ir.hpp"

namespace hlshc::sim {

/// Structured watchdog outcome: a bounded simulation exceeded its cycle
/// budget. Thrown by Simulator::step() when a cycle budget is armed and by
/// the AXI-Stream testbench when a run fails to complete — e.g. a fault
/// wedges a handshake and TVALID never asserts. Campaign drivers catch this
/// to classify the run as a hang instead of hanging themselves.
class SimTimeout : public Error {
 public:
  SimTimeout(const std::string& context, uint64_t cycles)
      : Error(context + " [SimTimeout after " + std::to_string(cycles) +
              " cycles]"),
        cycles_(cycles) {}

  uint64_t cycles() const { return cycles_; }

 private:
  uint64_t cycles_;
};

class Simulator;

/// Non-invasive fault-injection hook consulted by the simulator, so faults
/// can be armed on a built design without rebuilding it (src/fault provides
/// the concrete SEU / stuck-at / transient injectors).
class FaultInjector {
 public:
  virtual ~FaultInjector() = default;

  /// Nodes whose combinational value transform() may rewrite (stuck-at and
  /// transient faults). Queried once when the injector is armed.
  virtual std::vector<netlist::NodeId> combinational_targets() const {
    return {};
  }

  /// Applied to each target's value as eval() computes it. Must be a pure
  /// function of (id, value, cycle) so eval() stays idempotent.
  virtual BitVec transform(netlist::NodeId id, const BitVec& value,
                           uint64_t cycle) {
    (void)id;
    (void)cycle;
    return value;
  }

  /// State hook: called once per simulated cycle (at reset for cycle 0 and
  /// after every clock edge, before combinational settle). May corrupt
  /// register or memory state via flip_reg_bit()/flip_mem_bit().
  virtual void at_cycle(Simulator& sim) { (void)sim; }
};

class Simulator {
 public:
  /// The design must outlive the simulator. Validates the design.
  explicit Simulator(const netlist::Design& design);

  /// Resets registers to their init values, memories to zero, inputs to
  /// zero, and the cycle counter.
  void reset();

  void set_input(std::string_view port, const BitVec& value);
  void set_input(std::string_view port, int64_t value);

  /// Combinational propagation. Idempotent for fixed inputs/state.
  void eval();

  /// eval() then clock edge; advances the cycle counter. Throws SimTimeout
  /// when an armed cycle budget is exhausted.
  void step();

  /// Runs `n` clock cycles with inputs held. `n` must be non-negative; the
  /// count is handled as uint64_t internally so multi-billion-cycle
  /// campaigns cannot overflow.
  void run(int64_t n);

  // ---- robustness hooks ----------------------------------------------------

  /// Watchdog: step() throws SimTimeout once `cycle() >= max_cycles`.
  /// 0 (the default) disarms the budget.
  void set_cycle_budget(uint64_t max_cycles) { cycle_budget_ = max_cycles; }
  uint64_t cycle_budget() const { return cycle_budget_; }

  /// Arms (or, with nullptr, disarms) a fault injector. The injector must
  /// outlive its armed period; its combinational targets are validated here.
  void set_fault_injector(FaultInjector* injector);

  /// SEU pokes: flip one bit of a register's current state / one bit of one
  /// memory word. Validates the target and throws hlshc::Error on a bad one.
  void flip_reg_bit(netlist::NodeId reg, int bit);
  void flip_mem_bit(int mem_id, int addr, int bit);

  /// Value of any node after the most recent eval()/step().
  const BitVec& value(netlist::NodeId id) const {
    return values_[static_cast<size_t>(id)];
  }

  const BitVec& output(std::string_view port) const;
  int64_t output_i64(std::string_view port) const;

  uint64_t cycle() const { return cycle_; }

  /// Test hooks for memory state.
  BitVec mem_peek(int mem_id, int addr) const;
  void mem_poke(int mem_id, int addr, const BitVec& value);

  const netlist::Design& design() const { return design_; }

 private:
  void compute(netlist::NodeId id);

  const netlist::Design& design_;
  std::vector<netlist::NodeId> order_;
  std::vector<BitVec> values_;      ///< per-node value after eval
  std::vector<BitVec> reg_state_;   ///< per-node register state (Reg only)
  std::vector<std::vector<BitVec>> mem_state_;
  std::vector<netlist::NodeId> regs_;
  uint64_t cycle_ = 0;
  uint64_t cycle_budget_ = 0;       ///< 0 = unbounded
  bool evaluated_ = false;
  FaultInjector* injector_ = nullptr;
  std::vector<uint8_t> inject_mask_;  ///< per-node: transform() applies
};

}  // namespace hlshc::sim
