// Cycle-accurate two-phase simulator for netlist::Design.
//
// Phase 1 (`eval`) propagates values through the combinational fabric in a
// precomputed topological order; Reg and MemRead nodes read current state.
// Phase 2 (`step`) models the clock edge: registers latch their next-value
// operand (subject to enable) and memory writes commit, in node order.
//
// The simulator is the measurement instrument of the reproduction: the
// evaluation procedure (src/core) drives a design's AXI-Stream interface
// through it to verify functional correctness against the ISO 13818-4 C
// model and to *measure* latency and periodicity, never trusting a design's
// claimed cycle counts.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "base/bitvec.hpp"
#include "netlist/ir.hpp"

namespace hlshc::sim {

class Simulator {
 public:
  /// The design must outlive the simulator. Validates the design.
  explicit Simulator(const netlist::Design& design);

  /// Resets registers to their init values, memories to zero, inputs to
  /// zero, and the cycle counter.
  void reset();

  void set_input(std::string_view port, const BitVec& value);
  void set_input(std::string_view port, int64_t value);

  /// Combinational propagation. Idempotent for fixed inputs/state.
  void eval();

  /// eval() then clock edge; advances the cycle counter.
  void step();

  /// Runs `n` clock cycles with inputs held.
  void run(int n);

  /// Value of any node after the most recent eval()/step().
  const BitVec& value(netlist::NodeId id) const {
    return values_[static_cast<size_t>(id)];
  }

  const BitVec& output(std::string_view port) const;
  int64_t output_i64(std::string_view port) const;

  uint64_t cycle() const { return cycle_; }

  /// Test hooks for memory state.
  BitVec mem_peek(int mem_id, int addr) const;
  void mem_poke(int mem_id, int addr, const BitVec& value);

  const netlist::Design& design() const { return design_; }

 private:
  void compute(netlist::NodeId id);

  const netlist::Design& design_;
  std::vector<netlist::NodeId> order_;
  std::vector<BitVec> values_;      ///< per-node value after eval
  std::vector<BitVec> reg_state_;   ///< per-node register state (Reg only)
  std::vector<std::vector<BitVec>> mem_state_;
  std::vector<netlist::NodeId> regs_;
  uint64_t cycle_ = 0;
  bool evaluated_ = false;
};

}  // namespace hlshc::sim
