// The interpreting simulation engine for netlist::Design.
//
// Walks the node graph in a precomputed topological order every cycle,
// computing each node through BitVec. Simple and obviously correct — it is
// the differential-testing oracle the compiled engine (compiled.hpp) is
// checked against. The shared two-phase cycle protocol (eval / clock-edge
// commit), watchdog, port resolution and fault-injection arming live in the
// sim::Engine base (engine.hpp).
//
// The simulator is the measurement instrument of the reproduction: the
// evaluation procedure (src/core) drives a design's AXI-Stream interface
// through it to verify functional correctness against the ISO 13818-4 C
// model and to *measure* latency and periodicity, never trusting a design's
// claimed cycle counts.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "base/bitvec.hpp"
#include "netlist/ir.hpp"
#include "sim/engine.hpp"

namespace hlshc::sim {

class Simulator : public Engine {
 public:
  /// The design must outlive the simulator. Validates the design.
  explicit Simulator(const netlist::Design& design);

  const char* kind_name() const override { return "interpreter"; }

  BitVec value(netlist::NodeId id) const override {
    return values_[static_cast<size_t>(id)];
  }

  /// Test hooks for memory state.
  BitVec mem_peek(int mem_id, int addr) const override;
  void mem_poke(int mem_id, int addr, const BitVec& value) override;

 protected:
  void eval_comb() override;
  void commit_state() override;
  void reset_state() override;
  void poke_input(netlist::NodeId id, int64_t value) override;
  void do_flip_reg_bit(netlist::NodeId reg, int bit, int width) override;
  void do_flip_mem_bit(int mem_id, int addr, int bit, int width) override;
  void snapshot_values(int64_t* out) const override;

 private:
  void compute(netlist::NodeId id);

  std::shared_ptr<const std::vector<netlist::NodeId>> order_;
  std::vector<BitVec> values_;     ///< per-node value after eval
  std::vector<BitVec> reg_state_;  ///< per-node register state (Reg only)
  std::vector<std::vector<BitVec>> mem_state_;
  std::vector<netlist::NodeId> regs_;
};

}  // namespace hlshc::sim
