#include "sim/compiled.hpp"

#include <algorithm>

namespace hlshc::sim {

using netlist::ExecInstr;
using netlist::ExecPlan;
using netlist::MemCommit;
using netlist::MemShape;
using netlist::NodeId;
using netlist::Op;
using netlist::RegCommit;

namespace {

/// Truncate to the instruction's width, then sign-extend: the slot encoding
/// is BitVec's canonical form, so every result is wrapped through this.
/// The shift pair is branchless — no data-dependent sign test to mispredict.
inline int64_t wrap(const ExecInstr& in, uint64_t u) {
  return static_cast<int64_t>(u << in.dsh) >> in.dsh;
}

}  // namespace

CompiledSimulator::CompiledSimulator(const netlist::Design& design)
    : Engine(design), plan_(ExecPlan::for_design(design)) {
  values_.assign(plan_->slot_count(), 0);
  state_.assign(plan_->slot_count(), 0);
  for (const MemShape& m : plan_->mem_shapes())
    mem_.emplace_back(static_cast<size_t>(m.depth), int64_t{0});
  for (const ExecInstr& in : plan_->const_instrs())
    values_[static_cast<size_t>(in.dst)] = in.imm;
  reset();
}

void CompiledSimulator::reset_state() {
  for (const RegCommit& rc : plan_->reg_commits())
    state_[static_cast<size_t>(rc.reg)] = rc.init;
  for (auto& mem : mem_) std::fill(mem.begin(), mem.end(), int64_t{0});
  for (NodeId in : design_.inputs()) values_[static_cast<size_t>(in)] = 0;
}

void CompiledSimulator::poke_input(NodeId id, int64_t value) {
  values_[static_cast<size_t>(id)] =
      BitVec(design_.node(id).width, value).to_int64();
}

/// One lowered instruction. Kept in the header-adjacent hot path: both the
/// fast and the injection-checked loops inline this switch.
inline void CompiledSimulator::exec_instr(const ExecInstr& in) {
  int64_t* const v = values_.data();
  // Unused operand fields alias slot 0, so both loads are unconditional.
  const uint64_t ua = static_cast<uint64_t>(v[in.a]);
  const uint64_t ub = static_cast<uint64_t>(v[in.b]);
  switch (in.op) {
    case Op::Output: v[in.dst] = v[in.a]; break;
    case Op::Add: v[in.dst] = wrap(in, ua + ub); break;
    case Op::Sub: v[in.dst] = wrap(in, ua - ub); break;
    case Op::Mul: v[in.dst] = wrap(in, ua * ub); break;
    case Op::Neg: v[in.dst] = wrap(in, uint64_t{0} - ua); break;
    case Op::Shl: v[in.dst] = wrap(in, in.imm >= 64 ? 0 : ua << in.imm); break;
    case Op::AShr: {
      int64_t x = v[in.a];
      x = in.imm >= 63 ? (x < 0 ? -1 : 0) : (x >> in.imm);
      v[in.dst] = wrap(in, static_cast<uint64_t>(x));
      break;
    }
    case Op::LShr:
      v[in.dst] = wrap(in, in.imm >= 64 ? 0 : (ua & in.amask) >> in.imm);
      break;
    case Op::And: v[in.dst] = wrap(in, ua & ub); break;
    case Op::Or: v[in.dst] = wrap(in, ua | ub); break;
    case Op::Xor: v[in.dst] = wrap(in, ua ^ ub); break;
    case Op::Not: v[in.dst] = wrap(in, ~ua); break;
    // Comparisons are 1-bit: negation yields the canonical form (true = -1)
    // without a wrap.
    case Op::Eq: v[in.dst] = -static_cast<int64_t>(v[in.a] == v[in.b]); break;
    case Op::Ne: v[in.dst] = -static_cast<int64_t>(v[in.a] != v[in.b]); break;
    case Op::Slt: v[in.dst] = -static_cast<int64_t>(v[in.a] < v[in.b]); break;
    case Op::Sle: v[in.dst] = -static_cast<int64_t>(v[in.a] <= v[in.b]); break;
    case Op::Sgt: v[in.dst] = -static_cast<int64_t>(v[in.a] > v[in.b]); break;
    case Op::Sge: v[in.dst] = -static_cast<int64_t>(v[in.a] >= v[in.b]); break;
    case Op::Ult:
      v[in.dst] = -static_cast<int64_t>((ua & in.amask) < (ub & in.bmask));
      break;
    case Op::Mux:
      v[in.dst] =
          wrap(in, static_cast<uint64_t>(v[in.a] != 0 ? v[in.b] : v[in.c]));
      break;
    case Op::Slice: v[in.dst] = wrap(in, (ua & in.amask) >> in.imm); break;
    case Op::Concat:
      v[in.dst] = wrap(in, (ua << in.imm) | (ub & in.bmask));
      break;
    case Op::SExt: v[in.dst] = wrap(in, ua); break;
    case Op::ZExt: v[in.dst] = wrap(in, ua & in.amask); break;
    case Op::Reg: v[in.dst] = state_[static_cast<size_t>(in.dst)]; break;
    case Op::MemRead: {
      uint64_t addr = (ua & in.amask) % static_cast<uint64_t>(in.imm);
      v[in.dst] = mem_[static_cast<size_t>(in.mem)][addr];
      break;
    }
    case Op::MemWrite: v[in.dst] = v[in.b]; break;
    case Op::Input:
    case Op::Const:
      break;  // never lowered into the per-cycle stream
  }
}

int64_t CompiledSimulator::apply_transform(const ExecInstr& in,
                                           int64_t value) const {
  return wrap(in,
              static_cast<uint64_t>(
                  injector_->transform(in.dst, BitVec(in.width, value), cycle_)
                      .to_int64()));
}

void CompiledSimulator::eval_comb() {
  if (injector_) {
    exec_stream_injected();
  } else {
    for (const ExecInstr& in : plan_->instrs()) exec_instr(in);
  }
}

void CompiledSimulator::exec_stream_injected() {
  // Inputs and constants have no per-cycle instruction; replicate the
  // interpreter's behaviour on flagged ones: inputs transform in place,
  // constants re-materialize from the immediate and then transform.
  for (int32_t id : injected_inputs_) {
    const int w = design_.node(id).width;
    values_[static_cast<size_t>(id)] =
        BitVec(w, injector_
                      ->transform(
                          id,
                          BitVec(w, values_[static_cast<size_t>(id)]),
                          cycle_)
                      .to_int64())
            .to_int64();
  }
  for (const auto& [id, imm] : injected_consts_) {
    const int w = design_.node(id).width;
    values_[static_cast<size_t>(id)] =
        BitVec(w, injector_->transform(id, BitVec(w, imm), cycle_).to_int64())
            .to_int64();
  }
  const uint8_t* const flag = inject_mask_.data();
  for (const ExecInstr& in : plan_->instrs()) {
    exec_instr(in);
    if (flag[in.dst])
      values_[static_cast<size_t>(in.dst)] =
          apply_transform(in, values_[static_cast<size_t>(in.dst)]);
  }
}

void CompiledSimulator::commit_state() {
  // Latch registers: reads go to the pre-edge value slots, writes to the
  // separate state array, so ordering within the loop cannot matter.
  for (const RegCommit& rc : plan_->reg_commits()) {
    if (rc.enable >= 0 && values_[static_cast<size_t>(rc.enable)] == 0)
      continue;
    state_[static_cast<size_t>(rc.reg)] = values_[static_cast<size_t>(rc.next)];
  }
  // Commit memory writes in node order (later writes win on collisions).
  for (const MemCommit& mc : plan_->mem_commits()) {
    if (values_[static_cast<size_t>(mc.enable)] == 0) continue;
    std::vector<int64_t>& mem = mem_[static_cast<size_t>(mc.mem)];
    uint64_t addr =
        (static_cast<uint64_t>(values_[static_cast<size_t>(mc.addr)]) &
         mc.addr_mask) %
        mem.size();
    mem[addr] = values_[static_cast<size_t>(mc.data)];
  }
}

void CompiledSimulator::on_injector_changed() {
  injected_inputs_.clear();
  injected_consts_.clear();
  // Constants are hoisted out of the per-cycle stream, so a transform a
  // previous injector applied to a const slot would otherwise outlive its
  // arming (the interpreter self-heals by recomputing consts every eval).
  for (const ExecInstr& in : plan_->const_instrs())
    values_[static_cast<size_t>(in.dst)] = in.imm;
  if (!injector_) return;
  for (size_t i = 0; i < inject_mask_.size(); ++i) {
    if (!inject_mask_[i]) continue;
    const netlist::Node& n = design_.node(static_cast<NodeId>(i));
    if (n.op == Op::Input) {
      injected_inputs_.push_back(static_cast<int32_t>(i));
    } else if (n.op == Op::Const) {
      injected_consts_.emplace_back(static_cast<int32_t>(i), n.imm);
    }
  }
}

void CompiledSimulator::snapshot_values(int64_t* out) const {
  // Slot i is node i, already in canonical form — a straight copy.
  std::copy(values_.begin(), values_.end(), out);
}

BitVec CompiledSimulator::value(NodeId id) const {
  return BitVec(design_.node(id).width, values_[static_cast<size_t>(id)]);
}

BitVec CompiledSimulator::mem_peek(int mem_id, int addr) const {
  return BitVec(plan_->mem_shapes()[static_cast<size_t>(mem_id)].width,
                mem_[static_cast<size_t>(mem_id)][static_cast<size_t>(addr)]);
}

void CompiledSimulator::mem_poke(int mem_id, int addr, const BitVec& value) {
  mem_[static_cast<size_t>(mem_id)][static_cast<size_t>(addr)] =
      BitVec(plan_->mem_shapes()[static_cast<size_t>(mem_id)].width,
             value.to_int64())
          .to_int64();
}

void CompiledSimulator::do_flip_reg_bit(NodeId reg, int bit, int width) {
  int64_t& s = state_[static_cast<size_t>(reg)];
  s = BitVec(width, s ^ static_cast<int64_t>(uint64_t{1} << bit)).to_int64();
}

void CompiledSimulator::do_flip_mem_bit(int mem_id, int addr, int bit,
                                        int width) {
  int64_t& w = mem_[static_cast<size_t>(mem_id)][static_cast<size_t>(addr)];
  w = BitVec(width, w ^ static_cast<int64_t>(uint64_t{1} << bit)).to_int64();
}

}  // namespace hlshc::sim
