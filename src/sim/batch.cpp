#include "sim/batch.hpp"

#include <algorithm>

#include "base/check.hpp"
#include "sim/batch_kernels.hpp"

namespace hlshc::sim {

using netlist::ExecInstr;
using netlist::ExecPlan;
using netlist::MemCommit;
using netlist::MemShape;
using netlist::NodeId;
using netlist::Op;
using netlist::RegCommit;

namespace {

/// Truncate to the instruction's width, then sign-extend — the same
/// branchless canonicalization pair as CompiledSimulator's wrap().
inline int64_t wrap(uint8_t dsh, uint64_t u) {
  return static_cast<int64_t>(u << dsh) >> dsh;
}

inline int64_t canon(int width, int64_t v) {
  return BitVec(width, v).to_int64();
}

/// Left-packs a lane-major array from `old_stride` columns down to
/// `new_stride`, keeping old column c at newcol[c] (-1 = dropped). Every
/// write lands at or before its read, so the in-place packing is safe.
void compact_columns(LaneVec& v, size_t rows, int old_stride,
                     const std::vector<int>& newcol, int new_stride) {
  const size_t a = static_cast<size_t>(old_stride);
  const size_t b = static_cast<size_t>(new_stride);
  for (size_t r = 0; r < rows; ++r) {
    const size_t src = r * a;
    const size_t dst = r * b;
    for (size_t c = 0; c < a; ++c)
      if (newcol[c] >= 0) v[dst + static_cast<size_t>(newcol[c])] = v[src + c];
  }
  v.resize(rows * b);
}

}  // namespace

BatchSimulator::BatchSimulator(const netlist::Design& design, int lanes)
    : design_(design), plan_(ExecPlan::for_design(design)), lanes_(lanes) {
  HLSHC_CHECK(lanes >= 1 && lanes <= 64,
              "lane count " << lanes << " outside [1, 64]");
  design_.validate();
  const size_t l = static_cast<size_t>(lanes_);
  active_ = lanes_;
  live_ = lanes_;
  values_.assign(plan_->slot_count() * l, 0);
  state_.assign(plan_->slot_count() * l, 0);
  for (const MemShape& m : plan_->mem_shapes())
    mem_.emplace_back(static_cast<size_t>(m.depth) * l, int64_t{0});
  phys_.resize(l);
  for (int i = 0; i < lanes_; ++i) phys_[static_cast<size_t>(i)] = i;
  retired_.assign(l, 0);
  base_.assign(l, 0);
  faults_.assign(l, LaneFault{});
  seu_fired_.assign(l, 0);
  comb_slot_flag_.assign(plan_->slot_count(), 0);
  views_.resize(l);
  for (int i = 0; i < lanes_; ++i) {
    views_[static_cast<size_t>(i)].sim_ = this;
    views_[static_cast<size_t>(i)].lane_ = i;
  }
  stream_kernel_ = select_stream_kernel(lanes_);
  reset_all();
}

PortAccess& BatchSimulator::lane(int l) {
  HLSHC_CHECK(l >= 0 && l < lanes_,
              "lane " << l << " outside [0, " << lanes_ << ')');
  return views_[static_cast<size_t>(l)];
}

void BatchSimulator::restore_consts(int lane) {
  // Constants are hoisted out of the per-cycle stream; rematerialize this
  // lane's const slots so a transform armed earlier cannot outlive itself
  // (mirrors CompiledSimulator::on_injector_changed).
  if (retired_[static_cast<size_t>(lane)])
    return;  // the next reset_all() restores everything
  const int p = phys_[static_cast<size_t>(lane)];
  for (const ExecInstr& in : plan_->const_instrs())
    values_[static_cast<size_t>(in.dst) * static_cast<size_t>(active_) +
            static_cast<size_t>(p)] = in.imm;
}

void BatchSimulator::revive_lanes() {
  if (live_ == lanes_) return;
  if (active_ != lanes_) {
    const size_t l = static_cast<size_t>(lanes_);
    values_.assign(plan_->slot_count() * l, 0);
    state_.assign(plan_->slot_count() * l, 0);
    for (size_t m = 0; m < mem_.size(); ++m)
      mem_[m].assign(
          static_cast<size_t>(plan_->mem_shapes()[m].depth) * l, int64_t{0});
    active_ = lanes_;
    stream_kernel_ = select_stream_kernel(lanes_);
  }
  for (int i = 0; i < lanes_; ++i) phys_[static_cast<size_t>(i)] = i;
  std::fill(retired_.begin(), retired_.end(), uint8_t{0});
  live_ = lanes_;
}

void BatchSimulator::reset_all() {
  revive_lanes();  // retirement never outlives a reset
  const size_t L = static_cast<size_t>(lanes_);
  for (const RegCommit& rc : plan_->reg_commits()) {
    int64_t* s = state_.data() + static_cast<size_t>(rc.reg) * L;
    std::fill(s, s + L, rc.init);
  }
  for (LaneVec& mem : mem_) std::fill(mem.begin(), mem.end(), int64_t{0});
  for (NodeId in : design_.inputs()) {
    int64_t* v = values_.data() + static_cast<size_t>(in) * L;
    std::fill(v, v + L, int64_t{0});
  }
  for (int i = 0; i < lanes_; ++i) restore_consts(i);
  // Re-anchor every armed fault onto the fresh sweep clock: faults_ stores
  // sweep-absolute cycles (base_[l] + lane-relative), and both collapse to
  // the caller's lane-relative cycle at base 0.
  for (int i = 0; i < lanes_; ++i) {
    const size_t sl = static_cast<size_t>(i);
    faults_[sl].cycle -= base_[sl];
    base_[sl] = 0;
  }
  rebuild_comb_index();
  cycle_ = 0;
  evaluated_ = false;
  std::fill(seu_fired_.begin(), seu_fired_.end(), uint8_t{0});
  // Engine::reset() ends with injector_->at_cycle(): cycle-0 SEUs land on
  // the reset state, before the first settle.
  seu_flips();
}

void BatchSimulator::poke_input(int lane, NodeId id, int64_t value) {
  HLSHC_CHECK(lane >= 0 && lane < lanes_,
              "lane " << lane << " outside [0, " << lanes_ << ')');
  const netlist::Node& n = design_.node(id);
  HLSHC_CHECK(n.op == Op::Input,
              "poke target " << id << " is not an input of design '"
                             << design_.name() << '\'');
  HLSHC_CHECK(!retired_[static_cast<size_t>(lane)],
              "poke on retired lane " << lane);
  const int p = phys_[static_cast<size_t>(lane)];
  values_[static_cast<size_t>(id) * static_cast<size_t>(active_) +
          static_cast<size_t>(p)] = canon(n.width, value);
  evaluated_ = false;
}

BitVec BatchSimulator::value(int lane, NodeId id) const {
  return BitVec(design_.node(id).width, value_i64(lane, id));
}

// ---- execution -------------------------------------------------------------

StreamKernelFn select_stream_kernel(int lanes) {
  // One-time CPUID probe per construction; the result is stored in the
  // simulator's function pointer, so the hot path never re-tests.
#if defined(HLSHC_BATCH_HAVE_V4)
  if (__builtin_cpu_supports("x86-64-v4")) return select_stream_kernel_v4(lanes);
#endif
#if defined(HLSHC_BATCH_HAVE_V3)
  if (__builtin_cpu_supports("x86-64-v3")) return select_stream_kernel_v3(lanes);
#endif
  return select_stream_kernel_base(lanes);
}

void BatchSimulator::apply_comb_entry(const CombEntry& e) {
  int64_t& v =
      values_[static_cast<size_t>(e.slot) * static_cast<size_t>(active_) +
              static_cast<size_t>(phys_[static_cast<size_t>(e.lane)])];
  const int64_t m = static_cast<int64_t>(uint64_t{1} << e.bit);
  switch (e.kind) {
    case LaneFault::Kind::kStuck0:
      v = wrap(e.dsh, static_cast<uint64_t>(v & ~m));
      break;
    case LaneFault::Kind::kStuck1:
      v = wrap(e.dsh, static_cast<uint64_t>(v | m));
      break;
    case LaneFault::Kind::kTransient:
      if (cycle_ == e.cycle) v = wrap(e.dsh, static_cast<uint64_t>(v ^ m));
      break;
    default:
      break;
  }
}

void BatchSimulator::eval_stream_injected() {
  // Inputs and constants have no per-cycle instruction; flagged inputs
  // transform in place, flagged constants rematerialize from the immediate
  // and then transform (mirrors exec_stream_injected).
  for (const CombEntry& e : comb_entries_) {
    if (e.is_const)
      values_[static_cast<size_t>(e.slot) * static_cast<size_t>(active_) +
              static_cast<size_t>(phys_[static_cast<size_t>(e.lane)])] =
          e.imm;
    if (e.is_input || e.is_const) apply_comb_entry(e);
  }
  const uint8_t* flag = comb_slot_flag_.data();
  for (const ExecInstr& in : plan_->instrs()) {
    exec_instr_lanes(in, values_.data(), state_.data(), &mem_, active_);
    if (flag[in.dst]) {
      for (const CombEntry& e : comb_entries_)
        if (e.slot == in.dst && !e.is_input && !e.is_const)
          apply_comb_entry(e);
    }
  }
}

void BatchSimulator::eval_all() {
  if (!comb_armed_)
    stream_kernel_(plan_->instrs().data(), plan_->instrs().size(),
                   values_.data(), state_.data(), &mem_, active_);
  else
    eval_stream_injected();
  evaluated_ = true;
}

void BatchSimulator::commit_all() {
  const size_t L = static_cast<size_t>(active_);
  // Latch registers: reads go to the pre-edge value slots, writes to the
  // separate state array, so ordering within the loop cannot matter.
  for (const RegCommit& rc : plan_->reg_commits()) {
    int64_t* s = state_.data() + static_cast<size_t>(rc.reg) * L;
    const int64_t* next = values_.data() + static_cast<size_t>(rc.next) * L;
    if (rc.enable < 0) {
      for (size_t l = 0; l < L; ++l) s[l] = next[l];
    } else {
      const int64_t* en = values_.data() + static_cast<size_t>(rc.enable) * L;
      for (size_t l = 0; l < L; ++l)
        if (en[l] != 0) s[l] = next[l];
    }
  }
  // Commit memory writes in node order (later writes win on collisions).
  for (const MemCommit& mc : plan_->mem_commits()) {
    LaneVec& mem = mem_[static_cast<size_t>(mc.mem)];
    const size_t depth = mem.size() / L;
    const int64_t* en = values_.data() + static_cast<size_t>(mc.enable) * L;
    const int64_t* addr = values_.data() + static_cast<size_t>(mc.addr) * L;
    const int64_t* data = values_.data() + static_cast<size_t>(mc.data) * L;
    for (size_t l = 0; l < L; ++l) {
      if (en[l] == 0) continue;
      uint64_t w = (static_cast<uint64_t>(addr[l]) & mc.addr_mask) % depth;
      mem[w * L + l] = data[l];
    }
  }
}

void BatchSimulator::flip_state_bit(int lane, const LaneFault& f) {
  const size_t L = static_cast<size_t>(active_);
  const size_t p = static_cast<size_t>(phys_[static_cast<size_t>(lane)]);
  if (f.kind == LaneFault::Kind::kSeuReg) {
    int64_t& s = state_[static_cast<size_t>(f.node) * L + p];
    s = canon(design_.node(f.node).width,
              s ^ static_cast<int64_t>(uint64_t{1} << f.bit));
  } else if (f.kind == LaneFault::Kind::kSeuMem) {
    const MemShape& shape = plan_->mem_shapes()[static_cast<size_t>(f.mem)];
    int64_t& w =
        mem_[static_cast<size_t>(f.mem)][static_cast<size_t>(f.addr) * L + p];
    w = canon(shape.width, w ^ static_cast<int64_t>(uint64_t{1} << f.bit));
  }
}

void BatchSimulator::seu_flips() {
  for (int l = 0; l < lanes_; ++l) {
    if (retired_[static_cast<size_t>(l)]) continue;
    const LaneFault& f = faults_[static_cast<size_t>(l)];
    if (f.kind != LaneFault::Kind::kSeuReg &&
        f.kind != LaneFault::Kind::kSeuMem)
      continue;
    if (seu_fired_[static_cast<size_t>(l)] || cycle_ != f.cycle) continue;
    flip_state_bit(l, f);
    seu_fired_[static_cast<size_t>(l)] = 1;
  }
}

void BatchSimulator::step_all() {
  // Deadline poll every 256 cycles, exactly like Engine::step(): one clock
  // read per poll keeps multi-million-cycle sweeps interruptible.
  if (deadline_ && (cycle_ & 0xFF) == 0 && deadline_->expired())
    deadline_->check("batched simulation of design '" + design_.name() +
                     '\'');
  if (!evaluated_) eval_all();
  commit_all();
  ++cycle_;
  seu_flips();
  evaluated_ = false;
  eval_all();
}

void BatchSimulator::rebuild_comb_index() {
  comb_entries_.clear();
  std::fill(comb_slot_flag_.begin(), comb_slot_flag_.end(), uint8_t{0});
  comb_armed_ = false;
  for (int l = 0; l < lanes_; ++l) {
    if (retired_[static_cast<size_t>(l)]) continue;
    const LaneFault& f = faults_[static_cast<size_t>(l)];
    if (f.kind != LaneFault::Kind::kStuck0 &&
        f.kind != LaneFault::Kind::kStuck1 &&
        f.kind != LaneFault::Kind::kTransient)
      continue;
    const netlist::Node& n = design_.node(f.node);
    CombEntry e;
    e.slot = static_cast<int32_t>(f.node);
    e.lane = l;
    e.kind = f.kind;
    e.bit = f.bit;
    e.cycle = f.cycle;
    e.dsh = static_cast<uint8_t>(64 - n.width);
    e.is_input = n.op == Op::Input;
    e.is_const = n.op == Op::Const;
    e.imm = n.imm;
    comb_entries_.push_back(e);
    if (!e.is_input && !e.is_const) comb_slot_flag_[static_cast<size_t>(e.slot)] = 1;
    comb_armed_ = true;
  }
}

void BatchSimulator::arm_lane_fault(int lane, const LaneFault& fault) {
  HLSHC_CHECK(lane >= 0 && lane < lanes_,
              "lane " << lane << " outside [0, " << lanes_ << ')');
  if (fault.kind != LaneFault::Kind::kNone &&
      fault.kind != LaneFault::Kind::kSeuMem) {
    HLSHC_CHECK(fault.node != netlist::kInvalidNode &&
                    static_cast<size_t>(fault.node) < design_.node_count(),
                "lane fault targets invalid node " << fault.node);
    HLSHC_CHECK(fault.bit >= 0 && fault.bit < design_.node(fault.node).width,
                "lane fault bit " << fault.bit << " outside node width");
  }
  if (fault.kind == LaneFault::Kind::kSeuMem) {
    HLSHC_CHECK(fault.mem >= 0 &&
                    static_cast<size_t>(fault.mem) < plan_->mem_shapes().size(),
                "lane fault targets invalid memory " << fault.mem);
    const MemShape& shape = plan_->mem_shapes()[static_cast<size_t>(fault.mem)];
    HLSHC_CHECK(fault.addr >= 0 && fault.addr < shape.depth &&
                    fault.bit >= 0 && fault.bit < shape.width,
                "lane fault addr/bit outside memory shape");
  }
  LaneFault rebased = fault;
  rebased.cycle += base_[static_cast<size_t>(lane)];  // lane -> sweep clock
  faults_[static_cast<size_t>(lane)] = rebased;
  seu_fired_[static_cast<size_t>(lane)] = 0;
  // Heal any const slot a previously armed transform rewrote. (On a retired
  // lane only the bookkeeping updates; the next reset_all() revives it.)
  restore_consts(lane);
  rebuild_comb_index();
  evaluated_ = false;
}

void BatchSimulator::refill_lane(int lane, const LaneFault& fault) {
  HLSHC_CHECK(lane >= 0 && lane < lanes_,
              "lane " << lane << " outside [0, " << lanes_ << ')');
  HLSHC_CHECK(!retired_[static_cast<size_t>(lane)],
              "refill of retired lane " << lane
                                        << " — retired columns leave the "
                                           "storage; keep a refillable lane "
                                           "live instead");
  // Per-lane Engine::reset(): this lane's column back to the reset state,
  // every other column untouched.
  const size_t L = static_cast<size_t>(active_);
  const size_t p = static_cast<size_t>(phys_[static_cast<size_t>(lane)]);
  for (const RegCommit& rc : plan_->reg_commits())
    state_[static_cast<size_t>(rc.reg) * L + p] = rc.init;
  for (size_t m = 0; m < mem_.size(); ++m) {
    LaneVec& mem = mem_[m];
    const size_t depth = static_cast<size_t>(plan_->mem_shapes()[m].depth);
    for (size_t w = 0; w < depth; ++w) mem[w * L + p] = 0;
  }
  for (NodeId in : design_.inputs())
    values_[static_cast<size_t>(in) * L + p] = 0;
  base_[static_cast<size_t>(lane)] = cycle_;
  // Validates, restores consts, rebuilds the comb index, and rebases the
  // fault cycle onto the sweep clock (arm_lane_fault reads base_).
  arm_lane_fault(lane, fault);
  // Engine::reset() ends with the injector's cycle hook: a lane-cycle-0
  // SEU lands on the fresh reset state, before the lane's first settle.
  const LaneFault& f = faults_[static_cast<size_t>(lane)];
  if ((f.kind == LaneFault::Kind::kSeuReg ||
       f.kind == LaneFault::Kind::kSeuMem) &&
      f.cycle == cycle_) {
    flip_state_bit(lane, f);
    seu_fired_[static_cast<size_t>(lane)] = 1;
  }
}

void BatchSimulator::retire_lane(int lane) {
  HLSHC_CHECK(lane >= 0 && lane < lanes_,
              "lane " << lane << " outside [0, " << lanes_ << ')');
  HLSHC_CHECK(!retired_[static_cast<size_t>(lane)],
              "lane " << lane << " already retired");
  retired_[static_cast<size_t>(lane)] = 1;
  --live_;
  // Drop the lane's comb transforms (a fully-healthy remainder regains the
  // fast stream path; transforms on a dead column would be harmless but
  // wasted work).
  if (comb_armed_) rebuild_comb_index();
  // Deferred compaction: physically dropping columns costs a full pass over
  // storage, so only pay it when at least half the columns are dead. Until
  // then the dead columns keep computing values nobody reads.
  if (live_ > 0 && live_ * 2 <= active_) compact_dead();
}

void BatchSimulator::compact_dead() {
  std::vector<int> newcol(static_cast<size_t>(active_), -1);
  {
    std::vector<uint8_t> keep(static_cast<size_t>(active_), 0);
    for (int l = 0; l < lanes_; ++l)
      if (!retired_[static_cast<size_t>(l)] &&
          phys_[static_cast<size_t>(l)] >= 0)
        keep[static_cast<size_t>(phys_[static_cast<size_t>(l)])] = 1;
    int nc = 0;
    for (int p = 0; p < active_; ++p)
      if (keep[static_cast<size_t>(p)]) newcol[static_cast<size_t>(p)] = nc++;
  }
  compact_columns(values_, plan_->slot_count(), active_, newcol, live_);
  compact_columns(state_, plan_->slot_count(), active_, newcol, live_);
  for (size_t m = 0; m < mem_.size(); ++m)
    compact_columns(mem_[m],
                    static_cast<size_t>(plan_->mem_shapes()[m].depth), active_,
                    newcol, live_);
  for (int l = 0; l < lanes_; ++l) {
    int& p = phys_[static_cast<size_t>(l)];
    p = (!retired_[static_cast<size_t>(l)] && p >= 0)
            ? newcol[static_cast<size_t>(p)]
            : -1;
  }
  active_ = live_;
  stream_kernel_ = select_stream_kernel(active_);
}

}  // namespace hlshc::sim
